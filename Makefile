# hybridstitch — build/test/reproduce targets.

GO ?= go

.PHONY: all build test race test-race check bench experiments fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

test-race: race

# Full pre-merge gate: vet, build, tests, race detector.
check: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt

# Regenerate every table and figure of the paper (artifacts in results/).
experiments:
	$(GO) run ./cmd/experiments -exp all -out results

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/tiffio/
	$(GO) test -fuzz FuzzUnmarshalResult -fuzztime 30s ./internal/stitch/
	$(GO) test -fuzz FuzzDegradedTileRead -fuzztime 30s ./internal/stitch/

clean:
	rm -rf results dataset pyramid_out
