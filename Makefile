# hybridstitch — build/test/reproduce targets.

GO ?= go

.PHONY: all build test race test-race lint lint-help check bench benchdiff acc accdiff experiments fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

test-race: race

# Repo-specific static analysis: the four stitchlint analyzers
# (bufferfree, streamsync, faultsite, blockinglock) over every package,
# including tests. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/stitchlint ./...

# How to waive a finding: stitchlint diagnostics can be suppressed at the
# offending line (same line or the line above) with
#
#     //lint:allow <analyzer> <reason>
#
# e.g. //lint:allow bufferfree allocation must fail; nothing is allocated
#
# The reason is mandatory — a bare //lint:allow <analyzer> is itself
# reported. `make lint-help` prints the analyzers and this recipe.
lint-help:
	$(GO) run ./cmd/stitchlint -list
	@echo ""
	@echo "suppress a finding with: //lint:allow <analyzer> <reason>  (same line or line above; reason required)"

# Full pre-merge gate: vet, static analysis, build, tests, race detector.
# The obs suite runs race-enabled on its own first: the span ring and the
# timeline ordering fix are exactly the code whose bugs only the race
# detector sees.
check: build
	$(GO) vet ./...
	$(GO) run ./cmd/stitchlint ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs/ ./internal/gpu/
	$(GO) test -race -short ./internal/accuracy/ ./internal/imagegen/
	$(GO) test -race ./...

# bench runs every benchmark and converts the output into a
# machine-readable snapshot (BENCH_<tag>.json) for benchdiff. Override
# BENCH_TAG to keep several snapshots side by side.
BENCH_TAG ?= pr5
bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt
	$(GO) run ./cmd/experiments -bench-in bench_output.txt -bench-out BENCH_$(BENCH_TAG).json

# benchdiff flags >15% ns/op regressions between two snapshots:
#   make benchdiff OLD=BENCH_2026-08-01.json NEW=BENCH_2026-08-05.json
# The defaults gate the current PR's snapshot against the previous one.
OLD ?= BENCH_pr4.json
NEW ?= BENCH_pr5.json
benchdiff:
	$(GO) run ./cmd/experiments -bench-old $(OLD) -bench-new $(NEW)

# acc is the accuracy counterpart of bench: it runs every named
# adversarial scenario through the full confidence-weighted pipeline,
# fails if any scenario misses its documented threshold (see
# EXPERIMENTS.md "Accuracy methodology"), and writes the scores to
# ACC_<tag>.json for accdiff.
ACC_TAG ?= pr6
acc:
	$(GO) run ./cmd/experiments -acc-out ACC_$(ACC_TAG).json

# accdiff flags accuracy regressions between two snapshots (RMS up more
# than 15% + 0.1 px, or the within-1-px fraction down more than 0.02):
#   make accdiff OLD=ACC_pr6.json NEW=ACC_pr7.json
# Target-specific OLD/NEW defaults keep it independent of benchdiff's.
accdiff: OLD = ACC_pr6.json
accdiff: NEW = ACC_pr6.json
accdiff:
	$(GO) run ./cmd/experiments -acc-old $(OLD) -acc-new $(NEW)

# Regenerate every table and figure of the paper (artifacts in results/).
experiments:
	$(GO) run ./cmd/experiments -exp all -out results

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/tiffio/
	$(GO) test -fuzz FuzzUnmarshalResult -fuzztime 30s ./internal/stitch/
	$(GO) test -fuzz FuzzDegradedTileRead -fuzztime 30s ./internal/stitch/
	$(GO) test -fuzz FuzzChromeTrace -fuzztime 30s ./internal/obs/

clean:
	rm -rf results dataset pyramid_out
