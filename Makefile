# hybridstitch — build/test/reproduce targets.

GO ?= go

.PHONY: all build test race test-race lint lint-json lint-baseline lint-help check bench benchdiff acc accdiff experiments fuzz fuzz-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

test-race: race

# Repo-specific static analysis: the seven stitchlint analyzers
# (pairguard, streamsync, faultsite, blockinglock, lockorder, obsnames,
# hotpath) over every package, including tests. Packages are checked in
# parallel (bounded by GOMAXPROCS); the gate fails only on findings not
# recorded in the committed lint-baseline.json.
lint:
	$(GO) run ./cmd/stitchlint -baseline lint-baseline.json ./...

# Machine-readable findings (SARIF-lite JSON) for editors and CI
# annotation:
lint-json:
	$(GO) run ./cmd/stitchlint -baseline lint-baseline.json -json ./...

# Accept the current findings into the baseline. Every generated entry
# carries a placeholder reason — rewrite it before committing, or fix the
# finding instead. ReadBaseline rejects reasonless entries.
lint-baseline:
	$(GO) run ./cmd/stitchlint -baseline lint-baseline.json -update-baseline ./...

# How to waive a finding: stitchlint diagnostics can be suppressed at the
# offending line (same line or the line above) with
#
#     //lint:allow <analyzer> <reason>
#
# e.g. //lint:allow pairguard allocation must fail; nothing is allocated
#
# The reason is mandatory — a bare //lint:allow <analyzer> is itself
# reported, as is one naming an analyzer the suite does not have. Larger
# accepted debts belong in lint-baseline.json (make lint-baseline), where
# every entry also needs a reason and stale entries are warned about.
# `make lint-help` prints the analyzers and this recipe.
lint-help:
	$(GO) run ./cmd/stitchlint -list
	@echo ""
	@echo "suppress one finding:  //lint:allow <analyzer> <reason>   (same line or line above; reason required)"
	@echo "accept standing debt:  make lint-baseline                 (rewrite the placeholder reasons before committing)"
	@echo "machine output:        make lint-json"

# Full pre-merge gate: vet, static analysis, build, tests, race detector.
# The obs suite runs race-enabled on its own first: the span ring and the
# timeline ordering fix are exactly the code whose bugs only the race
# detector sees.
check: build
	$(GO) vet ./...
	$(GO) run ./cmd/stitchlint -baseline lint-baseline.json ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs/ ./internal/gpu/
	$(GO) test -race -short ./internal/accuracy/ ./internal/imagegen/
	$(GO) test -race ./...

# bench runs every benchmark and converts the output into a
# machine-readable snapshot (BENCH_<tag>.json) for benchdiff. Override
# BENCH_TAG to keep several snapshots side by side.
BENCH_TAG ?= pr10
bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt
	$(GO) run ./cmd/experiments -bench-in bench_output.txt -bench-out BENCH_$(BENCH_TAG).json

# benchdiff flags >15% ns/op regressions between two snapshots:
#   make benchdiff OLD=BENCH_2026-08-01.json NEW=BENCH_2026-08-05.json
# The defaults gate the current PR's snapshot against the previous one.
OLD ?= BENCH_pr9.json
NEW ?= BENCH_pr10.json
benchdiff:
	$(GO) run ./cmd/experiments -bench-old $(OLD) -bench-new $(NEW)

# acc is the accuracy counterpart of bench: it runs every named
# adversarial scenario through the full confidence-weighted pipeline,
# fails if any scenario misses its documented threshold (see
# EXPERIMENTS.md "Accuracy methodology"), and writes the scores to
# ACC_<tag>.json for accdiff.
ACC_TAG ?= pr6
acc:
	$(GO) run ./cmd/experiments -acc-out ACC_$(ACC_TAG).json

# accdiff flags accuracy regressions between two snapshots (RMS up more
# than 15% + 0.1 px, or the within-1-px fraction down more than 0.02):
#   make accdiff OLD=ACC_pr6.json NEW=ACC_pr7.json
# Target-specific OLD/NEW defaults keep it independent of benchdiff's.
accdiff: OLD = ACC_pr6.json
accdiff: NEW = ACC_pr6.json
accdiff:
	$(GO) run ./cmd/experiments -acc-old $(OLD) -acc-new $(NEW)

# Regenerate every table and figure of the paper (artifacts in results/).
experiments:
	$(GO) run ./cmd/experiments -exp all -out results

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/tiffio/
	$(GO) test -fuzz FuzzPyramidRoundTrip -fuzztime 30s ./internal/tiffio/
	$(GO) test -fuzz FuzzSplitPlanRoundTrip -fuzztime 30s ./internal/fft/
	$(GO) test -fuzz FuzzUnmarshalResult -fuzztime 30s ./internal/stitch/
	$(GO) test -fuzz FuzzDegradedTileRead -fuzztime 30s ./internal/stitch/
	$(GO) test -fuzz FuzzChromeTrace -fuzztime 30s ./internal/obs/
	$(GO) test -fuzz FuzzRealPlanRoundTrip -fuzztime 30s ./internal/fft/
	$(GO) test -fuzz FuzzCSRLaplacian -fuzztime 30s ./internal/global/

# fuzz-smoke is the CI-sized pass: every fuzz target for 10s each, enough
# to catch regressions in the decode/unmarshal paths without dominating
# the workflow's wall clock.
fuzz-smoke:
	$(GO) test -fuzz FuzzDecode -fuzztime 10s ./internal/tiffio/
	$(GO) test -fuzz FuzzPyramidRoundTrip -fuzztime 10s ./internal/tiffio/
	$(GO) test -fuzz FuzzSplitPlanRoundTrip -fuzztime 10s ./internal/fft/
	$(GO) test -fuzz FuzzUnmarshalResult -fuzztime 10s ./internal/stitch/
	$(GO) test -fuzz FuzzDegradedTileRead -fuzztime 10s ./internal/stitch/
	$(GO) test -fuzz FuzzChromeTrace -fuzztime 10s ./internal/obs/
	$(GO) test -fuzz FuzzRealPlanRoundTrip -fuzztime 10s ./internal/fft/
	$(GO) test -fuzz FuzzCSRLaplacian -fuzztime 10s ./internal/global/

clean:
	rm -rf results dataset pyramid_out
