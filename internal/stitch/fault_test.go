package stitch

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"hybridstitch/internal/fault"
	"hybridstitch/internal/gpu"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// degradableVariants lists the five implementations with retry/degrade
// semantics (the Fiji baseline deliberately keeps its abort-on-error
// behavior — the plugin it models has no degradation mode).
func degradableVariants() []Stitcher {
	return []Stitcher{&SimpleCPU{}, &MTCPU{}, &PipelinedCPU{}, &SimpleGPU{}, &PipelinedGPU{}}
}

// mustSpec parses a fault spec or fails the test.
func mustSpec(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	in, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	return in
}

// faultDevices builds simulated GPUs wired to an injector.
func faultDevices(n int, in *fault.Injector) []*gpu.Device {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.New(gpu.Config{Name: fmt.Sprintf("GPU%d", i), Faults: in})
	}
	return devs
}

// TestVariantsEquivalentUnderTransientFaults is the cross-variant
// equivalence suite: on two seeded synthetic plates, all five variants
// run under injected transient faults that succeed on retry, and every
// displacement must match the fault-free run exactly. The fault windows
// are sized so that even if one operation absorbs every failing hit it
// still succeeds within the retry budget, making completion independent
// of goroutine scheduling.
func TestVariantsEquivalentUnderTransientFaults(t *testing.T) {
	const spec = "stitch.read:nth=1,count=3;gpu.kernel.ncc:nth=1,count=2"
	plates := []struct {
		rows, cols int
		seed       int64
	}{
		{3, 4, 1},
		{4, 3, 7},
	}
	for _, pl := range plates {
		pl := pl
		t.Run(fmt.Sprintf("%dx%d_seed%d", pl.rows, pl.cols, pl.seed), func(t *testing.T) {
			p := imagegen.DefaultParams(pl.rows, pl.cols, 128, 96)
			p.Seed = pl.seed
			ds, err := imagegen.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			src := &MemorySource{DS: ds}
			baseline := runStitcher(t, &SimpleCPU{}, src, Options{})

			for _, impl := range degradableVariants() {
				// Fresh injector per run: hit counters must start at zero
				// for every variant or the windows drift.
				inj := mustSpec(t, spec)
				devs := faultDevices(2, inj)
				res, err := impl.Run(src, Options{
					Threads: 3, Devices: devs,
					Faults: inj, MaxRetries: 3, Degrade: true,
				})
				closeDevices(devs)
				if err != nil {
					t.Fatalf("%s under transient faults: %v", impl.Name(), err)
				}
				if inj.Fired() == 0 {
					t.Fatalf("%s: injector never fired — the test is vacuous", impl.Name())
				}
				if res.Degraded() {
					t.Fatalf("%s: transient faults degraded %d tiles / %d pairs; retry should have absorbed them",
						impl.Name(), len(res.DegradedTiles), len(res.DegradedPairs))
				}
				if !res.Complete() {
					t.Fatalf("%s: incomplete result under transient faults", impl.Name())
				}
				assertSameDisplacements(t, baseline, res, "fault-free", impl.Name())
			}
		})
	}
}

// failedTiles8x8 is the known-casualty set of the deterministic
// degradation suite: an interior tile, another interior tile, and a
// corner tile.
var failedTiles8x8 = []tile.Coord{
	{Row: 1, Col: 2},
	{Row: 4, Col: 4},
	{Row: 7, Col: 0},
}

const failSpec8x8 = "stitch.read@r001_c002:always;stitch.read@r004_c004:always;stitch.read@r007_c000:always"

// expectedDegradedPairs returns every pair that touches a failed tile.
func expectedDegradedPairs(g tile.Grid, failed []tile.Coord) map[tile.Pair]bool {
	want := map[tile.Pair]bool{}
	for _, c := range failed {
		for _, p := range g.PairsOf(c) {
			want[p] = true
		}
	}
	return want
}

// checkDegraded8x8 asserts the exact casualty report of the 8x8 suite.
func checkDegraded8x8(t *testing.T, name string, g tile.Grid, res *Result) {
	t.Helper()
	if len(res.DegradedTiles) != len(failedTiles8x8) {
		t.Fatalf("%s: %d degraded tiles, want %d: %v", name, len(res.DegradedTiles), len(failedTiles8x8), res.DegradedTiles)
	}
	for i, want := range failedTiles8x8 {
		got := res.DegradedTiles[i]
		if got.Coord != want {
			t.Errorf("%s: degraded tile %d = %v, want %v", name, i, got.Coord, want)
		}
		if !fault.IsInjected(got.Err) {
			t.Errorf("%s: tile %v error does not chain to the injected fault: %v", name, want, got.Err)
		}
	}
	wantPairs := expectedDegradedPairs(g, failedTiles8x8)
	if len(res.DegradedPairs) != len(wantPairs) {
		t.Fatalf("%s: %d degraded pairs, want %d: %v", name, len(res.DegradedPairs), len(wantPairs), res.DegradedPairs)
	}
	for _, dp := range res.DegradedPairs {
		if !wantPairs[dp.Pair] {
			t.Errorf("%s: unexpected degraded pair %v", name, dp.Pair)
		}
	}
	// Every pair not touching a failed tile must have its displacement.
	missing := 0
	for _, p := range g.Pairs() {
		if wantPairs[p] {
			if _, ok := res.PairDisplacement(p); ok {
				t.Errorf("%s: degraded pair %v has a displacement", name, p)
			}
			continue
		}
		if _, ok := res.PairDisplacement(p); !ok {
			missing++
			t.Errorf("%s: surviving pair %v missing its displacement", name, p)
		}
	}
	if missing > 0 {
		t.Fatalf("%s: %d surviving pairs missing", name, missing)
	}
}

// TestDeterministicDegradation8x8 is the degradation suite: an 8x8 plate
// served from TIFF files with permanent read failures on 3 known tiles
// must complete on every variant, report exactly those tiles, degrade
// exactly the pairs touching them, and keep every other displacement.
func TestDeterministicDegradation8x8(t *testing.T) {
	p := imagegen.DefaultParams(8, 8, 64, 48)
	p.Seed = 3
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	src := &DirSource{Dir: dir, GridSpec: ds.Params.Grid}
	g := src.Grid()

	for _, impl := range degradableVariants() {
		inj := mustSpec(t, failSpec8x8)
		devs := faultDevices(2, inj)
		res, err := impl.Run(src, Options{
			Threads: 3, Devices: devs,
			Faults: inj, MaxRetries: 2, Degrade: true,
		})
		closeDevices(devs)
		if err != nil {
			t.Fatalf("%s: run failed instead of degrading: %v", impl.Name(), err)
		}
		checkDegraded8x8(t, impl.Name(), g, res)
	}
}

// TestDegradationReportIsDeterministic re-runs the concurrent variants
// and demands bit-identical casualty reports — same tiles, same pairs,
// same error strings — regardless of scheduling.
func TestDegradationReportIsDeterministic(t *testing.T) {
	src := testDataset(t, 8, 8)
	for _, impl := range []Stitcher{&MTCPU{}, &PipelinedCPU{}, &PipelinedGPU{}} {
		var first string
		for run := 0; run < 3; run++ {
			inj := mustSpec(t, failSpec8x8)
			devs := faultDevices(1, inj)
			res, err := impl.Run(src, Options{
				Threads: 4, Devices: devs,
				Faults: inj, MaxRetries: 2, Degrade: true,
			})
			closeDevices(devs)
			if err != nil {
				t.Fatalf("%s run %d: %v", impl.Name(), run, err)
			}
			report := fmt.Sprintf("tiles=%v pairs=%v", res.DegradedTiles, res.DegradedPairs)
			if run == 0 {
				first = report
				continue
			}
			if report != first {
				t.Fatalf("%s: run %d report differs:\n  first: %s\n  now:   %s", impl.Name(), run, first, report)
			}
		}
	}
}

// TestDegradeDisabledStillAborts: without Degrade, a persistent fault
// keeps the pre-existing abort semantics on every variant.
func TestDegradeDisabledStillAborts(t *testing.T) {
	src := testDataset(t, 3, 3)
	for _, impl := range degradableVariants() {
		inj := mustSpec(t, "stitch.read@r001_c001:always")
		devs := faultDevices(1, inj)
		_, err := impl.Run(src, Options{Threads: 2, Devices: devs, Faults: inj, MaxRetries: 1})
		closeDevices(devs)
		if err == nil {
			t.Errorf("%s: persistent fault swallowed with Degrade off", impl.Name())
			continue
		}
		if !fault.IsInjected(err) {
			t.Errorf("%s: error does not chain to the injection: %v", impl.Name(), err)
		}
	}
}

// TestSocketPipelinesMergeDegradation: the per-socket decomposition must
// merge casualty reports from its band pipelines — including a failed
// tile on the band boundary, which both adjacent bands read — without
// double-reporting.
func TestSocketPipelinesMergeDegradation(t *testing.T) {
	src := testDataset(t, 4, 3)
	g := src.Grid()
	// Row 1 is the boundary row of the 2-socket split: band 1 re-reads it
	// redundantly for its top north pairs.
	inj := mustSpec(t, "stitch.read@r001_c001:always")
	res, err := (&PipelinedCPU{}).Run(src, Options{
		Threads: 2, Sockets: 2, Faults: inj, MaxRetries: 1, Degrade: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DegradedTiles) != 1 || res.DegradedTiles[0].Coord != (tile.Coord{Row: 1, Col: 1}) {
		t.Fatalf("degraded tiles = %v, want exactly (1,1)", res.DegradedTiles)
	}
	wantPairs := expectedDegradedPairs(g, []tile.Coord{{Row: 1, Col: 1}})
	if len(res.DegradedPairs) != len(wantPairs) {
		t.Fatalf("degraded pairs = %v, want the %d pairs of (1,1)", res.DegradedPairs, len(wantPairs))
	}
	for _, dp := range res.DegradedPairs {
		if !wantPairs[dp.Pair] {
			t.Errorf("unexpected degraded pair %v", dp.Pair)
		}
	}
	for _, p := range g.Pairs() {
		if _, ok := res.PairDisplacement(p); ok != !wantPairs[p] {
			t.Errorf("pair %v: displacement present=%v, degraded=%v", p, ok, wantPairs[p])
		}
	}
}

// TestCorruptTileFileDegrades: a truncated TIFF is a permanent fault —
// classified tiffio.ErrCorrupt, not retried, and reported as a degraded
// tile while the rest of the plate completes.
func TestCorruptTileFileDegrades(t *testing.T) {
	p := imagegen.DefaultParams(3, 3, 64, 48)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	bad := tile.Coord{Row: 1, Col: 1}
	if err := os.WriteFile(TilePath(dir, bad), []byte("II*\x00trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := &DirSource{Dir: dir, GridSpec: ds.Params.Grid}

	res, err := (&SimpleCPU{}).Run(src, Options{Degrade: true, MaxRetries: 3})
	if err != nil {
		t.Fatalf("corrupt tile aborted the run: %v", err)
	}
	if len(res.DegradedTiles) != 1 || res.DegradedTiles[0].Coord != bad {
		t.Fatalf("degraded tiles = %v, want exactly %v", res.DegradedTiles, bad)
	}
	dtErr := res.DegradedTiles[0].Err
	if !errors.Is(dtErr, tiffio.ErrCorrupt) {
		t.Errorf("degraded tile error should classify as tiffio.ErrCorrupt: %v", dtErr)
	}
	if !fault.IsPermanent(dtErr) {
		t.Errorf("corrupt file should be a permanent fault: %v", dtErr)
	}
	if want := expectedDegradedPairs(src.Grid(), []tile.Coord{bad}); len(res.DegradedPairs) != len(want) {
		t.Errorf("degraded pairs = %v, want the %d pairs of %v", res.DegradedPairs, len(want), bad)
	}
}

// TestGPUKernelFaultDegradesPair: a persistent device-side fault on the
// NCC kernel degrades the affected pairs while the run completes and the
// device leaks nothing.
func TestGPUKernelFaultDegradesPair(t *testing.T) {
	src := testDataset(t, 3, 3)
	for _, impl := range []Stitcher{&SimpleGPU{}, &PipelinedGPU{}} {
		inj := mustSpec(t, "gpu.kernel.ncc:nth=2,count=3")
		devs := faultDevices(1, inj)
		res, err := impl.Run(src, Options{
			Threads: 2, Devices: devs, Faults: inj, MaxRetries: 1, Degrade: true,
		})
		if err != nil {
			closeDevices(devs)
			t.Fatalf("%s: %v", impl.Name(), err)
		}
		// nth=2,count=3 with MaxRetries=1 guarantees at least one pair
		// exhausts its budget (two consecutive failing attempts).
		if len(res.DegradedPairs) == 0 {
			t.Errorf("%s: kernel fault produced no degraded pairs", impl.Name())
		}
		if len(res.DegradedTiles) != 0 {
			t.Errorf("%s: kernel fault should not degrade tiles: %v", impl.Name(), res.DegradedTiles)
		}
		for _, p := range src.Grid().Pairs() {
			_, ok := res.PairDisplacement(p)
			degraded := false
			for _, dp := range res.DegradedPairs {
				if dp.Pair == p {
					degraded = true
				}
			}
			if ok == degraded {
				t.Errorf("%s: pair %v present=%v degraded=%v", impl.Name(), p, ok, degraded)
			}
		}
		used, _, _, _ := devs[0].MemStats()
		closeDevices(devs)
		if used != 0 {
			t.Errorf("%s: device leaks %d words after degraded run", impl.Name(), used)
		}
	}
}

// TestNoFaultSpecIsFreeOfSideEffects: with no injector configured, runs
// behave exactly as before the fault layer existed.
func TestNoFaultSpecIsFreeOfSideEffects(t *testing.T) {
	src := testDataset(t, 3, 3)
	base := runStitcher(t, &SimpleCPU{}, src, Options{})
	res := runStitcher(t, &SimpleCPU{}, src, Options{MaxRetries: 5, Degrade: true})
	assertSameDisplacements(t, base, res, "plain", "degrade-armed")
	if res.Degraded() {
		t.Errorf("degrade-armed clean run reported casualties: %v %v", res.DegradedTiles, res.DegradedPairs)
	}
}

func TestMaskDegradedReadsBlankForLostTiles(t *testing.T) {
	src := testDataset(t, 3, 3)
	clean := &Result{}
	if MaskDegraded(src, clean) != Source(src) {
		t.Error("clean result must return the source unchanged")
	}
	res := &Result{}
	res.DegradedTiles = append(res.DegradedTiles, DegradedTile{
		Coord: tile.Coord{Row: 1, Col: 1}, Err: errors.New("lost")})
	masked := MaskDegraded(src, res)
	g := masked.Grid()
	blank, err := masked.ReadTile(tile.Coord{Row: 1, Col: 1})
	if err != nil {
		t.Fatal(err)
	}
	if blank.W != g.TileW || blank.H != g.TileH {
		t.Errorf("blank tile %dx%d, want %dx%d", blank.W, blank.H, g.TileW, g.TileH)
	}
	for _, px := range blank.Pix {
		if px != 0 {
			t.Fatal("masked tile must be blank")
		}
	}
	real1, err := masked.ReadTile(tile.Coord{Row: 0, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.ReadTile(tile.Coord{Row: 0, Col: 0})
	if real1.Pix[100] != want.Pix[100] {
		t.Error("surviving tiles must pass through unchanged")
	}
}
