package stitch

import (
	"fmt"
	"sync"

	"hybridstitch/internal/gpu"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/tile"
)

// devicePool is the paper's per-GPU transform buffer pool: a fixed number
// of transform-sized device buffers allocated once at initialization
// ("the system allocates GPU memory only once to avoid any further
// allocations which would force a global synchronization"). acquire
// blocks until a buffer is recycled; the pool size therefore bounds the
// number of tiles in flight. The paper requires the pool to exceed the
// grid's smallest dimension so the chained-diagonal traversal can start
// recycling before the pool drains; newDevicePool enforces that.
type devicePool struct {
	ch   chan *gpu.Buffer
	bufs []*gpu.Buffer

	// Metrics are nil-safe no-ops when no recorder is attached. The pool
	// is the main blocking-wait site of the GPU variants, so acquires vs
	// waits exposes how often the paper's fixed-pool constraint actually
	// throttles the pipeline.
	acquires *obs.Counter
	waits    *obs.Counter
	inUse    *obs.Gauge

	mu   sync.Mutex
	out  int // buffers currently acquired
	peak int
}

// newDevicePool preallocates n transform buffers for grid g on dev,
// sized for the given FFT variant: full w×h words for the complex path,
// h×(w/2+1) half-spectrum buffers (via AllocSpectrum, a distinct fault
// site) for the real path — so the r2c saving roughly doubles how many
// transforms one card can pool. When rec is non-nil the pool reports
// gpu.pool.acquires, gpu.pool.waits, and the gpu.pool.in_use gauge.
func newDevicePool(dev *gpu.Device, g tile.Grid, n int, variant FFTVariant, rec *obs.Recorder) (*devicePool, error) {
	minDim := g.Rows
	if g.Cols < minDim {
		minDim = g.Cols
	}
	if n <= minDim {
		return nil, fmt.Errorf("stitch: pool of %d transforms does not exceed smallest grid dimension %d (paper's minimum-pool constraint)", n, minDim)
	}
	words := variant.transformWords(g)
	if need := int64(n) * words; need > dev.MemWords() {
		return nil, fmt.Errorf("stitch: pool of %d transforms needs %d words, device %s has %d",
			n, need, dev.Name(), dev.MemWords())
	}
	p := &devicePool{
		ch:       make(chan *gpu.Buffer, n),
		acquires: rec.Counter(obs.CounterPoolAcquires),
		waits:    rec.Counter(obs.CounterPoolWaits),
		inUse:    rec.Gauge(obs.GaugePoolInUse),
	}
	alloc := func() (*gpu.Buffer, error) {
		if variant == VariantReal {
			return dev.AllocSpectrum(g.TileH, g.TileW)
		}
		return dev.Alloc(words)
	}
	for i := 0; i < n; i++ {
		b, err := alloc()
		if err != nil {
			p.drain()
			return nil, err
		}
		p.bufs = append(p.bufs, b)
		p.ch <- b
	}
	return p, nil
}

// acquire takes a buffer, blocking until one is available.
func (p *devicePool) acquire() *gpu.Buffer {
	select {
	case b := <-p.ch:
		p.note(b)
		return b
	default:
	}
	p.waits.Add(1)
	b := <-p.ch
	p.note(b)
	return b
}

// acquireOr takes a buffer or gives up when abort is closed (pipeline
// teardown must not hang on a drained pool).
func (p *devicePool) acquireOr(abort <-chan struct{}) (*gpu.Buffer, error) {
	select {
	case b := <-p.ch:
		p.note(b)
		return b, nil
	default:
	}
	p.waits.Add(1)
	select {
	case b := <-p.ch:
		p.note(b)
		return b, nil
	case <-abort:
		return nil, fmt.Errorf("stitch: pool acquire aborted")
	}
}

func (p *devicePool) note(*gpu.Buffer) {
	p.mu.Lock()
	p.out++
	if p.out > p.peak {
		p.peak = p.out
	}
	out := p.out
	p.mu.Unlock()
	p.acquires.Add(1)
	p.inUse.Set(float64(out))
}

// release returns a buffer to the pool.
func (p *devicePool) release(b *gpu.Buffer) {
	p.mu.Lock()
	p.out--
	out := p.out
	p.mu.Unlock()
	p.inUse.Set(float64(out))
	p.ch <- b
}

// peakInUse reports the maximum number of buffers simultaneously
// acquired.
func (p *devicePool) peakInUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// drain frees all pool memory back to the device.
func (p *devicePool) drain() {
	for _, b := range p.bufs {
		_ = b.Free()
	}
	p.bufs = nil
}
