package stitch

import (
	"testing"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/obs"
)

// TestAutotuneCounterPublished guards the startRun/finishRun bridge
// ordering for the autotune decision counters: SimpleCPU constructs
// its aligner (where FFT plans are built and fft.autotune.* ticks)
// at the top of Run, so startRun must snapshot the baselines before
// that acquisition or every published delta is zero. The tile size is
// deliberately one no other test uses, so the process-global aligner
// pool cannot satisfy the acquisition without constructing plans.
func TestAutotuneCounterPublished(t *testing.T) {
	p := imagegen.DefaultParams(2, 2, 140, 76)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	if _, err := (SimpleCPU{}).Run(&MemorySource{DS: ds}, Options{Obs: rec}); err != nil {
		t.Fatal(err)
	}
	rec.Close()
	total := rec.CounterValue(obs.CounterFFTAutotuneSerial) +
		rec.CounterValue(obs.CounterFFTAutotuneSplit) +
		rec.CounterValue(obs.CounterFFTAutotuneBatched)
	if total < 1 {
		t.Fatalf("run published no autotune decisions (serial=%d split=%d batched=%d); "+
			"plan construction escaped the startRun baseline window",
			rec.CounterValue(obs.CounterFFTAutotuneSerial),
			rec.CounterValue(obs.CounterFFTAutotuneSplit),
			rec.CounterValue(obs.CounterFFTAutotuneBatched))
	}
}
