package stitch

import (
	"math"
	"testing"

	"hybridstitch/internal/gpu"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/tile"
)

// testDataset builds a small feature-rich dataset once per size.
func testDataset(t testing.TB, rows, cols int) *MemorySource {
	t.Helper()
	p := imagegen.DefaultParams(rows, cols, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return &MemorySource{DS: ds}
}

func testDevices(n int) []*gpu.Device {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.New(gpu.Config{Name: "GPU" + string(rune('0'+i))})
	}
	return devs
}

func closeDevices(devs []*gpu.Device) {
	for _, d := range devs {
		d.Close()
	}
}

func runStitcher(t testing.TB, s Stitcher, src Source, opts Options) *Result {
	t.Helper()
	res, err := s.Run(src, opts)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if !res.Complete() {
		t.Fatalf("%s: incomplete result", s.Name())
	}
	return res
}

func assertSameDisplacements(t *testing.T, ref, got *Result, refName, gotName string) {
	t.Helper()
	for _, p := range ref.Grid.Pairs() {
		dr, _ := ref.PairDisplacement(p)
		dg, ok := got.PairDisplacement(p)
		if !ok {
			t.Fatalf("%s missing pair %v", gotName, p)
		}
		if dr.X != dg.X || dr.Y != dg.Y || math.Abs(dr.Corr-dg.Corr) > 1e-9 {
			t.Errorf("pair %v %s: %s=(%d,%d,%.6f) %s=(%d,%d,%.6f)",
				p.Coord, p.Dir, refName, dr.X, dr.Y, dr.Corr, gotName, dg.X, dg.Y, dg.Corr)
		}
	}
}

func TestAllImplementationsAgree(t *testing.T) {
	// The paper's six implementations execute the same mathematical
	// operators; on identical input they must produce identical
	// displacement arrays — and, per-implementation recorders attached,
	// identical semantic observability counters (the execution-strategy-
	// independent ones; see semanticCounters).
	src := testDataset(t, 3, 4)
	devs := testDevices(2)
	defer closeDevices(devs)
	opts := Options{Threads: 3, Devices: devs}

	counters := func(s Stitcher) (*Result, map[string]int64) {
		rec := obs.New()
		defer rec.Close()
		o := opts
		o.Obs = rec
		res := runStitcher(t, s, src, o)
		cs := map[string]int64{}
		for _, name := range semanticCounters {
			cs[name] = rec.CounterValue(name)
		}
		return res, cs
	}

	ref, refCounters := counters(&SimpleCPU{})
	for _, s := range Implementations() {
		if s.Name() == "simple-cpu" {
			continue
		}
		got, gotCounters := counters(s)
		assertSameDisplacements(t, ref, got, "simple-cpu", s.Name())
		for _, name := range semanticCounters {
			if gotCounters[name] != refCounters[name] {
				t.Errorf("%s: counter %s = %d, simple-cpu = %d",
					s.Name(), name, gotCounters[name], refCounters[name])
			}
		}
	}
}

func TestDisplacementsMatchGroundTruth(t *testing.T) {
	src := testDataset(t, 3, 3)
	res := runStitcher(t, &SimpleCPU{}, src, Options{})
	bad := 0
	for _, p := range src.Grid().Pairs() {
		got, _ := res.PairDisplacement(p)
		want := src.DS.TrueDisplacement(p)
		if abs(got.X-want.X) > 1 || abs(got.Y-want.Y) > 1 {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d pairs off ground truth by more than 1 px", bad, src.Grid().NumPairs())
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestTransformsComputedOncePerTile(t *testing.T) {
	src := testDataset(t, 3, 3)
	devs := testDevices(1)
	defer closeDevices(devs)
	for _, s := range []Stitcher{&SimpleCPU{}, &MTCPU{}, &PipelinedCPU{}, &SimpleGPU{}} {
		res := runStitcher(t, s, src, Options{Threads: 2, Devices: devs})
		if res.TransformsComputed != src.Grid().NumTiles() {
			t.Errorf("%s computed %d transforms, want %d", s.Name(), res.TransformsComputed, src.Grid().NumTiles())
		}
	}
}

func TestFijiRecomputesTransforms(t *testing.T) {
	src := testDataset(t, 3, 3)
	res := runStitcher(t, &Fiji{}, src, Options{Threads: 2})
	want := 2 * src.Grid().NumPairs()
	if res.TransformsComputed != want {
		t.Errorf("fiji computed %d transforms, want %d (2 per pair)", res.TransformsComputed, want)
	}
}

func TestPipelinedGPUMultiDeviceRedundantBoundaryTransforms(t *testing.T) {
	// With 2 devices the boundary row is transformed on both, so the
	// total exceeds NumTiles by exactly the boundary width.
	src := testDataset(t, 4, 3)
	devs := testDevices(2)
	defer closeDevices(devs)
	res := runStitcher(t, &PipelinedGPU{}, src, Options{Threads: 2, Devices: devs})
	want := src.Grid().NumTiles() + src.Grid().Cols
	if res.TransformsComputed != want {
		t.Errorf("computed %d transforms, want %d (one redundant boundary row)", res.TransformsComputed, want)
	}
}

func TestPeakMemoryRespectsTraversal(t *testing.T) {
	// Chained diagonal must keep no more transforms live than row
	// traversal on a wide grid (the paper's motivation for making it
	// the default).
	p := imagegen.DefaultParams(4, 8, 64, 48)
	p.Grid.OverlapX, p.Grid.OverlapY = 0.3, 0.3
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{DS: ds}
	peak := map[Traversal]int{}
	for _, tr := range []Traversal{TraverseChainedDiagonal, TraverseRow} {
		res := runStitcher(t, &SimpleCPU{}, src, Options{Traversal: tr})
		peak[tr] = res.PeakTransformsLive
	}
	if peak[TraverseChainedDiagonal] > peak[TraverseRow] {
		t.Errorf("chained-diagonal peak %d exceeds row peak %d", peak[TraverseChainedDiagonal], peak[TraverseRow])
	}
}

func TestGPUPoolTooSmallFails(t *testing.T) {
	src := testDataset(t, 3, 3)
	devs := testDevices(1)
	defer closeDevices(devs)
	_, err := (&SimpleGPU{}).Run(src, Options{Devices: devs, PoolTransforms: 2})
	if err == nil {
		t.Fatal("pool below the minimum-pool constraint must be rejected")
	}
}

func TestGPUDeviceMemoryTooSmallFails(t *testing.T) {
	src := testDataset(t, 3, 3)
	small := gpu.New(gpu.Config{Name: "tiny", MemWords: 128 * 96 * 3})
	defer small.Close()
	_, err := (&SimpleGPU{}).Run(src, Options{Devices: []*gpu.Device{small}})
	if err == nil {
		t.Fatal("pool larger than device memory must be rejected")
	}
}

func TestGPURequiredForGPUImpls(t *testing.T) {
	src := testDataset(t, 2, 2)
	if _, err := (&SimpleGPU{}).Run(src, Options{}); err == nil {
		t.Error("simple-gpu without device should fail")
	}
	if _, err := (&PipelinedGPU{}).Run(src, Options{}); err == nil {
		t.Error("pipelined-gpu without device should fail")
	}
}

func TestGPUNPeaksRejected(t *testing.T) {
	src := testDataset(t, 2, 2)
	devs := testDevices(1)
	defer closeDevices(devs)
	if _, err := (&SimpleGPU{}).Run(src, Options{Devices: devs, NPeaks: 2}); err == nil {
		t.Error("NPeaks>1 on GPU should be rejected")
	}
}

func TestByNameAndRegistry(t *testing.T) {
	for _, s := range Implementations() {
		got, err := ByName(s.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != s.Name() {
			t.Errorf("ByName(%q) = %q", s.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestCensusMatchesPaperFigures(t *testing.T) {
	// The paper's workload: 42×59 grid of 1392×1040 tiles.
	g := tile.Grid{Rows: 42, Cols: 59, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
	c := Census(g)
	// 3nm - n - m = 3·2478 - 42 - 59 = 7333 transforms.
	if got := c.TotalForwardAndInverseFFTs(); got != 7333 {
		t.Errorf("total FFTs = %d, want 7333", got)
	}
	// "a total of 53.5 GB just for the forward transforms"
	gb := float64(c.TransformWorkingSetBytes()) / 1e9
	if gb < 53 || gb > 58 {
		t.Errorf("working set = %.1f GB, paper says ≈53.5–57", gb)
	}
	// pairs row count: 2nm-n-m
	wantPairs := int64(2*42*59 - 42 - 59)
	for _, r := range c.Rows {
		if r.Operation == "NCC (⊗)" && r.Count != wantPairs {
			t.Errorf("NCC count = %d, want %d", r.Count, wantPairs)
		}
	}
	if c.String() == "" {
		t.Error("census renders empty")
	}
}

func TestRefCounter(t *testing.T) {
	g := tile.Grid{Rows: 2, Cols: 2, TileW: 4, TileH: 4}
	rc := newRefCounter(g)
	// each corner tile of a 2x2 participates in 2 pairs
	for i := 0; i < 4; i++ {
		if rc.remaining(i) != 2 {
			t.Errorf("tile %d count %d, want 2", i, rc.remaining(i))
		}
	}
	free, err := rc.release(0)
	if err != nil || free {
		t.Errorf("first release: free=%v err=%v", free, err)
	}
	free, err = rc.release(0)
	if err != nil || !free {
		t.Errorf("second release: free=%v err=%v", free, err)
	}
	if _, err := rc.release(0); err == nil {
		t.Error("underflow should error")
	}
}

func TestMakePartitions(t *testing.T) {
	parts := makePartitions(10, 3)
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	covered := 0
	for i, pt := range parts {
		covered += pt.rowHi - pt.rowLo
		if i == 0 && pt.needLo != 0 {
			t.Error("first partition should not extend above row 0")
		}
		if i > 0 && pt.needLo != pt.rowLo-1 {
			t.Errorf("partition %d needLo=%d rowLo=%d", i, pt.needLo, pt.rowLo)
		}
	}
	if covered != 10 {
		t.Errorf("partitions cover %d rows, want 10", covered)
	}
	// More devices than rows: clamp.
	if got := len(makePartitions(2, 5)); got != 2 {
		t.Errorf("overdevised grid made %d partitions", got)
	}
}

func TestPartitionPairsCoverGrid(t *testing.T) {
	g := tile.Grid{Rows: 7, Cols: 5, TileW: 4, TileH: 4}
	parts := makePartitions(g.Rows, 3)
	seen := map[tile.Pair]bool{}
	for _, pt := range parts {
		for _, pr := range pt.pairs(g) {
			if seen[pr] {
				t.Fatalf("pair %v owned by two partitions", pr)
			}
			seen[pr] = true
		}
	}
	if len(seen) != g.NumPairs() {
		t.Errorf("partitions cover %d pairs, want %d", len(seen), g.NumPairs())
	}
}

func TestResultHelpers(t *testing.T) {
	g := tile.Grid{Rows: 2, Cols: 2, TileW: 4, TileH: 4}
	r := newResult(g)
	if r.Complete() {
		t.Error("fresh result should be incomplete")
	}
	p := tile.Pair{Coord: tile.Coord{Row: 0, Col: 1}, Dir: tile.West}
	r.setPair(p, tile.Displacement{X: 3, Y: 1, Corr: 0.9})
	d, ok := r.PairDisplacement(p)
	if !ok || d.X != 3 {
		t.Errorf("PairDisplacement = %+v, %v", d, ok)
	}
}

func TestPairOrderIsPermutationOfAllPairs(t *testing.T) {
	// Property: every traversal's pair order contains each grid pair
	// exactly once, and a pair appears only after both tiles were
	// visited.
	grids := []tile.Grid{
		{Rows: 1, Cols: 1, TileW: 4, TileH: 4},
		{Rows: 1, Cols: 7, TileW: 4, TileH: 4},
		{Rows: 5, Cols: 1, TileW: 4, TileH: 4},
		{Rows: 4, Cols: 6, TileW: 4, TileH: 4},
		{Rows: 7, Cols: 3, TileW: 4, TileH: 4},
	}
	for _, g := range grids {
		for _, tr := range Traversals() {
			order := tr.Order(g)
			if len(order) != g.NumTiles() {
				t.Fatalf("%v on %dx%d: %d tiles visited", tr, g.Rows, g.Cols, len(order))
			}
			visited := make([]bool, g.NumTiles())
			for _, c := range order {
				if visited[g.Index(c)] {
					t.Fatalf("%v revisits %v", tr, c)
				}
				visited[g.Index(c)] = true
			}
			pairSeen := map[tile.Pair]bool{}
			visited = make([]bool, g.NumTiles())
			pos := map[tile.Coord]int{}
			for i, c := range order {
				pos[c] = i
			}
			for _, p := range tr.PairOrder(g) {
				if pairSeen[p] {
					t.Fatalf("%v emits pair %v twice", tr, p)
				}
				pairSeen[p] = true
			}
			if len(pairSeen) != g.NumPairs() {
				t.Fatalf("%v on %dx%d: %d pairs, want %d", tr, g.Rows, g.Cols, len(pairSeen), g.NumPairs())
			}
		}
	}
}
