package stitch

import (
	"time"

	"hybridstitch/internal/tile"
)

// SimpleCPU is the sequential reference implementation (paper §IV.A):
// one thread, transforms computed once and freed as early as the
// traversal order allows (chained diagonal by default).
type SimpleCPU struct{}

// Name implements Stitcher.
func (SimpleCPU) Name() string { return "simple-cpu" }

// Run implements Stitcher.
func (SimpleCPU) Run(src Source, opts Options) (*Result, error) {
	g := src.Grid()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(g)
	al, err := newAligner(g, opts)
	if err != nil {
		return nil, err
	}
	cache := newHostCache(g, opts.Governor)
	res := newResult(g)
	start := time.Now()

	ensure := func(c tile.Coord) (*tile.Gray16, []complex128, error) {
		i := g.Index(c)
		if img, f := cache.get(i); img != nil {
			return img, f, nil
		}
		img, err := src.ReadTile(c)
		if err != nil {
			return nil, nil, err
		}
		cache.touch()
		f, err := al.Transform(img)
		if err != nil {
			return nil, nil, err
		}
		if err := cache.put(g.Index(c), img, f); err != nil {
			return nil, nil, err
		}
		return img, f, nil
	}

	for _, p := range opts.Traversal.PairOrder(g) {
		bImg, bF, err := ensure(p.Coord)
		if err != nil {
			return nil, err
		}
		aImg, aF, err := ensure(p.Neighbor())
		if err != nil {
			return nil, err
		}
		cache.touch()
		d, err := al.Displace(aImg, bImg, aF, bF)
		if err != nil {
			return nil, err
		}
		res.setPair(p, d)
		if err := cache.releasePair(p); err != nil {
			return nil, err
		}
	}

	res.Elapsed = time.Since(start)
	_, res.PeakTransformsLive, res.TransformsComputed = cache.stats()
	return res, nil
}
