package stitch

import (
	"time"

	"hybridstitch/internal/obs"
	"hybridstitch/internal/tile"
)

// SimpleCPU is the sequential reference implementation (paper §IV.A):
// one thread, transforms computed once and freed as early as the
// traversal order allows (chained diagonal by default).
type SimpleCPU struct{}

// Name implements Stitcher.
func (SimpleCPU) Name() string { return "simple-cpu" }

// Run implements Stitcher.
func (SimpleCPU) Run(src Source, opts Options) (*Result, error) {
	g := src.Grid()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(g)
	// startRun must precede aligner acquisition: constructing the
	// aligner is where FFT plans are built and the autotune decision
	// counters tick, and the baseline snapshot has to see the values
	// from before that.
	root, base := startRun(opts, "simple-cpu", g)
	al, err := acquireAligner(g, opts)
	if err != nil {
		root.End()
		return nil, err
	}
	defer releaseAligner(al)
	cache := newHostCache(g, opts.Governor, opts.FFTVariant)
	res := newResult(g)
	fp := opts.plan()
	ds := newDegradedSet(g)
	start := time.Now()

	ensure := func(c tile.Coord, psp *obs.Span) (*tile.Gray16, []complex128, error) {
		i := g.Index(c)
		if img, f := cache.get(i); img != nil {
			return img, f, nil
		}
		// A tile that already failed persistently stays failed; later
		// pairs must not re-attempt the read, or an Nth-hit rule could
		// let a "permanent" failure heal mid-run.
		if err := ds.tileBad(c); err != nil {
			return nil, nil, err
		}
		img, err := fp.readTile(src, c, psp)
		if err != nil {
			return nil, nil, err
		}
		cache.touch()
		f, err := fp.transform(al, c, img, psp)
		if err != nil {
			return nil, nil, err
		}
		if err := cache.put(i, img, f); err != nil {
			return nil, nil, err
		}
		return img, f, nil
	}

	// degradeTile marks the tile and the pair that needed it as degraded
	// and keeps the refcounts balanced so the surviving side is still
	// evicted on schedule.
	degradeTile := func(p tile.Pair, c tile.Coord, err error) error {
		ds.tileFailed(c, err)
		ds.pairFailed(p, pairCause(p, c, err))
		return cache.releasePair(p)
	}

	doPair := func(p tile.Pair) error {
		psp := root.Child(obs.SpanPair, pairAttr(p))
		defer psp.End()
		bImg, bF, err := ensure(p.Coord, psp)
		if err != nil {
			if !fp.degrade {
				return err
			}
			return degradeTile(p, p.Coord, err)
		}
		aImg, aF, err := ensure(p.Neighbor(), psp)
		if err != nil {
			if !fp.degrade {
				return err
			}
			return degradeTile(p, p.Neighbor(), err)
		}
		cache.touch()
		d, err := fp.displace(al, p, aImg, bImg, aF, bF, psp)
		if err != nil {
			if !fp.degrade {
				return err
			}
			ds.pairFailed(p, err)
			return cache.releasePair(p)
		}
		res.setPair(p, d)
		return cache.releasePair(p)
	}

	for _, p := range opts.Traversal.PairOrder(g) {
		if err := doPair(p); err != nil {
			return nil, err
		}
	}

	ds.finalize(res)
	res.Elapsed = time.Since(start)
	_, res.PeakTransformsLive, res.TransformsComputed = cache.stats()
	finishRun(opts, root, base, res)
	return res, nil
}
