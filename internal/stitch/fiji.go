package stitch

import (
	"sync"
	"time"

	"hybridstitch/internal/pciam"
	"hybridstitch/internal/tile"
)

// Fiji models the ImageJ/Fiji stitching plugin's architecture as the
// external baseline: the same mathematical operators (the paper stresses
// this), multithreaded, but organized as a batch of independent per-pair
// jobs with no transform reuse — each pair recomputes both of its tiles'
// forward FFTs — and with tiles re-read from the source per pair. That
// architecture, not the math, is why the plugin took >3.6 h on the
// paper's workload; this implementation reproduces the same operation-
// count blowup (≈4nm vs 3nm transforms, plus redundant reads) at any
// scale.
type Fiji struct{}

// Name implements Stitcher.
func (Fiji) Name() string { return "fiji" }

// Run implements Stitcher.
func (Fiji) Run(src Source, opts Options) (*Result, error) {
	g := src.Grid()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(g)
	res := newResult(g)
	// The baseline gets only the root span and result-level counters: the
	// golden/differential harness covers the five paper variants.
	rootSp, base := startRun(opts, "fiji", g)
	start := time.Now()

	pairs := g.Pairs()
	var resMu sync.Mutex
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var nTransforms int64
	var cntMu sync.Mutex

	next := make(chan tile.Pair)
	defer opts.reservePairWorkers(opts.Threads)()
	go func() {
		for _, p := range pairs {
			next <- p
		}
		close(next)
	}()

	for t := 0; t < opts.Threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			al, err := pciam.GetAligner(g.TileW, g.TileH, opts.pciamOptions())
			if err != nil {
				fail(err)
				return
			}
			defer pciam.PutAligner(al)
			for p := range next {
				// Re-read and re-transform both tiles: the no-reuse
				// architecture under study.
				bImg, err := src.ReadTile(p.Coord)
				if err != nil {
					fail(err)
					return
				}
				aImg, err := src.ReadTile(p.Neighbor())
				if err != nil {
					fail(err)
					return
				}
				if opts.Governor != nil {
					opts.Governor.Touch(2 * transformBytes(g, VariantComplex))
				}
				d, err := al.DisplaceTiles(aImg, bImg)
				if err != nil {
					fail(err)
					return
				}
				cntMu.Lock()
				nTransforms += 2
				cntMu.Unlock()
				resMu.Lock()
				res.setPair(p, d)
				resMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Elapsed = time.Since(start)
	res.TransformsComputed = int(nTransforms)
	// Per-pair transforms are transient: at most 2 per in-flight pair.
	res.PeakTransformsLive = 2 * opts.Threads
	finishRun(opts, rootSp, base, res)
	return res, nil
}
