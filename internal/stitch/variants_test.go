package stitch

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hybridstitch/internal/gpu"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/tile"
)

func TestFFTVariantsProduceSameDisplacements(t *testing.T) {
	src := testDataset(t, 3, 3)
	base := runStitcher(t, &SimpleCPU{}, src, Options{})
	for _, v := range []FFTVariant{VariantPadded, VariantReal} {
		got := runStitcher(t, &SimpleCPU{}, src, Options{FFTVariant: v})
		for _, p := range src.Grid().Pairs() {
			d1, _ := base.PairDisplacement(p)
			d2, _ := got.PairDisplacement(p)
			if d1.X != d2.X || d1.Y != d2.Y {
				t.Errorf("variant %q pair %v: (%d,%d) vs baseline (%d,%d)", v, p, d2.X, d2.Y, d1.X, d1.Y)
			}
		}
	}
}

func TestFFTVariantsAcrossImplementations(t *testing.T) {
	src := testDataset(t, 2, 3)
	for _, impl := range []Stitcher{&MTCPU{}, &PipelinedCPU{}} {
		for _, v := range []FFTVariant{VariantPadded, VariantReal} {
			res := runStitcher(t, impl, src, Options{Threads: 2, FFTVariant: v})
			if !res.Complete() {
				t.Errorf("%s/%s incomplete", impl.Name(), v)
			}
		}
	}
}

func TestUnknownVariantRejected(t *testing.T) {
	src := testDataset(t, 2, 2)
	if _, err := (&SimpleCPU{}).Run(src, Options{FFTVariant: "banana"}); err == nil {
		t.Error("unknown variant should fail")
	}
}

func TestGPUVariantSupport(t *testing.T) {
	src := testDataset(t, 2, 2)
	devs := testDevices(1)
	defer closeDevices(devs)
	for _, impl := range []Stitcher{&SimpleGPU{}, &PipelinedGPU{}} {
		if _, err := impl.Run(src, Options{Devices: devs, FFTVariant: VariantPadded}); err == nil {
			t.Errorf("%s should reject the padded FFT variant", impl.Name())
		}
		res, err := impl.Run(src, Options{Devices: devs, FFTVariant: VariantReal})
		if err != nil {
			t.Fatalf("%s real variant: %v", impl.Name(), err)
		}
		if !res.Complete() {
			t.Errorf("%s real variant incomplete", impl.Name())
		}
	}
}

// failingSource injects a read error on the Nth read.
type failingSource struct {
	inner  Source
	failAt int64
	reads  int64
}

func (f *failingSource) Grid() tile.Grid { return f.inner.Grid() }

func (f *failingSource) ReadTile(c tile.Coord) (*tile.Gray16, error) {
	n := atomic.AddInt64(&f.reads, 1)
	if n == f.failAt {
		return nil, errors.New("injected read failure")
	}
	return f.inner.ReadTile(c)
}

// TestReadFailurePropagatesWithoutHanging: every implementation must
// return the injected error (not deadlock, not panic) whichever read
// fails — the pipeline-teardown path.
func TestReadFailurePropagatesWithoutHanging(t *testing.T) {
	src := testDataset(t, 3, 3)
	devs := testDevices(2)
	defer closeDevices(devs)
	for _, impl := range Implementations() {
		for _, failAt := range []int64{1, 5, 9} {
			fs := &failingSource{inner: src, failAt: failAt}
			_, err := impl.Run(fs, Options{Threads: 3, Devices: devs})
			if err == nil {
				t.Errorf("%s failAt=%d: error was swallowed", impl.Name(), failAt)
				continue
			}
			if !containsInjected(err) {
				t.Errorf("%s failAt=%d: unexpected error %v", impl.Name(), failAt, err)
			}
		}
	}
}

func containsInjected(err error) bool {
	return err != nil && (contains(err.Error(), "injected read failure"))
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestReadFailureLateInPipelinedGPU exercises teardown when the failure
// arrives after the pipeline has ramped (buffers in flight, pool
// partially drained).
func TestReadFailureLateInPipelinedGPU(t *testing.T) {
	src := testDataset(t, 4, 4)
	devs := testDevices(1)
	defer closeDevices(devs)
	fs := &failingSource{inner: src, failAt: 14}
	if _, err := (&PipelinedGPU{}).Run(fs, Options{Threads: 2, Devices: devs}); err == nil {
		t.Fatal("late failure swallowed")
	}
	// The device must not leak pool memory after teardown.
	used, _, _, _ := devs[0].MemStats()
	if used != 0 {
		t.Errorf("device leaks %d words after failed run", used)
	}
}

// TestRepeatedRunsDoNotLeakDeviceMemory runs the GPU implementations
// several times on the same devices.
func TestRepeatedRunsDoNotLeakDeviceMemory(t *testing.T) {
	src := testDataset(t, 3, 3)
	devs := testDevices(1)
	defer closeDevices(devs)
	for i := 0; i < 3; i++ {
		for _, impl := range []Stitcher{&SimpleGPU{}, &PipelinedGPU{}} {
			if _, err := impl.Run(src, Options{Threads: 2, Devices: devs}); err != nil {
				t.Fatalf("run %d %s: %v", i, impl.Name(), err)
			}
		}
	}
	used, _, _, _ := devs[0].MemStats()
	if used != 0 {
		t.Errorf("device holds %d words after clean runs", used)
	}
}

// badGridSource reports a grid that fails validation.
type badGridSource struct{ Source }

func (badGridSource) Grid() tile.Grid { return tile.Grid{} }

func TestInvalidGridRejectedEverywhere(t *testing.T) {
	src := testDataset(t, 2, 2)
	bad := badGridSource{src}
	devs := testDevices(1)
	defer closeDevices(devs)
	for _, impl := range Implementations() {
		if _, err := impl.Run(bad, Options{Devices: devs}); err == nil {
			t.Errorf("%s accepted an invalid grid", impl.Name())
		}
	}
}

func TestVariantBenchmarksShape(t *testing.T) {
	// Not a timing assertion (host noise), just that all variants finish
	// and report sane metrics on a larger grid.
	src := testDataset(t, 3, 4)
	for _, v := range []FFTVariant{VariantComplex, VariantPadded, VariantReal} {
		res := runStitcher(t, &PipelinedCPU{}, src, Options{Threads: 2, FFTVariant: v})
		if res.TransformsComputed != src.Grid().NumTiles() {
			t.Errorf("variant %q computed %d transforms", v, res.TransformsComputed)
		}
		if res.Elapsed <= 0 {
			t.Errorf("variant %q reported no elapsed time", v)
		}
	}
}

func ExampleSimpleCPU() {
	p := testParams(2, 2)
	src, err := exampleSource(p)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := (&SimpleCPU{}).Run(src, Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Complete(), res.TransformsComputed)
	// Output: true 4
}

// testParams and exampleSource support the runnable example.
func testParams(rows, cols int) imagegen.Params {
	return imagegen.DefaultParams(rows, cols, 128, 96)
}

func exampleSource(p imagegen.Params) (*MemorySource, error) {
	ds, err := imagegen.Generate(p)
	if err != nil {
		return nil, err
	}
	return &MemorySource{DS: ds}, nil
}

func TestHyperQPipelinedGPU(t *testing.T) {
	// Kepler-class device + multiple FFT-issuing streams (the paper's
	// §VI.A future work) must produce identical results.
	src := testDataset(t, 3, 3)
	kepler := gpu.New(gpu.KeplerConfig("K20"))
	defer kepler.Close()
	base := runStitcher(t, &SimpleCPU{}, src, Options{})
	res := runStitcher(t, &PipelinedGPU{}, src, Options{
		Threads: 2, Devices: []*gpu.Device{kepler}, FFTStreams: 4})
	assertSameDisplacements(t, base, res, "simple-cpu", "pipelined-gpu/hyperq")
	if res.TransformsComputed != src.Grid().NumTiles() {
		t.Errorf("hyperq computed %d transforms", res.TransformsComputed)
	}
}

func TestResultSerializationRoundTrip(t *testing.T) {
	src := testDataset(t, 3, 3)
	res := runStitcher(t, &SimpleCPU{}, src, Options{})
	blob, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDisplacements(t, res, back, "original", "round-tripped")
	if back.Grid != res.Grid {
		t.Errorf("grid changed: %+v vs %+v", back.Grid, res.Grid)
	}
}

func TestResultSaveLoadFile(t *testing.T) {
	src := testDataset(t, 2, 2)
	res := runStitcher(t, &SimpleCPU{}, src, Options{})
	path := t.TempDir() + "/disp.json"
	if err := SaveResult(path, res); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Complete() {
		t.Error("loaded result incomplete")
	}
	if _, err := LoadResult(path + ".missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestResultUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"not json":     "{",
		"bad grid":     `{"rows":0}`,
		"bad dir":      `{"rows":2,"cols":2,"tile_w":4,"tile_h":4,"pairs":[{"row":0,"col":1,"dir":"up","x":1,"y":1,"corr":0.5}]}`,
		"outside grid": `{"rows":2,"cols":2,"tile_w":4,"tile_h":4,"pairs":[{"row":5,"col":1,"dir":"west","x":1,"y":1,"corr":0.5}]}`,
	}
	for name, blob := range cases {
		if _, err := UnmarshalResult([]byte(blob)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPerSocketPipelineMatchesSingle(t *testing.T) {
	// The paper's per-socket future work: 2 socket pipelines over row
	// bands must produce the single pipeline's exact displacements,
	// with one redundant boundary row of transforms.
	src := testDataset(t, 4, 3)
	single := runStitcher(t, &PipelinedCPU{}, src, Options{Threads: 2})
	socketed := runStitcher(t, &PipelinedCPU{}, src, Options{Threads: 2, Sockets: 2})
	assertSameDisplacements(t, single, socketed, "single", "per-socket")
	want := src.Grid().NumTiles() + src.Grid().Cols
	if socketed.TransformsComputed != want {
		t.Errorf("socketed computed %d transforms, want %d (one redundant boundary row)",
			socketed.TransformsComputed, want)
	}
}

func TestPerSocketClampToRows(t *testing.T) {
	src := testDataset(t, 2, 3)
	res := runStitcher(t, &PipelinedCPU{}, src, Options{Threads: 2, Sockets: 8})
	if !res.Complete() {
		t.Error("over-socketed run incomplete")
	}
}

func TestPerSocketErrorPropagates(t *testing.T) {
	src := testDataset(t, 4, 3)
	fs := &failingSource{inner: src, failAt: 7}
	if _, err := (&PipelinedCPU{}).Run(fs, Options{Threads: 2, Sockets: 2}); err == nil {
		t.Error("socketed run swallowed the error")
	}
}

func TestSeriesRunnerAcrossScans(t *testing.T) {
	p := imagegen.DefaultParams(3, 3, 96, 64)
	scans, err := imagegen.GenerateTimeSeries(imagegen.SeriesParams{Params: p, Scans: 3})
	if err != nil {
		t.Fatal(err)
	}
	sr := NewSeriesRunner(&PipelinedCPU{}, Options{Threads: 2})
	for i, ds := range scans {
		res, err := sr.RunScan(&MemorySource{DS: ds})
		if err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if !res.Complete() {
			t.Fatalf("scan %d incomplete", i)
		}
	}
	if sr.Scans() != 3 || len(sr.Elapsed()) != 3 {
		t.Errorf("scans = %d, elapsed = %d", sr.Scans(), len(sr.Elapsed()))
	}
	if !sr.WithinPeriod(time.Minute) {
		t.Error("scans should fit a one-minute period at this scale")
	}
	if sr.WithinPeriod(time.Nanosecond) {
		t.Error("nanosecond period cannot hold")
	}
}

func TestSeriesRunnerRejectsGeometryChange(t *testing.T) {
	sr := NewSeriesRunner(&SimpleCPU{}, Options{})
	a := testDataset(t, 2, 2)
	if _, err := sr.RunScan(a); err != nil {
		t.Fatal(err)
	}
	b := testDataset(t, 2, 3)
	if _, err := sr.RunScan(b); err == nil {
		t.Error("geometry change should be rejected")
	}
}

func TestSeriesRunnerEmptyPeriodCheck(t *testing.T) {
	sr := NewSeriesRunner(&SimpleCPU{}, Options{})
	if sr.WithinPeriod(time.Hour) {
		t.Error("no scans yet: WithinPeriod must be false")
	}
}

func TestQueueStatsReported(t *testing.T) {
	src := testDataset(t, 3, 3)
	devs := testDevices(1)
	defer closeDevices(devs)
	cpu := runStitcher(t, &PipelinedCPU{}, src, Options{Threads: 2})
	if len(cpu.QueueStats) == 0 {
		t.Error("pipelined-cpu reported no queue stats")
	}
	gpuRes := runStitcher(t, &PipelinedGPU{}, src, Options{Threads: 2, Devices: devs})
	if len(gpuRes.QueueStats) < 5 {
		t.Errorf("pipelined-gpu reported %d queue stats", len(gpuRes.QueueStats))
	}
	for _, qs := range append(cpu.QueueStats, gpuRes.QueueStats...) {
		if qs.MaxDepth > qs.Cap {
			t.Errorf("queue %s: depth %d exceeded cap %d", qs.Name, qs.MaxDepth, qs.Cap)
		}
		if qs.Pushes < 0 {
			t.Errorf("queue %s: negative pushes", qs.Name)
		}
	}
}
