package stitch

import (
	"fmt"
	"time"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/gpu"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/pciam"
	"hybridstitch/internal/tile"
)

// SimpleGPU is the direct port of the sequential implementation to the
// GPU (paper §IV.A): single CPU thread, one stream (CUDA's default
// stream), synchronous copies — every operation waits for the previous
// one. It keeps the Simple-CPU improvements: forward transforms stay in
// device memory in a reference-counted buffer pool and are freed when a
// tile's four pairs are done, NCC and the max reduction run as device
// kernels, and only the reduction's scalar result is copied back. The
// profiler timeline it produces is the paper's Fig 7: one kernel at a
// time with gaps for the CPU work between launches.
type SimpleGPU struct{}

// Name implements Stitcher.
func (SimpleGPU) Name() string { return "simple-gpu" }

// Run implements Stitcher.
func (SimpleGPU) Run(src Source, opts Options) (*Result, error) {
	g := src.Grid()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(g)
	if len(opts.Devices) == 0 {
		return nil, fmt.Errorf("stitch: %s requires a GPU device", SimpleGPU{}.Name())
	}
	if opts.NPeaks > 1 {
		return nil, fmt.Errorf("stitch: GPU implementations support NPeaks=1 only (max-reduction kernel)")
	}
	if opts.FFTVariant == VariantPadded {
		return nil, fmt.Errorf("stitch: GPU implementations support the complex and real FFT variants only")
	}
	realFFT := opts.FFTVariant == VariantReal
	dev := opts.Devices[0]
	stream, err := dev.NewStream("default")
	if err != nil {
		return nil, err
	}
	defer stream.Close()

	pixels := int64(g.TileW) * int64(g.TileH)
	// words is the per-tile device footprint: the full complex spectrum,
	// or the h×(w/2+1) half spectrum of the r2c path — the same halving
	// applies to the NCC and reduction kernels' traffic below.
	words := opts.FFTVariant.transformWords(g)
	pool, err := newDevicePool(dev, g, opts.PoolTransforms, opts.FFTVariant, opts.Obs)
	if err != nil {
		return nil, err
	}
	defer pool.drain()
	// One scratch buffer for the NCC/inverse product.
	allocScratch := func() (*gpu.Buffer, error) {
		if realFFT {
			return dev.AllocSpectrum(g.TileH, g.TileW)
		}
		return dev.Alloc(words)
	}
	scratch, err := allocScratch()
	if err != nil {
		return nil, err
	}
	defer func() { _ = scratch.Free() }()

	// The single stream serializes every kernel, so one real plan (with
	// its internal scratch) is safe to share between forward and inverse.
	var fwdPlan, invPlan *fft.Plan2D
	var realPlan *fft.RealPlan2D
	if realFFT {
		realPlan, err = opts.Planner.RealPlan2DOpts(g.TileH, g.TileW, opts.fftReal2DOpts())
		if err != nil {
			return nil, err
		}
	} else {
		fwdPlan, err = opts.Planner.Plan2D(g.TileH, g.TileW, fft.Forward, opts.fftPlan2DOpts())
		if err != nil {
			return nil, err
		}
		invPlan, err = opts.Planner.Plan2D(g.TileH, g.TileW, fft.Inverse, opts.fftPlan2DOpts())
		if err != nil {
			return nil, err
		}
	}

	cache := newHostCache(g, opts.Governor, opts.FFTVariant) // host images for the CCF step
	bufs := make(map[int]*gpu.Buffer)
	devRC := newRefCounter(g)
	liveBufs, peakBufs := 0, 0
	transforms := 0
	res := newResult(g)
	fp := opts.plan()
	ds := newDegradedSet(g)
	root, base := startRun(opts, "simple-gpu", g)
	start := time.Now()

	pix := make([]float64, pixels)
	ensure := func(c tile.Coord, psp *obs.Span) error {
		i := g.Index(c)
		if _, ok := bufs[i]; ok {
			return nil
		}
		// A degraded tile stays degraded: re-attempting the read here
		// would double-store the cache entry and skew hit counts.
		if err := ds.tileBad(c); err != nil {
			return err
		}
		img, err := fp.readTile(src, c, psp)
		if err != nil {
			return err
		}
		if err := cache.put(i, img, nil); err != nil {
			return err
		}
		buf := pool.acquire()
		if err := img.ToFloat(pix); err != nil {
			pool.release(buf)
			return err
		}
		// Synchronous upload and transform: wait on each event, the
		// Simple-GPU anti-pattern under study. The sequence is idempotent
		// (same pixels, same buffer), so a transient device fault is
		// absorbed by replaying it.
		usp := psp.Child(obs.SpanUploadFFT, tileAttr(c))
		err = fp.retry.Do(func() error {
			if realFFT {
				// Packed upload into the half-sized buffer, then the
				// in-place r2c transform.
				if err := stream.MemcpyH2DPackedReal(buf, pix).Wait(); err != nil {
					return err
				}
				return stream.RealFFT2D(realPlan, buf).Wait()
			}
			if err := stream.MemcpyH2DReal(buf, pix).Wait(); err != nil {
				return err
			}
			return stream.FFT2D(fwdPlan, buf).Wait()
		})
		usp.End()
		if err != nil {
			// Return the acquired buffer or a later acquire deadlocks on
			// the drained pool.
			pool.release(buf)
			return err
		}
		transforms++
		bufs[i] = buf
		liveBufs++
		if liveBufs > peakBufs {
			peakBufs = liveBufs
		}
		return nil
	}

	release := func(c tile.Coord) error {
		i := g.Index(c)
		free, err := devRC.release(i)
		if err != nil {
			return err
		}
		if free {
			// Degraded tiles never got a device buffer.
			if b, ok := bufs[i]; ok {
				pool.release(b)
				delete(bufs, i)
				liveBufs--
			}
		}
		return nil
	}

	// settle keeps the device and host refcounts moving for a pair that
	// will produce no displacement.
	settle := func(p tile.Pair) error {
		if err := release(p.Coord); err != nil {
			return err
		}
		if err := release(p.Neighbor()); err != nil {
			return err
		}
		return cache.releasePair(p)
	}

	doPair := func(p tile.Pair) error {
		psp := root.Child(obs.SpanPair, pairAttr(p))
		defer psp.End()
		if err := ensure(p.Coord, psp); err != nil {
			if !fp.degrade {
				return err
			}
			ds.tileFailed(p.Coord, err)
			ds.pairFailed(p, pairCause(p, p.Coord, err))
			return settle(p)
		}
		if err := ensure(p.Neighbor(), psp); err != nil {
			if !fp.degrade {
				return err
			}
			ds.tileFailed(p.Neighbor(), err)
			ds.pairFailed(p, pairCause(p, p.Neighbor(), err))
			return settle(p)
		}
		bi := g.Index(p.Coord)
		ai := g.Index(p.Neighbor())
		aImg, _ := cache.get(ai)
		bImg, _ := cache.get(bi)

		// The displacement tail — NCC, inverse FFT, max reduction — is one
		// fused launch per pair (gpu.launch.fused); DisableFusedNCC keeps
		// the seed's three synchronous launches. Either way the operands
		// are rewritten from the start, so the sequence replays cleanly on
		// a transient kernel fault.
		var red gpu.Reduction
		dsp := psp.Child(obs.SpanDisp, pairAttr(p))
		err := fp.retry.Do(func() error {
			// The NCC runs over the half spectrum in the real path —
			// Hermitian symmetry supplies the mirrored bins — and the c2r
			// inverse hands the reduction a real surface.
			if !opts.DisableFusedNCC {
				if realFFT {
					return stream.FusedNCCInverseMaxReal(realPlan, bufs[ai], bufs[bi], &red).Wait()
				}
				return stream.FusedNCCInverseMax(invPlan, scratch, bufs[ai], bufs[bi], &red).Wait()
			}
			if err := stream.NCC(scratch, bufs[ai], bufs[bi], int(words)).Wait(); err != nil {
				return err
			}
			if realFFT {
				if err := stream.RealIFFT2D(realPlan, scratch).Wait(); err != nil {
					return err
				}
				return stream.MaxAbsReal(scratch, int(pixels), &red).Wait()
			}
			if err := stream.FFT2D(invPlan, scratch).Wait(); err != nil {
				return err
			}
			return stream.MaxAbs(scratch, int(words), &red).Wait()
		})
		dsp.End()
		if err != nil {
			if !fp.degrade {
				return err
			}
			ds.pairFailed(p, err)
			return settle(p)
		}

		// CCF on the CPU, inline (the gap in the Fig 7 profile).
		csp := psp.Child(obs.SpanCCF, pairAttr(p))
		d := pciam.Resolve(aImg, bImg, red.Idx%g.TileW, red.Idx/g.TileW, opts.pciamOptions())
		csp.End()
		res.setPair(p, d)

		return settle(p)
	}

	for _, p := range opts.Traversal.PairOrder(g) {
		if err := doPair(p); err != nil {
			return nil, err
		}
	}

	ds.finalize(res)
	res.Elapsed = time.Since(start)
	res.PeakTransformsLive = peakBufs
	res.TransformsComputed = transforms
	finishRun(opts, root, base, res)
	return res, nil
}
