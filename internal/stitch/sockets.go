package stitch

import (
	"fmt"
	"sync"
	"time"

	"hybridstitch/internal/tile"
)

// Per-socket execution (paper §IV.B: "In the future, we will modify this
// implementation to create one execution pipeline per CPU socket"): the
// grid is decomposed into row bands exactly like the multi-GPU split,
// and each socket runs an independent 3-stage pipeline over its band with
// its own transform cache — so on a NUMA machine every pipeline touches
// only socket-local memory. Tiles on a band boundary are read and
// transformed by both adjacent sockets, the same redundancy the GPU
// partitioning accepts.

// bandSource adapts a Source to one row band.
type bandSource struct {
	inner  Source
	rowOff int
	g      tile.Grid
}

func (b bandSource) Grid() tile.Grid { return b.g }

func (b bandSource) ReadTile(c tile.Coord) (*tile.Gray16, error) {
	return b.inner.ReadTile(tile.Coord{Row: c.Row + b.rowOff, Col: c.Col})
}

// TileDetail reports fault details in the global coordinate frame, so an
// injection rule targeting one tile matches it in whichever band reads
// it.
func (b bandSource) TileDetail(c tile.Coord) string {
	return tileDetail(b.inner, tile.Coord{Row: c.Row + b.rowOff, Col: c.Col})
}

// runSockets executes one pipeline per socket and merges the results.
func runSockets(src Source, opts Options) (*Result, error) {
	g := src.Grid()
	sockets := opts.Sockets
	if sockets > g.Rows {
		sockets = g.Rows
	}
	parts := makePartitions(g.Rows, sockets)
	res := newResult(g)
	root, base := startRun(opts, "pipelined-cpu", g)
	defer root.End() // idempotent; covers the error returns below
	start := time.Now()

	perSocket := opts
	perSocket.Sockets = 1
	perSocket.Threads = opts.Threads / sockets
	if perSocket.Threads < 1 {
		perSocket.Threads = 1
	}
	// Band sub-runs must not publish result-level counters: a tile on a
	// band boundary is read — and, under injected faults, degraded — by
	// both adjacent bands, so summing per-band counters double-counts it.
	// The merged Result below is deduplicated to owner rows; counters come
	// from it alone, via finishRun on this (non-sub) run.
	perSocket.subRun = true

	type socketOut struct {
		part partition
		sub  *Result
		err  error
	}
	outs := make([]socketOut, len(parts))
	var wg sync.WaitGroup
	for i, pt := range parts {
		wg.Add(1)
		go func(i int, pt partition) {
			defer wg.Done()
			band := tile.Grid{
				Rows: pt.rowHi - pt.needLo, Cols: g.Cols,
				TileW: g.TileW, TileH: g.TileH,
				OverlapX: g.OverlapX, OverlapY: g.OverlapY,
			}
			sub, err := (PipelinedCPU{}).Run(bandSource{inner: src, rowOff: pt.needLo, g: band}, perSocket)
			outs[i] = socketOut{part: pt, sub: sub, err: err}
		}(i, pt)
	}
	wg.Wait()

	transforms, peak := 0, 0
	ds := newDegradedSet(g)
	for _, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("stitch: socket pipeline [rows %d-%d): %w", o.part.rowLo, o.part.rowHi, o.err)
		}
		transforms += o.sub.TransformsComputed
		peak += o.sub.PeakTransformsLive
		// Merge the band's casualties, filtered to the rows this
		// partition owns — a degraded boundary tile is reported by its
		// owning partition only (the neighbor band read it redundantly
		// and failed on it too).
		degraded := make(map[tile.Pair]bool, len(o.sub.DegradedPairs))
		for _, dt := range o.sub.DegradedTiles {
			gc := tile.Coord{Row: dt.Coord.Row + o.part.needLo, Col: dt.Coord.Col}
			if gc.Row < o.part.rowLo || gc.Row >= o.part.rowHi {
				continue
			}
			ds.tileFailed(gc, dt.Err)
		}
		for _, dp := range o.sub.DegradedPairs {
			degraded[dp.Pair] = true
			gc := tile.Coord{Row: dp.Pair.Coord.Row + o.part.needLo, Col: dp.Pair.Coord.Col}
			if gc.Row < o.part.rowLo || gc.Row >= o.part.rowHi {
				continue
			}
			ds.pairFailed(tile.Pair{Coord: gc, Dir: dp.Pair.Dir}, dp.Err)
		}
		// Keep only the pairs this partition owns; boundary-row west
		// pairs were computed redundantly by the partition above.
		for _, bp := range o.sub.Grid.Pairs() {
			globalCoord := tile.Coord{Row: bp.Coord.Row + o.part.needLo, Col: bp.Coord.Col}
			if globalCoord.Row < o.part.rowLo || globalCoord.Row >= o.part.rowHi {
				continue
			}
			d, ok := o.sub.PairDisplacement(bp)
			if !ok {
				if degraded[bp] {
					continue // recorded as a degraded pair above
				}
				return nil, fmt.Errorf("stitch: socket pipeline missing pair %v", bp)
			}
			res.setPair(tile.Pair{Coord: globalCoord, Dir: bp.Dir}, d)
		}
	}
	ds.finalize(res)
	res.Elapsed = time.Since(start)
	res.TransformsComputed = transforms
	res.PeakTransformsLive = peak
	finishRun(opts, root, base, res)
	return res, nil
}
