package stitch

import (
	"fmt"
	"time"

	"hybridstitch/internal/fft"
)

// SeriesRunner stitches successive scans of the same plate geometry —
// the paper's operating mode ("the plate ... is scanned every 45 min",
// 161 scans in the example experiment). Scan-invariant state is built
// once and reused: FFT planner wisdom (the paper amortizes its 4 min 20 s
// patient planning the same way) and the implementation's option set.
// Each scan then runs against warm plans, which is what makes the first
// and the hundred-and-sixty-first scan cost the same.
type SeriesRunner struct {
	impl    Stitcher
	opts    Options
	grid    gridKey
	scans   int
	elapsed []time.Duration
}

type gridKey struct {
	rows, cols, tw, th int
}

// NewSeriesRunner prepares a runner for repeated scans. The planner in
// opts is shared across scans (one is created if absent) — its wisdom
// persists, so per-scan planning cost is zero after the first scan.
func NewSeriesRunner(impl Stitcher, opts Options) *SeriesRunner {
	if opts.Planner == nil {
		opts.Planner = fft.NewPlanner(fft.Measure)
	}
	return &SeriesRunner{impl: impl, opts: opts}
}

// RunScan stitches one scan. All scans must share tile geometry (the
// same plate under the same microscope).
func (sr *SeriesRunner) RunScan(src Source) (*Result, error) {
	g := src.Grid()
	key := gridKey{g.Rows, g.Cols, g.TileW, g.TileH}
	if sr.scans == 0 {
		sr.grid = key
	} else if key != sr.grid {
		return nil, fmt.Errorf("stitch: scan geometry %+v differs from the series' %+v", key, sr.grid)
	}
	res, err := sr.impl.Run(src, sr.opts)
	if err != nil {
		return nil, err
	}
	sr.scans++
	sr.elapsed = append(sr.elapsed, res.Elapsed)
	return res, nil
}

// Scans reports how many scans have been stitched.
func (sr *SeriesRunner) Scans() int { return sr.scans }

// Elapsed returns the per-scan wall times.
func (sr *SeriesRunner) Elapsed() []time.Duration {
	return append([]time.Duration(nil), sr.elapsed...)
}

// WithinPeriod reports whether every scan so far completed inside the
// imaging period — the steerability criterion of the paper's
// introduction.
func (sr *SeriesRunner) WithinPeriod(period time.Duration) bool {
	for _, e := range sr.elapsed {
		if e > period {
			return false
		}
	}
	return sr.scans > 0
}
