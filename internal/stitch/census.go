package stitch

import (
	"fmt"
	"math"
	"strings"

	"hybridstitch/internal/tile"
)

// OpCensus reproduces the paper's Table I: per-operation counts,
// asymptotic cost, and operand sizes for an n×m grid of h×w tiles.
type OpCensus struct {
	Rows []OpRow
	Grid tile.Grid
}

// OpRow is one line of Table I.
type OpRow struct {
	Operation   string
	Count       int64
	CostPerOp   float64 // in abstract "element ops"
	OperandSize int64   // bytes
}

// Census computes Table I for a grid.
func Census(g tile.Grid) OpCensus {
	n, m := int64(g.Rows), int64(g.Cols)
	h, w := int64(g.TileH), int64(g.TileW)
	hw := float64(h * w)
	pairs := 2*n*m - n - m
	return OpCensus{
		Grid: g,
		Rows: []OpRow{
			{"Read", n * m, hw, 2 * h * w},
			{"FFT-2D", n * m, hw * math.Log(hw), 16 * h * w},
			{"NCC (⊗)", pairs, hw, 16 * h * w},
			{"FFT-2D⁻¹", pairs, hw * math.Log(hw), 16 * h * w},
			{"max-reduce", pairs, hw, 16 * h * w},
			{"CCF1..4", pairs, hw, 4 * h * w},
		},
	}
}

// TotalForwardAndInverseFFTs returns 3nm-n-m, the figure the paper quotes
// for the number of Fourier transforms in a run.
func (c OpCensus) TotalForwardAndInverseFFTs() int64 {
	n, m := int64(c.Grid.Rows), int64(c.Grid.Cols)
	return 3*n*m - n - m
}

// TransformWorkingSetBytes returns the memory needed to hold every
// forward transform at once — the number the paper contrasts with RAM
// and GPU capacity (53.5 GB for the 42×59 grid).
func (c OpCensus) TransformWorkingSetBytes() int64 {
	return int64(c.Grid.NumTiles()) * transformBytes(c.Grid, VariantComplex)
}

// String renders the census as an aligned text table.
func (c OpCensus) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I — operation counts for %dx%d grid of %dx%d tiles\n",
		c.Grid.Rows, c.Grid.Cols, c.Grid.TileW, c.Grid.TileH)
	fmt.Fprintf(&sb, "%-12s %12s %16s %14s\n", "Operation", "Count", "Cost/op (elems)", "Operand (B)")
	for _, r := range c.Rows {
		fmt.Fprintf(&sb, "%-12s %12d %16.3g %14d\n", r.Operation, r.Count, r.CostPerOp, r.OperandSize)
	}
	fmt.Fprintf(&sb, "total FFTs (fwd+inv): %d\n", c.TotalForwardAndInverseFFTs())
	fmt.Fprintf(&sb, "all-transforms working set: %.1f GB\n", float64(c.TransformWorkingSetBytes())/1e9)
	return sb.String()
}
