package stitch

import (
	"fmt"
	"sync"
	"time"

	"hybridstitch/internal/obs"
	"hybridstitch/internal/tile"
)

// MTCPU is the multithreaded SPMD implementation (paper §IV.A): the
// pair list is decomposed spatially across T threads, each running the
// same program on its partition. Transforms are computed once into a
// shared reference-counted cache guarded per tile, so boundary tiles are
// not recomputed by both partitions.
type MTCPU struct{}

// Name implements Stitcher.
func (MTCPU) Name() string { return "mt-cpu" }

// Run implements Stitcher.
func (MTCPU) Run(src Source, opts Options) (*Result, error) {
	g := src.Grid()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(g)
	threads := opts.Threads
	cache := newHostCache(g, opts.Governor, opts.FFTVariant)
	res := newResult(g)
	fp := opts.plan()
	ds := newDegradedSet(g)
	root, base := startRun(opts, "mt-cpu", g)
	start := time.Now()

	// Per-tile once guards: the first worker to need a tile computes its
	// transform; others wait on it.
	onces := make([]sync.Once, g.NumTiles())
	errs := make([]error, g.NumTiles())

	// Spatial decomposition: contiguous chunks of the traversal's pair
	// order, so each thread works a compact region and refcounts still
	// free memory early within a region.
	pairs := opts.Traversal.PairOrder(g)
	chunk := (len(pairs) + threads - 1) / threads
	defer opts.reservePairWorkers(threads)()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if lo >= len(pairs) {
			break
		}
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(part []tile.Pair) {
			defer wg.Done()
			al, err := acquireAligner(g, opts)
			if err != nil {
				fail(err)
				return
			}
			defer releaseAligner(al)
			ensure := func(c tile.Coord, psp *obs.Span) (*tile.Gray16, []complex128, error) {
				i := g.Index(c)
				onces[i].Do(func() {
					img, err := fp.readTile(src, c, psp)
					if err != nil {
						errs[i] = err
						return
					}
					cache.touch()
					f, err := fp.transform(al, c, img, psp)
					if err != nil {
						errs[i] = err
						return
					}
					errs[i] = cache.put(i, img, f)
				})
				if errs[i] != nil {
					return nil, nil, errs[i]
				}
				img, f := cache.get(i)
				if img == nil {
					return nil, nil, fmt.Errorf("stitch: tile %v evicted before use (refcount bug)", c)
				}
				return img, f, nil
			}
			// degradeTile marks the tile and the pair needing it, keeping
			// refcounts balanced; sync.Once makes "persistently failed"
			// sticky across both partitions sharing a boundary tile.
			degradeTile := func(p tile.Pair, c tile.Coord, err error) bool {
				if !fp.degrade {
					fail(err)
					return false
				}
				ds.tileFailed(c, err)
				ds.pairFailed(p, pairCause(p, c, err))
				if err := cache.releasePair(p); err != nil {
					fail(err)
					return false
				}
				return true
			}
			doPair := func(p tile.Pair) bool {
				psp := root.Child(obs.SpanPair, pairAttr(p))
				defer psp.End()
				bImg, bF, err := ensure(p.Coord, psp)
				if err != nil {
					return degradeTile(p, p.Coord, err)
				}
				aImg, aF, err := ensure(p.Neighbor(), psp)
				if err != nil {
					return degradeTile(p, p.Neighbor(), err)
				}
				cache.touch()
				d, err := fp.displace(al, p, aImg, bImg, aF, bF, psp)
				if err != nil {
					if !fp.degrade {
						fail(err)
						return false
					}
					ds.pairFailed(p, err)
					if err := cache.releasePair(p); err != nil {
						fail(err)
						return false
					}
					return true
				}
				mu.Lock()
				res.setPair(p, d)
				mu.Unlock()
				if err := cache.releasePair(p); err != nil {
					fail(err)
					return false
				}
				return true
			}
			for _, p := range part {
				if !doPair(p) {
					return
				}
			}
		}(pairs[lo:hi])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	ds.finalize(res)
	res.Elapsed = time.Since(start)
	_, res.PeakTransformsLive, res.TransformsComputed = cache.stats()
	finishRun(opts, root, base, res)
	return res, nil
}
