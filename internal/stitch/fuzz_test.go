package stitch

import (
	"testing"
)

// FuzzUnmarshalResult asserts the displacement-file parser never panics
// and only accepts structurally valid results.
func FuzzUnmarshalResult(f *testing.F) {
	f.Add([]byte(`{"rows":2,"cols":2,"tile_w":4,"tile_h":4,"pairs":[{"row":0,"col":1,"dir":"west","x":3,"y":0,"corr":0.9}]}`))
	f.Add([]byte(`{"rows":0}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"rows":2,"cols":2,"tile_w":4,"tile_h":4,"pairs":[{"row":9,"col":9,"dir":"north"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalResult(data)
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		if err := r.Grid.Validate(); err != nil {
			t.Fatalf("accepted result with invalid grid: %v", err)
		}
		if len(r.West) != r.Grid.NumTiles() || len(r.North) != r.Grid.NumTiles() {
			t.Fatal("accepted result with mismatched arrays")
		}
		// Round trip must be stable.
		blob, err := MarshalResult(r)
		if err != nil {
			t.Fatalf("marshal of accepted result failed: %v", err)
		}
		if _, err := UnmarshalResult(blob); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
