package stitch

import (
	"bytes"
	"os"
	"testing"

	"hybridstitch/internal/fault"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// FuzzUnmarshalResult asserts the displacement-file parser never panics
// and only accepts structurally valid results.
func FuzzUnmarshalResult(f *testing.F) {
	f.Add([]byte(`{"rows":2,"cols":2,"tile_w":4,"tile_h":4,"pairs":[{"row":0,"col":1,"dir":"west","x":3,"y":0,"corr":0.9}]}`))
	f.Add([]byte(`{"rows":0}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"rows":2,"cols":2,"tile_w":4,"tile_h":4,"pairs":[{"row":9,"col":9,"dir":"north"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalResult(data)
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		if err := r.Grid.Validate(); err != nil {
			t.Fatalf("accepted result with invalid grid: %v", err)
		}
		if len(r.West) != r.Grid.NumTiles() || len(r.North) != r.Grid.NumTiles() {
			t.Fatal("accepted result with mismatched arrays")
		}
		// Round trip must be stable.
		blob, err := MarshalResult(r)
		if err != nil {
			t.Fatalf("marshal of accepted result failed: %v", err)
		}
		if _, err := UnmarshalResult(blob); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzDegradedTileRead drops arbitrary bytes in place of one tile file
// of a DirSource dataset and runs a full Degrade-mode phase 1 over it.
// Whatever the bytes are, the run must not panic and must not abort:
// either the bytes decode to a valid tile of the right geometry (clean
// run), or exactly that tile is reported degraded with a permanent,
// typed error — corrupt files are not retryable.
func FuzzDegradedTileRead(f *testing.F) {
	p := imagegen.DefaultParams(2, 2, 64, 48)
	p.Seed = 5
	ds, err := imagegen.Generate(p)
	if err != nil {
		f.Fatal(err)
	}
	victim := tile.Coord{Row: 1, Col: 1}

	var valid bytes.Buffer
	if err := tiffio.Encode(&valid, ds.Tile(victim), tiffio.EncodeOpts{}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:8])
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("II*\x00trunc"))
	f.Add([]byte{})
	var wrongSize bytes.Buffer
	if err := tiffio.Encode(&wrongSize, tile.NewGray16(16, 16), tiffio.EncodeOpts{}); err != nil {
		f.Fatal(err)
	}
	f.Add(wrongSize.Bytes())

	// Adversarial-content seeds: valid TIFFs of the right geometry whose
	// pixels stress the aligner rather than the decoder. A near-blank
	// (constant) victim exercises the no-usable-peak fallback; a periodic
	// one exercises the aliased-correlation path. Both must stay clean
	// runs — content is never a fault.
	blank := tile.NewGray16(64, 48)
	for i := range blank.Pix {
		blank.Pix[i] = 6000
	}
	var blankBuf bytes.Buffer
	if err := tiffio.Encode(&blankBuf, blank, tiffio.EncodeOpts{}); err != nil {
		f.Fatal(err)
	}
	f.Add(blankBuf.Bytes())
	periodic := tile.NewGray16(64, 48)
	for y := 0; y < periodic.H; y++ {
		for x := 0; x < periodic.W; x++ {
			if (x/8+y/8)%2 == 0 {
				periodic.Set(x, y, 20000)
			} else {
				periodic.Set(x, y, 4000)
			}
		}
	}
	var periodicBuf bytes.Buffer
	if err := tiffio.Encode(&periodicBuf, periodic, tiffio.EncodeOpts{}); err != nil {
		f.Fatal(err)
	}
	f.Add(periodicBuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := WriteDataset(dir, ds); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(TilePath(dir, victim), data, 0o644); err != nil {
			t.Fatal(err)
		}
		src := &DirSource{Dir: dir, GridSpec: ds.Params.Grid}
		res, err := (&SimpleCPU{}).Run(src, Options{Degrade: true})
		if err != nil {
			t.Fatalf("degrade-mode run aborted: %v", err)
		}
		for _, dt := range res.DegradedTiles {
			if dt.Coord != victim {
				t.Fatalf("unexpected degraded tile %v (only %v was fuzzed)", dt.Coord, victim)
			}
			if !fault.IsPermanent(dt.Err) {
				t.Fatalf("degraded tile error must be permanent, got: %v", dt.Err)
			}
		}
		if len(res.DegradedTiles) == 0 && res.Degraded() {
			t.Fatalf("degraded pairs without a degraded tile: %v", res.DegradedPairs)
		}
	})
}
