package stitch

import (
	"fmt"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/pciam"
	"hybridstitch/internal/tile"
)

// This file is the stitch layer's span/metric taxonomy (DESIGN.md §10).
// Semantic counters — equal across all five variants for the same input
// — are distinguished from timing metrics, which legitimately differ:
// the differential test in obs_integration_test.go pins the former.

// Semantic counter names, re-exported from the central registry in
// internal/obs/names.go (DESIGN.md §10). CounterPairsAligned,
// CounterRetries, CounterDegradedTiles, and CounterDegradedPairs are
// variant-invariant; CounterTilesRead and CounterTransforms additionally
// depend on the device partitioning (Pipelined-GPU re-reads boundary
// rows per device band) so they are invariant only at fixed
// partitioning.
const (
	CounterTilesRead     = obs.CounterTilesRead
	CounterTransforms    = obs.CounterTransforms
	CounterPairsAligned  = obs.CounterPairsAligned
	CounterRetries       = obs.CounterRetries
	CounterDegradedTiles = obs.CounterDegradedTiles
	CounterDegradedPairs = obs.CounterDegradedPairs
)

// tileAttr renders a tile-coordinate span attribute.
func tileAttr(c tile.Coord) obs.Attr {
	return obs.String("tile", detail(c))
}

// pairAttr renders a tile-pair span attribute.
func pairAttr(p tile.Pair) obs.Attr {
	return obs.String("pair", p.Dir.String()+"_"+detail(p.Coord))
}

// runBaselines snapshots the process-wide hot-path counters at run start
// so finishRun can publish this run's deltas: fft and pciam deliberately
// do not import obs, exposing package atomics instead, and the stitch
// layer bridges them into the recorder here.
type runBaselines struct {
	transposeBlocks int64
	arenaReuse      int64
	autoSerial      int64
	autoSplit       int64
	autoBatched     int64
	batchedExecs    int64
}

// startRun opens the per-run root span on the "run" track. Nil-safe.
// Non-baseline FFT variants are tagged with an "fft" attribute; the
// baseline complex path keeps the historical attribute set so golden
// trace trees recorded before the variant existed stay valid.
func startRun(opts Options, impl string, g tile.Grid) (*obs.Span, runBaselines) {
	attrs := []obs.Attr{
		obs.String("impl", impl),
		obs.String("grid", fmt.Sprintf("%dx%d", g.Rows, g.Cols)),
	}
	if opts.FFTVariant != VariantComplex {
		attrs = append(attrs, obs.String("fft", string(opts.FFTVariant)))
	}
	base := runBaselines{
		transposeBlocks: fft.TransposeBlocks(),
		arenaReuse:      pciam.ArenaReuse(),
		batchedExecs:    fft.BatchedExecs(),
	}
	base.autoSerial, base.autoSplit, base.autoBatched = fft.AutotuneCounts()
	return opts.Obs.StartSpan(obs.TrackRun, obs.SpanStitch, attrs...), base
}

// finishRun ends the root span and publishes the run's result-level
// metrics: semantic counters derived from the Result (the quantities
// every variant must agree on), peak live transforms, and per-queue
// depth/pushes. Per-socket sub-runs (Options.subRun) end their span but
// emit no counters: runSockets publishes one set from the merged,
// boundary-deduplicated Result, so a tile degraded in two adjacent row
// bands is counted once, not once per band.
func finishRun(opts Options, root *obs.Span, base runBaselines, res *Result) {
	root.End()
	rec := opts.Obs
	if rec == nil || res == nil || opts.subRun {
		return
	}
	// Hot-path deltas. Concurrent runs sharing the process counters can
	// bleed into each other's deltas; the counters are throughput
	// telemetry, not semantic invariants, so that imprecision is accepted
	// (runs in tests and the CLI are sequential).
	rec.Counter(obs.CounterTransposeBlocks).Add(fft.TransposeBlocks() - base.transposeBlocks)
	rec.Counter(obs.CounterArenaReuse).Add(pciam.ArenaReuse() - base.arenaReuse)
	serial, split, batched := fft.AutotuneCounts()
	rec.Counter(obs.CounterFFTAutotuneSerial).Add(serial - base.autoSerial)
	rec.Counter(obs.CounterFFTAutotuneSplit).Add(split - base.autoSplit)
	rec.Counter(obs.CounterFFTAutotuneBatched).Add(batched - base.autoBatched)
	rec.Counter(obs.CounterFFTBatchedExecs).Add(fft.BatchedExecs() - base.batchedExecs)
	aligned := 0
	for _, p := range res.Grid.Pairs() {
		if _, ok := res.PairDisplacement(p); ok {
			aligned++
		}
	}
	rec.Counter(CounterPairsAligned).Add(int64(aligned))
	rec.Counter(CounterTransforms).Add(int64(res.TransformsComputed))
	rec.Counter(CounterDegradedTiles).Add(int64(len(res.DegradedTiles)))
	rec.Counter(CounterDegradedPairs).Add(int64(len(res.DegradedPairs)))
	rec.Gauge(obs.GaugeTransformsPeakLive).Set(float64(res.PeakTransformsLive))
	rec.Gauge(obs.GaugeTransformWords).Set(float64(opts.FFTVariant.transformWords(res.Grid)))
	for _, q := range res.QueueStats {
		rec.Gauge(obs.QueuePrefix + q.Name + obs.QueueMaxDepthSuffix).Set(float64(q.MaxDepth))
		rec.Counter(obs.QueuePrefix + q.Name + obs.QueuePushesSuffix).Add(q.Pushes)
	}
}
