package stitch

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hybridstitch/internal/fault"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/tile"
)

// This file is the stitch layer of the fault/degradation design: the
// per-run fault plan (injector + retry policy + degrade switch), the
// instrumented wrappers around tile reads, forward transforms, and pair
// displacements, and the thread-safe collector that turns persistent
// failures into the Result's degraded-tile/pair report instead of an
// abort. Phase 2 already tolerates missing edges (the spanning tree
// reconnects through nominal displacements), so a degraded phase-1
// result still places every surviving tile.

// faultPlan is the per-run view of the robustness options, carrying the
// run's observability recorder so every instrumented site records its
// span, latency, and retry count in one place.
type faultPlan struct {
	inj     *fault.Injector
	retry   fault.Retrier
	degrade bool
	rec     *obs.Recorder
}

// plan extracts the fault plan from the options.
func (o Options) plan() faultPlan {
	retry := fault.Retrier{
		MaxRetries: o.MaxRetries,
		Backoff:    o.RetryBackoff,
		MaxBackoff: 16 * o.RetryBackoff,
	}
	if rec := o.Obs; rec != nil {
		retries := rec.Counter(CounterRetries)
		retry.OnRetry = func(int) { retries.Add(1) }
	}
	return faultPlan{
		inj:     o.Faults,
		retry:   retry,
		degrade: o.Degrade,
		rec:     o.Obs,
	}
}

// op wraps one instrumented operation in a child span of parent, a
// latency histogram observation, and a success counter. Everything is
// nil-safe: with no recorder the overhead is a few nil checks.
func (fp faultPlan) op(parent *obs.Span, name, histogram, counter string, attr obs.Attr, run func() error) error {
	sp := parent.Child(name, attr)
	if sp == nil && fp.rec != nil {
		// Callers without a span hierarchy (Fiji's batch workers) still
		// get flat spans on a per-operation track.
		sp = fp.rec.StartSpan(obs.TrackOpPrefix+name, name, attr)
	}
	start := time.Now()
	err := run()
	sp.End()
	if fp.rec != nil {
		fp.rec.Histogram(histogram).ObserveDuration(time.Since(start))
		if err == nil {
			fp.rec.Counter(counter).Add(1)
		}
	}
	return err
}

// detail renders a coordinate as the site-detail string rules match on
// (same shape as the tile file names genplate writes).
func detail(c tile.Coord) string {
	return fmt.Sprintf("r%03d_c%03d", c.Row, c.Col)
}

// detailer lets a Source override the coordinate frame of fault details.
// Band-restricted sources (per-socket pipelines) translate to the global
// grid so a rule matching one tile hits that tile no matter which band
// reads it.
type detailer interface {
	TileDetail(c tile.Coord) string
}

// tileDetail renders the site-detail string for a read of c from src.
func tileDetail(src Source, c tile.Coord) string {
	if d, ok := src.(detailer); ok {
		return d.TileDetail(c)
	}
	return detail(c)
}

// readTile reads one tile through the "stitch.read" error point with
// bounded retry, recorded as a "read" span under parent.
func (fp faultPlan) readTile(src Source, c tile.Coord, parent *obs.Span) (*tile.Gray16, error) {
	var img *tile.Gray16
	err := fp.op(parent, obs.SpanRead, obs.HistReadSeconds, CounterTilesRead, tileAttr(c), func() error {
		return fp.retry.Do(func() error {
			if err := fp.inj.Hit(fault.SiteStitchRead, tileDetail(src, c)); err != nil {
				return err
			}
			var err error
			img, err = src.ReadTile(c)
			return err
		})
	})
	if err != nil {
		return nil, fmt.Errorf("read tile %v: %w", c, err)
	}
	return img, nil
}

// transform computes a forward FFT through the "stitch.fft" error point
// with bounded retry, recorded as an "fft" span under parent.
func (fp faultPlan) transform(al aligner, c tile.Coord, img *tile.Gray16, parent *obs.Span) ([]complex128, error) {
	var f []complex128
	err := fp.op(parent, obs.SpanFFT, obs.HistFFTSeconds, obs.CounterFFTOps, tileAttr(c), func() error {
		return fp.retry.Do(func() error {
			if err := fp.inj.Hit(fault.SiteStitchFFT, detail(c)); err != nil {
				return err
			}
			var err error
			f, err = al.Transform(img)
			return err
		})
	})
	if err != nil {
		return nil, fmt.Errorf("transform tile %v: %w", c, err)
	}
	return f, nil
}

// displace computes a pair displacement through the "pciam.ncc" error
// point with bounded retry, recorded as a "disp" span under parent.
func (fp faultPlan) displace(al aligner, p tile.Pair, aImg, bImg *tile.Gray16, aF, bF []complex128, parent *obs.Span) (tile.Displacement, error) {
	var d tile.Displacement
	err := fp.op(parent, obs.SpanDisp, obs.HistDispSeconds, obs.CounterDispOps, pairAttr(p), func() error {
		return fp.retry.Do(func() error {
			if err := fp.inj.Hit(fault.SitePCIAMNCC, detail(p.Coord)+"/"+p.Dir.String()); err != nil {
				return err
			}
			var err error
			d, err = al.Displace(aImg, bImg, aF, bF)
			return err
		})
	})
	if err != nil {
		return d, fmt.Errorf("displace pair %v: %w", p, err)
	}
	return d, nil
}

// degradedSet collects per-tile and per-pair casualties during a
// Degrade-mode run. Safe for concurrent use; finalize sorts the
// collections into the Result deterministically, so concurrent runs
// report identical lists regardless of scheduling.
type degradedSet struct {
	mu    sync.Mutex
	g     tile.Grid
	tiles map[int]error
	pairs map[tile.Pair]error
}

func newDegradedSet(g tile.Grid) *degradedSet {
	return &degradedSet{g: g, tiles: make(map[int]error), pairs: make(map[tile.Pair]error)}
}

// tileFailed records a persistent per-tile failure (first error wins).
func (d *degradedSet) tileFailed(c tile.Coord, err error) {
	d.mu.Lock()
	if _, dup := d.tiles[d.g.Index(c)]; !dup {
		d.tiles[d.g.Index(c)] = err
	}
	d.mu.Unlock()
}

// pairFailed records a persistent per-pair failure (first error wins).
func (d *degradedSet) pairFailed(p tile.Pair, err error) {
	d.mu.Lock()
	if _, dup := d.pairs[p]; !dup {
		d.pairs[p] = err
	}
	d.mu.Unlock()
}

// tileBad returns the recorded error for a degraded tile, or nil.
func (d *degradedSet) tileBad(c tile.Coord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tiles[d.g.Index(c)]
}

// pairCause builds the degraded-pair error for a pair whose side tile
// was lost. The pair itself is not named here — every consumer (CLI
// summary, report table) prints it as the row label.
func pairCause(p tile.Pair, c tile.Coord, tileErr error) error {
	return fmt.Errorf("tile %v degraded: %w", c, tileErr)
}

// finalize writes the sorted degraded report into res.
func (d *degradedSet) finalize(res *Result) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tiles) == 0 && len(d.pairs) == 0 {
		return
	}
	idxs := make([]int, 0, len(d.tiles))
	for i := range d.tiles {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		res.DegradedTiles = append(res.DegradedTiles, DegradedTile{Coord: d.g.CoordOf(i), Err: d.tiles[i]})
	}
	pairs := make([]tile.Pair, 0, len(d.pairs))
	for p := range d.pairs {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		ia, ib := d.g.Index(pairs[a].Coord), d.g.Index(pairs[b].Coord)
		if ia != ib {
			return ia < ib
		}
		return pairs[a].Dir < pairs[b].Dir
	})
	for _, p := range pairs {
		res.DegradedPairs = append(res.DegradedPairs, DegradedPair{Pair: p, Err: d.pairs[p]})
	}
}

// MaskDegraded wraps src so that tiles the run lost read as blank
// background instead of failing: phase 3 can render the composite of a
// degraded run with holes where the casualties were. Returns src
// unchanged for a clean result.
func MaskDegraded(src Source, res *Result) Source {
	if res == nil || len(res.DegradedTiles) == 0 {
		return src
	}
	bad := make(map[tile.Coord]bool, len(res.DegradedTiles))
	for _, dt := range res.DegradedTiles {
		bad[dt.Coord] = true
	}
	return &maskedSource{inner: src, bad: bad}
}

type maskedSource struct {
	inner Source
	bad   map[tile.Coord]bool
}

func (m *maskedSource) Grid() tile.Grid { return m.inner.Grid() }

func (m *maskedSource) ReadTile(c tile.Coord) (*tile.Gray16, error) {
	if m.bad[c] {
		g := m.inner.Grid()
		return tile.NewGray16(g.TileW, g.TileH), nil
	}
	return m.inner.ReadTile(c)
}
