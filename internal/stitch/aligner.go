package stitch

import (
	"fmt"

	"hybridstitch/internal/pciam"
	"hybridstitch/internal/tile"
)

// FFTVariant selects the per-pair transform path for the CPU
// implementations (the GPU pipelines use the baseline complex path).
type FFTVariant string

const (
	// VariantComplex is the paper's baseline: full complex transforms.
	VariantComplex FFTVariant = ""
	// VariantPadded zero-pads tiles to the next small-prime-factor size
	// before transforming (paper §VI.A future work).
	VariantPadded FFTVariant = "padded"
	// VariantReal uses real-to-complex transforms and half spectra
	// (paper §VI.A future work).
	VariantReal FFTVariant = "real"
)

// aligner is the per-worker alignment engine; all three pciam variants
// satisfy it.
type aligner interface {
	Transform(*tile.Gray16) ([]complex128, error)
	Displace(a, b *tile.Gray16, fa, fb []complex128) (tile.Displacement, error)
}

var (
	_ aligner = (*pciam.Aligner)(nil)
	_ aligner = (*pciam.PaddedAligner)(nil)
	_ aligner = (*pciam.RealAligner)(nil)
)

// newAligner builds the variant selected by the options.
func newAligner(g tile.Grid, opts Options) (aligner, error) {
	po := opts.pciamOptions()
	switch opts.FFTVariant {
	case VariantComplex:
		return pciam.NewAligner(g.TileW, g.TileH, po)
	case VariantPadded:
		return pciam.NewPaddedAligner(g.TileW, g.TileH, po)
	case VariantReal:
		return pciam.NewRealAligner(g.TileW, g.TileH, po)
	default:
		return nil, fmt.Errorf("stitch: unknown FFT variant %q", opts.FFTVariant)
	}
}
