package stitch

import (
	"fmt"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/pciam"
	"hybridstitch/internal/tile"
)

// FFTVariant selects the per-pair transform path. The CPU
// implementations support all three; the GPU pipelines support the
// baseline complex path and the real-to-complex path.
type FFTVariant string

const (
	// VariantComplex is the paper's baseline: full complex transforms.
	VariantComplex FFTVariant = ""
	// VariantPadded zero-pads tiles to the next small-prime-factor size
	// before transforming (paper §VI.A future work).
	VariantPadded FFTVariant = "padded"
	// VariantReal uses real-to-complex transforms and half spectra
	// (paper §VI.A future work).
	VariantReal FFTVariant = "real"
)

// transformWords is the per-tile transform footprint in complex128
// words: the full w×h spectrum for the complex path, the padded fast
// size for the padded path, and the h×(w/2+1) half spectrum — roughly
// half — for the real path. Host-cache and device-pool accounting both
// derive from it, so the r2c saving shows up in memgov pressure and GPU
// pool capacity alike.
func (v FFTVariant) transformWords(g tile.Grid) int64 {
	switch v {
	case VariantPadded:
		return int64(fft.NextFastLength(g.TileH)) * int64(fft.NextFastLength(g.TileW))
	case VariantReal:
		return int64(g.TileH) * int64(g.TileW/2+1)
	default:
		return int64(g.TileH) * int64(g.TileW)
	}
}

// aligner is the per-worker alignment engine; all three pciam variants
// satisfy it.
type aligner interface {
	Transform(*tile.Gray16) ([]complex128, error)
	Displace(a, b *tile.Gray16, fa, fb []complex128) (tile.Displacement, error)
}

var (
	_ aligner = (*pciam.Aligner)(nil)
	_ aligner = (*pciam.PaddedAligner)(nil)
	_ aligner = (*pciam.RealAligner)(nil)
)

// newAligner builds the variant selected by the options.
func newAligner(g tile.Grid, opts Options) (aligner, error) {
	po := opts.pciamOptions()
	switch opts.FFTVariant {
	case VariantComplex:
		return pciam.NewAligner(g.TileW, g.TileH, po)
	case VariantPadded:
		return pciam.NewPaddedAligner(g.TileW, g.TileH, po)
	case VariantReal:
		return pciam.NewRealAligner(g.TileW, g.TileH, po)
	default:
		return nil, fmt.Errorf("stitch: unknown FFT variant %q", opts.FFTVariant)
	}
}

// acquireAligner checks an aligner (plans and scratch arena included) out
// of the pciam pools, so per-run and per-worker aligner construction
// reuses warm memory across runs instead of re-allocating plans and
// buffers every time. Pair with releaseAligner when the worker is done.
func acquireAligner(g tile.Grid, opts Options) (aligner, error) {
	po := opts.pciamOptions()
	switch opts.FFTVariant {
	case VariantComplex:
		return pciam.GetAligner(g.TileW, g.TileH, po)
	case VariantPadded:
		return pciam.GetPaddedAligner(g.TileW, g.TileH, po)
	case VariantReal:
		return pciam.GetRealAligner(g.TileW, g.TileH, po)
	default:
		return nil, fmt.Errorf("stitch: unknown FFT variant %q", opts.FFTVariant)
	}
}

// releaseAligner returns an acquired aligner to its pool. Safe on nil.
func releaseAligner(al aligner) {
	switch a := al.(type) {
	case *pciam.Aligner:
		pciam.PutAligner(a)
	case *pciam.PaddedAligner:
		pciam.PutPaddedAligner(a)
	case *pciam.RealAligner:
		pciam.PutRealAligner(a)
	}
}
