package stitch

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"hybridstitch/internal/tile"
)

// This file serializes phase-1 results so displacements can be computed
// once and reused — across color channels (the paper's experiments
// acquire two grids per scan), across composition settings, or for
// offline inspection of per-pair confidences.

// resultJSON is the stable on-disk form of a Result.
type resultJSON struct {
	Rows     int        `json:"rows"`
	Cols     int        `json:"cols"`
	TileW    int        `json:"tile_w"`
	TileH    int        `json:"tile_h"`
	OverlapX float64    `json:"overlap_x"`
	OverlapY float64    `json:"overlap_y"`
	Pairs    []pairJSON `json:"pairs"`
}

type pairJSON struct {
	Row  int     `json:"row"`
	Col  int     `json:"col"`
	Dir  string  `json:"dir"` // "west" or "north"
	X    int     `json:"x"`
	Y    int     `json:"y"`
	Corr float64 `json:"corr"`
}

// MarshalResult encodes a result as JSON.
func MarshalResult(r *Result) ([]byte, error) {
	out := resultJSON{
		Rows: r.Grid.Rows, Cols: r.Grid.Cols,
		TileW: r.Grid.TileW, TileH: r.Grid.TileH,
		OverlapX: r.Grid.OverlapX, OverlapY: r.Grid.OverlapY,
	}
	for _, p := range r.Grid.Pairs() {
		d, ok := r.PairDisplacement(p)
		if !ok {
			continue
		}
		out.Pairs = append(out.Pairs, pairJSON{
			Row: p.Coord.Row, Col: p.Coord.Col, Dir: p.Dir.String(),
			X: d.X, Y: d.Y, Corr: d.Corr,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalResult decodes a result from JSON.
func UnmarshalResult(data []byte) (*Result, error) {
	var in resultJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("stitch: bad result JSON: %w", err)
	}
	g := tile.Grid{Rows: in.Rows, Cols: in.Cols, TileW: in.TileW, TileH: in.TileH,
		OverlapX: in.OverlapX, OverlapY: in.OverlapY}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("stitch: result JSON: %w", err)
	}
	r := newResult(g)
	for _, pj := range in.Pairs {
		var dir tile.Dir
		switch pj.Dir {
		case "west":
			dir = tile.West
		case "north":
			dir = tile.North
		default:
			return nil, fmt.Errorf("stitch: result JSON: unknown direction %q", pj.Dir)
		}
		p := tile.Pair{Coord: tile.Coord{Row: pj.Row, Col: pj.Col}, Dir: dir}
		if !g.In(p.Coord) || !g.In(p.Neighbor()) {
			return nil, fmt.Errorf("stitch: result JSON: pair %v outside grid", p)
		}
		if math.IsNaN(pj.Corr) {
			continue
		}
		r.setPair(p, tile.Displacement{X: pj.X, Y: pj.Y, Corr: pj.Corr})
	}
	return r, nil
}

// SaveResult writes a result to path as JSON.
func SaveResult(path string, r *Result) error {
	blob, err := MarshalResult(r)
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// LoadResult reads a result from path.
func LoadResult(path string) (*Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalResult(blob)
}
