package stitch

import (
	"fmt"
	"sync"
	"time"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/gpu"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/pciam"
	"hybridstitch/internal/pipeline"
	"hybridstitch/internal/tile"
)

// PipelinedGPU is the paper's headline implementation (Fig 8): one
// six-stage execution pipeline per GPU —
//
//	read → copier → FFT → bookkeeping → displacement → CCF
//
// with the image grid decomposed spatially into one row-band partition
// per device. Stages 2, 3, and 5 each own a CUDA stream so copies and
// kernels from different stages overlap on the device (the Fig 9
// profile); stage 6's CCF threads are CPU-side and shared across all
// GPUs, and the only per-pair device-to-host transfer is the scalar
// max-reduction result. Device memory is a fixed buffer pool recycled by
// reference counting through the bookkeeping stage, exactly the paper's
// memory-management design (stage 5 posts release entries to the queue
// between stages 3 and 4).
type PipelinedGPU struct{}

// Name implements Stitcher.
func (PipelinedGPU) Name() string { return "pipelined-gpu" }

// gpuTile moves a tile through the per-device stages. failed marks a
// tile whose read was lost to a persistent fault (degrade mode): the
// marker floats through the copier and FFT stages untouched — never
// acquiring a device buffer — so bookkeeping still receives exactly one
// terminal message per tile.
type gpuTile struct {
	coord  tile.Coord
	img    *tile.Gray16
	buf    *gpu.Buffer
	ev     *gpu.Event // last device op on buf
	failed error
}

// gpuBKMsg is a message to the bookkeeping stage: either a completed
// transform or a buffer-release notice from the displacement stage.
type gpuBKMsg struct {
	isRelease bool
	t         gpuTile
	release   tile.Coord
}

// gpuPair is a ready pair for the displacement stage.
type gpuPair struct {
	pair tile.Pair
	a, b gpuTile
}

// ccfTask is the CPU-side tail of one pair: resolve the reduction peak
// with cross-correlation factors.
type ccfTask struct {
	pair       tile.Pair
	aImg, bImg *tile.Gray16
	peakIdx    int
}

// partition is one device's share of the grid: the row band
// [rowLo, rowHi) owns every pair whose tile sits in the band; tiles in
// row rowLo-1 are read and transformed redundantly to serve the band's
// top north pairs.
type partition struct {
	rowLo, rowHi int
	needLo       int // rowLo-1 clamped to 0
}

func makePartitions(rows, nDev int) []partition {
	if nDev > rows {
		nDev = rows
	}
	parts := make([]partition, 0, nDev)
	for d := 0; d < nDev; d++ {
		lo := rows * d / nDev
		hi := rows * (d + 1) / nDev
		needLo := lo - 1
		if needLo < 0 {
			needLo = 0
		}
		parts = append(parts, partition{rowLo: lo, rowHi: hi, needLo: needLo})
	}
	return parts
}

// pairs lists the pairs owned by the partition.
func (pt partition) pairs(g tile.Grid) []tile.Pair {
	var ps []tile.Pair
	for r := pt.rowLo; r < pt.rowHi; r++ {
		for c := 0; c < g.Cols; c++ {
			if c > 0 {
				ps = append(ps, tile.Pair{Coord: tile.Coord{Row: r, Col: c}, Dir: tile.West})
			}
			if r > 0 {
				ps = append(ps, tile.Pair{Coord: tile.Coord{Row: r, Col: c}, Dir: tile.North})
			}
		}
	}
	return ps
}

// needOrder returns the coordinates the partition must read and
// transform, in the given traversal order restricted to the band
// [needLo, rowHi).
func (pt partition) needOrder(g tile.Grid, tr Traversal) []tile.Coord {
	band := tile.Grid{Rows: pt.rowHi - pt.needLo, Cols: g.Cols, TileW: g.TileW, TileH: g.TileH,
		OverlapX: g.OverlapX, OverlapY: g.OverlapY}
	out := make([]tile.Coord, 0, band.NumTiles())
	for _, c := range tr.Order(band) {
		out = append(out, tile.Coord{Row: c.Row + pt.needLo, Col: c.Col})
	}
	return out
}

// Run implements Stitcher.
func (PipelinedGPU) Run(src Source, opts Options) (*Result, error) {
	g := src.Grid()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(g)
	if len(opts.Devices) == 0 {
		return nil, fmt.Errorf("stitch: %s requires at least one GPU device", PipelinedGPU{}.Name())
	}
	if opts.NPeaks > 1 {
		return nil, fmt.Errorf("stitch: GPU implementations support NPeaks=1 only (max-reduction kernel)")
	}
	if opts.FFTVariant == VariantPadded {
		return nil, fmt.Errorf("stitch: GPU implementations support the complex and real FFT variants only")
	}
	realFFT := opts.FFTVariant == VariantReal

	pixels := int64(g.TileW) * int64(g.TileH)
	// words is the per-tile device footprint: the full complex spectrum,
	// or the h×(w/2+1) half spectrum of the r2c path.
	words := opts.FFTVariant.transformWords(g)
	res := newResult(g)
	fp := opts.plan()
	ds := newDegradedSet(g)
	var resMu sync.Mutex
	root, base := startRun(opts, "pipelined-gpu", g)
	var stageSpans []*obs.Span
	stageSpan := func(name string) *obs.Span {
		sp := root.ChildOn(obs.TrackStagePrefix+name, name)
		stageSpans = append(stageSpans, sp)
		return sp
	}
	start := time.Now()

	p := pipeline.New()
	p.Observe(opts.Obs)
	qCCF := pipeline.AddQueue[ccfTask](p, "disp→ccf", opts.QueueCap)
	parts := makePartitions(g.Rows, len(opts.Devices))
	var wgDisp sync.WaitGroup
	wgDisp.Add(len(parts))

	pools := make([]*devicePool, len(parts))
	scratches := make([]*gpu.Buffer, 0, len(parts))
	streams := make([]*gpu.Stream, 0, 3*len(parts))
	cleanup := func() {
		for _, s := range streams {
			s.Close()
		}
		for _, b := range scratches {
			_ = b.Free()
		}
		for _, pool := range pools {
			if pool != nil {
				pool.drain()
			}
		}
	}
	// constructionFail handles errors raised while stages of earlier
	// devices are already running: a stage failure aborts the shared
	// queues, which can surface here as a secondary ErrAborted from a
	// Push — wait for the launched stages (they unblock via the aborted
	// queues) and report the pipeline's FIRST error as the root cause.
	constructionFail := func(err error) error {
		p.Abort(err) // unblock already-launched stages
		if werr := p.Wait(); werr != nil {
			err = werr
		}
		cleanup()
		return err
	}
	var transformsTotal int64
	var tMu sync.Mutex
	type statQueue interface {
		Name() string
		Cap() int
		Stats() (int64, int)
	}
	var statQueues []statQueue
	statQueues = append(statQueues, qCCF)

	for d := range parts {
		pt := parts[d]
		dev := opts.Devices[d]
		pool, err := newDevicePool(dev, g, opts.PoolTransforms, opts.FFTVariant, opts.Obs)
		if err != nil {
			return nil, constructionFail(err)
		}
		pools[d] = pool
		// Displacement-stage NCC buffer (half spectrum in the real path).
		var scratch *gpu.Buffer
		if realFFT {
			scratch, err = dev.AllocSpectrum(g.TileH, g.TileW)
		} else {
			scratch, err = dev.Alloc(words)
		}
		if err != nil {
			return nil, constructionFail(err)
		}
		scratches = append(scratches, scratch)

		copyStream, err := dev.NewStream("copy")
		if err != nil {
			return nil, constructionFail(err)
		}
		// One FFT-issuing thread per stream; the paper uses exactly one
		// (Fermi cuFFT serialization), Hyper-Q configurations use more.
		fftStreams := make([]*gpu.Stream, opts.FFTStreams)
		fwdPlans := make([]*fft.Plan2D, opts.FFTStreams)
		// Real plans carry internal scratch, so each stream that issues
		// them needs its own instance (the cuFFT one-plan-per-stream rule):
		// one per forward FFT stream plus one for the disp stream's
		// inverse.
		fwdRealPlans := make([]*fft.RealPlan2D, opts.FFTStreams)
		for w := range fftStreams {
			st, err := dev.NewStream(fmt.Sprintf("fft%d", w))
			if err != nil {
				return nil, constructionFail(err)
			}
			streams = append(streams, st)
			fftStreams[w] = st
			if realFFT {
				plan, err := opts.Planner.RealPlan2DOpts(g.TileH, g.TileW, opts.fftReal2DOpts())
				if err != nil {
					return nil, constructionFail(err)
				}
				fwdRealPlans[w] = plan
				continue
			}
			plan, err := opts.Planner.Plan2D(g.TileH, g.TileW, fft.Forward, opts.fftPlan2DOpts())
			if err != nil {
				return nil, constructionFail(err)
			}
			fwdPlans[w] = plan
		}
		dispStream, err := dev.NewStream("disp")
		if err != nil {
			return nil, constructionFail(err)
		}
		streams = append(streams, copyStream, dispStream)

		var invPlan *fft.Plan2D
		var invRealPlan *fft.RealPlan2D
		if realFFT {
			invRealPlan, err = opts.Planner.RealPlan2DOpts(g.TileH, g.TileW, opts.fftReal2DOpts())
		} else {
			invPlan, err = opts.Planner.Plan2D(g.TileH, g.TileW, fft.Inverse, opts.fftPlan2DOpts())
		}
		if err != nil {
			return nil, constructionFail(err)
		}

		need := pt.needOrder(g, opts.Traversal)
		partPairs := pt.pairs(g)

		// Per-partition device refcounts: how many of THIS partition's
		// pairs use each tile's transform.
		devCounts := map[int]int{}
		for _, pr := range partPairs {
			devCounts[g.Index(pr.Coord)]++
			devCounts[g.Index(pr.Neighbor())]++
		}

		name := func(s string) string { return fmt.Sprintf("%s[gpu%d]", s, d) }
		qCoords := pipeline.AddQueue[tile.Coord](p, name("coords"), len(need))
		for _, c := range need {
			if err := qCoords.Push(c); err != nil {
				return nil, constructionFail(err)
			}
		}
		qCoords.Close()
		qRead := pipeline.AddQueue[gpuTile](p, name("read→copy"), opts.QueueCap)
		qCopied := pipeline.AddQueue[gpuTile](p, name("copy→fft"), opts.QueueCap)
		// All bookkeeping pushes are non-blocking: capacity covers every
		// transform arrival plus two releases per pair.
		qBK := pipeline.AddQueue[gpuBKMsg](p, name("→bk"), len(need)+2*len(partPairs))
		qPairs := pipeline.AddQueue[gpuPair](p, name("bk→disp"), opts.QueueCap)
		statQueues = append(statQueues, qRead, qCopied, qBK, qPairs)

		spRead := stageSpan(name("read"))
		spDisp := stageSpan(name("disp"))

		// Stage 1: readers.
		pipeline.Connect(p, name("read"), opts.ReadThreads, qCoords, qRead,
			func(c tile.Coord, emit func(gpuTile) error) error {
				img, err := fp.readTile(src, c, spRead)
				if err != nil {
					if !fp.degrade {
						return err
					}
					return emit(gpuTile{coord: c, failed: err})
				}
				return emit(gpuTile{coord: c, img: img})
			})

		// Stage 2: copier — one thread, async H2D on its own stream. The
		// float staging buffers are hoisted out of the per-tile loop: a
		// two-slot ring (two allocations per partition instead of one per
		// tile) lets copy k+1 stage while copy k is still reading its slot
		// — the copier only fences when it laps the ring, two copies back,
		// which by then has long resolved, preserving the copy/compute
		// overlap the trace tests pin. Copy errors still ride each tile's
		// own sticky event. Casualty markers pass through without
		// consuming a pool buffer.
		copierPix := [2][]float64{make([]float64, pixels), make([]float64, pixels)}
		var copierPending [2]*gpu.Event
		copierSlot := 0
		pipeline.Connect(p, name("copier"), 1, qRead, qCopied,
			func(t gpuTile, emit func(gpuTile) error) error {
				if t.failed != nil {
					return emit(t)
				}
				buf, err := pool.acquireOr(p.Aborted())
				if err != nil {
					return err
				}
				t.buf = buf
				slot := copierSlot
				copierSlot = 1 - copierSlot
				if ev := copierPending[slot]; ev != nil {
					_ = ev.Wait()
				}
				pix := copierPix[slot]
				if err := t.img.ToFloat(pix); err != nil {
					return err
				}
				if realFFT {
					t.ev = copyStream.MemcpyH2DPackedReal(t.buf, pix)
				} else {
					t.ev = copyStream.MemcpyH2DReal(t.buf, pix)
				}
				copierPending[slot] = t.ev
				return emit(t)
			})

		// Stage 3: FFT — one thread launches transforms (cuFFT's Fermi
		// register pressure means one in flight; the device's
		// KernelSlots enforces serialization too). Not wired through
		// Connect: qBK must stay open for the displacement stage's
		// release messages, so nobody closes it — bookkeeping
		// terminates on message counts instead.
		p.Go(name("fft"), opts.FFTStreams, func(w int) error {
			st, plan := fftStreams[w], fwdPlans[w]
			for {
				t, ok := qCopied.Pop()
				if !ok {
					return nil
				}
				if t.failed != nil {
					if err := qBK.Push(gpuBKMsg{t: t}); err != nil {
						return err
					}
					continue
				}
				if realFFT {
					t.ev = st.RealFFT2D(fwdRealPlans[w], t.buf, t.ev)
				} else {
					t.ev = st.FFT2D(plan, t.buf, t.ev)
				}
				tMu.Lock()
				transformsTotal++
				tMu.Unlock()
				if err := qBK.Push(gpuBKMsg{t: t}); err != nil {
					return err
				}
			}
		}, nil)

		// Stage 4: bookkeeping — dependency resolution and memory
		// recycling.
		p.Go(name("bk"), 1, func(int) error {
			readyT := map[int]gpuTile{}
			fftSeen := make(map[int]bool, len(need)) // terminal: transformed or failed
			failedT := map[int]error{}
			pairReady := map[tile.Pair]bool{}
			emitted, releases := 0, 0
			// decRef is the shared refcount decrement: failed tiles have
			// no entry in readyT (they never acquired a buffer), so the
			// pool release is guarded.
			decRef := func(i int) {
				devCounts[i]--
				if devCounts[i] == 0 {
					if t, ok := readyT[i]; ok {
						pool.release(t.buf)
						delete(readyT, i)
					}
				}
			}
			for emitted < len(partPairs) || releases < 2*len(partPairs) {
				msg, ok := qBK.Pop()
				if !ok {
					return fmt.Errorf("stitch: gpu%d bookkeeping starved (%d/%d pairs, %d/%d releases)",
						d, emitted, len(partPairs), releases, 2*len(partPairs))
				}
				if msg.isRelease {
					releases++
					decRef(g.Index(msg.release))
					continue
				}
				i := g.Index(msg.t.coord)
				fftSeen[i] = true
				if msg.t.failed != nil {
					failedT[i] = msg.t.failed
					ds.tileFailed(msg.t.coord, msg.t.failed)
					p.Note(msg.t.failed)
				} else {
					readyT[i] = msg.t
				}
				for _, pr := range g.PairsOf(msg.t.coord) {
					if pr.Coord.Row < pt.rowLo || pr.Coord.Row >= pt.rowHi {
						continue // another partition owns it
					}
					bi, ai := g.Index(pr.Coord), g.Index(pr.Neighbor())
					if !fftSeen[bi] || !fftSeen[ai] || pairReady[pr] {
						continue
					}
					pairReady[pr] = true
					var cause error
					switch {
					case failedT[bi] != nil:
						cause = pairCause(pr, pr.Coord, failedT[bi])
					case failedT[ai] != nil:
						cause = pairCause(pr, pr.Neighbor(), failedT[ai])
					}
					if cause != nil {
						// Degraded pairs never reach the displacement
						// stage, so no release messages will arrive for
						// them; account both sides here.
						ds.pairFailed(pr, cause)
						p.Note(cause)
						decRef(bi)
						decRef(ai)
						releases += 2
						emitted++
						continue
					}
					if err := qPairs.Push(gpuPair{pair: pr, a: readyT[ai], b: readyT[bi]}); err != nil {
						return err
					}
					emitted++
				}
			}
			qPairs.Close()
			return nil
		}, nil)

		// Stage 5: displacement — one thread, NCC + inverse FFT + max
		// reduction on the disp stream; only the scalar comes home.
		p.Go(name("disp"), 1, func(int) error {
			defer wgDisp.Done()
			for {
				gp, ok := qPairs.Pop()
				if !ok {
					return nil
				}
				// The scratch buffer is rewritten from the top of the
				// sequence, so a transient kernel fault is absorbed by
				// replaying NCC → inverse FFT → reduction. A persistent
				// fault — including an upstream copy/FFT error carried by
				// the pair's sticky events — degrades the pair.
				var red gpu.Reduction
				dsp := spDisp.Child(obs.SpanDisp, pairAttr(gp.pair))
				err := fp.retry.Do(func() error {
					// In the real path the NCC covers the half spectrum
					// only (Hermitian symmetry supplies the mirror bins)
					// and the c2r inverse hands the reduction a packed
					// real surface. One fused launch per pair unless
					// DisableFusedNCC restores the seed's three.
					if !opts.DisableFusedNCC {
						if realFFT {
							return dispStream.FusedNCCInverseMaxReal(invRealPlan, gp.a.buf, gp.b.buf, &red, gp.a.ev, gp.b.ev).Wait()
						}
						return dispStream.FusedNCCInverseMax(invPlan, scratch, gp.a.buf, gp.b.buf, &red, gp.a.ev, gp.b.ev).Wait()
					}
					ev := dispStream.NCC(scratch, gp.a.buf, gp.b.buf, int(words), gp.a.ev, gp.b.ev)
					if realFFT {
						ev = dispStream.RealIFFT2D(invRealPlan, scratch, ev)
						return dispStream.MaxAbsReal(scratch, int(pixels), &red, ev).Wait()
					}
					ev = dispStream.FFT2D(invPlan, scratch, ev)
					return dispStream.MaxAbs(scratch, int(words), &red, ev).Wait()
				})
				dsp.End()
				if err != nil && !fp.degrade {
					return err
				}
				if err != nil {
					ds.pairFailed(gp.pair, err)
					p.Note(err)
				}
				// Release device transforms through bookkeeping (paper:
				// stage 5 posts to the stage-3→4 queue) whether or not
				// the pair produced a displacement.
				if err := qBK.Push(gpuBKMsg{isRelease: true, release: gp.pair.Coord}); err != nil {
					return err
				}
				if err := qBK.Push(gpuBKMsg{isRelease: true, release: gp.pair.Neighbor()}); err != nil {
					return err
				}
				if err != nil {
					continue
				}
				if err := qCCF.Push(ccfTask{pair: gp.pair, aImg: gp.a.img, bImg: gp.b.img, peakIdx: red.Idx}); err != nil {
					return err
				}
			}
		}, nil)

	}

	// Close the shared CCF queue when every displacement stage is done.
	p.Go("ccf-closer", 1, func(int) error {
		wgDisp.Wait()
		qCCF.Close()
		return nil
	}, nil)

	// Stage 6: CCF workers, shared across GPUs.
	spCCF := stageSpan("ccf")
	pciamOpts := opts.pciamOptions()
	p.Go("ccf", opts.CCFThreads, func(int) error {
		for {
			t, ok := qCCF.Pop()
			if !ok {
				return nil
			}
			csp := spCCF.Child(obs.SpanCCF, pairAttr(t.pair))
			d := pciam.Resolve(t.aImg, t.bImg, t.peakIdx%g.TileW, t.peakIdx/g.TileW, pciamOpts)
			csp.End()
			resMu.Lock()
			res.setPair(t.pair, d)
			resMu.Unlock()
		}
	}, nil)

	err := p.Wait()
	for _, sp := range stageSpans {
		sp.End()
	}
	peak := 0
	for _, pool := range pools {
		peak += pool.peakInUse()
	}
	cleanup()
	if err != nil {
		return nil, err
	}
	ds.finalize(res)
	res.Elapsed = time.Since(start)
	res.PeakTransformsLive = peak
	tMu.Lock()
	res.TransformsComputed = int(transformsTotal)
	tMu.Unlock()
	for _, q := range statQueues {
		pushes, maxDepth := q.Stats()
		res.QueueStats = append(res.QueueStats, QueueStat{Name: q.Name(), Cap: q.Cap(), Pushes: pushes, MaxDepth: maxDepth})
	}
	finishRun(opts, root, base, res)
	return res, nil
}
