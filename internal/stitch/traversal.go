package stitch

import (
	"fmt"

	"hybridstitch/internal/tile"
)

// Traversal selects the order in which a grid's tiles are visited. The
// order controls when a tile's last dependent pair completes and hence
// when its transform memory can be recycled; the paper found chained
// diagonal frees memory earliest and made it the default.
type Traversal int

const (
	// TraverseChainedDiagonal walks anti-diagonals, alternating
	// direction between consecutive diagonals (the default).
	TraverseChainedDiagonal Traversal = iota
	// TraverseRow walks row-major.
	TraverseRow
	// TraverseColumn walks column-major.
	TraverseColumn
	// TraverseDiagonal walks anti-diagonals, all in the same direction.
	TraverseDiagonal
	// TraverseChainedRow walks rows serpentine (boustrophedon).
	TraverseChainedRow
	// TraverseChainedColumn walks columns serpentine.
	TraverseChainedColumn
)

// Traversals lists every order for the ablation experiments.
func Traversals() []Traversal {
	return []Traversal{
		TraverseChainedDiagonal, TraverseRow, TraverseColumn,
		TraverseDiagonal, TraverseChainedRow, TraverseChainedColumn,
	}
}

func (t Traversal) String() string {
	switch t {
	case TraverseChainedDiagonal:
		return "chained-diagonal"
	case TraverseRow:
		return "row"
	case TraverseColumn:
		return "column"
	case TraverseDiagonal:
		return "diagonal"
	case TraverseChainedRow:
		return "chained-row"
	case TraverseChainedColumn:
		return "chained-column"
	default:
		return fmt.Sprintf("Traversal(%d)", int(t))
	}
}

// TraversalByName parses a traversal name.
func TraversalByName(name string) (Traversal, error) {
	for _, t := range Traversals() {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("stitch: unknown traversal %q", name)
}

// Order returns every coordinate of g exactly once in this traversal's
// order.
func (t Traversal) Order(g tile.Grid) []tile.Coord {
	out := make([]tile.Coord, 0, g.NumTiles())
	switch t {
	case TraverseRow:
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				out = append(out, tile.Coord{Row: r, Col: c})
			}
		}
	case TraverseChainedRow:
		for r := 0; r < g.Rows; r++ {
			if r%2 == 0 {
				for c := 0; c < g.Cols; c++ {
					out = append(out, tile.Coord{Row: r, Col: c})
				}
			} else {
				for c := g.Cols - 1; c >= 0; c-- {
					out = append(out, tile.Coord{Row: r, Col: c})
				}
			}
		}
	case TraverseColumn:
		for c := 0; c < g.Cols; c++ {
			for r := 0; r < g.Rows; r++ {
				out = append(out, tile.Coord{Row: r, Col: c})
			}
		}
	case TraverseChainedColumn:
		for c := 0; c < g.Cols; c++ {
			if c%2 == 0 {
				for r := 0; r < g.Rows; r++ {
					out = append(out, tile.Coord{Row: r, Col: c})
				}
			} else {
				for r := g.Rows - 1; r >= 0; r-- {
					out = append(out, tile.Coord{Row: r, Col: c})
				}
			}
		}
	case TraverseDiagonal, TraverseChainedDiagonal:
		chained := t == TraverseChainedDiagonal
		for d := 0; d <= g.Rows+g.Cols-2; d++ {
			var diag []tile.Coord
			for r := 0; r < g.Rows; r++ {
				c := d - r
				if c >= 0 && c < g.Cols {
					diag = append(diag, tile.Coord{Row: r, Col: c})
				}
			}
			if chained && d%2 == 1 {
				for i := len(diag) - 1; i >= 0; i-- {
					out = append(out, diag[i])
				}
			} else {
				out = append(out, diag...)
			}
		}
	default:
		return TraverseRow.Order(g)
	}
	return out
}

// PairOrder derives the pair schedule from a tile traversal: when a tile
// is visited, every pair whose two tiles have both been visited becomes
// ready, in visit order. This is how the sequential implementations walk
// the 2nm-n-m pairs.
func (t Traversal) PairOrder(g tile.Grid) []tile.Pair {
	visited := make([]bool, g.NumTiles())
	out := make([]tile.Pair, 0, g.NumPairs())
	for _, c := range t.Order(g) {
		visited[g.Index(c)] = true
		// pairs (c, west) and (c, north)
		if c.Col > 0 && visited[g.Index(tile.Coord{Row: c.Row, Col: c.Col - 1})] {
			out = append(out, tile.Pair{Coord: c, Dir: tile.West})
		}
		if c.Row > 0 && visited[g.Index(tile.Coord{Row: c.Row - 1, Col: c.Col})] {
			out = append(out, tile.Pair{Coord: c, Dir: tile.North})
		}
		// pairs where c completes a later-visited neighbor's pair
		if c.Col+1 < g.Cols && visited[g.Index(tile.Coord{Row: c.Row, Col: c.Col + 1})] {
			out = append(out, tile.Pair{Coord: tile.Coord{Row: c.Row, Col: c.Col + 1}, Dir: tile.West})
		}
		if c.Row+1 < g.Rows && visited[g.Index(tile.Coord{Row: c.Row + 1, Col: c.Col})] {
			out = append(out, tile.Pair{Coord: tile.Coord{Row: c.Row + 1, Col: c.Col}, Dir: tile.North})
		}
	}
	return out
}
