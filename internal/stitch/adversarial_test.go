package stitch

import (
	"math"
	"testing"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/tile"
)

// TestBlankPairDegradesGracefully pins the fully-blank-pair contract:
// two constant tiles give phase correlation no peak and the CCF no
// variance, so the pair resolves to the sentinel displacement
// {0, 0, Corr: -1} — "no usable peak" — without panicking, without
// aborting the run, and WITHOUT entering the degraded lists, which are
// reserved for I/O and kernel faults. Blank content is a data property,
// not a fault; the global solve handles it through the confidence
// weighting instead.
func TestBlankPairDegradesGracefully(t *testing.T) {
	g := tile.Grid{Rows: 1, Cols: 2, TileW: 64, TileH: 48, OverlapX: 0.2, OverlapY: 0.2}
	blank := func() *tile.Gray16 {
		tl := tile.NewGray16(g.TileW, g.TileH)
		for i := range tl.Pix {
			tl.Pix[i] = 6000
		}
		return tl
	}
	ds := &imagegen.Dataset{
		Params: imagegen.Params{Grid: g},
		Tiles:  []*tile.Gray16{blank(), blank()},
		TruthX: []int{0, 51},
		TruthY: []int{0, 0},
	}
	src := &MemorySource{DS: ds}

	for _, mode := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"SimpleCPU", func() (*Result, error) { return (&SimpleCPU{}).Run(src, Options{}) }},
		{"PipelinedCPU", func() (*Result, error) { return (&PipelinedCPU{}).Run(src, Options{Threads: 2}) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			res, err := mode.run()
			if err != nil {
				t.Fatalf("blank pair aborted the run: %v", err)
			}
			p := tile.Pair{Coord: tile.Coord{Row: 0, Col: 1}, Dir: tile.West}
			d, ok := res.PairDisplacement(p)
			if !ok {
				t.Fatal("blank pair has no displacement at all")
			}
			if d.X != 0 || d.Y != 0 || d.Corr != -1 {
				t.Errorf("blank pair displacement %+v, want {0 0 -1}", d)
			}
			if res.Degraded() {
				t.Errorf("blank content must not degrade the run: tiles=%v pairs=%v",
					res.DegradedTiles, res.DegradedPairs)
			}
		})
	}
}

// TestNearBlankPlateCompletes runs the near-blank adversarial scenario
// through phase 1 end to end: sparse, dim plates may produce wrong or
// sentinel displacements, but never NaNs, never out-of-range
// correlations, and never a degraded run.
func TestNearBlankPlateCompletes(t *testing.T) {
	sc, err := imagegen.ScenarioByName("near-blank", 2, 3, 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sc.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&PipelinedCPU{}).Run(&MemorySource{DS: ds}, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Errorf("near-blank content degraded the run: %v", res.DegradedPairs)
	}
	for _, p := range res.Grid.Pairs() {
		d, ok := res.PairDisplacement(p)
		if !ok {
			continue
		}
		if math.IsNaN(d.Corr) || d.Corr < -1 || d.Corr > 1 {
			t.Errorf("pair %v correlation %v outside [-1, 1]", p, d.Corr)
		}
	}
}
