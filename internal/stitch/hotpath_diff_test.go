package stitch

import (
	"fmt"
	"testing"

	"hybridstitch/internal/fft"
)

// assertBitIdenticalDisplacements is the strict (exact ==) form of
// assertSameDisplacements: the hot-path rewrites promise bit-identical
// output, not merely output within tolerance.
func assertBitIdenticalDisplacements(t *testing.T, ref, got *Result, refName, gotName string) {
	t.Helper()
	for _, p := range ref.Grid.Pairs() {
		dr, _ := ref.PairDisplacement(p)
		dg, ok := got.PairDisplacement(p)
		if !ok {
			t.Fatalf("%s missing pair %v", gotName, p)
		}
		if dr.X != dg.X || dr.Y != dg.Y || dr.Corr != dg.Corr {
			t.Errorf("pair %v %s: %s=(%d,%d,%v) %s=(%d,%d,%v)",
				p.Coord, p.Dir, refName, dr.X, dr.Y, dr.Corr, gotName, dg.X, dg.Y, dg.Corr)
		}
	}
}

// TestHotPathTogglesBitIdentical is the differential suite for the
// zero-allocation hot path: for the complex and real FFT variants, all
// five implementations run under every combination of the two hot-path
// toggles — blocked transpose on/off and fused NCC on/off — and every
// displacement must equal the seed configuration (legacy gather,
// unfused NCC, Simple-CPU) exactly. The transpose toggle is plan-scoped
// (Options.LegacyTranspose) rather than a process global, so the seed
// reference and the candidates can coexist without serializing.
func TestHotPathTogglesBitIdentical(t *testing.T) {
	src := testDataset(t, 3, 3)

	for _, variant := range []FFTVariant{VariantComplex, VariantReal} {
		variant := variant
		name := "complex"
		if variant == VariantReal {
			name = "real"
		}
		t.Run(name, func(t *testing.T) {
			// Seed reference: legacy gather column pass, unfused NCC.
			ref := runStitcher(t, &SimpleCPU{}, src, Options{
				FFTVariant: variant, DisableFusedNCC: true,
				LegacyTranspose: true, FFTExec: fft.ExecSerial, DisableFFTBatch: true,
			})

			for _, impl := range degradableVariants() {
				for _, blocked := range []bool{true, false} {
					for _, fused := range []bool{true, false} {
						label := fmt.Sprintf("%s/blocked=%v/fused=%v", impl.Name(), blocked, fused)
						devs := testDevices(2)
						res := runStitcher(t, impl, src, Options{
							Threads: 3, Devices: devs,
							FFTVariant:      variant,
							DisableFusedNCC: !fused,
							LegacyTranspose: !blocked,
						})
						closeDevices(devs)
						assertBitIdenticalDisplacements(t, ref, res, "seed", label)
					}
				}
			}
		})
	}
}

// TestPaddedHotPathBitIdentical covers the CPU-only padded variant's hot
// path with the same toggle matrix on the sequential implementation.
func TestPaddedHotPathBitIdentical(t *testing.T) {
	src := testDataset(t, 3, 3)

	ref := runStitcher(t, &SimpleCPU{}, src, Options{
		FFTVariant: VariantPadded, DisableFusedNCC: true,
		LegacyTranspose: true, FFTExec: fft.ExecSerial, DisableFFTBatch: true,
	})

	for _, blocked := range []bool{true, false} {
		for _, fused := range []bool{true, false} {
			res := runStitcher(t, &SimpleCPU{}, src, Options{
				Threads: 2, FFTVariant: VariantPadded, DisableFusedNCC: !fused,
				LegacyTranspose: !blocked,
			})
			assertBitIdenticalDisplacements(t, ref, res, "seed",
				fmt.Sprintf("padded/blocked=%v/fused=%v", blocked, fused))
		}
	}
}

// TestFFTExecTogglesBitIdentical extends the differential wall along the
// execution-strategy axis: pinned-serial, pinned-split, autotuned, and
// batched-vs-unbatched pair transforms must all produce displacements
// bit-identical to the serial unbatched reference, across the complex,
// padded, and real variants. Split and batched execution only
// repartition the row/column loops — the per-element arithmetic is
// unchanged — so exact equality is the contract, not a tolerance.
func TestFFTExecTogglesBitIdentical(t *testing.T) {
	src := testDataset(t, 3, 3)
	pool := fft.NewWorkerPool(2)
	defer pool.Close()

	for _, variant := range []FFTVariant{VariantComplex, VariantPadded, VariantReal} {
		variant := variant
		vname := string(variant)
		if vname == "" {
			vname = "complex"
		}
		t.Run(vname, func(t *testing.T) {
			ref := runStitcher(t, &SimpleCPU{}, src, Options{
				FFTVariant: variant, FFTExec: fft.ExecSerial, DisableFFTBatch: true,
			})
			for _, exec := range []fft.ExecStrategy{fft.ExecAuto, fft.ExecSerial, fft.ExecSplit} {
				for _, batch := range []bool{true, false} {
					res := runStitcher(t, &SimpleCPU{}, src, Options{
						FFTVariant:      variant,
						FFTExec:         exec,
						FFTPool:         pool,
						DisableFFTBatch: !batch,
					})
					assertBitIdenticalDisplacements(t, ref, res, "serial",
						fmt.Sprintf("%s/exec=%v/batch=%v", vname, exec, batch))
				}
			}
		})
	}
}
