package stitch

import (
	"fmt"
	"testing"

	"hybridstitch/internal/fft"
)

// assertBitIdenticalDisplacements is the strict (exact ==) form of
// assertSameDisplacements: the hot-path rewrites promise bit-identical
// output, not merely output within tolerance.
func assertBitIdenticalDisplacements(t *testing.T, ref, got *Result, refName, gotName string) {
	t.Helper()
	for _, p := range ref.Grid.Pairs() {
		dr, _ := ref.PairDisplacement(p)
		dg, ok := got.PairDisplacement(p)
		if !ok {
			t.Fatalf("%s missing pair %v", gotName, p)
		}
		if dr.X != dg.X || dr.Y != dg.Y || dr.Corr != dg.Corr {
			t.Errorf("pair %v %s: %s=(%d,%d,%v) %s=(%d,%d,%v)",
				p.Coord, p.Dir, refName, dr.X, dr.Y, dr.Corr, gotName, dg.X, dg.Y, dg.Corr)
		}
	}
}

// TestHotPathTogglesBitIdentical is the differential suite for the
// zero-allocation hot path: for the complex and real FFT variants, all
// five implementations run under every combination of the two hot-path
// toggles — blocked transpose on/off and fused NCC on/off — and every
// displacement must equal the seed configuration (both off, Simple-CPU)
// exactly. This is what licenses shipping the new path enabled by
// default.
func TestHotPathTogglesBitIdentical(t *testing.T) {
	src := testDataset(t, 3, 3)
	defer fft.SetBlockedTranspose(true)

	for _, variant := range []FFTVariant{VariantComplex, VariantReal} {
		variant := variant
		name := "complex"
		if variant == VariantReal {
			name = "real"
		}
		t.Run(name, func(t *testing.T) {
			// Seed reference: legacy gather column pass, unfused NCC.
			fft.SetBlockedTranspose(false)
			ref := runStitcher(t, &SimpleCPU{}, src, Options{FFTVariant: variant, DisableFusedNCC: true})
			fft.SetBlockedTranspose(true)

			for _, impl := range degradableVariants() {
				for _, blocked := range []bool{true, false} {
					for _, fused := range []bool{true, false} {
						label := fmt.Sprintf("%s/blocked=%v/fused=%v", impl.Name(), blocked, fused)
						fft.SetBlockedTranspose(blocked)
						devs := testDevices(2)
						res := runStitcher(t, impl, src, Options{
							Threads: 3, Devices: devs,
							FFTVariant:      variant,
							DisableFusedNCC: !fused,
						})
						closeDevices(devs)
						fft.SetBlockedTranspose(true)
						assertBitIdenticalDisplacements(t, ref, res, "seed", label)
					}
				}
			}
		})
	}
}

// TestPaddedHotPathBitIdentical covers the CPU-only padded variant's hot
// path with the same toggle matrix on the sequential implementation.
func TestPaddedHotPathBitIdentical(t *testing.T) {
	src := testDataset(t, 3, 3)
	defer fft.SetBlockedTranspose(true)

	fft.SetBlockedTranspose(false)
	ref := runStitcher(t, &SimpleCPU{}, src, Options{FFTVariant: VariantPadded, DisableFusedNCC: true})
	fft.SetBlockedTranspose(true)

	for _, blocked := range []bool{true, false} {
		for _, fused := range []bool{true, false} {
			fft.SetBlockedTranspose(blocked)
			res := runStitcher(t, &SimpleCPU{}, src, Options{
				Threads: 2, FFTVariant: VariantPadded, DisableFusedNCC: !fused,
			})
			fft.SetBlockedTranspose(true)
			assertBitIdenticalDisplacements(t, ref, res, "seed",
				fmt.Sprintf("padded/blocked=%v/fused=%v", blocked, fused))
		}
	}
}
