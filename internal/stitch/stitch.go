// Package stitch is the paper's primary contribution: phase-1 relative
// displacement computation over a grid of overlapping microscope tiles,
// in six interchangeable implementations —
//
//	Simple-CPU     sequential reference (paper §IV.A)
//	MT-CPU         SPMD spatial decomposition across threads
//	Pipelined-CPU  3-stage pipeline: reader → fft/displacement → bookkeeping
//	Simple-GPU     synchronous single-stream GPU port
//	Pipelined-GPU  6-stage pipeline per GPU (paper Fig 8)
//	Fiji           the ImageJ/Fiji-plugin-shaped baseline (batch phases,
//	               no transform reuse)
//
// plus the supporting machinery they share: tile sources, traversal
// orders, transform reference counting, and the Table I operation census.
// Every implementation produces identical displacement arrays for the
// same input; they differ only in scheduling, concurrency, and memory
// behavior.
package stitch

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hybridstitch/internal/fault"
	"hybridstitch/internal/fft"
	"hybridstitch/internal/gpu"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/memgov"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/pciam"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// Source supplies tiles to a stitcher. ReadTile is called once per tile
// per run by the well-behaved implementations (the Fiji baseline calls it
// more often, which is part of what it models). Implementations must be
// safe for concurrent ReadTile calls.
type Source interface {
	Grid() tile.Grid
	ReadTile(c tile.Coord) (*tile.Gray16, error)
}

// MemorySource serves a generated dataset from memory.
type MemorySource struct {
	DS *imagegen.Dataset
	// ReadDelay, if positive, sleeps per ReadTile to model disk/decode
	// latency in pipeline-overlap experiments.
	ReadDelay time.Duration
}

// Grid returns the dataset's grid.
func (m *MemorySource) Grid() tile.Grid { return m.DS.Params.Grid }

// ReadTile returns the tile at c.
func (m *MemorySource) ReadTile(c tile.Coord) (*tile.Gray16, error) {
	if !m.Grid().In(c) {
		return nil, fmt.Errorf("stitch: coordinate %v outside grid", c)
	}
	if m.ReadDelay > 0 {
		time.Sleep(m.ReadDelay)
	}
	return m.DS.Tile(c), nil
}

// DirSource reads tiles from per-tile TIFF files laid out as
// <dir>/tile_r{row}_c{col}.tif (the layout cmd/genplate writes).
type DirSource struct {
	Dir      string
	GridSpec tile.Grid
}

// TilePath returns the canonical file name for a coordinate.
func TilePath(dir string, c tile.Coord) string {
	return filepath.Join(dir, fmt.Sprintf("tile_r%03d_c%03d.tif", c.Row, c.Col))
}

// Grid returns the declared grid.
func (d *DirSource) Grid() tile.Grid { return d.GridSpec }

// ReadTile decodes one tile file. Corrupt files and geometry mismatches
// are marked fault.Permanent: re-reading cannot fix the bytes, so the
// retry layer degrades the tile immediately instead of spinning.
func (d *DirSource) ReadTile(c tile.Coord) (*tile.Gray16, error) {
	img, err := tiffio.ReadFile(TilePath(d.Dir, c))
	if err != nil {
		err = fmt.Errorf("stitch: tile %v: %w", c, err)
		if errors.Is(err, tiffio.ErrCorrupt) {
			err = fault.Permanent(err)
		}
		return nil, err
	}
	g := d.GridSpec
	if img.W != g.TileW || img.H != g.TileH {
		return nil, fault.Permanent(fmt.Errorf("stitch: tile %v is %dx%d, grid declares %dx%d", c, img.W, img.H, g.TileW, g.TileH))
	}
	return img, nil
}

// WriteDataset writes a dataset to dir in DirSource layout, creating the
// directory if needed.
func WriteDataset(dir string, ds *imagegen.Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := ds.Params.Grid
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			coord := tile.Coord{Row: r, Col: c}
			if err := tiffio.WriteFile(TilePath(dir, coord), ds.Tile(coord)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Options configures a stitching run. The zero value is usable.
type Options struct {
	// Threads is the worker count for the CPU implementations (the
	// paper sweeps 1–16).
	Threads int
	// CCFThreads is the CCF-stage worker count in Pipelined-GPU (the
	// paper's Fig 10 sweep); 0 means Threads.
	CCFThreads int
	// ReadThreads is the reader-stage worker count in the pipelines.
	ReadThreads int
	// NPeaks and PositiveOnly pass through to pciam.Options.
	NPeaks       int
	PositiveOnly bool
	// Traversal selects the grid walk order for the sequential and GPU
	// implementations; the paper defaults to chained diagonal because it
	// lets transform memory be freed earliest.
	Traversal Traversal
	// Planner supplies FFT wisdom shared across workers; nil builds an
	// estimate-mode planner per run.
	Planner *fft.Planner
	// Governor, if set, accounts transform memory against a simulated
	// physical RAM limit and injects paging stalls (Fig 5).
	Governor *memgov.Governor
	// Devices are the simulated GPUs for the GPU implementations.
	Devices []*gpu.Device
	// PoolTransforms is the per-GPU buffer pool size in transforms. The
	// paper requires it to exceed the smallest grid dimension; 0 picks
	// 2×min(rows, cols)+4.
	PoolTransforms int
	// QueueCap bounds the inter-stage queues; 0 picks 4× the stage
	// worker count.
	QueueCap int
	// FFTVariant selects the transform path: baseline complex, padded,
	// or real-to-complex (the paper's §VI.A future-work optimizations).
	// CPU implementations support all three; the GPU implementations
	// support complex and real (padded is CPU-only).
	FFTVariant FFTVariant
	// FFTExec selects how each 2-D transform uses the machine: the zero
	// value (auto) lets the plan-time autotuner measure serial vs split
	// vs batched per transform size and core budget; "serial" pins the
	// zero-allocation path; "split" pins the recursive intra-transform
	// split. Pair-level and transform-level parallelism draw from ONE
	// worker budget (FFTPool), so split transforms only use cores the
	// pair workers left idle.
	FFTExec fft.ExecStrategy
	// FFTPool overrides the shared transform worker budget (tests and
	// experiments); nil means fft.SharedPool(), sized GOMAXPROCS-1.
	FFTPool *fft.WorkerPool
	// LegacyTranspose routes FFT column passes through the seed's
	// strided gather instead of the blocked transpose. Plan-scoped (not
	// a process global), so differential tests can run both paths
	// concurrently.
	LegacyTranspose bool
	// DisableFFTBatch forces the two forward transforms of a pair to
	// run separately even when the autotuner chose batched passes.
	// Batching is also disabled automatically when fault injection is
	// active, so injected per-transform faults keep their sequence.
	DisableFFTBatch bool
	// Sockets runs one independent CPU pipeline per (simulated) CPU
	// socket in Pipelined-CPU, each over a row band with its own
	// transform cache — the paper's stated future work for the CPU
	// version (NUMA locality). 0 or 1 keeps the single pipeline.
	Sockets int
	// FFTStreams is the number of CPU threads issuing forward-FFT
	// kernels per GPU in Pipelined-GPU. The paper pins it to 1 (Fermi
	// cuFFT cannot run kernels concurrently); raising it exploits a
	// Kepler/Hyper-Q device (paper §VI.A future work) — pair it with a
	// gpu.Config.KernelSlots > 1.
	FFTStreams int
	// Faults is the fault-injection registry consulted at the stitch
	// layer's error points (sites "stitch.read", "stitch.fft",
	// "pciam.ncc"). Nil — the default — makes every site a single nil
	// check.
	Faults *fault.Injector
	// MaxRetries bounds re-attempts of a failed tile read, transform, or
	// pair displacement before the failure is treated as persistent.
	// Zero means no retries.
	MaxRetries int
	// RetryBackoff is the base delay between retry attempts (doubling,
	// capped at 16×). Zero — the test configuration — never sleeps.
	RetryBackoff time.Duration
	// Degrade switches every implementation except the Fiji baseline to
	// partial-failure semantics: a persistent per-tile or per-pair error
	// marks that tile/pair degraded instead of aborting the run, and the
	// result lists the casualties. Phase 2 proceeds on the surviving
	// displacement graph.
	Degrade bool
	// DisableFusedNCC reverts the per-pair displacement tail to the seed
	// behavior: a separate NCC pass before the inverse FFT on CPU, and
	// the three-launch NCC → inverse → reduce sequence on GPU. The fused
	// and unfused paths are bit-identical (the differential test pins
	// this); the toggle exists for that test and for perf triage.
	DisableFusedNCC bool
	// Obs, if set, records spans and metrics for the run into the shared
	// observability layer: a root "run" span with per-stage and
	// per-tile-pair children, semantic counters (tiles read, transforms,
	// pairs aligned, retries, degraded work), queue-depth gauges, and
	// read/FFT/displace latency histograms. Nil — the default — costs a
	// nil check per site. Pass the same recorder in gpu.Config.Obs to put
	// GPU streams on the same clock.
	Obs *obs.Recorder

	// subRun marks a per-socket band sub-run launched by runSockets: the
	// sub-run records its own span tree but suppresses result-level
	// counter emission, which runSockets performs once from the merged
	// Result so boundary-row casualties are not double-counted.
	subRun bool
}

func (o Options) withDefaults(g tile.Grid) Options {
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.CCFThreads < 1 {
		o.CCFThreads = o.Threads
	}
	if o.ReadThreads < 1 {
		o.ReadThreads = 1
	}
	if o.FFTStreams < 1 {
		o.FFTStreams = 1
	}
	if o.Planner == nil {
		o.Planner = fft.NewPlanner(fft.Estimate)
	}
	if o.PoolTransforms < 1 {
		minDim := g.Rows
		if g.Cols < minDim {
			minDim = g.Cols
		}
		o.PoolTransforms = 2*minDim + 4
	}
	if o.QueueCap < 1 {
		o.QueueCap = 4 * o.Threads
	}
	return o
}

// pciamOptions builds the per-pair aligner configuration.
func (o Options) pciamOptions() pciam.Options {
	return pciam.Options{
		NPeaks:          o.NPeaks,
		PositiveOnly:    o.PositiveOnly,
		Planner:         o.Planner,
		DisableFusion:   o.DisableFusedNCC,
		FFTExec:         o.FFTExec,
		FFTPool:         o.FFTPool,
		LegacyTranspose: o.LegacyTranspose,
		// Batched pair transforms collapse two fault-injection hit points
		// into one; keep the injected sequence exact whenever an injector
		// is present.
		DisableBatch: o.DisableFFTBatch || o.Faults != nil,
	}
}

// TransformPool resolves the worker budget pair-level runners reserve
// from: Options.FFTPool when set, else the shared process pool. Exported
// so downstream phases (the phase-2 PCG solver) can draw on the same
// budget instead of oversubscribing alongside it.
func (o Options) TransformPool() *fft.WorkerPool {
	if o.FFTPool != nil {
		return o.FFTPool
	}
	return fft.SharedPool()
}

// fftPlan2DOpts and fftReal2DOpts carry the run-level FFT execution
// toggles to plans the stitch layer builds directly (the GPU simulators'
// host-side transforms); pciam-built plans get them via pciamOptions.
func (o Options) fftPlan2DOpts() fft.Plan2DOpts {
	return fft.Plan2DOpts{Exec: o.FFTExec, Pool: o.FFTPool, LegacyGather: o.LegacyTranspose}
}

func (o Options) fftReal2DOpts() fft.Real2DOpts {
	return fft.Real2DOpts{Workers: 1, Exec: o.FFTExec, Pool: o.FFTPool, LegacyGather: o.LegacyTranspose}
}

// reservePairWorkers charges n pair-level workers against the shared
// transform worker budget, so intra-transform splits only fan out onto
// cores the pair loop left idle (one budget, not two: T pair workers +
// per-transform splits must not oversubscribe the machine). The first
// worker is the caller's own goroutine and is free; the reservation is
// best-effort (non-blocking). The returned func releases the tokens and
// must be called when the pair workers exit.
func (o Options) reservePairWorkers(n int) func() {
	if n <= 1 {
		return func() {}
	}
	pool := o.TransformPool()
	got := pool.Reserve(n - 1)
	return func() { pool.Release(got) }
}

// Result is the phase-1 output: the two displacement arrays of the
// paper's Fig 4, plus run metrics.
type Result struct {
	Grid tile.Grid
	// West[i] is the displacement of tile i relative to its west
	// neighbor; valid iff the tile has one (col > 0). North likewise.
	West, North []tile.Displacement
	// Elapsed is the end-to-end wall time of the run.
	Elapsed time.Duration
	// PeakTransformsLive is the maximum number of tile transforms
	// simultaneously resident — the memory-management metric the
	// traversal-order ablation reads.
	PeakTransformsLive int
	// TransformsComputed counts forward FFT executions (the Fiji
	// baseline recomputes; the others hit exactly NumTiles).
	TransformsComputed int
	// QueueStats reports, for the pipelined implementations, each
	// inter-stage queue's total pushes and maximum depth — the
	// backpressure picture behind the QueueCap ablation.
	QueueStats []QueueStat
	// DegradedTiles lists tiles whose read or transform failed
	// persistently in a Degrade-mode run, sorted in grid-index order.
	DegradedTiles []DegradedTile
	// DegradedPairs lists pairs without a displacement — either a
	// side tile was degraded or the pair's own computation failed
	// persistently — sorted by coordinate then direction.
	DegradedPairs []DegradedPair
}

// DegradedTile is one tile lost to a persistent failure, with the error
// chain that condemned it.
type DegradedTile struct {
	Coord tile.Coord
	Err   error
}

// DegradedPair is one pair displacement lost to a persistent failure.
type DegradedPair struct {
	Pair tile.Pair
	Err  error
}

// Degraded reports whether the run lost any tiles or pairs.
func (r *Result) Degraded() bool {
	return len(r.DegradedTiles) > 0 || len(r.DegradedPairs) > 0
}

// QueueStat summarizes one inter-stage queue after a run.
type QueueStat struct {
	Name     string
	Cap      int
	Pushes   int64
	MaxDepth int
}

// newResult allocates a result shell for grid g.
func newResult(g tile.Grid) *Result {
	n := g.NumTiles()
	r := &Result{Grid: g, West: make([]tile.Displacement, n), North: make([]tile.Displacement, n)}
	for i := range r.West {
		r.West[i].Corr = math.NaN()
		r.North[i].Corr = math.NaN()
	}
	return r
}

// setPair records a pair's displacement.
func (r *Result) setPair(p tile.Pair, d tile.Displacement) {
	i := r.Grid.Index(p.Coord)
	if p.Dir == tile.West {
		r.West[i] = d
	} else {
		r.North[i] = d
	}
}

// PairDisplacement returns the stored displacement for a pair and whether
// it was computed.
func (r *Result) PairDisplacement(p tile.Pair) (tile.Displacement, bool) {
	i := r.Grid.Index(p.Coord)
	var d tile.Displacement
	if p.Dir == tile.West {
		d = r.West[i]
	} else {
		d = r.North[i]
	}
	return d, !math.IsNaN(d.Corr)
}

// Complete reports whether every pair of the grid has a displacement.
func (r *Result) Complete() bool {
	for _, p := range r.Grid.Pairs() {
		if _, ok := r.PairDisplacement(p); !ok {
			return false
		}
	}
	return true
}

// Stitcher is one implementation of the phase-1 computation.
type Stitcher interface {
	Name() string
	Run(src Source, opts Options) (*Result, error)
}

// Implementations returns the registry of stitchers in the paper's
// Table II order.
func Implementations() []Stitcher {
	return []Stitcher{
		&Fiji{},
		&SimpleCPU{},
		&MTCPU{},
		&PipelinedCPU{},
		&SimpleGPU{},
		&PipelinedGPU{},
	}
}

// ByName finds a stitcher by its registry name.
func ByName(name string) (Stitcher, error) {
	var names []string
	for _, s := range Implementations() {
		if s.Name() == name {
			return s, nil
		}
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("stitch: unknown implementation %q (have %v)", name, names)
}
