package stitch

import (
	"sort"
	"testing"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/tile"
)

// TestRealFFTDifferentialDisplacements is the end-to-end differential
// check for the r2c path: every one of the five variants must produce
// displacements identical to its own complex-path run — the real
// transform changes footprint, never answers.
func TestRealFFTDifferentialDisplacements(t *testing.T) {
	p := imagegen.DefaultParams(3, 4, 128, 96)
	p.Seed = 5
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{DS: ds}

	for _, impl := range degradableVariants() {
		impl := impl
		t.Run(impl.Name(), func(t *testing.T) {
			devs := testDevices(1)
			defer closeDevices(devs)
			opts := Options{Threads: 2, Devices: devs}
			complexRes := runStitcher(t, impl, src, opts)
			opts.FFTVariant = VariantReal
			realRes := runStitcher(t, impl, src, opts)
			assertSameDisplacements(t, complexRes, realRes, "complex", "real")
		})
	}
}

// TestRealFFTDifferentialCountersUnderFaults reruns the semantic-counter
// differential with the real FFT variant: under the same deterministic
// injected read failure, all five variants must report the same
// aligned/retry/casualty counters as the complex path's absolute
// expectations — degraded-run bookkeeping is transform-variant-invariant.
func TestRealFFTDifferentialCountersUnderFaults(t *testing.T) {
	const spec = "stitch.read@r001_c002:always"
	p := imagegen.DefaultParams(3, 4, 128, 96)
	p.Seed = 11
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{DS: ds}
	g := src.Grid()
	lostPairs := len(g.PairsOf(tile.Coord{Row: 1, Col: 2}))

	type counterSet map[string]int64
	want := counterSet{
		CounterPairsAligned:  int64(g.NumPairs() - lostPairs),
		CounterRetries:       2,
		CounterDegradedTiles: 1,
		CounterDegradedPairs: int64(lostPairs),
	}
	got := map[string]counterSet{}
	for _, impl := range degradableVariants() {
		rec := obs.New()
		inj := mustSpec(t, spec)
		devs := faultDevices(1, inj)
		opts := goldenOptions(devs)
		opts.Obs = rec
		opts.Faults = inj
		opts.MaxRetries = 2
		opts.Degrade = true
		opts.FFTVariant = VariantReal
		res, err := impl.Run(src, opts)
		closeDevices(devs)
		if err != nil {
			rec.Close()
			t.Fatalf("%s: %v", impl.Name(), err)
		}
		if !res.Degraded() {
			rec.Close()
			t.Fatalf("%s: expected a degraded run", impl.Name())
		}
		cs := counterSet{}
		for _, name := range semanticCounters {
			cs[name] = rec.CounterValue(name)
		}
		rec.Close()
		got[impl.Name()] = cs
	}

	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, c := range semanticCounters {
			if got[n][c] != want[c] {
				t.Errorf("%s: counter %s = %d, want %d", n, c, got[n][c], want[c])
			}
		}
	}
}

// TestSocketsBoundaryFaultCountedOnce pins the per-socket degraded-count
// fix: a tile on a band boundary is read (and, here, degraded) by both
// adjacent socket pipelines, but the run must count it once. With 4 rows
// and 2 sockets the partitions are rows [0,2) and [2,4); the second band
// redundantly reads row 1, so a persistent failure on tile (1,1) is hit
// by both. Before the subRun suppression each band's finishRun published
// its own counters, reporting 2 degraded tiles and 6 degraded pairs for
// this plate.
func TestSocketsBoundaryFaultCountedOnce(t *testing.T) {
	p := imagegen.DefaultParams(4, 3, 128, 96)
	p.Seed = 3
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{DS: ds}
	g := src.Grid()
	bad := tile.Coord{Row: 1, Col: 1}
	lostPairs := len(g.PairsOf(bad))

	rec := obs.New()
	defer rec.Close()
	inj := mustSpec(t, "stitch.read@r001_c001:always")
	res, err := (&PipelinedCPU{}).Run(src, Options{
		Threads: 2, Sockets: 2,
		Faults: inj, MaxRetries: 1, Degrade: true,
		Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Result-level dedupe: the merged result lists the casualty once.
	if len(res.DegradedTiles) != 1 || res.DegradedTiles[0].Coord != bad {
		t.Fatalf("DegradedTiles = %v, want exactly [%v]", res.DegradedTiles, bad)
	}
	if len(res.DegradedPairs) != lostPairs {
		t.Fatalf("DegradedPairs = %d, want %d", len(res.DegradedPairs), lostPairs)
	}

	// Counter-level dedupe: one counter set from the merged result, not
	// one per band.
	if v := rec.CounterValue(CounterDegradedTiles); v != 1 {
		t.Errorf("counter %s = %d, want 1 (boundary tile double-counted)", CounterDegradedTiles, v)
	}
	if v := rec.CounterValue(CounterDegradedPairs); v != int64(lostPairs) {
		t.Errorf("counter %s = %d, want %d", CounterDegradedPairs, v, lostPairs)
	}
	if v := rec.CounterValue(CounterPairsAligned); v != int64(g.NumPairs()-lostPairs) {
		t.Errorf("counter %s = %d, want %d", CounterPairsAligned, v, g.NumPairs()-lostPairs)
	}
}
