package stitch

import (
	"fmt"
	"sync"

	"hybridstitch/internal/memgov"
	"hybridstitch/internal/tile"
)

// transformBytes is the memory footprint of one tile transform under the
// given FFT variant: 16 bytes per spectrum word (the paper: "each
// transform takes up nearly 22 MB" for 1392×1040 complex transforms; the
// r2c half spectrum is roughly half that).
func transformBytes(g tile.Grid, v FFTVariant) int64 {
	return v.transformWords(g) * 16
}

// refCounter tracks, per tile, how many pairs still need it. When a
// tile's count reaches zero its resources are released — the mechanism
// that keeps the paper's system inside RAM and GPU memory limits.
type refCounter struct {
	mu     sync.Mutex
	counts []int
}

// newRefCounter initializes counts to the number of pairs each tile
// participates in (corner 2, edge 3, interior 4).
func newRefCounter(g tile.Grid) *refCounter {
	rc := &refCounter{counts: make([]int, g.NumTiles())}
	for i := range rc.counts {
		rc.counts[i] = len(g.PairsOf(g.CoordOf(i)))
	}
	return rc
}

// release decrements tile i's count and reports whether it hit zero.
func (rc *refCounter) release(i int) (free bool, err error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.counts[i] <= 0 {
		return false, fmt.Errorf("stitch: refcount underflow on tile %d", i)
	}
	rc.counts[i]--
	return rc.counts[i] == 0, nil
}

// remaining returns tile i's current count.
func (rc *refCounter) remaining(i int) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.counts[i]
}

// cacheEntry is one resident tile: its pixels (needed by the CCF stage)
// and, for the CPU implementations, its forward transform.
type cacheEntry struct {
	img *tile.Gray16
	f   []complex128
}

// hostCache stores resident tiles with reference counting, live/peak
// tracking, and optional memory-governor accounting of transform bytes.
// Safe for concurrent use.
type hostCache struct {
	g       tile.Grid
	variant FFTVariant
	rc      *refCounter
	gov     *memgov.Governor

	mu       sync.Mutex
	data     map[int]cacheEntry
	allocs   map[int]*memgov.Allocation
	live     int
	peak     int
	computed int
}

func newHostCache(g tile.Grid, gov *memgov.Governor, v FFTVariant) *hostCache {
	return &hostCache{
		g:       g,
		variant: v,
		rc:      newRefCounter(g),
		gov:     gov,
		data:    make(map[int]cacheEntry),
		allocs:  make(map[int]*memgov.Allocation),
	}
}

// put stores tile i. f may be nil when transforms live elsewhere (the
// GPU pipelines keep them in device memory); the governor is charged only
// for host-resident transforms.
func (c *hostCache) put(i int, img *tile.Gray16, f []complex128) error {
	var alloc *memgov.Allocation
	if c.gov != nil && f != nil {
		a, err := c.gov.Alloc(transformBytes(c.g, c.variant))
		if err != nil {
			return err
		}
		alloc = a
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.data[i]; dup {
		if alloc != nil {
			_ = alloc.Free()
		}
		return fmt.Errorf("stitch: tile %d stored twice", i)
	}
	c.data[i] = cacheEntry{img: img, f: f}
	if alloc != nil {
		c.allocs[i] = alloc
	}
	if f != nil {
		c.computed++
	}
	c.live++
	if c.live > c.peak {
		c.peak = c.live
	}
	return nil
}

// get returns tile i's entry; img is nil if the tile is not resident.
func (c *hostCache) get(i int) (*tile.Gray16, []complex128) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.data[i]
	return e.img, e.f
}

// releasePair decrements both tiles of a completed pair, evicting tiles
// whose counts reach zero.
func (c *hostCache) releasePair(p tile.Pair) error {
	for _, coord := range []tile.Coord{p.Coord, p.Neighbor()} {
		i := c.g.Index(coord)
		free, err := c.rc.release(i)
		if err != nil {
			return err
		}
		if !free {
			continue
		}
		c.mu.Lock()
		var alloc *memgov.Allocation
		if _, ok := c.data[i]; ok {
			delete(c.data, i)
			c.live--
			alloc = c.allocs[i]
			delete(c.allocs, i)
		}
		c.mu.Unlock()
		if alloc != nil {
			if err := alloc.Free(); err != nil {
				return err
			}
		}
	}
	return nil
}

// stats reports live entries, the peak, and the number of transforms
// computed.
func (c *hostCache) stats() (live, peak, computed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live, c.peak, c.computed
}

// touch charges the governor for streaming one transform's bytes through
// the CPU (an FFT execution or an NCC pass).
func (c *hostCache) touch() {
	if c.gov != nil {
		c.gov.Touch(transformBytes(c.g, c.variant))
	}
}
