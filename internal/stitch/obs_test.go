package stitch

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"hybridstitch/internal/gpu"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/tile"
)

// -update rewrites the golden span trees instead of comparing:
//
//	go test ./internal/stitch/ -run TestGoldenSpanTrees -update
var updateGolden = flag.Bool("update", false, "rewrite golden span-tree files")

// goldenOptions is the deterministic single-worker configuration: with
// one worker per stage the span *structure* (parents, names, attrs) is a
// pure function of the traversal, so the canonical tree is reproducible
// byte-for-byte. Durations never appear in the tree.
func goldenOptions(devs []*gpu.Device) Options {
	return Options{
		Threads:     1,
		CCFThreads:  1,
		ReadThreads: 1,
		FFTStreams:  1,
		Devices:     devs,
	}
}

// TestGoldenSpanTrees runs each of the five variants over the same tiny
// generated plate and asserts the exact span nesting against checked-in
// goldens. Span ordering inside the tree is canonical (content-sorted),
// so this pins hierarchy and attributes — not timing.
func TestGoldenSpanTrees(t *testing.T) {
	p := imagegen.DefaultParams(2, 2, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{DS: ds}

	for _, impl := range degradableVariants() {
		impl := impl
		t.Run(impl.Name(), func(t *testing.T) {
			rec := obs.New()
			defer rec.Close()
			var devs []*gpu.Device
			if impl.Name() == "simple-gpu" || impl.Name() == "pipelined-gpu" {
				devs = testDevices(1)
				defer closeDevices(devs)
			}
			opts := goldenOptions(devs)
			opts.Obs = rec
			runStitcher(t, impl, src, opts)
			if n := rec.Dropped(); n > 0 {
				t.Fatalf("ring dropped %d spans; tree would be partial", n)
			}
			got := rec.CanonicalTree()

			path := filepath.Join("testdata", "golden", impl.Name()+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create goldens)", err)
			}
			if got != string(want) {
				t.Errorf("span tree drifted from %s (re-run with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// semanticCounters are the variant-invariant observability counters:
// whatever the execution strategy, the same plate must yield the same
// aligned-pair, retry, and casualty counts. (tiles.read and transforms
// are deliberately excluded — they legitimately differ with device
// partitioning.)
var semanticCounters = []string{
	CounterPairsAligned,
	CounterRetries,
	CounterDegradedTiles,
	CounterDegradedPairs,
}

// TestDifferentialSemanticCounters runs all five variants over the same
// seeded plate with a deterministic always-failing read and asserts they
// report identical semantic counter values.
func TestDifferentialSemanticCounters(t *testing.T) {
	const spec = "stitch.read@r001_c002:always"
	p := imagegen.DefaultParams(3, 4, 128, 96)
	p.Seed = 11
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{DS: ds}
	g := src.Grid()
	lostPairs := len(g.PairsOf(tile.Coord{Row: 1, Col: 2}))

	type counterSet map[string]int64
	got := map[string]counterSet{}
	for _, impl := range degradableVariants() {
		rec := obs.New()
		inj := mustSpec(t, spec)
		// One device: multi-device partitioning re-reads boundary tiles,
		// which is exactly the variance the semantic counters exclude.
		devs := faultDevices(1, inj)
		opts := goldenOptions(devs)
		opts.Obs = rec
		opts.Faults = inj
		opts.MaxRetries = 2
		opts.Degrade = true
		res, err := impl.Run(src, opts)
		closeDevices(devs)
		if err != nil {
			rec.Close()
			t.Fatalf("%s: %v", impl.Name(), err)
		}
		if !res.Degraded() {
			rec.Close()
			t.Fatalf("%s: expected a degraded run", impl.Name())
		}
		cs := counterSet{}
		for _, name := range semanticCounters {
			cs[name] = rec.CounterValue(name)
		}
		rec.Close()
		got[impl.Name()] = cs
	}

	// Absolute expectations for one variant anchor the comparison (all
	// variants agreeing on a wrong value must not pass).
	want := counterSet{
		CounterPairsAligned:  int64(g.NumPairs() - lostPairs),
		CounterRetries:       2, // MaxRetries exhausted on the one failed read
		CounterDegradedTiles: 1,
		CounterDegradedPairs: int64(lostPairs),
	}
	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, c := range semanticCounters {
			if got[n][c] != want[c] {
				t.Errorf("%s: counter %s = %d, want %d", n, c, got[n][c], want[c])
			}
		}
	}
}

// TestPipelinedGPUTraceShowsCopyComputeOverlap is the acceptance test for
// the paper's core pipelining claim (Fig 9): in the Chrome trace of a
// Pipelined-GPU run, the H2D copy of tile n+1 overlaps the FFT kernel of
// tile n. Copies are slowed to PCIe-ish bandwidth so the overlap window
// is wide, and single-threaded stages keep per-track FIFO order equal to
// tile order.
func TestPipelinedGPUTraceShowsCopyComputeOverlap(t *testing.T) {
	p := imagegen.DefaultParams(3, 4, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{DS: ds}

	rec := obs.New()
	defer rec.Close()
	dev := gpu.New(gpu.Config{Name: "GPU0", Obs: rec, H2DBytesPerSec: 5e7})
	defer dev.Close()

	opts := goldenOptions([]*gpu.Device{dev})
	opts.Obs = rec
	runStitcher(t, &PipelinedGPU{}, src, opts)
	dev.Close() // flush the device's stream dispatchers into rec

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, map[string]string{"impl": "pipelined-gpu"}); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.DecodeChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	byTrack := func(track, name string) []obs.CompletedSpan {
		var out []obs.CompletedSpan
		for _, s := range spans {
			if s.Track == track && s.Name == name {
				out = append(out, s)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
		return out
	}
	h2d := byTrack("GPU0/copy/memcpyH2D", "H2D")
	fft := byTrack("GPU0/fft0/kernel", "fft2d")
	if len(h2d) != src.Grid().NumTiles() || len(fft) != src.Grid().NumTiles() {
		t.Fatalf("trace has %d H2D and %d fft2d spans, want %d each", len(h2d), len(fft), src.Grid().NumTiles())
	}

	// The copy stream and the FFT stream are FIFO, so index i on each
	// track is tile i in read order.
	overlaps := 0
	for i := 0; i+1 < len(h2d); i++ {
		next, kern := h2d[i+1], fft[i]
		if next.Start < kern.End && kern.Start < next.End {
			overlaps++
		}
	}
	if overlaps == 0 {
		t.Fatalf("no H2D[n+1]/fft2d[n] overlap in %d tile slots: pipeline did not overlap copy with compute", len(h2d)-1)
	}
	t.Logf("%d/%d tile slots show copy/compute overlap", overlaps, len(h2d)-1)
}
