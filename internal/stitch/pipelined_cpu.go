package stitch

import (
	"fmt"
	"sync"
	"time"

	"hybridstitch/internal/obs"
	"hybridstitch/internal/pipeline"
	"hybridstitch/internal/tile"
)

// PipelinedCPU is the three-stage CPU pipeline of paper §IV.B: reader →
// fft/displacement → bookkeeping, built on the bounded monitor queues of
// internal/pipeline. The reader streams tiles in traversal order; the
// bookkeeping stage resolves data dependencies and advances ready work;
// a pool of worker threads executes transforms and displacements. All
// memory mechanisms of the GPU pipeline (reference counting, early
// recycling) are retained, which the paper calls out explicitly.
type PipelinedCPU struct{}

// Name implements Stitcher.
func (PipelinedCPU) Name() string { return "pipelined-cpu" }

// cpuWork is one task for the fft/displacement worker stage.
type cpuWork struct {
	isPair bool
	coord  tile.Coord   // transform task
	img    *tile.Gray16 // transform task payload
	failed error        // tile casualty marker (degrade mode)
	pair   tile.Pair    // pair task
	aImg   *tile.Gray16 // pair task payloads
	bImg   *tile.Gray16
	aF, bF []complex128
}

// cpuEvent is a notification to the bookkeeping stage: a transform
// completion, or — in degrade mode — a persistent tile failure. Either
// way it is the tile's single terminal event.
type cpuEvent struct {
	coord  tile.Coord
	failed error
}

// Run implements Stitcher.
func (PipelinedCPU) Run(src Source, opts Options) (*Result, error) {
	g := src.Grid()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.Sockets > 1 {
		return runSockets(src, opts)
	}
	opts = opts.withDefaults(g)
	cache := newHostCache(g, opts.Governor, opts.FFTVariant)
	res := newResult(g)
	fp := opts.plan()
	ds := newDegradedSet(g)
	var resMu sync.Mutex
	root, base := startRun(opts, "pipelined-cpu", g)
	// One span per stage, parents of that stage's operation spans: the
	// pipeline analogue of the paper's per-stage timeline rows. The
	// explicit Ends below stamp the stage completion times; End is
	// idempotent, so the defers only matter on early-error returns.
	spRead := root.ChildOn(obs.TrackStagePrefix+obs.SpanRead, obs.SpanRead)
	defer spRead.End()
	spWork := root.ChildOn(obs.TrackStagePrefix+obs.SpanWork, obs.SpanWork)
	defer spWork.End()
	spBK := root.ChildOn(obs.TrackStagePrefix+obs.SpanBK, obs.SpanBK)
	defer spBK.End()
	start := time.Now()
	defer opts.reservePairWorkers(opts.Threads)()

	p := pipeline.New()
	p.Observe(opts.Obs)
	qRead := pipeline.AddQueue[cpuWork](p, "read→work", opts.QueueCap)
	qWork := pipeline.AddQueue[cpuWork](p, "bk→work", opts.QueueCap)
	// Every transform completion produces exactly one event; capacity
	// NumTiles makes pushes non-blocking, which keeps the stage graph
	// trivially deadlock-free.
	qFFTDone := pipeline.AddQueue[cpuEvent](p, "work→bk", g.NumTiles())

	// Stage 1: readers stream tiles in traversal order.
	order := opts.Traversal.Order(g)
	coords := pipeline.AddQueue[tile.Coord](p, "coords", g.NumTiles())
	for _, c := range order {
		if err := coords.Push(c); err != nil {
			return nil, err
		}
	}
	coords.Close()
	pipeline.Connect(p, "read", opts.ReadThreads, coords, qRead,
		func(c tile.Coord, emit func(cpuWork) error) error {
			img, err := fp.readTile(src, c, spRead)
			if err != nil {
				if !fp.degrade {
					return err
				}
				// The casualty marker flows downstream so bookkeeping
				// still sees exactly one terminal event per tile.
				return emit(cpuWork{coord: c, failed: err})
			}
			return emit(cpuWork{coord: c, img: img})
		})

	// Stage 3 (bookkeeping): merge freshly read tiles into the work
	// queue, watch transform completions, and emit pair tasks when both
	// sides are ready. It owns the dependency state.
	p.Go("bookkeeping", 1, func(int) error {
		ready := make([]bool, g.NumTiles())
		failedT := make([]error, g.NumTiles())
		terminal := func(i int) bool { return ready[i] || failedT[i] != nil }
		emitted := 0
		reads, ffts := 0, 0
		total := g.NumTiles()

		// onTerminal consumes a tile's single terminal event — transform
		// ready, or persistent failure in degrade mode — and settles every
		// pair whose two tiles now both have an outcome: ready+ready
		// emits pair work, anything else degrades the pair. Each pair is
		// settled exactly once, when the second of its tiles turns
		// terminal.
		onTerminal := func(ev cpuEvent) error {
			ffts++
			i := g.Index(ev.coord)
			if ev.failed != nil {
				failedT[i] = ev.failed
				ds.tileFailed(ev.coord, ev.failed)
				p.Note(ev.failed)
			} else {
				ready[i] = true
			}
			for _, pr := range g.PairsOf(ev.coord) {
				bi, ai := g.Index(pr.Coord), g.Index(pr.Neighbor())
				if !terminal(bi) || !terminal(ai) {
					continue
				}
				var cause error
				switch {
				case failedT[bi] != nil:
					cause = pairCause(pr, pr.Coord, failedT[bi])
				case failedT[ai] != nil:
					cause = pairCause(pr, pr.Neighbor(), failedT[ai])
				}
				if cause != nil {
					ds.pairFailed(pr, cause)
					p.Note(cause)
					if err := cache.releasePair(pr); err != nil {
						return err
					}
					emitted++
					continue
				}
				bImg, bF := cache.get(bi)
				aImg, aF := cache.get(ai)
				if aImg == nil || bImg == nil {
					return fmt.Errorf("stitch: pair %v ready but tiles evicted", pr)
				}
				if err := qWork.Push(cpuWork{isPair: true, pair: pr, aImg: aImg, bImg: bImg, aF: aF, bF: bF}); err != nil {
					return err
				}
				emitted++
			}
			return nil
		}

		for emitted < g.NumPairs() || ffts < total {
			// Prefer completions so pair work is released promptly.
			if ev, ok := qFFTDone.TryPop(); ok {
				if err := onTerminal(ev); err != nil {
					return err
				}
				continue
			}
			if reads < total {
				w, ok := qRead.Pop()
				if !ok {
					reads = total
					continue
				}
				reads++
				if w.failed != nil {
					// Read casualties never reach the workers; the marker
					// is the tile's terminal event.
					if err := onTerminal(cpuEvent{coord: w.coord, failed: w.failed}); err != nil {
						return err
					}
					continue
				}
				if err := qWork.Push(w); err != nil {
					return err
				}
				continue
			}
			// All reads forwarded: block on completions.
			ev, ok := qFFTDone.Pop()
			if !ok {
				return fmt.Errorf("stitch: bookkeeping starved with %d/%d pairs emitted", emitted, g.NumPairs())
			}
			if err := onTerminal(ev); err != nil {
				return err
			}
		}
		qWork.Close()
		return nil
	}, nil)

	// Stage 2: fft/displacement workers.
	p.Go("fft+disp", opts.Threads, func(worker int) error {
		al, err := acquireAligner(g, opts)
		if err != nil {
			return err
		}
		defer releaseAligner(al)
		for {
			w, ok := qWork.Pop()
			if !ok {
				return nil
			}
			if !w.isPair {
				cache.touch()
				f, err := fp.transform(al, w.coord, w.img, spWork)
				if err != nil {
					if !fp.degrade {
						return err
					}
					if err := qFFTDone.Push(cpuEvent{coord: w.coord, failed: err}); err != nil {
						return err
					}
					continue
				}
				if err := cache.put(g.Index(w.coord), w.img, f); err != nil {
					return err
				}
				if err := qFFTDone.Push(cpuEvent{coord: w.coord}); err != nil {
					return err
				}
				continue
			}
			cache.touch()
			d, err := fp.displace(al, w.pair, w.aImg, w.bImg, w.aF, w.bF, spWork)
			if err != nil {
				if !fp.degrade {
					return err
				}
				ds.pairFailed(w.pair, err)
				p.Note(err)
				if err := cache.releasePair(w.pair); err != nil {
					return err
				}
				continue
			}
			resMu.Lock()
			res.setPair(w.pair, d)
			resMu.Unlock()
			if err := cache.releasePair(w.pair); err != nil {
				return err
			}
		}
	}, nil)

	err := p.Wait()
	spRead.End()
	spWork.End()
	spBK.End()
	if err != nil {
		return nil, err
	}
	ds.finalize(res)
	res.Elapsed = time.Since(start)
	_, res.PeakTransformsLive, res.TransformsComputed = cache.stats()
	for _, q := range []interface {
		Name() string
		Cap() int
		Stats() (int64, int)
	}{qRead, qWork, qFFTDone, coords} {
		pushes, maxDepth := q.Stats()
		res.QueueStats = append(res.QueueStats, QueueStat{Name: q.Name(), Cap: q.Cap(), Pushes: pushes, MaxDepth: maxDepth})
	}
	finishRun(opts, root, base, res)
	return res, nil
}
