package stitch_test

import (
	"fmt"

	"hybridstitch/internal/gpu"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// ExamplePipelinedGPU runs the paper's headline implementation on two
// simulated Fermi-class devices and verifies it agrees with the
// sequential reference.
func ExamplePipelinedGPU() {
	params := imagegen.DefaultParams(4, 4, 128, 96)
	dataset, err := imagegen.Generate(params)
	if err != nil {
		fmt.Println(err)
		return
	}
	src := &stitch.MemorySource{DS: dataset}

	devices := []*gpu.Device{
		gpu.New(gpu.FermiConfig("GPU0")),
		gpu.New(gpu.FermiConfig("GPU1")),
	}
	defer devices[0].Close()
	defer devices[1].Close()

	pipelined, err := (&stitch.PipelinedGPU{}).Run(src, stitch.Options{
		Threads: 4,
		Devices: devices,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	reference, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}

	identical := true
	for _, p := range src.Grid().Pairs() {
		a, _ := reference.PairDisplacement(p)
		b, _ := pipelined.PairDisplacement(p)
		if a.X != b.X || a.Y != b.Y {
			identical = false
		}
	}
	fmt.Println("pairs:", src.Grid().NumPairs(), "identical to reference:", identical)
	// Output: pairs: 24 identical to reference: true
}

// ExampleCensus prints the paper's Table I quantities for its workload.
func ExampleCensus() {
	c := stitch.Census(paper42x59())
	fmt.Println("total FFTs:", c.TotalForwardAndInverseFFTs())
	fmt.Printf("transform working set: %.1f GB\n", float64(c.TransformWorkingSetBytes())/1e9)
	// Output:
	// total FFTs: 7333
	// transform working set: 57.4 GB
}

func paper42x59() tile.Grid {
	return tile.Grid{Rows: 42, Cols: 59, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
}
