package pciam

import (
	"sync"
	"testing"
)

// listPool is the deterministic pool used by retention tests: a plain
// LIFO that never drops an item, unlike sync.Pool (which sheds under GC
// pressure and deliberately drops a fraction of Puts under the race
// detector).
type listPool struct {
	mu    sync.Mutex
	items []any
}

func (p *listPool) Get() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.items)
	if n == 0 {
		return nil
	}
	v := p.items[n-1]
	p.items = p.items[:n-1]
	return v
}

func (p *listPool) Put(x any) {
	p.mu.Lock()
	p.items = append(p.items, x)
	p.mu.Unlock()
}

// useDeterministicPools swaps the package pool factory for listPool for
// the duration of the test and flushes both pool maps on entry and exit,
// so neither direction observes the other discipline's leftovers.
func useDeterministicPools(t *testing.T) {
	t.Helper()
	prev := newPool
	newPool = func() pool { return &listPool{} }
	resetPoolsForTest()
	t.Cleanup(func() {
		newPool = prev
		resetPoolsForTest()
	})
}

// TestDeterministicPoolRoundTrip pins the seam itself: what is Put is
// Got back, LIFO, with no drops.
func TestDeterministicPoolRoundTrip(t *testing.T) {
	p := &listPool{}
	if v := p.Get(); v != nil {
		t.Fatalf("empty pool returned %v", v)
	}
	p.Put(1)
	p.Put(2)
	if v := p.Get(); v != 2 {
		t.Fatalf("Get = %v, want 2 (LIFO)", v)
	}
	if v := p.Get(); v != 1 {
		t.Fatalf("Get = %v, want 1", v)
	}
	if v := p.Get(); v != nil {
		t.Fatalf("drained pool returned %v", v)
	}
}
