package pciam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstitch/internal/tile"
)

// smoothField renders a sum of wide Gaussian blobs — a smooth,
// non-periodic surface whose NCC between two crops is unimodal with its
// global maximum exactly at the true crop offset. Crops of this field
// give the refine search a CCF surface with a known, provable optimum.
func smoothField(w, h int) *tile.Gray16 {
	f := tile.NewGray16(w, h)
	blobs := []struct{ cx, cy, sigma, amp float64 }{
		{20, 15, 12, 9000},
		{60, 30, 16, 12000},
		{35, 60, 10, 8000},
		{80, 65, 14, 11000},
		{50, 45, 20, 7000},
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 3000.0
			for _, b := range blobs {
				dx, dy := float64(x)-b.cx, float64(y)-b.cy
				v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
			}
			f.Set(x, y, uint16(v))
		}
	}
	return f
}

// fieldPair cuts two overlapping crops of the smooth field such that b's
// origin sits at exactly (tx, ty) in a's frame — the displacement
// convention of ccfRegion/OverlapRegions. At that offset the crops share
// identical pixels, so the CCF is exactly 1 there and strictly below 1
// everywhere else.
func fieldPair(tx, ty int) (a, b *tile.Gray16) {
	field := smoothField(96, 80)
	const w, h = 64, 56
	a = field.SubRect(12, 12, w, h)
	b = field.SubRect(12+tx, 12+ty, w, h)
	return a, b
}

// TestRefineNeverLeavesRadius: whatever the surface (here: pure noise,
// where every CCF sample is junk), both searches must return a
// displacement within ±radius of the start on both axes.
func TestRefineNeverLeavesRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tile.NewGray16(48, 40)
	b := tile.NewGray16(48, 40)
	for i := range a.Pix {
		a.Pix[i] = uint16(rng.Intn(65536))
		b.Pix[i] = uint16(rng.Intn(65536))
	}
	for iter := 0; iter < 40; iter++ {
		start := tile.Displacement{X: rng.Intn(41) - 20, Y: rng.Intn(41) - 20}
		radius := 1 + rng.Intn(8)
		for name, got := range map[string]tile.Displacement{
			"Refine":           Refine(a, b, start, radius, 0, Options{}),
			"ExhaustiveRefine": ExhaustiveRefine(a, b, start, radius, Options{}),
		} {
			if absI(got.X-start.X) > radius || absI(got.Y-start.Y) > radius {
				t.Fatalf("%s(start=%+v, radius=%d) escaped to (%d,%d)", name, start, radius, got.X, got.Y)
			}
		}
	}
}

// TestRefineConvergesOnUnimodalSurface: on the smooth-field pair the CCF
// has a unique global maximum (corr exactly 1) at the true offset. From
// any start within the radius of the truth, the exhaustive search must
// find it, the hill climb must find it, and the two must agree.
func TestRefineConvergesOnUnimodalSurface(t *testing.T) {
	const tx, ty = 5, -3
	a, b := fieldPair(tx, ty)
	truth := tile.Displacement{X: tx, Y: ty}
	if c := ccfRegion(a, b, tx, ty, 1); math.Abs(c-1) > 1e-12 {
		t.Fatalf("CCF at truth = %g, want exactly 1 (identical crops)", c)
	}
	for _, radius := range []int{3, 4, 6} {
		for _, off := range [][2]int{{0, 0}, {radius, radius}, {-radius, radius}, {radius, -radius}, {-radius, -radius}, {1, -radius}} {
			start := tile.Displacement{X: truth.X + off[0], Y: truth.Y + off[1]}
			ex := ExhaustiveRefine(a, b, start, radius, Options{})
			if ex.X != truth.X || ex.Y != truth.Y {
				t.Errorf("ExhaustiveRefine(start=%+v, radius=%d) = (%d,%d), want (%d,%d)",
					start, radius, ex.X, ex.Y, truth.X, truth.Y)
			}
			if ex.Corr < 0.999 {
				t.Errorf("ExhaustiveRefine corr %g at the optimum, want ≈1", ex.Corr)
			}
			hc := Refine(a, b, start, radius, 0, Options{})
			if hc.X != ex.X || hc.Y != ex.Y {
				t.Errorf("Refine(start=%+v, radius=%d) = (%d,%d) disagrees with exhaustive (%d,%d)",
					start, radius, hc.X, hc.Y, ex.X, ex.Y)
			}
		}
	}
}

// TestRefineRadiusProperty drives the radius invariant through
// testing/quick on the smooth pair: random starts and radii, result
// always inside the window, and whenever the truth is inside the window
// the exhaustive search returns it.
func TestRefineRadiusProperty(t *testing.T) {
	const tx, ty = 5, -3
	a, b := fieldPair(tx, ty)
	f := func(sx, sy int8, r uint8) bool {
		radius := int(r%8) + 1
		start := tile.Displacement{X: int(sx % 16), Y: int(sy % 16)}
		ex := ExhaustiveRefine(a, b, start, radius, Options{})
		hc := Refine(a, b, start, radius, 0, Options{})
		if absI(ex.X-start.X) > radius || absI(ex.Y-start.Y) > radius {
			return false
		}
		if absI(hc.X-start.X) > radius || absI(hc.Y-start.Y) > radius {
			return false
		}
		if absI(tx-start.X) <= radius && absI(ty-start.Y) <= radius {
			return ex.X == tx && ex.Y == ty
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
