// Package pciam implements the paper's phase correlation image alignment
// method (Kuglin & Hines' phase correlation with Lewis' normalized
// correlation coefficients): the per-pair displacement computation of the
// paper's Figs 1–3.
//
// Steps (per adjacent tile pair i, j):
//
//  1. forward 2-D FFTs of both tiles (usually cached and reused),
//  2. NCC — element-wise normalized conjugate multiplication,
//  3. inverse 2-D FFT of the NCC,
//  4. max-reduction of |NCC⁻¹| to a peak (px, py),
//  5. four-way ambiguity resolution: the transform is periodic, so the
//     peak is congruent to the true displacement modulo (W, H); the four
//     candidate interpretations (px or px−W, py or py−H) are scored with
//     cross-correlation factors (CCF) over the hypothesized overlap
//     regions, and the best wins.
//
// The paper's Fig 2 writes the four candidates as positive-quadrant
// region pairs; this implementation uses the equivalent signed form,
// which additionally resolves negative cross-axis jitter (a west
// neighbor sitting slightly *below* its pair), the case the simplified
// pseudocode cannot represent. Disable with Options.PositiveOnly for a
// strictly paper-faithful kernel.
package pciam

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/tile"
)

// Options tunes the aligner.
type Options struct {
	// NPeaks is how many candidate peaks of |NCC⁻¹| to interpret.
	// 1 matches the paper; larger values (MIST later shipped 2) make
	// sparse-feature pairs more robust at the cost of extra CCFs.
	NPeaks int
	// PositiveOnly restricts ambiguity resolution to the four
	// positive-quadrant hypotheses exactly as written in the paper's
	// Fig 2 pseudocode.
	PositiveOnly bool
	// MinOverlapPx rejects hypotheses whose overlap region is smaller
	// than this in either dimension; tiny slivers correlate spuriously.
	MinOverlapPx int
	// Window applies a 2-D Hann window to tiles before the forward
	// transform. Windowing is the textbook cure for spectral leakage in
	// phase correlation, but for STITCHING the shared content sits at
	// the tile edges that a window suppresses — the ablation shows it
	// trades peak sharpness against overlap signal. Off by default,
	// matching the paper.
	Window bool
	// FFTWorkers sets intra-transform parallelism for the Aligner's
	// plans (the CPU pipeline stages use 1 and parallelize across tiles
	// instead).
	FFTWorkers int
	// FFTExec selects the execution shape of the aligner's 2-D plans:
	// the zero value lets the plan-time autotuner measure serial vs
	// split vs batched per size and core budget; ExecSerial pins the
	// zero-allocation path; ExecSplit pins the recursive pool-fed
	// split. Ignored when FFTWorkers > 1 (the legacy fan-out owns the
	// parallelism).
	FFTExec fft.ExecStrategy
	// FFTPool is the bounded worker budget the split path draws from;
	// nil means fft.SharedPool(). Pair-level runners Reserve their
	// worker count from the same pool, so transform-level splits only
	// use genuinely idle cores.
	FFTPool *fft.WorkerPool
	// LegacyTranspose routes the plans' column passes through the
	// seed's strided gather instead of the blocked transpose
	// (differential testing; plan-scoped, so both paths can run
	// concurrently).
	LegacyTranspose bool
	// DisableBatch forces TransformPair to run its two forward
	// transforms separately even when the plan's autotuner chose
	// batched passes. The stitch layer sets it when fault injection is
	// active, so injected transform faults keep their exact sequence.
	DisableBatch bool
	// Planner supplies FFT wisdom; nil uses a private estimate-mode
	// planner.
	Planner *fft.Planner
	// DisableFusion computes the NCC spectrum as its own full-size pass
	// before the inverse transform (the seed behavior) instead of fusing
	// it into the inverse's first pass. Results are bit-identical either
	// way; the toggle exists for the differential tests and as a
	// rollback escape hatch.
	DisableFusion bool
}

// withDefaults normalizes zero values.
func (o Options) withDefaults() Options {
	if o.NPeaks <= 0 {
		o.NPeaks = 1
	}
	if o.MinOverlapPx <= 0 {
		o.MinOverlapPx = 1
	}
	if o.FFTWorkers <= 0 {
		o.FFTWorkers = 1
	}
	return o
}

// plan2DOpts translates the aligner options into complex 2-D plan
// options.
func (o Options) plan2DOpts() fft.Plan2DOpts {
	return fft.Plan2DOpts{Workers: o.FFTWorkers, Exec: o.FFTExec,
		Pool: o.FFTPool, LegacyGather: o.LegacyTranspose}
}

// real2DOpts is the r2c counterpart of plan2DOpts.
func (o Options) real2DOpts() fft.Real2DOpts {
	return fft.Real2DOpts{Workers: o.FFTWorkers, Exec: o.FFTExec,
		Pool: o.FFTPool, LegacyGather: o.LegacyTranspose}
}

// Aligner computes displacements for tile pairs of one fixed size. It is
// NOT safe for concurrent use: each worker thread owns one Aligner, the
// same discipline the original applies to FFTW plans.
type Aligner struct {
	w, h   int
	opts   Options
	fwd    *fft.Plan2D
	inv    *fft.Plan2D
	ar     *arena
	work   []complex128 // aliases ar.work
	window []float64    // nil unless Options.Window

	// fa/fb hold the pending pair's transforms for the fused NCC fill;
	// fill is built once at construction so the per-pair path closes
	// over nothing (zero steady-state allocations).
	fa, fb []complex128
	fill   func(dst []complex128, r int)
}

// NewAligner builds an aligner for w×h tiles.
func NewAligner(w, h int, opts Options) (*Aligner, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("pciam: invalid tile size %dx%d", w, h)
	}
	opts = opts.withDefaults()
	pl := opts.Planner
	if pl == nil {
		pl = fft.NewPlanner(fft.Estimate)
	}
	fwd, err := pl.Plan2D(h, w, fft.Forward, opts.plan2DOpts())
	if err != nil {
		return nil, err
	}
	inv, err := pl.Plan2D(h, w, fft.Inverse, opts.plan2DOpts())
	if err != nil {
		return nil, err
	}
	ar := checkoutArena("complex", w, h, w*h, 0)
	al := &Aligner{w: w, h: h, opts: opts, fwd: fwd, inv: inv, ar: ar, work: ar.work}
	al.fill = func(dst []complex128, r int) {
		o := r * al.w
		NCCSpectrum(dst, al.fa[o:o+al.w], al.fb[o:o+al.w])
	}
	if opts.Window {
		al.window = hannWindow(w, h)
	}
	return al, nil
}

// Close returns the aligner's scratch arena to the pool. Use it for
// aligners that will not be recycled whole through PutAligner; the
// aligner must not be used afterwards.
func (al *Aligner) Close() {
	if al.ar == nil {
		return
	}
	releaseArena("complex", al.w, al.h, al.ar)
	al.ar = nil
	al.work = nil
}

// hannWindow builds the separable 2-D Hann taper.
func hannWindow(w, h int) []float64 {
	wx := make([]float64, w)
	for i := range wx {
		wx[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(w-1)))
	}
	wy := make([]float64, h)
	for i := range wy {
		wy[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(h-1)))
	}
	out := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out[y*w+x] = wx[x] * wy[y]
		}
	}
	return out
}

// W returns the tile width the aligner was built for.
func (al *Aligner) W() int { return al.w }

// H returns the tile height the aligner was built for.
func (al *Aligner) H() int { return al.h }

// Transform computes the forward 2-D FFT of a tile into a fresh buffer.
// This is the cacheable per-tile work (step 2 of the paper's data-flow
// graph); each tile's transform is reused by up to four pairs.
func (al *Aligner) Transform(t *tile.Gray16) ([]complex128, error) {
	buf, err := al.stageTile(t)
	if err != nil {
		return nil, err
	}
	if err := al.fwd.Execute(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// TransformPair computes the forward transforms of both tiles of a pair.
// When the plan's autotuner chose batched execution (and the aligner's
// DisableBatch option is off), the two tiles' row FFTs run as ONE pass
// over a shared virtual row space — a single planner dispatch amortizing
// twiddles and split bookkeeping — followed by per-tile column passes.
// Results are bit-identical to two Transform calls.
func (al *Aligner) TransformPair(a, b *tile.Gray16) ([]complex128, []complex128, error) {
	if al.opts.DisableBatch {
		fa, err := al.Transform(a)
		if err != nil {
			return nil, nil, err
		}
		fb, err := al.Transform(b)
		if err != nil {
			return nil, nil, err
		}
		return fa, fb, nil
	}
	fa, err := al.stageTile(a)
	if err != nil {
		return nil, nil, err
	}
	fb, err := al.stageTile(b)
	if err != nil {
		return nil, nil, err
	}
	if err := al.fwd.ExecuteBatch([][]complex128{fa, fb}); err != nil {
		return nil, nil, err
	}
	return fa, fb, nil
}

// stageTile loads (and optionally windows) a tile into a fresh transform
// buffer without executing the FFT.
func (al *Aligner) stageTile(t *tile.Gray16) ([]complex128, error) {
	if t.W != al.w || t.H != al.h {
		return nil, fmt.Errorf("pciam: tile is %dx%d, aligner expects %dx%d", t.W, t.H, al.w, al.h)
	}
	buf := make([]complex128, al.w*al.h)
	if err := t.ToComplex(buf); err != nil {
		return nil, err
	}
	if al.window != nil {
		for i := range buf {
			buf[i] *= complex(al.window[i], 0)
		}
	}
	return buf, nil
}

// Displace computes the displacement of tile b relative to tile a, given
// their cached forward transforms fa and fb. For a west pair, a is the
// west neighbor and b the tile; for a north pair, a is the north neighbor
// and b the tile — so the returned displacement is positive ≈ the tile
// stride along the primary axis.
//
//stitchlint:hotpath
func (al *Aligner) Displace(a, b *tile.Gray16, fa, fb []complex128) (tile.Displacement, error) {
	n := al.w * al.h
	if len(fa) != n || len(fb) != n {
		return tile.Displacement{}, fmt.Errorf("pciam: transform length %d/%d, want %d", len(fa), len(fb), n)
	}
	if al.opts.DisableFusion {
		NCCSpectrum(al.work, fa, fb)
		if err := al.inv.Execute(al.work); err != nil {
			return tile.Displacement{}, err
		}
	} else {
		// Fused path: the NCC row is computed immediately before the
		// inverse's row FFT consumes it, so the spectrum never makes a
		// separate full-size pass through memory.
		al.fa, al.fb = fa, fb
		err := al.inv.ExecuteFill(al.work, al.fill)
		al.fa, al.fb = nil, nil
		if err != nil {
			return tile.Displacement{}, err
		}
	}
	al.ar.peaks, al.ar.cands = topPeaksInto(al.ar.peaks, al.ar.cands, al.work, al.w, al.h, al.opts.NPeaks)
	peaks := al.ar.peaks
	best := tile.Displacement{Corr: math.Inf(-1)}
	for _, p := range peaks {
		d := al.ResolvePeak(a, b, p.X, p.Y)
		if d.Corr > best.Corr {
			best = d
		}
	}
	if math.IsInf(best.Corr, -1) {
		// No usable peak (e.g. identical constant tiles): fall back to
		// zero displacement with no confidence.
		best = tile.Displacement{Corr: -1}
	}
	return best, nil
}

// DisplaceTiles is the convenience form that computes both forward
// transforms itself — the Simple-CPU code path.
func (al *Aligner) DisplaceTiles(a, b *tile.Gray16) (tile.Displacement, error) {
	fa, fb, err := al.TransformPair(a, b)
	if err != nil {
		return tile.Displacement{}, err
	}
	return al.Displace(a, b, fa, fb)
}

// NCCSpectrum computes the normalized correlation coefficients: the
// element-wise normalized conjugate multiplication
//
//	dst[i] = fa[i]·conj(fb[i]) / |fa[i]·conj(fb[i])|
//
// (paper Fig 2 lines 4–5). Zero-magnitude products map to 0 rather than
// NaN. dst may alias fa or fb.
//
//stitchlint:hotpath
func NCCSpectrum(dst, fa, fb []complex128) {
	for i := range dst {
		p := fa[i] * cmplx.Conj(fb[i])
		// Plain sqrt of the squared magnitude instead of cmplx.Abs: Hypot
		// guards against overflow at |re|,|im| near 1e154, far beyond any
		// product of tile spectra (16-bit pixels, tiles ≪ 1e5 on a side),
		// and costs several times a sqrt.
		re, im := real(p), imag(p)
		m := math.Sqrt(re*re + im*im)
		if m == 0 {
			dst[i] = 0
			continue
		}
		// Scale by the reciprocal instead of dividing: the full complex
		// division runtime call costs ~4x a multiply and the divisor is
		// real and positive, so only the magnitude rounding differs (≤1
		// ulp per component).
		s := 1 / m
		dst[i] = complex(re*s, im*s)
	}
}

// Peak is a candidate correlation maximum in image coordinates.
type Peak struct {
	X, Y int
	Mag  float64
}

// MaxAbs reduces data to the index and magnitude of its largest absolute
// value (paper Fig 2 line 7; the GPU version of this is the max-reduction
// kernel).
//
//stitchlint:hotpath
func MaxAbs(data []complex128) (int, float64) {
	bi, bm := 0, -1.0
	for i, v := range data {
		m := math.Abs(real(v)) // |NCC⁻¹| is real up to rounding; using
		// the real part's magnitude matches the reference kernels
		if im := math.Abs(imag(v)); im > m {
			m = im
		}
		if m > bm {
			bm = m
			bi = i
		}
	}
	return bi, bm
}

// TopPeaks returns the k largest local peaks of |data| interpreted as an
// h×w image, suppressing a 5×5 neighborhood around each accepted peak so
// the candidates are distinct displacement hypotheses rather than one
// blurred maximum.
func TopPeaks(data []complex128, w, h, k int) []Peak {
	peaks, _ := topPeaksInto(nil, nil, data, w, h, k)
	return peaks
}

// peakCand is one sortable candidate of the k>1 peak search.
type peakCand struct {
	idx int
	mag float64
}

// topPeaksInto is TopPeaks writing into caller-supplied scratch (the
// aligner arenas) so the k=1 steady state allocates nothing. The k>1
// path still pays sort.Slice's internal allocation; NPeaks=1 is the
// paper's configuration and the one the zero-allocation guarantee
// covers.
//
//stitchlint:hotpath
func topPeaksInto(peaks []Peak, cands []peakCand, data []complex128, w, h, k int) ([]Peak, []peakCand) {
	peaks = peaks[:0]
	if k <= 1 {
		i, m := MaxAbs(data)
		return append(peaks, Peak{X: i % w, Y: i / w, Mag: m}), cands
	}
	if cap(cands) < len(data) {
		cands = make([]peakCand, len(data)) //lint:allow hotpath arena scratch growth, amortized after warm-up
	}
	cands = cands[:len(data)]
	for i, v := range data {
		cands[i] = peakCand{idx: i, mag: cmplx.Abs(v)}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mag > cands[j].mag })
	const sep = 2
	for _, c := range cands {
		if len(peaks) == k {
			break
		}
		x, y := c.idx%w, c.idx/w
		ok := true
		for _, p := range peaks {
			dx := wrapDist(x, p.X, w)
			dy := wrapDist(y, p.Y, h)
			if dx <= sep && dy <= sep {
				ok = false
				break
			}
		}
		if ok {
			peaks = append(peaks, Peak{X: x, Y: y, Mag: c.mag})
		}
	}
	return peaks, cands
}

// wrapDist is the circular distance between coordinates on a ring of
// size n.
func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// ResolvePeak scores the candidate interpretations of a correlation peak
// with cross-correlation factors over the hypothesized overlap regions
// and returns the winner (paper Fig 2 lines 8–12, the CCF1..4 step).
//
//stitchlint:hotpath
func (al *Aligner) ResolvePeak(a, b *tile.Gray16, px, py int) tile.Displacement {
	return Resolve(a, b, px, py, al.opts)
}

// Resolve is the standalone form of ResolvePeak: it needs no FFT plans,
// only the tile pixels and the peak, which is why the hybrid pipeline can
// run it on dedicated CPU threads (stage 6 of the paper's Fig 8) with
// just the scalar max-reduction result copied back from the GPU.
//
//stitchlint:hotpath
func Resolve(a, b *tile.Gray16, px, py int, opts Options) tile.Displacement {
	opts = opts.withDefaults()
	w, h := a.W, a.H
	xs, nx := candidateOffsets(px, w, opts.PositiveOnly)
	ys, ny := candidateOffsets(py, h, opts.PositiveOnly)
	best := tile.Displacement{X: px, Y: py, Corr: math.Inf(-1)}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			dx, dy := xs[i], ys[j]
			c := ccfRegion(a, b, dx, dy, opts.MinOverlapPx)
			if c > best.Corr {
				best = tile.Displacement{X: dx, Y: dy, Corr: c}
			}
		}
	}
	if math.IsInf(best.Corr, -1) {
		best.Corr = -1
	}
	return best
}

// candidateOffsets lists the congruent interpretations of a peak
// coordinate into a fixed-size array (the per-pair hot path allocates
// nothing). Signed mode: {p, p-n}. Positive-only (paper pseudocode):
// {p, n-p}, both treated as rightward/downward shifts.
//
//stitchlint:hotpath
func candidateOffsets(p, n int, positiveOnly bool) ([2]int, int) {
	if p == 0 {
		return [2]int{0, 0}, 1
	}
	if positiveOnly {
		return [2]int{p, n - p}, 2
	}
	return [2]int{p, p - n}, 2
}

// ccf evaluates the normalized cross correlation of the overlap implied
// by placing b's origin at signed offset (dx, dy) in a's frame (the
// paper's Fig 3 ccf(), fused via tile.NCCRegion).
//
//stitchlint:hotpath
func (al *Aligner) ccf(a, b *tile.Gray16, dx, dy int) float64 {
	return ccfRegion(a, b, dx, dy, al.opts.MinOverlapPx)
}

//stitchlint:hotpath
func ccfRegion(a, b *tile.Gray16, dx, dy, minOverlap int) float64 {
	ax, ay, bx, by, ow, oh, ok := OverlapRegions(a.W, a.H, dx, dy)
	if !ok || ow < minOverlap || oh < minOverlap {
		return math.Inf(-1)
	}
	return tile.NCCRegion(a, ax, ay, b, bx, by, ow, oh)
}

// OverlapRegions intersects two w×h images with b's origin at signed
// (dx, dy) in a's frame, returning the per-image top-left corners and the
// intersection size. ok is false for an empty intersection.
func OverlapRegions(w, h, dx, dy int) (ax, ay, bx, by, ow, oh int, ok bool) {
	if dx >= 0 {
		ax, bx, ow = dx, 0, w-dx
	} else {
		ax, bx, ow = 0, -dx, w+dx
	}
	if dy >= 0 {
		ay, by, oh = dy, 0, h-dy
	} else {
		ay, by, oh = 0, -dy, h+dy
	}
	if ow <= 0 || oh <= 0 {
		return 0, 0, 0, 0, 0, 0, false
	}
	return ax, ay, bx, by, ow, oh, true
}
