package pciam

import (
	"fmt"
	"math"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/tile"
)

// This file implements the paper's §VI.A future-work optimizations as
// alternative alignment paths, plus the subpixel refinement MIST later
// added:
//
//   - padded transforms: tiles are zero-padded to the next "fast" length
//     (all prime factors ≤ 7) before the FFT, trading a few percent more
//     elements for much cheaper butterflies — and, as a side effect,
//     removing the circular wrap-around of the correlation;
//   - real-to-complex transforms: the tiles are real, so the forward
//     transform needs only the half spectrum and the inverse correlation
//     surface is real — roughly half the work and memory.
//
// Both paths produce the same displacements as the baseline aligner
// (tested), differing only in cost.

// PaddedAligner computes displacements using zero-padded fast-size
// transforms. Not safe for concurrent use.
type PaddedAligner struct {
	w, h   int // original tile size
	pw, ph int // padded (fast) size
	opts   Options
	fwd    *fft.Plan2D
	inv    *fft.Plan2D
	ar     *arena
	work   []complex128 // aliases ar.work

	fa, fb []complex128
	fill   func(dst []complex128, r int)
}

// NewPaddedAligner builds a padded aligner for w×h tiles.
func NewPaddedAligner(w, h int, opts Options) (*PaddedAligner, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("pciam: invalid tile size %dx%d", w, h)
	}
	opts = opts.withDefaults()
	pw := fft.NextFastLength(w)
	ph := fft.NextFastLength(h)
	pl := opts.Planner
	if pl == nil {
		pl = fft.NewPlanner(fft.Estimate)
	}
	fwd, err := pl.Plan2D(ph, pw, fft.Forward, opts.plan2DOpts())
	if err != nil {
		return nil, err
	}
	inv, err := pl.Plan2D(ph, pw, fft.Inverse, opts.plan2DOpts())
	if err != nil {
		return nil, err
	}
	ar := checkoutArena("padded", w, h, pw*ph, 0)
	al := &PaddedAligner{
		w: w, h: h, pw: pw, ph: ph, opts: opts,
		fwd: fwd, inv: inv, ar: ar, work: ar.work,
	}
	al.fill = func(dst []complex128, r int) {
		o := r * al.pw
		NCCSpectrum(dst, al.fa[o:o+al.pw], al.fb[o:o+al.pw])
	}
	return al, nil
}

// Close returns the aligner's scratch arena to the pool; see
// (*Aligner).Close.
func (al *PaddedAligner) Close() {
	if al.ar == nil {
		return
	}
	releaseArena("padded", al.w, al.h, al.ar)
	al.ar = nil
	al.work = nil
}

// PaddedDims reports the fast transform size in use.
func (al *PaddedAligner) PaddedDims() (w, h int) { return al.pw, al.ph }

// Transform computes the zero-padded forward FFT of a tile.
func (al *PaddedAligner) Transform(t *tile.Gray16) ([]complex128, error) {
	buf, err := al.stageTile(t)
	if err != nil {
		return nil, err
	}
	if err := al.fwd.Execute(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// stageTile zero-pads a tile into a fresh transform buffer without
// executing the FFT.
func (al *PaddedAligner) stageTile(t *tile.Gray16) ([]complex128, error) {
	if t.W != al.w || t.H != al.h {
		return nil, fmt.Errorf("pciam: tile is %dx%d, aligner expects %dx%d", t.W, t.H, al.w, al.h)
	}
	buf := make([]complex128, al.pw*al.ph)
	for y := 0; y < al.h; y++ {
		for x := 0; x < al.w; x++ {
			buf[y*al.pw+x] = complex(float64(t.At(x, y)), 0)
		}
	}
	return buf, nil
}

// TransformPair computes both tiles' padded transforms, batching the two
// row passes into one planner dispatch when the plan's autotuner chose
// batched execution; see (*Aligner).TransformPair.
func (al *PaddedAligner) TransformPair(a, b *tile.Gray16) ([]complex128, []complex128, error) {
	if al.opts.DisableBatch {
		fa, err := al.Transform(a)
		if err != nil {
			return nil, nil, err
		}
		fb, err := al.Transform(b)
		if err != nil {
			return nil, nil, err
		}
		return fa, fb, nil
	}
	fa, err := al.stageTile(a)
	if err != nil {
		return nil, nil, err
	}
	fb, err := al.stageTile(b)
	if err != nil {
		return nil, nil, err
	}
	if err := al.fwd.ExecuteBatch([][]complex128{fa, fb}); err != nil {
		return nil, nil, err
	}
	return fa, fb, nil
}

// Displace computes the displacement of b relative to a from padded
// transforms. Because the pad region is zero, the correlation no longer
// wraps: the peak coordinate is unambiguous in the padded frame and maps
// to a signed displacement directly, but the CCF pass over candidate
// interpretations is retained for confidence scoring and noise
// robustness.
//
//stitchlint:hotpath
func (al *PaddedAligner) Displace(a, b *tile.Gray16, fa, fb []complex128) (tile.Displacement, error) {
	n := al.pw * al.ph
	if len(fa) != n || len(fb) != n {
		return tile.Displacement{}, fmt.Errorf("pciam: padded transform length %d/%d, want %d", len(fa), len(fb), n)
	}
	if al.opts.DisableFusion {
		NCCSpectrum(al.work, fa, fb)
		if err := al.inv.Execute(al.work); err != nil {
			return tile.Displacement{}, err
		}
	} else {
		al.fa, al.fb = fa, fb
		err := al.inv.ExecuteFill(al.work, al.fill)
		al.fa, al.fb = nil, nil
		if err != nil {
			return tile.Displacement{}, err
		}
	}
	al.ar.peaks, al.ar.cands = topPeaksInto(al.ar.peaks, al.ar.cands, al.work, al.pw, al.ph, al.opts.NPeaks)
	best := tile.Displacement{Corr: math.Inf(-1)}
	for _, p := range al.ar.peaks {
		// Candidates in the PADDED frame: px or px-pw; the overlap test
		// still runs against the original tile dimensions.
		xs, nx := candidateOffsets(p.X, al.pw, al.opts.PositiveOnly)
		ys, ny := candidateOffsets(p.Y, al.ph, al.opts.PositiveOnly)
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				dx, dy := xs[i], ys[j]
				if dx <= -al.w || dx >= al.w || dy <= -al.h || dy >= al.h {
					continue
				}
				c := ccfRegion(a, b, dx, dy, al.opts.MinOverlapPx)
				if c > best.Corr {
					best = tile.Displacement{X: dx, Y: dy, Corr: c}
				}
			}
		}
	}
	if math.IsInf(best.Corr, -1) {
		best = tile.Displacement{Corr: -1}
	}
	return best, nil
}

// DisplaceTiles is the convenience form computing both transforms.
func (al *PaddedAligner) DisplaceTiles(a, b *tile.Gray16) (tile.Displacement, error) {
	fa, fb, err := al.TransformPair(a, b)
	if err != nil {
		return tile.Displacement{}, err
	}
	return al.Displace(a, b, fa, fb)
}

// RealAligner computes displacements through real-to-complex transforms:
// the forward FFT stores only the half spectrum (w/2+1 columns) and the
// inverse correlation comes back as a real surface. Not safe for
// concurrent use.
type RealAligner struct {
	w, h int
	sw   int // spectrum width = w/2+1
	opts Options
	fwd  *fft.RealPlan2D
	ar   *arena
	spec []complex128 // NCC half-spectrum scratch (aliases ar.work)
	corr []float64    // real correlation surface (aliases ar.corr)
	pix  []float64    // aliases ar.pix

	fa, fb []complex128
	fill   func(dst []complex128, r int)
}

// NewRealAligner builds a real-transform aligner for w×h tiles.
func NewRealAligner(w, h int, opts Options) (*RealAligner, error) {
	if w < 2 || h <= 0 {
		return nil, fmt.Errorf("pciam: invalid tile size %dx%d", w, h)
	}
	opts = opts.withDefaults()
	pl := opts.Planner
	if pl == nil {
		pl = fft.NewPlanner(fft.Estimate)
	}
	fwd, err := pl.RealPlan2DOpts(h, w, opts.real2DOpts())
	if err != nil {
		return nil, err
	}
	sh, sw := fwd.SpectrumDims()
	ar := checkoutArena("real", w, h, sh*sw, w*h)
	al := &RealAligner{
		w: w, h: h, sw: sw, opts: opts, fwd: fwd, ar: ar,
		spec: ar.work, corr: ar.corr, pix: ar.pix,
	}
	al.fill = func(dst []complex128, r int) {
		o := r * al.sw
		NCCSpectrum(dst, al.fa[o:o+al.sw], al.fb[o:o+al.sw])
	}
	return al, nil
}

// Close returns the aligner's scratch arena to the pool; see
// (*Aligner).Close.
func (al *RealAligner) Close() {
	if al.ar == nil {
		return
	}
	releaseArena("real", al.w, al.h, al.ar)
	al.ar = nil
	al.spec, al.corr, al.pix = nil, nil, nil
}

// Transform computes the half-spectrum forward transform of a tile —
// (w/2+1)/w of the storage of the complex path.
func (al *RealAligner) Transform(t *tile.Gray16) ([]complex128, error) {
	if t.W != al.w || t.H != al.h {
		return nil, fmt.Errorf("pciam: tile is %dx%d, aligner expects %dx%d", t.W, t.H, al.w, al.h)
	}
	if err := t.ToFloat(al.pix); err != nil {
		return nil, err
	}
	out := make([]complex128, al.h*al.sw)
	if err := al.fwd.Forward(out, al.pix); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformPair computes both tiles' half-spectrum transforms. When the
// plan's autotuner chose batched execution, the two tiles' r2c row
// passes run as one planner dispatch over a shared virtual row space
// (the second tile stages through an extra arena pixel buffer); see
// (*Aligner).TransformPair.
func (al *RealAligner) TransformPair(a, b *tile.Gray16) ([]complex128, []complex128, error) {
	if al.opts.DisableBatch {
		fa, err := al.Transform(a)
		if err != nil {
			return nil, nil, err
		}
		fb, err := al.Transform(b)
		if err != nil {
			return nil, nil, err
		}
		return fa, fb, nil
	}
	if a.W != al.w || a.H != al.h || b.W != al.w || b.H != al.h {
		return nil, nil, fmt.Errorf("pciam: pair tiles %dx%d/%dx%d, aligner expects %dx%d", a.W, a.H, b.W, b.H, al.w, al.h)
	}
	if al.ar.pix2 == nil {
		al.ar.pix2 = make([]float64, al.w*al.h)
	}
	if err := a.ToFloat(al.pix); err != nil {
		return nil, nil, err
	}
	if err := b.ToFloat(al.ar.pix2); err != nil {
		return nil, nil, err
	}
	fa := make([]complex128, al.h*al.sw)
	fb := make([]complex128, al.h*al.sw)
	if err := al.fwd.ForwardBatch([][]complex128{fa, fb}, [][]float64{al.pix, al.ar.pix2}); err != nil {
		return nil, nil, err
	}
	return fa, fb, nil
}

// Displace computes the displacement of b relative to a from half
// spectra. The NCC runs over the half spectrum only; by conjugate
// symmetry the missing bins contribute the mirrored phases, so the
// inverse c2r transform reconstructs the full real correlation surface.
//
//stitchlint:hotpath
func (al *RealAligner) Displace(a, b *tile.Gray16, fa, fb []complex128) (tile.Displacement, error) {
	n := al.h * al.sw
	if len(fa) != n || len(fb) != n {
		return tile.Displacement{}, fmt.Errorf("pciam: half-spectrum length %d/%d, want %d", len(fa), len(fb), n)
	}
	if al.opts.DisableFusion {
		NCCSpectrum(al.spec, fa, fb)
		if err := al.fwd.Inverse(al.corr, al.spec); err != nil {
			return tile.Displacement{}, err
		}
	} else {
		// Fused path: the NCC row is the inverse's own staging write, so
		// the half-spectrum product never makes a separate pass.
		al.fa, al.fb = fa, fb
		err := al.fwd.InverseFill(al.corr, al.fill)
		al.fa, al.fb = nil, nil
		if err != nil {
			return tile.Displacement{}, err
		}
	}
	peaks := al.topPeaks()
	best := tile.Displacement{Corr: math.Inf(-1)}
	for _, p := range peaks {
		d := Resolve(a, b, p.X, p.Y, al.opts)
		if d.Corr > best.Corr {
			best = d
		}
	}
	if math.IsInf(best.Corr, -1) {
		best = tile.Displacement{Corr: -1}
	}
	return best, nil
}

// DisplaceTiles is the convenience form computing both transforms.
func (al *RealAligner) DisplaceTiles(a, b *tile.Gray16) (tile.Displacement, error) {
	fa, fb, err := al.TransformPair(a, b)
	if err != nil {
		return tile.Displacement{}, err
	}
	return al.Displace(a, b, fa, fb)
}

// MaxAbsReal is MaxAbs over a real correlation surface — the reduction
// the r2c GPU kernel runs on the c2r inverse output. First-seen index
// wins ties, matching the complex kernel.
//
//stitchlint:hotpath
func MaxAbsReal(data []float64) (int, float64) {
	bi, bm := 0, -1.0
	for i, v := range data {
		if m := math.Abs(v); m > bm {
			bm = m
			bi = i
		}
	}
	return bi, bm
}

// topPeaksReal is TopPeaks over a real surface.
func topPeaksReal(data []float64, w, h, k int) []Peak {
	if k <= 1 {
		bi, bm := MaxAbsReal(data)
		return []Peak{{X: bi % w, Y: bi / w, Mag: bm}}
	}
	cx := make([]complex128, len(data))
	for i, v := range data {
		cx[i] = complex(v, 0)
	}
	return TopPeaks(cx, w, h, k)
}

// topPeaks is topPeaksReal writing through the aligner's arena so the
// k=1 steady state allocates nothing.
//
//stitchlint:hotpath
func (al *RealAligner) topPeaks() []Peak {
	k := al.opts.NPeaks
	if k <= 1 {
		bi, bm := MaxAbsReal(al.corr)
		al.ar.peaks = append(al.ar.peaks[:0], Peak{X: bi % al.w, Y: bi / al.w, Mag: bm})
		return al.ar.peaks
	}
	if cap(al.ar.cx) < len(al.corr) {
		al.ar.cx = make([]complex128, len(al.corr)) //lint:allow hotpath arena scratch growth, amortized after warm-up
	}
	cx := al.ar.cx[:len(al.corr)]
	for i, v := range al.corr {
		cx[i] = complex(v, 0)
	}
	al.ar.peaks, al.ar.cands = topPeaksInto(al.ar.peaks, al.ar.cands, cx, al.w, al.h, k)
	return al.ar.peaks
}

// SubpixelPeak refines an integer correlation peak to subpixel precision
// by fitting a 1-D parabola through the peak and its neighbors along
// each axis (the standard refinement MIST applies after phase
// correlation). data is the h×w correlation surface; returns the refined
// (x, y) with each offset clamped to (-0.5, 0.5).
func SubpixelPeak(data []complex128, w, h, px, py int) (float64, float64) {
	at := func(x, y int) float64 {
		x = ((x % w) + w) % w
		y = ((y % h) + h) % h
		v := data[y*w+x]
		return math.Hypot(real(v), imag(v))
	}
	refine := func(m1, c, p1 float64) float64 {
		den := m1 - 2*c + p1
		if den == 0 {
			return 0
		}
		d := 0.5 * (m1 - p1) / den
		if d > 0.5 {
			d = 0.5
		}
		if d < -0.5 {
			d = -0.5
		}
		return d
	}
	dx := refine(at(px-1, py), at(px, py), at(px+1, py))
	dy := refine(at(px, py-1), at(px, py), at(px, py+1))
	return float64(px) + dx, float64(py) + dy
}
