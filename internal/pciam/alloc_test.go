package pciam

import (
	"math/rand"
	"testing"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/tile"
)

// allocTile builds a deterministic pseudo-random tile so the correlation
// surface has a real peak to resolve.
func allocTile(w, h int, seed int64) *tile.Gray16 {
	rng := rand.New(rand.NewSource(seed))
	t := &tile.Gray16{W: w, H: h, Pix: make([]uint16, w*h)}
	for i := range t.Pix {
		t.Pix[i] = uint16(rng.Intn(1 << 12))
	}
	return t
}

// TestDisplaceZeroAllocs pins the tentpole guarantee: after one warm-up
// pair, the steady-state Displace hot path of the complex CPU aligner
// performs zero heap allocations per pair.
func TestDisplaceZeroAllocs(t *testing.T) {
	const w, h = 64, 48
	al, err := NewAligner(w, h, Options{FFTWorkers: 1, FFTExec: fft.ExecSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer al.Close()
	a := allocTile(w, h, 1)
	b := allocTile(w, h, 2)
	fa, err := al.Transform(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := al.Transform(b)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up pair: grows arena scratch to steady-state capacity.
	if _, err := al.Displace(a, b, fa, fb); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := al.Displace(a, b, fa, fb); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state complex Displace allocates %.1f times per pair, want 0", allocs)
	}
}

// TestRealDisplaceZeroAllocs is the r2c counterpart of
// TestDisplaceZeroAllocs.
func TestRealDisplaceZeroAllocs(t *testing.T) {
	const w, h = 64, 48
	al, err := NewRealAligner(w, h, Options{FFTWorkers: 1, FFTExec: fft.ExecSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer al.Close()
	a := allocTile(w, h, 3)
	b := allocTile(w, h, 4)
	fa, err := al.Transform(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := al.Transform(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := al.Displace(a, b, fa, fb); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := al.Displace(a, b, fa, fb); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state real Displace allocates %.1f times per pair, want 0", allocs)
	}
}

// TestAlignerPoolReuse checks both recycling levels advance the reuse
// counter: a Closed arena feeds the next constructor, and a Put aligner
// feeds the next Get. The deterministic pool seam keeps retention
// observable under the race detector, where sync.Pool drops Put items.
func TestAlignerPoolReuse(t *testing.T) {
	useDeterministicPools(t)
	const w, h = 20, 14
	before := ArenaReuse()
	al1, err := NewAligner(w, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	al1.Close()
	if _, err := NewAligner(w, h, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ArenaReuse(); got <= before {
		t.Fatalf("arena reuse counter did not advance after Close + rebuild: %d -> %d", before, got)
	}
	mid := ArenaReuse()
	al3, err := GetAligner(w, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	PutAligner(al3)
	al4, err := GetAligner(w, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if al4 != al3 {
		t.Fatalf("GetAligner after PutAligner returned a different aligner")
	}
	if got := ArenaReuse(); got <= mid {
		t.Fatalf("aligner reuse counter did not advance after Put + Get: %d -> %d", mid, got)
	}
	PutAligner(al4)
}
