package pciam

import (
	"math"
	"testing"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/tile"
)

func TestPaddedAlignerDims(t *testing.T) {
	al, err := NewPaddedAligner(174, 130, Options{}) // 174=2·3·29, 130=2·5·13
	if err != nil {
		t.Fatal(err)
	}
	pw, ph := al.PaddedDims()
	if !fft.IsFastLength(pw) || !fft.IsFastLength(ph) {
		t.Errorf("padded dims %dx%d not fast", pw, ph)
	}
	if pw < 174 || ph < 130 {
		t.Errorf("padded dims %dx%d shrink the tile", pw, ph)
	}
}

func TestPaddedAlignerRecoversShifts(t *testing.T) {
	al, err := NewPaddedAligner(64, 48, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ dx, dy int }{{40, 3}, {40, -3}, {5, 30}, {-4, 30}} {
		a, b := shiftedPair(64, 48, tc.dx, tc.dy, int64(tc.dx*7+tc.dy))
		d, err := al.DisplaceTiles(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d.X != tc.dx || d.Y != tc.dy {
			t.Errorf("padded shift (%d,%d): got (%d,%d) corr=%.3f", tc.dx, tc.dy, d.X, d.Y, d.Corr)
		}
	}
}

func TestPaddedMatchesBaselineOnDataset(t *testing.T) {
	p := imagegen.DefaultParams(2, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	base := mustAligner(t, 128, 96, Options{})
	padded, err := NewPaddedAligner(128, 96, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range p.Grid.Pairs() {
		a, b := ds.Tile(pr.Neighbor()), ds.Tile(pr.Coord)
		d1, err := base.DisplaceTiles(a, b)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := padded.DisplaceTiles(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d1.X != d2.X || d1.Y != d2.Y {
			t.Errorf("pair %v: baseline (%d,%d), padded (%d,%d)", pr, d1.X, d1.Y, d2.X, d2.Y)
		}
	}
}

func TestRealAlignerMatchesBaseline(t *testing.T) {
	p := imagegen.DefaultParams(2, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	base := mustAligner(t, 128, 96, Options{})
	real2c, err := NewRealAligner(128, 96, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range p.Grid.Pairs() {
		a, b := ds.Tile(pr.Neighbor()), ds.Tile(pr.Coord)
		d1, err := base.DisplaceTiles(a, b)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := real2c.DisplaceTiles(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d1.X != d2.X || d1.Y != d2.Y || math.Abs(d1.Corr-d2.Corr) > 1e-9 {
			t.Errorf("pair %v: c2c (%d,%d,%.4f), r2c (%d,%d,%.4f)",
				pr, d1.X, d1.Y, d1.Corr, d2.X, d2.Y, d2.Corr)
		}
	}
}

func TestRealAlignerHalfSpectrumSize(t *testing.T) {
	al, err := NewRealAligner(128, 96, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := al.Transform(tile.NewGray16(128, 96))
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 96*(128/2+1) {
		t.Errorf("half spectrum has %d bins, want %d", len(f), 96*65)
	}
	// roughly half the complex path's storage
	if len(f)*2 >= 128*96*2 {
		t.Error("half spectrum not smaller than full")
	}
}

func TestVariantErrors(t *testing.T) {
	if _, err := NewPaddedAligner(0, 4, Options{}); err == nil {
		t.Error("invalid size should fail")
	}
	if _, err := NewRealAligner(1, 4, Options{}); err == nil {
		t.Error("w<2 should fail")
	}
	pa, _ := NewPaddedAligner(16, 16, Options{})
	if _, err := pa.Transform(tile.NewGray16(8, 8)); err == nil {
		t.Error("size mismatch should fail")
	}
	ra, _ := NewRealAligner(16, 16, Options{})
	if _, err := ra.Transform(tile.NewGray16(8, 8)); err == nil {
		t.Error("size mismatch should fail")
	}
	a := tile.NewGray16(16, 16)
	if _, err := pa.Displace(a, a, make([]complex128, 3), make([]complex128, 3)); err == nil {
		t.Error("bad transform length should fail")
	}
	if _, err := ra.Displace(a, a, make([]complex128, 3), make([]complex128, 3)); err == nil {
		t.Error("bad half-spectrum length should fail")
	}
}

func TestSubpixelPeak(t *testing.T) {
	// Build a surface with a known subpixel maximum near (5, 3): values
	// from a parabola centered at x=5.3, y=3.0.
	const w, h = 12, 8
	data := make([]complex128, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx := float64(x) - 5.3
			dy := float64(y) - 3.0
			data[y*w+x] = complex(100-dx*dx-dy*dy, 0)
		}
	}
	sx, sy := SubpixelPeak(data, w, h, 5, 3)
	if math.Abs(sx-5.3) > 0.01 || math.Abs(sy-3.0) > 0.01 {
		t.Errorf("subpixel peak (%.3f, %.3f), want (5.3, 3.0)", sx, sy)
	}
	// Degenerate flat surface: refinement must not move the peak.
	flat := make([]complex128, w*h)
	sx, sy = SubpixelPeak(flat, w, h, 2, 2)
	if sx != 2 || sy != 2 {
		t.Errorf("flat surface moved peak to (%.2f, %.2f)", sx, sy)
	}
	// Offsets are clamped to ±0.5 even on pathological data.
	spike := make([]complex128, w*h)
	spike[3*w+5] = 1
	spike[3*w+6] = complex(0.999999, 0)
	sx, _ = SubpixelPeak(spike, w, h, 5, 3)
	if sx < 4.5 || sx > 5.5 {
		t.Errorf("subpixel offset unclamped: %g", sx)
	}
}

func TestSubpixelImprovesFractionalShift(t *testing.T) {
	// Shift a tile by a true fractional amount via a Fourier-domain
	// phase ramp (exact circular shift); the subpixel estimate must
	// land near the fractional value where integer peak search cannot.
	const w, h = 64, 48
	const shiftX = 20.4
	a, _ := shiftedPair(w, h, 0, 0, 42)
	al := mustAligner(t, w, h, Options{})
	fa := mustTransform(al, a)

	// B's spectrum = A's spectrum with the shift phase applied.
	fb := append([]complex128(nil), fa...)
	for ky := 0; ky < h; ky++ {
		for kx := 0; kx < w; kx++ {
			// signed frequency index for a proper real shift
			fx := kx
			if fx > w/2 {
				fx -= w
			}
			ang := -2 * math.Pi * float64(fx) * shiftX / float64(w)
			fb[ky*w+kx] *= complex(math.Cos(ang), math.Sin(ang))
		}
	}
	NCCSpectrum(al.work, fb, fa) // b relative to a: peak at +shiftX
	if err := al.inv.Execute(al.work); err != nil {
		t.Fatal(err)
	}
	i, _ := MaxAbs(al.work)
	px, py := i%w, i/w
	if px != 20 && px != 21 {
		t.Fatalf("integer peak at x=%d, want 20 or 21", px)
	}
	sx, _ := SubpixelPeak(al.work, w, h, px, py)
	if math.Abs(sx-shiftX) > 0.25 {
		t.Errorf("subpixel x = %.3f, want ≈ %.1f", sx, shiftX)
	}
}

func TestHannWindowAblation(t *testing.T) {
	// The ablation's finding, asserted: Hann windowing — the textbook
	// anti-leakage measure for registering mostly-overlapping images —
	// is actively HARMFUL for stitching, because the shared content
	// lives in the thin edge overlap the taper suppresses. The plain
	// aligner recovers (nearly) all pairs; the windowed one loses most
	// of them. This is why neither the paper nor MIST windows tiles.
	p := imagegen.DefaultParams(2, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plain := mustAligner(t, 128, 96, Options{})
	windowed, err := NewAligner(128, 96, Options{Window: true})
	if err != nil {
		t.Fatal(err)
	}
	score := func(al *Aligner) int {
		good := 0
		for _, pr := range p.Grid.Pairs() {
			a, b := ds.Tile(pr.Neighbor()), ds.Tile(pr.Coord)
			d, err := al.DisplaceTiles(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := ds.TrueDisplacement(pr)
			if absI(d.X-want.X) <= 1 && absI(d.Y-want.Y) <= 1 {
				good++
			}
		}
		return good
	}
	plainGood := score(plain)
	windowGood := score(windowed)
	if plainGood < p.Grid.NumPairs()-1 {
		t.Errorf("plain aligner recovered only %d/%d", plainGood, p.Grid.NumPairs())
	}
	if windowGood >= plainGood {
		t.Errorf("windowing recovered %d vs plain %d: the edge-suppression penalty should show", windowGood, plainGood)
	}
}

func TestHannWindowShape(t *testing.T) {
	w := hannWindow(8, 4)
	if w[0] != 0 || w[len(w)-1] > 1e-12 {
		t.Error("window must vanish at corners")
	}
	// Peak near the center.
	maxV, maxI := -1.0, 0
	for i, v := range w {
		if v > maxV {
			maxV, maxI = v, i
		}
	}
	cx, cy := maxI%8, maxI/8
	if cx < 3 || cx > 4 || cy < 1 || cy > 2 {
		t.Errorf("window peak at (%d,%d)", cx, cy)
	}
}
