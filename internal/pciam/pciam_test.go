package pciam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/tile"
)

// shiftedPair cuts two overlapping w×h tiles out of a random texture such
// that b's origin sits at exactly (dx, dy) in a's frame.
func shiftedPair(w, h, dx, dy int, seed int64) (*tile.Gray16, *tile.Gray16) {
	rng := rand.New(rand.NewSource(seed))
	bigW := w + abs(dx) + 4
	bigH := h + abs(dy) + 4
	big := tile.NewGray16(bigW, bigH)
	for i := range big.Pix {
		big.Pix[i] = uint16(rng.Intn(60000))
	}
	// Smooth slightly so content is image-like rather than white noise.
	smooth := tile.NewGray16(bigW, bigH)
	for y := 1; y < bigH-1; y++ {
		for x := 1; x < bigW-1; x++ {
			s := int(big.At(x, y))*4 + int(big.At(x-1, y)) + int(big.At(x+1, y)) + int(big.At(x, y-1)) + int(big.At(x, y+1))
			smooth.Set(x, y, uint16(s/8))
		}
	}
	ax, ay := 2, 2
	if dx < 0 {
		ax += -dx
	}
	if dy < 0 {
		ay += -dy
	}
	bx, by := ax+dx, ay+dy
	return smooth.SubRect(ax, ay, w, h), smooth.SubRect(bx, by, w, h)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func mustAligner(t testing.TB, w, h int, opts Options) *Aligner {
	t.Helper()
	al, err := NewAligner(w, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

func TestDisplaceRecoversKnownShift(t *testing.T) {
	cases := []struct{ dx, dy int }{
		{40, 0}, {40, 3}, {40, -3}, {0, 30}, {5, 30}, {-4, 30}, {10, 10},
	}
	al := mustAligner(t, 64, 48, Options{})
	for _, tc := range cases {
		a, b := shiftedPair(64, 48, tc.dx, tc.dy, int64(tc.dx*100+tc.dy))
		d, err := al.DisplaceTiles(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d.X != tc.dx || d.Y != tc.dy {
			t.Errorf("shift (%d,%d): recovered (%d,%d) corr=%.3f", tc.dx, tc.dy, d.X, d.Y, d.Corr)
		}
		if d.Corr < 0.9 {
			t.Errorf("shift (%d,%d): low confidence %.3f", tc.dx, tc.dy, d.Corr)
		}
	}
}

func TestDisplaceProperty(t *testing.T) {
	// Any in-range shift must be recovered exactly on textured input.
	al := mustAligner(t, 48, 48, Options{})
	f := func(seed int64, dxs, dys uint8) bool {
		dx := int(dxs)%20 + 10 // 10..29
		dy := int(dys)%13 - 6  // -6..6
		a, b := shiftedPair(48, 48, dx, dy, seed)
		d, err := al.Displace(a, b, mustTransform(al, a), mustTransform(al, b))
		if err != nil {
			return false
		}
		return d.X == dx && d.Y == dy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func mustTransform(al *Aligner, g *tile.Gray16) []complex128 {
	f, err := al.Transform(g)
	if err != nil {
		panic(err)
	}
	return f
}

func TestPositiveOnlyModeMissesNegativeJitter(t *testing.T) {
	// Documents the limitation of the paper's literal pseudocode: a
	// negative cross-axis jitter is misresolved in positive-only mode
	// but recovered in signed mode.
	signed := mustAligner(t, 64, 48, Options{})
	posOnly := mustAligner(t, 64, 48, Options{PositiveOnly: true})
	a, b := shiftedPair(64, 48, 40, -3, 7)
	ds, err := signed.DisplaceTiles(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ds.X != 40 || ds.Y != -3 {
		t.Fatalf("signed mode: got (%d,%d)", ds.X, ds.Y)
	}
	dp, err := posOnly.DisplaceTiles(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Y == -3 {
		t.Error("positive-only mode cannot represent negative Y; test setup is wrong")
	}
}

func TestDisplaceOnSyntheticDataset(t *testing.T) {
	// End-to-end against the generator's ground truth, including
	// vignetting and sensor noise.
	// Tile size matters here: phase correlation needs the overlap to be
	// a non-negligible fraction of the spectrum's energy, which the
	// paper's 1392×1040 tiles give it for free. 128×96 is the smallest
	// size that is fully reliable at the default 20% overlap.
	p := imagegen.DefaultParams(3, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	al := mustAligner(t, 128, 96, Options{})
	for _, pr := range p.Grid.Pairs() {
		a := ds.Tile(pr.Neighbor())
		b := ds.Tile(pr.Coord)
		got, err := al.DisplaceTiles(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := ds.TrueDisplacement(pr)
		if abs(got.X-want.X) > 1 || abs(got.Y-want.Y) > 1 {
			t.Errorf("pair %v %s: got (%d,%d), truth (%d,%d), corr %.3f",
				pr.Coord, pr.Dir, got.X, got.Y, want.X, want.Y, got.Corr)
		}
	}
}

func TestNPeaksHelpsSparseTiles(t *testing.T) {
	// With nearly featureless overlap, the single-peak answer can lock
	// onto a noise peak; n-peaks may consider more hypotheses. At
	// minimum it must never do worse on feature-rich data.
	p := imagegen.DefaultParams(2, 2, 128, 96)
	p.ColonyDensity = 3 // sparse colonies: the paper's hard case
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	multi := mustAligner(t, 128, 96, Options{NPeaks: 3})
	for _, pr := range p.Grid.Pairs() {
		got, err := multi.DisplaceTiles(ds.Tile(pr.Neighbor()), ds.Tile(pr.Coord))
		if err != nil {
			t.Fatal(err)
		}
		want := ds.TrueDisplacement(pr)
		if abs(got.X-want.X) > 1 || abs(got.Y-want.Y) > 1 {
			t.Errorf("npeaks=3 pair %v: got (%d,%d) want (%d,%d)", pr.Coord, got.X, got.Y, want.X, want.Y)
		}
	}
}

func TestNCCSpectrumUnitMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fa := make([]complex128, 64)
	fb := make([]complex128, 64)
	for i := range fa {
		fa[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		fb[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	fa[7] = 0 // force a zero product
	dst := make([]complex128, 64)
	NCCSpectrum(dst, fa, fb)
	for i, v := range dst {
		m := math.Hypot(real(v), imag(v))
		if i == 7 {
			if m != 0 {
				t.Errorf("zero product should map to 0, got %v", v)
			}
			continue
		}
		if math.Abs(m-1) > 1e-12 {
			t.Errorf("bin %d magnitude %g, want 1", i, m)
		}
	}
}

func TestMaxAbsAndTopPeaks(t *testing.T) {
	data := make([]complex128, 8*8)
	data[5] = complex(10, 0)  // (5,0)
	data[6] = complex(9, 0)   // (6,0): adjacent to peak0, suppressed
	data[36] = complex(-8, 0) // (4,4): far enough to stand alone
	i, m := MaxAbs(data)
	if i != 5 || m != 10 {
		t.Fatalf("MaxAbs = %d, %g", i, m)
	}
	peaks := TopPeaks(data, 8, 8, 2)
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks", len(peaks))
	}
	if peaks[0].X != 5 || peaks[0].Y != 0 {
		t.Errorf("peak0 = %+v", peaks[0])
	}
	if peaks[1].X != 4 || peaks[1].Y != 4 {
		t.Errorf("peak1 = %+v (want the distant peak, neighbor suppressed)", peaks[1])
	}
}

func TestOverlapRegions(t *testing.T) {
	cases := []struct {
		dx, dy                 int
		ax, ay, bx, by, ow, oh int
		ok                     bool
	}{
		{0, 0, 0, 0, 0, 0, 10, 8, true},
		{3, 2, 3, 2, 0, 0, 7, 6, true},
		{-3, 2, 0, 2, 3, 0, 7, 6, true},
		{3, -2, 3, 0, 0, 2, 7, 6, true},
		{10, 0, 0, 0, 0, 0, 0, 0, false},
		{0, 8, 0, 0, 0, 0, 0, 0, false},
		{-10, 0, 0, 0, 0, 0, 0, 0, false},
	}
	for _, tc := range cases {
		ax, ay, bx, by, ow, oh, ok := OverlapRegions(10, 8, tc.dx, tc.dy)
		if ok != tc.ok {
			t.Errorf("(%d,%d): ok=%v want %v", tc.dx, tc.dy, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if ax != tc.ax || ay != tc.ay || bx != tc.bx || by != tc.by || ow != tc.ow || oh != tc.oh {
			t.Errorf("(%d,%d): got a(%d,%d) b(%d,%d) %dx%d", tc.dx, tc.dy, ax, ay, bx, by, ow, oh)
		}
	}
}

func TestOverlapRegionsProperty(t *testing.T) {
	// The two regions always have identical size and lie inside their
	// images; region size shrinks by exactly |dx|, |dy|.
	f := func(dxs, dys int8) bool {
		const w, h = 20, 16
		dx, dy := int(dxs)%w, int(dys)%h
		ax, ay, bx, by, ow, oh, ok := OverlapRegions(w, h, dx, dy)
		if !ok {
			return abs(dx) >= w || abs(dy) >= h
		}
		if ow != w-abs(dx) || oh != h-abs(dy) {
			return false
		}
		return ax >= 0 && ay >= 0 && bx >= 0 && by >= 0 &&
			ax+ow <= w && bx+ow <= w && ay+oh <= h && by+oh <= h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAlignerErrors(t *testing.T) {
	if _, err := NewAligner(0, 4, Options{}); err == nil {
		t.Error("zero width should fail")
	}
	al := mustAligner(t, 8, 8, Options{})
	if _, err := al.Transform(tile.NewGray16(9, 8)); err == nil {
		t.Error("size mismatch should fail")
	}
	a := tile.NewGray16(8, 8)
	if _, err := al.Displace(a, a, make([]complex128, 3), make([]complex128, 64)); err == nil {
		t.Error("bad transform length should fail")
	}
}

func TestDegenerateTiles(t *testing.T) {
	// Two constant tiles: no information at all. Must not crash and
	// must report no confidence.
	al := mustAligner(t, 16, 16, Options{})
	a := tile.NewGray16(16, 16)
	b := tile.NewGray16(16, 16)
	for i := range a.Pix {
		a.Pix[i] = 1000
		b.Pix[i] = 1000
	}
	d, err := al.DisplaceTiles(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Corr > 0 {
		t.Errorf("degenerate pair reported confidence %g", d.Corr)
	}
}
