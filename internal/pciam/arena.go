package pciam

import (
	"sync"
	"sync/atomic"

	"hybridstitch/internal/fft"
)

// This file implements the per-aligner scratch arenas and the aligner
// pools behind the zero-allocation steady state: after one warm-up pair,
// Displace on any CPU aligner performs no heap allocations (pinned by
// the AllocsPerRun tests in alloc_test.go). An arena owns every
// per-pair scratch buffer — the NCC/correlogram spectrum, the real
// correlation surface, pixel staging, and the peak-candidate slices —
// and is checked out of a sync.Pool keyed by tile dimensions, so
// repeated aligner construction (one aligner per worker per run) reuses
// warm memory instead of re-allocating it.
//
// Two levels recycle:
//
//   - arenas: checked out in New*Aligner, returned by (*Aligner).Close
//     (and its variant counterparts);
//   - whole aligners (plans included): Get*Aligner/Put*Aligner, which
//     the stitch layer uses per worker.
//
// Both levels count their pool hits into the process-wide reuse counter
// exported as ArenaReuse; the stitch layer publishes the per-run delta
// as the obs counter pciam.arena.reuse (this package deliberately does
// not import obs).

// pool is the free-list seam behind both recycling levels. Production
// uses sync.Pool. Tests swap newPool for a deterministic
// retain-everything list so retention stays observable under the race
// detector, where sync.Pool deliberately drops a fraction of Put items
// to shake out lifetime bugs.
type pool interface {
	Get() any
	Put(x any)
}

// newPool builds one free list. Replace it (and call resetPoolsForTest)
// to change the pooling discipline; tests own the only other
// implementation.
var newPool = func() pool { return syncPool{p: new(sync.Pool)} }

type syncPool struct{ p *sync.Pool }

func (s syncPool) Get() any  { return s.p.Get() }
func (s syncPool) Put(x any) { s.p.Put(x) }

// resetPoolsForTest empties both pool maps so a swapped newPool takes
// effect for every key. Test-only; not safe concurrently with checkouts.
func resetPoolsForTest() {
	arenaPools.Range(func(k, _ any) bool { arenaPools.Delete(k); return true })
	alignerPools.Range(func(k, _ any) bool { alignerPools.Delete(k); return true })
}

// arenaKey identifies one arena free list: the aligner kind plus the
// tile dimensions that size every buffer.
type arenaKey struct {
	kind string // "complex", "padded", or "real"
	w, h int
}

var (
	arenaPools      sync.Map // arenaKey → pool
	arenaReuseCount atomic.Int64
)

// ArenaReuse returns the process-wide count of scratch checkouts served
// from a pool (arena or whole-aligner) rather than fresh allocation.
func ArenaReuse() int64 { return arenaReuseCount.Load() }

// arena is the per-aligner scratch block. work is the complex spectrum
// scratch (full spectrum for the complex/padded aligners, half spectrum
// for the real aligner); corr and pix are the real aligner's correlation
// surface and pixel staging; peaks, cands, and cx back the peak search.
// cands and cx start nil and grow on first NPeaks>1 use; pix2 starts nil
// and grows on the real aligner's first batched TransformPair (staging
// the second tile of the pair).
type arena struct {
	work  []complex128
	corr  []float64
	pix   []float64
	pix2  []float64
	peaks []Peak
	cands []peakCand
	cx    []complex128
}

// checkoutArena gets an arena for the given aligner kind and tile size,
// reusing a pooled one when available. cwords sizes work; fwords, when
// positive, sizes corr and pix.
func checkoutArena(kind string, w, h, cwords, fwords int) *arena {
	pv, _ := arenaPools.LoadOrStore(arenaKey{kind: kind, w: w, h: h}, newPool())
	if v := pv.(pool).Get(); v != nil {
		arenaReuseCount.Add(1)
		return v.(*arena)
	}
	ar := &arena{work: make([]complex128, cwords), peaks: make([]Peak, 0, 4)}
	if fwords > 0 {
		ar.corr = make([]float64, fwords)
		ar.pix = make([]float64, fwords)
	}
	return ar
}

// releaseArena returns an arena to its free list.
func releaseArena(kind string, w, h int, ar *arena) {
	if ar == nil {
		return
	}
	pv, _ := arenaPools.LoadOrStore(arenaKey{kind: kind, w: w, h: h}, newPool())
	pv.(pool).Put(ar)
}

// alignerKey identifies one aligner free list: kind, tile size, and
// every option that changes an aligner's observable behavior. The
// Planner is deliberately excluded — it only steers FFT strategy
// selection, and all strategies produce the same displacements (the
// cross-variant equivalence tests pin this) — so runs that build a
// fresh estimate-mode planner per run still share aligners.
type alignerKey struct {
	kind            string
	w, h            int
	nPeaks          int
	positiveOnly    bool
	minOverlapPx    int
	window          bool
	fftWorkers      int
	fftExec         fft.ExecStrategy
	fftPoolID       uint64
	legacyTranspose bool
	disableBatch    bool
	disableFusion   bool
}

var alignerPools sync.Map // alignerKey → pool

func makeAlignerKey(kind string, w, h int, opts Options) alignerKey {
	opts = opts.withDefaults()
	pool := opts.FFTPool
	if pool == nil {
		pool = fft.SharedPool()
	}
	return alignerKey{
		kind: kind, w: w, h: h,
		nPeaks:          opts.NPeaks,
		positiveOnly:    opts.PositiveOnly,
		minOverlapPx:    opts.MinOverlapPx,
		window:          opts.Window,
		fftWorkers:      opts.FFTWorkers,
		fftExec:         opts.FFTExec,
		fftPoolID:       pool.ID(),
		legacyTranspose: opts.LegacyTranspose,
		disableBatch:    opts.DisableBatch,
		disableFusion:   opts.DisableFusion,
	}
}

func alignerPool(key alignerKey) pool {
	pv, _ := alignerPools.LoadOrStore(key, newPool())
	return pv.(pool)
}

// GetAligner checks out a pooled complex aligner for w×h tiles,
// constructing one through NewAligner on a miss. Return it with
// PutAligner when the worker is done; do not Close an aligner that will
// be Put back.
func GetAligner(w, h int, opts Options) (*Aligner, error) {
	if v := alignerPool(makeAlignerKey("complex", w, h, opts)).Get(); v != nil {
		arenaReuseCount.Add(1)
		return v.(*Aligner), nil
	}
	return NewAligner(w, h, opts)
}

// PutAligner returns a complex aligner for reuse by a later GetAligner
// with the same dimensions and options.
func PutAligner(al *Aligner) {
	if al == nil || al.ar == nil {
		return
	}
	alignerPool(makeAlignerKey("complex", al.w, al.h, al.opts)).Put(al)
}

// GetPaddedAligner is GetAligner for the padded variant.
func GetPaddedAligner(w, h int, opts Options) (*PaddedAligner, error) {
	if v := alignerPool(makeAlignerKey("padded", w, h, opts)).Get(); v != nil {
		arenaReuseCount.Add(1)
		return v.(*PaddedAligner), nil
	}
	return NewPaddedAligner(w, h, opts)
}

// PutPaddedAligner returns a padded aligner for reuse.
func PutPaddedAligner(al *PaddedAligner) {
	if al == nil || al.ar == nil {
		return
	}
	alignerPool(makeAlignerKey("padded", al.w, al.h, al.opts)).Put(al)
}

// GetRealAligner is GetAligner for the real-to-complex variant.
func GetRealAligner(w, h int, opts Options) (*RealAligner, error) {
	if v := alignerPool(makeAlignerKey("real", w, h, opts)).Get(); v != nil {
		arenaReuseCount.Add(1)
		return v.(*RealAligner), nil
	}
	return NewRealAligner(w, h, opts)
}

// PutRealAligner returns a real aligner for reuse.
func PutRealAligner(al *RealAligner) {
	if al == nil || al.ar == nil {
		return
	}
	alignerPool(makeAlignerKey("real", al.w, al.h, al.opts)).Put(al)
}
