package pciam

import (
	"testing"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/tile"
)

// refinePair cuts one adjacent pair with known truth from a generated
// dataset: smooth microscopy-like content, so the CCF surface has the
// gradient hill climbing needs (the pure-noise shiftedPair texture
// decorrelates at 1 px and gives a delta-spike surface).
func refinePair(t *testing.T) (a, b *tile.Gray16, truth tile.Displacement) {
	t.Helper()
	p := imagegen.DefaultParams(1, 2, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := tile.Pair{Coord: tile.Coord{Row: 0, Col: 1}, Dir: tile.West}
	return ds.Tile(pr.Neighbor()), ds.Tile(pr.Coord), ds.TrueDisplacement(pr)
}

func TestRefineFindsTrueShiftFromNearbyStart(t *testing.T) {
	a, b, truth := refinePair(t)
	// Greedy climbing is reliable from ≤2 px away (fine texture puts
	// local maxima further out — that regime belongs to
	// ExhaustiveRefine, which RefineResult defaults to).
	for _, start := range []tile.Displacement{
		{X: truth.X - 2, Y: truth.Y - 1},
		{X: truth.X + 2, Y: truth.Y + 1},
		{X: truth.X, Y: truth.Y},
	} {
		got := Refine(a, b, start, 6, 0, Options{})
		if absI(got.X-truth.X) > 1 || absI(got.Y-truth.Y) > 1 {
			t.Errorf("start (%d,%d): refined to (%d,%d), truth (%d,%d), corr=%.3f",
				start.X, start.Y, got.X, got.Y, truth.X, truth.Y, got.Corr)
		}
	}
}

func TestExhaustiveRefineFindsTruthFromFar(t *testing.T) {
	a, b, truth := refinePair(t)
	start := tile.Displacement{X: truth.X + 4, Y: truth.Y - 3}
	got := ExhaustiveRefine(a, b, start, 6, Options{})
	if got.X != truth.X || got.Y != truth.Y {
		t.Errorf("exhaustive refined to (%d,%d), truth (%d,%d)", got.X, got.Y, truth.X, truth.Y)
	}
}

func TestRefineRespectsRadius(t *testing.T) {
	a, b, truth := refinePair(t)
	start := tile.Displacement{X: truth.X - 20, Y: truth.Y} // truth 20 px away
	got := Refine(a, b, start, 3, 0, Options{})
	if absI(got.X-start.X) > 3 || absI(got.Y-start.Y) > 3 {
		t.Errorf("refinement escaped the radius: (%d,%d)", got.X, got.Y)
	}
}

func TestRefineMatchesExhaustive(t *testing.T) {
	// On the smooth CCF surface greedy and exhaustive must agree.
	a, b, truth := refinePair(t)
	start := tile.Displacement{X: truth.X - 2, Y: truth.Y + 2}
	greedy := Refine(a, b, start, 5, 0, Options{})
	exact := ExhaustiveRefine(a, b, start, 5, Options{})
	if greedy.X != exact.X || greedy.Y != exact.Y {
		t.Errorf("greedy (%d,%d) vs exhaustive (%d,%d)", greedy.X, greedy.Y, exact.X, exact.Y)
	}
}

func TestRefineDegenerate(t *testing.T) {
	flat := tile.NewGray16(16, 16)
	got := Refine(flat, flat, tile.Displacement{X: 4, Y: 0}, 3, 0, Options{})
	if got.Corr > 0 {
		t.Errorf("flat tiles refined to corr %.3f", got.Corr)
	}
	got = ExhaustiveRefine(flat, flat, tile.Displacement{X: 4, Y: 0}, 2, Options{})
	if got.Corr > 0 {
		t.Errorf("flat exhaustive corr %.3f", got.Corr)
	}
}
