//go:build !race

package pciam

const raceDetectorEnabled = false
