package pciam

import (
	"math"

	"hybridstitch/internal/tile"
)

// Hill-climb refinement, the translation-refinement stage the NIST group
// added on the road from this paper to MIST: when phase correlation
// fails (featureless overlap, spurious peak), the stage model still
// predicts the displacement within a few pixels, and maximizing the
// cross-correlation factor by greedy local search from that prediction
// recovers the true translation without any Fourier machinery.

// Refine hill-climbs the CCF surface from the starting displacement,
// examining a 5×5 neighborhood each step (the ±2 look-ahead steps over
// the single-pixel ripples fine image texture puts on the surface), for
// at most maxSteps steps and never moving more than radius from the
// start. It returns the best displacement found (the start itself if no
// neighbor improves).
func Refine(a, b *tile.Gray16, start tile.Displacement, radius, maxSteps int, opts Options) tile.Displacement {
	opts = opts.withDefaults()
	if radius < 1 {
		radius = 4
	}
	if maxSteps < 1 {
		maxSteps = 2 * radius * radius
	}
	eval := func(dx, dy int) float64 {
		return ccfRegion(a, b, dx, dy, opts.MinOverlapPx)
	}
	cur := start
	cur.Corr = eval(start.X, start.Y)
	visited := map[[2]int]bool{{start.X, start.Y}: true}
	for step := 0; step < maxSteps; step++ {
		best := cur
		improved := false
		for dy := -2; dy <= 2; dy++ {
			for dx := -2; dx <= 2; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := cur.X+dx, cur.Y+dy
				if absI(nx-start.X) > radius || absI(ny-start.Y) > radius {
					continue
				}
				if visited[[2]int{nx, ny}] {
					continue
				}
				visited[[2]int{nx, ny}] = true
				c := eval(nx, ny)
				if c > best.Corr {
					best = tile.Displacement{X: nx, Y: ny, Corr: c}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
		cur = best
	}
	if math.IsInf(cur.Corr, -1) {
		cur.Corr = -1
	}
	return cur
}

// ExhaustiveRefine evaluates the CCF at every offset within ±radius of
// the start and returns the maximum — the reference Refine is checked
// against, and the fallback for surfaces with local maxima.
func ExhaustiveRefine(a, b *tile.Gray16, start tile.Displacement, radius int, opts Options) tile.Displacement {
	opts = opts.withDefaults()
	if radius < 1 {
		radius = 4
	}
	best := tile.Displacement{X: start.X, Y: start.Y, Corr: math.Inf(-1)}
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			c := ccfRegion(a, b, start.X+dx, start.Y+dy, opts.MinOverlapPx)
			if c > best.Corr {
				best = tile.Displacement{X: start.X + dx, Y: start.Y + dy, Corr: c}
			}
		}
	}
	if math.IsInf(best.Corr, -1) {
		best = start
		best.Corr = -1
	}
	return best
}

func absI(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
