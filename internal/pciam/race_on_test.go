//go:build race

package pciam

// Under the race detector sync.Pool deliberately drops a fraction of
// Put items to shake out lifetime bugs, so pool-retention tests cannot
// assert reuse there.
const raceDetectorEnabled = true
