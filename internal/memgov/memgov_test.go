package memgov

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNoPenaltyWithinPhysical(t *testing.T) {
	g := New(1000, time.Microsecond)
	a, err := g.Alloc(900)
	if err != nil {
		t.Fatal(err)
	}
	if p := g.Penalty(100); p != 0 {
		t.Errorf("penalty %v while resident", p)
	}
	g.Touch(100)
	_, _, faults, stalled := g.Stats()
	if faults != 0 || stalled != 0 {
		t.Errorf("faults=%d stalled=%v while resident", faults, stalled)
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestPenaltyGrowsWithOvercommit(t *testing.T) {
	g := New(1000, time.Microsecond)
	var slept time.Duration
	g.SetSleeper(func(d time.Duration) { slept += d })
	a, _ := g.Alloc(1500) // 33% overcommit
	p1 := g.Penalty(300)
	if p1 <= 0 {
		t.Fatal("expected penalty at overcommit")
	}
	b, _ := g.Alloc(1500) // 3000 live, 67% overcommit
	p2 := g.Penalty(300)
	if p2 <= p1 {
		t.Errorf("penalty did not grow: %v then %v", p1, p2)
	}
	g.Touch(300)
	if slept != p2 {
		t.Errorf("slept %v, want %v", slept, p2)
	}
	_, _, faults, _ := g.Stats()
	if faults != 1 {
		t.Errorf("faults = %d", faults)
	}
	_ = a.Free()
	_ = b.Free()
	if p := g.Penalty(300); p != 0 {
		t.Errorf("penalty %v after frees", p)
	}
}

func TestCliffShape(t *testing.T) {
	// Sweep working sets across the capacity boundary: penalty must be
	// exactly zero below it and strictly increasing above it — the
	// Fig 5 cliff.
	g := New(10000, time.Microsecond)
	g.SetSleeper(func(time.Duration) {})
	var prev time.Duration
	for _, ws := range []int64{4000, 8000, 10000, 10400, 12000, 16000, 20000} {
		a, _ := g.Alloc(ws)
		p := g.Penalty(1000)
		if ws <= 10000 && p != 0 {
			t.Errorf("ws=%d: penalty %v below capacity", ws, p)
		}
		if ws > 10400 && p <= prev {
			t.Errorf("ws=%d: penalty %v did not increase (prev %v)", ws, p, prev)
		}
		prev = p
		_ = a.Free()
	}
}

func TestAllocErrorsAndDoubleFree(t *testing.T) {
	g := New(100, 0)
	//lint:allow pairguard negative allocation must fail; nothing is allocated
	if _, err := g.Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
	a, _ := g.Alloc(10)
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(); err == nil {
		t.Error("double free should fail")
	}
}

func TestAccountingProperty(t *testing.T) {
	// Live never goes negative when every alloc is freed exactly once,
	// and ends at zero.
	f := func(sizes []uint16) bool {
		g := New(1000, 0)
		var allocs []*Allocation
		for _, s := range sizes {
			a, err := g.Alloc(int64(s))
			if err != nil {
				return false
			}
			allocs = append(allocs, a)
		}
		for _, a := range allocs {
			if a.Free() != nil {
				return false
			}
		}
		live, peak, _, _ := g.Stats()
		return live == 0 && peak >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentTouches(t *testing.T) {
	g := New(100, time.Nanosecond)
	g.SetSleeper(func(time.Duration) {})
	a, _ := g.Alloc(1000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Touch(10)
			}
		}()
	}
	wg.Wait()
	_, _, faults, _ := g.Stats()
	if faults != 800 {
		t.Errorf("faults = %d, want 800", faults)
	}
	_ = a.Free()
}
