// Package memgov simulates a machine's physical-memory limit and the
// virtual-memory paging penalty that the paper's Fig 5 exposes: a
// multi-threaded FFT workload whose speedup "falls off a cliff, across all
// thread counts" the moment the working set (832 → 864 tiles) exceeds
// RAM and the VM subsystem starts paging.
//
// The governor tracks live allocation bytes against a configured physical
// capacity. While the working set fits, Touch is free; once it exceeds
// capacity, every Touch pays a delay proportional to the bytes touched
// and the overcommit fraction — a first-order model of page-fault
// stalls. This lets experiments reproduce the cliff deterministically on
// a host whose real RAM is plentiful.
package memgov

import (
	"fmt"
	"sync"
	"time"

	"hybridstitch/internal/obs"
)

// Governor models one machine's physical memory.
type Governor struct {
	mu       sync.Mutex
	physical int64
	live     int64
	peak     int64
	// penaltyPerByte is the paging stall per byte touched at 100%
	// overcommit (live = 2×physical ⇒ half of all touched pages fault).
	penaltyPerByte time.Duration
	faults         int64
	stalled        time.Duration
	sleep          func(time.Duration) // test seam

	// Nil-safe observability hooks (SetObs).
	cFaults *obs.Counter
	hStall  *obs.Histogram
	gLive   *obs.Gauge
}

// New creates a governor with the given physical capacity in bytes and a
// paging penalty per byte at full overcommit. A penalty of 0 disables
// stalls (accounting only).
func New(physicalBytes int64, penaltyPerByte time.Duration) *Governor {
	return &Governor{
		physical:       physicalBytes,
		penaltyPerByte: penaltyPerByte,
		sleep:          time.Sleep,
	}
}

// Allocation is a tracked reservation.
type Allocation struct {
	g     *Governor
	bytes int64
	freed bool
	mu    sync.Mutex
}

// SetObs attaches a metrics recorder: penalized touches increment
// memgov.faults and observe memgov.stall.seconds, live bytes track the
// memgov.live_bytes gauge. Call before sharing the governor across
// goroutines.
func (g *Governor) SetObs(rec *obs.Recorder) {
	g.mu.Lock()
	g.cFaults = rec.Counter(obs.CounterMemgovFaults)
	g.hStall = rec.Histogram(obs.HistMemgovStallSeconds)
	g.gLive = rec.Gauge(obs.GaugeMemgovLiveBytes)
	g.mu.Unlock()
}

// Alloc records a reservation of n bytes. Unlike a real OS, the governor
// never refuses: exceeding physical capacity is exactly the regime under
// study; it just starts costing.
func (g *Governor) Alloc(n int64) (*Allocation, error) {
	if n < 0 {
		return nil, fmt.Errorf("memgov: negative allocation %d", n)
	}
	g.mu.Lock()
	g.live += n
	if g.live > g.peak {
		g.peak = g.live
	}
	live, gl := g.live, g.gLive
	g.mu.Unlock()
	gl.Set(float64(live))
	return &Allocation{g: g, bytes: n}, nil
}

// Free releases the reservation.
func (a *Allocation) Free() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freed {
		return fmt.Errorf("memgov: double free of %d bytes", a.bytes)
	}
	a.freed = true
	a.g.mu.Lock()
	a.g.live -= a.bytes
	live, gl := a.g.live, a.g.gLive
	a.g.mu.Unlock()
	gl.Set(float64(live))
	return nil
}

// Physical returns the configured physical capacity in bytes — the
// budget out-of-core stages (sharded compose) size their working set
// against.
func (g *Governor) Physical() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.physical
}

// OvercommitFraction returns max(0, (live-physical)/live): the fraction
// of the working set that cannot be resident.
func (g *Governor) OvercommitFraction() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.overcommitLocked()
}

func (g *Governor) overcommitLocked() float64 {
	if g.live <= g.physical || g.live == 0 {
		return 0
	}
	return float64(g.live-g.physical) / float64(g.live)
}

// Penalty computes the stall a Touch of n bytes would incur right now.
func (g *Governor) Penalty(n int64) time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	frac := g.overcommitLocked()
	if frac == 0 || g.penaltyPerByte == 0 {
		return 0
	}
	return time.Duration(float64(n) * frac * float64(g.penaltyPerByte))
}

// Touch models the workload accessing n bytes of its working set,
// stalling for the current paging penalty.
func (g *Governor) Touch(n int64) {
	d := g.Penalty(n)
	if d > 0 {
		g.mu.Lock()
		g.faults++
		g.stalled += d
		c, h := g.cFaults, g.hStall
		g.mu.Unlock()
		c.Add(1)
		h.ObserveDuration(d)
		g.sleep(d)
	}
}

// Stats reports live bytes, peak bytes, the number of penalized touches,
// and the total stall time injected.
func (g *Governor) Stats() (live, peak int64, faults int64, stalled time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.live, g.peak, g.faults, g.stalled
}

// SetSleeper replaces the stall function (tests use a recorder instead of
// real sleeps).
func (g *Governor) SetSleeper(f func(time.Duration)) { g.sleep = f }
