package obs

import (
	"testing"

	"hybridstitch/internal/analysis/leaktest"
)

// TestMain fails the package if any test leaks a goroutine — in
// particular a Recorder flusher left running by a missing Close.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}
