package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// jsonClean mirrors encoding/json's string sanitation: every invalid
// UTF-8 byte becomes U+FFFD. Round-tripping preserves strings modulo
// this coercion — JSON text must be valid UTF-8.
func jsonClean(s string) string {
	if utf8.ValidString(s) {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			sb.WriteRune(utf8.RuneError)
		} else {
			sb.WriteString(s[i : i+size])
		}
		i += size
	}
	return sb.String()
}

// FuzzChromeTrace feeds arbitrary span names, track names, and attribute
// strings through the Chrome-trace encoder and asserts the output is
// always valid JSON that round-trips through the decoder with names and
// attributes intact. Spans are built directly (no Recorder) so the fuzz
// worker spawns no goroutines.
func FuzzChromeTrace(f *testing.F) {
	f.Add("run", "stitch", "impl", "simple-cpu", int64(0), int64(1500))
	f.Add("stage/read", `quote"brace}`, "tile", "r000_c001", int64(-5), int64(0))
	f.Add("GPU0/copy/memcpyH2D", "H2D", "bytes", "98304", int64(12), int64(12))
	f.Add("", "", "", "", int64(1<<40), int64(-1))
	f.Add("unicode/Δt", "späñ\x00name", "k\n", "v\t\\", int64(7), int64(7))
	f.Fuzz(func(t *testing.T, track, name, ak, av string, startUS, durUS int64) {
		spans := []CompletedSpan{
			{ID: 1, Seq: 1, Track: track, Name: name,
				Start: time.Duration(startUS) * time.Microsecond,
				End:   time.Duration(startUS+durUS) * time.Microsecond,
				Attrs: []Attr{{Key: ak, Value: av}}},
			{ID: 2, Seq: 2, Track: track + "2", Name: name,
				Start: 0, End: time.Duration(durUS) * time.Microsecond},
		}
		var buf bytes.Buffer
		if err := EncodeChromeTrace(&buf, spans, map[string]string{"device": track}); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("invalid JSON for track=%q name=%q attr=%q=%q:\n%s", track, name, ak, av, buf.Bytes())
		}
		decoded, err := DecodeChromeTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(decoded) != len(spans) {
			t.Fatalf("decoded %d spans, want %d", len(decoded), len(spans))
		}
		wantName, wantK, wantV := jsonClean(name), jsonClean(ak), jsonClean(av)
		var sawAttr bool
		for _, s := range decoded {
			if s.Name != wantName {
				t.Fatalf("name %q decoded as %q", name, s.Name)
			}
			if s.End < s.Start {
				t.Fatalf("decoded interval inverted: %+v", s)
			}
			for _, a := range s.Attrs {
				if a.Key == wantK && a.Value == wantV {
					sawAttr = true
				}
			}
		}
		if !sawAttr {
			t.Fatalf("attr %q=%q lost in round trip", ak, av)
		}
	})
}
