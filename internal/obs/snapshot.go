package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// GaugeValue is a gauge's exported state.
type GaugeValue struct {
	Last float64 `json:"last"`
	Max  float64 `json:"max"`
}

// HistogramValue is a histogram's exported aggregate.
type HistogramValue struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Mean returns the average observation, or 0 with no observations.
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// BenchEntry is one Go benchmark result (the `make bench` harness parses
// `go test -bench` output into these).
type BenchEntry struct {
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int64              `json:"iters,omitempty"`
	Extra   map[string]float64 `json:"extra,omitempty"` // e.g. "B/op", "allocs/op", "MB/s"
}

// Snapshot is the machine-readable metrics export — the BENCH_<date>.json
// artifact the regression harness diffs between commits.
type Snapshot struct {
	Label      string                    `json:"label,omitempty"`
	Date       string                    `json:"date,omitempty"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue     `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
	Benchmarks map[string]BenchEntry     `json:"benchmarks,omitempty"`
}

// Snapshot exports every metric's current value.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistogramValue{},
	}
	if r == nil {
		return snap
	}
	r.metricsMu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.metricsMu.Unlock()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		last, max := g.Value()
		snap.Gauges[k] = GaugeValue{Last: last, Max: max}
	}
	for k, h := range hists {
		count, sum, min, max := h.Stats()
		snap.Histograms[k] = HistogramValue{Count: count, Sum: sum, Min: min, Max: max}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteSnapshotFile writes the snapshot to path.
func WriteSnapshotFile(path string, s Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot reads a snapshot written by WriteJSON.
func LoadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("obs: parsing snapshot %s: %w", path, err)
	}
	return s, nil
}

// Summary renders the plain-text metrics table: counters, gauges,
// histograms, and a per-(track,name) span rollup.
func (r *Recorder) Summary() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	snap := r.Snapshot()

	if len(snap.Counters) > 0 {
		sb.WriteString("counters:\n")
		for _, k := range sortedKeys(snap.Counters) {
			fmt.Fprintf(&sb, "  %-36s %12d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Gauges) > 0 {
		sb.WriteString("gauges:\n")
		for _, k := range sortedKeys(snap.Gauges) {
			g := snap.Gauges[k]
			fmt.Fprintf(&sb, "  %-36s last=%-12g max=%g\n", k, g.Last, g.Max)
		}
	}
	if len(snap.Histograms) > 0 {
		sb.WriteString("histograms (seconds):\n")
		for _, k := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[k]
			fmt.Fprintf(&sb, "  %-36s n=%-8d mean=%.6f min=%.6f max=%.6f\n",
				k, h.Count, h.Mean(), h.Min, h.Max)
		}
	}

	type rollup struct {
		count int
		total float64
	}
	spans := r.Spans()
	agg := map[string]*rollup{}
	for _, s := range spans {
		key := s.Track + " " + s.Name
		ru := agg[key]
		if ru == nil {
			ru = &rollup{}
			agg[key] = ru
		}
		ru.count++
		ru.total += s.Duration().Seconds()
	}
	if len(agg) > 0 {
		sb.WriteString("spans (track name · count · total seconds):\n")
		for _, k := range sortedKeys(agg) {
			ru := agg[k]
			fmt.Fprintf(&sb, "  %-36s n=%-8d total=%.6f\n", k, ru.count, ru.total)
		}
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&sb, "spans dropped to ring overflow: %d\n", d)
	}
	return sb.String()
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
