package obs

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalTree renders the recorded spans as a deterministic indented
// tree, the golden-trace test format. Each line is `name k=v ...`, with
// ` @track` appended when the span's track differs from its parent's.
// Siblings (and roots) are sorted content-wise by (track, name, attrs),
// never by time or ID, so the output is stable across scheduling: two
// runs that perform the same work produce identical trees even when
// goroutines interleave differently.
func (r *Recorder) CanonicalTree() string {
	if r == nil {
		return ""
	}
	return CanonicalTree(r.Spans())
}

// CanonicalTree renders a span slice as described on Recorder.CanonicalTree.
func CanonicalTree(spans []CompletedSpan) string {
	byID := make(map[uint64]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	children := map[uint64][]int{}
	var roots []int
	for i, s := range spans {
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; ok {
				children[s.Parent] = append(children[s.Parent], i)
				continue
			}
			// Dangling parent (dropped by ring overflow): promote to root
			// rather than losing the subtree.
		}
		roots = append(roots, i)
	}
	sortKey := func(i int) string {
		s := spans[i]
		var sb strings.Builder
		sb.WriteString(s.Track)
		sb.WriteByte('\x00')
		sb.WriteString(s.Name)
		for _, a := range s.Attrs {
			sb.WriteByte('\x00')
			sb.WriteString(a.Key)
			sb.WriteByte('=')
			sb.WriteString(a.Value)
		}
		return sb.String()
	}
	order := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return sortKey(idx[a]) < sortKey(idx[b]) })
	}
	order(roots)
	for _, idx := range children {
		order(idx)
	}
	var sb strings.Builder
	var render func(i, depth int, parentTrack string)
	render = func(i, depth int, parentTrack string) {
		s := spans[i]
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s.Name)
		for _, a := range s.Attrs {
			fmt.Fprintf(&sb, " %s=%s", a.Key, a.Value)
		}
		if s.Track != parentTrack {
			fmt.Fprintf(&sb, " @%s", s.Track)
		}
		sb.WriteByte('\n')
		for _, c := range children[s.ID] {
			render(c, depth+1, s.Track)
		}
	}
	for _, i := range roots {
		render(i, 0, "")
	}
	return sb.String()
}
