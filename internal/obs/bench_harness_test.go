package obs

import (
	"strings"
	"testing"
)

const benchFixtureOld = `goos: linux
goarch: amd64
pkg: hybridstitch/internal/fft
BenchmarkFFT2D/128x96-8         	    1000	   1000000 ns/op	     512 B/op	       4 allocs/op
BenchmarkNCC/128x96-8           	     500	   2000000 ns/op
BenchmarkPipelinedGPU-8         	      10	 100000000 ns/op	      42.5 MB/s
BenchmarkGone-8                 	    3000	    500000 ns/op
PASS
ok  	hybridstitch/internal/fft	4.2s
`

const benchFixtureNew = `BenchmarkFFT2D/128x96-16        	    1000	   1300000 ns/op	     512 B/op	       4 allocs/op
BenchmarkNCC/128x96-16          	     500	   1500000 ns/op
BenchmarkPipelinedGPU-16        	      10	 104000000 ns/op	      41.0 MB/s
BenchmarkFresh-16               	    2000	    700000 ns/op
`

func TestParseGoBench(t *testing.T) {
	snap, err := ParseGoBench(strings.NewReader(benchFixtureOld))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	// GOMAXPROCS suffix stripped.
	fft, ok := snap.Benchmarks["BenchmarkFFT2D/128x96"]
	if !ok {
		t.Fatalf("missing BenchmarkFFT2D/128x96: %+v", snap.Benchmarks)
	}
	if fft.NsPerOp != 1000000 || fft.Iters != 1000 {
		t.Fatalf("fft entry = %+v", fft)
	}
	if fft.Extra["B/op"] != 512 || fft.Extra["allocs/op"] != 4 {
		t.Fatalf("fft extras = %+v", fft.Extra)
	}
	if snap.Benchmarks["BenchmarkPipelinedGPU"].Extra["MB/s"] != 42.5 {
		t.Fatalf("MB/s lost: %+v", snap.Benchmarks["BenchmarkPipelinedGPU"])
	}
}

func TestDiffBenchFlagsRegressions(t *testing.T) {
	old, err := ParseGoBench(strings.NewReader(benchFixtureOld))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ParseGoBench(strings.NewReader(benchFixtureNew))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffBench(old, cur, 0.15)

	// FFT2D: 1.0ms -> 1.3ms = +30%, a regression.
	if len(d.Regressions) != 1 || d.Regressions[0].Name != "BenchmarkFFT2D/128x96" {
		t.Fatalf("regressions = %+v, want just FFT2D", d.Regressions)
	}
	// NCC: 2.0ms -> 1.5ms = -25%, improved.
	if len(d.Improved) != 1 || d.Improved[0].Name != "BenchmarkNCC/128x96" {
		t.Fatalf("improved = %+v, want just NCC", d.Improved)
	}
	// PipelinedGPU: +4%, inside the 15% gate — unflagged.
	if len(d.Missing) != 1 || d.Missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v", d.Missing)
	}
	if len(d.Added) != 1 || d.Added[0] != "BenchmarkFresh" {
		t.Fatalf("added = %v", d.Added)
	}
	out := d.Format()
	for _, want := range []string{"REGRESSION", "BenchmarkFFT2D/128x96", "improved", "BenchmarkNCC"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDiffBenchNoChanges(t *testing.T) {
	snap, err := ParseGoBench(strings.NewReader(benchFixtureOld))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffBench(snap, snap, 0.15)
	if len(d.Regressions)+len(d.Improved)+len(d.Missing)+len(d.Added) != 0 {
		t.Fatalf("self-diff not empty: %+v", d)
	}
	if !strings.Contains(d.Format(), "no significant changes") {
		t.Fatalf("report = %q", d.Format())
	}
}
