package obs

// This file is the central registry of every span, track, and metric
// name the repo records. Telemetry names are an API: the profile
// viewers group by track, the golden span-tree tests match span names,
// the benchmark snapshots key on counter names, and any service surface
// (dashboards, alerts) built on top will hardcode them. A name that
// drifts — "stitch.pair.aligned" in one variant, "stitch.pairs.aligned"
// in another — silently splits one series into two.
//
// The stitchlint `obsnames` analyzer enforces the registry statically:
// every name argument to StartSpan/Child/ChildOn/RecordComplete and to
// Counter/Gauge/Histogram must be (or be prefixed by, for the dynamic
// families) a constant declared in this package. Add the constant here
// first; the literal at the call site is a lint error.

// Track names: the display rows of the Chrome-trace/ASCII timelines.
// Per-device and per-stage tracks ("GPU0/copy/memcpyH2D", "stage/read")
// are composed by the gpu simulator and pipeline from their own
// structure and carry the span name constants below.
const (
	// TrackRun hosts the per-run root span.
	TrackRun = "run"
	// TrackPhase2 and TrackPhase3 host the global-solve and compose
	// phases.
	TrackPhase2 = "phase2"
	TrackPhase3 = "phase3"
	// TrackOpPrefix prefixes the flat per-operation tracks used by
	// callers without a span hierarchy (Fiji's batch workers):
	// "op/read", "op/fft", "op/disp".
	TrackOpPrefix = "op/"
	// TrackStagePrefix prefixes the pipelined variants' per-stage tracks:
	// "stage/read", "stage/work", "stage/bk", "stage/disp0", ...
	TrackStagePrefix = "stage/"
)

// Span names.
const (
	// SpanStitch is the per-run root span on TrackRun.
	SpanStitch = "stitch"
	// SpanSolve and SpanCompose are the phase-2 and phase-3 roots.
	SpanSolve   = "solve"
	SpanCompose = "compose"
	// SpanSolveLS is the phase-2 least-squares solve (IRLS around
	// Gauss-Seidel or PCG), recorded on TrackPhase2 like SpanSolve.
	SpanSolveLS = "solve.ls"
	// SpanPair wraps one pair's full alignment (read through CCF).
	SpanPair = "pair"
	// SpanRead, SpanFFT, and SpanDisp are the instrumented fault-point
	// operations (tile read, forward transform, displacement).
	SpanRead = "read"
	SpanFFT  = "fft"
	SpanDisp = "disp"
	// SpanCCF is the CCF ambiguity-resolution stage.
	SpanCCF = "ccf"
	// SpanWork and SpanBK are the pipelined-CPU stage spans (the fused
	// FFT/displacement worker pool and the bookkeeping stage).
	SpanWork = "work"
	SpanBK   = "bk"
	// SpanUploadFFT is Simple-GPU's combined H2D upload + forward FFT.
	SpanUploadFFT = "upload+fft"
	// SpanComposeSharded is the out-of-core compose root on TrackPhase3;
	// SpanComposeBand wraps one output band (accumulate + reduce + write).
	SpanComposeSharded = "compose.sharded"
	SpanComposeBand    = "compose.band"
)

// Semantic counters: equal across all five variants for the same input
// at fixed device partitioning (the differential tests pin this).
const (
	CounterTilesRead     = "stitch.tiles.read"
	CounterTransforms    = "stitch.transforms"
	CounterPairsAligned  = "stitch.pairs.aligned"
	CounterRetries       = "fault.retries"
	CounterDegradedTiles = "stitch.degraded.tiles"
	CounterDegradedPairs = "stitch.degraded.pairs"
)

// Throughput and success counters.
const (
	CounterFFTOps          = "stitch.fft.ops"
	CounterDispOps         = "stitch.disp.ops"
	CounterEdgesRepaired   = "global.edges.repaired"
	CounterEdgesDropped    = "global.edges.dropped"
	// Least-squares solver effort: IRLS rounds executed, Gauss-Seidel
	// sweeps (serial engine), and CG iterations summed over both axes
	// (PCG engine). Exactly one of the two iteration counters is nonzero
	// per solve.
	CounterLSRounds   = "global.ls.rounds"
	CounterLSSweepsGS = "global.ls.gs.sweeps"
	CounterLSItersCG  = "global.ls.cg.iterations"
	CounterMemgovFaults    = "memgov.faults"
	CounterPipelineNotes   = "pipeline.notes"
	CounterPipelineAborts  = "pipeline.aborts"
	CounterGPULaunchFused  = "gpu.launch.fused"
	CounterTransposeBlocks = "fft.transpose.blocks"
	// The autotune family records plan-time execution-strategy decisions
	// (one per ExecAuto plan construction, cache hits included); the
	// batched-exec counter records how many multi-tile passes actually ran.
	CounterFFTAutotuneSerial  = "fft.autotune.serial"
	CounterFFTAutotuneSplit   = "fft.autotune.split"
	CounterFFTAutotuneBatched = "fft.autotune.batched"
	CounterFFTBatchedExecs    = "fft.exec.batched"
	CounterArenaReuse         = "pciam.arena.reuse"
	CounterPoolAcquires       = "gpu.pool.acquires"
	CounterPoolWaits          = "gpu.pool.waits"
	// Sharded-compose progress: bands written, and source tiles blended
	// across all bands (tiles straddling a band boundary count once per
	// band — the counter measures re-read amplification, not coverage).
	CounterComposeBands     = "compose.band.count"
	CounterComposeBandTiles = "compose.band.tiles"
	// Tile-server cache behavior: requests served from the decoded-tile
	// LRU, misses that decoded from the pyramid file, entries evicted to
	// stay under the byte budget, and requests rejected with an error.
	CounterServeTileHits      = "serve.tile.hits"
	CounterServeTileMisses    = "serve.tile.misses"
	CounterServeTileEvictions = "serve.tile.evictions"
	CounterServeTileErrors    = "serve.tile.errors"
)

// Gauges.
const (
	GaugeMemgovLiveBytes    = "memgov.live_bytes"
	GaugeServeCacheBytes    = "serve.tile.cache_bytes"
	GaugePoolInUse          = "gpu.pool.in_use"
	GaugeTransformsPeakLive = "stitch.transforms.peak_live"
	GaugeTransformWords     = "stitch.transform.words"
	// GaugeLSResidualPx is the final max |b − L·p| of the least-squares
	// solve (pixels·weight) — the convergence figure of merit.
	GaugeLSResidualPx = "global.ls.residual_px"
)

// Latency histograms.
const (
	HistMemgovStallSeconds = "memgov.stall.seconds"
	HistReadSeconds        = "stitch.read.seconds"
	HistFFTSeconds         = "stitch.fft.seconds"
	HistDispSeconds        = "stitch.disp.seconds"
	HistServeTileSeconds   = "serve.tile.seconds"
)

// Dynamic-name prefixes and suffixes: families whose full name embeds a
// runtime component (a GPU op name, a queue name). The obsnames
// analyzer requires the leading operand of a composed name to be one of
// these constants.
const (
	// HistGPUOpPrefix prefixes per-op GPU latency histograms:
	// "gpu.op.fft2d", "gpu.op.memcpyH2D", ...
	HistGPUOpPrefix = "gpu.op."
	// QueuePrefix, QueueMaxDepthSuffix, and QueuePushesSuffix compose
	// the per-queue depth/throughput series: "queue.<name>.max_depth",
	// "queue.<name>.pushes".
	QueuePrefix         = "queue."
	QueueMaxDepthSuffix = ".max_depth"
	QueuePushesSuffix   = ".pushes"
)
