package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchyAndSeq(t *testing.T) {
	r := New()
	defer r.Close()

	root := r.StartSpan("run", "stitch", String("impl", "simple-cpu"))
	read := root.Child("read", String("tile", "r000_c000"))
	read.End()
	fft := root.Child("fft", String("tile", "r000_c000"))
	fft.SetAttr("plan", "fwd")
	fft.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Fatalf("Seq not strictly increasing: %d then %d", spans[i-1].Seq, spans[i].Seq)
		}
	}
	// Children end before the root, so the root is recorded last.
	last := spans[len(spans)-1]
	if last.Name != "stitch" || last.Parent != 0 {
		t.Fatalf("last recorded span = %q parent=%d, want root stitch", last.Name, last.Parent)
	}
	for _, s := range spans[:2] {
		if s.Parent != last.ID {
			t.Errorf("span %q parent = %d, want %d", s.Name, s.Parent, last.ID)
		}
	}
	var found bool
	for _, a := range spans[1].Attrs {
		if a.Key == "plan" && a.Value == "fwd" {
			found = true
		}
	}
	if !found {
		t.Errorf("SetAttr(plan=fwd) not recorded: %v", spans[1].Attrs)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	sp := r.StartSpan("run", "noop")
	sp.SetAttr("k", "v")
	child := sp.Child("child")
	child.ChildOn("other", "grandchild").End()
	child.End()
	sp.End()
	r.RecordComplete("t", "n", 0, time.Millisecond)
	r.Counter("c").Add(1)
	r.Gauge("g").Set(3)
	r.Histogram("h").ObserveDuration(time.Millisecond)
	if got := r.CounterValue("c"); got != 0 {
		t.Fatalf("nil recorder counter = %d", got)
	}
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("nil recorder spans = %d", got)
	}
	r.Flush()
	r.Close()
	if s := r.Summary(); s != "" {
		t.Fatalf("nil recorder summary = %q", s)
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewWithCapacity(8)
	// Hold the flusher off by flooding from one goroutine faster than it
	// can drain is not deterministic; instead record after Close is not
	// possible either. Record enough spans that the ring must wrap at
	// least once even with an eager flusher by blocking drain: we can't
	// block it, so just assert total conservation instead.
	const total = 10000
	for i := 0; i < total; i++ {
		r.RecordComplete("t", "s", 0, time.Microsecond)
	}
	r.Close()
	spans := r.Spans()
	if got := uint64(len(spans)) + r.Dropped(); got != total {
		t.Fatalf("stored(%d) + dropped(%d) = %d, want %d", len(spans), r.Dropped(), got, total)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Fatalf("Seq order violated after overflow at %d", i)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	defer r.Close()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			track := fmt.Sprintf("worker%d", w)
			for i := 0; i < per; i++ {
				sp := r.StartSpan(track, "op")
				r.Counter("ops").Add(1)
				r.Gauge("depth").Set(float64(i))
				r.Histogram("lat").Observe(1e-5)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("ops"); got != workers*per {
		t.Fatalf("ops counter = %d, want %d", got, workers*per)
	}
	spans := r.Spans()
	if len(spans) != workers*per {
		t.Fatalf("got %d spans, want %d", len(spans), workers*per)
	}
	// Per-track Seq must be increasing: each worker records its own spans
	// sequentially.
	lastSeq := map[string]uint64{}
	for _, s := range spans {
		if s.Seq <= lastSeq[s.Track] {
			t.Fatalf("track %s: Seq %d after %d", s.Track, s.Seq, lastSeq[s.Track])
		}
		lastSeq[s.Track] = s.Seq
	}
}

func TestCloseIdempotentAndStopsRecording(t *testing.T) {
	r := New()
	r.RecordComplete("t", "before", 0, time.Microsecond)
	r.Close()
	r.Close()
	r.RecordComplete("t", "after", 0, time.Microsecond)
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Name != "before" {
		t.Fatalf("spans after Close = %+v, want just 'before'", spans)
	}
}

func TestMetrics(t *testing.T) {
	r := New()
	defer r.Close()
	c := r.Counter("hits")
	c.Add(3)
	r.Counter("hits").Add(2)
	if got := r.CounterValue("hits"); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
	if got := r.CounterValue("never"); got != 0 {
		t.Fatalf("unset counter = %d", got)
	}
	g := r.Gauge("depth")
	g.Set(4)
	g.Set(9)
	g.Set(2)
	last, max := g.Value()
	if last != 2 || max != 9 {
		t.Fatalf("gauge = (%g, %g), want (2, 9)", last, max)
	}
	h := r.Histogram("lat")
	h.Observe(0.001)
	h.Observe(0.004)
	h.ObserveDuration(2 * time.Millisecond)
	count, sum, min, max2 := h.Stats()
	if count != 3 || min != 0.001 || max2 != 0.004 {
		t.Fatalf("hist stats = (%d, %g, %g, %g)", count, sum, min, max2)
	}
	if sum < 0.0069 || sum > 0.0071 {
		t.Fatalf("hist sum = %g, want ~0.007", sum)
	}
}

func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []float64{0, 1e-7, 1e-6, 1e-5, 1e-3, 0.1, 1, 10, 100} {
		b := histBucket(v)
		if b < 0 || b >= histBuckets {
			t.Fatalf("histBucket(%g) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("histBucket not monotone at %g: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := New()
	defer r.Close()
	r.Counter("pairs.aligned").Add(17)
	r.Gauge("queue.depth").Set(3)
	r.Histogram("fft.seconds").Observe(0.01)
	snap := r.Snapshot()
	snap.Label = "test"
	snap.Date = "2026-08-05"
	snap.Benchmarks = map[string]BenchEntry{
		"BenchmarkFFT": {NsPerOp: 1234, Iters: 100, Extra: map[string]float64{"B/op": 16}},
	}

	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["pairs.aligned"] != 17 {
		t.Errorf("counter lost: %+v", got.Counters)
	}
	if got.Gauges["queue.depth"].Max != 3 {
		t.Errorf("gauge lost: %+v", got.Gauges)
	}
	if got.Histograms["fft.seconds"].Count != 1 {
		t.Errorf("histogram lost: %+v", got.Histograms)
	}
	if got.Benchmarks["BenchmarkFFT"].NsPerOp != 1234 || got.Benchmarks["BenchmarkFFT"].Extra["B/op"] != 16 {
		t.Errorf("benchmarks lost: %+v", got.Benchmarks)
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	r := New()
	defer r.Close()
	r.Counter("tiles.read").Add(4)
	r.Gauge("pool.in_use").Set(2)
	r.Histogram("read.seconds").Observe(0.002)
	sp := r.StartSpan("run", "stitch")
	sp.End()
	s := r.Summary()
	for _, want := range []string{"tiles.read", "pool.in_use", "read.seconds", "run stitch"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := New()
	defer r.Close()
	root := r.StartSpan("run", "stitch", String("impl", "mt-cpu"))
	time.Sleep(time.Millisecond)
	root.Child("read", String("tile", "r000_c001")).End()
	root.End()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, map[string]string{"device": "none"}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace output is not valid JSON")
	}
	spans, err := DecodeChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("decoded %d spans, want 2", len(spans))
	}
	byName := map[string]CompletedSpan{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	read, ok := byName["read"]
	if !ok || read.Track != "run" {
		t.Fatalf("read span lost or wrong track: %+v", spans)
	}
	if len(read.Attrs) != 1 || read.Attrs[0] != (Attr{Key: "tile", Value: "r000_c001"}) {
		t.Fatalf("read attrs = %+v", read.Attrs)
	}
	if read.End < read.Start {
		t.Fatalf("span interval inverted: %+v", read)
	}
}

func TestRenderTracks(t *testing.T) {
	spans := []CompletedSpan{
		{ID: 1, Seq: 1, Track: "copy", Name: "H2D", Start: 0, End: 5 * time.Millisecond},
		{ID: 2, Seq: 2, Track: "fft", Name: "fft2d", Start: 4 * time.Millisecond, End: 9 * time.Millisecond},
	}
	out := RenderTracks(spans, 40)
	if !strings.Contains(out, "copy") || !strings.Contains(out, "fft") || !strings.Contains(out, "#") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	if RenderTracks(nil, 40) != "(empty timeline)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestCanonicalTreeDeterministic(t *testing.T) {
	// Two runs recording the same logical work in different orders must
	// produce identical trees.
	build := func(order []int) string {
		r := New()
		defer r.Close()
		root := r.StartSpan("run", "stitch", String("impl", "x"))
		kids := []*Span{
			root.Child("read", String("tile", "r000_c000")),
			root.Child("read", String("tile", "r000_c001")),
			root.ChildOn("stage/disp", "disp", String("pair", "w_r000_c001")),
		}
		for _, i := range order {
			kids[i].End()
		}
		root.End()
		return r.CanonicalTree()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 1, 0})
	if a != b {
		t.Fatalf("tree not deterministic:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{"stitch impl=x @run", "  read tile=r000_c000", "  disp pair=w_r000_c001 @stage/disp"} {
		if !strings.Contains(a, want) {
			t.Errorf("tree missing %q:\n%s", want, a)
		}
	}
}

func TestRecorderSharedEpochOffsets(t *testing.T) {
	r := New()
	defer r.Close()
	start := time.Since(r.Epoch())
	r.RecordComplete("gpu/copy", "H2D", start, start+time.Millisecond)
	sp := r.StartSpan("run", "x")
	sp.End()
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Both kinds of record share the epoch, so offsets are comparable.
	if spans[0].Start > spans[1].Start+time.Second || spans[1].Start > spans[0].Start+time.Second {
		t.Fatalf("offsets not comparable: %v vs %v", spans[0].Start, spans[1].Start)
	}
}
