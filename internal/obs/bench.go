package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFFT2D/128x96-8   1234   987654 ns/op   12 B/op   3 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so snapshots taken on machines
// with different core counts diff cleanly.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// extraMetric matches trailing `value unit` pairs on a benchmark line.
var extraMetric = regexp.MustCompile(`([\d.]+) (\S+)`)

// ParseGoBench extracts benchmark results from `go test -bench` output
// into a Snapshot. Non-benchmark lines (PASS, ok, logs) are ignored.
func ParseGoBench(r io.Reader) (Snapshot, error) {
	snap := Snapshot{Benchmarks: map[string]BenchEntry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := BenchEntry{NsPerOp: ns, Iters: iters}
		for _, em := range extraMetric.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(em[1], 64)
			if err != nil {
				continue
			}
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[em[2]] = v
		}
		snap.Benchmarks[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		return snap, fmt.Errorf("obs: reading bench output: %w", err)
	}
	return snap, nil
}

// BenchDelta describes one benchmark's change between two snapshots.
type BenchDelta struct {
	Name  string
	OldNs float64
	NewNs float64
}

// Ratio returns new/old ns/op (>1 means slower).
func (d BenchDelta) Ratio() float64 {
	if d.OldNs == 0 {
		return 0
	}
	return d.NewNs / d.OldNs
}

// BenchDiff is the result of comparing two snapshots.
type BenchDiff struct {
	Regressions []BenchDelta // slower by more than the threshold
	Improved    []BenchDelta // faster by more than the threshold
	Missing     []string     // in old but not new
	Added       []string     // in new but not old
}

// DiffBench compares benchmark ns/op between two snapshots. A benchmark
// is a regression when new/old > 1+threshold (0.15 = the repo's 15%
// gate), an improvement when new/old < 1-threshold.
func DiffBench(old, new Snapshot, threshold float64) BenchDiff {
	var d BenchDiff
	for _, name := range sortedKeys(old.Benchmarks) {
		o := old.Benchmarks[name]
		n, ok := new.Benchmarks[name]
		if !ok {
			d.Missing = append(d.Missing, name)
			continue
		}
		delta := BenchDelta{Name: name, OldNs: o.NsPerOp, NewNs: n.NsPerOp}
		switch r := delta.Ratio(); {
		case r > 1+threshold:
			d.Regressions = append(d.Regressions, delta)
		case r < 1-threshold:
			d.Improved = append(d.Improved, delta)
		}
	}
	for _, name := range sortedKeys(new.Benchmarks) {
		if _, ok := old.Benchmarks[name]; !ok {
			d.Added = append(d.Added, name)
		}
	}
	sort.Strings(d.Missing)
	sort.Strings(d.Added)
	return d
}

// Format renders the diff as a human-readable report.
func (d BenchDiff) Format() string {
	var sb strings.Builder
	for _, r := range d.Regressions {
		fmt.Fprintf(&sb, "REGRESSION  %-50s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			r.Name, r.OldNs, r.NewNs, (r.Ratio()-1)*100)
	}
	for _, r := range d.Improved {
		fmt.Fprintf(&sb, "improved    %-50s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			r.Name, r.OldNs, r.NewNs, (r.Ratio()-1)*100)
	}
	for _, name := range d.Missing {
		fmt.Fprintf(&sb, "missing     %s\n", name)
	}
	for _, name := range d.Added {
		fmt.Fprintf(&sb, "added       %s\n", name)
	}
	if sb.Len() == 0 {
		sb.WriteString("no significant changes\n")
	}
	return sb.String()
}
