// Package obs is the repo's shared observability layer: lightweight
// hierarchical spans recorded into a lock-cheap ring buffer, named
// counters/gauges/histograms, and exporters for the Chrome trace_event
// format (chrome://tracing, Perfetto), a plain-text summary table, and a
// machine-readable metrics snapshot.
//
// The paper argues from profiler timelines — Figs 4–6 diagnose the
// Simple-GPU stalls and justify the six-stage pipeline by showing
// copy/compute overlap — so every execution path in the repo (the five
// stitcher variants, the GPU simulator, the memory governor, phases 2
// and 3) records into one Recorder and every profile view reads from it.
//
// A nil *Recorder is a valid no-op: every method on a nil Recorder (and
// on the nil Span/Counter/Gauge/Histogram handles it hands out) returns
// immediately, so instrumented code pays one nil check when observability
// is off.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value span attribute (a tile coordinate, a pair, an
// implementation name).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// CompletedSpan is one finished span as stored by the Recorder. Start and
// End are offsets from the Recorder's epoch. Seq is the recorder-assigned
// record order: it is taken under the ring lock at record time, so spans
// recorded sequentially by one goroutine (a stream dispatcher, a pipeline
// stage) carry strictly increasing Seq even when their coarse-clock
// timestamps collide — the tie-breaker every exporter sorts by.
type CompletedSpan struct {
	ID     uint64
	Parent uint64
	Track  string // display row: "run", "stage/read", "GPU0/copy/memcpyH2D"
	Name   string
	Start  time.Duration
	End    time.Duration
	Seq    uint64
	Attrs  []Attr
}

// Duration returns the span length.
func (s CompletedSpan) Duration() time.Duration { return s.End - s.Start }

// defaultRingCap is the ring-buffer capacity in spans. Small runs never
// fill it; a paper-scale run overflows gracefully (oldest spans drop and
// Dropped counts them).
const defaultRingCap = 1 << 15

// Recorder collects spans and metrics for one run (or one long-lived
// process). Span records go through a fixed-capacity ring buffer guarded
// by a short critical section; a background flusher goroutine drains the
// ring into the growable store, keeping allocation off the record path.
// Close stops the flusher after a final drain.
type Recorder struct {
	epoch time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	ring    []CompletedSpan
	head    int // index of the oldest ring entry
	n       int // entries currently in the ring
	seq     uint64
	dropped uint64
	closed  bool

	flushWG sync.WaitGroup

	storeMu sync.Mutex
	store   []CompletedSpan

	metricsMu  sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	ids atomic.Uint64
}

// New creates a Recorder with the default ring capacity and starts its
// flusher.
func New() *Recorder { return NewWithCapacity(defaultRingCap) }

// NewWithCapacity creates a Recorder whose ring holds n spans (minimum 8).
func NewWithCapacity(n int) *Recorder {
	if n < 8 {
		n = 8
	}
	r := &Recorder{
		epoch:      time.Now(),
		ring:       make([]CompletedSpan, n),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	r.cond = sync.NewCond(&r.mu)
	r.flushWG.Add(1)
	go r.flusher()
	return r
}

// Epoch returns the instant span offsets are measured from. Components
// that timestamp work themselves (the GPU simulator's dispatchers) must
// use the same epoch as the recorder they share.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Close drains the ring and stops the flusher goroutine. Idempotent.
// Spans ended after Close are discarded; metrics remain readable.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.flushWG.Wait()
}

// flusher drains the ring into the store until Close.
func (r *Recorder) flusher() {
	defer r.flushWG.Done()
	var batch []CompletedSpan
	for {
		r.mu.Lock()
		for r.n == 0 && !r.closed {
			r.cond.Wait()
		}
		if r.n == 0 && r.closed {
			r.mu.Unlock()
			return
		}
		batch = r.drainLocked(batch[:0])
		r.mu.Unlock()
		// Store growth (which may allocate) happens here, off the record
		// path and outside the ring lock.
		r.storeMu.Lock()
		r.store = append(r.store, batch...)
		r.storeMu.Unlock()
	}
}

// drainLocked moves every ring entry into dst. Caller holds r.mu.
func (r *Recorder) drainLocked(dst []CompletedSpan) []CompletedSpan {
	for r.n > 0 {
		dst = append(dst, r.ring[r.head])
		r.ring[r.head] = CompletedSpan{} // drop attr references
		r.head = (r.head + 1) % len(r.ring)
		r.n--
	}
	return dst
}

// record appends one completed span to the ring, assigning its Seq under
// the ring lock — the ordering capture point. When the ring is full the
// oldest span is overwritten (and counted in Dropped) rather than
// blocking the recording goroutine.
func (r *Recorder) record(s CompletedSpan) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.seq++
	s.Seq = r.seq
	if r.n == len(r.ring) {
		r.dropped++
		r.ring[r.head] = s
		r.head = (r.head + 1) % len(r.ring)
	} else {
		r.ring[(r.head+r.n)%len(r.ring)] = s
		r.n++
	}
	r.cond.Signal()
	r.mu.Unlock()
}

// Flush synchronously drains the ring into the store so exporters see
// every span recorded so far.
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	r.mu.Lock()
	batch := r.drainLocked(nil)
	r.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	r.storeMu.Lock()
	r.store = append(r.store, batch...)
	r.storeMu.Unlock()
}

// Dropped reports how many spans were lost to ring overflow.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns every completed span recorded so far, ordered by record
// sequence. Safe to call while recording continues (a snapshot) and after
// Close.
func (r *Recorder) Spans() []CompletedSpan {
	if r == nil {
		return nil
	}
	r.Flush()
	r.storeMu.Lock()
	out := append([]CompletedSpan(nil), r.store...)
	r.storeMu.Unlock()
	// The flusher and Flush may interleave store appends; restore record
	// order.
	sortSpansBySeq(out)
	return out
}

// RecordComplete records a span whose interval the caller measured itself
// (offsets from Epoch). The GPU simulator's dispatchers use this: they
// time the command, then record it from the stream's single dispatcher
// goroutine, so Seq assignment happens in queue order.
func (r *Recorder) RecordComplete(track, name string, start, end time.Duration, attrs ...Attr) {
	if r == nil {
		return
	}
	r.record(CompletedSpan{
		ID: r.ids.Add(1), Track: track, Name: name,
		Start: start, End: end, Attrs: attrs,
	})
}

// Span is an in-flight span handle. A nil *Span (from a nil Recorder or a
// nil parent) is a valid no-op.
type Span struct {
	r      *Recorder
	id     uint64
	parent uint64
	track  string
	name   string
	start  time.Duration
	ended  atomic.Bool

	attrMu sync.Mutex
	attrs  []Attr
}

// StartSpan opens a root span on the given track.
func (r *Recorder) StartSpan(track, name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		r: r, id: r.ids.Add(1), track: track, name: name,
		start: time.Since(r.epoch), attrs: attrs,
	}
}

// Child opens a span nested under s, on the same track.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := s.r.StartSpan(s.track, name, attrs...)
	c.parent = s.id
	return c
}

// ChildOn opens a span nested under s on a different track (a pipeline
// stage under the run span, for example).
func (s *Span) ChildOn(track, name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := s.r.StartSpan(track, name, attrs...)
	c.parent = s.id
	return c
}

// SetAttr adds or replaces an attribute. Call before End.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.attrMu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == k {
			s.attrs[i].Value = v
			s.attrMu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	s.attrMu.Unlock()
}

// End completes the span and records it. Idempotent.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.attrMu.Lock()
	attrs := s.attrs
	s.attrMu.Unlock()
	s.r.record(CompletedSpan{
		ID: s.id, Parent: s.parent, Track: s.track, Name: s.name,
		Start: s.start, End: time.Since(s.r.epoch), Attrs: attrs,
	})
}
