package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing named count (pool acquisitions,
// retries, degraded tiles). A nil *Counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns (creating on first use) the named counter.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.metricsMu.Unlock()
	return c
}

// CounterValue reads the named counter without creating it.
func (r *Recorder) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.metricsMu.Lock()
	c := r.counters[name]
	r.metricsMu.Unlock()
	return c.Value()
}

// Gauge is a named instantaneous value that also tracks its maximum
// (queue depth, live bytes, buffers in use). A nil *Gauge is a no-op.
type Gauge struct {
	mu   sync.Mutex
	set  bool
	last float64
	max  float64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.last = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	g.mu.Unlock()
}

// Value returns the last value set and the maximum seen.
func (g *Gauge) Value() (last, max float64) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last, g.max
}

// Gauge returns (creating on first use) the named gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.metricsMu.Unlock()
	return g
}

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observations in [1µs·2^i, 1µs·2^(i+1)), spanning 1µs…~16s.
const histBuckets = 24

// histBucket returns the bucket index for an observation in seconds.
func histBucket(v float64) int {
	if v <= 1e-6 {
		return 0
	}
	b := int(math.Log2(v / 1e-6))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Histogram aggregates a latency distribution (kernel durations, paging
// stalls) into exponential buckets plus count/sum/min/max. A nil
// *Histogram is a no-op.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records one value in seconds.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[histBucket(v)]++
	h.mu.Unlock()
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Stats returns count, sum, min, and max.
func (h *Histogram) Stats() (count int64, sum, min, max float64) {
	if h == nil {
		return 0, 0, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, h.min, h.max
}

// Histogram returns (creating on first use) the named histogram.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	r.metricsMu.Unlock()
	return h
}
