package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TraceEvent is one Chrome Trace Event Format record ("X" = complete
// event, "M" = metadata). This format is what every trace viewer
// (chrome://tracing, Perfetto, Speedscope) accepts — the reproduction's
// stand-in for the NVIDIA Visual Profiler views in the paper's figures.
type TraceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"` // microseconds
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// traceFile is the envelope Perfetto accepts.
type traceFile struct {
	TraceEvents []TraceEvent      `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// sortSpansBySeq restores record order.
func sortSpansBySeq(spans []CompletedSpan) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
}

// SortSpans orders spans for display: by start time, then record sequence
// — the tie-break that keeps one track's events in submission order when
// coarse clocks collide.
func SortSpans(spans []CompletedSpan) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Seq < spans[j].Seq
	})
}

// EncodeChromeTrace writes spans as Chrome trace_event JSON: one named
// thread row per track, one "X" complete event per span, attributes in
// args. Arbitrary span names and attribute values are legal — encoding
// relies on encoding/json for escaping.
func EncodeChromeTrace(w io.Writer, spans []CompletedSpan, meta map[string]string) error {
	rows := map[string]int{}
	var order []string
	for _, s := range spans {
		if _, seen := rows[s.Track]; !seen {
			rows[s.Track] = 0
			order = append(order, s.Track)
		}
	}
	sort.Strings(order)
	for i, tr := range order {
		rows[tr] = i + 1
	}

	out := traceFile{Metadata: meta}
	for _, tr := range order {
		out.TraceEvents = append(out.TraceEvents, TraceEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: rows[tr],
			Args: map[string]string{"name": tr},
		})
	}
	sorted := append([]CompletedSpan(nil), spans...)
	SortSpans(sorted)
	for _, s := range sorted {
		dur := s.Duration().Microseconds()
		if dur < 1 {
			dur = 1 // zero-duration events vanish in trace viewers
		}
		var args map[string]string
		if len(s.Attrs) > 0 {
			args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, TraceEvent{
			Name: s.Name, Cat: s.Track, Phase: "X",
			TS: s.Start.Microseconds(), Dur: dur,
			PID: 1, TID: rows[s.Track], Args: args,
		})
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteChromeTrace exports every span recorded so far.
func (r *Recorder) WriteChromeTrace(w io.Writer, meta map[string]string) error {
	if r == nil {
		return fmt.Errorf("obs: nil recorder")
	}
	return EncodeChromeTrace(w, r.Spans(), meta)
}

// DecodeChromeTrace parses trace JSON written by EncodeChromeTrace back
// into spans: "M" thread_name rows restore the track names, "X" events
// the spans, args the attributes. Hierarchy (Parent) is not preserved by
// the format. Used by cmd/profileviz to re-render saved traces and by the
// round-trip tests.
func DecodeChromeTrace(rd io.Reader) ([]CompletedSpan, error) {
	var in traceFile
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return nil, fmt.Errorf("obs: decoding trace: %w", err)
	}
	tracks := map[int]string{}
	for _, e := range in.TraceEvents {
		if e.Phase == "M" && e.Name == "thread_name" {
			tracks[e.TID] = e.Args["name"]
		}
	}
	var spans []CompletedSpan
	var seq uint64
	for _, e := range in.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		track, ok := tracks[e.TID]
		if !ok {
			track = fmt.Sprintf("tid%d", e.TID)
		}
		var attrs []Attr
		if len(e.Args) > 0 {
			keys := make([]string, 0, len(e.Args))
			for k := range e.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				attrs = append(attrs, Attr{Key: k, Value: e.Args[k]})
			}
		}
		seq++
		spans = append(spans, CompletedSpan{
			ID: seq, Track: track, Name: e.Name, Seq: seq,
			Start: time.Duration(e.TS) * time.Microsecond,
			End:   time.Duration(e.TS+e.Dur) * time.Microsecond,
			Attrs: attrs,
		})
	}
	return spans, nil
}

// RenderTracks draws an ASCII timeline: one row per track, time bucketed
// into width columns — the textual analogue of the profiler screenshots,
// shared by cmd/profileviz and the GPU timeline's Render.
func RenderTracks(spans []CompletedSpan, width int) string {
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	if width <= 0 {
		width = 100
	}
	sorted := append([]CompletedSpan(nil), spans...)
	SortSpans(sorted)
	start := sorted[0].Start
	end := sorted[0].End
	for _, s := range sorted {
		if s.End > end {
			end = s.End
		}
	}
	total := end - start
	if total <= 0 {
		total = 1
	}
	rows := map[string][]bool{}
	var order []string
	for _, s := range sorted {
		if _, ok := rows[s.Track]; !ok {
			rows[s.Track] = make([]bool, width)
			order = append(order, s.Track)
		}
		b0 := int(int64(s.Start-start) * int64(width) / int64(total))
		b1 := int(int64(s.End-start) * int64(width) / int64(total))
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			rows[s.Track][b] = true
		}
	}
	sort.Strings(order)
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %v – %v (%v total, %d spans)\n", start, end, total, len(sorted))
	for _, tr := range order {
		fmt.Fprintf(&sb, "%-28s |", tr)
		for _, on := range rows[tr] {
			if on {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}
