// Package pipeline is the general-purpose pipelining API the paper's
// future work proposes extracting: bounded monitor queues connecting
// stages of one or more worker threads, with lifecycle management, error
// propagation, and teardown. The stitching implementations (Pipelined-CPU,
// Pipelined-GPU) are built on it, and it is independent of image
// stitching, usable for any problem that wants to "overlap disk and PCI
// express I/O with computation while staying within strict memory
// constraints".
package pipeline

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("pipeline: queue closed")

// ErrAborted is returned by Push and Pop after Abort (pipeline teardown
// on failure).
var ErrAborted = errors.New("pipeline: queue aborted")

// Queue is a bounded blocking FIFO with monitor semantics — the paper's
// inter-stage queues ("these queues have monitor implementations to
// prevent race conditions"). A zero capacity makes every Push rendezvous
// with a Pop.
type Queue[T any] struct {
	mu      sync.Mutex
	nonFull *sync.Cond
	nonEmpt *sync.Cond

	name    string
	cap     int
	items   []T
	closed  bool
	aborted bool

	// statistics for the ablation benches
	pushes   int64
	maxDepth int
}

// NewQueue creates a queue with the given capacity (minimum 1; the
// rendezvous case is not needed by the stitching stages and a floor of 1
// keeps Push/Pop symmetric).
func NewQueue[T any](name string, capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{name: name, cap: capacity}
	q.nonFull = sync.NewCond(&q.mu)
	q.nonEmpt = sync.NewCond(&q.mu)
	return q
}

// Name returns the queue's diagnostic name.
func (q *Queue[T]) Name() string { return q.name }

// Cap returns the queue's capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Push appends v, blocking while the queue is full. It fails with
// ErrClosed after Close and ErrAborted after Abort.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) >= q.cap && !q.closed && !q.aborted {
		q.nonFull.Wait()
	}
	if q.aborted {
		return ErrAborted
	}
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, v)
	q.pushes++
	if len(q.items) > q.maxDepth {
		q.maxDepth = len(q.items)
	}
	q.nonEmpt.Signal()
	return nil
}

// Pop removes the oldest item, blocking while the queue is empty. ok is
// false when the queue is closed and drained, or aborted.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed && !q.aborted {
		q.nonEmpt.Wait()
	}
	if q.aborted || len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	// Avoid retaining a reference in the backing array.
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	if len(q.items) == 0 {
		// Reset so the backing array does not grow without bound.
		q.items = nil
	}
	q.nonFull.Signal()
	return v, true
}

// TryPop is the non-blocking Pop; ok is false if nothing was available
// (which does not imply the queue is closed).
func (q *Queue[T]) TryPop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.aborted || len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.nonFull.Signal()
	return v, true
}

// Close marks the queue as complete: subsequent Push calls fail, and Pop
// drains the remaining items then reports ok=false. Closing twice is
// harmless.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmpt.Broadcast()
	q.nonFull.Broadcast()
}

// Abort tears the queue down: blocked producers and consumers wake
// immediately, pending items are dropped.
func (q *Queue[T]) Abort() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.aborted = true
	q.items = nil
	q.nonEmpt.Broadcast()
	q.nonFull.Broadcast()
}

// Len reports the current depth.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Stats reports the total number of Pushes and the maximum depth
// observed.
func (q *Queue[T]) Stats() (pushes int64, maxDepth int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushes, q.maxDepth
}

// aborter lets the Pipeline tear down queues without knowing their
// element types.
type aborter interface {
	Abort()
	Close()
}

var _ aborter = (*Queue[int])(nil)
