package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]("t", 4)
	for i := 0; i < 4; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop after drain should report !ok")
	}
	if err := q.Push(9); !errors.Is(err, ErrClosed) {
		t.Errorf("push after close: %v", err)
	}
}

func TestQueueBlockingAndCapacity(t *testing.T) {
	q := NewQueue[int]("t", 2)
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(2); err != nil {
		t.Fatal(err)
	}
	pushed := make(chan struct{})
	go func() {
		_ = q.Push(3) // blocks until a Pop
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push should have blocked at capacity")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("pop got %d, %v", v, ok)
	}
	select {
	case <-pushed:
	case <-time.After(time.Second):
		t.Fatal("push did not unblock after pop")
	}
	if _, max := q.Stats(); max != 2 {
		t.Errorf("maxDepth = %d, want 2", max)
	}
}

func TestQueueAbortUnblocksEverything(t *testing.T) {
	q := NewQueue[int]("t", 1)
	_ = q.Push(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // blocked producer
		defer wg.Done()
		if err := q.Push(2); !errors.Is(err, ErrAborted) {
			t.Errorf("producer: %v", err)
		}
	}()
	empty := NewQueue[int]("e", 1)
	go func() { // blocked consumer
		defer wg.Done()
		if _, ok := empty.Pop(); ok {
			t.Error("consumer should see !ok")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Abort()
	empty.Abort()
	wg.Wait()
	if _, ok := q.Pop(); ok {
		t.Error("aborted queue should drop items")
	}
}

func TestQueueTryPop(t *testing.T) {
	q := NewQueue[string]("t", 2)
	if _, ok := q.TryPop(); ok {
		t.Error("TryPop on empty should fail")
	}
	_ = q.Push("a")
	if v, ok := q.TryPop(); !ok || v != "a" {
		t.Errorf("TryPop = %q, %v", v, ok)
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int]("t", 8)
	const producers, perProducer = 4, 200
	var got sync.Map
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Push(p*perProducer + i); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	var consumed int64
	var cwg sync.WaitGroup
	cwg.Add(3)
	for c := 0; c < 3; c++ {
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				if _, dup := got.LoadOrStore(v, true); dup {
					t.Errorf("duplicate item %d", v)
				}
				atomic.AddInt64(&consumed, 1)
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if consumed != producers*perProducer {
		t.Errorf("consumed %d, want %d", consumed, producers*perProducer)
	}
}

func TestQueueOrderProperty(t *testing.T) {
	// Single producer, single consumer: strict FIFO for any capacity.
	f := func(capSel uint8, n uint8) bool {
		capacity := int(capSel)%7 + 1
		count := int(n)%50 + 1
		q := NewQueue[int]("t", capacity)
		go func() {
			for i := 0; i < count; i++ {
				_ = q.Push(i)
			}
			q.Close()
		}()
		for i := 0; i < count; i++ {
			v, ok := q.Pop()
			if !ok || v != i {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPipelineLinear(t *testing.T) {
	p := New()
	q1 := AddQueue[int](p, "q1", 4)
	q2 := AddQueue[int](p, "q2", 4)
	Source(p, "gen", q1, func(emit func(int) error) error {
		for i := 1; i <= 100; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	})
	Connect(p, "square", 3, q1, q2, func(v int, emit func(int) error) error {
		return emit(v * v)
	})
	var mu sync.Mutex
	var out []int
	Sink(p, "collect", 2, q2, func(v int) error {
		mu.Lock()
		out = append(out, v)
		mu.Unlock()
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("collected %d items", len(out))
	}
	sort.Ints(out)
	for i, v := range out {
		if v != (i+1)*(i+1) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestPipelineErrorAbortsEverything(t *testing.T) {
	p := New()
	q1 := AddQueue[int](p, "q1", 1)
	q2 := AddQueue[int](p, "q2", 1)
	Source(p, "gen", q1, func(emit func(int) error) error {
		for i := 0; ; i++ {
			if err := emit(i); err != nil {
				return nil // aborted downstream; clean exit
			}
		}
	})
	boom := errors.New("boom")
	Connect(p, "fail", 1, q1, q2, func(v int, emit func(int) error) error {
		if v == 5 {
			return boom
		}
		return emit(v)
	})
	Sink(p, "drain", 1, q2, func(int) error { return nil })
	err := p.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
}

func TestPipelinePanicBecomesError(t *testing.T) {
	p := New()
	q := AddQueue[int](p, "q", 1)
	Source(p, "gen", q, func(emit func(int) error) error { return emit(1) })
	Sink(p, "panic", 1, q, func(int) error { panic("kaboom") })
	err := p.Wait()
	if err == nil || !containsStr(err.Error(), "kaboom") {
		t.Fatalf("Wait = %v, want panic error", err)
	}
}

func TestPipelineFanOutStageWorkers(t *testing.T) {
	// A stage with N workers processes concurrently; verify all workers
	// participate by checking the sum and the worker-count ceiling.
	p := New()
	q := AddQueue[int](p, "q", 64)
	var active, peak int64
	Source(p, "gen", q, func(emit func(int) error) error {
		for i := 0; i < 64; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	})
	var sum int64
	Sink(p, "work", 8, q, func(v int) error {
		cur := atomic.AddInt64(&active, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&sum, int64(v))
		atomic.AddInt64(&active, -1)
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if sum != 64*63/2 {
		t.Errorf("sum = %d", sum)
	}
	if peak > 8 {
		t.Errorf("peak concurrency %d exceeds worker count", peak)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	}()
}

func TestQueueStats(t *testing.T) {
	q := NewQueue[int]("stats", 3)
	for i := 0; i < 3; i++ {
		_ = q.Push(i)
	}
	q.Pop()
	_ = q.Push(3)
	pushes, max := q.Stats()
	if pushes != 4 {
		t.Errorf("pushes = %d", pushes)
	}
	if max != 3 {
		t.Errorf("maxDepth = %d", max)
	}
	if q.Name() != "stats" || q.Cap() != 3 {
		t.Error("metadata wrong")
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestMinCapacityFloor(t *testing.T) {
	q := NewQueue[int]("t", 0)
	if q.Cap() != 1 {
		t.Errorf("capacity floor = %d, want 1", q.Cap())
	}
}

func ExamplePipeline() {
	p := New()
	nums := AddQueue[int](p, "nums", 8)
	squares := AddQueue[int](p, "squares", 8)
	Source(p, "gen", nums, func(emit func(int) error) error {
		for i := 1; i <= 3; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	})
	Connect(p, "square", 1, nums, squares, func(v int, emit func(int) error) error {
		return emit(v * v)
	})
	var out []int
	Sink(p, "collect", 1, squares, func(v int) error {
		out = append(out, v)
		return nil
	})
	if err := p.Wait(); err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output: [1 4 9]
}

func TestLateQueueRegistrationAfterFailure(t *testing.T) {
	// Builders that construct stages incrementally may register queues
	// after an early stage has failed; those queues must arrive
	// pre-aborted so their stages cannot block (the multi-device
	// pipeline construction race).
	p := New()
	q1 := AddQueue[int](p, "early", 1)
	Source(p, "boom", q1, func(emit func(int) error) error {
		return errors.New("early failure")
	})
	// Wait until the failure has propagated.
	<-p.Aborted()

	late := AddQueue[int](p, "late", 1)
	if err := late.Push(1); !errors.Is(err, ErrAborted) {
		t.Errorf("push to late queue: %v, want ErrAborted", err)
	}
	done := make(chan struct{})
	p.Go("late-stage", 1, func(int) error {
		_, ok := late.Pop()
		if ok {
			t.Error("late queue should be drained/aborted")
		}
		close(done)
		return nil
	}, nil)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("late stage blocked on an unaborted queue")
	}
	if err := p.Wait(); err == nil {
		t.Error("Wait should report the failure")
	}
}

func TestNoteDoesNotAbortSiblings(t *testing.T) {
	// Partial-failure mode: a stage that Notes a recoverable error must
	// not close or abort sibling queues — the rest of the pipeline keeps
	// flowing and Wait returns nil.
	p := New()
	q1 := AddQueue[int](p, "q1", 4)
	q2 := AddQueue[int](p, "q2", 4)
	Source(p, "gen", q1, func(emit func(int) error) error {
		for i := 0; i < 20; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	})
	Connect(p, "degrade-some", 2, q1, q2, func(v int, emit func(int) error) error {
		if v%5 == 0 {
			p.Note(fmt.Errorf("item %d degraded", v))
			return nil // recoverable: skip the item, keep the stage alive
		}
		return emit(v)
	})
	var survived int64
	Sink(p, "count", 2, q2, func(int) error {
		atomic.AddInt64(&survived, 1)
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatalf("notes must not fail the pipeline: %v", err)
	}
	if survived != 16 {
		t.Errorf("survived = %d, want 16", survived)
	}
	if notes := p.Notes(); len(notes) != 4 {
		t.Errorf("notes = %v, want 4 entries", notes)
	}
	select {
	case <-p.Aborted():
		t.Error("Note must not trip the abort channel")
	default:
	}
}

func TestNoteNilIsIgnored(t *testing.T) {
	p := New()
	p.Note(nil)
	if notes := p.Notes(); len(notes) != 0 {
		t.Errorf("nil note recorded: %v", notes)
	}
}

func TestAbortWinsOverNotes(t *testing.T) {
	// Fatal failures still tear the pipeline down no matter how many
	// recoverable errors were recorded first.
	p := New()
	q := AddQueue[int](p, "q", 1)
	p.Note(errors.New("recoverable 1"))
	p.Note(errors.New("recoverable 2"))
	boom := errors.New("fatal")
	Source(p, "gen", q, func(emit func(int) error) error {
		for i := 0; ; i++ {
			if err := emit(i); err != nil {
				return nil
			}
		}
	})
	Sink(p, "fail", 1, q, func(v int) error {
		if v == 3 {
			return boom
		}
		return nil
	})
	err := p.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want the fatal error", err)
	}
	if notes := p.Notes(); len(notes) != 2 {
		t.Errorf("notes lost across an abort: %v", notes)
	}
}

func TestNotesThenLateRegistration(t *testing.T) {
	// Notes leave the pipeline healthy: queues registered afterwards must
	// NOT arrive pre-aborted (only a real failure does that).
	p := New()
	p.Note(errors.New("recoverable"))
	q := AddQueue[int](p, "late", 1)
	if err := q.Push(1); err != nil {
		t.Fatalf("push to queue after a note: %v", err)
	}
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = %d, %v", v, ok)
	}
	q.Close()
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil", err)
	}
}

func TestNotesConcurrent(t *testing.T) {
	// Notes from many goroutines are all retained.
	p := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Note(fmt.Errorf("w%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	if n := len(p.Notes()); n != 400 {
		t.Errorf("notes = %d, want 400", n)
	}
}
