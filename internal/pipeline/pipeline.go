package pipeline

import (
	"fmt"
	"sync"

	"hybridstitch/internal/obs"
)

// Pipeline owns a set of stages (goroutine groups) and the queues between
// them. The first stage error aborts every registered queue so all other
// stages unblock and drain; Wait returns that first error.
type Pipeline struct {
	mu     sync.Mutex
	wg     sync.WaitGroup
	queues []aborter
	err    error
	failed bool
	abortC chan struct{}
	notes  []error

	// cNotes/cAborts are nil-safe no-ops until Observe attaches a
	// recorder.
	cNotes  *obs.Counter
	cAborts *obs.Counter
}

// New creates an empty pipeline.
func New() *Pipeline { return &Pipeline{abortC: make(chan struct{})} }

// Observe attaches a metrics recorder: recoverable Notes increment
// pipeline.notes and fatal failures increment pipeline.aborts. Call
// before launching stages.
func (p *Pipeline) Observe(rec *obs.Recorder) {
	p.mu.Lock()
	p.cNotes = rec.Counter(obs.CounterPipelineNotes)
	p.cAborts = rec.Counter(obs.CounterPipelineAborts)
	p.mu.Unlock()
}

// Aborted is closed when any stage fails; stages blocked on resources
// other than pipeline queues (e.g. a device buffer pool) select on it so
// teardown cannot hang.
func (p *Pipeline) Aborted() <-chan struct{} { return p.abortC }

// Register adds a queue to the pipeline's teardown set. A queue
// registered after the pipeline has already failed is aborted
// immediately — builders that construct stages incrementally (one
// sub-pipeline per device) may keep registering after an early stage
// has failed, and those late queues must not block their stages.
func (p *Pipeline) register(q aborter) {
	p.mu.Lock()
	p.queues = append(p.queues, q)
	failed := p.failed
	p.mu.Unlock()
	if failed {
		q.Abort()
	}
}

// AddQueue creates a bounded queue owned by pipeline p.
func AddQueue[T any](p *Pipeline, name string, capacity int) *Queue[T] {
	q := NewQueue[T](name, capacity)
	p.register(q)
	return q
}

// Abort fails the pipeline from outside a stage — builders that hit an
// error during incremental construction use it to unblock the stages
// already launched. Wait then returns the FIRST failure recorded, which
// is a stage's root-cause error if one beat the builder to it.
func (p *Pipeline) Abort(err error) {
	if err == nil {
		err = fmt.Errorf("pipeline: aborted")
	}
	p.fail(err)
}

// Note records a recoverable error without failing the pipeline: no
// queue is closed or aborted, sibling stages keep running, and Wait
// still returns nil if nothing fatal happens. This is the partial-
// failure mode degraded runs use — a stage that retried an operation to
// exhaustion reports the casualty here and moves to its next item.
// Abort (or any stage returning an error) still wins: fatal failures
// tear the pipeline down regardless of how many notes were recorded.
func (p *Pipeline) Note(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	p.notes = append(p.notes, err)
	c := p.cNotes
	p.mu.Unlock()
	c.Add(1)
}

// Notes returns the recoverable errors recorded so far, in arrival
// order.
func (p *Pipeline) Notes() []error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]error(nil), p.notes...)
}

// fail records the first error and aborts every queue.
func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failed {
		return
	}
	p.failed = true
	p.err = err
	p.cAborts.Add(1)
	close(p.abortC)
	for _, q := range p.queues {
		q.Abort()
	}
}

// Go launches a stage of n worker goroutines. The stage function receives
// the worker index; a non-nil return aborts the whole pipeline. done, if
// non-nil, runs once after ALL workers of this stage return (typically to
// Close the stage's output queue).
func (p *Pipeline) Go(name string, workers int, fn func(worker int) error, done func()) {
	if workers < 1 {
		workers = 1
	}
	var stage sync.WaitGroup
	stage.Add(workers)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			defer stage.Done()
			defer func() {
				if r := recover(); r != nil {
					p.fail(fmt.Errorf("pipeline: stage %s worker %d panicked: %v", name, w, r))
				}
			}()
			if err := fn(w); err != nil {
				p.fail(fmt.Errorf("pipeline: stage %s worker %d: %w", name, w, err))
			}
		}(w)
	}
	if done != nil {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			stage.Wait()
			done()
		}()
	}
}

// Wait blocks until every stage has returned, then reports the first
// error (nil on clean completion).
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Connect wires a linear stage: `workers` goroutines pop items from in,
// apply fn, and push fn's emissions to out. When the input is exhausted
// and all workers have returned, out is closed. fn may emit zero, one, or
// many outputs per input via the emit callback.
func Connect[I, O any](p *Pipeline, name string, workers int, in *Queue[I], out *Queue[O], fn func(item I, emit func(O) error) error) {
	p.Go(name, workers, func(worker int) error {
		for {
			item, ok := in.Pop()
			if !ok {
				return nil
			}
			if err := fn(item, out.Push); err != nil {
				return err
			}
		}
	}, out.Close)
}

// Source wires a producer stage: fn pushes items to out until it returns;
// out closes afterwards.
func Source[O any](p *Pipeline, name string, out *Queue[O], fn func(emit func(O) error) error) {
	p.Go(name, 1, func(int) error { return fn(out.Push) }, out.Close)
}

// Sink wires a consumer stage of `workers` goroutines that pop from in
// until it is exhausted.
func Sink[I any](p *Pipeline, name string, workers int, in *Queue[I], fn func(item I) error) {
	p.Go(name, workers, func(worker int) error {
		for {
			item, ok := in.Pop()
			if !ok {
				return nil
			}
			if err := fn(item); err != nil {
				return err
			}
		}
	}, nil)
}
