package pipeline

import (
	"testing"

	"hybridstitch/internal/analysis/leaktest"
)

// TestMain fails the package if any test leaks a goroutine — stage
// workers and queue pumps must all have exited when a run completes.
func TestMain(m *testing.M) { leaktest.VerifyTestMain(m) }
