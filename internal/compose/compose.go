// Package compose implements the third phase of stitching: assembling
// the full plate image from absolutely-positioned tiles (the paper's
// Fig 13), rendering variants with highlighted tile boundaries (Fig 14),
// and building the multi-resolution image pyramids of the visualization
// prototype described in the paper's future work. Composition runs on
// demand — the paper's system "composes and renders the composite image
// without saving it in 15 s" — so the compositor streams tiles rather
// than requiring them all resident.
package compose

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"hybridstitch/internal/global"
	"hybridstitch/internal/memgov"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// Blend selects how overlapping pixels combine.
type Blend int

const (
	// BlendOverlay writes tiles in grid order; later tiles overwrite
	// earlier ones in the overlap (the paper's Fig 13 uses an overlay
	// blend).
	BlendOverlay Blend = iota
	// BlendAverage averages all tiles covering a pixel.
	BlendAverage
	// BlendLinear feathers tiles with a distance-to-edge weight, hiding
	// seams under illumination mismatch.
	BlendLinear
)

func (b Blend) String() string {
	switch b {
	case BlendOverlay:
		return "overlay"
	case BlendAverage:
		return "average"
	case BlendLinear:
		return "linear"
	default:
		return fmt.Sprintf("Blend(%d)", int(b))
	}
}

// ComposeObs runs Compose under a "compose" span on the phase3 track of
// rec (nil rec composes without recording).
func ComposeObs(rec *obs.Recorder, pl *global.Placement, src stitch.Source, blend Blend) (*tile.Gray16, error) {
	w, h := pl.Bounds()
	sp := rec.StartSpan(obs.TrackPhase3, obs.SpanCompose,
		obs.String("blend", blend.String()),
		obs.String("size", fmt.Sprintf("%dx%d", w, h)))
	defer sp.End()
	return Compose(pl, src, blend)
}

// Compose assembles the composite image for a placement, streaming tiles
// from src.
func Compose(pl *global.Placement, src stitch.Source, blend Blend) (*tile.Gray16, error) {
	return ComposeGoverned(pl, src, blend, nil)
}

// ComposeGoverned is Compose with the working set charged to gov (nil
// gov skips accounting): the output plane always, plus the two
// full-plate float64 accumulator planes the blended modes allocate —
// 16·w·h bytes that previously slipped past the budget the rest of the
// pipeline respects. Plates whose accumulators dwarf the budget belong
// in ComposeSharded, which bounds the working set to one band.
func ComposeGoverned(pl *global.Placement, src stitch.Source, blend Blend, gov *memgov.Governor) (*tile.Gray16, error) {
	w, h := pl.Bounds()
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("compose: degenerate composite %dx%d", w, h)
	}
	if gov != nil {
		charge := int64(2 * w * h)
		if blend == BlendAverage || blend == BlendLinear {
			charge += int64(16 * w * h)
		}
		a, err := gov.Alloc(charge)
		if err != nil {
			return nil, err
		}
		defer a.Free()
		gov.Touch(charge)
	}
	g := pl.Grid
	out := tile.NewGray16(w, h)

	switch blend {
	case BlendOverlay:
		for i := 0; i < g.NumTiles(); i++ {
			t, err := src.ReadTile(g.CoordOf(i))
			if err != nil {
				return nil, err
			}
			x0, y0 := pl.X[i], pl.Y[i]
			for y := 0; y < t.H; y++ {
				copy(out.Pix[(y0+y)*w+x0:(y0+y)*w+x0+t.W], t.Pix[y*t.W:(y+1)*t.W])
			}
		}
	case BlendAverage, BlendLinear:
		acc := make([]float64, w*h)
		wgt := make([]float64, w*h)
		for i := 0; i < g.NumTiles(); i++ {
			t, err := src.ReadTile(g.CoordOf(i))
			if err != nil {
				return nil, err
			}
			x0, y0 := pl.X[i], pl.Y[i]
			for y := 0; y < t.H; y++ {
				for x := 0; x < t.W; x++ {
					wt := 1.0
					if blend == BlendLinear {
						wt = feather(x, y, t.W, t.H)
					}
					idx := (y0+y)*w + x0 + x
					acc[idx] += wt * float64(t.Pix[y*t.W+x])
					wgt[idx] += wt
				}
			}
		}
		for i := range acc {
			if wgt[i] > 0 {
				v := acc[i] / wgt[i]
				if v > 65535 {
					v = 65535
				}
				out.Pix[i] = uint16(v)
			}
		}
	default:
		return nil, fmt.Errorf("compose: unknown blend %v", blend)
	}
	return out, nil
}

// feather is the linear-blend weight: distance to the nearest tile edge,
// normalized, floored so weights never vanish.
func feather(x, y, w, h int) float64 {
	dx := x + 1
	if w-x < dx {
		dx = w - x
	}
	dy := y + 1
	if h-y < dy {
		dy = h - y
	}
	d := dx
	if dy < d {
		d = dy
	}
	return float64(d)
}

// HighlightGrid renders the composite with tile boundaries marked (the
// paper's Fig 14) as an RGBA image: grayscale content with colored
// 1-pixel tile outlines.
func HighlightGrid(pl *global.Placement, src stitch.Source, blend Blend) (*image.RGBA, error) {
	base, err := Compose(pl, src, blend)
	if err != nil {
		return nil, err
	}
	img := image.NewRGBA(image.Rect(0, 0, base.W, base.H))
	for y := 0; y < base.H; y++ {
		for x := 0; x < base.W; x++ {
			v := uint8(base.At(x, y) >> 8)
			img.SetRGBA(x, y, color.RGBA{R: v, G: v, B: v, A: 255})
		}
	}
	outline := color.RGBA{R: 255, G: 64, B: 64, A: 255}
	g := pl.Grid
	for i := 0; i < g.NumTiles(); i++ {
		x0, y0 := pl.X[i], pl.Y[i]
		x1, y1 := x0+g.TileW-1, y0+g.TileH-1
		for x := x0; x <= x1; x++ {
			img.SetRGBA(x, y0, outline)
			img.SetRGBA(x, y1, outline)
		}
		for y := y0; y <= y1; y++ {
			img.SetRGBA(x0, y, outline)
			img.SetRGBA(x1, y, outline)
		}
	}
	return img, nil
}

// Pyramid builds successive 2× downsampled levels of an image until both
// dimensions fall below minSide. Level 0 is the input itself.
func Pyramid(img *tile.Gray16, minSide int) []*tile.Gray16 {
	if minSide < 1 {
		minSide = 1
	}
	levels := []*tile.Gray16{img}
	cur := img
	for cur.W > minSide || cur.H > minSide {
		next := Downsample2x(cur)
		if next.W == cur.W && next.H == cur.H {
			break
		}
		levels = append(levels, next)
		cur = next
	}
	return levels
}

// Downsample2x box-filters an image to half resolution (rounding up).
func Downsample2x(img *tile.Gray16) *tile.Gray16 {
	w := (img.W + 1) / 2
	h := (img.H + 1) / 2
	out := tile.NewGray16(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum, cnt int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < img.W && sy < img.H {
						sum += int(img.At(sx, sy))
						cnt++
					}
				}
			}
			// Round to nearest: plain sum/cnt truncates, a half-LSB
			// darkening bias that compounds across pyramid levels.
			out.Set(x, y, uint16((sum+cnt/2)/cnt))
		}
	}
	return out
}

// WritePNG saves a 16-bit grayscale image as PNG.
func WritePNG(w io.Writer, img *tile.Gray16) error {
	gray := image.NewGray16(image.Rect(0, 0, img.W, img.H))
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			gray.SetGray16(x, y, color.Gray16{Y: img.At(x, y)})
		}
	}
	return png.Encode(w, gray)
}

// WritePNGFile saves img to path.
func WritePNGFile(path string, img *tile.Gray16) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePNG(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteRGBAPNGFile saves an RGBA image (highlight renders) to path.
func WriteRGBAPNGFile(path string, img *image.RGBA) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTIFFFile saves a composite as 16-bit TIFF — the archival format
// bio-imaging pipelines expect downstream (the paper's Fiji comparison
// "composes and saves the large image" as TIFF). Large composites use
// the tiled layout so downstream viewers can random-access them.
func WriteTIFFFile(path string, img *tile.Gray16) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	opts := tiffio.EncodeOpts{}
	if img.W*img.H > 4<<20 {
		opts.TileW, opts.TileH = 256, 256
	}
	if err := tiffio.Encode(f, img, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
