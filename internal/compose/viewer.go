package compose

import (
	"fmt"

	"hybridstitch/internal/global"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// Viewer renders arbitrary viewports of the stitched plate on demand,
// without ever materializing the full composite — the paper's system
// "composes and renders the composite image without saving it in 15 s",
// and its visualization prototype serves the plate "at varying
// resolutions" (Figs 13, 14 come from it). Rendering a viewport touches
// only the tiles that intersect it, so panning a 17k×22k plate stays
// interactive even though the composite would not fit in a GUI texture.
//
// A Viewer caches decoded tiles with a bounded LRU so repeated pans over
// the same region avoid re-reading; the cache bound plays the same role
// as the pipeline's buffer pool — predictable memory under any access
// pattern.
type Viewer struct {
	pl  *global.Placement
	src stitch.Source

	cacheCap int
	cache    map[int]*tile.Gray16
	order    []int // LRU order, oldest first
}

// NewViewer creates a viewer over a placement and tile source. cacheTiles
// bounds the decoded-tile cache (≥1; 0 picks 2× the grid's column count,
// enough for a horizontal pan strip).
func NewViewer(pl *global.Placement, src stitch.Source, cacheTiles int) (*Viewer, error) {
	if pl == nil || src == nil {
		return nil, fmt.Errorf("compose: viewer needs a placement and a source")
	}
	if err := pl.Grid.Validate(); err != nil {
		return nil, err
	}
	if cacheTiles < 1 {
		cacheTiles = 2 * pl.Grid.Cols
	}
	return &Viewer{
		pl: pl, src: src,
		cacheCap: cacheTiles,
		cache:    make(map[int]*tile.Gray16),
	}, nil
}

// PlateBounds returns the full composite dimensions.
func (v *Viewer) PlateBounds() (w, h int) { return v.pl.Bounds() }

// CacheLen reports the number of tiles currently cached.
func (v *Viewer) CacheLen() int { return len(v.cache) }

// tileAt returns tile i through the LRU cache.
func (v *Viewer) tileAt(i int) (*tile.Gray16, error) {
	if t, ok := v.cache[i]; ok {
		// refresh LRU position
		for k, idx := range v.order {
			if idx == i {
				v.order = append(v.order[:k], v.order[k+1:]...)
				break
			}
		}
		v.order = append(v.order, i)
		return t, nil
	}
	t, err := v.src.ReadTile(v.pl.Grid.CoordOf(i))
	if err != nil {
		return nil, err
	}
	if len(v.cache) >= v.cacheCap {
		oldest := v.order[0]
		v.order = v.order[1:]
		delete(v.cache, oldest)
	}
	v.cache[i] = t
	v.order = append(v.order, i)
	return t, nil
}

// Render produces the viewport with top-left (x0, y0) and size (w, h) in
// plate coordinates at full resolution. Pixels outside every tile are 0.
// Tiles draw in grid order, so overlaps resolve like BlendOverlay.
func (v *Viewer) Render(x0, y0, w, h int) (*tile.Gray16, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("compose: invalid viewport %dx%d", w, h)
	}
	out := tile.NewGray16(w, h)
	g := v.pl.Grid
	for i := 0; i < g.NumTiles(); i++ {
		tx, ty := v.pl.X[i], v.pl.Y[i]
		// Intersection of [tx, tx+TileW) × [ty, ty+TileH) with the
		// viewport [x0, x0+w) × [y0, y0+h).
		ix0 := maxi(tx, x0)
		iy0 := maxi(ty, y0)
		ix1 := mini(tx+g.TileW, x0+w)
		iy1 := mini(ty+g.TileH, y0+h)
		if ix0 >= ix1 || iy0 >= iy1 {
			continue
		}
		t, err := v.tileAt(i)
		if err != nil {
			return nil, err
		}
		for y := iy0; y < iy1; y++ {
			srcRow := t.Pix[(y-ty)*t.W+(ix0-tx) : (y-ty)*t.W+(ix1-tx)]
			dstRow := out.Pix[(y-y0)*w+(ix0-x0) : (y-y0)*w+(ix1-x0)]
			copy(dstRow, srcRow)
		}
	}
	return out, nil
}

// RenderScaled renders the viewport (in plate coordinates) downsampled by
// 2^level — the multi-resolution access pattern of the visualization
// prototype. Level 0 is full resolution.
func (v *Viewer) RenderScaled(x0, y0, w, h, level int) (*tile.Gray16, error) {
	if level < 0 || level > 16 {
		return nil, fmt.Errorf("compose: invalid pyramid level %d", level)
	}
	full, err := v.Render(x0, y0, w, h)
	if err != nil {
		return nil, err
	}
	for l := 0; l < level; l++ {
		full = Downsample2x(full)
	}
	return full, nil
}

// Overview renders the whole plate at the coarsest level whose longer
// side fits maxSide pixels.
func (v *Viewer) Overview(maxSide int) (*tile.Gray16, int, error) {
	if maxSide < 1 {
		return nil, 0, fmt.Errorf("compose: invalid overview size %d", maxSide)
	}
	w, h := v.PlateBounds()
	level := 0
	for (w>>uint(level)) > maxSide || (h>>uint(level)) > maxSide {
		level++
	}
	img, err := v.RenderScaled(0, 0, w, h, level)
	if err != nil {
		return nil, 0, err
	}
	return img, level, nil
}

// TileRegionStats computes the per-viewport mean and normalized cross
// correlation between a viewport rendered by this viewer and the same
// viewport from another viewer — used by the time-series steering code to
// compare consecutive scans without composing either plate.
func (v *Viewer) TileRegionStats(other *Viewer, x0, y0, w, h int) (meanA, meanB, ncc float64, err error) {
	a, err := v.Render(x0, y0, w, h)
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := other.Render(x0, y0, w, h)
	if err != nil {
		return 0, 0, 0, err
	}
	return a.Mean(), b.Mean(), tile.NCCRegion(a, 0, 0, b, 0, 0, w, h), nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
