package compose

import (
	"fmt"
	"math"

	"hybridstitch/internal/global"
	"hybridstitch/internal/pciam"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// SeamScore measures placement quality without ground truth — the only
// kind of evaluation available on real microscope data (the paper's
// authors judged composites by eye; this is the quantitative version).
// For every adjacent pair it computes the normalized cross correlation
// of the two tiles over the overlap implied by the PLACEMENT. A correct
// placement aligns true overlaps (NCC → 1); an off-by-a-few-pixels
// placement decorrelates the fine texture and the score drops sharply.
//
// The returned score is the mean pair NCC in [-1, 1]; Worst identifies
// the weakest seam for inspection.
type SeamReport struct {
	Mean      float64
	Min       float64
	Worst     tile.Pair
	Evaluated int
	Skipped   int // pairs whose placement implies no overlap
}

// SeamScore evaluates a placement against the tile pixels.
func SeamScore(pl *global.Placement, src stitch.Source) (SeamReport, error) {
	g := pl.Grid
	if err := g.Validate(); err != nil {
		return SeamReport{}, err
	}
	rep := SeamReport{Mean: 0, Min: math.Inf(1)}
	var sum float64
	for _, p := range g.Pairs() {
		bi := g.Index(p.Coord)
		ai := g.Index(p.Neighbor())
		dx := pl.X[bi] - pl.X[ai]
		dy := pl.Y[bi] - pl.Y[ai]
		ax, ay, bx, by, ow, oh, ok := pciam.OverlapRegions(g.TileW, g.TileH, dx, dy)
		if !ok || ow < 4 || oh < 4 {
			rep.Skipped++
			continue
		}
		a, err := src.ReadTile(p.Neighbor())
		if err != nil {
			return rep, err
		}
		b, err := src.ReadTile(p.Coord)
		if err != nil {
			return rep, err
		}
		ncc := tile.NCCRegion(a, ax, ay, b, bx, by, ow, oh)
		sum += ncc
		rep.Evaluated++
		if ncc < rep.Min {
			rep.Min = ncc
			rep.Worst = p
		}
	}
	if rep.Evaluated == 0 {
		return rep, fmt.Errorf("compose: no overlapping pairs to score")
	}
	rep.Mean = sum / float64(rep.Evaluated)
	return rep, nil
}
