package compose

import (
	"bytes"
	"image/png"
	"math"
	"path/filepath"
	"testing"

	"hybridstitch/internal/global"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// truthPlacement builds a placement directly from dataset ground truth.
func truthPlacement(ds *imagegen.Dataset) *global.Placement {
	g := ds.Params.Grid
	pl := &global.Placement{Grid: g,
		X: append([]int(nil), ds.TruthX...),
		Y: append([]int(nil), ds.TruthY...)}
	minX, minY := pl.X[0], pl.Y[0]
	for i := range pl.X {
		if pl.X[i] < minX {
			minX = pl.X[i]
		}
		if pl.Y[i] < minY {
			minY = pl.Y[i]
		}
	}
	for i := range pl.X {
		pl.X[i] -= minX
		pl.Y[i] -= minY
	}
	return pl
}

func genClean(t *testing.T, rows, cols int) (*imagegen.Dataset, *stitch.MemorySource) {
	t.Helper()
	p := imagegen.DefaultParams(rows, cols, 48, 40)
	p.NoiseAmp = 0
	p.Vignetting = false
	ds, err := imagegen.GenerateWithPlate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ds, &stitch.MemorySource{DS: ds}
}

func TestComposeOverlayMatchesPlate(t *testing.T) {
	// With clean tiles (no per-tile camera effects) and truth positions,
	// the overlay composite must equal the plate region it came from.
	ds, src := genClean(t, 3, 3)
	pl := truthPlacement(ds)
	out, err := Compose(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	// Composite origin = min truth position on the plate. Sample each
	// tile's top-left region, which overlay order guarantees is not
	// overwritten by a later (east/south) tile even under jitter.
	minX, minY := ds.TruthX[0], ds.TruthY[0]
	for i := range ds.TruthX {
		if ds.TruthX[i] < minX {
			minX = ds.TruthX[i]
		}
		if ds.TruthY[i] < minY {
			minY = ds.TruthY[i]
		}
	}
	for i := range ds.Tiles {
		for y := 0; y < 20; y += 5 {
			for x := 0; x < 24; x += 5 {
				cx := ds.TruthX[i] - minX + x
				cy := ds.TruthY[i] - minY + y
				want := ds.Plate.At(ds.TruthX[i]+x, ds.TruthY[i]+y)
				if got := out.At(cx, cy); got != want {
					t.Fatalf("tile %d composite(%d,%d) = %d, plate = %d", i, cx, cy, got, want)
				}
			}
		}
	}
}

func TestComposeBlendsAgreeOnCleanData(t *testing.T) {
	// All blend modes reconstruct the same pixels when tiles agree
	// exactly in their overlaps.
	ds, src := genClean(t, 2, 3)
	pl := truthPlacement(ds)
	ov, err := Compose(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Blend{BlendAverage, BlendLinear} {
		got, err := Compose(pl, src, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ov.Pix {
			if int(got.Pix[i])-int(ov.Pix[i]) > 1 || int(ov.Pix[i])-int(got.Pix[i]) > 1 {
				t.Fatalf("blend %v differs from overlay at %d: %d vs %d", b, i, got.Pix[i], ov.Pix[i])
			}
		}
	}
}

func TestComposeBounds(t *testing.T) {
	ds, src := genClean(t, 2, 2)
	pl := truthPlacement(ds)
	out, err := Compose(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	w, h := pl.Bounds()
	if out.W != w || out.H != h {
		t.Errorf("composite %dx%d, bounds say %dx%d", out.W, out.H, w, h)
	}
	// Composite must be smaller than tiles side-by-side (overlap) but
	// bigger than one tile.
	g := ds.Params.Grid
	if out.W >= g.TileW*g.Cols || out.W <= g.TileW {
		t.Errorf("composite width %d implausible", out.W)
	}
}

func TestHighlightGrid(t *testing.T) {
	ds, src := genClean(t, 2, 2)
	pl := truthPlacement(ds)
	img, err := HighlightGrid(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	// Tile 0's outline corner must be the highlight color.
	c := img.RGBAAt(pl.X[0], pl.Y[0])
	if c.R != 255 || c.G != 64 {
		t.Errorf("outline pixel = %+v", c)
	}
}

func TestPyramid(t *testing.T) {
	img := tile.NewGray16(64, 48)
	for i := range img.Pix {
		img.Pix[i] = uint16(i)
	}
	levels := Pyramid(img, 8)
	if len(levels) < 3 {
		t.Fatalf("only %d levels", len(levels))
	}
	if levels[0] != img {
		t.Error("level 0 should be the input")
	}
	for i := 1; i < len(levels); i++ {
		prev, cur := levels[i-1], levels[i]
		if cur.W != (prev.W+1)/2 || cur.H != (prev.H+1)/2 {
			t.Errorf("level %d is %dx%d, want half of %dx%d", i, cur.W, cur.H, prev.W, prev.H)
		}
	}
	last := levels[len(levels)-1]
	if last.W > 8 && last.H > 8 {
		t.Errorf("last level %dx%d above minSide", last.W, last.H)
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	img := tile.NewGray16(32, 32)
	for i := range img.Pix {
		img.Pix[i] = uint16(i * 13 % 4096)
	}
	down := Downsample2x(img)
	if math.Abs(down.Mean()-img.Mean()) > 2 {
		t.Errorf("downsample mean %g vs %g", down.Mean(), img.Mean())
	}
	// Odd dimensions round up.
	odd := tile.NewGray16(5, 3)
	d := Downsample2x(odd)
	if d.W != 3 || d.H != 2 {
		t.Errorf("odd downsample %dx%d", d.W, d.H)
	}
}

func TestWritePNG(t *testing.T) {
	img := tile.NewGray16(10, 8)
	img.Set(3, 2, 40000)
	var buf bytes.Buffer
	if err := WritePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 10 || decoded.Bounds().Dy() != 8 {
		t.Errorf("decoded bounds %v", decoded.Bounds())
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	ds, src := genClean(t, 2, 2)
	pl := truthPlacement(ds)
	out, err := Compose(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePNGFile(filepath.Join(dir, "plate.png"), out); err != nil {
		t.Fatal(err)
	}
	hl, err := HighlightGrid(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRGBAPNGFile(filepath.Join(dir, "grid.png"), hl); err != nil {
		t.Fatal(err)
	}
	if err := WritePNGFile(filepath.Join(dir, "missing", "x.png"), out); err == nil {
		t.Error("writing into a missing directory should fail")
	}
}

func TestComposeEndToEnd(t *testing.T) {
	// The full three phases: stitch, solve, compose, at the tile scale
	// PCIAM is reliable at (see the pciam tests).
	p := imagegen.DefaultParams(3, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := global.Solve(res, global.Options{RepairOutliers: true})
	if err != nil {
		t.Fatal(err)
	}
	rms, err := global.RMSError(pl, ds.TruthX, ds.TruthY)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 2.0 {
		t.Fatalf("placement RMS %.2f px", rms)
	}
	out, err := Compose(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	if out.W == 0 || out.H == 0 {
		t.Fatal("empty composite")
	}
}

func TestStretch(t *testing.T) {
	img := tile.NewGray16(10, 10)
	for i := range img.Pix {
		img.Pix[i] = uint16(1000 + i*10) // narrow band 1000..1990
	}
	out, err := Stretch(img, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := out.Pix[0], out.Pix[0]
	for _, px := range out.Pix {
		if px < lo {
			lo = px
		}
		if px > hi {
			hi = px
		}
	}
	if lo != 0 || hi != 65535 {
		t.Errorf("stretched range [%d, %d], want full scale", lo, hi)
	}
	// Monotonicity: ordering of pixel values preserved.
	for i := 1; i < len(img.Pix); i++ {
		if img.Pix[i] > img.Pix[i-1] && out.Pix[i] < out.Pix[i-1] {
			t.Fatalf("stretch broke monotonicity at %d", i)
		}
	}
	if _, err := Stretch(img, 50, 10); err == nil {
		t.Error("inverted percentiles should fail")
	}
	// Degenerate constant image: unchanged.
	flat := tile.NewGray16(4, 4)
	for i := range flat.Pix {
		flat.Pix[i] = 77
	}
	same, err := Stretch(flat, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if same.Pix[0] != 77 {
		t.Error("constant image should pass through")
	}
}

func TestPercentile(t *testing.T) {
	img := tile.NewGray16(10, 1)
	for i := range img.Pix {
		img.Pix[i] = uint16(i * 100)
	}
	if p := Percentile(img, 0); p != 0 {
		t.Errorf("P0 = %d", p)
	}
	if p := Percentile(img, 100); p != 900 {
		t.Errorf("P100 = %d", p)
	}
	if p := Percentile(img, 50); p != 400 && p != 500 {
		t.Errorf("P50 = %d", p)
	}
	if p := Percentile(tile.NewGray16(0, 0), 50); p != 0 {
		t.Errorf("empty percentile = %d", p)
	}
}

func TestWriteTIFFFile(t *testing.T) {
	dir := t.TempDir()
	ds, src := genClean(t, 2, 2)
	pl := truthPlacement(ds)
	out, err := Compose(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "plate.tif")
	if err := WriteTIFFFile(path, out); err != nil {
		t.Fatal(err)
	}
	back, err := tiffio.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != out.W || back.H != out.H {
		t.Fatalf("TIFF round trip dims %dx%d vs %dx%d", back.W, back.H, out.W, out.H)
	}
	for i := range out.Pix {
		if back.Pix[i] != out.Pix[i] {
			t.Fatal("TIFF round trip corrupted the composite")
		}
	}
	if err := WriteTIFFFile(filepath.Join(dir, "no", "x.tif"), out); err == nil {
		t.Error("missing directory should fail")
	}
}
