package compose

import (
	"fmt"
	"io"
	"os"

	"hybridstitch/internal/global"
	"hybridstitch/internal/memgov"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// This file is the out-of-core compositor: phase 3 for plates whose
// composite (let alone the 16-bytes-per-pixel blend accumulators) does
// not fit the memory budget. Instead of assembling the plate in one
// resident buffer, ComposeSharded walks the placement top to bottom in
// output-tile-aligned bands, blends only the source tiles intersecting
// each band, and streams finished bands into a tiffio.PyramidWriter.
// Reduced pyramid levels are box-filtered row by row as bands retire
// (a cascade of 2x reducers, one pending row per level), so no level is
// ever fully resident either.
//
// Bit-identity with the in-memory path is a design invariant, not an
// approximation: within a band, tiles are visited in the same grid order
// Compose uses, so every pixel sees the same float additions in the same
// order, and the reducer applies the same round-to-nearest box filter
// Downsample2x does to the same rounded inputs. The equivalence tests
// compare byte-for-byte.

// ShardedOpts configures ComposeSharded.
type ShardedOpts struct {
	// Blend selects the pixel-combination rule (same three as Compose).
	Blend Blend
	// TileW/TileH set the pyramid tile size (default 256, multiples of 16).
	TileW, TileH int
	// MinSide stops the pyramid once both dimensions fit (default 256).
	MinSide int
	// BandRows fixes the band height in output rows (rounded up to a
	// multiple of TileH). 0 derives it from Gov's physical budget; with
	// no governor either, the default is 4 tile rows.
	BandRows int
	// NoDeflate stores pyramid tiles uncompressed.
	NoDeflate bool
	// Gov, when set, sizes the band and charges the working set (band
	// accumulators + pyramid staging + reducer rows) against the budget.
	Gov *memgov.Governor
	// Rec, when set, records the compose.sharded/compose.band spans and
	// compose.band.* counters on the phase-3 track.
	Rec *obs.Recorder
}

func (o ShardedOpts) withDefaults() ShardedOpts {
	if o.TileW == 0 {
		o.TileW = 256
	}
	if o.TileH == 0 {
		o.TileH = 256
	}
	if o.MinSide == 0 {
		o.MinSide = 256
	}
	return o
}

// bytesPerBandRow is the accounted working-set cost of one output row in
// a band: the resolved uint16 row plus, for the blended modes, the
// float64 accumulator and weight rows.
func bytesPerBandRow(w int, blend Blend) int64 {
	n := int64(2 * w)
	if blend == BlendAverage || blend == BlendLinear {
		n += int64(16 * w)
	}
	return n
}

// shardedFixedBytes is the band-independent accounted cost: the pyramid
// writer's one-tile-row staging per level plus the reducer cascade's
// pending and output rows.
func shardedFixedBytes(dims [][2]int, tileH int) int64 {
	var n int64
	for l, d := range dims {
		n += int64(2 * tileH * d[0]) // writer staging
		if l > 0 {
			n += int64(2*dims[l-1][0] + 2*d[0]) // reducer pending + emit rows
		}
	}
	return n
}

// bandRowsFor picks the band height: the largest multiple of tileH whose
// working set fits the remaining budget, floored at one tile row (the
// governor models the cliff rather than refusing, so a budget too small
// for even one tile row still composes — it just pays).
func bandRowsFor(opts ShardedOpts, w, h int, fixed int64) int {
	if opts.BandRows > 0 {
		return ((opts.BandRows + opts.TileH - 1) / opts.TileH) * opts.TileH
	}
	rows := 4 * opts.TileH
	if opts.Gov != nil {
		budget := opts.Gov.Physical() - fixed
		perRow := bytesPerBandRow(w, opts.Blend)
		rows = int(budget / perRow)
	}
	rows = (rows / opts.TileH) * opts.TileH
	if rows < opts.TileH {
		rows = opts.TileH
	}
	if excess := rows - ((h + opts.TileH - 1) / opts.TileH * opts.TileH); excess > 0 {
		rows -= excess
	}
	return rows
}

// rowReducer halves rows of one pyramid level into the next: it consumes
// level l-1 rows top to bottom and emits a level-l row for every pair
// (or the final odd row alone), applying exactly Downsample2x's
// round-to-nearest box filter so a cascade of reducers reproduces the
// recursive in-memory pyramid bit for bit.
type rowReducer struct {
	srcW, dstW int
	pending    []uint16 // previous unpaired source row
	hasPending bool
	out        []uint16
}

func newRowReducer(srcW int) *rowReducer {
	return &rowReducer{
		srcW:    srcW,
		dstW:    (srcW + 1) / 2,
		pending: make([]uint16, srcW),
		out:     make([]uint16, (srcW+1)/2),
	}
}

// feed offers one source row; it returns the reduced row when a pair
// completes, else nil. The returned slice is reused by the next emit.
func (r *rowReducer) feed(row []uint16) []uint16 {
	if !r.hasPending {
		copy(r.pending, row)
		r.hasPending = true
		return nil
	}
	r.hasPending = false
	return r.reduce(r.pending, row)
}

// flush emits the final odd row, if any.
func (r *rowReducer) flush() []uint16 {
	if !r.hasPending {
		return nil
	}
	r.hasPending = false
	return r.reduce(r.pending, nil)
}

func (r *rowReducer) reduce(a, b []uint16) []uint16 {
	for x := 0; x < r.dstW; x++ {
		sum := int(a[2*x])
		cnt := 1
		if 2*x+1 < r.srcW {
			sum += int(a[2*x+1])
			cnt++
		}
		if b != nil {
			sum += int(b[2*x])
			cnt++
			if 2*x+1 < r.srcW {
				sum += int(b[2*x+1])
				cnt++
			}
		}
		r.out[x] = uint16((sum + cnt/2) / cnt)
	}
	return r.out
}

// ComposeSharded composes the placement into a pyramid file on ws in
// bounded memory. The level-0 pixels are bit-identical to Compose with
// the same blend; the reduced levels are bit-identical to Pyramid
// (recursive Downsample2x) over that composite.
func ComposeSharded(pl *global.Placement, src stitch.Source, ws io.WriteSeeker, opts ShardedOpts) error {
	opts = opts.withDefaults()
	w, h := pl.Bounds()
	if w <= 0 || h <= 0 {
		return fmt.Errorf("compose: degenerate composite %dx%d", w, h)
	}
	switch opts.Blend {
	case BlendOverlay, BlendAverage, BlendLinear:
	default:
		return fmt.Errorf("compose: unknown blend %v", opts.Blend)
	}

	dims := tiffio.PyramidLevelDims(w, h, opts.MinSide)
	fixed := shardedFixedBytes(dims, opts.TileH)
	bandRows := bandRowsFor(opts, w, h, fixed)

	sp := opts.Rec.StartSpan(obs.TrackPhase3, obs.SpanComposeSharded,
		obs.String("blend", opts.Blend.String()),
		obs.String("size", fmt.Sprintf("%dx%d", w, h)),
		obs.String("band_rows", fmt.Sprint(bandRows)),
		obs.String("levels", fmt.Sprint(len(dims))))
	defer sp.End()
	cBands := opts.Rec.Counter(obs.CounterComposeBands)
	cTiles := opts.Rec.Counter(obs.CounterComposeBandTiles)

	// One charge covers the whole run: the fixed staging plus one band's
	// accumulators. The working set genuinely is this size from first
	// band to last, so a single Alloc both keeps peak accounting honest
	// and pays the paging penalty (Touch) per band below.
	blended := opts.Blend == BlendAverage || opts.Blend == BlendLinear
	charge := fixed + int64(bandRows)*bytesPerBandRow(w, opts.Blend)
	if opts.Gov != nil {
		a, err := opts.Gov.Alloc(charge)
		if err != nil {
			return err
		}
		defer a.Free()
	}

	pw, err := tiffio.NewPyramidWriter(ws, w, h, tiffio.PyramidOpts{
		TileW: opts.TileW, TileH: opts.TileH, MinSide: opts.MinSide, NoDeflate: opts.NoDeflate,
	})
	if err != nil {
		return err
	}

	// The reducer cascade: reducers[l] consumes level-l rows and emits
	// level-l+1 rows.
	reducers := make([]*rowReducer, len(dims)-1)
	for l := range reducers {
		reducers[l] = newRowReducer(dims[l][0])
	}
	var cascade func(l int, row []uint16) error
	cascade = func(l int, row []uint16) error {
		if err := pw.WriteRows(l, row, 1); err != nil {
			return err
		}
		if l < len(reducers) {
			if red := reducers[l].feed(row); red != nil {
				return cascade(l+1, red)
			}
		}
		return nil
	}

	g := pl.Grid
	band := tile.NewGray16(w, bandRows)
	var acc, wgt []float64
	if blended {
		acc = make([]float64, w*bandRows)
		wgt = make([]float64, w*bandRows)
	}

	for y0 := 0; y0 < h; y0 += bandRows {
		y1 := y0 + bandRows
		if y1 > h {
			y1 = h
		}
		bh := y1 - y0
		bsp := opts.Rec.StartSpan(obs.TrackPhase3, obs.SpanComposeBand,
			obs.String("y0", fmt.Sprint(y0)), obs.String("rows", fmt.Sprint(bh)))
		if opts.Gov != nil {
			opts.Gov.Touch(int64(bh) * bytesPerBandRow(w, opts.Blend))
		}
		for i := range band.Pix[:bh*w] {
			band.Pix[i] = 0
		}
		if blended {
			for i := range acc[:bh*w] {
				acc[i] = 0
				wgt[i] = 0
			}
		}

		tilesInBand := 0
		for i := 0; i < g.NumTiles(); i++ {
			tx0, ty0 := pl.X[i], pl.Y[i]
			if ty0 >= y1 || ty0+g.TileH <= y0 {
				continue
			}
			t, err := src.ReadTile(g.CoordOf(i))
			if err != nil {
				bsp.End()
				return err
			}
			tilesInBand++
			// Clip the tile's row range to the band; x placement is
			// unchanged from the in-memory path.
			rs := 0
			if ty0 < y0 {
				rs = y0 - ty0
			}
			re := t.H
			if ty0+re > y1 {
				re = y1 - ty0
			}
			switch opts.Blend {
			case BlendOverlay:
				for y := rs; y < re; y++ {
					by := ty0 + y - y0
					copy(band.Pix[by*w+tx0:by*w+tx0+t.W], t.Pix[y*t.W:(y+1)*t.W])
				}
			default:
				for y := rs; y < re; y++ {
					by := ty0 + y - y0
					for x := 0; x < t.W; x++ {
						wt := 1.0
						if opts.Blend == BlendLinear {
							wt = feather(x, y, t.W, t.H)
						}
						idx := by*w + tx0 + x
						acc[idx] += wt * float64(t.Pix[y*t.W+x])
						wgt[idx] += wt
					}
				}
			}
		}
		if blended {
			for i := 0; i < bh*w; i++ {
				if wgt[i] > 0 {
					v := acc[i] / wgt[i]
					if v > 65535 {
						v = 65535
					}
					band.Pix[i] = uint16(v)
				} else {
					band.Pix[i] = 0
				}
			}
		}
		for y := 0; y < bh; y++ {
			if err := cascade(0, band.Pix[y*w:(y+1)*w]); err != nil {
				bsp.End()
				return err
			}
		}
		cBands.Add(1)
		cTiles.Add(int64(tilesInBand))
		bsp.End()
	}

	// Drain the reducer cascade: an odd-height level leaves one pending
	// row per reducer.
	for l := 0; l < len(reducers); l++ {
		if red := reducers[l].flush(); red != nil {
			if err := cascade(l+1, red); err != nil {
				return err
			}
		}
	}
	return pw.Close()
}

// ComposeShardedFile composes into a pyramid file at path.
func ComposeShardedFile(pl *global.Placement, src stitch.Source, path string, opts ShardedOpts) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ComposeSharded(pl, src, f, opts); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}
