package compose_test

import (
	"fmt"

	"hybridstitch/internal/compose"
	"hybridstitch/internal/global"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
)

// ExampleViewer pans a stitched plate without composing it.
func ExampleViewer() {
	params := imagegen.DefaultParams(3, 4, 96, 64)
	dataset, err := imagegen.Generate(params)
	if err != nil {
		fmt.Println(err)
		return
	}
	src := &stitch.MemorySource{DS: dataset}
	res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	pl, err := global.Solve(res, global.Options{RepairOutliers: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	viewer, err := compose.NewViewer(pl, src, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	viewport, err := viewer.Render(10, 10, 32, 24)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("viewport %dx%d, cache %d/4 tiles\n", viewport.W, viewport.H, viewer.CacheLen())
	// Output: viewport 32x24, cache 1/4 tiles
}
