package compose

import (
	"bytes"
	"fmt"
	"testing"

	"hybridstitch/internal/global"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/memgov"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// writeSeekBuffer is an in-memory io.WriteSeeker for sharded-compose
// tests.
type writeSeekBuffer struct {
	buf []byte
	pos int64
}

func (s *writeSeekBuffer) Write(p []byte) (int, error) {
	if need := s.pos + int64(len(p)); need > int64(len(s.buf)) {
		grown := make([]byte, need)
		copy(grown, s.buf)
		s.buf = grown
	}
	copy(s.buf[s.pos:], p)
	s.pos += int64(len(p))
	return len(p), nil
}

func (s *writeSeekBuffer) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case 0:
		s.pos = off
	case 1:
		s.pos += off
	case 2:
		s.pos = int64(len(s.buf)) + off
	}
	return s.pos, nil
}

// genNoisy produces tiles with per-tile camera effects so the blend
// modes genuinely disagree: bit-identity tests that pass on data where
// every blend produces the same pixels prove nothing.
func genNoisy(t *testing.T, rows, cols int) (*imagegen.Dataset, *stitch16Source) {
	t.Helper()
	p := imagegen.DefaultParams(rows, cols, 48, 40)
	ds, err := imagegen.GenerateWithPlate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ds, &stitch16Source{ds: ds}
}

// stitch16Source adapts a dataset (stitch.MemorySource behavior without
// the import noise in every call site).
type stitch16Source struct{ ds *imagegen.Dataset }

func (s *stitch16Source) Grid() tile.Grid { return s.ds.Params.Grid }
func (s *stitch16Source) ReadTile(c tile.Coord) (*tile.Gray16, error) {
	return s.ds.Tiles[s.ds.Params.Grid.Index(c)], nil
}

// shardedPyramid runs ComposeSharded into memory and opens the result.
func shardedPyramid(t *testing.T, pl *global.Placement, src stitch.Source, opts ShardedOpts) *tiffio.Pyramid {
	t.Helper()
	var sb writeSeekBuffer
	if err := ComposeSharded(pl, src, &sb, opts); err != nil {
		t.Fatal(err)
	}
	p, err := tiffio.OpenPyramid(bytes.NewReader(sb.buf))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestShardedBitIdenticalToCompose(t *testing.T) {
	ds, src := genNoisy(t, 3, 4)
	pl := truthPlacement(ds)
	w, h := pl.Bounds()

	for _, blend := range []Blend{BlendOverlay, BlendAverage, BlendLinear} {
		// Band heights that do not divide the plate height, plus one that
		// exceeds it (single band) and the minimum (one tile row).
		for _, bandRows := range []int{16, 48, 10000} {
			t.Run(fmt.Sprintf("%v_band%d", blend, bandRows), func(t *testing.T) {
				want, err := Compose(pl, src, blend)
				if err != nil {
					t.Fatal(err)
				}
				p := shardedPyramid(t, pl, src, ShardedOpts{
					Blend: blend, TileW: 16, TileH: 16, MinSide: 40, BandRows: bandRows,
				})
				got, err := p.Image(0)
				if err != nil {
					t.Fatal(err)
				}
				if got.W != w || got.H != h {
					t.Fatalf("level 0 is %dx%d, want %dx%d", got.W, got.H, w, h)
				}
				for i := range want.Pix {
					if got.Pix[i] != want.Pix[i] {
						t.Fatalf("blend %v band %d: pixel %d = %d, Compose = %d",
							blend, bandRows, i, got.Pix[i], want.Pix[i])
					}
				}
			})
		}
	}
}

func TestShardedPyramidMatchesInMemoryPyramid(t *testing.T) {
	// The golden multi-level test the Downsample2x rounding fix shares
	// with the out-of-core reducer: every reduced level of the sharded
	// pyramid must equal recursive Downsample2x over the in-memory
	// composite, bit for bit — including odd-dimension levels where the
	// box filter sees 1- and 2-sample neighborhoods.
	ds, src := genNoisy(t, 3, 3)
	pl := truthPlacement(ds)
	full, err := Compose(pl, src, BlendAverage)
	if err != nil {
		t.Fatal(err)
	}
	const minSide = 20
	levels := Pyramid(full, minSide)

	p := shardedPyramid(t, pl, src, ShardedOpts{
		Blend: BlendAverage, TileW: 16, TileH: 16, MinSide: minSide, BandRows: 32,
	})
	if p.NumLevels() != len(levels) {
		t.Fatalf("pyramid has %d levels, in-memory has %d", p.NumLevels(), len(levels))
	}
	for l, want := range levels {
		got, err := p.Image(l)
		if err != nil {
			t.Fatalf("level %d: %v", l, err)
		}
		if got.W != want.W || got.H != want.H {
			t.Fatalf("level %d is %dx%d, want %dx%d", l, got.W, got.H, want.W, want.H)
		}
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("level %d pixel %d = %d, Downsample2x chain = %d", l, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}

func TestDownsampleRoundsToNearest(t *testing.T) {
	// 2x2 block summing to 3 must round up to 1 (truncation gave 0), and
	// a block summing to 5 rounds to 1 (2.5 rounds... 5+2=7, 7/4=1).
	img := tile.NewGray16(2, 2)
	img.Pix = []uint16{1, 1, 1, 0}
	if got := Downsample2x(img).Pix[0]; got != 1 {
		t.Fatalf("round(3/4) = %d, want 1", got)
	}
	img.Pix = []uint16{65535, 65535, 65535, 65535}
	if got := Downsample2x(img).Pix[0]; got != 65535 {
		t.Fatalf("round(65535) = %d, want 65535", got)
	}
	// Odd edge: single-column pair (cnt=2) rounds (1+0+1)/2 = 1.
	img3 := tile.NewGray16(1, 2)
	img3.Pix = []uint16{1, 0}
	if got := Downsample2x(img3).Pix[0]; got != 1 {
		t.Fatalf("round(1/2) = %d, want 1", got)
	}
}

func TestShardedPeakWithinBudget(t *testing.T) {
	// A plate at least 4x the governor budget must compose with peak
	// accounted memory inside the budget: the whole point of sharding.
	ds, src := genNoisy(t, 4, 4)
	pl := truthPlacement(ds)
	w, h := pl.Bounds()
	plateBytes := int64(16 * w * h) // what in-memory blended compose accounts

	budget := plateBytes / 4
	gov := memgov.New(budget, 0)
	var sb writeSeekBuffer
	err := ComposeSharded(pl, src, &sb, ShardedOpts{
		Blend: BlendAverage, TileW: 16, TileH: 16, MinSide: 40, Gov: gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, peak, _, _ := gov.Stats()
	if peak > budget {
		t.Fatalf("peak accounted bytes %d exceeds budget %d (plate is %d)", peak, budget, plateBytes)
	}
	if peak == 0 {
		t.Fatal("sharded compose charged nothing to the governor")
	}
	// And the output is still exact.
	want, err := Compose(pl, src, BlendAverage)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tiffio.OpenPyramid(bytes.NewReader(sb.buf))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Image(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("budget-sized bands broke bit-identity at pixel %d", i)
		}
	}
}

func TestComposeGovernedChargesAccumulators(t *testing.T) {
	ds, src := genNoisy(t, 2, 2)
	pl := truthPlacement(ds)
	w, h := pl.Bounds()

	gov := memgov.New(1<<30, 0)
	if _, err := ComposeGoverned(pl, src, BlendAverage, gov); err != nil {
		t.Fatal(err)
	}
	live, peak, _, _ := gov.Stats()
	if live != 0 {
		t.Fatalf("compose leaked %d live bytes", live)
	}
	if want := int64(18 * w * h); peak != want {
		t.Fatalf("blended compose peak = %d, want %d (output + accumulators)", peak, want)
	}

	gov2 := memgov.New(1<<30, 0)
	if _, err := ComposeGoverned(pl, src, BlendOverlay, gov2); err != nil {
		t.Fatal(err)
	}
	_, peak2, _, _ := gov2.Stats()
	if want := int64(2 * w * h); peak2 != want {
		t.Fatalf("overlay compose peak = %d, want %d (output only)", peak2, want)
	}
}

func TestShardedRecordsObs(t *testing.T) {
	ds, src := genNoisy(t, 2, 3)
	pl := truthPlacement(ds)
	rec := obs.New()
	var sb writeSeekBuffer
	err := ComposeSharded(pl, src, &sb, ShardedOpts{
		Blend: BlendOverlay, TileW: 16, TileH: 16, MinSide: 40, BandRows: 16, Rec: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Counters[obs.CounterComposeBands] == 0 {
		t.Fatal("compose.band.count not recorded")
	}
	if snap.Counters[obs.CounterComposeBandTiles] < snap.Counters[obs.CounterComposeBands] {
		t.Fatalf("band tiles %d < bands %d", snap.Counters[obs.CounterComposeBandTiles], snap.Counters[obs.CounterComposeBands])
	}
	foundRoot, foundBand := false, false
	for _, sp := range rec.Spans() {
		switch sp.Name {
		case obs.SpanComposeSharded:
			foundRoot = true
		case obs.SpanComposeBand:
			foundBand = true
		}
	}
	if !foundRoot || !foundBand {
		t.Fatalf("missing spans: sharded=%v band=%v", foundRoot, foundBand)
	}
}

func TestShardedErrors(t *testing.T) {
	ds, src := genNoisy(t, 2, 2)
	pl := truthPlacement(ds)
	_ = ds
	var sb writeSeekBuffer
	if err := ComposeSharded(pl, src, &sb, ShardedOpts{Blend: Blend(99)}); err == nil {
		t.Fatal("unknown blend accepted")
	}
	if err := ComposeSharded(&global.Placement{Grid: pl.Grid}, src, &sb, ShardedOpts{}); err == nil {
		t.Fatal("degenerate placement accepted")
	}
}
