package compose

import (
	"testing"

	"hybridstitch/internal/global"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

func TestViewerMatchesFullCompose(t *testing.T) {
	ds, src := genClean(t, 3, 4)
	pl := truthPlacement(ds)
	full, err := Compose(pl, src, BlendOverlay)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewViewer(pl, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pw, ph := v.PlateBounds()
	if pw != full.W || ph != full.H {
		t.Fatalf("viewer bounds %dx%d vs composite %dx%d", pw, ph, full.W, full.H)
	}
	// Several viewports, including edge-clipping ones, must match the
	// full composite pixel for pixel.
	viewports := [][4]int{
		{0, 0, pw, ph},             // everything
		{10, 10, 40, 30},           // interior
		{pw - 20, ph - 15, 20, 15}, // bottom-right corner
		{pw - 5, 0, 30, 10},        // clips off the right edge
		{0, ph - 3, 10, 20},        // clips off the bottom
	}
	for _, vp := range viewports {
		x0, y0, w, h := vp[0], vp[1], vp[2], vp[3]
		got, err := v.Render(x0, y0, w, h)
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				want := uint16(0)
				if x0+x < pw && y0+y < ph {
					want = full.At(x0+x, y0+y)
				}
				if got.At(x, y) != want {
					t.Fatalf("viewport %v pixel (%d,%d): got %d want %d", vp, x, y, got.At(x, y), want)
				}
			}
		}
	}
}

func TestViewerCacheBounded(t *testing.T) {
	ds, src := genClean(t, 3, 4)
	pl := truthPlacement(ds)
	v, err := NewViewer(pl, src, 3)
	if err != nil {
		t.Fatal(err)
	}
	pw, ph := v.PlateBounds()
	// Sweep the plate; cache must never exceed its bound.
	for x := 0; x < pw-8; x += 16 {
		if _, err := v.Render(x, 0, 8, ph); err != nil {
			t.Fatal(err)
		}
		if v.CacheLen() > 3 {
			t.Fatalf("cache grew to %d (bound 3)", v.CacheLen())
		}
	}
}

func TestViewerScaledAndOverview(t *testing.T) {
	ds, src := genClean(t, 2, 3)
	pl := truthPlacement(ds)
	v, _ := NewViewer(pl, src, 0)
	pw, ph := v.PlateBounds()
	img, err := v.RenderScaled(0, 0, pw, ph, 2)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != (pw+3)/4 && img.W != pw/4 {
		t.Errorf("level-2 width %d from plate %d", img.W, pw)
	}
	ov, level, err := v.Overview(32)
	if err != nil {
		t.Fatal(err)
	}
	if ov.W > 32 || ov.H > 32 {
		t.Errorf("overview %dx%d exceeds 32", ov.W, ov.H)
	}
	if level < 1 {
		t.Errorf("level = %d for a plate larger than 32px", level)
	}
	if _, err := v.RenderScaled(0, 0, 8, 8, -1); err == nil {
		t.Error("negative level should fail")
	}
	if _, _, err := v.Overview(0); err == nil {
		t.Error("zero overview size should fail")
	}
}

func TestViewerErrors(t *testing.T) {
	ds, src := genClean(t, 2, 2)
	pl := truthPlacement(ds)
	if _, err := NewViewer(nil, src, 0); err == nil {
		t.Error("nil placement should fail")
	}
	v, _ := NewViewer(pl, src, 0)
	if _, err := v.Render(0, 0, 0, 5); err == nil {
		t.Error("empty viewport should fail")
	}
}

func TestViewerRegionStats(t *testing.T) {
	ds, src := genClean(t, 2, 2)
	pl := truthPlacement(ds)
	v1, _ := NewViewer(pl, src, 0)
	v2, _ := NewViewer(pl, src, 0)
	ma, mb, ncc, err := v1.TileRegionStats(v2, 2, 2, 30, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ma != mb {
		t.Errorf("same source, different means: %g vs %g", ma, mb)
	}
	if ncc < 0.9999 {
		t.Errorf("self NCC = %g", ncc)
	}
}

func TestSeamScoreDiscriminates(t *testing.T) {
	p := imagegen.DefaultParams(3, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := global.Solve(res, global.Options{RepairOutliers: true})
	if err != nil {
		t.Fatal(err)
	}
	goodRep, err := SeamScore(good, src)
	if err != nil {
		t.Fatal(err)
	}
	if goodRep.Mean < 0.85 {
		t.Errorf("good placement seam score %.3f", goodRep.Mean)
	}
	if goodRep.Evaluated != p.Grid.NumPairs() {
		t.Errorf("evaluated %d of %d pairs", goodRep.Evaluated, p.Grid.NumPairs())
	}

	// Corrupt the placement: shift the right column by 5 px.
	bad := &global.Placement{Grid: good.Grid,
		X: append([]int(nil), good.X...),
		Y: append([]int(nil), good.Y...)}
	for r := 0; r < 3; r++ {
		i := good.Grid.Index(tile.Coord{Row: r, Col: 2})
		bad.X[i] += 5
		bad.Y[i] += 4
	}
	badRep, err := SeamScore(bad, src)
	if err != nil {
		t.Fatal(err)
	}
	if badRep.Mean >= goodRep.Mean-0.05 {
		t.Errorf("corrupted placement scored %.3f vs good %.3f", badRep.Mean, goodRep.Mean)
	}
	if badRep.Worst.Coord.Col != 2 && badRep.Worst.Neighbor().Col != 2 {
		t.Errorf("worst seam %v does not involve the corrupted column", badRep.Worst)
	}
}

func TestSeamScoreErrors(t *testing.T) {
	if _, err := SeamScore(&global.Placement{}, nil); err == nil {
		t.Error("invalid placement should fail")
	}
}
