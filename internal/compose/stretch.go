package compose

import (
	"fmt"
	"sort"

	"hybridstitch/internal/tile"
)

// Stretch applies a percentile contrast stretch: the [loPct, hiPct]
// percentile range of the input maps to the full 16-bit range.
// Microscopy data occupies a narrow band of the 16-bit scale (the paper's
// tiles are dim infrared acquisitions), so raw composites render nearly
// black; a 1–99.5% stretch is the conventional display transform.
func Stretch(img *tile.Gray16, loPct, hiPct float64) (*tile.Gray16, error) {
	if loPct < 0 || hiPct > 100 || loPct >= hiPct {
		return nil, fmt.Errorf("compose: invalid stretch percentiles (%g, %g)", loPct, hiPct)
	}
	if len(img.Pix) == 0 {
		return img.Clone(), nil
	}
	// Percentiles via a 16-bit histogram (exact, O(n + 65536)).
	var hist [65536]int64
	for _, px := range img.Pix {
		hist[px]++
	}
	total := int64(len(img.Pix))
	loCount := int64(loPct / 100 * float64(total))
	hiCount := int64(hiPct / 100 * float64(total))
	var lo, hi uint16
	var cum int64
	seenLo := false
	for v := 0; v < 65536; v++ {
		cum += hist[v]
		if !seenLo && cum > loCount {
			lo = uint16(v)
			seenLo = true
		}
		if cum >= hiCount {
			hi = uint16(v)
			break
		}
	}
	if hi <= lo {
		return img.Clone(), nil // degenerate histogram: nothing to stretch
	}
	out := tile.NewGray16(img.W, img.H)
	scale := 65535.0 / float64(hi-lo)
	for i, px := range img.Pix {
		switch {
		case px <= lo:
			out.Pix[i] = 0
		case px >= hi:
			out.Pix[i] = 65535
		default:
			out.Pix[i] = uint16(float64(px-lo) * scale)
		}
	}
	return out, nil
}

// Percentile returns the p-th percentile pixel value of img (p ∈ [0,100]).
func Percentile(img *tile.Gray16, p float64) uint16 {
	if len(img.Pix) == 0 {
		return 0
	}
	s := append([]uint16(nil), img.Pix...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
