package tileserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hybridstitch/internal/obs"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// seekBuffer is an in-memory io.WriteSeeker.
type seekBuffer struct {
	buf []byte
	pos int64
}

func (s *seekBuffer) Write(p []byte) (int, error) {
	if need := s.pos + int64(len(p)); need > int64(len(s.buf)) {
		grown := make([]byte, need)
		copy(grown, s.buf)
		s.buf = grown
	}
	copy(s.buf[s.pos:], p)
	s.pos += int64(len(p))
	return len(p), nil
}

func (s *seekBuffer) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case 0:
		s.pos = off
	case 1:
		s.pos += off
	case 2:
		s.pos = int64(len(s.buf)) + off
	}
	return s.pos, nil
}

// testPyramid builds an in-memory pyramid. Half the plate is textured,
// half is blank — the blank tiles compress to identical payloads, which
// is what exercises content addressing.
func testPyramid(t testing.TB, w, h int) *tiffio.Pyramid {
	t.Helper()
	img := tile.NewGray16(w, h)
	rng := rand.New(rand.NewSource(1))
	for y := 0; y < h; y++ {
		for x := 0; x < w/2; x++ {
			img.Pix[y*w+x] = uint16(rng.Intn(1 << 16))
		}
	}
	var sb seekBuffer
	pw, err := tiffio.NewPyramidWriter(&sb, w, h, tiffio.PyramidOpts{TileW: 32, TileH: 32, MinSide: 64})
	if err != nil {
		t.Fatal(err)
	}
	cur := img
	for l := 0; l < pw.NumLevels(); l++ {
		if err := pw.WriteRows(l, cur.Pix, cur.H); err != nil {
			t.Fatal(err)
		}
		if l+1 < pw.NumLevels() {
			cur = halve(cur)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := tiffio.OpenPyramid(bytes.NewReader(sb.buf))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func halve(img *tile.Gray16) *tile.Gray16 {
	nw, nh := (img.W+1)/2, (img.H+1)/2
	out := tile.NewGray16(nw, nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			var sum, cnt int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					if 2*x+dx < img.W && 2*y+dy < img.H {
						sum += int(img.At(2*x+dx, 2*y+dy))
						cnt++
					}
				}
			}
			out.Pix[y*nw+x] = uint16((sum + cnt/2) / cnt)
		}
	}
	return out
}

func TestTileCacheHitsAndContentDedup(t *testing.T) {
	p := testPyramid(t, 256, 128)
	s := New(p, Options{})

	// First read: miss. Second read of the same address: hit.
	if _, err := s.Tile(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tile(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	hits, misses, _, _ := s.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}

	// The right half of the plate is blank: distinct addresses, one
	// payload hash — all but the first must be cache hits.
	lv := p.Level(0)
	blankStart := lv.Across / 2
	for ty := 0; ty < lv.Down; ty++ {
		for tx := blankStart; tx < lv.Across; tx++ {
			if _, err := s.Tile(0, tx, ty); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, misses2, _, _ := s.CacheStats()
	if misses2 != 2 { // the textured tile + one blank decode
		t.Fatalf("blank tiles were not content-deduped: %d misses, want 2", misses2)
	}
}

// TestEdgeTileNotDedupedWithInterior pins the cache-key regression on
// plates whose dimensions are not tile multiples: the writer zero-pads
// edge-tile payloads to full TileW×TileH before deflate, so a blank
// interior tile and a blank edge tile have identical payload bytes but
// must decode — and cache — to different dimensions.
func TestEdgeTileNotDedupedWithInterior(t *testing.T) {
	p := testPyramid(t, 256, 100) // 32x32 tiles: bottom row clips to 32x4
	lv := p.Level(0)
	edgeH := lv.H - (lv.Down-1)*lv.TileH
	if edgeH == lv.TileH {
		t.Fatal("test plate height must not be a tile multiple")
	}
	blankTx := lv.Across - 1 // right half of the plate is blank

	// Interior blank first, then the blank edge tile below it.
	s := New(p, Options{})
	interior, err := s.Tile(0, blankTx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if interior.W != lv.TileW || interior.H != lv.TileH {
		t.Fatalf("interior blank tile is %dx%d, want %dx%d", interior.W, interior.H, lv.TileW, lv.TileH)
	}
	edge, err := s.Tile(0, blankTx, lv.Down-1)
	if err != nil {
		t.Fatal(err)
	}
	if edge.W != lv.TileW || edge.H != edgeH {
		t.Fatalf("edge blank tile is %dx%d, want %dx%d", edge.W, edge.H, lv.TileW, edgeH)
	}

	// Reverse order on a fresh server: the clipped decode must not be
	// served at interior addresses either.
	s2 := New(p, Options{})
	if img, err := s2.Tile(0, blankTx, lv.Down-1); err != nil {
		t.Fatal(err)
	} else if img.H != edgeH {
		t.Fatalf("edge-first: edge tile height %d, want %d", img.H, edgeH)
	}
	if img, err := s2.Tile(0, blankTx, 0); err != nil {
		t.Fatal(err)
	} else if img.H != lv.TileH {
		t.Fatalf("edge-first: interior tile height %d, want %d", img.H, lv.TileH)
	}

	// Same-size blank tiles still dedup: interior blanks across the
	// blank half must cost one decode.
	s3 := New(p, Options{})
	for ty := 0; ty < lv.Down-1; ty++ {
		for tx := lv.Across / 2; tx < lv.Across; tx++ {
			if _, err := s3.Tile(0, tx, ty); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, misses, _, _ := s3.CacheStats()
	if misses != 1 {
		t.Fatalf("interior blank tiles not deduped: %d misses, want 1", misses)
	}
}

func TestCacheEviction(t *testing.T) {
	p := testPyramid(t, 256, 128)
	lv := p.Level(0)
	tileCost := int64(lv.TileW * lv.TileH * 2)
	// Budget for exactly two decoded tiles.
	s := New(p, Options{CacheBytes: 2 * tileCost})

	// Touch three distinct textured tiles (left half is random, so all
	// payloads differ): the first must be evicted.
	for tx := 0; tx < 3; tx++ {
		if _, err := s.Tile(0, tx%2, tx); err != nil { // tx varies ty too
			t.Fatal(err)
		}
	}
	_, _, evictions, bytes := s.CacheStats()
	if evictions == 0 {
		t.Fatal("no evictions with a 2-tile budget and 3 distinct tiles")
	}
	if bytes > 2*tileCost {
		t.Fatalf("cache holds %d bytes, budget %d", bytes, 2*tileCost)
	}
}

func TestConcurrentTileReads(t *testing.T) {
	// Hammer the cache from many goroutines under -race: every tile of
	// every level, many times over, with a budget small enough to force
	// constant eviction alongside the hits.
	p := testPyramid(t, 256, 128)
	lv := p.Level(0)
	s := New(p, Options{CacheBytes: 4 * int64(lv.TileW*lv.TileH*2)})

	want, err := p.Image(0)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				tx, ty := rng.Intn(lv.Across), rng.Intn(lv.Down)
				img, err := s.Tile(0, tx, ty)
				if err != nil {
					errs <- err
					return
				}
				// Spot-check one pixel against the assembled level.
				x, y := tx*lv.TileW, ty*lv.TileH
				if img.At(0, 0) != want.At(x, y) {
					errs <- fmt.Errorf("tile (%d,%d) pixel mismatch", tx, ty)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses, _, bytes := s.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("hits=%d misses=%d: expected both under contention", hits, misses)
	}
	if bytes > s.budget {
		t.Fatalf("cache bytes %d exceed budget %d", bytes, s.budget)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	p := testPyramid(t, 256, 128)
	rec := obs.New()
	s := New(p, Options{Rec: rec})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// /info describes every level.
	resp, err := http.Get(ts.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Levels []struct {
			W, H   int
			Across int
			Down   int
		} `json:"levels"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(info.Levels) != p.NumLevels() || info.Levels[0].W != 256 {
		t.Fatalf("bad /info: %+v", info)
	}

	// /tile returns a decodable PNG of the right size.
	resp, err = http.Get(ts.URL + "/tile/0/0/0")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content-type %q", ct)
	}
	img, err := png.Decode(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if b := img.Bounds(); b.Dx() != 32 || b.Dy() != 32 {
		t.Fatalf("tile PNG is %dx%d, want 32x32", b.Dx(), b.Dy())
	}

	// Out-of-range and malformed addresses reject without panicking.
	for _, path := range []string{"/tile/9/0/0", "/tile/0/99/0", "/tile/0/x/0"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s returned 200", path)
		}
	}

	snap := rec.Snapshot()
	if snap.Counters[obs.CounterServeTileMisses] == 0 {
		t.Fatal("serve.tile.misses not recorded")
	}
	if snap.Counters[obs.CounterServeTileErrors] == 0 {
		t.Fatal("serve.tile.errors not recorded")
	}
	if snap.Histograms[obs.HistServeTileSeconds].Count == 0 {
		t.Fatal("serve.tile.seconds not recorded")
	}
}
