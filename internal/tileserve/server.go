// Package tileserve is the read-heavy half of the production story the
// paper's future-work section sketches (stitch once, serve millions):
// an HTTP deep-zoom tile server over a stitched pyramid file. Requests
// address tiles as /tile/{level}/{tx}/{ty}; decoding goes through a
// content-addressed LRU keyed on the hash of the stored (compressed)
// payload plus the decoded dimensions, so identical same-size payloads
// — blank agar around the colonies deflates to identical bytes — share
// one cache entry no matter how many tile addresses they appear at,
// while edge tiles (clipped smaller on decode) stay distinct.
package tileserve

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hybridstitch/internal/obs"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
)

// Options configures a Server.
type Options struct {
	// CacheBytes bounds the decoded-tile LRU (default 64 MiB). Entry
	// cost is the decoded pixel size, not the compressed payload.
	CacheBytes int64
	// Rec records serve.tile.* counters, the latency histogram, and the
	// cache-size gauge (nil skips recording).
	Rec *obs.Recorder
}

// cacheKey is the content address of a decoded tile: the SHA-256 of the
// stored payload bytes plus the decoded dimensions. The dimensions are
// part of the key because edge-tile payloads are zero-padded to the full
// TileW×TileH before compression but decode clipped to the level bounds,
// so a blank interior tile and a blank edge tile share payload bytes yet
// decode to different images.
type cacheKey struct {
	sum  [sha256.Size]byte
	w, h int
}

type cacheEntry struct {
	key  cacheKey
	img  *tile.Gray16
	cost int64
}

// flightCall is one in-progress decode other requesters wait on
// (singleflight: N concurrent misses on one key decode once).
type flightCall struct {
	done chan struct{}
	img  *tile.Gray16
	err  error
}

// Server serves deep-zoom tiles from a pyramid with a bounded
// content-addressed decode cache. Safe for concurrent use.
type Server struct {
	pyr *tiffio.Pyramid

	mu       sync.Mutex
	lru      *list.List // front = most recent; values are *cacheEntry
	byKey    map[cacheKey]*list.Element
	inflight map[cacheKey]*flightCall
	bytes    int64
	budget   int64

	hits, misses, evictions int64

	cHits, cMisses, cEvict, cErrors *obs.Counter
	hLatency                        *obs.Histogram
	gBytes                          *obs.Gauge

	mux *http.ServeMux
}

// New builds a server over an opened pyramid.
func New(pyr *tiffio.Pyramid, opts Options) *Server {
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 64 << 20
	}
	s := &Server{
		pyr:      pyr,
		lru:      list.New(),
		byKey:    make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*flightCall),
		budget:   opts.CacheBytes,
		cHits:    opts.Rec.Counter(obs.CounterServeTileHits),
		cMisses:  opts.Rec.Counter(obs.CounterServeTileMisses),
		cEvict:   opts.Rec.Counter(obs.CounterServeTileEvictions),
		cErrors:  opts.Rec.Counter(obs.CounterServeTileErrors),
		hLatency: opts.Rec.Histogram(obs.HistServeTileSeconds),
		gBytes:   opts.Rec.Gauge(obs.GaugeServeCacheBytes),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /info", s.handleInfo)
	s.mux.HandleFunc("GET /tile/{level}/{tx}/{ty}", s.handleTile)
	return s
}

// Tile returns the decoded tile at (level, tx, ty), through the cache.
func (s *Server) Tile(level, tx, ty int) (*tile.Gray16, error) {
	payload, err := s.pyr.TilePayload(level, tx, ty)
	if err != nil {
		return nil, err
	}
	// TilePayload validated the address, so Level and the clip math are
	// in range here.
	lv := s.pyr.Level(level)
	key := cacheKey{
		sum: sha256.Sum256(payload),
		w:   min(lv.TileW, lv.W-tx*lv.TileW),
		h:   min(lv.TileH, lv.H-ty*lv.TileH),
	}

	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		s.mu.Unlock()
		s.cHits.Add(1)
		return el.Value.(*cacheEntry).img, nil
	}
	if fc, ok := s.inflight[key]; ok {
		// Another goroutine is decoding this content; wait for it. A
		// follower counts as a hit: the content was decoded once.
		s.mu.Unlock()
		<-fc.done
		if fc.err != nil {
			return nil, fc.err
		}
		s.mu.Lock()
		if el, ok := s.byKey[key]; ok {
			s.lru.MoveToFront(el)
		}
		s.hits++
		s.mu.Unlock()
		s.cHits.Add(1)
		return fc.img, nil
	}
	fc := &flightCall{done: make(chan struct{})}
	s.inflight[key] = fc
	s.mu.Unlock()

	img, err := s.pyr.DecodePayload(level, tx, ty, payload)
	fc.img, fc.err = img, err

	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		s.insertLocked(key, img)
		s.misses++
	}
	cacheBytes := s.bytes
	s.mu.Unlock()
	close(fc.done)
	if err != nil {
		return nil, err
	}
	s.cMisses.Add(1)
	s.gBytes.Set(float64(cacheBytes))
	return img, nil
}

// insertLocked adds a decoded tile and evicts from the cold end until
// the budget holds. Call with s.mu held.
func (s *Server) insertLocked(key cacheKey, img *tile.Gray16) {
	if _, ok := s.byKey[key]; ok {
		return // raced with another decode of identical content
	}
	cost := int64(len(img.Pix) * 2)
	el := s.lru.PushFront(&cacheEntry{key: key, img: img, cost: cost})
	s.byKey[key] = el
	s.bytes += cost
	for s.bytes > s.budget && s.lru.Len() > 1 {
		cold := s.lru.Back()
		ce := cold.Value.(*cacheEntry)
		s.lru.Remove(cold)
		delete(s.byKey, ce.key)
		s.bytes -= ce.cost
		s.evictions++
		s.cEvict.Add(1)
	}
}

// CacheStats reports cache behavior for tests and the experiments
// report.
func (s *Server) CacheStats() (hits, misses, evictions, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions, s.bytes
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// levelInfo is one entry of the /info response.
type levelInfo struct {
	Level  int `json:"level"`
	W      int `json:"w"`
	H      int `json:"h"`
	TileW  int `json:"tile_w"`
	TileH  int `json:"tile_h"`
	Across int `json:"across"`
	Down   int `json:"down"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	infos := make([]levelInfo, s.pyr.NumLevels())
	for l := range infos {
		lv := s.pyr.Level(l)
		infos[l] = levelInfo{Level: l, W: lv.W, H: lv.H, TileW: lv.TileW, TileH: lv.TileH, Across: lv.Across, Down: lv.Down}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Levels []levelInfo `json:"levels"`
	}{infos})
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	level, err1 := strconv.Atoi(r.PathValue("level"))
	tx, err2 := strconv.Atoi(r.PathValue("tx"))
	ty, err3 := strconv.Atoi(r.PathValue("ty"))
	if err1 != nil || err2 != nil || err3 != nil {
		s.cErrors.Add(1)
		http.Error(w, "tile address must be numeric", http.StatusBadRequest)
		return
	}
	img, err := s.Tile(level, tx, ty)
	if err != nil {
		s.cErrors.Add(1)
		// Address-range errors are the client's fault; corrupt pyramids
		// and I/O failures are ours and must not read as "tile missing"
		// to clients or monitoring.
		status := http.StatusNotFound
		if errors.Is(err, tiffio.ErrCorrupt) {
			status = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), status)
		return
	}
	gray := image.NewGray16(image.Rect(0, 0, img.W, img.H))
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			gray.SetGray16(x, y, color.Gray16{Y: img.At(x, y)})
		}
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if err := png.Encode(w, gray); err != nil {
		// Headers are gone; nothing to do but record it.
		s.cErrors.Add(1)
		return
	}
	s.hLatency.ObserveDuration(time.Since(start))
}

// ServePyramidFile opens the pyramid at path and serves it on addr,
// blocking. The plateview CLI's -serve mode is this.
func ServePyramidFile(path, addr string, opts Options) error {
	pf, err := tiffio.OpenPyramidFile(path)
	if err != nil {
		return fmt.Errorf("tileserve: %w", err)
	}
	defer pf.Close()
	return http.ListenAndServe(addr, New(pf.Pyramid, opts))
}
