package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if err := in.Hit("any.site", "detail"); err != nil {
			t.Fatal(err)
		}
	}
	if in.Fired() != 0 {
		t.Error("nil injector fired")
	}
}

func TestNthAndCount(t *testing.T) {
	in := NewInjector(Rule{Site: "s", Nth: 3, Count: 2})
	var fails []int
	for i := 1; i <= 6; i++ {
		if err := in.Hit("s", ""); err != nil {
			fails = append(fails, i)
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Hit != int64(i) {
				t.Errorf("hit %d: bad error %v", i, err)
			}
		}
	}
	if len(fails) != 2 || fails[0] != 3 || fails[1] != 4 {
		t.Errorf("fired on hits %v, want [3 4]", fails)
	}
	if in.Fired() != 2 {
		t.Errorf("Fired = %d", in.Fired())
	}
}

func TestAlwaysWithMatch(t *testing.T) {
	in := NewInjector(Rule{Site: "read", Match: "r002", Always: true})
	if err := in.Hit("read", "tile_r001_c000.tif"); err != nil {
		t.Errorf("non-matching detail fired: %v", err)
	}
	if err := in.Hit("read", "tile_r002_c003.tif"); err == nil {
		t.Error("matching detail did not fire")
	}
	if err := in.Hit("read", "tile_r002_c003.tif"); err == nil {
		t.Error("always rule must fire every time")
	}
	if err := in.Hit("other", "tile_r002_c003.tif"); err != nil {
		t.Errorf("wrong site fired: %v", err)
	}
}

func TestProbDeterministicAcrossInjectors(t *testing.T) {
	sequence := func() []bool {
		in := NewInjector(Rule{Site: "p", Prob: 0.3, Seed: 99})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Hit("p", "") != nil
		}
		return out
	}
	a, b := sequence(), sequence()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d diverged between identically seeded injectors", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob=0.3 fired %d/%d times", fired, len(a))
	}
}

func TestInjectorConcurrentHits(t *testing.T) {
	in := NewInjector(Rule{Site: "c", Nth: 1, Count: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if in.Hit("c", "") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 10 {
		t.Errorf("fired %d times under concurrency, want exactly 10", fired)
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("tiffio.read:nth=5,count=2; gpu.kernel.fft:prob=0.5,seed=7; tiffio.read@r002:always,err=disk gone")
	if err != nil {
		t.Fatal(err)
	}
	// nth=5,count=2 on generic reads.
	fails := 0
	for i := 0; i < 8; i++ {
		if in.Hit("tiffio.read", "tile_r000_c000.tif") != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("nth rule fired %d times, want 2", fails)
	}
	// always rule with match and custom message.
	err = in.Hit("tiffio.read", "tile_r002_c001.tif")
	if err == nil {
		t.Fatal("match rule did not fire")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Msg != "disk gone" {
		t.Errorf("err = %v", err)
	}
	if !IsInjected(err) {
		t.Error("IsInjected false for injected error")
	}
}

func TestParseSpecEmptyAndErrors(t *testing.T) {
	if in, err := ParseSpec("   "); err != nil || in != nil {
		t.Errorf("empty spec: %v, %v", in, err)
	}
	for _, bad := range []string{
		"noseparator",
		":nth=1",
		"s:nth=0",
		"s:prob=2",
		"s:count=3", // needs nth/always/prob
		"s:wat=1",
		"s:nth=x",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

func TestRetrierAbsorbsTransients(t *testing.T) {
	calls := 0
	err := Retrier{MaxRetries: 3}.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetrierExhaustsAndAnnotates(t *testing.T) {
	base := errors.New("still down")
	calls := 0
	err := Retrier{MaxRetries: 2}.Do(func() error { calls++; return base })
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Errorf("err %v lost the cause chain", err)
	}
	if want := "after 3 attempts"; err == nil || !contains(err.Error(), want) {
		t.Errorf("err %v missing %q", err, want)
	}
}

func TestRetrierStopsOnPermanent(t *testing.T) {
	calls := 0
	base := errors.New("corrupt")
	err := Retrier{MaxRetries: 5}.Do(func() error { calls++; return Permanent(base) })
	if calls != 1 {
		t.Errorf("permanent error retried %d times", calls-1)
	}
	if !IsPermanent(err) || !errors.Is(err, base) {
		t.Errorf("err = %v", err)
	}
}

func TestRetrierBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	r := Retrier{
		MaxRetries: 3,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 25 * time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	_ = r.Do(func() error { return errors.New("x") })
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v", slept)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) should stay nil")
	}
	if IsPermanent(errors.New("plain")) {
		t.Error("plain error marked permanent")
	}
}

func TestInjectedErrorFormat(t *testing.T) {
	e := &InjectedError{Site: "gpu.alloc", Detail: "GPU0", Hit: 4}
	if !contains(e.Error(), "gpu.alloc") || !contains(e.Error(), "GPU0") {
		t.Errorf("Error() = %q", e.Error())
	}
	e2 := &InjectedError{Site: "s", Hit: 1, Msg: "boom"}
	if !contains(e2.Error(), "boom") {
		t.Errorf("Error() = %q", e2.Error())
	}
	if fmt.Sprintf("%v", e2) == "" {
		t.Error("empty format")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
