package fault

import (
	"sort"
	"strings"
)

// This file is the fault-site registry: the single authoritative list of
// error-point names the injector can be asked to fire on. Components must
// pass one of these constants (or a KernelSite-derived name) to
// Injector.Hit; the stitchlint faultsite analyzer enforces that at build
// time, so a typo'd site — which would otherwise silently never fire —
// is a lint error instead of a dead rule in a long unattended run.

// Registered fault sites. Every Hit call site in the tree names one of
// these (directly or via KernelSite).
const (
	// SiteTiffRead fires on TIFF tile decodes (detail: file path).
	SiteTiffRead = "tiffio.read"
	// SiteGPUAlloc fires on device-pool allocations (detail: device name).
	SiteGPUAlloc = "gpu.alloc"
	// SiteGPUAllocSpectrum fires on half-spectrum (r2c) buffer
	// allocations (detail: device name). These also pass through
	// SiteGPUAlloc, so generic allocation rules still cover them; this
	// site lets a spec target the real-FFT path specifically.
	SiteGPUAllocSpectrum = "gpu.alloc.spectrum"
	// SiteGPUFreeSpectrum fires when a half-spectrum buffer is freed
	// (detail: device name). A fault here leaves the buffer allocated.
	SiteGPUFreeSpectrum = "gpu.free.spectrum"
	// SiteGPUCopyH2D fires on host→device copies (detail: stream/op).
	SiteGPUCopyH2D = "gpu.copy.h2d"
	// SiteGPUCopyD2H fires on device→host copies (detail: stream/op).
	SiteGPUCopyD2H = "gpu.copy.d2h"
	// SiteGPUKernelFFT fires on forward/inverse FFT kernel launches.
	SiteGPUKernelFFT = "gpu.kernel.fft"
	// SiteGPUKernelNCC fires on NCC kernel launches.
	SiteGPUKernelNCC = "gpu.kernel.ncc"
	// SiteGPUKernelReduce fires on max-reduction kernel launches.
	SiteGPUKernelReduce = "gpu.kernel.reduce"
	// SiteStitchRead fires on stitch-layer tile reads (detail: rRRR_cCCC).
	SiteStitchRead = "stitch.read"
	// SiteStitchFFT fires on stitch-layer forward transforms.
	SiteStitchFFT = "stitch.fft"
	// SitePCIAMNCC fires on pair displacement computations.
	SitePCIAMNCC = "pciam.ncc"
)

// kernelSitePrefix is the namespace for dynamically named kernel sites.
const kernelSitePrefix = "gpu.kernel."

// KernelSite returns the fault site for a named device kernel. The three
// paper kernels have dedicated constants (SiteGPUKernelFFT/NCC/Reduce);
// this covers auxiliary kernels (scale, checkfinite, p2p, …) without
// requiring a registry entry per kernel.
func KernelSite(name string) string { return kernelSitePrefix + name }

// Sites lists every registered site, in stable order. The stitchlint
// faultsite analyzer and spec validation both consume it.
func Sites() []string {
	return []string{
		SiteTiffRead,
		SiteGPUAlloc,
		SiteGPUAllocSpectrum,
		SiteGPUFreeSpectrum,
		SiteGPUCopyH2D,
		SiteGPUCopyD2H,
		SiteGPUKernelFFT,
		SiteGPUKernelNCC,
		SiteGPUKernelReduce,
		SiteStitchRead,
		SiteStitchFFT,
		SitePCIAMNCC,
	}
}

// KnownSite reports whether s is a registered site or a dynamic kernel
// site under the gpu.kernel. namespace.
func KnownSite(s string) bool {
	for _, k := range Sites() {
		if s == k {
			return true
		}
	}
	return strings.HasPrefix(s, kernelSitePrefix) && len(s) > len(kernelSitePrefix)
}

// RuleSites returns the distinct site names the injector's rules watch,
// in first-seen order. CLI front ends use it to warn about spec rules
// naming unregistered sites (which would never fire). A nil receiver
// returns nil.
func (in *Injector) RuleSites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	seen := make(map[string]bool, len(in.rules))
	var out []string
	for site := range in.rules {
		if !seen[site] {
			seen[site] = true
			out = append(out, site)
		}
	}
	sort.Strings(out)
	return out
}
