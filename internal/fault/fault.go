// Package fault is a deterministic, seedable fault-injection layer for
// the stitching system. Components expose named error points ("sites") —
// tiffio.read, gpu.alloc, gpu.kernel.fft, pciam.ncc, … — and an Injector
// decides, per hit, whether the operation fails. Rules fire on the Nth
// hit of a site (optionally for a run of consecutive hits), always, or
// with seeded probability, and can be restricted to operations whose
// detail string contains a substring (e.g. one tile's file name). The
// package also provides the bounded Retrier the stitching variants use
// to absorb transient failures before degrading a tile or pair.
//
// A nil *Injector is the production configuration: every site check is a
// single nil comparison, so injection points cost nothing on the hot
// path when no fault spec is installed.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// InjectedError is the error surfaced at a firing site. It carries the
// site, the operation detail, and the hit ordinal so degraded-run
// reports can name the exact failure.
type InjectedError struct {
	Site   string
	Detail string
	Hit    int64
	Msg    string
}

// Error implements error.
func (e *InjectedError) Error() string {
	msg := e.Msg
	if msg == "" {
		msg = "injected fault"
	}
	if e.Detail == "" {
		return fmt.Sprintf("fault: %s at %s (hit %d)", msg, e.Site, e.Hit)
	}
	return fmt.Sprintf("fault: %s at %s [%s] (hit %d)", msg, e.Site, e.Detail, e.Hit)
}

// IsInjected reports whether err chains to an InjectedError.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// permanentError marks an error that retrying can never fix (corrupt
// input, invalid geometry). Retrier stops immediately on these.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retrier will not retry it. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent anywhere in
// its chain.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Rule is one error point configuration.
type Rule struct {
	// Site is the exact site name the rule watches.
	Site string
	// Match, if non-empty, restricts the rule to hits whose detail
	// string contains it (e.g. a tile file name).
	Match string
	// Nth fires the rule on the Nth matching hit (1-based).
	Nth int64
	// Count extends Nth to a run of consecutive hits [Nth, Nth+Count-1].
	// Zero means 1. Ignored when Always or Prob is set.
	Count int64
	// Always fires on every matching hit — a permanent fault.
	Always bool
	// Prob fires each matching hit independently with this probability,
	// drawn from the rule's seeded generator.
	Prob float64
	// Seed seeds the Prob generator (defaults to a hash of Site).
	Seed int64
	// Msg overrides the injected error message.
	Msg string
}

// ruleState is a Rule plus its runtime counters.
type ruleState struct {
	Rule
	hits int64
	rng  *rand.Rand
}

// Injector evaluates rules at error points. Safe for concurrent use; a
// nil Injector never fires.
type Injector struct {
	mu    sync.Mutex
	rules map[string][]*ruleState
	fired int64
}

// NewInjector builds an injector from rules.
func NewInjector(rules ...Rule) *Injector {
	in := &Injector{rules: make(map[string][]*ruleState)}
	for _, r := range rules {
		if r.Count <= 0 {
			r.Count = 1
		}
		st := &ruleState{Rule: r}
		if r.Prob > 0 {
			seed := r.Seed
			if seed == 0 {
				seed = int64(len(r.Site)) + 7919
				for _, c := range r.Site {
					seed = seed*131 + int64(c)
				}
			}
			st.rng = rand.New(rand.NewSource(seed))
		}
		in.rules[r.Site] = append(in.rules[r.Site], st)
	}
	return in
}

// Hit evaluates site with an operation detail string. It returns an
// *InjectedError if a rule fires, nil otherwise. A nil receiver returns
// nil immediately, keeping uninstrumented runs free.
func (in *Injector) Hit(site, detail string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, st := range in.rules[site] {
		if st.Match != "" && !strings.Contains(detail, st.Match) {
			continue
		}
		st.hits++
		fire := false
		switch {
		case st.Always:
			fire = true
		case st.Prob > 0:
			fire = st.rng.Float64() < st.Prob
		case st.Nth > 0:
			fire = st.hits >= st.Nth && st.hits < st.Nth+st.Count
		}
		if fire {
			in.fired++
			return &InjectedError{Site: site, Detail: detail, Hit: st.hits, Msg: st.Msg}
		}
	}
	return nil
}

// Fired reports how many faults the injector has raised.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// ParseSpec parses a fault specification string into an Injector. The
// grammar is semicolon-separated rules of the form
//
//	site[@match]:directive[,directive...]
//
// with directives
//
//	nth=N        fire on the Nth matching hit (1-based)
//	count=K      with nth, fire on K consecutive hits
//	always       fire on every matching hit (permanent fault)
//	prob=P       fire each hit with probability P
//	seed=S       seed for prob mode
//	err=MSG      error message override
//
// Examples:
//
//	tiffio.read:nth=5,count=2
//	tiffio.read@tile_r002_c003:always
//	gpu.kernel.fft:prob=0.01,seed=42
//
// An empty spec yields a nil Injector (all sites free).
func ParseSpec(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		colon := strings.Index(clause, ":")
		if colon <= 0 {
			return nil, fmt.Errorf("fault: rule %q missing site:directive separator", clause)
		}
		r := Rule{Site: clause[:colon]}
		if at := strings.Index(r.Site, "@"); at >= 0 {
			r.Match = r.Site[at+1:]
			r.Site = r.Site[:at]
		}
		if r.Site == "" {
			return nil, fmt.Errorf("fault: rule %q has an empty site", clause)
		}
		for _, dir := range strings.Split(clause[colon+1:], ",") {
			dir = strings.TrimSpace(dir)
			if dir == "" {
				continue
			}
			key, val := dir, ""
			if eq := strings.Index(dir, "="); eq >= 0 {
				key, val = dir[:eq], dir[eq+1:]
			}
			var err error
			switch key {
			case "nth":
				r.Nth, err = strconv.ParseInt(val, 10, 64)
				if err == nil && r.Nth < 1 {
					err = fmt.Errorf("nth must be >= 1")
				}
			case "count":
				r.Count, err = strconv.ParseInt(val, 10, 64)
				if err == nil && r.Count < 1 {
					err = fmt.Errorf("count must be >= 1")
				}
			case "always":
				r.Always = true
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Prob <= 0 || r.Prob > 1) {
					err = fmt.Errorf("prob must be in (0, 1]")
				}
			case "seed":
				r.Seed, err = strconv.ParseInt(val, 10, 64)
			case "err":
				r.Msg = val
			default:
				err = fmt.Errorf("unknown directive %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: %v", clause, err)
			}
		}
		if !r.Always && r.Nth == 0 && r.Prob == 0 {
			return nil, fmt.Errorf("fault: rule %q needs one of nth, always, prob", clause)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return NewInjector(rules...), nil
}
