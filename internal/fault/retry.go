package fault

import (
	"fmt"
	"time"
)

// Retrier runs operations with bounded retry and exponential backoff.
// The zero value runs the operation exactly once (no retries, no
// sleeping), which is the production default until a retry policy is
// configured.
type Retrier struct {
	// MaxRetries is the number of re-attempts after the first failure;
	// an operation therefore runs at most MaxRetries+1 times.
	MaxRetries int
	// Backoff is the delay before the first retry; it doubles per
	// attempt. Zero disables sleeping entirely (the deterministic-test
	// configuration — no test may synchronize via time.Sleep).
	Backoff time.Duration
	// MaxBackoff caps the doubled delay. Zero means uncapped.
	MaxBackoff time.Duration
	// Sleep replaces time.Sleep (test hook). Nil uses time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, if set, is called before each re-attempt with the number
	// of the attempt that just failed (0-based). The observability layer
	// hangs its retry counter here so every instrumented site counts
	// retries without threading a recorder through each call.
	OnRetry func(attempt int)
}

// Do runs op, retrying failures up to the policy limit. Errors marked
// with Permanent stop immediately. The returned error is the last
// attempt's, annotated with the attempt count when retries happened.
func (r Retrier) Do(op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if IsPermanent(err) || attempt >= r.MaxRetries {
			break
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt)
		}
		if r.Backoff > 0 {
			d := r.Backoff << uint(attempt)
			if r.MaxBackoff > 0 && d > r.MaxBackoff {
				d = r.MaxBackoff
			}
			sleep := r.Sleep
			if sleep == nil {
				sleep = time.Sleep
			}
			sleep(d)
		}
	}
	if r.MaxRetries > 0 && !IsPermanent(err) {
		return fmt.Errorf("after %d attempts: %w", r.MaxRetries+1, err)
	}
	return err
}
