package global

import (
	"math"
	"testing"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

func TestFitLinearExact(t *testing.T) {
	// Observations generated from v = 3 + 2·row − 1·col must be
	// recovered exactly.
	var rows, cols []int
	var vals []float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			rows = append(rows, r)
			cols = append(cols, c)
			vals = append(vals, 3+2*float64(r)-1*float64(c))
		}
	}
	f := fitLinear(rows, cols, vals)
	if math.Abs(f.A-3) > 1e-9 || math.Abs(f.B-2) > 1e-9 || math.Abs(f.C+1) > 1e-9 {
		t.Errorf("fit = %+v, want A=3 B=2 C=-1", f)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	// All observations at the same point: falls back to the mean.
	f := fitLinear([]int{1, 1}, []int{2, 2}, []float64{10, 14})
	if math.Abs(f.A-12) > 1e-9 || f.B != 0 || f.C != 0 {
		t.Errorf("degenerate fit = %+v", f)
	}
	if f := fitLinear(nil, nil, nil); f.A != 0 {
		t.Errorf("empty fit = %+v", f)
	}
}

func TestStageModelCapturesThermalDrift(t *testing.T) {
	// A drifting stage: west dx grows ~1.5 px per row. The linear model
	// must predict each row's displacement where the median cannot.
	p := imagegen.DefaultParams(6, 4, 128, 96)
	p.ThermalDrift = 1.5
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res := resultFromTruth(ds)
	sm := FitStageModel(res, 0.5)
	if sm.ConfidentWest == 0 || sm.ConfidentNorth == 0 {
		t.Fatal("no confident pairs")
	}
	// The fitted row slope of west-x must be ≈ the drift.
	if math.Abs(sm.WestX.B-1.5) > 0.5 {
		t.Errorf("west-x row slope %.2f, want ≈1.5", sm.WestX.B)
	}
	// Prediction error per pair bounded by jitter; the constant median
	// would be off by up to drift·rows/2 ≈ 4.5 px at the extremes.
	maxErr := 0
	for _, pr := range p.Grid.Pairs() {
		want := ds.TrueDisplacement(pr)
		got := sm.Predict(pr)
		if e := absInt(got.X - want.X); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 2*p.MaxJitter {
		t.Errorf("max stage-model error %d px exceeds jitter bound", maxErr)
	}
}

func TestStageModelRefinementUnderDrift(t *testing.T) {
	// End to end: corrupt a far-row pair and repair with the
	// linear-stage-model-seeded CCF search.
	p := imagegen.DefaultParams(6, 4, 128, 96)
	p.ThermalDrift = 1.5
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := tile.Pair{Coord: tile.Coord{Row: 5, Col: 2}, Dir: tile.West}
	setPair(res, pr, tile.Displacement{X: 0, Y: 0, Corr: 0.05})
	if _, err := RefineResult(res, src, RefineOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _ := res.PairDisplacement(pr)
	want := ds.TrueDisplacement(pr)
	if absInt(got.X-want.X) > 1 || absInt(got.Y-want.Y) > 1 {
		t.Errorf("refined to (%d,%d), truth (%d,%d)", got.X, got.Y, want.X, want.Y)
	}
}
