package global

import (
	"math"
	"sort"

	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// StageModel is a per-direction linear model of the mechanical stage:
// each displacement component is a + b·row + c·col. The constant term
// captures the preset overlap; the linear terms capture systematic
// errors — thermal expansion over the scan (row-dependent stride) and
// camera-axis skew — that a constant (median) model cannot represent.
// MIST fits exactly this kind of model to repair unreliable translations.
type StageModel struct {
	// WestX, WestY, NorthX, NorthY are the four fitted components.
	WestX, WestY, NorthX, NorthY LinearFit
	// Confident counts the pairs that informed the fit per direction.
	ConfidentWest, ConfidentNorth int
}

// LinearFit is v(row, col) = A + B·row + C·col.
type LinearFit struct {
	A, B, C float64
}

// At evaluates the fit.
func (f LinearFit) At(row, col int) float64 {
	return f.A + f.B*float64(row) + f.C*float64(col)
}

// fitLinear solves the 3-parameter least squares over observations
// (row, col, v) via the normal equations. With fewer than 3 distinct
// observations (or a singular system) it degrades to the mean.
func fitLinear(rows, cols []int, vals []float64) LinearFit {
	n := float64(len(vals))
	if n == 0 {
		return LinearFit{}
	}
	// Accumulate the symmetric normal matrix for basis (1, row, col).
	var s1, sr, sc, srr, scc, src float64
	var sv, svr, svc float64
	for i := range vals {
		r := float64(rows[i])
		c := float64(cols[i])
		v := vals[i]
		s1++
		sr += r
		sc += c
		srr += r * r
		scc += c * c
		src += r * c
		sv += v
		svr += v * r
		svc += v * c
	}
	// Solve the 3x3 system [s1 sr sc; sr srr src; sc src scc]·x = [sv svr svc]
	// by Cramer's rule.
	det := s1*(srr*scc-src*src) - sr*(sr*scc-src*sc) + sc*(sr*src-srr*sc)
	if math.Abs(det) < 1e-9 {
		return LinearFit{A: sv / n}
	}
	detA := sv*(srr*scc-src*src) - sr*(svr*scc-src*svc) + sc*(svr*src-srr*svc)
	detB := s1*(svr*scc-svc*src) - sv*(sr*scc-src*sc) + sc*(sr*svc-svr*sc)
	detC := s1*(srr*svc-src*svr) - sr*(sr*svc-svr*sc) + sv*(sr*src-srr*sc)
	return LinearFit{A: detA / det, B: detB / det, C: detC / det}
}

// FitStageModel fits the linear stage model to the confident pairs of a
// phase-1 result.
func FitStageModel(res *stitch.Result, minCorr float64) StageModel {
	if minCorr == 0 {
		minCorr = 0.5
	}
	g := res.Grid
	var wr, wc []int
	var wx, wy []float64
	var nr, nc []int
	var nx, ny []float64
	for _, p := range g.Pairs() {
		d, ok := res.PairDisplacement(p)
		if !ok || d.Corr < minCorr {
			continue
		}
		if p.Dir == tile.West {
			wr = append(wr, p.Coord.Row)
			wc = append(wc, p.Coord.Col)
			wx = append(wx, float64(d.X))
			wy = append(wy, float64(d.Y))
		} else {
			nr = append(nr, p.Coord.Row)
			nc = append(nc, p.Coord.Col)
			nx = append(nx, float64(d.X))
			ny = append(ny, float64(d.Y))
		}
	}
	return StageModel{
		WestX: robustFit(wr, wc, wx), WestY: robustFit(wr, wc, wy),
		NorthX: robustFit(nr, nc, nx), NorthY: robustFit(nr, nc, ny),
		ConfidentWest: len(wx), ConfidentNorth: len(nx),
	}
}

// robustFit guards the linear fit two ways. Small samples (or no spread
// in row/col) would let three parameters fit the jitter noise exactly
// and extrapolate wildly, so they use the constant (median) model. Larger
// samples get a trimmed refit: fit, discard observations whose residual
// exceeds a robust threshold (confidently-wrong phase-1 displacements
// slip past the correlation filter), fit again.
func robustFit(rows, cols []int, vals []float64) LinearFit {
	const minObs = 8
	if len(vals) < minObs || distinct(rows) < 3 || distinct(cols) < 3 {
		return LinearFit{A: medianF(vals)}
	}
	// Trim against the constant median model first — it is already
	// robust, so grossly wrong observations (residual ≈ the whole
	// displacement) are excluded before they can tilt the plane; two
	// more rounds against the improving linear fit then sharpen the set.
	fit := LinearFit{A: medianF(vals)}
	for round := 0; round < 3; round++ {
		resid := make([]float64, len(vals))
		for i := range vals {
			resid[i] = math.Abs(vals[i] - fit.At(rows[i], cols[i]))
		}
		thresh := 3*medianF(resid) + 3
		var kr, kc []int
		var kv []float64
		for i := range vals {
			if resid[i] <= thresh {
				kr = append(kr, rows[i])
				kc = append(kc, cols[i])
				kv = append(kv, vals[i])
			}
		}
		if len(kv) < minObs || distinct(kr) < 3 || distinct(kc) < 3 {
			return LinearFit{A: medianF(vals)}
		}
		fit = fitLinear(kr, kc, kv)
	}
	return fit
}

func distinct(xs []int) int {
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Predict returns the model's displacement for a pair.
func (sm StageModel) Predict(p tile.Pair) tile.Displacement {
	r, c := p.Coord.Row, p.Coord.Col
	if p.Dir == tile.West {
		return tile.Displacement{
			X: int(math.Round(sm.WestX.At(r, c))),
			Y: int(math.Round(sm.WestY.At(r, c))),
		}
	}
	return tile.Displacement{
		X: int(math.Round(sm.NorthX.At(r, c))),
		Y: int(math.Round(sm.NorthY.At(r, c))),
	}
}
