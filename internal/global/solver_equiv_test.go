package global

import (
	"math"
	"math/rand"
	"testing"

	"hybridstitch/internal/obs"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// noisyResult fabricates a phase-1 result directly (no images): ground
// truth near the nominal stage positions with per-tile jitter, per-pair
// measurement noise, a sprinkle of dropped pairs, sub-MinCorr degraded
// pairs, and confidently-wrong outliers — the full menu the IRLS solve
// has to survive.
func noisyResult(rng *rand.Rand, rows, cols int) (*stitch.Result, []int, []int) {
	g := tile.Grid{Rows: rows, Cols: cols, TileW: 64, TileH: 48, OverlapX: 0.12, OverlapY: 0.12}
	n := g.NumTiles()
	nomW := g.NominalDisplacement(tile.West)
	nomN := g.NominalDisplacement(tile.North)
	tx := make([]int, n)
	ty := make([]int, n)
	for i := 0; i < n; i++ {
		c := g.CoordOf(i)
		tx[i] = c.Col*nomW.X + rng.Intn(5) - 2
		ty[i] = c.Row*nomN.Y + rng.Intn(5) - 2
	}
	res := &stitch.Result{Grid: g,
		West:  make([]tile.Displacement, n),
		North: make([]tile.Displacement, n)}
	for i := range res.West {
		res.West[i].Corr = math.NaN()
		res.North[i].Corr = math.NaN()
	}
	for _, p := range g.Pairs() {
		to := g.Index(p.Coord)
		from := g.Index(p.Neighbor())
		d := tile.Displacement{X: tx[to] - tx[from], Y: ty[to] - ty[from],
			Corr: 0.6 + 0.35*rng.Float64()}
		switch r := rng.Float64(); {
		case r < 0.08: // pair never measured
			continue
		case r < 0.13: // phase correlation locked onto the wrong peak
			d.X += 40 + rng.Intn(30)
			d.Y -= 25
			d.Corr = 0.97
		case r < 0.25: // featureless overlap: noisy and below MinCorr
			d.X += rng.Intn(9) - 4
			d.Y += rng.Intn(9) - 4
			d.Corr = 0.1 + 0.15*rng.Float64()
		default:
			d.X += rng.Intn(3) - 1
			d.Y += rng.Intn(3) - 1
		}
		if p.Dir == tile.West {
			res.West[to] = d
		} else {
			res.North[to] = d
		}
	}
	return res, tx, ty
}

// appendRow returns a copy of res grown by one tile row: every existing
// pair measurement is carried over verbatim (row-major indexing makes
// old indices coincide), and the appended row gets clean well-correlated
// pairs near the nominal displacements. This is the streaming-ingest
// shape the Resolver exists for — re-generating a taller plate from the
// same RNG seed would redraw every measurement and leave nothing for a
// warm start to reuse.
func appendRow(res *stitch.Result, rng *rand.Rand) *stitch.Result {
	g := res.Grid
	ng := g
	ng.Rows++
	n := ng.NumTiles()
	out := &stitch.Result{Grid: ng,
		West:  make([]tile.Displacement, n),
		North: make([]tile.Displacement, n)}
	for i := range out.West {
		out.West[i].Corr = math.NaN()
		out.North[i].Corr = math.NaN()
	}
	copy(out.West, res.West)
	copy(out.North, res.North)
	nomW := ng.NominalDisplacement(tile.West)
	nomN := ng.NominalDisplacement(tile.North)
	for c := 0; c < ng.Cols; c++ {
		i := (ng.Rows-1)*ng.Cols + c
		if c > 0 {
			out.West[i] = tile.Displacement{X: nomW.X + rng.Intn(3) - 1,
				Y: nomW.Y + rng.Intn(3) - 1, Corr: 0.85}
		}
		out.North[i] = tile.Displacement{X: nomN.X + rng.Intn(3) - 1,
			Y: nomN.Y + rng.Intn(3) - 1, Corr: 0.85}
	}
	return out
}

// maxPlacementDiff returns the largest per-tile |Δx|+|Δy| between two
// placements of the same grid.
func maxPlacementDiff(a, b *Placement) int {
	worst := 0
	for i := range a.X {
		d := abs(a.X[i]-b.X[i]) + abs(a.Y[i]-b.Y[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestSolverEquivalenceRandomized is the cross-engine property test: on
// randomized noisy grids, Gauss-Seidel (the seed oracle) and PCG under
// both preconditioners must land every tile within a pixel of each
// other, weighted and unweighted. Both engines run at a tight tolerance:
// at the loose default, GS's per-sweep-delta stop triggers while the
// sweeps are still stalled far from the solution on weakly-connected
// (prior-only) regions, so agreement there would compare two different
// truncation artifacts rather than two solvers.
func TestSolverEquivalenceRandomized(t *testing.T) {
	cases := []struct{ rows, cols int }{{4, 5}, {9, 7}, {16, 16}}
	for _, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed * 1000))
			res, _, _ := noisyResult(rng, tc.rows, tc.cols)
			for _, unweighted := range []bool{false, true} {
				base := LSOptions{Unweighted: unweighted, Tol: 1e-7, MaxIter: 200000}

				gsOpts := base
				gsOpts.Solver = SolverGS
				gs, err := SolveLeastSquares(res, gsOpts)
				if err != nil {
					t.Fatalf("%dx%d seed %d gs: %v", tc.rows, tc.cols, seed, err)
				}
				for _, pre := range []PrecondKind{PrecondJacobi, PrecondTwoLevel} {
					pcgOpts := base
					pcgOpts.Solver = SolverPCG
					pcgOpts.Precond = pre
					pcg, err := SolveLeastSquares(res, pcgOpts)
					if err != nil {
						t.Fatalf("%dx%d seed %d pcg/%s: %v", tc.rows, tc.cols, seed, pre, err)
					}
					if d := maxPlacementDiff(gs, pcg); d > 1 {
						t.Errorf("%dx%d seed %d unweighted=%v: gs vs pcg/%s differ by %d px",
							tc.rows, tc.cols, seed, unweighted, pre, d)
					}
				}
			}
		}
	}
}

// TestSolverEquivalenceSparseGraph drops every measured edge in two
// interior rows, leaving only the weak prior edges to hold the plate
// together there — the reconnection-ish regime where the system is at
// its worst-conditioned. Engines must still agree.
func TestSolverEquivalenceSparseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	res, _, _ := noisyResult(rng, 10, 8)
	g := res.Grid
	for i := range res.West {
		if r := g.CoordOf(i).Row; r == 4 || r == 5 {
			res.West[i].Corr = math.NaN()
			res.North[i].Corr = math.NaN()
		}
	}
	gs, err := SolveLeastSquares(res, LSOptions{Solver: SolverGS, Tol: 1e-7, MaxIter: 200000})
	if err != nil {
		t.Fatal(err)
	}
	for _, pre := range []PrecondKind{PrecondJacobi, PrecondTwoLevel} {
		pcg, err := SolveLeastSquares(res, LSOptions{Solver: SolverPCG, Precond: pre, Tol: 1e-7, MaxIter: 200000})
		if err != nil {
			t.Fatalf("pcg/%s: %v", pre, err)
		}
		if d := maxPlacementDiff(gs, pcg); d > 1 {
			t.Errorf("gs vs pcg/%s differ by %d px on sparse graph", pre, d)
		}
	}
}

// TestSolverAutoSelection pins the auto threshold from the outside: a
// small plate must run Gauss-Seidel sweeps (bit-compat with history), a
// plate at/above autoPCGMinTiles must run CG iterations.
func TestSolverAutoSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small, _, _ := noisyResult(rng, 5, 6)
	rec := obs.New()
	defer rec.Close()
	if _, err := SolveLeastSquares(small, LSOptions{Obs: rec}); err != nil {
		t.Fatal(err)
	}
	if sw := rec.CounterValue(obs.CounterLSSweepsGS); sw == 0 {
		t.Error("small plate under auto: expected GS sweeps, got none")
	}
	if cg := rec.CounterValue(obs.CounterLSItersCG); cg != 0 {
		t.Errorf("small plate under auto: expected 0 CG iterations, got %d", cg)
	}

	big, _, _ := noisyResult(rng, 33, 32) // 1056 ≥ autoPCGMinTiles
	rec2 := obs.New()
	defer rec2.Close()
	if _, err := SolveLeastSquares(big, LSOptions{Obs: rec2}); err != nil {
		t.Fatal(err)
	}
	if cg := rec2.CounterValue(obs.CounterLSItersCG); cg == 0 {
		t.Error("large plate under auto: expected CG iterations, got none")
	}
	if sw := rec2.CounterValue(obs.CounterLSSweepsGS); sw != 0 {
		t.Errorf("large plate under auto: expected 0 GS sweeps, got %d", sw)
	}
}

// TestLeastSquaresObsGolden is the golden span/counter test for the new
// phase-2 instrumentation: one solve.ls span on the phase2 track with
// the solver attr, the effort counters consistent with the engine used,
// and the convergence gauge present and small.
func TestLeastSquaresObsGolden(t *testing.T) {
	res, _ := syntheticResult(t, 5, 6, 9)
	rec := obs.New()
	defer rec.Close()
	if _, err := SolveLeastSquares(res, LSOptions{Obs: rec, Solver: SolverPCG}); err != nil {
		t.Fatal(err)
	}
	var found int
	for _, sp := range rec.Spans() {
		if sp.Track != obs.TrackPhase2 || sp.Name != obs.SpanSolveLS {
			continue
		}
		found++
		attrs := map[string]string{}
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["grid"] != "5x6" {
			t.Errorf("span grid attr = %q, want 5x6", attrs["grid"])
		}
		if attrs["solver"] != "pcg/twolevel" {
			t.Errorf("span solver attr = %q, want pcg/twolevel", attrs["solver"])
		}
	}
	if found != 1 {
		t.Fatalf("got %d solve.ls spans, want 1", found)
	}
	if rounds := rec.CounterValue(obs.CounterLSRounds); rounds < 1 || rounds > 5 {
		t.Errorf("rounds counter = %d, want 1..5", rounds)
	}
	if cg := rec.CounterValue(obs.CounterLSItersCG); cg == 0 {
		t.Error("forced PCG recorded no CG iterations")
	}
	if sw := rec.CounterValue(obs.CounterLSSweepsGS); sw != 0 {
		t.Errorf("forced PCG recorded %d GS sweeps, want 0", sw)
	}
	last, _ := rec.Gauge(obs.GaugeLSResidualPx).Value()
	if math.IsNaN(last) || last < 0 || last > 1 {
		t.Errorf("final residual gauge = %v, want small non-negative", last)
	}
}

// TestGSSteadyStateAllocs pins the IRLS allocation fix: with the sparse
// system built once, a full reweight+sweep round allocates nothing.
func TestGSSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	res, _, _ := noisyResult(rng, 8, 8)
	opts := LSOptions{}.withDefaults(res.Grid.NumTiles())
	edges, _, err := buildLSEdges(res, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys := newLSSystem(res.Grid.NumTiles(), edges)
	px := make([]float64, sys.n)
	py := make([]float64, sys.n)
	allocs := testing.AllocsPerRun(20, func() {
		sys.reweightRange(px, py, 4, 0, len(sys.edges))
		sys.gsSweep(px, py)
	})
	if allocs != 0 {
		t.Errorf("steady-state IRLS round allocated %v times, want 0", allocs)
	}
}

// TestResolverWarmStartAppendRow grows a plate by one row and checks the
// warm re-solve matches a cold solve of the grown plate, while reporting
// (via the iteration counter) less CG effort than the cold solve.
// Unweighted keeps both paths on the identical fixed linear system with
// a unique solution — with IRLS on, a warm re-solve runs a single
// incremental reweight round and the cold solve the full budget, so a
// position comparison would test the loss landscape rather than the
// warm-start plumbing (TestResolverIncrementalRobustness covers that
// side).
func TestResolverWarmStartAppendRow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	resA, _, _ := noisyResult(rng, 10, 8)
	resB := appendRow(resA, rng)

	// Jacobi preconditioning: on plates this small the two-level coarse
	// grid is the fine grid (a direct solve, ~2 iterations cold), which
	// would leave no iteration-count headroom to observe the warm start.
	warmRec := obs.New()
	defer warmRec.Close()
	r := NewResolver(LSOptions{Solver: SolverPCG, Precond: PrecondJacobi, Unweighted: true, Obs: warmRec})
	if _, err := r.Solve(resA); err != nil {
		t.Fatal(err)
	}
	coldIters := warmRec.CounterValue(obs.CounterLSItersCG)
	warm, err := r.Solve(resB)
	if err != nil {
		t.Fatal(err)
	}
	warmIters := warmRec.CounterValue(obs.CounterLSItersCG) - coldIters

	coldRec := obs.New()
	defer coldRec.Close()
	cold, err := SolveLeastSquares(resB, LSOptions{Solver: SolverPCG, Precond: PrecondJacobi, Unweighted: true, Obs: coldRec})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxPlacementDiff(cold, warm); d > 1 {
		t.Errorf("warm re-solve differs from cold by %d px", d)
	}
	if coldB := coldRec.CounterValue(obs.CounterLSItersCG); warmIters >= coldB {
		t.Errorf("warm re-solve took %d CG iterations, cold took %d — warm start not helping", warmIters, coldB)
	}
}

// TestResolverSameGridReuse re-solves the identical plate (Unweighted,
// so the linear system is unchanged between calls): the second solve
// starts at the converged solution and must neither move tiles nor
// spend iterations.
func TestResolverSameGridReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	res, _, _ := noisyResult(rng, 9, 9)
	rec := obs.New()
	defer rec.Close()
	r := NewResolver(LSOptions{Solver: SolverPCG, Unweighted: true, Obs: rec})
	first, err := r.Solve(res)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := rec.CounterValue(obs.CounterLSItersCG)
	second, err := r.Solve(res)
	if err != nil {
		t.Fatal(err)
	}
	reIters := rec.CounterValue(obs.CounterLSItersCG) - afterFirst
	if d := maxPlacementDiff(first, second); d > 1 {
		t.Errorf("re-solve of identical plate moved tiles by up to %d px", d)
	}
	if reIters > 4 {
		t.Errorf("re-solve of converged plate took %d CG iterations, want ≤4", reIters)
	}
}

// TestResolverIncrementalRobustness exercises the warm re-solve's
// single incremental IRLS round against the full cold IRLS budget: the
// grown plate includes confidently-wrong outlier pairs (some in the
// appended row), and because the warm positions already sit at the
// previous plate's robust fixed point, the one informed reweight must
// suppress them nearly as well as cold's five rounds do. The tolerance
// is 4 px (|Δx|+|Δy|): the incremental solution legitimately trails the
// full-IRLS fixed point by the tail of the remaining round movements,
// ~2 px per axis at this fixture's outlier density (measured: exactly
// 4 on this deterministic fixture).
func TestResolverIncrementalRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	resA, _, _ := noisyResult(rng, 10, 8)
	resB := appendRow(resA, rng)
	// A confidently-wrong peak in the appended row: the incremental
	// round's informed reweight has exactly one chance to defuse it.
	iOut := (resB.Grid.Rows-1)*resB.Grid.Cols + 3
	resB.West[iOut].X += 40
	resB.West[iOut].Y -= 25
	resB.West[iOut].Corr = 0.97

	r := NewResolver(LSOptions{Solver: SolverPCG, Precond: PrecondJacobi})
	if _, err := r.Solve(resA); err != nil {
		t.Fatal(err)
	}
	warm, err := r.Solve(resB)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveLeastSquares(resB, LSOptions{Solver: SolverPCG, Precond: PrecondJacobi})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxPlacementDiff(cold, warm); d > 4 {
		t.Errorf("incremental warm re-solve differs from full cold IRLS by %d px", d)
	}
}

// TestWarmOptionValidation: a warm placement sized for a different grid
// must be rejected, not silently misused.
func TestWarmOptionValidation(t *testing.T) {
	res, _ := syntheticResult(t, 4, 5, 2)
	bad := &Placement{X: make([]int, 7), Y: make([]int, 7)}
	if _, err := SolveLeastSquares(res, LSOptions{Warm: bad}); err == nil {
		t.Fatal("warm placement with wrong tile count accepted")
	}
}

// TestWarmOptionMatchesCold: LSOptions.Warm with the previous solution
// of the same grid reproduces the cold placement.
func TestWarmOptionMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	res, _, _ := noisyResult(rng, 7, 7)
	cold, err := SolveLeastSquares(res, LSOptions{Solver: SolverPCG, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveLeastSquares(res, LSOptions{Solver: SolverPCG, Rounds: 1, Warm: cold})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxPlacementDiff(cold, warm); d > 1 {
		t.Errorf("warm-from-cold differs by %d px", d)
	}
}

func TestParseSolverKinds(t *testing.T) {
	for in, want := range map[string]SolverKind{"": SolverAuto, "auto": SolverAuto, "gs": SolverGS, "pcg": SolverPCG} {
		got, err := ParseSolverKind(in)
		if err != nil || got != want {
			t.Errorf("ParseSolverKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSolverKind("sor"); err == nil {
		t.Error("ParseSolverKind accepted junk")
	}
	for in, want := range map[string]PrecondKind{"": PrecondTwoLevel, "twolevel": PrecondTwoLevel, "jacobi": PrecondJacobi} {
		got, err := ParsePrecondKind(in)
		if err != nil || got != want {
			t.Errorf("ParsePrecondKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePrecondKind("ilu"); err == nil {
		t.Error("ParsePrecondKind accepted junk")
	}
}
