package global

import (
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// Resolver runs phase-2 least-squares solves repeatedly over a growing
// plate — the rolling re-solve that stitchd-style streaming ingest needs.
// Each Solve is warm-started from the float solution of the previous one:
// tiles present in both grids keep their converged positions, freshly
// appended tiles are seeded from their already-solved neighbors plus the
// nominal stage displacement. Warm CG then only has to propagate the
// correction locally, which makes an append-one-row re-solve a small
// fraction of cold cost.
type Resolver struct {
	opts LSOptions

	// Previous solve's grid and un-normalized float solution.
	grid   tile.Grid
	fx, fy []float64
}

// NewResolver returns a Resolver that applies opts to every Solve. Any
// LSOptions.Warm set in opts is ignored — the Resolver manages its own
// warm state.
func NewResolver(opts LSOptions) *Resolver {
	opts.Warm = nil
	return &Resolver{opts: opts}
}

// Solve computes a placement for res, warm-starting from the previous
// call when there was one. The grid may differ from the previous call's
// (typically by appended rows or columns); tiles at coordinates outside
// the previous grid are seeded from a solved neighbor.
//
// Warm re-solves run a single incremental IRLS round: the warm positions
// are already the robust fixed point of the previous plate, so the one
// reweight they inform suppresses outliers on fresh edges immediately
// (an appended edge with a 35px bogus displacement sees its full
// residual against the neighbor-seeded positions and is down-weighted
// by ~300x before the solve). Repeated appends therefore keep
// converging across Solve calls instead of restarting the full round
// budget each time.
func (r *Resolver) Solve(res *stitch.Result) (*Placement, error) {
	var warmX, warmY []float64
	opts := r.opts
	if r.fx != nil {
		warmX, warmY = r.warmVectors(res.Grid)
		if !opts.Unweighted {
			opts.Rounds = 1
			opts.warmIncremental = true
		}
	}
	pl, fx, fy, err := solveLS(res, opts, warmX, warmY)
	if err != nil {
		return nil, err
	}
	r.grid, r.fx, r.fy = res.Grid, fx, fy
	return pl, nil
}

// warmVectors maps the previous solution onto grid g. Row-major index
// order guarantees a new tile's west and north neighbors are filled
// before the tile itself, so neighbor+nominal seeding always has an
// anchor (except tile 0, which is the pinned origin anyway).
func (r *Resolver) warmVectors(g tile.Grid) ([]float64, []float64) {
	n := g.NumTiles()
	wx := make([]float64, n)
	wy := make([]float64, n)
	nomW := g.NominalDisplacement(tile.West)
	nomN := g.NominalDisplacement(tile.North)
	for i := 0; i < n; i++ {
		c := g.CoordOf(i)
		if c.Row < r.grid.Rows && c.Col < r.grid.Cols {
			old := c.Row*r.grid.Cols + c.Col
			wx[i] = r.fx[old]
			wy[i] = r.fy[old]
			continue
		}
		switch {
		case c.Col > 0:
			w := i - 1
			wx[i] = wx[w] + float64(nomW.X)
			wy[i] = wy[w] + float64(nomW.Y)
		case c.Row > 0:
			nb := i - g.Cols
			wx[i] = wx[nb] + float64(nomN.X)
			wy[i] = wy[nb] + float64(nomN.Y)
		}
	}
	return wx, wy
}
