package global

import (
	"math/rand"
	"testing"

	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

func TestLeastSquaresPerfectInput(t *testing.T) {
	res, ds := syntheticResult(t, 4, 5, 21)
	pl, err := SolveLeastSquares(res, LSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rms, err := RMSError(pl, ds.TruthX, ds.TruthY)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 0.51 {
		// Positions are rounded to integers; perfect input may land on
		// .5 boundaries but no worse.
		t.Errorf("RMS %g on perfect input", rms)
	}
}

func TestLeastSquaresAveragesNoiseBetterThanTree(t *testing.T) {
	// Add ±2 px noise to every displacement; LS should average it out
	// and beat the spanning tree's accumulated drift on a larger grid.
	var lsTotal, mstTotal float64
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		res, ds := syntheticResult(t, 8, 8, int64(31+trial))
		rng := rand.New(rand.NewSource(int64(77 + trial)))
		g := res.Grid
		for _, p := range g.Pairs() {
			d, _ := res.PairDisplacement(p)
			d.X += rng.Intn(5) - 2
			d.Y += rng.Intn(5) - 2
			i := g.Index(p.Coord)
			if p.Dir == tile.West {
				res.West[i] = d
			} else {
				res.North[i] = d
			}
		}
		ls, err := SolveLeastSquares(res, LSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mst, err := Solve(res, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lsRMS, _ := RMSError(ls, ds.TruthX, ds.TruthY)
		mstRMS, _ := RMSError(mst, ds.TruthX, ds.TruthY)
		lsTotal += lsRMS
		mstTotal += mstRMS
	}
	if lsTotal >= mstTotal {
		t.Errorf("least squares (%.2f total RMS) not better than tree (%.2f) under noise", lsTotal, mstTotal)
	}
}

func TestLeastSquaresDownweightsLowCorrEdges(t *testing.T) {
	res, ds := syntheticResult(t, 4, 4, 41)
	g := res.Grid
	// A wildly wrong edge with low confidence barely moves the answer.
	p := tile.Pair{Coord: tile.Coord{Row: 1, Col: 2}, Dir: tile.West}
	res.West[g.Index(p.Coord)] = tile.Displacement{X: -300, Y: 200, Corr: 0.05}
	pl, err := SolveLeastSquares(res, LSOptions{MinCorr: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rms, _ := RMSError(pl, ds.TruthX, ds.TruthY)
	if rms > 0.51 {
		t.Errorf("RMS %g: low-corr outlier should be excluded", rms)
	}
	if pl.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", pl.Dropped)
	}
}

func TestLeastSquaresDisconnectedReconnects(t *testing.T) {
	res, _ := syntheticResult(t, 3, 3, 43)
	g := res.Grid
	for r := 0; r < g.Rows; r++ {
		i := g.Index(tile.Coord{Row: r, Col: 2})
		res.West[i] = tile.Displacement{Corr: 0}
		if r > 0 {
			res.North[i] = tile.Displacement{Corr: 0}
		}
	}
	pl, err := SolveLeastSquares(res, LSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, h := pl.Bounds()
	if w <= g.TileW || h <= g.TileH {
		t.Errorf("degenerate bounds %dx%d", w, h)
	}
}

func TestLeastSquaresInvalidGrid(t *testing.T) {
	if _, err := SolveLeastSquares(&stitch.Result{}, LSOptions{}); err == nil {
		t.Error("invalid grid should fail")
	}
}

func TestLeastSquaresMatchesTreeOnCleanEndToEnd(t *testing.T) {
	// Real phase-1 output: both solvers should land within a pixel of
	// each other and of the truth.
	res, ds := syntheticResult(t, 3, 4, 47)
	ls, err := SolveLeastSquares(res, LSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mst, err := Solve(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsRMS, _ := RMSError(ls, ds.TruthX, ds.TruthY)
	mstRMS, _ := RMSError(mst, ds.TruthX, ds.TruthY)
	if lsRMS > 0.51 || mstRMS > 0.51 {
		t.Errorf("clean input: LS %.2f, MST %.2f", lsRMS, mstRMS)
	}
}

func TestLeastSquaresIRLSDefusesConfidentOutlier(t *testing.T) {
	// A confidently wrong edge (corr 0.99): plain weighting would drag
	// the fit; IRLS reweighting must neutralize it.
	res, ds := syntheticResult(t, 4, 4, 53)
	g := res.Grid
	p := tile.Pair{Coord: tile.Coord{Row: 2, Col: 2}, Dir: tile.West}
	res.West[g.Index(p.Coord)] = tile.Displacement{X: -300, Y: 200, Corr: 0.99}

	robust, err := SolveLeastSquares(res, LSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rms, _ := RMSError(robust, ds.TruthX, ds.TruthY)
	if rms > 1.0 {
		t.Errorf("IRLS RMS %.2f with one confident outlier", rms)
	}
	// Plain (1-round) least squares must do visibly worse.
	plain, err := SolveLeastSquares(res, LSOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	plainRMS, _ := RMSError(plain, ds.TruthX, ds.TruthY)
	if plainRMS < 2*rms+0.5 {
		t.Errorf("plain LS RMS %.2f vs robust %.2f: expected the outlier to hurt", plainRMS, rms)
	}
}

func TestLeastSquaresUnweightedBaseline(t *testing.T) {
	// A wrong low-confidence edge (corr 0.31, just above the MinCorr
	// cut): the confidence weighting marginalizes it, the unweighted
	// baseline gives it the same say as every good measurement. Both
	// arms run a single round so the comparison isolates the
	// correlation weights from IRLS.
	res, ds := syntheticResult(t, 4, 4, 61)
	g := res.Grid
	p := tile.Pair{Coord: tile.Coord{Row: 2, Col: 2}, Dir: tile.West}
	res.West[g.Index(p.Coord)] = tile.Displacement{X: -300, Y: 200, Corr: 0.31}

	weighted, err := SolveLeastSquares(res, LSOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	unweighted, err := SolveLeastSquares(res, LSOptions{Unweighted: true})
	if err != nil {
		t.Fatal(err)
	}
	wRMS, _ := RMSError(weighted, ds.TruthX, ds.TruthY)
	uRMS, _ := RMSError(unweighted, ds.TruthX, ds.TruthY)
	if !(wRMS < uRMS) {
		t.Errorf("weighted RMS %.2f not below unweighted %.2f with a low-confidence outlier", wRMS, uRMS)
	}

	// On clean data the baseline still solves the system fine — it is a
	// valid solver, just not a robust one.
	clean, cleanDS := syntheticResult(t, 3, 4, 67)
	pl, err := SolveLeastSquares(clean, LSOptions{Unweighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if rms, _ := RMSError(pl, cleanDS.TruthX, cleanDS.TruthY); rms > 0.51 {
		t.Errorf("unweighted solve on clean input RMS %.2f", rms)
	}
}
