package global

import (
	"fmt"

	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// This file holds the sparse representation behind SolveLeastSquares:
// the edge list of the phase-2 least-squares system and a CSR view of
// its graph Laplacian. The structure is built ONCE per solve — IRLS
// rounds only rewrite the per-edge weights in place — which replaces the
// seed implementation's per-round adjacency rebuild (an O(edges)
// allocation storm repeated every round) and gives the PCG engine the
// contiguous rows its SpMV wants.
//
// Every CSR row stores its entries in the same order the seed's
// adjacency lists did (edge-index order, `to` row before `from` row per
// edge), and the Gauss-Seidel sweep below accumulates them with the same
// expressions — so the retained GS path is arithmetic-for-arithmetic
// identical to the seed solver and stays valid as the differential
// oracle for PCG.

// lsEdge is one constraint of the least-squares system: position of
// tile `to` minus position of tile `from` should equal (dx, dy), with
// confidence weight w.
type lsEdge struct {
	from, to int
	dx, dy   int
	w        float64
}

// lsSystem is the built least-squares system: the edge list, the current
// IRLS weights, and the CSR Laplacian structure over them.
type lsSystem struct {
	n     int
	edges []lsEdge
	// robustW is the IRLS working weight per edge; reweight rewrites it
	// in place from the current positions each round.
	robustW []float64

	// CSR over the graph Laplacian: row i lists every edge incident to
	// tile i. colInd is the neighbor tile, edgeRef the edge index (for
	// the weight lookup), and ex/ey the displacement d(col→row) — the
	// value the row tile should sit at relative to the column tile.
	rowPtr  []int32
	colInd  []int32
	edgeRef []int32
	ex, ey  []float64
}

// newLSSystem builds the CSR structure from the finished edge list.
func newLSSystem(n int, edges []lsEdge) *lsSystem {
	s := &lsSystem{n: n, edges: edges}
	s.robustW = make([]float64, len(edges))
	for i, e := range edges {
		s.robustW[i] = e.w
	}
	nnz := 2 * len(edges)
	s.rowPtr = make([]int32, n+1)
	s.colInd = make([]int32, nnz)
	s.edgeRef = make([]int32, nnz)
	s.ex = make([]float64, nnz)
	s.ey = make([]float64, nnz)
	for _, e := range edges {
		s.rowPtr[e.to+1]++
		s.rowPtr[e.from+1]++
	}
	for i := 0; i < n; i++ {
		s.rowPtr[i+1] += s.rowPtr[i]
	}
	next := make([]int32, n)
	copy(next, s.rowPtr[:n])
	for i, e := range edges {
		// Row `to` sees the edge as d(from→to) = +(dx, dy)…
		k := next[e.to]
		next[e.to]++
		s.colInd[k] = int32(e.from)
		s.edgeRef[k] = int32(i)
		s.ex[k] = float64(e.dx)
		s.ey[k] = float64(e.dy)
		// …row `from` as the reverse.
		k = next[e.from]
		next[e.from]++
		s.colInd[k] = int32(e.to)
		s.edgeRef[k] = int32(i)
		s.ex[k] = -float64(e.dx)
		s.ey[k] = -float64(e.dy)
	}
	return s
}

// resetWeights restores the base (pre-IRLS) weights.
func (s *lsSystem) resetWeights() {
	for i, e := range s.edges {
		s.robustW[i] = e.w
	}
}

// reweightRange applies the Cauchy reweighting w ← w/(1+(r/c)²) to edges
// [lo, hi) from the current positions. c2 is the squared residual scale.
// The serial GS path calls it directly (closure-free, zero allocations);
// the PCG path fans it out over the worker budget.
//
//stitchlint:hotpath
func (s *lsSystem) reweightRange(px, py []float64, c2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		e := &s.edges[i]
		rx := px[e.to] - px[e.from] - float64(e.dx)
		ry := py[e.to] - py[e.from] - float64(e.dy)
		s.robustW[i] = e.w / (1 + (rx*rx+ry*ry)/c2)
	}
}

// gsSweep runs one Gauss-Seidel sweep (tile 0 pinned) and returns the
// largest per-tile position update. The accumulation order and
// expressions match the seed implementation exactly, so a GS solve from
// this structure is bit-identical to the seed's.
//
//stitchlint:hotpath
func (s *lsSystem) gsSweep(px, py []float64) float64 {
	var maxDelta float64
	for i := 1; i < s.n; i++ {
		var sw, sx, sy float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			w := s.robustW[s.edgeRef[k]]
			j := s.colInd[k]
			sw += w
			sx += w * (px[j] + s.ex[k])
			sy += w * (py[j] + s.ey[k])
		}
		if sw == 0 {
			continue
		}
		nx, ny := sx/sw, sy/sw
		if d := nx - px[i]; d > maxDelta {
			maxDelta = d
		} else if -d > maxDelta {
			maxDelta = -d
		}
		if d := ny - py[i]; d > maxDelta {
			maxDelta = d
		} else if -d > maxDelta {
			maxDelta = -d
		}
		px[i], py[i] = nx, ny
	}
	return maxDelta
}

// normalRange fills the normal-equation diagonal and right-hand sides
// for rows [lo, hi): diag[i] = Σ w, bx[i] = Σ w·dx(col→i), by likewise.
//
//stitchlint:hotpath
func (s *lsSystem) normalRange(diag, bx, by []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var sw, sx, sy float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			w := s.robustW[s.edgeRef[k]]
			sw += w
			sx += w * s.ex[k]
			sy += w * s.ey[k]
		}
		diag[i] = sw
		bx[i] = sx
		by[i] = sy
	}
}

// spmvRange computes rows [lo, hi) of the pinned-Laplacian product:
// dst[i] = diag[i]·x[i] − Σ_j w_ij·x[j]. Row 0 is the pinned tile — the
// solve works in the subspace x[0] = 0 and the caller forces dst[0] = 0.
//
//stitchlint:hotpath
func (s *lsSystem) spmvRange(dst, x, diag []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		acc := diag[i] * x[i]
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc -= s.robustW[s.edgeRef[k]] * x[s.colInd[k]]
		}
		dst[i] = acc
	}
}

// residualMax returns the largest absolute entry of b − L·p over both
// axes (rows 1..n-1) — the final-convergence figure the obs gauge
// reports. diag/bx/by must hold the current round's normal equations.
func (s *lsSystem) residualMax(px, py, diag, bx, by []float64) float64 {
	var worst float64
	for i := 1; i < s.n; i++ {
		ax := diag[i] * px[i]
		ay := diag[i] * py[i]
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			w := s.robustW[s.edgeRef[k]]
			ax -= w * px[s.colInd[k]]
			ay -= w * py[s.colInd[k]]
		}
		if d := bx[i] - ax; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
		if d := by[i] - ay; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	return worst
}

// buildLSEdges assembles the least-squares edge list for a phase-1
// result: measured displacements above MinCorr, the weak stage-model
// prior on every pair, and nominal reconnection edges for any components
// the correlation filter disconnected. The append order is part of the
// GS oracle's bit-identity contract — do not reorder.
func buildLSEdges(res *stitch.Result, opts LSOptions) (edges []lsEdge, dropped int, err error) {
	g := res.Grid
	n := g.NumTiles()
	var westDX, westDY, northDX, northDY []int
	for _, p := range g.Pairs() {
		d, ok := res.PairDisplacement(p)
		if !ok || d.Corr < opts.MinCorr {
			dropped++
			continue
		}
		if p.Dir == tile.West {
			westDX = append(westDX, d.X)
			westDY = append(westDY, d.Y)
		} else {
			northDX = append(northDX, d.X)
			northDY = append(northDY, d.Y)
		}
		w := maxFloat(d.Corr, 1e-3)
		if opts.Unweighted {
			w = 1
		}
		edges = append(edges, lsEdge{
			from: g.Index(p.Neighbor()),
			to:   g.Index(p.Coord),
			dx:   d.X, dy: d.Y,
			w: w,
		})
	}
	// Stage-model prior: every pair also gets a weak edge at the median
	// per-direction displacement (the mechanical stage is consistent).
	// Good measurements (w ≈ 0.9) dominate it; pairs whose measurement
	// was dropped or gets IRLS-suppressed fall back to the stage model —
	// the least-squares analogue of Solve's outlier repair.
	const priorW = 0.02
	medWX, medWY := median(westDX), median(westDY)
	medNX, medNY := median(northDX), median(northDY)
	for _, p := range g.Pairs() {
		dx, dy := medWX, medWY
		if p.Dir == tile.North {
			dx, dy = medNX, medNY
		}
		edges = append(edges, lsEdge{
			from: g.Index(p.Neighbor()),
			to:   g.Index(p.Coord),
			dx:   dx, dy: dy, w: priorW,
		})
	}

	// Connectivity check with nominal-edge reconnection, mirroring
	// Solve: an unconstrained tile would make the system singular.
	dsu := newDSU(n)
	for _, e := range edges {
		dsu.union(e.from, e.to)
	}
	nomW := g.NominalDisplacement(tile.West)
	nomN := g.NominalDisplacement(tile.North)
	for _, p := range g.Pairs() {
		bi, ai := g.Index(p.Coord), g.Index(p.Neighbor())
		if !dsu.union(ai, bi) {
			continue
		}
		nom := nomW
		if p.Dir == tile.North {
			nom = nomN
		}
		// Nominal edges carry a small weight: enough to anchor the
		// component, not enough to fight measured edges.
		edges = append(edges, lsEdge{from: ai, to: bi, dx: nom.X, dy: nom.Y, w: 1e-3})
	}
	root := dsu.find(0)
	for i := 1; i < n; i++ {
		if dsu.find(i) != root {
			return nil, 0, fmt.Errorf("global: tile %d unreachable even after nominal reconnection", i)
		}
	}
	return edges, dropped, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
