package global

import (
	"math"
	"runtime"
	"sync"

	"hybridstitch/internal/fft"
)

// This file is the parallel preconditioned conjugate-gradient engine for
// the phase-2 least-squares system. The pinned graph Laplacian of a
// plate grid is symmetric positive definite but O(√n)-conditioned, so a
// stationary sweep needs O(√n) iterations per digit; CG with a two-level
// hierarchy (coarsen tiles into super-tiles along the grid, solve the
// coarse Laplacian directly, interpolate, smooth) turns that into tens
// of iterations regardless of plate size. Jacobi preconditioning is kept
// as the cheap baseline arm.
//
// Parallel work (SpMV, dot products, reweighting) draws helper tokens
// from the shared fft.WorkerPool — the same budget phase-1 pair workers
// reserve from (stitch.Options.reservePairWorkers) — so a rolling
// re-solve running beside an active acquisition composes with phase 1
// instead of oversubscribing the machine.

// parRun holds worker tokens reserved from the shared transform pool for
// the duration of one solve. Reservation is best-effort: an empty pool
// (or nil on a single-core box) degrades every fan-out to an inline
// loop. Chunk boundaries depend only on the reserved count, fixed at
// construction, so every reduction within one solve combines its
// partials in a deterministic order.
type parRun struct {
	pool     *fft.WorkerPool
	reserved int
	partial  []float64 // per-chunk dot partials, len reserved+1
}

func newParRun(pool *fft.WorkerPool) *parRun {
	if pool == nil {
		pool = fft.SharedPool()
	}
	want := runtime.GOMAXPROCS(0) - 1
	if want < 0 {
		want = 0
	}
	p := &parRun{pool: pool, reserved: pool.Reserve(want)}
	p.partial = make([]float64, p.reserved+1)
	return p
}

func (p *parRun) release() {
	p.pool.Release(p.reserved)
	p.reserved = 0
}

// run executes fn over [0, n) split into reserved+1 contiguous chunks,
// one per held token plus the caller's own goroutine. Chunks below
// minChunk merge into the caller's share (goroutine handoff costs more
// than the loop it would cover).
func (p *parRun) run(n, minChunk int, fn func(lo, hi int)) {
	workers := p.reserved
	chunk := (n + workers) / (workers + 1)
	if chunk < minChunk {
		chunk = minChunk
	}
	var wg sync.WaitGroup
	lo := chunk // chunk 0 runs inline below
	for w := 0; w < workers && lo < n; w++ {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	if chunk > n {
		chunk = n
	}
	fn(0, chunk)
	wg.Wait()
}

// dot computes a·b over rows [1, n) (row 0 is the pinned tile) with
// deterministic chunked partials.
func (p *parRun) dot(a, b []float64) float64 {
	n := len(a)
	workers := p.reserved
	chunk := (n + workers) / (workers + 1)
	if chunk < parMinChunk {
		chunk = parMinChunk
	}
	nChunks := (n + chunk - 1) / chunk
	var wg sync.WaitGroup
	for c := 1; c < nChunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			p.partial[c] = dotRange(a, b, lo, hi)
		}(c, lo, hi)
	}
	first := chunk
	if first > n {
		first = n
	}
	p.partial[0] = dotRange(a, b, 1, first)
	wg.Wait()
	var sum float64
	for c := 0; c < nChunks; c++ {
		sum += p.partial[c]
	}
	return sum
}

//stitchlint:hotpath
func dotRange(a, b []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += a[i] * b[i]
	}
	return s
}

// parMinChunk is the smallest row range worth a goroutine handoff.
const parMinChunk = 2048

// preconditioner applies z ← M⁻¹r on the pinned subspace (z[0] = 0).
// refresh is called once per IRLS round, after the weights and the
// normal-equation diagonal changed.
type preconditioner interface {
	refresh(par *parRun)
	apply(z, r []float64, par *parRun)
}

// jacobiPrecond is diagonal scaling — the baseline arm. One division per
// row; leaves the O(√n) grid conditioning to CG itself.
type jacobiPrecond struct {
	diag []float64
}

func (j *jacobiPrecond) refresh(*parRun) {}

func (j *jacobiPrecond) apply(z, r []float64, par *parRun) {
	diag := j.diag
	par.run(len(z), parMinChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if d := diag[i]; d > 0 {
				z[i] = r[i] / d
			} else {
				z[i] = r[i]
			}
		}
	})
	z[0] = 0
}

// twoLevelPrecond is the aggregation hierarchy: tiles coarsen into f×f
// super-tiles along the grid, the Galerkin coarse Laplacian (exact for a
// piecewise-constant prolongator that zeroes the pinned tile) is
// Cholesky-factored once per IRLS round, and one application runs
// damped-Jacobi pre-smooth → coarse correction → post-smooth. The
// symmetric smoother on both flanks keeps the operator SPD, which PCG
// requires of its preconditioner.
type twoLevelPrecond struct {
	sys  *lsSystem
	diag []float64 // fine normal-equation diagonal (shared with pcgState)
	agg  []int32   // fine tile → coarse aggregate
	nc   int
	ac   []float64 // dense nc×nc coarse Laplacian, then its Cholesky factor
	rc   []float64 // coarse residual / correction
	tmp  []float64 // fine scratch
}

// twoLevelCoarseTarget bounds the coarse system size: the dense Cholesky
// is O(nc³) once per round, so nc ≈ 600 keeps it a rounding error next
// to the CG iterations while aggregates stay small enough (≈10×10 tiles
// at 59k) for the smoother to cover intra-aggregate modes.
const twoLevelCoarseTarget = 600

func newTwoLevelPrecond(sys *lsSystem, diag []float64, rows, cols int) *twoLevelPrecond {
	n := sys.n
	f := 1
	for (rows+f-1)/f*((cols+f-1)/f) > twoLevelCoarseTarget {
		f++
	}
	cCols := (cols + f - 1) / f
	cRows := (rows + f - 1) / f
	nc := cRows * cCols
	t := &twoLevelPrecond{
		sys: sys, diag: diag,
		agg: make([]int32, n),
		nc:  nc,
		ac:  make([]float64, nc*nc),
		rc:  make([]float64, nc),
		tmp: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		t.agg[i] = int32(r/f*cCols + c/f)
	}
	return t
}

// refresh rebuilds and factors the coarse Laplacian from the current
// IRLS weights. The prolongator zeroes the pinned fine tile, so an edge
// touching tile 0 contributes only its grounding term.
func (t *twoLevelPrecond) refresh(*parRun) {
	nc := t.nc
	for i := range t.ac {
		t.ac[i] = 0
	}
	for i, e := range t.sys.edges {
		w := t.sys.robustW[i]
		ca, cb := int(t.agg[e.from]), int(t.agg[e.to])
		switch {
		case e.from == 0:
			t.ac[cb*nc+cb] += w
		case e.to == 0:
			t.ac[ca*nc+ca] += w
		case ca == cb:
			// Interior edge: (e_ca − e_cb) vanishes under Pᵀ.
		default:
			t.ac[ca*nc+ca] += w
			t.ac[cb*nc+cb] += w
			t.ac[ca*nc+cb] -= w
			t.ac[cb*nc+ca] -= w
		}
	}
	// Aggregates with no grounded coupling (possible only on degenerate
	// inputs) become inert identity rows rather than singular pivots.
	for c := 0; c < nc; c++ {
		if t.ac[c*nc+c] == 0 {
			for j := 0; j < nc; j++ {
				t.ac[c*nc+j] = 0
				t.ac[j*nc+c] = 0
			}
			t.ac[c*nc+c] = 1
		}
	}
	choleskyInPlace(t.ac, nc)
}

// twoLevelOmega is the damped-Jacobi smoothing weight. 2/3 is the
// classic choice that damps the upper half of the Laplacian spectrum.
const twoLevelOmega = 2.0 / 3.0

func (t *twoLevelPrecond) apply(z, r []float64, par *parRun) {
	n := t.sys.n
	diag := t.diag
	// Pre-smooth from zero: z = ω D⁻¹ r.
	par.run(n, parMinChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if d := diag[i]; d > 0 {
				z[i] = twoLevelOmega * r[i] / d
			} else {
				z[i] = 0
			}
		}
	})
	z[0] = 0
	// Coarse correction on the smoothed residual.
	par.run(n, parMinChunk, func(lo, hi int) {
		t.sys.spmvRange(t.tmp, z, diag, lo, hi)
	})
	for c := range t.rc {
		t.rc[c] = 0
	}
	for i := 1; i < n; i++ {
		t.rc[t.agg[i]] += r[i] - t.tmp[i]
	}
	choleskySolve(t.ac, t.nc, t.rc)
	for i := 1; i < n; i++ {
		z[i] += t.rc[t.agg[i]]
	}
	// Post-smooth: z += ω D⁻¹ (r − A z). Same smoother on both flanks
	// keeps M symmetric.
	par.run(n, parMinChunk, func(lo, hi int) {
		t.sys.spmvRange(t.tmp, z, diag, lo, hi)
	})
	par.run(n, parMinChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if d := diag[i]; d > 0 {
				z[i] += twoLevelOmega * (r[i] - t.tmp[i]) / d
			}
		}
	})
	z[0] = 0
}

// choleskyInPlace factors the dense SPD matrix a (n×n, row-major) into
// its lower-triangular Cholesky factor, stored in the lower triangle.
// Non-positive pivots (numerically semi-definite inputs) are clamped so
// the factor stays usable as a preconditioner.
func choleskyInPlace(a []float64, n int) {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d < 1e-12 {
			d = 1e-12
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			row := a[i*n:]
			pj := a[j*n:]
			for k := 0; k < j; k++ {
				s -= row[k] * pj[k]
			}
			a[i*n+j] = s * inv
		}
	}
}

// choleskySolve solves L·Lᵀ·x = b in place given the factor from
// choleskyInPlace.
func choleskySolve(l []float64, n int, b []float64) {
	for i := 0; i < n; i++ {
		s := b[i]
		row := l[i*n:]
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * b[k]
		}
		b[i] = s / l[i*n+i]
	}
}

// pcgState carries the per-solve vectors of the CG iteration, allocated
// once and reused across axes and IRLS rounds.
type pcgState struct {
	sys            *lsSystem
	diag, bx, by   []float64
	r, z, p, ap, u []float64
	pre            preconditioner
}

func newPCGState(sys *lsSystem, precond PrecondKind, rows, cols int) *pcgState {
	n := sys.n
	st := &pcgState{
		sys:  sys,
		diag: make([]float64, n),
		bx:   make([]float64, n),
		by:   make([]float64, n),
		r:    make([]float64, n),
		z:    make([]float64, n),
		p:    make([]float64, n),
		ap:   make([]float64, n),
		u:    make([]float64, n),
	}
	if precond == PrecondJacobi {
		st.pre = &jacobiPrecond{diag: st.diag}
	} else {
		st.pre = newTwoLevelPrecond(sys, st.diag, rows, cols)
	}
	return st
}

// refresh recomputes the normal equations and the preconditioner for
// the current IRLS weights.
func (st *pcgState) refresh(par *parRun) {
	par.run(st.sys.n, parMinChunk, func(lo, hi int) {
		st.sys.normalRange(st.diag, st.bx, st.by, lo, hi)
	})
	st.pre.refresh(par)
}

// solveAxis runs PCG on L·u = b − L·p for one axis, updating pos in
// place. It returns the iteration count and the largest per-tile total
// movement of the solve. Convergence matches the GS criterion in spirit:
// stop when the largest per-tile position update of an iteration falls
// below tol.
func (st *pcgState) solveAxis(pos, b []float64, tol float64, maxIter int, par *parRun) (int, float64) {
	n := st.sys.n
	// r = b − L·pos, restricted to the pinned subspace.
	par.run(n, parMinChunk, func(lo, hi int) {
		st.sys.spmvRange(st.ap, pos, st.diag, lo, hi)
	})
	for i := range st.u {
		st.u[i] = 0
		st.r[i] = b[i] - st.ap[i]
	}
	st.r[0] = 0
	st.pre.apply(st.z, st.r, par)
	copy(st.p, st.z)
	rz := par.dot(st.r, st.z)
	iters := 0
	for ; iters < maxIter && rz > 0; iters++ {
		par.run(n, parMinChunk, func(lo, hi int) {
			st.sys.spmvRange(st.ap, st.p, st.diag, lo, hi)
		})
		st.ap[0] = 0
		pap := par.dot(st.p, st.ap)
		if pap <= 0 {
			break
		}
		alpha := rz / pap
		var maxUpd float64
		for i := 1; i < n; i++ {
			d := alpha * st.p[i]
			st.u[i] += d
			if d < 0 {
				d = -d
			}
			if d > maxUpd {
				maxUpd = d
			}
			st.r[i] -= alpha * st.ap[i]
		}
		if maxUpd < tol {
			iters++
			break
		}
		st.pre.apply(st.z, st.r, par)
		rzNew := par.dot(st.r, st.z)
		beta := rzNew / rz
		rz = rzNew
		for i := 1; i < n; i++ {
			st.p[i] = st.z[i] + beta*st.p[i]
		}
		st.p[0] = 0
	}
	var moved float64
	for i := 1; i < n; i++ {
		pos[i] += st.u[i]
		if d := st.u[i]; d > moved {
			moved = d
		} else if -d > moved {
			moved = -d
		}
	}
	return iters, moved
}

