package global

import (
	"testing"

	"hybridstitch/internal/fault"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// TestSolvePlacesDegradedRun: the end-to-end contract of the fault
// layer — a phase-1 run that lost 3 tiles to permanent read failures
// still completes, and phase 2 positions every tile (the spanning tree
// reconnects the casualties' neighbors through surviving edges, and
// component stitching places even a fully isolated tile at its nominal
// offset). The surviving tiles must land within a few pixels of ground
// truth.
func TestSolvePlacesDegradedRun(t *testing.T) {
	p := imagegen.DefaultParams(8, 8, 64, 48)
	p.Seed = 3
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	g := src.Grid()

	inj, err := fault.ParseSpec(
		"stitch.read@r001_c002:always;stitch.read@r004_c004:always;stitch.read@r007_c000:always")
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{
		Threads: 3, Faults: inj, MaxRetries: 2, Degrade: true,
	})
	if err != nil {
		t.Fatalf("degraded run aborted: %v", err)
	}
	if len(res.DegradedTiles) != 3 {
		t.Fatalf("degraded tiles = %v, want 3", res.DegradedTiles)
	}

	pl, err := Solve(res, Options{RepairOutliers: true})
	if err != nil {
		t.Fatalf("phase 2 on degraded result: %v", err)
	}
	if len(pl.X) != g.NumTiles() || len(pl.Y) != g.NumTiles() {
		t.Fatalf("placement covers %d tiles, want %d", len(pl.X), g.NumTiles())
	}

	// The 61 surviving tiles must be placed accurately despite the holes
	// in the displacement graph. Compare pairwise offsets against ground
	// truth relative to a surviving anchor tile.
	degraded := map[int]bool{}
	for _, dt := range res.DegradedTiles {
		degraded[g.Index(dt.Coord)] = true
	}
	anchor := g.Index(tile.Coord{Row: 0, Col: 0})
	if degraded[anchor] {
		t.Fatal("test setup: anchor tile must survive")
	}
	const tol = 3 // px; degraded neighborhoods may lean on nominal offsets
	checked := 0
	for i := 0; i < g.NumTiles(); i++ {
		if degraded[i] {
			continue
		}
		wantX := ds.TruthX[i] - ds.TruthX[anchor]
		wantY := ds.TruthY[i] - ds.TruthY[anchor]
		gotX := pl.X[i] - pl.X[anchor]
		gotY := pl.Y[i] - pl.Y[anchor]
		if abs(gotX-wantX) > tol || abs(gotY-wantY) > tol {
			t.Errorf("tile %v placed at (%d,%d) rel anchor, truth (%d,%d)",
				g.CoordOf(i), gotX, gotY, wantX, wantY)
		}
		checked++
	}
	if want := g.NumTiles() - 3; checked != want {
		t.Fatalf("checked %d surviving tiles, want %d", checked, want)
	}
}
