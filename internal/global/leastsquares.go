package global

import (
	"fmt"
	"math"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// This file implements the paper's other phase-2 option: instead of
// "selecting a subset of the relative displacements" (the spanning tree
// of Solve), it "uses a global optimization approach to adjust them to a
// path invariant state in the graph" — a correlation-weighted
// least-squares placement. Each axis is solved independently: minimize
//
//	Σ_e  w_e · (p_to − p_from − d_e)²
//
// over tile positions p, with w_e = max(corr_e, ε). The normal equations
// form a graph Laplacian system (tile 0 pinned to remove the translation
// null space) solved by one of two engines: the seed's serial
// Gauss-Seidel sweeps, retained bit-identical as the differential
// oracle, or the parallel preconditioned conjugate-gradient engine in
// pcg.go, which `auto` selects above a size threshold. Robustness comes
// from IRLS reweighting (Cauchy loss) around either engine; the sparse
// system itself is built once and reweighted in place (sparse.go).

// SolverKind selects the phase-2 least-squares engine.
type SolverKind string

const (
	// SolverAuto (the zero value) picks PCG at or above
	// autoPCGMinTiles tiles and Gauss-Seidel below it — small plates
	// keep the seed solver's exact arithmetic, large plates get the
	// parallel engine.
	SolverAuto SolverKind = ""
	// SolverGS forces the serial Gauss-Seidel sweeps.
	SolverGS SolverKind = "gs"
	// SolverPCG forces the preconditioned conjugate-gradient engine.
	SolverPCG SolverKind = "pcg"
)

// PrecondKind selects the PCG preconditioner.
type PrecondKind string

const (
	// PrecondTwoLevel (the zero value) is the aggregation hierarchy:
	// super-tile coarse solve between damped-Jacobi smoothing flanks.
	// Iteration counts stay in the tens regardless of plate size.
	PrecondTwoLevel PrecondKind = ""
	// PrecondJacobi is plain diagonal scaling — the baseline arm, kept
	// for the differential matrix and for triage.
	PrecondJacobi PrecondKind = "jacobi"
)

// autoPCGMinTiles is the grid size at which SolverAuto switches from the
// seed Gauss-Seidel to PCG. Below it the serial sweeps finish in
// microseconds and bit-compatibility with historical snapshots is worth
// more than the speedup.
const autoPCGMinTiles = 1024

// irlsRoundTolFactor scales LSOptions.Tol into the round-level IRLS
// convergence threshold on the PCG path: a round whose largest total
// position movement stays under factor·Tol (0.01 px at the default Tol)
// has fixed-pointed — reweighting from essentially unchanged positions
// yields essentially unchanged weights.
const irlsRoundTolFactor = 100

// ParseSolverKind maps a CLI flag value to a SolverKind.
func ParseSolverKind(s string) (SolverKind, error) {
	switch s {
	case "", "auto":
		return SolverAuto, nil
	case "gs":
		return SolverGS, nil
	case "pcg":
		return SolverPCG, nil
	}
	return SolverAuto, fmt.Errorf("global: unknown solver %q (want auto, gs, or pcg)", s)
}

// ParsePrecondKind maps a CLI flag value to a PrecondKind.
func ParsePrecondKind(s string) (PrecondKind, error) {
	switch s {
	case "", "auto", "twolevel", "two-level":
		return PrecondTwoLevel, nil
	case "jacobi":
		return PrecondJacobi, nil
	}
	return PrecondTwoLevel, fmt.Errorf("global: unknown preconditioner %q (want twolevel or jacobi)", s)
}

// LSOptions tunes SolveLeastSquares.
type LSOptions struct {
	// MinCorr excludes edges below this correlation from the system
	// entirely (they contribute no information).
	MinCorr float64
	// MaxIter bounds the iterations per reweighting round — Gauss-Seidel
	// sweeps or CG iterations per axis; 0 picks 100·√tiles (a cap CG
	// never approaches).
	MaxIter int
	// Tol stops iteration when the largest per-tile position update of a
	// sweep (GS) or iteration (CG) falls below it (pixels); 0 picks 1e-4.
	Tol float64
	// Rounds is the number of IRLS reweighting rounds: after each
	// solve, edges are down-weighted by their residual (Cauchy loss),
	// which defuses confidently-wrong displacements — the phase
	// correlation failure mode on featureless overlaps. 0 picks 5;
	// 1 is plain (non-robust) least squares.
	Rounds int
	// ResidualScale is the Cauchy scale c in w ← w/(1+(r/c)²); 0 picks
	// 2 px.
	ResidualScale float64
	// Unweighted ignores per-edge confidence entirely: every surviving
	// measured edge gets weight 1 and no IRLS reweighting runs (Rounds
	// is forced to 1). This is the plain least-squares baseline the
	// accuracy harness differentials the weighted solve against — on
	// adversarial plates it lets one confidently-wrong displacement drag
	// whole rows of tiles. Production callers leave it false.
	Unweighted bool
	// Solver picks the engine: auto (PCG above autoPCGMinTiles tiles,
	// Gauss-Seidel below), gs, or pcg.
	Solver SolverKind
	// Precond picks the PCG preconditioner: the two-level aggregation
	// hierarchy (default) or plain Jacobi.
	Precond PrecondKind
	// Warm seeds the solve from a previous placement of the SAME grid
	// instead of the robust spanning tree — the rolling re-solve path.
	// For grids that grew since the previous solve, use Resolver, which
	// maps the old placement onto the new grid.
	Warm *Placement
	// Pool is the worker budget PCG's SpMV/dot/reweight fan-outs draw
	// from; nil means fft.SharedPool(). Phase 2 reserves idle tokens for
	// the solve's duration and releases them on return, so it composes
	// with phase-1 pair-worker reservations instead of oversubscribing.
	Pool *fft.WorkerPool
	// Obs, when non-nil, records a "solve.ls" span on the phase2 track
	// plus the global.ls.* counters (rounds, GS sweeps, CG iterations)
	// and the final max-residual gauge.
	Obs *obs.Recorder

	// warmIncremental (set by Resolver for warm re-solves) runs a single
	// IRLS round WITH the reweighting pass: the warm positions already
	// encode the robust fixed point of the previous plate, so one
	// informed reweight+solve is the incremental IRLS step — repeated
	// appends keep converging across Solve calls instead of paying the
	// full round budget per append.
	warmIncremental bool
}

func (o LSOptions) withDefaults(n int) LSOptions {
	if o.Unweighted {
		o.Rounds = 1
	}
	if o.MinCorr == 0 {
		o.MinCorr = 0.3
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100 * int(math.Sqrt(float64(n))+1)
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	if o.ResidualScale == 0 {
		o.ResidualScale = 2
	}
	return o
}

// effectiveSolver resolves SolverAuto against the plate size.
func (o LSOptions) effectiveSolver(n int) SolverKind {
	switch o.Solver {
	case SolverGS, SolverPCG:
		return o.Solver
	}
	if n >= autoPCGMinTiles {
		return SolverPCG
	}
	return SolverGS
}

// SolveLeastSquares computes absolute positions by global optimization.
// Compared with the spanning tree, it averages the over-constraint
// instead of discarding it: every displacement influences the result in
// proportion to its confidence, which typically halves the RMS position
// error under per-edge noise (see the solver-comparison experiment).
func SolveLeastSquares(res *stitch.Result, opts LSOptions) (*Placement, error) {
	var warmX, warmY []float64
	if opts.Warm != nil {
		n := res.Grid.NumTiles()
		if len(opts.Warm.X) != n || len(opts.Warm.Y) != n {
			return nil, fmt.Errorf("global: warm placement has %d/%d tiles, grid has %d",
				len(opts.Warm.X), len(opts.Warm.Y), n)
		}
		warmX = make([]float64, n)
		warmY = make([]float64, n)
		for i := 0; i < n; i++ {
			warmX[i] = float64(opts.Warm.X[i])
			warmY[i] = float64(opts.Warm.Y[i])
		}
	}
	pl, _, _, err := solveLS(res, opts, warmX, warmY)
	return pl, err
}

// solveLS is the shared driver behind SolveLeastSquares and Resolver:
// build the sparse system once, seed positions (warm vectors, else the
// robust spanning tree, else nominal), then run IRLS rounds around the
// selected engine. It returns the placement plus the un-normalized float
// solution, which Resolver retains as the next warm start.
func solveLS(res *stitch.Result, opts LSOptions, warmX, warmY []float64) (*Placement, []float64, []float64, error) {
	g := res.Grid
	if err := g.Validate(); err != nil {
		return nil, nil, nil, err
	}
	n := g.NumTiles()
	opts = opts.withDefaults(n)
	kind := opts.effectiveSolver(n)

	sp := opts.Obs.StartSpan(obs.TrackPhase2, obs.SpanSolveLS,
		obs.String("grid", fmt.Sprintf("%dx%d", g.Rows, g.Cols)),
		obs.String("solver", solverLabel(kind, opts.Precond)))
	defer sp.End()

	edges, dropped, err := buildLSEdges(res, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	sys := newLSSystem(n, edges)

	// Initialize from the warm placement when given; otherwise from the
	// robust spanning-tree placement (nominal positions as a fallback).
	// IRLS converges to the nearest local minimum, so starting from a
	// fit that outliers cannot drag makes the first residuals meaningful
	// and the suppression decisive.
	px, py := warmX, warmY
	if px == nil {
		px = make([]float64, n)
		py = make([]float64, n)
		if seed, err := Solve(res, Options{MinCorr: opts.MinCorr, RepairOutliers: true}); err == nil {
			for i := 0; i < n; i++ {
				px[i] = float64(seed.X[i])
				py[i] = float64(seed.Y[i])
			}
		} else {
			nomW := g.NominalDisplacement(tile.West)
			nomN := g.NominalDisplacement(tile.North)
			for i := 0; i < n; i++ {
				c := g.CoordOf(i)
				px[i] = float64(c.Col * nomW.X)
				py[i] = float64(c.Row * nomN.Y)
			}
		}
	}

	// IRLS rounds: reweight from the current positions (the seed
	// supplies the first residuals, so outliers are suppressed BEFORE
	// the first solve), then solve. With Rounds=1 the weights stay at
	// their correlation values (plain weighted least squares).
	c2 := opts.ResidualScale * opts.ResidualScale
	reweight := opts.Rounds > 1 || (opts.warmIncremental && !opts.Unweighted)
	roundsRun, gsSweeps, cgIters := 0, 0, 0
	switch kind {
	case SolverPCG:
		par := newParRun(opts.Pool)
		defer par.release()
		st := newPCGState(sys, opts.Precond, g.Rows, g.Cols)
		for round := 0; round < opts.Rounds; round++ {
			roundsRun++
			if reweight {
				par.run(len(sys.edges), parMinChunk, func(lo, hi int) {
					sys.reweightRange(px, py, c2, lo, hi)
				})
			}
			st.refresh(par)
			ix, mx := st.solveAxis(px, st.bx, opts.Tol, opts.MaxIter, par)
			iy, my := st.solveAxis(py, st.by, opts.Tol, opts.MaxIter, par)
			cgIters += ix + iy
			// Round-level IRLS convergence: if this round barely moved
			// any tile, the next reweighting changes the weights by the
			// same order — the iteration has fixed-pointed and further
			// rounds would re-solve an unchanged system. This is what
			// makes warm re-solves cheap: the first round does the
			// (local) correction, then the loop exits instead of paying
			// full CG cost four more times.
			if mx < irlsRoundTolFactor*opts.Tol && my < irlsRoundTolFactor*opts.Tol {
				break
			}
		}
		if opts.Obs != nil {
			st.refresh(par)
			opts.Obs.Gauge(obs.GaugeLSResidualPx).Set(sys.residualMax(px, py, st.diag, st.bx, st.by))
		}
	default: // SolverGS — the seed path, arithmetic-identical.
		for round := 0; round < opts.Rounds; round++ {
			roundsRun++
			if reweight {
				sys.reweightRange(px, py, c2, 0, len(sys.edges))
			}
			for it := 0; it < opts.MaxIter; it++ {
				gsSweeps++
				if sys.gsSweep(px, py) < opts.Tol {
					break
				}
			}
		}
		if opts.Obs != nil {
			diag := make([]float64, n)
			bx := make([]float64, n)
			by := make([]float64, n)
			sys.normalRange(diag, bx, by, 0, n)
			opts.Obs.Gauge(obs.GaugeLSResidualPx).Set(sys.residualMax(px, py, diag, bx, by))
		}
	}
	opts.Obs.Counter(obs.CounterLSRounds).Add(int64(roundsRun))
	opts.Obs.Counter(obs.CounterLSSweepsGS).Add(int64(gsSweeps))
	opts.Obs.Counter(obs.CounterLSItersCG).Add(int64(cgIters))

	pl := &Placement{Grid: g, X: make([]int, n), Y: make([]int, n), Dropped: dropped}
	for i := 0; i < n; i++ {
		pl.X[i] = int(math.Round(px[i]))
		pl.Y[i] = int(math.Round(py[i]))
	}
	pl.normalize()
	return pl, px, py, nil
}

func solverLabel(kind SolverKind, pre PrecondKind) string {
	if kind != SolverPCG {
		return string(SolverGS)
	}
	if pre == PrecondJacobi {
		return "pcg/jacobi"
	}
	return "pcg/twolevel"
}
