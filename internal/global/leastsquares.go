package global

import (
	"fmt"
	"math"

	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// This file implements the paper's other phase-2 option: instead of
// "selecting a subset of the relative displacements" (the spanning tree
// of Solve), it "uses a global optimization approach to adjust them to a
// path invariant state in the graph" — a correlation-weighted
// least-squares placement. Each axis is solved independently: minimize
//
//	Σ_e  w_e · (p_to − p_from − d_e)²
//
// over tile positions p, with w_e = max(corr_e, ε). The normal equations
// form a graph Laplacian system solved by Gauss-Seidel sweeps (the matrix
// is diagonally dominant for connected graphs, so the iteration
// converges; tile 0 is pinned to remove the translation null space).

// LSOptions tunes SolveLeastSquares.
type LSOptions struct {
	// MinCorr excludes edges below this correlation from the system
	// entirely (they contribute no information).
	MinCorr float64
	// MaxIter bounds the Gauss-Seidel sweeps per reweighting round; 0
	// picks 100·√tiles.
	MaxIter int
	// Tol stops iteration when the largest per-tile position update in
	// a sweep falls below it (pixels); 0 picks 1e-4.
	Tol float64
	// Rounds is the number of IRLS reweighting rounds: after each
	// solve, edges are down-weighted by their residual (Cauchy loss),
	// which defuses confidently-wrong displacements — the phase
	// correlation failure mode on featureless overlaps. 0 picks 5;
	// 1 is plain (non-robust) least squares.
	Rounds int
	// ResidualScale is the Cauchy scale c in w ← w/(1+(r/c)²); 0 picks
	// 2 px.
	ResidualScale float64
	// Unweighted ignores per-edge confidence entirely: every surviving
	// measured edge gets weight 1 and no IRLS reweighting runs (Rounds
	// is forced to 1). This is the plain least-squares baseline the
	// accuracy harness differentials the weighted solve against — on
	// adversarial plates it lets one confidently-wrong displacement drag
	// whole rows of tiles. Production callers leave it false.
	Unweighted bool
}

func (o LSOptions) withDefaults(n int) LSOptions {
	if o.Unweighted {
		o.Rounds = 1
	}
	if o.MinCorr == 0 {
		o.MinCorr = 0.3
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100 * int(math.Sqrt(float64(n))+1)
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	if o.ResidualScale == 0 {
		o.ResidualScale = 2
	}
	return o
}

// SolveLeastSquares computes absolute positions by global optimization.
// Compared with the spanning tree, it averages the over-constraint
// instead of discarding it: every displacement influences the result in
// proportion to its confidence, which typically halves the RMS position
// error under per-edge noise (see the solver-comparison experiment).
func SolveLeastSquares(res *stitch.Result, opts LSOptions) (*Placement, error) {
	g := res.Grid
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.NumTiles()
	opts = opts.withDefaults(n)

	type lsEdge struct {
		from, to int
		dx, dy   int
		w        float64
	}
	var edges []lsEdge
	dropped := 0
	var westDX, westDY, northDX, northDY []int
	for _, p := range g.Pairs() {
		d, ok := res.PairDisplacement(p)
		if !ok || d.Corr < opts.MinCorr {
			dropped++
			continue
		}
		if p.Dir == tile.West {
			westDX = append(westDX, d.X)
			westDY = append(westDY, d.Y)
		} else {
			northDX = append(northDX, d.X)
			northDY = append(northDY, d.Y)
		}
		w := math.Max(d.Corr, 1e-3)
		if opts.Unweighted {
			w = 1
		}
		edges = append(edges, lsEdge{
			from: g.Index(p.Neighbor()),
			to:   g.Index(p.Coord),
			dx:   d.X, dy: d.Y,
			w: w,
		})
	}
	// Stage-model prior: every pair also gets a weak edge at the median
	// per-direction displacement (the mechanical stage is consistent).
	// Good measurements (w ≈ 0.9) dominate it; pairs whose measurement
	// was dropped or gets IRLS-suppressed fall back to the stage model —
	// the least-squares analogue of Solve's outlier repair.
	const priorW = 0.02
	medWX, medWY := median(westDX), median(westDY)
	medNX, medNY := median(northDX), median(northDY)
	for _, p := range g.Pairs() {
		dx, dy := medWX, medWY
		if p.Dir == tile.North {
			dx, dy = medNX, medNY
		}
		edges = append(edges, lsEdge{
			from: g.Index(p.Neighbor()),
			to:   g.Index(p.Coord),
			dx:   dx, dy: dy, w: priorW,
		})
	}

	// Connectivity check with nominal-edge reconnection, mirroring
	// Solve: an unconstrained tile would make the system singular.
	dsu := newDSU(n)
	for _, e := range edges {
		dsu.union(e.from, e.to)
	}
	nomW := g.NominalDisplacement(tile.West)
	nomN := g.NominalDisplacement(tile.North)
	for _, p := range g.Pairs() {
		bi, ai := g.Index(p.Coord), g.Index(p.Neighbor())
		if !dsu.union(ai, bi) {
			continue
		}
		nom := nomW
		if p.Dir == tile.North {
			nom = nomN
		}
		// Nominal edges carry a small weight: enough to anchor the
		// component, not enough to fight measured edges.
		edges = append(edges, lsEdge{from: ai, to: bi, dx: nom.X, dy: nom.Y, w: 1e-3})
	}
	root := dsu.find(0)
	for i := 1; i < n; i++ {
		if dsu.find(i) != root {
			return nil, fmt.Errorf("global: tile %d unreachable even after nominal reconnection", i)
		}
	}

	// Initialize from the robust spanning-tree placement (nominal
	// positions as a fallback): IRLS converges to the nearest local
	// minimum, so starting from a fit that outliers cannot drag makes
	// the first residuals meaningful and the suppression decisive.
	px := make([]float64, n)
	py := make([]float64, n)
	if seed, err := Solve(res, Options{MinCorr: opts.MinCorr, RepairOutliers: true}); err == nil {
		for i := 0; i < n; i++ {
			px[i] = float64(seed.X[i])
			py[i] = float64(seed.Y[i])
		}
	} else {
		for i := 0; i < n; i++ {
			c := g.CoordOf(i)
			px[i] = float64(c.Col * nomW.X)
			py[i] = float64(c.Row * nomN.Y)
		}
	}

	// IRLS rounds: reweight from the current positions (the robust seed
	// supplies the first residuals, so outliers are suppressed BEFORE
	// the first solve), then run Gauss-Seidel sweeps. With Rounds=1 the
	// weights stay at their correlation values (plain weighted least
	// squares, no robustness).
	robustW := make([]float64, len(edges))
	for i, e := range edges {
		robustW[i] = e.w
	}
	reweight := func(scale float64) {
		c2 := scale * scale
		for i, e := range edges {
			rx := px[e.to] - px[e.from] - float64(e.dx)
			ry := py[e.to] - py[e.from] - float64(e.dy)
			robustW[i] = e.w / (1 + (rx*rx+ry*ry)/c2)
		}
	}
	type nb struct {
		j      int
		dx, dy float64
		w      float64
	}
	for round := 0; round < opts.Rounds; round++ {
		if opts.Rounds > 1 {
			reweight(opts.ResidualScale)
		}
		adj := make([][]nb, n)
		for i, e := range edges {
			adj[e.to] = append(adj[e.to], nb{j: e.from, dx: float64(e.dx), dy: float64(e.dy), w: robustW[i]})
			adj[e.from] = append(adj[e.from], nb{j: e.to, dx: -float64(e.dx), dy: -float64(e.dy), w: robustW[i]})
		}
		// Gauss-Seidel: p_i ← Σ_j w_ij (p_j + d_ji) / Σ_j w_ij, tile 0
		// pinned.
		for it := 0; it < opts.MaxIter; it++ {
			var maxDelta float64
			for i := 1; i < n; i++ {
				var sw, sx, sy float64
				for _, e := range adj[i] {
					// p_i should equal p_j + d(j→i); e.dx is d(e.j→i).
					sw += e.w
					sx += e.w * (px[e.j] + e.dx)
					sy += e.w * (py[e.j] + e.dy)
				}
				if sw == 0 {
					continue
				}
				nx, ny := sx/sw, sy/sw
				if d := math.Abs(nx - px[i]); d > maxDelta {
					maxDelta = d
				}
				if d := math.Abs(ny - py[i]); d > maxDelta {
					maxDelta = d
				}
				px[i], py[i] = nx, ny
			}
			if maxDelta < opts.Tol {
				break
			}
		}
	}

	pl := &Placement{Grid: g, X: make([]int, n), Y: make([]int, n), Dropped: dropped}
	for i := 0; i < n; i++ {
		pl.X[i] = int(math.Round(px[i]))
		pl.Y[i] = int(math.Round(py[i]))
	}
	pl.normalize()
	return pl, nil
}
