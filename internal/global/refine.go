package global

import (
	"hybridstitch/internal/pciam"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// RefineOptions tunes RefineResult.
type RefineOptions struct {
	// MinCorr: pairs at or above this confidence are left untouched.
	MinCorr float64
	// Radius bounds the hill climb around the stage-model prediction.
	Radius int
	// Greedy uses 8-neighborhood hill climbing instead of the default
	// exhaustive ±Radius window. Cheaper (a few CCF evaluations instead
	// of (2R+1)²) but only reliable when the stage model is within
	// ~2 px: fine texture puts local maxima on the CCF surface.
	Greedy bool
	// MaxModelDeviation, when > 0, additionally re-searches pairs whose
	// displacement deviates from the stage-model prediction by more than
	// this many pixels on either axis even when their correlation is
	// high — the prediction-seeded refinement of robust stitching.
	// Periodic textures and illumination fixed patterns produce
	// confidently-wrong peaks; a displacement the fitted stage model
	// calls geometrically impossible is replaced by the best
	// positive-correlation displacement near the prediction.
	MaxModelDeviation int
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.MinCorr == 0 {
		o.MinCorr = 0.5
	}
	if o.Radius == 0 {
		o.Radius = 6
	}
	return o
}

// RefineResult replaces every low-confidence displacement in res with a
// CCF search seeded at the per-direction median (the stage model) — the
// MIST-style repair pass between phases 1 and 2. It returns the number
// of pairs refined. The source must serve the same tiles phase 1 read.
func RefineResult(res *stitch.Result, src stitch.Source, opts RefineOptions) (int, error) {
	opts = opts.withDefaults()
	g := res.Grid

	// Linear stage model from the confident pairs: captures preset
	// overlap plus systematic row/column-dependent errors (thermal
	// drift, skew). Falls back to nominal for directions with no
	// confident pairs.
	sm := FitStageModel(res, opts.MinCorr)

	refined := 0
	po := pciam.Options{}
	for _, p := range g.Pairs() {
		d, ok := res.PairDisplacement(p)
		start := sm.Predict(p)
		if (p.Dir == tile.West && sm.ConfidentWest == 0) ||
			(p.Dir == tile.North && sm.ConfidentNorth == 0) {
			start = g.NominalDisplacement(p.Dir)
		}
		// Two triggers: low confidence (the classic featureless-overlap
		// repair) and, optionally, geometric implausibility — a
		// confident displacement the stage model puts more than
		// MaxModelDeviation px from its prediction (aliased periodic
		// peak, illumination fixed-pattern lock).
		lowConf := !ok || d.Corr < opts.MinCorr
		implausible := ok && !lowConf && opts.MaxModelDeviation > 0 &&
			(absInt(d.X-start.X) > opts.MaxModelDeviation || absInt(d.Y-start.Y) > opts.MaxModelDeviation)
		if !lowConf && !implausible {
			continue
		}
		a, err := src.ReadTile(p.Neighbor())
		if err != nil {
			return refined, err
		}
		b, err := src.ReadTile(p.Coord)
		if err != nil {
			return refined, err
		}
		var nd tile.Displacement
		if opts.Greedy {
			nd = pciam.Refine(a, b, start, opts.Radius, 0, po)
		} else {
			nd = pciam.ExhaustiveRefine(a, b, start, opts.Radius, po)
		}
		if implausible {
			// The measurement is geometrically impossible: any positive
			// correlation near the prediction beats it, regardless of
			// how confident the impossible peak was.
			if nd.Corr <= 0 {
				continue
			}
		} else if ok && d.Corr >= nd.Corr {
			// Keep the original if the search found nothing better than
			// the measurement (possible when the measurement was
			// low-confidence but correct).
			continue
		}
		setPair(res, p, nd)
		refined++
	}
	return refined, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// setPair mirrors the private Result helper for use from this package.
func setPair(r *stitch.Result, p tile.Pair, d tile.Displacement) {
	i := r.Grid.Index(p.Coord)
	if p.Dir == tile.West {
		r.West[i] = d
	} else {
		r.North[i] = d
	}
}
