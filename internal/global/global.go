// Package global implements the second phase of the stitching algorithm:
// resolving the over-constrained system of pair-wise displacements into
// absolute tile positions. The displacements form a directed graph whose
// path sums must be invariant; the paper resolves the over-constraint by
// "selecting a subset of the relative displacements" — here a maximum
// spanning tree over correlation quality, with optional outlier repair in
// the style the NIST group later shipped in MIST (low-confidence edges
// snap to the median stage displacement before tree construction).
package global

import (
	"fmt"
	"math"
	"sort"

	"hybridstitch/internal/obs"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// Options tunes the solver.
type Options struct {
	// MinCorr discards edges whose correlation is below this threshold
	// before building the tree (they rejoin via repair if enabled).
	MinCorr float64
	// RepairOutliers replaces displacements that deviate from the
	// per-direction median by more than MaxDeviation with the median —
	// the stage-model repair for featureless overlaps.
	RepairOutliers bool
	// MaxDeviation is the per-axis pixel deviation tolerated before an
	// edge counts as an outlier. Zero derives a robust threshold from
	// the observed median absolute deviation (5·MAD+3).
	MaxDeviation int
	// Obs, when non-nil, records a "solve" span on the phase2 track and
	// the global.edges.repaired / global.edges.dropped counters.
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.MinCorr == 0 {
		o.MinCorr = 0.3
	}
	return o
}

// Placement is the phase-2 output: absolute tile positions.
type Placement struct {
	Grid tile.Grid
	// X, Y are per-tile absolute positions (grid-index order),
	// normalized so the minimum is 0.
	X, Y []int
	// Repaired counts edges snapped to the median displacement.
	Repaired int
	// Dropped counts edges excluded from the tree for low correlation.
	Dropped int
	// TreeCorrMin is the weakest correlation used in the spanning tree.
	TreeCorrMin float64
}

// edge is one usable pair displacement.
type edge struct {
	from, to int // grid indices; displacement positions `to` relative to `from`
	dx, dy   int
	corr     float64
	repaired bool
}

// Solve computes absolute positions from phase-1 output.
func Solve(res *stitch.Result, opts Options) (*Placement, error) {
	g := res.Grid
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	sp := opts.Obs.StartSpan(obs.TrackPhase2, obs.SpanSolve,
		obs.String("grid", fmt.Sprintf("%dx%d", g.Rows, g.Cols)))
	defer sp.End()
	edges, dropped, repaired := collectEdges(res, opts)
	opts.Obs.Counter(obs.CounterEdgesRepaired).Add(int64(repaired))
	opts.Obs.Counter(obs.CounterEdgesDropped).Add(int64(dropped))

	n := g.NumTiles()
	// Maximum spanning tree by correlation (Kruskal).
	sort.Slice(edges, func(i, j int) bool { return edges[i].corr > edges[j].corr })
	dsu := newDSU(n)
	adj := make([][]edge, n)
	used := 0
	treeMin := math.Inf(1)
	for _, e := range edges {
		if !dsu.union(e.from, e.to) {
			continue
		}
		adj[e.from] = append(adj[e.from], e)
		adj[e.to] = append(adj[e.to], edge{from: e.to, to: e.from, dx: -e.dx, dy: -e.dy, corr: e.corr})
		used++
		if e.corr < treeMin {
			treeMin = e.corr
		}
	}
	// Reconnect any components the correlation filter disconnected using
	// nominal displacements, so every tile gets a position.
	if used < n-1 {
		nomW := g.NominalDisplacement(tile.West)
		nomN := g.NominalDisplacement(tile.North)
		for _, p := range g.Pairs() {
			bi := g.Index(p.Coord)
			ai := g.Index(p.Neighbor())
			if !dsu.union(ai, bi) {
				continue
			}
			nom := nomW
			if p.Dir == tile.North {
				nom = nomN
			}
			adj[ai] = append(adj[ai], edge{from: ai, to: bi, dx: nom.X, dy: nom.Y})
			adj[bi] = append(adj[bi], edge{from: bi, to: ai, dx: -nom.X, dy: -nom.Y})
			used++
		}
	}
	if used < n-1 {
		return nil, fmt.Errorf("global: placement graph still disconnected (%d/%d tree edges)", used, n-1)
	}

	// BFS from tile 0 assigning positions.
	X := make([]int, n)
	Y := make([]int, n)
	visited := make([]bool, n)
	queue := []int{0}
	visited[0] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range adj[u] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			X[e.to] = X[u] + e.dx
			Y[e.to] = Y[u] + e.dy
			queue = append(queue, e.to)
		}
	}
	for i, v := range visited {
		if !v {
			return nil, fmt.Errorf("global: tile %d unreachable in placement tree", i)
		}
	}

	pl := &Placement{Grid: g, X: X, Y: Y, Repaired: repaired, Dropped: dropped}
	if !math.IsInf(treeMin, 1) {
		pl.TreeCorrMin = treeMin
	}
	pl.normalize()
	return pl, nil
}

// collectEdges gathers the usable displacements, applying correlation
// filtering and optional outlier repair.
func collectEdges(res *stitch.Result, opts Options) (edges []edge, dropped, repaired int) {
	g := res.Grid
	// Per-direction medians for repair.
	var westDX, westDY, northDX, northDY []int
	for _, p := range g.Pairs() {
		d, ok := res.PairDisplacement(p)
		if !ok {
			continue
		}
		if p.Dir == tile.West {
			westDX = append(westDX, d.X)
			westDY = append(westDY, d.Y)
		} else {
			northDX = append(northDX, d.X)
			northDY = append(northDY, d.Y)
		}
	}
	medWX, medWY := median(westDX), median(westDY)
	medNX, medNY := median(northDX), median(northDY)
	devW := opts.MaxDeviation
	if devW == 0 {
		devW = 5*maxInt(mad(westDX, medWX), mad(westDY, medWY)) + 3
	}
	devN := opts.MaxDeviation
	if opts.MaxDeviation == 0 {
		devN = 5*maxInt(mad(northDX, medNX), mad(northDY, medNY)) + 3
	}

	for _, p := range g.Pairs() {
		d, ok := res.PairDisplacement(p)
		if !ok {
			dropped++
			continue
		}
		medX, medY, dev := medWX, medWY, devW
		if p.Dir == tile.North {
			medX, medY, dev = medNX, medNY, devN
		}
		outlier := abs(d.X-medX) > dev || abs(d.Y-medY) > dev
		e := edge{
			from: g.Index(p.Neighbor()),
			to:   g.Index(p.Coord),
			dx:   d.X, dy: d.Y, corr: d.Corr,
		}
		switch {
		case d.Corr < opts.MinCorr && opts.RepairOutliers,
			outlier && opts.RepairOutliers:
			e.dx, e.dy = medX, medY
			e.corr = opts.MinCorr // repaired edges rank below measured ones
			e.repaired = true
			repaired++
			edges = append(edges, e)
		case d.Corr < opts.MinCorr:
			dropped++
		default:
			edges = append(edges, e)
		}
	}
	return edges, dropped, repaired
}

// normalize shifts positions so min X and Y are zero.
func (p *Placement) normalize() {
	if len(p.X) == 0 {
		return
	}
	minX, minY := p.X[0], p.Y[0]
	for i := range p.X {
		if p.X[i] < minX {
			minX = p.X[i]
		}
		if p.Y[i] < minY {
			minY = p.Y[i]
		}
	}
	for i := range p.X {
		p.X[i] -= minX
		p.Y[i] -= minY
	}
}

// Bounds returns the composite image dimensions implied by the
// placement.
func (p *Placement) Bounds() (w, h int) {
	for i := range p.X {
		if x := p.X[i] + p.Grid.TileW; x > w {
			w = x
		}
		if y := p.Y[i] + p.Grid.TileH; y > h {
			h = y
		}
	}
	return w, h
}

// RMSError compares a placement against ground-truth positions (both
// normalized to a common origin) and returns the root-mean-square
// per-tile position error in pixels.
func RMSError(p *Placement, truthX, truthY []int) (float64, error) {
	if len(truthX) != len(p.X) || len(truthY) != len(p.Y) {
		return 0, fmt.Errorf("global: truth has %d/%d entries, placement has %d", len(truthX), len(truthY), len(p.X))
	}
	// Normalize truth the same way.
	minX, minY := truthX[0], truthY[0]
	for i := range truthX {
		if truthX[i] < minX {
			minX = truthX[i]
		}
		if truthY[i] < minY {
			minY = truthY[i]
		}
	}
	var sum float64
	for i := range p.X {
		dx := float64(p.X[i] - (truthX[i] - minX))
		dy := float64(p.Y[i] - (truthY[i] - minY))
		sum += dx*dx + dy*dy
	}
	return math.Sqrt(sum / float64(len(p.X))), nil
}

// dsu is a union-find structure for Kruskal.
type dsu struct {
	parent []int
	rank   []int
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int, n), rank: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// union merges the sets of a and b, returning false if already joined.
func (d *dsu) union(a, b int) bool {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return true
}

// median returns the median of xs (0 for empty input).
func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[len(s)/2]
}

// mad returns the median absolute deviation around med.
func mad(xs []int, med int) int {
	if len(xs) == 0 {
		return 0
	}
	devs := make([]int, len(xs))
	for i, x := range xs {
		devs[i] = abs(x - med)
	}
	return median(devs)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
