package global

import (
	"math/rand"
	"testing"
)

// FuzzCSRLaplacian drives newLSSystem with randomized edge lists and
// checks the CSR structure invariants plus the numerical kernels against
// naive references: SpMV and the normal equations against a dense
// Laplacian, and gsSweep against an adjacency-list sweep built in the
// same append order (which must match bit-for-bit — that order is the
// seed-oracle contract).
func FuzzCSRLaplacian(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(12))
	f.Add(int64(42), uint8(1), uint8(0))
	f.Add(int64(7), uint8(40), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, nodes, edgeCount uint8) {
		n := int(nodes)%48 + 2
		ne := int(edgeCount) % 160
		rng := rand.New(rand.NewSource(seed))
		edges := make([]lsEdge, 0, ne)
		for i := 0; i < ne; i++ {
			from := rng.Intn(n)
			to := rng.Intn(n)
			if from == to {
				continue
			}
			edges = append(edges, lsEdge{
				from: from, to: to,
				dx: rng.Intn(201) - 100, dy: rng.Intn(201) - 100,
				w: 1e-3 + rng.Float64(),
			})
		}
		sys := newLSSystem(n, edges)

		// Structure invariants.
		if got, want := int(sys.rowPtr[n]), 2*len(edges); got != want {
			t.Fatalf("nnz = %d, want %d", got, want)
		}
		for i := 0; i < n; i++ {
			if sys.rowPtr[i] > sys.rowPtr[i+1] {
				t.Fatalf("rowPtr not monotone at %d", i)
			}
		}
		seen := make([]int, len(edges))
		for i := 0; i < n; i++ {
			for k := sys.rowPtr[i]; k < sys.rowPtr[i+1]; k++ {
				e := edges[sys.edgeRef[k]]
				seen[sys.edgeRef[k]]++
				switch i {
				case e.to:
					if int(sys.colInd[k]) != e.from || sys.ex[k] != float64(e.dx) {
						t.Fatalf("row %d entry %d disagrees with edge %d (to-side)", i, k, sys.edgeRef[k])
					}
				case e.from:
					if int(sys.colInd[k]) != e.to || sys.ex[k] != -float64(e.dx) {
						t.Fatalf("row %d entry %d disagrees with edge %d (from-side)", i, k, sys.edgeRef[k])
					}
				default:
					t.Fatalf("edge %d appears in row %d, which it does not touch", sys.edgeRef[k], i)
				}
			}
		}
		for i, c := range seen {
			if c != 2 {
				t.Fatalf("edge %d has %d CSR entries, want 2", i, c)
			}
		}

		// Random weights (as IRLS would leave them) and positions.
		for i := range sys.robustW {
			sys.robustW[i] = 1e-3 + rng.Float64()
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 50
		}

		// Dense Laplacian reference for SpMV and the normal equations.
		dense := make([]float64, n*n)
		bxRef := make([]float64, n)
		byRef := make([]float64, n)
		for i, e := range edges {
			w := sys.robustW[i]
			dense[e.from*n+e.from] += w
			dense[e.to*n+e.to] += w
			dense[e.from*n+e.to] -= w
			dense[e.to*n+e.from] -= w
			bxRef[e.to] += w * float64(e.dx)
			bxRef[e.from] -= w * float64(e.dx)
			byRef[e.to] += w * float64(e.dy)
			byRef[e.from] -= w * float64(e.dy)
		}
		diag := make([]float64, n)
		bx := make([]float64, n)
		by := make([]float64, n)
		sys.normalRange(diag, bx, by, 0, n)
		dst := make([]float64, n)
		sys.spmvRange(dst, x, diag, 0, n)
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += dense[i*n+j] * x[j]
			}
			if d := dst[i] - want; d > 1e-6 || d < -1e-6 {
				t.Fatalf("spmv row %d = %g, dense says %g", i, dst[i], want)
			}
			if d := bx[i] - bxRef[i]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("bx[%d] = %g, dense says %g", i, bx[i], bxRef[i])
			}
			if d := by[i] - byRef[i]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("by[%d] = %g, dense says %g", i, by[i], byRef[i])
			}
		}

		// gsSweep against an adjacency sweep replayed from the CSR entry
		// order with the same accumulation expressions: the X-axis update
		// is independent of Y, so the X positions must be bit-equal.
		type nb struct {
			j    int
			w, e float64
		}
		ref := make([][]nb, n)
		for i := 0; i < n; i++ {
			for k := sys.rowPtr[i]; k < sys.rowPtr[i+1]; k++ {
				ref[i] = append(ref[i], nb{j: int(sys.colInd[k]), w: sys.robustW[sys.edgeRef[k]], e: sys.ex[k]})
			}
		}
		gx := append([]float64(nil), x...)
		gy := make([]float64, n)
		rx := append([]float64(nil), x...)
		sys.gsSweep(gx, gy)
		for i := 1; i < n; i++ {
			var sw, sx float64
			for _, a := range ref[i] {
				sw += a.w
				sx += a.w * (rx[a.j] + a.e)
			}
			if sw == 0 {
				continue
			}
			rx[i] = sx / sw
		}
		for i := 0; i < n; i++ {
			if gx[i] != rx[i] {
				t.Fatalf("gsSweep x[%d] = %v, adjacency reference says %v", i, gx[i], rx[i])
			}
		}
	})
}
