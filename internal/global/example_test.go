package global_test

import (
	"fmt"

	"hybridstitch/internal/global"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
)

// Example runs the full phase-1 → phase-2 flow and checks accuracy
// against the generator's ground truth.
func Example() {
	params := imagegen.DefaultParams(3, 3, 128, 96)
	dataset, err := imagegen.Generate(params)
	if err != nil {
		fmt.Println(err)
		return
	}
	src := &stitch.MemorySource{DS: dataset}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}

	// The spanning-tree solver with stage-model repair...
	mst, err := global.Solve(res, global.Options{RepairOutliers: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	// ...and the robust least-squares optimizer.
	ls, err := global.SolveLeastSquares(res, global.LSOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	mstRMS, _ := global.RMSError(mst, dataset.TruthX, dataset.TruthY)
	lsRMS, _ := global.RMSError(ls, dataset.TruthX, dataset.TruthY)
	fmt.Printf("MST %.1f px, least-squares %.1f px\n", mstRMS, lsRMS)
	// Output: MST 0.0 px, least-squares 0.0 px
}
