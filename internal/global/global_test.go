package global

import (
	"math"
	"testing"
	"testing/quick"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

// syntheticResult fabricates a perfect phase-1 result from ground truth.
func syntheticResult(t *testing.T, rows, cols int, seed int64) (*stitch.Result, *imagegen.Dataset) {
	t.Helper()
	p := imagegen.DefaultParams(rows, cols, 32, 32)
	p.Seed = seed
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res := resultFromTruth(ds)
	return res, ds
}

func resultFromTruth(ds *imagegen.Dataset) *stitch.Result {
	g := ds.Params.Grid
	res := &stitch.Result{Grid: g,
		West:  make([]tile.Displacement, g.NumTiles()),
		North: make([]tile.Displacement, g.NumTiles())}
	for i := range res.West {
		res.West[i].Corr = math.NaN()
		res.North[i].Corr = math.NaN()
	}
	for _, p := range g.Pairs() {
		d := ds.TrueDisplacement(p)
		d.Corr = 0.95
		i := g.Index(p.Coord)
		if p.Dir == tile.West {
			res.West[i] = d
		} else {
			res.North[i] = d
		}
	}
	return res
}

func TestSolvePerfectInput(t *testing.T) {
	res, ds := syntheticResult(t, 4, 5, 3)
	pl, err := Solve(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rms, err := RMSError(pl, ds.TruthX, ds.TruthY)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 1e-9 {
		t.Errorf("RMS error %g on perfect displacements", rms)
	}
	if pl.Dropped != 0 || pl.Repaired != 0 {
		t.Errorf("dropped=%d repaired=%d on clean input", pl.Dropped, pl.Repaired)
	}
}

func TestSolvePathInvariance(t *testing.T) {
	// Positions derived from the tree must reproduce every (non-dropped)
	// edge within the jitter bound: on perfect input, exactly.
	res, _ := syntheticResult(t, 3, 6, 5)
	pl, err := Solve(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Grid
	for _, p := range g.Pairs() {
		d, _ := res.PairDisplacement(p)
		bi, ai := g.Index(p.Coord), g.Index(p.Neighbor())
		if pl.X[bi]-pl.X[ai] != d.X || pl.Y[bi]-pl.Y[ai] != d.Y {
			t.Errorf("pair %v: tree gives (%d,%d), edge says (%d,%d)",
				p, pl.X[bi]-pl.X[ai], pl.Y[bi]-pl.Y[ai], d.X, d.Y)
		}
	}
}

func TestSolveDropsAndRoutesAroundBadEdge(t *testing.T) {
	res, ds := syntheticResult(t, 4, 4, 7)
	// Corrupt one edge badly but give it low correlation.
	g := res.Grid
	p := tile.Pair{Coord: tile.Coord{Row: 1, Col: 2}, Dir: tile.West}
	i := g.Index(p.Coord)
	res.West[i] = tile.Displacement{X: -500, Y: 300, Corr: 0.05}

	pl, err := Solve(res, Options{MinCorr: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", pl.Dropped)
	}
	rms, _ := RMSError(pl, ds.TruthX, ds.TruthY)
	if rms > 1e-9 {
		t.Errorf("RMS %g: the redundant graph should route around one bad edge", rms)
	}
}

func TestSolveRepairsHighCorrOutlier(t *testing.T) {
	// A confidently wrong edge (high corr, crazy offset) — the sparse-
	// feature failure mode. Without repair the placement distorts; with
	// repair it snaps to the stage model.
	res, ds := syntheticResult(t, 4, 4, 11)
	g := res.Grid
	p := tile.Pair{Coord: tile.Coord{Row: 2, Col: 2}, Dir: tile.West}
	res.West[g.Index(p.Coord)] = tile.Displacement{X: -500, Y: 300, Corr: 0.99}

	repaired, err := Solve(res, Options{RepairOutliers: true})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Repaired < 1 {
		t.Errorf("repaired = %d, want >= 1", repaired.Repaired)
	}
	rms, _ := RMSError(repaired, ds.TruthX, ds.TruthY)
	// The repaired edge uses the median displacement, so max error is
	// bounded by the jitter, and the MST prefers the honest edges
	// anyway.
	if rms > float64(ds.Params.MaxJitter)+1 {
		t.Errorf("RMS %g after repair", rms)
	}
}

func TestSolveDisconnectedFallsBackToNominal(t *testing.T) {
	// Kill ALL edges touching the last column except none — i.e. drop
	// enough that the column is disconnected — and check nominal
	// reconnection keeps every tile placed.
	res, _ := syntheticResult(t, 3, 3, 13)
	g := res.Grid
	for r := 0; r < g.Rows; r++ {
		i := g.Index(tile.Coord{Row: r, Col: 2})
		res.West[i] = tile.Displacement{X: 0, Y: 0, Corr: 0.0}
		if r > 0 {
			res.North[i] = tile.Displacement{X: 0, Y: 0, Corr: 0.0}
		}
	}
	pl, err := Solve(res, Options{MinCorr: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	w, h := pl.Bounds()
	if w <= g.TileW || h <= g.TileH {
		t.Errorf("degenerate bounds %dx%d", w, h)
	}
	// The disconnected column sits at its nominal offset.
	nom := g.NominalDisplacement(tile.West)
	i21 := g.Index(tile.Coord{Row: 0, Col: 1})
	i22 := g.Index(tile.Coord{Row: 0, Col: 2})
	if pl.X[i22]-pl.X[i21] != nom.X {
		t.Errorf("nominal reconnection gave dx=%d, want %d", pl.X[i22]-pl.X[i21], nom.X)
	}
}

func TestPlacementNormalized(t *testing.T) {
	res, _ := syntheticResult(t, 3, 3, 17)
	pl, err := Solve(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minX, minY := pl.X[0], pl.Y[0]
	for i := range pl.X {
		if pl.X[i] < minX {
			minX = pl.X[i]
		}
		if pl.Y[i] < minY {
			minY = pl.Y[i]
		}
	}
	if minX != 0 || minY != 0 {
		t.Errorf("normalization left min at (%d,%d)", minX, minY)
	}
}

func TestRMSErrorValidation(t *testing.T) {
	res, _ := syntheticResult(t, 2, 2, 19)
	pl, _ := Solve(res, Options{})
	if _, err := RMSError(pl, []int{1}, []int{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestDSUProperty(t *testing.T) {
	// After unioning a spanning set, all elements share a root; union
	// of already-joined returns false.
	f := func(n uint8) bool {
		size := int(n)%20 + 2
		d := newDSU(size)
		for i := 1; i < size; i++ {
			if !d.union(i-1, i) {
				return false
			}
		}
		root := d.find(0)
		for i := 1; i < size; i++ {
			if d.find(i) != root {
				return false
			}
		}
		return !d.union(0, size-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMedianAndMAD(t *testing.T) {
	if median(nil) != 0 {
		t.Error("median(nil) != 0")
	}
	if m := median([]int{5, 1, 3}); m != 3 {
		t.Errorf("median = %d", m)
	}
	if m := mad([]int{1, 2, 3, 10}, 2); m != 1 {
		t.Errorf("mad = %d", m)
	}
}

func TestEndToEndWithRealPhase1(t *testing.T) {
	// Full pipeline: generate → stitch (simple-cpu) → solve → compare to
	// ground truth.
	p := imagegen.DefaultParams(3, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Solve(res, Options{RepairOutliers: true})
	if err != nil {
		t.Fatal(err)
	}
	rms, err := RMSError(pl, ds.TruthX, ds.TruthY)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 1.5 {
		t.Errorf("end-to-end RMS position error %.2f px", rms)
	}
}
