package global

import (
	"testing"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

func TestRefineResultRepairsCorruptedPairs(t *testing.T) {
	p := imagegen.DefaultParams(3, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt two pairs with low-confidence garbage (the sparse-overlap
	// failure signature).
	bad := []tile.Pair{
		{Coord: tile.Coord{Row: 1, Col: 1}, Dir: tile.West},
		{Coord: tile.Coord{Row: 2, Col: 2}, Dir: tile.North},
	}
	for _, pr := range bad {
		setPair(res, pr, tile.Displacement{X: 0, Y: 0, Corr: 0.1})
	}
	n, err := RefineResult(res, src, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Errorf("refined %d pairs, want >= 2", n)
	}
	for _, pr := range bad {
		got, _ := res.PairDisplacement(pr)
		want := ds.TrueDisplacement(pr)
		if absInt(got.X-want.X) > 1 || absInt(got.Y-want.Y) > 1 {
			t.Errorf("pair %v refined to (%d,%d), truth (%d,%d)", pr, got.X, got.Y, want.X, want.Y)
		}
	}
}

func TestRefineResultDefaultExhaustive(t *testing.T) {
	p := imagegen.DefaultParams(2, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := tile.Pair{Coord: tile.Coord{Row: 1, Col: 1}, Dir: tile.West}
	setPair(res, pr, tile.Displacement{X: 0, Y: 0, Corr: 0.05})
	if _, err := RefineResult(res, src, RefineOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _ := res.PairDisplacement(pr)
	want := ds.TrueDisplacement(pr)
	if absInt(got.X-want.X) > 1 || absInt(got.Y-want.Y) > 1 {
		t.Errorf("exhaustive refine got (%d,%d), truth (%d,%d)", got.X, got.Y, want.X, want.Y)
	}
}

func TestRefineResultKeepsBetterOriginal(t *testing.T) {
	// A low-confidence but CORRECT pair: refinement must not make it
	// worse.
	p := imagegen.DefaultParams(2, 2, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := tile.Pair{Coord: tile.Coord{Row: 0, Col: 1}, Dir: tile.West}
	truth := ds.TrueDisplacement(pr)
	setPair(res, pr, tile.Displacement{X: truth.X, Y: truth.Y, Corr: 0.2})
	if _, err := RefineResult(res, src, RefineOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _ := res.PairDisplacement(pr)
	if absInt(got.X-truth.X) > 1 || absInt(got.Y-truth.Y) > 1 {
		t.Errorf("refinement degraded a correct pair: (%d,%d) vs (%d,%d)", got.X, got.Y, truth.X, truth.Y)
	}
}


func TestRefineResultModelDeviationTrigger(t *testing.T) {
	// A confidently-WRONG pair: high correlation, displacement the stage
	// model calls geometrically impossible (the aliased-periodic-peak
	// signature). The classic low-confidence trigger never fires on it;
	// only MaxModelDeviation re-searches it from the prediction.
	p := imagegen.DefaultParams(3, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := tile.Pair{Coord: tile.Coord{Row: 1, Col: 1}, Dir: tile.West}
	truth := ds.TrueDisplacement(pr)
	wrong := tile.Displacement{X: truth.X - 20, Y: truth.Y, Corr: 0.95}

	// Trigger disabled (the zero value): the confident lie survives.
	setPair(res, pr, wrong)
	if n, err := RefineResult(res, src, RefineOptions{}); err != nil || n != 0 {
		t.Fatalf("refined %d pairs (err %v) with the trigger disabled, want 0", n, err)
	}
	if got, _ := res.PairDisplacement(pr); got != wrong {
		t.Fatalf("pair rewritten to %+v with the trigger disabled", got)
	}

	// Trigger armed (10 px: above the ~2·jitter deviation honest pairs
	// can show, far below the 20 px lie): the pair is re-searched from
	// the stage-model prediction and lands on the truth.
	if n, err := RefineResult(res, src, RefineOptions{MaxModelDeviation: 10, Radius: 25}); err != nil || n != 1 {
		t.Fatalf("refined %d pairs (err %v), want exactly the implausible one", n, err)
	}
	got, _ := res.PairDisplacement(pr)
	if absInt(got.X-truth.X) > 1 || absInt(got.Y-truth.Y) > 1 {
		t.Errorf("re-searched displacement (%d,%d) not at truth (%d,%d)", got.X, got.Y, truth.X, truth.Y)
	}

	// A plausible confident pair (within the deviation budget) must be
	// left untouched even with the trigger armed.
	if n, err := RefineResult(res, src, RefineOptions{MaxModelDeviation: 10}); err != nil || n != 0 {
		t.Errorf("refined %d pairs (err %v) on a repaired result, want 0", n, err)
	}
}
