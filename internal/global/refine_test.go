package global

import (
	"testing"

	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

func TestRefineResultRepairsCorruptedPairs(t *testing.T) {
	p := imagegen.DefaultParams(3, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt two pairs with low-confidence garbage (the sparse-overlap
	// failure signature).
	bad := []tile.Pair{
		{Coord: tile.Coord{Row: 1, Col: 1}, Dir: tile.West},
		{Coord: tile.Coord{Row: 2, Col: 2}, Dir: tile.North},
	}
	for _, pr := range bad {
		setPair(res, pr, tile.Displacement{X: 0, Y: 0, Corr: 0.1})
	}
	n, err := RefineResult(res, src, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Errorf("refined %d pairs, want >= 2", n)
	}
	for _, pr := range bad {
		got, _ := res.PairDisplacement(pr)
		want := ds.TrueDisplacement(pr)
		if absInt(got.X-want.X) > 1 || absInt(got.Y-want.Y) > 1 {
			t.Errorf("pair %v refined to (%d,%d), truth (%d,%d)", pr, got.X, got.Y, want.X, want.Y)
		}
	}
}

func TestRefineResultDefaultExhaustive(t *testing.T) {
	p := imagegen.DefaultParams(2, 3, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := tile.Pair{Coord: tile.Coord{Row: 1, Col: 1}, Dir: tile.West}
	setPair(res, pr, tile.Displacement{X: 0, Y: 0, Corr: 0.05})
	if _, err := RefineResult(res, src, RefineOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _ := res.PairDisplacement(pr)
	want := ds.TrueDisplacement(pr)
	if absInt(got.X-want.X) > 1 || absInt(got.Y-want.Y) > 1 {
		t.Errorf("exhaustive refine got (%d,%d), truth (%d,%d)", got.X, got.Y, want.X, want.Y)
	}
}

func TestRefineResultKeepsBetterOriginal(t *testing.T) {
	// A low-confidence but CORRECT pair: refinement must not make it
	// worse.
	p := imagegen.DefaultParams(2, 2, 128, 96)
	ds, err := imagegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := tile.Pair{Coord: tile.Coord{Row: 0, Col: 1}, Dir: tile.West}
	truth := ds.TrueDisplacement(pr)
	setPair(res, pr, tile.Displacement{X: truth.X, Y: truth.Y, Corr: 0.2})
	if _, err := RefineResult(res, src, RefineOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _ := res.PairDisplacement(pr)
	if absInt(got.X-truth.X) > 1 || absInt(got.Y-truth.Y) > 1 {
		t.Errorf("refinement degraded a correct pair: (%d,%d) vs (%d,%d)", got.X, got.Y, truth.X, truth.Y)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
