package accuracy

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		Label: "test",
		Grid:  "5x6 128x96",
		Seed:  1,
		Scenarios: map[string]Metrics{
			"nominal":  {Pairs: 49, PairsWithin1: 49, PlacementRMS: 0, TilesWithin1Frac: 1},
			"periodic": {Pairs: 49, PairsWithin1: 45, PairsRescued: 29, PlacementRMS: 0.4, TilesWithin1Frac: 1, Adversarial: true},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ACC_test.json")
	want := sampleSnapshot()
	if err := WriteSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != want.Grid || got.Seed != want.Seed || len(got.Scenarios) != len(want.Scenarios) {
		t.Fatalf("round trip mismatch: got %+v", got)
	}
	if got.Scenarios["periodic"] != want.Scenarios["periodic"] {
		t.Errorf("periodic metrics round trip: got %+v", got.Scenarios["periodic"])
	}

	if _, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing snapshot should fail")
	}
}

func TestCheckThresholds(t *testing.T) {
	snap := sampleSnapshot()
	ths := map[string]Threshold{
		"nominal":  {MaxRMS: 0.5, MinTilesWithin1: 1},
		"periodic": {MaxRMS: 0.75, MinTilesWithin1: 0.95},
	}
	if v := CheckThresholds(snap, ths); len(v) != 0 {
		t.Fatalf("clean snapshot flagged: %v", v)
	}

	bad := sampleSnapshot()
	m := bad.Scenarios["periodic"]
	m.PlacementRMS = 2.0
	m.TilesWithin1Frac = 0.5
	bad.Scenarios["periodic"] = m
	v := CheckThresholds(bad, ths)
	if len(v) != 2 {
		t.Fatalf("want RMS and fraction violations, got %v", v)
	}

	undocumented := sampleSnapshot()
	undocumented.Scenarios["mystery"] = Metrics{}
	v = CheckThresholds(undocumented, ths)
	if len(v) != 1 || !strings.Contains(v[0], "no documented threshold") {
		t.Fatalf("undocumented scenario not flagged: %v", v)
	}
}

func TestDiff(t *testing.T) {
	old := sampleSnapshot()

	t.Run("no-change", func(t *testing.T) {
		d := Diff(old, sampleSnapshot())
		if d.Failed() {
			t.Fatalf("identical snapshots failed: %s", d.Format())
		}
		if !strings.Contains(d.Format(), "no significant") {
			t.Errorf("format: %q", d.Format())
		}
	})

	t.Run("within-slack", func(t *testing.T) {
		next := sampleSnapshot()
		m := next.Scenarios["periodic"]
		m.PlacementRMS = 0.5 // 0.4*1.15+0.1 = 0.56 > 0.5
		next.Scenarios["periodic"] = m
		if d := Diff(old, next); d.Failed() {
			t.Fatalf("in-slack drift failed: %s", d.Format())
		}
	})

	t.Run("rms-regression", func(t *testing.T) {
		next := sampleSnapshot()
		m := next.Scenarios["periodic"]
		m.PlacementRMS = 0.6
		next.Scenarios["periodic"] = m
		d := Diff(old, next)
		if !d.Failed() || len(d.Regressions) != 1 || d.Regressions[0].Scenario != "periodic" {
			t.Fatalf("rms regression not flagged: %s", d.Format())
		}
		if !strings.Contains(d.Format(), "REGRESSION") {
			t.Errorf("format: %q", d.Format())
		}
	})

	t.Run("frac-regression", func(t *testing.T) {
		next := sampleSnapshot()
		m := next.Scenarios["nominal"]
		m.TilesWithin1Frac = 0.9
		next.Scenarios["nominal"] = m
		if d := Diff(old, next); !d.Failed() || len(d.Regressions) != 1 {
			t.Fatalf("fraction regression not flagged: %s", d.Format())
		}
	})

	t.Run("improvement", func(t *testing.T) {
		next := sampleSnapshot()
		m := next.Scenarios["periodic"]
		m.PlacementRMS = 0.1
		next.Scenarios["periodic"] = m
		d := Diff(old, next)
		if d.Failed() || len(d.Improved) != 1 {
			t.Fatalf("improvement misclassified: %s", d.Format())
		}
	})

	t.Run("dropped-scenario", func(t *testing.T) {
		next := sampleSnapshot()
		delete(next.Scenarios, "periodic")
		d := Diff(old, next)
		if !d.Failed() || len(d.Missing) != 1 || d.Missing[0] != "periodic" {
			t.Fatalf("dropped scenario not flagged: %s", d.Format())
		}
	})

	t.Run("added-scenario", func(t *testing.T) {
		next := sampleSnapshot()
		next.Scenarios["fresh"] = Metrics{}
		d := Diff(old, next)
		if d.Failed() || len(d.Added) != 1 {
			t.Fatalf("added scenario misclassified: %s", d.Format())
		}
	})

	t.Run("workload-mismatch", func(t *testing.T) {
		next := sampleSnapshot()
		next.Seed = 2
		d := Diff(old, next)
		if !d.Failed() || d.GridMismatch == "" {
			t.Fatal("seed mismatch must fail the diff")
		}
		if !strings.Contains(d.Format(), "INCOMPARABLE") {
			t.Errorf("format: %q", d.Format())
		}
	})
}
