package accuracy

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"hybridstitch/internal/imagegen"
)

// Snapshot is the machine-readable accuracy export — the ACC_<tag>.json
// artifact the regression harness diffs between commits, mirroring the
// obs.Snapshot the bench harness writes. Generation and the whole
// pipeline are deterministic for a fixed (grid, seed), so two snapshots
// taken from the same source tree are identical; the diff slack exists
// for cross-architecture floating-point drift, not run-to-run noise.
type Snapshot struct {
	Label string `json:"label,omitempty"`
	Date  string `json:"date,omitempty"`
	// Grid documents the workload ("5x6 128x96") and Seed the dataset
	// seed, so a diff across different workloads is flagged instead of
	// silently comparing incomparable numbers.
	Grid      string             `json:"grid"`
	Seed      int64              `json:"seed"`
	Scenarios map[string]Metrics `json:"scenarios"`
}

// SnapshotConfig sets the snapshot workload.
type SnapshotConfig struct {
	// Rows, Cols, TileW, TileH shape the scenario grids; zero values
	// pick the standard accuracy workload, 5×6 tiles of 128×96 px.
	Rows, Cols, TileW, TileH int
	// Seed is the dataset seed (0 picks 1).
	Seed int64
	// Threads is the phase-1 worker count passed through to the runs.
	Threads int
}

func (c SnapshotConfig) withDefaults() SnapshotConfig {
	if c.Rows == 0 {
		c.Rows = 5
	}
	if c.Cols == 0 {
		c.Cols = 6
	}
	if c.TileW == 0 {
		c.TileW = 128
	}
	if c.TileH == 0 {
		c.TileH = 96
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// BuildSnapshot runs every named scenario through the full
// confidence-weighted pipeline and collects the scores.
func BuildSnapshot(cfg SnapshotConfig) (Snapshot, error) {
	cfg = cfg.withDefaults()
	snap := Snapshot{
		Grid:      fmt.Sprintf("%dx%d %dx%d", cfg.Rows, cfg.Cols, cfg.TileW, cfg.TileH),
		Seed:      cfg.Seed,
		Scenarios: map[string]Metrics{},
	}
	for _, sc := range imagegen.Scenarios(cfg.Rows, cfg.Cols, cfg.TileW, cfg.TileH) {
		out, err := RunScenario(sc, cfg.Seed, PipelineOptions{Threads: cfg.Threads})
		if err != nil {
			return snap, err
		}
		snap.Scenarios[sc.Name] = out.Metrics
	}
	return snap, nil
}

// WriteSnapshotFile writes the snapshot as indented JSON.
func WriteSnapshotFile(path string, s Snapshot) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadSnapshot reads a snapshot written by WriteSnapshotFile.
func LoadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("accuracy: parsing snapshot %s: %w", path, err)
	}
	return s, nil
}

// Threshold is the documented floor a scenario must meet for the
// snapshot to be accepted at all (independent of any baseline diff).
type Threshold struct {
	// MaxRMS is the largest acceptable placement RMS in pixels.
	MaxRMS float64 `json:"max_rms_px"`
	// MinTilesWithin1 is the smallest acceptable fraction of tiles
	// placed within 1 px of ground truth.
	MinTilesWithin1 float64 `json:"min_tiles_within_1px_frac"`
}

// DefaultThresholds returns the per-scenario acceptance floors
// documented in EXPERIMENTS.md ("Accuracy methodology"). Nominal plates
// must place essentially every tile exactly; adversarial plates are
// allowed the residual error of rescued pairs but must stay sub-pixel
// RMS on the standard workload.
func DefaultThresholds() map[string]Threshold {
	return map[string]Threshold{
		"nominal":           {MaxRMS: 0.5, MinTilesWithin1: 1.0},
		"near-blank":        {MaxRMS: 1.5, MinTilesWithin1: 0.9},
		"illum-gradient":    {MaxRMS: 1.0, MinTilesWithin1: 0.9},
		"periodic":          {MaxRMS: 0.75, MinTilesWithin1: 0.95},
		"drift-low-overlap": {MaxRMS: 0.75, MinTilesWithin1: 0.95},
	}
}

// CheckThresholds returns one violation message per scenario that misses
// its documented floor, and flags scenarios with no documented threshold
// (every named scenario must gate something).
func CheckThresholds(s Snapshot, ths map[string]Threshold) []string {
	var out []string
	for _, name := range sortedScenarioNames(s.Scenarios) {
		m := s.Scenarios[name]
		th, ok := ths[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: no documented threshold", name))
			continue
		}
		if m.PlacementRMS > th.MaxRMS {
			out = append(out, fmt.Sprintf("%s: placement RMS %.3f px exceeds threshold %.3f", name, m.PlacementRMS, th.MaxRMS))
		}
		if m.TilesWithin1Frac < th.MinTilesWithin1 {
			out = append(out, fmt.Sprintf("%s: tiles within 1 px %.3f below threshold %.3f", name, m.TilesWithin1Frac, th.MinTilesWithin1))
		}
	}
	return out
}

// Diff tolerances: an RMS increase beyond 15% plus a 0.1 px absolute
// floor, or a within-1-px fraction drop beyond 2 points, is a
// regression — the accuracy analogue of benchdiff's 15% ns/op gate. The
// absolute floor keeps near-zero baselines from flagging noise-level
// drift (0.00 → 0.05 px is not a regression).
const (
	rmsRelSlack  = 0.15
	rmsAbsSlack  = 0.1
	fracAbsSlack = 0.02
)

// Delta describes one scenario's change between two snapshots.
type Delta struct {
	Scenario string
	OldRMS   float64
	NewRMS   float64
	OldFrac  float64
	NewFrac  float64
}

// AccDiff is the result of comparing two snapshots.
type AccDiff struct {
	Regressions []Delta  // worse beyond the slack
	Improved    []Delta  // better beyond the slack
	Missing     []string // in old but not new: a scenario was dropped
	Added       []string // in new but not old
	// GridMismatch is set when the two snapshots score different
	// workloads; their numbers are not comparable and the diff fails.
	GridMismatch string
}

// Failed reports whether the diff should gate (nonzero exit): any
// regression, any dropped scenario, or a workload mismatch.
func (d AccDiff) Failed() bool {
	return len(d.Regressions) > 0 || len(d.Missing) > 0 || d.GridMismatch != ""
}

// Diff compares per-scenario accuracy between two snapshots.
func Diff(old, new Snapshot) AccDiff {
	var d AccDiff
	if old.Grid != new.Grid || old.Seed != new.Seed {
		d.GridMismatch = fmt.Sprintf("old is %q seed %d, new is %q seed %d",
			old.Grid, old.Seed, new.Grid, new.Seed)
		return d
	}
	for _, name := range sortedScenarioNames(old.Scenarios) {
		o := old.Scenarios[name]
		n, ok := new.Scenarios[name]
		if !ok {
			d.Missing = append(d.Missing, name)
			continue
		}
		delta := Delta{Scenario: name,
			OldRMS: o.PlacementRMS, NewRMS: n.PlacementRMS,
			OldFrac: o.TilesWithin1Frac, NewFrac: n.TilesWithin1Frac}
		worse := n.PlacementRMS > o.PlacementRMS*(1+rmsRelSlack)+rmsAbsSlack ||
			n.TilesWithin1Frac < o.TilesWithin1Frac-fracAbsSlack
		better := n.PlacementRMS < o.PlacementRMS*(1-rmsRelSlack)-rmsAbsSlack ||
			n.TilesWithin1Frac > o.TilesWithin1Frac+fracAbsSlack
		switch {
		case worse:
			d.Regressions = append(d.Regressions, delta)
		case better:
			d.Improved = append(d.Improved, delta)
		}
	}
	for _, name := range sortedScenarioNames(new.Scenarios) {
		if _, ok := old.Scenarios[name]; !ok {
			d.Added = append(d.Added, name)
		}
	}
	return d
}

// Format renders the diff as a human-readable report.
func (d AccDiff) Format() string {
	var sb strings.Builder
	if d.GridMismatch != "" {
		fmt.Fprintf(&sb, "INCOMPARABLE  %s\n", d.GridMismatch)
		return sb.String()
	}
	for _, r := range d.Regressions {
		fmt.Fprintf(&sb, "REGRESSION  %-20s rms %.3f -> %.3f px, within-1px %.3f -> %.3f\n",
			r.Scenario, r.OldRMS, r.NewRMS, r.OldFrac, r.NewFrac)
	}
	for _, r := range d.Improved {
		fmt.Fprintf(&sb, "improved    %-20s rms %.3f -> %.3f px, within-1px %.3f -> %.3f\n",
			r.Scenario, r.OldRMS, r.NewRMS, r.OldFrac, r.NewFrac)
	}
	for _, name := range d.Missing {
		fmt.Fprintf(&sb, "missing     %s\n", name)
	}
	for _, name := range d.Added {
		fmt.Fprintf(&sb, "added       %s\n", name)
	}
	if sb.Len() == 0 {
		sb.WriteString("no significant accuracy changes\n")
	}
	return sb.String()
}

func sortedScenarioNames(m map[string]Metrics) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
