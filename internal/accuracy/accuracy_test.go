package accuracy

import (
	"math"
	"testing"

	"hybridstitch/internal/global"
	"hybridstitch/internal/imagegen"
)

// Standard accuracy workload: the grid the ACC snapshots and documented
// thresholds are defined on.
const (
	stdRows, stdCols   = 5, 6
	stdTileW, stdTileH = 128, 96
	stdSeed            = 1
)

// TestDifferentialWeightedVsUnweighted is the harness' reason to exist:
// it proves the confidence-weighted solve beats the plain least-squares
// baseline exactly where it is supposed to, and nowhere else.
//
// On every adversarial scenario the raw (no-refine) arms isolate the
// solver's contribution, and the weighted solve must score strictly
// lower placement RMS — the wrong pairs carry low correlations, and
// downweighting them is the whole point. On the nominal plate the full
// weighted and unweighted pipelines must produce bit-identical
// placements: robustness machinery may not perturb a plate that needs
// no rescuing.
func TestDifferentialWeightedVsUnweighted(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload differential; run without -short")
	}
	for _, sc := range imagegen.Scenarios(stdRows, stdCols, stdTileW, stdTileH) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if !sc.Adversarial {
				weighted, err := RunScenario(sc, stdSeed, PipelineOptions{})
				if err != nil {
					t.Fatal(err)
				}
				unweighted, err := RunScenario(sc, stdSeed, PipelineOptions{Unweighted: true})
				if err != nil {
					t.Fatal(err)
				}
				for i := range weighted.Placement.X {
					if weighted.Placement.X[i] != unweighted.Placement.X[i] ||
						weighted.Placement.Y[i] != unweighted.Placement.Y[i] {
						t.Fatalf("tile %d: weighted placement (%d,%d) differs from unweighted (%d,%d) on a nominal plate",
							i, weighted.Placement.X[i], weighted.Placement.Y[i],
							unweighted.Placement.X[i], unweighted.Placement.Y[i])
					}
				}
				if weighted.Metrics.PlacementRMS > 0.5 {
					t.Errorf("nominal weighted RMS %.3f px; want near zero", weighted.Metrics.PlacementRMS)
				}
				return
			}
			weighted, err := RunScenario(sc, stdSeed, PipelineOptions{NoRefine: true})
			if err != nil {
				t.Fatal(err)
			}
			unweighted, err := RunScenario(sc, stdSeed, PipelineOptions{NoRefine: true, Unweighted: true})
			if err != nil {
				t.Fatal(err)
			}
			w, u := weighted.Metrics.PlacementRMS, unweighted.Metrics.PlacementRMS
			if !(w < u) {
				t.Errorf("weighted RMS %.3f px not strictly below unweighted %.3f px", w, u)
			}
			t.Logf("raw solve RMS: weighted %.3f px, unweighted %.3f px", w, u)
		})
	}
}

// TestSnapshotMeetsThresholds gates the committed ACC snapshot's
// contract: the standard workload must meet every documented
// per-scenario floor through the full weighted pipeline.
func TestSnapshotMeetsThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload snapshot; run without -short")
	}
	snap, err := BuildSnapshot(SnapshotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range CheckThresholds(snap, DefaultThresholds()) {
		t.Errorf("threshold violation: %s", v)
	}
	for name, m := range snap.Scenarios {
		t.Logf("%-20s pairs %d/%d rescued %d rms %.3f frac %.3f max %.3f",
			name, m.PairsWithin1, m.Pairs, m.PairsRescued,
			m.PlacementRMS, m.TilesWithin1Frac, m.PlacementMax)
	}
}

// TestQuickScenarios is the fast subset `make check` runs race-enabled:
// every scenario generates and survives the full weighted pipeline on a
// small grid, and the nominal plate still places perfectly there.
func TestQuickScenarios(t *testing.T) {
	for _, sc := range imagegen.Scenarios(3, 3, 96, 64) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			out, err := RunScenario(sc, stdSeed, PipelineOptions{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			m := out.Metrics
			if m.Pairs != 12 {
				t.Errorf("pairs = %d, want 12 on a 3x3 grid", m.Pairs)
			}
			if math.IsNaN(m.PlacementRMS) || math.IsNaN(m.PlacementMax) {
				t.Error("placement score is NaN")
			}
			if m.Scenario != sc.Name || m.Adversarial != sc.Adversarial {
				t.Errorf("metrics identity %q/%v, want %q/%v", m.Scenario, m.Adversarial, sc.Name, sc.Adversarial)
			}
			if !sc.Adversarial && m.TilesWithin1Frac != 1 {
				t.Errorf("nominal tiles within 1 px = %.3f, want 1", m.TilesWithin1Frac)
			}
		})
	}
}

// TestScorePlacement pins the median-offset registration: a pure
// translation scores zero, and a single outlier tile cannot drag the
// registration the way a mean or min-corner normalization would.
func TestScorePlacement(t *testing.T) {
	ds := &imagegen.Dataset{
		TruthX: []int{0, 100, 0, 100, 0},
		TruthY: []int{0, 0, 80, 80, 160},
	}
	shifted := &global.Placement{
		X: []int{7, 107, 7, 107, 7},
		Y: []int{-3, -3, 77, 77, 157},
	}
	rms, frac, maxErr := ScorePlacement(ds, shifted)
	if rms != 0 || frac != 1 || maxErr != 0 {
		t.Errorf("pure translation: rms=%v frac=%v max=%v, want all-perfect", rms, frac, maxErr)
	}

	outlier := &global.Placement{
		X: []int{0, 100, 0, 100, 50},
		Y: []int{0, 0, 80, 80, 160},
	}
	rms, frac, maxErr = ScorePlacement(ds, outlier)
	if maxErr != 50 {
		t.Errorf("outlier max error = %v, want 50 (median registration must not shift)", maxErr)
	}
	if want := math.Sqrt(50 * 50 / 5.0); math.Abs(rms-want) > 1e-9 {
		t.Errorf("outlier rms = %v, want %v", rms, want)
	}
	if frac != 0.8 {
		t.Errorf("outlier within-1 frac = %v, want 0.8", frac)
	}

	if rms, _, _ := ScorePlacement(ds, &global.Placement{}); !math.IsNaN(rms) {
		t.Errorf("mismatched lengths: rms = %v, want NaN", rms)
	}
}
