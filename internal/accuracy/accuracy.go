// Package accuracy scores full-pipeline stitching runs against imagegen
// ground truth and snapshots the scores as the ACC_<tag>.json regression
// artifact — the accuracy counterpart of the obs benchmark harness. Where
// `make bench`/`benchdiff` gate speed, `make acc`/`accdiff` gate
// placement correctness: each named imagegen.Scenario runs through phase
// 1, the confidence-gated refine fallback, and the correlation-weighted
// IRLS global solve, and the resulting metrics (RMS placement error,
// within-1-px fractions, pairs rescued) are compared against documented
// per-scenario thresholds and against the previous snapshot.
package accuracy

import (
	"fmt"
	"math"
	"sort"

	"hybridstitch/internal/global"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/stitch"
)

// PipelineOptions configures one scored pipeline run.
type PipelineOptions struct {
	// Threads is the phase-1 worker count; 0 picks 4.
	Threads int
	// Unweighted switches the global solve to the plain least-squares
	// baseline (every edge weight 1, no IRLS) — the arm the differential
	// test proves worse on adversarial plates.
	Unweighted bool
	// NoRefine skips the global.RefineResult fallback pass, leaving raw
	// phase-1 displacements for the solver. The differential test uses
	// this to isolate the solver's contribution.
	NoRefine bool
	// RefineMinCorr is the confidence below which a pair is re-searched
	// from the stage-model prediction; 0 picks 0.5.
	RefineMinCorr float64
	// RefineRadius bounds the fallback search; 0 picks 6.
	RefineRadius int
	// RefineModelDeviation re-searches confident pairs whose
	// displacement deviates from the stage-model prediction by more
	// than this many pixels (see global.RefineOptions.MaxModelDeviation);
	// 0 picks RefineRadius, negative disables the trigger.
	RefineModelDeviation int
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Threads < 1 {
		o.Threads = 4
	}
	if o.RefineMinCorr == 0 {
		o.RefineMinCorr = 0.5
	}
	if o.RefineRadius == 0 {
		o.RefineRadius = 6
	}
	if o.RefineModelDeviation == 0 {
		o.RefineModelDeviation = o.RefineRadius
	} else if o.RefineModelDeviation < 0 {
		o.RefineModelDeviation = 0
	}
	return o
}

// Metrics is one scenario's scored outcome — the row of the ACC snapshot.
type Metrics struct {
	Scenario    string `json:"scenario,omitempty"`
	Adversarial bool   `json:"adversarial,omitempty"`
	// Pairs is the grid's pair count; PairsWithin1 counts final pair
	// displacements within 1 px of ground truth on both axes.
	Pairs        int `json:"pairs"`
	PairsWithin1 int `json:"pairs_within_1px"`
	// PairsRescued counts pairs the refine fallback replaced with a
	// better stage-model-seeded CCF search result.
	PairsRescued int `json:"pairs_rescued"`
	// PlacementRMS is the root-mean-square per-tile position error in
	// pixels after the global solve, with the translation null space
	// removed by the median per-axis offset.
	PlacementRMS float64 `json:"placement_rms_px"`
	// TilesWithin1Frac is the fraction of tiles placed within 1 px of
	// ground truth on both axes; PlacementMax is the worst tile's error.
	TilesWithin1Frac float64 `json:"tiles_within_1px_frac"`
	PlacementMax     float64 `json:"placement_max_px"`
}

// Outcome bundles a run's metrics with the intermediate artifacts, so
// tests can inspect the displacement set behind a score.
type Outcome struct {
	Metrics   Metrics
	Result    *stitch.Result
	Placement *global.Placement
}

// RunDataset runs the full accuracy pipeline over a generated dataset:
// phase 1 (Pipelined-CPU), the confidence-gated refine fallback, and the
// global least-squares solve, then scores the outcome against the
// dataset's ground truth.
func RunDataset(ds *imagegen.Dataset, opts PipelineOptions) (*Outcome, error) {
	opts = opts.withDefaults()
	src := &stitch.MemorySource{DS: ds}
	res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: opts.Threads})
	if err != nil {
		return nil, fmt.Errorf("accuracy: phase 1: %w", err)
	}
	return solveAndScore(ds, src, res, opts)
}

// RunScenario generates the scenario at the given seed and runs it.
func RunScenario(sc imagegen.Scenario, seed int64, opts PipelineOptions) (*Outcome, error) {
	ds, err := sc.Generate(seed)
	if err != nil {
		return nil, err
	}
	out, err := RunDataset(ds, opts)
	if err != nil {
		return nil, fmt.Errorf("accuracy: scenario %q: %w", sc.Name, err)
	}
	out.Metrics.Scenario = sc.Name
	out.Metrics.Adversarial = sc.Adversarial
	return out, nil
}

// solveAndScore finishes a run from a phase-1 result. It mutates res if
// the refine pass is enabled (matching production use, where the fallback
// repairs the displacement set in place).
func solveAndScore(ds *imagegen.Dataset, src stitch.Source, res *stitch.Result, opts PipelineOptions) (*Outcome, error) {
	rescued := 0
	if !opts.NoRefine {
		var err error
		rescued, err = global.RefineResult(res, src, global.RefineOptions{
			MinCorr:           opts.RefineMinCorr,
			Radius:            opts.RefineRadius,
			MaxModelDeviation: opts.RefineModelDeviation,
		})
		if err != nil {
			return nil, fmt.Errorf("accuracy: refine fallback: %w", err)
		}
	}
	pl, err := global.SolveLeastSquares(res, global.LSOptions{Unweighted: opts.Unweighted})
	if err != nil {
		return nil, fmt.Errorf("accuracy: global solve: %w", err)
	}
	m := Score(ds, res, pl)
	m.PairsRescued = rescued
	return &Outcome{Metrics: m, Result: res, Placement: pl}, nil
}

// Score computes the accuracy metrics of a phase-1 result and a
// placement against the dataset's ground truth.
func Score(ds *imagegen.Dataset, res *stitch.Result, pl *global.Placement) Metrics {
	var m Metrics
	m.PairsWithin1, m.Pairs = ScorePairs(ds, res)
	m.PlacementRMS, m.TilesWithin1Frac, m.PlacementMax = ScorePlacement(ds, pl)
	return m
}

// ScorePairs counts pair displacements within 1 px of ground truth on
// both axes.
func ScorePairs(ds *imagegen.Dataset, res *stitch.Result) (within1, total int) {
	for _, p := range res.Grid.Pairs() {
		total++
		got, ok := res.PairDisplacement(p)
		if !ok {
			continue
		}
		want := ds.TrueDisplacement(p)
		if absInt(got.X-want.X) <= 1 && absInt(got.Y-want.Y) <= 1 {
			within1++
		}
	}
	return within1, total
}

// ScorePlacement compares a placement against ground truth. The global
// solve only determines positions up to a translation, so the comparison
// first removes the median per-axis offset — a robust registration that a
// few misplaced tiles cannot drag, unlike the min-corner normalization.
func ScorePlacement(ds *imagegen.Dataset, pl *global.Placement) (rms, within1Frac, maxErr float64) {
	n := len(pl.X)
	if n == 0 || n != len(ds.TruthX) {
		return math.NaN(), 0, math.NaN()
	}
	offX := make([]int, n)
	offY := make([]int, n)
	for i := 0; i < n; i++ {
		offX[i] = pl.X[i] - ds.TruthX[i]
		offY[i] = pl.Y[i] - ds.TruthY[i]
	}
	medX, medY := medianInt(offX), medianInt(offY)
	var sum float64
	within := 0
	for i := 0; i < n; i++ {
		dx := float64(offX[i] - medX)
		dy := float64(offY[i] - medY)
		e2 := dx*dx + dy*dy
		sum += e2
		if e := math.Sqrt(e2); e > maxErr {
			maxErr = e
		}
		if math.Abs(dx) <= 1 && math.Abs(dy) <= 1 {
			within++
		}
	}
	return math.Sqrt(sum / float64(n)), float64(within) / float64(n), maxErr
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[len(s)/2]
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
