package report

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"hybridstitch/internal/accuracy"
	"hybridstitch/internal/compose"
	"hybridstitch/internal/fft"
	"hybridstitch/internal/global"
	"hybridstitch/internal/gpu"
	"hybridstitch/internal/imagegen"
	"hybridstitch/internal/machine"
	"hybridstitch/internal/memgov"
	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tiffio"
	"hybridstitch/internal/tile"
	"hybridstitch/internal/tileserve"
)

// Options configures experiment runs.
type Options struct {
	// OutDir receives PNG artifacts (Figs 13, 14). Empty skips writing.
	OutDir string
	// Quick shrinks the real-measurement workloads further.
	Quick bool
	// Seed fixes dataset generation.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// realGridSize returns the reduced workload dimensions for real runs.
func (o Options) realGridSize() (rows, cols, tw, th int) {
	if o.Quick {
		return 4, 4, 96, 64
	}
	return 6, 8, 128, 96
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (string, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I — operation counts & complexities", runTable1},
		{"table2", "Table II — run times and speedups, 42×59 grid", runTable2},
		{"fig5", "Fig 5 — virtual-memory performance cliff", runFig5},
		{"fig7", "Fig 7 — Simple-GPU profiler timeline", runFig7},
		{"fig9", "Fig 9 — Pipelined-GPU profiler timeline", runFig9},
		{"fig10", "Fig 10 — Pipelined-GPU (2 GPUs) vs CCF threads", runFig10},
		{"fig11", "Fig 11 — Pipelined-CPU strong scaling", runFig11},
		{"fig12", "Fig 12 — Pipelined-CPU speedup surface", runFig12},
		{"fig13", "Fig 13 — composed grid, overlay blend", runFig13},
		{"fig14", "Fig 14 — composed grid with highlighted tiles", runFig14},
		{"planner", "§IV — FFT planning-mode comparison", runPlanner},
		{"traversal", "§IV — traversal order vs peak transform memory", runTraversal},
		{"laptop", "§VI — 3-year-old-laptop validation", runLaptop},
		{"accuracy", "extension — stitching accuracy vs ground truth", runAccuracy},
		{"adversarial", "extension — adversarial plates: weighted vs unweighted survival", runAdversarial},
		{"ablation-fft", "§VI.A — padding & real-to-complex FFT ablation", runAblationFFT},
		{"ablation-ccf", "design — CCF placement (CPU vs GPU) ablation", runAblationCCF},
		{"ablation-pool", "design — GPU buffer pool size ablation", runAblationPool},
		{"ablation-hyperq", "§VI.A — Kepler Hyper-Q kernel concurrency ablation", runAblationHyperQ},
		{"ablation-variants", "§VI.A — FFT variant (padded / real) pipeline ablation", runAblationVariants},
		{"bottleneck", "analysis — per-resource utilization of the modeled runs", runBottleneck},
		{"solvers", "phase 2 — spanning tree vs least-squares placement", runSolvers},
		{"solver-scaling", "extension — phase-2 LS engines vs plate size (GS / PCG / warm)", runSolverScaling},
		{"ablation-sockets", "§IV.B — per-socket CPU pipelines (future work)", runAblationSockets},
		{"drift", "extension — thermal stage drift and the linear stage model", runDrift},
		{"io-overlap", "§IV.B — pipeline hides I/O latency (real wall times)", runIOOverlap},
		{"queues", "design — inter-stage queue backpressure vs capacity", runQueues},
		{"sensitivity", "analysis — Table II ordering vs calibration error", runSensitivity},
		{"scale", "§I — scaling to the intro's workloads (up to 10,000 tiles)", runScale},
		{"serve", "extension — out-of-core composition + tile-server load test", runServe},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	var ids []string
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("report: unknown experiment %q (have %v)", id, ids)
}

// paperGrid is the paper's evaluation workload.
func paperGrid() tile.Grid {
	return tile.Grid{Rows: 42, Cols: 59, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
}

// realDataset builds the reduced-scale dataset for functional runs.
func realDataset(o Options) (*stitch.MemorySource, *imagegen.Dataset, error) {
	rows, cols, tw, th := o.realGridSize()
	p := imagegen.DefaultParams(rows, cols, tw, th)
	p.Seed = o.Seed
	ds, err := imagegen.Generate(p)
	if err != nil {
		return nil, nil, err
	}
	return &stitch.MemorySource{DS: ds, ReadDelay: 2 * time.Millisecond}, ds, nil
}

func runTable1(o Options) (string, error) {
	var sb strings.Builder
	sb.WriteString(stitch.Census(paperGrid()).String())
	sb.WriteString("\n(at reduced experiment scale)\n")
	rows, cols, tw, th := o.withDefaults().realGridSize()
	sb.WriteString(stitch.Census(tile.Grid{Rows: rows, Cols: cols, TileW: tw, TileH: th, OverlapX: 0.2, OverlapY: 0.2}).String())
	return sb.String(), nil
}

// table2Rows defines the paper's Table II configurations.
type table2Row struct {
	label   string
	impl    string
	threads int
	gpus    int
	paperS  float64
}

func table2Rows() []table2Row {
	return []table2Row{
		{"ImageJ/Fiji", "fiji", 5, 0, 3.6 * 3600},
		{"Simple-CPU", "simple-cpu", 1, 0, 10.6 * 60},
		{"MT-CPU", "mt-cpu", 16, 0, 96},
		{"Pipelined-CPU", "pipelined-cpu", 16, 0, 84},
		{"Simple-GPU", "simple-gpu", 1, 1, 9.3 * 60},
		{"Pipelined-GPU", "pipelined-gpu", 16, 1, 49.7},
		{"Pipelined-GPU", "pipelined-gpu", 16, 2, 26.6},
	}
}

func runTable2(o Options) (string, error) {
	o = o.withDefaults()
	g := paperGrid()

	model := Table{
		Title:   "Table II (model, paper scale: 42×59 of 1392×1040, paper host)",
		Headers: []string{"Implementation", "Thr", "GPUs", "Paper", "Model", "Model/Paper"},
	}
	for _, r := range table2Rows() {
		s, err := machine.Predict(machine.RunSpec{Impl: r.impl, Grid: g, Threads: r.threads, GPUs: r.gpus})
		if err != nil {
			return "", err
		}
		model.Add(r.label, r.threads, r.gpus, fmtDur(r.paperS), fmtDur(s), fmt.Sprintf("%.2f", s/r.paperS))
	}

	// Real functional runs at reduced scale on the simulated devices.
	src, _, err := realDataset(o)
	if err != nil {
		return "", err
	}
	devs := []*gpu.Device{gpu.New(gpu.Config{Name: "GPU0"}), gpu.New(gpu.Config{Name: "GPU1"})}
	defer devs[0].Close()
	defer devs[1].Close()
	real := Table{
		Title:   fmt.Sprintf("Table II (real functional runs, reduced scale %dx%d of %dx%d, simulated GPUs)", src.Grid().Rows, src.Grid().Cols, src.Grid().TileW, src.Grid().TileH),
		Headers: []string{"Implementation", "Thr", "GPUs", "Wall", "Transforms", "PeakLive"},
	}
	for _, r := range table2Rows() {
		if r.gpus == 2 && r.impl != "pipelined-gpu" {
			continue
		}
		impl, err := stitch.ByName(r.impl)
		if err != nil {
			return "", err
		}
		opts := stitch.Options{Threads: min(r.threads, 4), Devices: devs[:max(r.gpus, 0)]}
		res, err := impl.Run(src, opts)
		if err != nil {
			return "", err
		}
		real.Add(r.label, opts.Threads, r.gpus, res.Elapsed.Round(time.Millisecond).String(),
			res.TransformsComputed, res.PeakTransformsLive)
	}
	if err := writeCSV(o, "table2_model", &model); err != nil {
		return "", err
	}
	if err := writeCSV(o, "table2_real", &real); err != nil {
		return "", err
	}
	return model.String() + "\n" + real.String(), nil
}

func runFig5(o Options) (string, error) {
	host := machine.Fig5Host()
	costs := machine.PaperCosts()
	tilesAxis := []int{512, 576, 640, 704, 768, 832, 864, 896, 960, 1024}
	threadAxis := []int{1, 2, 4, 8, 16}

	tbl := Table{
		Title:   "Fig 5 (model): FFT-workload speedup vs tiles × threads, 24 GB host",
		Headers: append([]string{"tiles \\ threads"}, intsToStrs(threadAxis)...),
	}
	for _, tiles := range tilesAxis {
		g := tile.Grid{Rows: tiles / 32, Cols: 32, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
		row := []interface{}{tiles}
		for _, th := range threadAxis {
			sp, err := machine.FFTWorkloadSpeedup(g, host, costs, th)
			if err != nil {
				return "", err
			}
			row = append(row, fmt.Sprintf("%.2f", sp))
		}
		tbl.Add(row...)
	}

	if err := writeCSV(o, "fig5_speedups", &tbl); err != nil {
		return "", err
	}
	// Real demonstration with the memory governor: a sequential FFT
	// workload crossing a tiny simulated RAM limit.
	var sb strings.Builder
	sb.WriteString(tbl.String())
	sb.WriteString("\nReal governor demonstration (sequential FFTs, simulated 32-transform RAM):\n")
	gov := memgov.New(32*int64(128*96*16), 200*time.Nanosecond)
	plan, err := fft.NewPlan2D(96, 128, fft.Forward, fft.Plan2DOpts{})
	if err != nil {
		return "", err
	}
	buf := make([]complex128, 128*96)
	var below, above time.Duration
	// The allocations stay live for the whole loop on purpose: crossing
	// the governor's RAM limit at i == 32 is the paging cliff being
	// demonstrated. They are released together afterwards.
	var held []*memgov.Allocation
	defer func() {
		for _, a := range held {
			_ = a.Free()
		}
	}()
	for i := 0; i < 64; i++ {
		a, err := gov.Alloc(int64(128 * 96 * 16))
		if err != nil {
			return "", err
		}
		held = append(held, a)
		t0 := time.Now()
		gov.Touch(int64(128 * 96 * 16))
		if err := plan.Execute(buf); err != nil {
			return "", err
		}
		d := time.Since(t0)
		if i < 32 {
			below += d
		} else {
			above += d
		}
	}
	fmt.Fprintf(&sb, "  mean FFT below limit: %v   above limit: %v   (cliff ratio %.1fx)\n",
		(below / 32).Round(time.Microsecond), (above / 32).Round(time.Microsecond),
		float64(above)/float64(below))
	return sb.String(), nil
}

// profileRun executes one GPU implementation on a profiling device and
// reports its timeline.
func profileRun(o Options, impl stitch.Stitcher, gpus int) (string, error) {
	o = o.withDefaults()
	p := imagegen.DefaultParams(8, 8, 96, 64)
	p.Seed = o.Seed
	ds, err := imagegen.Generate(p)
	if err != nil {
		return "", err
	}
	src := &stitch.MemorySource{DS: ds, ReadDelay: time.Millisecond}
	var devs []*gpu.Device
	for d := 0; d < gpus; d++ {
		devs = append(devs, gpu.New(gpu.Config{Name: fmt.Sprintf("GPU%d", d), Profile: true,
			H2DBytesPerSec: 2e9, D2HBytesPerSec: 2e9}))
	}
	defer func() {
		for _, d := range devs {
			d.Close()
		}
	}()
	if _, err := impl.Run(src, stitch.Options{Threads: 4, Devices: devs}); err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, d := range devs {
		tl := d.Timeline()
		spans := tl.Spans()
		if len(spans) == 0 {
			continue
		}
		from, to := spans[0].Start, spans[len(spans)-1].End
		fmt.Fprintf(&sb, "%s (%s, 8×8 grid):\n", d.Name(), impl.Name())
		sb.WriteString(tl.Render(96))
		fmt.Fprintf(&sb, "kernel-row utilization: %.1f%%   gaps > 200µs: %d\n\n",
			100*tl.Utilization("kernel", from, to), tl.GapCount("kernel", 200*time.Microsecond))
	}
	return sb.String(), nil
}

func runFig7(o Options) (string, error) {
	out, err := profileRun(o, &stitch.SimpleGPU{}, 1)
	if err != nil {
		return "", err
	}
	return "Fig 7 analogue — synchronous single-stream execution: sparse kernel row, gaps for CPU work.\n\n" + out, nil
}

func runFig9(o Options) (string, error) {
	out, err := profileRun(o, &stitch.PipelinedGPU{}, 1)
	if err != nil {
		return "", err
	}
	return "Fig 9 analogue — pipelined multi-stream execution: dense kernel row, copies overlapped.\n\n" + out, nil
}

func runFig10(o Options) (string, error) {
	g := paperGrid()
	var xs, ys []float64
	tbl := Table{Title: "Fig 10 (model): Pipelined-GPU, 2 GPUs, 42×59 grid", Headers: []string{"CCF threads", "Time (s)"}}
	for th := 1; th <= 16; th++ {
		s, err := machine.Predict(machine.RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, CCFThreads: th, GPUs: 2})
		if err != nil {
			return "", err
		}
		xs = append(xs, float64(th))
		ys = append(ys, s)
		tbl.Add(th, fmt.Sprintf("%.1f", s))
	}
	if err := writeCSV(o, "fig10_ccf_threads", &tbl); err != nil {
		return "", err
	}
	return tbl.String() + "\n" + PlotASCII("Fig 10: time vs CCF threads", "CCF threads", "seconds", 10,
		Series{Label: "2 GPUs", X: xs, Y: ys}), nil
}

func runFig11(o Options) (string, error) {
	g := paperGrid()
	t1, err := machine.Predict(machine.RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 1})
	if err != nil {
		return "", err
	}
	var xs, times, speedups []float64
	tbl := Table{Title: "Fig 11 (model): Pipelined-CPU strong scaling, 42×59 grid", Headers: []string{"Threads", "Time (s)", "Speedup"}}
	for th := 1; th <= 16; th++ {
		s, err := machine.Predict(machine.RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: th})
		if err != nil {
			return "", err
		}
		xs = append(xs, float64(th))
		times = append(times, s)
		speedups = append(speedups, t1/s)
		tbl.Add(th, fmt.Sprintf("%.1f", s), fmt.Sprintf("%.2f", t1/s))
	}
	if err := writeCSV(o, "fig11_scaling", &tbl); err != nil {
		return "", err
	}
	return tbl.String() + "\n" + PlotASCII("Fig 11: speedup vs threads (knee at 8 physical cores)", "threads", "speedup", 10,
		Series{Label: "speedup", X: xs, Y: speedups}), nil
}

func runFig12(o Options) (string, error) {
	threadAxis := []int{1, 2, 4, 6, 8, 10, 12, 14, 16}
	tileAxis := []int{128, 256, 384, 512, 640, 768, 896, 1024}
	tbl := Table{
		Title:   "Fig 12 (model): Pipelined-CPU speedup surface (tiles × threads)",
		Headers: append([]string{"tiles \\ threads"}, intsToStrs(threadAxis)...),
	}
	for _, tiles := range tileAxis {
		g := tile.Grid{Rows: tiles / 16, Cols: 16, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
		t1, err := machine.Predict(machine.RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 1})
		if err != nil {
			return "", err
		}
		row := []interface{}{tiles}
		for _, th := range threadAxis {
			s, err := machine.Predict(machine.RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: th})
			if err != nil {
				return "", err
			}
			row = append(row, fmt.Sprintf("%.2f", t1/s))
		}
		tbl.Add(row...)
	}
	if err := writeCSV(o, "fig12_surface", &tbl); err != nil {
		return "", err
	}
	return tbl.String(), nil
}

// composeExperiment runs the full three phases and writes a PNG.
func composeExperiment(o Options, highlight bool, file string) (string, error) {
	o = o.withDefaults()
	src, ds, err := realDataset(o)
	if err != nil {
		return "", err
	}
	res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4})
	if err != nil {
		return "", err
	}
	pl, err := global.Solve(res, global.Options{RepairOutliers: true})
	if err != nil {
		return "", err
	}
	rms, err := global.RMSError(pl, ds.TruthX, ds.TruthY)
	if err != nil {
		return "", err
	}
	w, h := pl.Bounds()
	var sb strings.Builder
	fmt.Fprintf(&sb, "composite: %dx%d px from %d tiles; placement RMS vs ground truth: %.2f px\n",
		w, h, pl.Grid.NumTiles(), rms)
	if o.OutDir == "" {
		sb.WriteString("(no -out directory given; PNG not written)\n")
		return sb.String(), nil
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(o.OutDir, file)
	if highlight {
		img, err := compose.HighlightGrid(pl, src, compose.BlendOverlay)
		if err != nil {
			return "", err
		}
		if err := compose.WriteRGBAPNGFile(path, img); err != nil {
			return "", err
		}
	} else {
		img, err := compose.Compose(pl, src, compose.BlendOverlay)
		if err != nil {
			return "", err
		}
		if err := compose.WritePNGFile(path, img); err != nil {
			return "", err
		}
	}
	fmt.Fprintf(&sb, "wrote %s\n", path)
	return sb.String(), nil
}

func runFig13(o Options) (string, error) { return composeExperiment(o, false, "fig13_composite.png") }
func runFig14(o Options) (string, error) { return composeExperiment(o, true, "fig14_highlight.png") }

func runPlanner(o Options) (string, error) {
	o = o.withDefaults()
	sizes := []int{348, 260} // 1392/4 and 1040/4: same factor structure
	if !o.Quick {
		sizes = append(sizes, 1392, 1040)
	}
	tbl := Table{
		Title:   "FFT planning modes (real measurements; paper: patient ≈ 2x over estimate for 1392×1040)",
		Headers: []string{"n", "mode", "strategy", "exec (µs)", "planning"},
	}
	for _, n := range sizes {
		for _, mode := range []fft.Mode{fft.Estimate, fft.Measure, fft.Patient} {
			pl := fft.NewPlanner(mode)
			p, err := pl.Plan(n, fft.Forward, fft.PlanOpts{})
			if err != nil {
				return "", err
			}
			buf := make([]complex128, n)
			for i := range buf {
				buf[i] = complex(float64(i%7), 0)
			}
			// time the best of a few executions
			best := time.Duration(1 << 62)
			for r := 0; r < 5; r++ {
				t0 := time.Now()
				if err := p.Execute(buf); err != nil {
					return "", err
				}
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			tbl.Add(n, mode.String(), p.Strategy(), best.Microseconds(), pl.PlanningTime().Round(time.Microsecond).String())
		}
	}
	return tbl.String(), nil
}

func runTraversal(o Options) (string, error) {
	o = o.withDefaults()
	p := imagegen.DefaultParams(6, 10, 64, 48)
	p.Grid.OverlapX, p.Grid.OverlapY = 0.3, 0.3
	p.Seed = o.Seed
	ds, err := imagegen.Generate(p)
	if err != nil {
		return "", err
	}
	src := &stitch.MemorySource{DS: ds}
	tbl := Table{
		Title:   "Traversal order vs peak resident transforms (6×10 grid; paper default: chained-diagonal)",
		Headers: []string{"Traversal", "Peak live", "Wall"},
	}
	for _, tr := range stitch.Traversals() {
		res, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{Traversal: tr})
		if err != nil {
			return "", err
		}
		tbl.Add(tr.String(), res.PeakTransformsLive, res.Elapsed.Round(time.Millisecond).String())
	}
	return tbl.String(), nil
}

func runLaptop(o Options) (string, error) {
	g := paperGrid()
	lap := machine.LaptopHost()
	tbl := Table{
		Title:   "§VI laptop validation (model): i7-950, 12 GB, GTX 560M",
		Headers: []string{"Implementation", "Paper (s)", "Model (s)"},
	}
	gpuT, err := machine.Predict(machine.RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 8, CCFThreads: 8, GPUs: 1, Host: lap})
	if err != nil {
		return "", err
	}
	cpuT, err := machine.Predict(machine.RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 8, Host: lap})
	if err != nil {
		return "", err
	}
	tbl.Add("Pipelined-GPU", 130, fmt.Sprintf("%.1f", gpuT))
	tbl.Add("Pipelined-CPU", 146, fmt.Sprintf("%.1f", cpuT))
	return tbl.String(), nil
}

func runAccuracy(o Options) (string, error) {
	o = o.withDefaults()
	tbl := Table{
		Title:   "Stitching accuracy vs ground truth (extension; the paper had no ground truth)",
		Headers: []string{"Colony density", "Pairs ±1 px", "Placement RMS (px)", "Repaired edges"},
	}
	for _, density := range []float64{1, 3, 12} {
		p := imagegen.DefaultParams(5, 5, 128, 96)
		p.Seed = o.Seed
		p.ColonyDensity = density
		ds, err := imagegen.Generate(p)
		if err != nil {
			return "", err
		}
		src := &stitch.MemorySource{DS: ds}
		res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4})
		if err != nil {
			return "", err
		}
		good := 0
		for _, pr := range p.Grid.Pairs() {
			got, _ := res.PairDisplacement(pr)
			want := ds.TrueDisplacement(pr)
			if absInt(got.X-want.X) <= 1 && absInt(got.Y-want.Y) <= 1 {
				good++
			}
		}
		pl, err := global.Solve(res, global.Options{RepairOutliers: true})
		if err != nil {
			return "", err
		}
		rms, err := global.RMSError(pl, ds.TruthX, ds.TruthY)
		if err != nil {
			return "", err
		}
		tbl.Add(density, fmt.Sprintf("%d/%d", good, p.Grid.NumPairs()), fmt.Sprintf("%.2f", rms), pl.Repaired)
	}
	return tbl.String(), nil
}

func runAdversarial(o Options) (string, error) {
	o = o.withDefaults()
	// Always the standard accuracy workload: the scenarios (and their
	// documented thresholds) are tuned for it, and a full run costs only
	// a few seconds — a shrunken grid would just misrepresent them.
	rows, cols, tw, th := 5, 6, 128, 96
	tbl := Table{
		Title: "Adversarial plates (extension): full weighted pipeline, and raw solver arms isolating confidence weighting",
		Headers: []string{"Scenario", "Pairs ±1 px", "Rescued", "RMS (px)", "±1 px frac",
			"raw wRMS", "raw uRMS"},
	}
	for _, sc := range imagegen.Scenarios(rows, cols, tw, th) {
		full, err := accuracy.RunScenario(sc, o.Seed, accuracy.PipelineOptions{Threads: 4})
		if err != nil {
			return "", err
		}
		rawW, err := accuracy.RunScenario(sc, o.Seed, accuracy.PipelineOptions{Threads: 4, NoRefine: true})
		if err != nil {
			return "", err
		}
		rawU, err := accuracy.RunScenario(sc, o.Seed, accuracy.PipelineOptions{Threads: 4, NoRefine: true, Unweighted: true})
		if err != nil {
			return "", err
		}
		m := full.Metrics
		tbl.Add(sc.Name,
			fmt.Sprintf("%d/%d", m.PairsWithin1, m.Pairs),
			m.PairsRescued,
			fmt.Sprintf("%.2f", m.PlacementRMS),
			fmt.Sprintf("%.2f", m.TilesWithin1Frac),
			fmt.Sprintf("%.2f", rawW.Metrics.PlacementRMS),
			fmt.Sprintf("%.2f", rawU.Metrics.PlacementRMS))
	}
	return tbl.String(), nil
}

func runAblationFFT(o Options) (string, error) {
	o = o.withDefaults()
	var sb strings.Builder
	// Padding ablation: awkward sizes vs next fast length.
	base := []int{348, 1392}
	if o.Quick {
		base = []int{348}
	}
	tbl := Table{
		Title:   "Padding ablation (paper §VI.A: pad tiles to small-prime sizes)",
		Headers: []string{"n", "strategy", "exec", "padded to", "strategy", "exec", "gain"},
	}
	for _, n := range base {
		tn, sn, err := timeFFT(n)
		if err != nil {
			return "", err
		}
		pad := fft.NextFastLength(n)
		tp, sp, err := timeFFT(pad)
		if err != nil {
			return "", err
		}
		// gain per element accounts for the larger padded size.
		gain := (float64(tn) / float64(n)) / (float64(tp) / float64(pad))
		tbl.Add(n, sn, time.Duration(tn).Round(time.Microsecond).String(),
			pad, sp, time.Duration(tp).Round(time.Microsecond).String(), fmt.Sprintf("%.2fx/elem", gain))
	}
	sb.WriteString(tbl.String())

	// Real-to-complex ablation.
	r2c := Table{
		Title:   "\nReal-to-complex ablation (paper §VI.A: r2c does less work)",
		Headers: []string{"size", "c2c 2-D", "r2c 2-D", "speedup"},
	}
	dims := [][2]int{{96, 128}, {240, 320}}
	for _, d := range dims {
		h, w := d[0], d[1]
		cp, err := fft.NewPlan2D(h, w, fft.Forward, fft.Plan2DOpts{})
		if err != nil {
			return "", err
		}
		rp, err := fft.NewRealPlan2D(h, w)
		if err != nil {
			return "", err
		}
		cbuf := make([]complex128, h*w)
		rbuf := make([]float64, h*w)
		for i := range rbuf {
			rbuf[i] = float64(i % 13)
			cbuf[i] = complex(rbuf[i], 0)
		}
		sh, sw := rp.SpectrumDims()
		spec := make([]complex128, sh*sw)
		tc := bestOf(5, func() error { return cp.Execute(cbuf) })
		tr := bestOf(5, func() error { return rp.Forward(spec, rbuf) })
		r2c.Add(fmt.Sprintf("%dx%d", h, w), tc.Round(time.Microsecond).String(), tr.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(tc)/float64(tr)))
	}
	sb.WriteString(r2c.String())
	return sb.String(), nil
}

func runAblationCCF(o Options) (string, error) {
	g := paperGrid()
	tbl := Table{
		Title:   "CCF placement ablation (model; paper argues CPU placement minimizes D2H and frees the GPU)",
		Headers: []string{"Placement", "GPUs", "Time (s)"},
	}
	for _, gpus := range []int{1, 2} {
		cpuT, err := machine.Predict(machine.RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: gpus})
		if err != nil {
			return "", err
		}
		gpuT, err := machine.Predict(machine.RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: gpus, CCFOnGPU: true})
		if err != nil {
			return "", err
		}
		tbl.Add("CCF on CPU threads", gpus, fmt.Sprintf("%.1f", cpuT))
		tbl.Add("CCF on GPU kernels", gpus, fmt.Sprintf("%.1f", gpuT))
	}
	return tbl.String(), nil
}

func runAblationPool(o Options) (string, error) {
	o = o.withDefaults()
	src, _, err := realDataset(o)
	if err != nil {
		return "", err
	}
	g := src.Grid()
	minDim := g.Rows
	if g.Cols < minDim {
		minDim = g.Cols
	}
	tbl := Table{
		Title:   "GPU buffer pool size ablation (real runs; paper: pool must exceed the smallest grid dimension)",
		Headers: []string{"Pool (transforms)", "Outcome", "Wall", "Peak in use"},
	}
	for _, pool := range []int{minDim - 1, minDim + 2, 2*minDim + 4, 4 * minDim} {
		dev := gpu.New(gpu.Config{Name: "GPU0"})
		res, err := (&stitch.PipelinedGPU{}).Run(src, stitch.Options{
			Threads: 4, Devices: []*gpu.Device{dev}, PoolTransforms: pool})
		if err != nil {
			tbl.Add(pool, "rejected: "+truncate(err.Error(), 48), "-", "-")
		} else {
			tbl.Add(pool, "ok", res.Elapsed.Round(time.Millisecond).String(), res.PeakTransformsLive)
		}
		dev.Close()
	}
	return tbl.String(), nil
}

func runAblationHyperQ(o Options) (string, error) {
	o = o.withDefaults()
	g := paperGrid()
	tbl := Table{
		Title:   "Hyper-Q ablation (model, paper scale): concurrent-kernel slots per GPU",
		Headers: []string{"Kernel slots", "GPUs", "Time (s)"},
	}
	for _, gpus := range []int{1, 2} {
		for _, slots := range []int{1, 2, 4, 16} {
			s, err := machine.Predict(machine.RunSpec{
				Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: gpus, KernelSlots: slots})
			if err != nil {
				return "", err
			}
			tbl.Add(slots, gpus, fmt.Sprintf("%.1f", s))
		}
	}
	var sb strings.Builder
	sb.WriteString(tbl.String())

	// Real correctness + behavior demonstration on a Kepler-class
	// simulated device with multiple FFT-issuing streams.
	src, _, err := realDataset(o)
	if err != nil {
		return "", err
	}
	fermi := gpu.New(gpu.FermiConfig("C2070"))
	defer fermi.Close()
	kepler := gpu.New(gpu.KeplerConfig("K20"))
	defer kepler.Close()
	rFermi, err := (&stitch.PipelinedGPU{}).Run(src, stitch.Options{Threads: 4, Devices: []*gpu.Device{fermi}})
	if err != nil {
		return "", err
	}
	rKepler, err := (&stitch.PipelinedGPU{}).Run(src, stitch.Options{
		Threads: 4, Devices: []*gpu.Device{kepler}, FFTStreams: 4})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\nreal runs (reduced scale): Fermi/1 fft stream %v, Kepler/4 fft streams %v; identical results: %v\n",
		rFermi.Elapsed.Round(time.Millisecond), rKepler.Elapsed.Round(time.Millisecond),
		sameDisplacements(rFermi, rKepler))
	return sb.String(), nil
}

func sameDisplacements(a, b *stitch.Result) bool {
	for _, p := range a.Grid.Pairs() {
		da, _ := a.PairDisplacement(p)
		db, _ := b.PairDisplacement(p)
		if da.X != db.X || da.Y != db.Y {
			return false
		}
	}
	return true
}

func runAblationVariants(o Options) (string, error) {
	o = o.withDefaults()
	src, _, err := realDataset(o)
	if err != nil {
		return "", err
	}
	tbl := Table{
		Title:   "FFT variant ablation (real pipelined-cpu runs, reduced scale)",
		Headers: []string{"Variant", "Wall", "Identical to baseline"},
	}
	base, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4})
	if err != nil {
		return "", err
	}
	tbl.Add("complex (baseline)", base.Elapsed.Round(time.Millisecond).String(), "-")
	for _, v := range []stitch.FFTVariant{stitch.VariantPadded, stitch.VariantReal} {
		res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4, FFTVariant: v})
		if err != nil {
			return "", err
		}
		tbl.Add(string(v), res.Elapsed.Round(time.Millisecond).String(), sameDisplacements(base, res))
	}
	return tbl.String(), nil
}

func runBottleneck(o Options) (string, error) {
	g := paperGrid()
	var sb strings.Builder
	for _, cfg := range []struct {
		label string
		spec  machine.RunSpec
	}{
		{"pipelined-gpu, 1 GPU", machine.RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 1}},
		{"pipelined-gpu, 2 GPUs", machine.RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 2}},
		{"pipelined-cpu, 16 threads", machine.RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 16}},
	} {
		mk, stats, err := machine.PredictWithStats(cfg.spec)
		if err != nil {
			return "", err
		}
		tbl := Table{
			Title:   fmt.Sprintf("%s — makespan %.1f s", cfg.label, mk),
			Headers: []string{"Resource", "Busy (s)", "Busy/makespan", "Max queue"},
		}
		for _, st := range stats {
			tbl.Add(st.Name, fmt.Sprintf("%.1f", st.BusySeconds),
				fmt.Sprintf("%.0f%%", 100*st.BusySeconds/mk), st.MaxQueue)
		}
		sb.WriteString(tbl.String() + "\n")
	}
	sb.WriteString("The 2nd GPU's 1.87x (not 2x): the shared disk approaches saturation;\n")
	sb.WriteString("a 3rd or 4th card would buy nothing without faster input I/O.\n")

	// With an output directory, also export the modeled paper-scale
	// Pipelined-GPU schedule as a Chrome trace — the virtual-time Fig 9.
	if o.OutDir != "" {
		if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
			return "", err
		}
		_, spans, err := machine.PredictWithTrace(machine.RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 2})
		if err != nil {
			return "", err
		}
		path := filepath.Join(o.OutDir, "model_pipelined_gpu_trace.json")
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		if err := machine.WriteTrace(f, spans, "pipelined-gpu 2xC2070 42x59"); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "wrote %s (%d task spans, open in Perfetto)\n", path, len(spans))
	}
	return sb.String(), nil
}

func runSolvers(o Options) (string, error) {
	o = o.withDefaults()
	tbl := Table{
		Title:   "Phase-2 solvers under per-edge noise (8x8 grid, truth-derived displacements)",
		Headers: []string{"Noise (px)", "MST RMS", "Least-squares RMS"},
	}
	for _, noise := range []int{0, 1, 2, 4} {
		p := imagegen.DefaultParams(8, 8, 64, 64)
		p.Seed = o.Seed
		ds, err := imagegen.Generate(p)
		if err != nil {
			return "", err
		}
		res := resultFromTruthNoisy(ds, noise, o.Seed+int64(noise))
		mst, err := global.Solve(res, global.Options{})
		if err != nil {
			return "", err
		}
		ls, err := global.SolveLeastSquares(res, global.LSOptions{})
		if err != nil {
			return "", err
		}
		mstRMS, err := global.RMSError(mst, ds.TruthX, ds.TruthY)
		if err != nil {
			return "", err
		}
		lsRMS, err := global.RMSError(ls, ds.TruthX, ds.TruthY)
		if err != nil {
			return "", err
		}
		tbl.Add(noise, fmt.Sprintf("%.2f", mstRMS), fmt.Sprintf("%.2f", lsRMS))
	}
	return tbl.String() + "\nThe over-constrained graph pays off under global optimization: LS averages\nper-edge noise where the tree accumulates it along root paths.\n", nil
}

// runSolverScaling times the phase-2 least-squares engines across plate
// sizes. Gauss-Seidel's stationary sweeps need O(n) iterations on the
// O(√n)-conditioned grid Laplacian, so its cost grows superlinearly; the
// two-level PCG hierarchy holds the iteration count roughly flat. Above
// a size cutoff the GS arm is skipped (it is the multi-minute regime the
// BenchmarkSolvers59k snapshot records once per PR). The warm column
// re-solves after appending one tile row via Resolver.
func runSolverScaling(o Options) (string, error) {
	o = o.withDefaults()
	tbl := Table{
		Title:   "Phase-2 LS engine scaling (synthetic plates, 5-round IRLS, wall time)",
		Headers: []string{"Grid", "Tiles", "GS", "PCG jacobi", "PCG 2-level", "Warm +1 row"},
	}
	sizes := []struct{ rows, cols int }{{16, 16}, {45, 45}, {90, 90}}
	if !o.Quick {
		sizes = append(sizes, struct{ rows, cols int }{250, 235})
	}
	const gsCutoff = 10000 // tiles; beyond this GS is the multi-minute regime
	timeArm := func(res *stitch.Result, opts global.LSOptions) (time.Duration, error) {
		t0 := time.Now()
		_, err := global.SolveLeastSquares(res, opts)
		return time.Since(t0), err
	}
	for _, sz := range sizes {
		res := synthPlateResult(sz.rows, sz.cols, o.Seed)
		n := sz.rows * sz.cols
		gsCell := "(skipped)"
		if n <= gsCutoff {
			d, err := timeArm(res, global.LSOptions{Solver: global.SolverGS})
			if err != nil {
				return "", err
			}
			gsCell = fmt.Sprintf("%.2fs", d.Seconds())
		}
		dj, err := timeArm(res, global.LSOptions{Solver: global.SolverPCG, Precond: global.PrecondJacobi})
		if err != nil {
			return "", err
		}
		d2, err := timeArm(res, global.LSOptions{Solver: global.SolverPCG})
		if err != nil {
			return "", err
		}
		// Warm: cold-solve the plate, append a row, re-solve.
		rs := global.NewResolver(global.LSOptions{Solver: global.SolverPCG})
		if _, err := rs.Solve(res); err != nil {
			return "", err
		}
		grown := synthPlateResult(sz.rows+1, sz.cols, o.Seed)
		t0 := time.Now()
		if _, err := rs.Solve(grown); err != nil {
			return "", err
		}
		dw := time.Since(t0)
		tbl.Add(fmt.Sprintf("%dx%d", sz.rows, sz.cols), n, gsCell,
			fmt.Sprintf("%.2fs", dj.Seconds()), fmt.Sprintf("%.2fs", d2.Seconds()),
			fmt.Sprintf("%.2fs", dw.Seconds()))
	}
	return tbl.String() + "\nThe two-level hierarchy keeps CG iteration counts size-independent, so its\ncolumn grows only with the SpMV cost; GS grows with both. Warm re-solves\ntouch the appended row and its neighborhood, nearly independent of plate size.\n", nil
}

// synthPlateResult fabricates a phase-1 result at arbitrary scale without
// generating images: truth near nominal stage positions, noisy measured
// displacements, and 1% confident outliers for the IRLS rounds to defuse.
// Random draws are keyed to the tile coordinate so a plate grown by a
// row is a strict superset of the smaller one — the warm-resolve arm
// models streaming ingest, not a full re-measurement.
func synthPlateResult(rows, cols int, seed int64) *stitch.Result {
	g := tile.Grid{Rows: rows, Cols: cols, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
	n := g.NumTiles()
	nomW := g.NominalDisplacement(tile.West)
	nomN := g.NominalDisplacement(tile.North)
	coordRNG := func(row, col, salt int) *rand.Rand {
		return rand.New(rand.NewSource(seed + int64(row)*1_000_003 + int64(col)*4 + int64(salt)))
	}
	tx := make([]int, n)
	ty := make([]int, n)
	for i := 0; i < n; i++ {
		c := g.CoordOf(i)
		r := coordRNG(c.Row, c.Col, 0)
		tx[i] = c.Col*nomW.X + r.Intn(7) - 3
		ty[i] = c.Row*nomN.Y + r.Intn(7) - 3
	}
	res := &stitch.Result{Grid: g,
		West:  make([]tile.Displacement, n),
		North: make([]tile.Displacement, n)}
	for i := range res.West {
		res.West[i].Corr = math.NaN()
		res.North[i].Corr = math.NaN()
	}
	for _, p := range g.Pairs() {
		to := g.Index(p.Coord)
		from := g.Index(p.Neighbor())
		salt := 1
		if p.Dir == tile.North {
			salt = 2
		}
		rng := coordRNG(p.Coord.Row, p.Coord.Col, salt)
		d := tile.Displacement{X: tx[to] - tx[from], Y: ty[to] - ty[from],
			Corr: 0.7 + 0.25*rng.Float64()}
		switch r := rng.Float64(); {
		case r < 0.01:
			d.X += 35
			d.Y -= 20
			d.Corr = 0.97
		default:
			d.X += rng.Intn(3) - 1
			d.Y += rng.Intn(3) - 1
		}
		if p.Dir == tile.West {
			res.West[to] = d
		} else {
			res.North[to] = d
		}
	}
	return res
}

// resultFromTruthNoisy fabricates a phase-1 result from ground truth with
// uniform +-noise on every displacement.
func resultFromTruthNoisy(ds *imagegen.Dataset, noise int, seed int64) *stitch.Result {
	g := ds.Params.Grid
	rng := rand.New(rand.NewSource(seed))
	res := &stitch.Result{Grid: g,
		West:  make([]tile.Displacement, g.NumTiles()),
		North: make([]tile.Displacement, g.NumTiles())}
	for i := range res.West {
		res.West[i].Corr = math.NaN()
		res.North[i].Corr = math.NaN()
	}
	for _, p := range g.Pairs() {
		d := ds.TrueDisplacement(p)
		if noise > 0 {
			d.X += rng.Intn(2*noise+1) - noise
			d.Y += rng.Intn(2*noise+1) - noise
		}
		d.Corr = 0.9
		i := g.Index(p.Coord)
		if p.Dir == tile.West {
			res.West[i] = d
		} else {
			res.North[i] = d
		}
	}
	return res
}

func runAblationSockets(o Options) (string, error) {
	o = o.withDefaults()
	g := paperGrid()
	tbl := Table{
		Title:   "Per-socket CPU pipelines (model, paper scale, 16 threads)",
		Headers: []string{"Sockets", "Time (s)"},
	}
	for _, sockets := range []int{1, 2} {
		s, err := machine.Predict(machine.RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 16, Sockets: sockets})
		if err != nil {
			return "", err
		}
		tbl.Add(sockets, fmt.Sprintf("%.1f", s))
	}
	var sb strings.Builder
	sb.WriteString(tbl.String())

	// Real runs: correctness and the redundant boundary-row count.
	src, _, err := realDataset(o)
	if err != nil {
		return "", err
	}
	single, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4})
	if err != nil {
		return "", err
	}
	socketed, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4, Sockets: 2})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\nreal runs (reduced scale): 1 socket %v (%d transforms), 2 sockets %v (%d transforms, one redundant boundary row); identical results: %v\n",
		single.Elapsed.Round(time.Millisecond), single.TransformsComputed,
		socketed.Elapsed.Round(time.Millisecond), socketed.TransformsComputed,
		sameDisplacements(single, socketed))
	return sb.String(), nil
}

func runDrift(o Options) (string, error) {
	o = o.withDefaults()
	tbl := Table{
		Title:   "Thermal drift (1.5 px/row over 8 rows): constant vs linear stage models",
		Headers: []string{"Stage model", "Predictions in bound", "Placement RMS (px)"},
	}
	for _, linear := range []bool{false, true} {
		p := imagegen.DefaultParams(8, 4, 128, 96)
		p.Seed = o.Seed
		p.ThermalDrift = 1.5
		ds, err := imagegen.Generate(p)
		if err != nil {
			return "", err
		}
		src := &stitch.MemorySource{DS: ds}
		res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4})
		if err != nil {
			return "", err
		}
		// The refinement pass always fits the linear model now; emulate
		// the constant model by corrupting nothing and comparing the
		// model predictions directly instead.
		sm := global.FitStageModel(res, 0.5)
		good := 0
		total := 0
		for _, pr := range p.Grid.Pairs() {
			want := ds.TrueDisplacement(pr)
			var pred tile.Displacement
			if linear {
				pred = sm.Predict(pr)
			} else {
				// Constant model: the fit's intercept at the grid
				// center, i.e. a plain median.
				centered := global.StageModel{
					WestX:  global.LinearFit{A: sm.WestX.At(p.Grid.Rows/2, p.Grid.Cols/2)},
					WestY:  global.LinearFit{A: sm.WestY.At(p.Grid.Rows/2, p.Grid.Cols/2)},
					NorthX: global.LinearFit{A: sm.NorthX.At(p.Grid.Rows/2, p.Grid.Cols/2)},
					NorthY: global.LinearFit{A: sm.NorthY.At(p.Grid.Rows/2, p.Grid.Cols/2)},
				}
				pred = centered.Predict(pr)
			}
			total++
			// A pair's truth includes ±2·jitter of irreducible noise
			// the stage model cannot predict; judge against that bound.
			bound := 2 * p.MaxJitter
			if absInt(pred.X-want.X) <= bound && absInt(pred.Y-want.Y) <= bound {
				good++
			}
		}
		if _, err := global.RefineResult(res, src, global.RefineOptions{}); err != nil {
			return "", err
		}
		pl, err := global.Solve(res, global.Options{RepairOutliers: true})
		if err != nil {
			return "", err
		}
		rms, err := global.RMSError(pl, ds.TruthX, ds.TruthY)
		if err != nil {
			return "", err
		}
		name := "constant (median)"
		if linear {
			name = "linear (row/col fit)"
		}
		tbl.Add(name, fmt.Sprintf("%d/%d within ±2·jitter", good, total), fmt.Sprintf("%.2f", rms))
	}
	return tbl.String() + "\nThe drifting stage breaks the constant model's predictions at the grid\nedges; the linear fit tracks it (and seeds the CCF repair pass).\n", nil
}

func runIOOverlap(o Options) (string, error) {
	o = o.withDefaults()
	rows, cols, tw, th := o.realGridSize()
	p := imagegen.DefaultParams(rows, cols, tw, th)
	p.Seed = o.Seed
	ds, err := imagegen.Generate(p)
	if err != nil {
		return "", err
	}
	tbl := Table{
		Title:   "I/O-latency hiding (REAL wall times on this host, any core count)",
		Headers: []string{"Per-tile read latency", "Simple-CPU", "Pipelined-CPU", "Hidden"},
	}
	for _, delay := range []time.Duration{0, 2 * time.Millisecond, 5 * time.Millisecond} {
		src := &stitch.MemorySource{DS: ds, ReadDelay: delay}
		simple, err := (&stitch.SimpleCPU{}).Run(src, stitch.Options{})
		if err != nil {
			return "", err
		}
		piped, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 2, ReadThreads: 2})
		if err != nil {
			return "", err
		}
		hidden := "-"
		if delay > 0 {
			ioTotal := time.Duration(p.Grid.NumTiles()) * delay
			frac := float64(simple.Elapsed-piped.Elapsed) / float64(ioTotal)
			if frac > 1 {
				frac = 1
			}
			if frac < 0 {
				frac = 0
			}
			hidden = fmt.Sprintf("%.0f%% of %v", 100*frac, ioTotal)
		}
		tbl.Add(delay.String(), simple.Elapsed.Round(time.Millisecond).String(),
			piped.Elapsed.Round(time.Millisecond).String(), hidden)
	}
	return tbl.String() + "\nThe sequential implementation pays every read in full; the pipeline's\nreader stage overlaps reads with FFT/displacement compute — the paper's\ncentral mechanism, visible in real wall time even on one core because\nI/O waits do not occupy the CPU.\n", nil
}

func runQueues(o Options) (string, error) {
	o = o.withDefaults()
	src, _, err := realDataset(o)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, qcap := range []int{2, 8, 32} {
		res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4, QueueCap: qcap})
		if err != nil {
			return "", err
		}
		tbl := Table{
			Title:   fmt.Sprintf("Pipelined-CPU queue stats, QueueCap=%d (wall %v)", qcap, res.Elapsed.Round(time.Millisecond)),
			Headers: []string{"Queue", "Cap", "Pushes", "Max depth"},
		}
		for _, qs := range res.QueueStats {
			tbl.Add(qs.Name, qs.Cap, qs.Pushes, qs.MaxDepth)
		}
		sb.WriteString(tbl.String() + "\n")
	}
	sb.WriteString("Bounded queues are the memory contract: tighter caps mean earlier\nbackpressure on the reader, never unbounded buffering (the paper's\nmonitor queues exist for exactly this).\n")
	return sb.String(), nil
}

// runSensitivity perturbs each calibrated cost ±25% and checks whether
// the paper's Table II ordering survives — the model's conclusions must
// not hinge on the exact calibration constants.
func runSensitivity(o Options) (string, error) {
	g := paperGrid()
	order := func(costs machine.CostModel) ([]float64, error) {
		specs := []machine.RunSpec{
			{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 2, Costs: costs},
			{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 1, Costs: costs},
			{Impl: "pipelined-cpu", Grid: g, Threads: 16, Costs: costs},
			{Impl: "mt-cpu", Grid: g, Threads: 16, Costs: costs},
			{Impl: "simple-gpu", Grid: g, GPUs: 1, Costs: costs},
			{Impl: "simple-cpu", Grid: g, Costs: costs},
			{Impl: "fiji", Grid: g, Costs: costs},
		}
		times := make([]float64, len(specs))
		for i, spec := range specs {
			t, err := machine.Predict(spec)
			if err != nil {
				return nil, err
			}
			times[i] = t
		}
		return times, nil
	}
	monotone := func(ts []float64) bool {
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				return false
			}
		}
		return true
	}
	tbl := Table{
		Title:   "Calibration sensitivity: Table II ordering under ±25% cost perturbations",
		Headers: []string{"Perturbed cost", "-25% ordering holds", "+25% ordering holds"},
	}
	perturb := []struct {
		name  string
		apply func(*machine.CostModel, float64)
	}{
		{"Read", func(c *machine.CostModel, f float64) { c.Read *= f }},
		{"FFTCPU", func(c *machine.CostModel, f float64) { c.FFTCPU *= f }},
		{"FFTGPU", func(c *machine.CostModel, f float64) { c.FFTGPU *= f }},
		{"NCCGPU+MaxGPU", func(c *machine.CostModel, f float64) { c.NCCGPU *= f; c.MaxGPU *= f }},
		{"CCF", func(c *machine.CostModel, f float64) { c.CCF *= f }},
		{"SyncOverhead", func(c *machine.CostModel, f float64) { c.SyncOverhead *= f }},
		{"H2D", func(c *machine.CostModel, f float64) { c.H2D *= f }},
	}
	for _, pt := range perturb {
		row := []interface{}{pt.name}
		for _, f := range []float64{0.75, 1.25} {
			costs := machine.PaperCosts()
			pt.apply(&costs, f)
			ts, err := order(costs)
			if err != nil {
				return "", err
			}
			row = append(row, fmt.Sprintf("%v", monotone(ts)))
		}
		tbl.Add(row...)
	}
	return tbl.String() + "\nThe only orderings that can flip are Simple-CPU vs Simple-GPU — the two\nrows the paper itself measures within 12% of each other (10.6 vs 9.3 min).\nEvery headline conclusion (pipelined ≫ simple, GPU pipeline ≫ CPU\npipeline ≫ Fiji) survives every ±25% perturbation.\n", nil
}

// runScale predicts end-to-end times for the grids the paper's
// introduction motivates: the 18×22 five-day experiment (two channels
// per scan, 161 scans) up to "grids with thousands of tiles" and the
// 10,000-tile ceiling.
func runScale(o Options) (string, error) {
	tbl := Table{
		Title:   "Scaling (model, paper host): end-to-end per grid size",
		Headers: []string{"Grid", "Tiles", "Pipelined-CPU 16T", "Pipelined-GPU 2×", "Within 45 min scan period"},
	}
	grids := []struct {
		rows, cols int
		note       string
	}{
		{18, 22, ""}, {42, 59, ""}, {70, 72, ""}, {100, 100, ""},
	}
	for _, gr := range grids {
		g := tile.Grid{Rows: gr.rows, Cols: gr.cols, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
		cpu, err := machine.Predict(machine.RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 16})
		if err != nil {
			return "", err
		}
		gpu2, err := machine.Predict(machine.RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 2})
		if err != nil {
			return "", err
		}
		ok := "yes"
		if gpu2 > 45*60 {
			ok = "NO"
		}
		tbl.Add(fmt.Sprintf("%dx%d", gr.rows, gr.cols), g.NumTiles(), fmtDur(cpu), fmtDur(gpu2), ok)
	}
	return tbl.String() + "\nEven the 10,000-tile ceiling the introduction cites stays well inside a\nscan period on two 2010-era GPUs: the steerability requirement holds at\nevery scale the paper contemplates.\n", nil
}

// seekBuf is an in-memory io.WriteSeeker for the sharded pyramid writer.
type seekBuf struct {
	buf []byte
	pos int64
}

func (s *seekBuf) Write(p []byte) (int, error) {
	if need := s.pos + int64(len(p)); need > int64(len(s.buf)) {
		grown := make([]byte, need)
		copy(grown, s.buf)
		s.buf = grown
	}
	copy(s.buf[s.pos:], p)
	s.pos += int64(len(p))
	return len(p), nil
}

func (s *seekBuf) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case 0:
		s.pos = off
	case 1:
		s.pos += off
	case 2:
		s.pos = int64(len(s.buf)) + off
	}
	return s.pos, nil
}

// runServe is the production tail of the pipeline: compose the plate
// out-of-core under a deliberately tight memory budget, then put the
// resulting pyramid behind the tile server and load-test it with
// concurrent HTTP clients.
func runServe(o Options) (string, error) {
	o = o.withDefaults()
	src, _, err := realDataset(o)
	if err != nil {
		return "", err
	}
	res, err := (&stitch.PipelinedCPU{}).Run(src, stitch.Options{Threads: 4})
	if err != nil {
		return "", err
	}
	pl, err := global.Solve(res, global.Options{RepairOutliers: true})
	if err != nil {
		return "", err
	}
	plateW, plateH := pl.Bounds()

	// Budget a quarter of what the in-memory linear blend would need, so
	// the sharded path genuinely runs banded.
	budget := int64(16*plateW*plateH) / 4
	gov := memgov.New(budget, 0)
	var sb seekBuf
	t0 := time.Now()
	if err := compose.ComposeSharded(pl, src, &sb, compose.ShardedOpts{
		Blend: compose.BlendLinear, TileW: 64, TileH: 64, Gov: gov,
	}); err != nil {
		return "", err
	}
	composeWall := time.Since(t0)
	_, peak, _, _ := gov.Stats()

	pyr, err := tiffio.OpenPyramid(bytes.NewReader(sb.buf))
	if err != nil {
		return "", err
	}
	srv := tileserve.New(pyr, tileserve.Options{CacheBytes: 8 << 20})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	clients := 32
	perClient := 40
	if o.Quick {
		clients, perClient = 8, 20
	}
	tr := &http.Transport{MaxIdleConns: clients * 2, MaxIdleConnsPerHost: clients * 2}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	lv0 := pyr.Level(0)
	coarse := pyr.NumLevels() - 1
	lat := make([][]float64, clients)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(c)))
			for i := 0; i < perClient; i++ {
				// Hot/cold mix: every 4th request is the coarsest
				// overview tile (what every viewer session fetches
				// first); the rest are random level-0 tiles.
				url := fmt.Sprintf("%s/tile/%d/0/0", ts.URL, coarse)
				if i%4 != 0 {
					url = fmt.Sprintf("%s/tile/0/%d/%d", ts.URL, rng.Intn(lv0.Across), rng.Intn(lv0.Down))
				}
				r0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat[c] = append(lat[c], float64(time.Since(r0).Microseconds())/1000)
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return "", firstErr
	}
	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Float64s(all)
	pct := func(p float64) float64 { return all[int(p*float64(len(all)-1))] }
	hits, misses, evictions, cacheBytes := srv.CacheStats()

	tbl := Table{
		Title:   fmt.Sprintf("Tile-server load test (real): %d clients × %d requests over a %dx%d plate", clients, perClient, plateW, plateH),
		Headers: []string{"Metric", "Value"},
	}
	tbl.Add("sharded compose wall", composeWall.Round(time.Millisecond).String())
	tbl.Add("compose peak bytes / budget", fmt.Sprintf("%d / %d", peak, budget))
	tbl.Add("pyramid levels", pyr.NumLevels())
	tbl.Add("pyramid file bytes", len(sb.buf))
	tbl.Add("requests served", len(all))
	tbl.Add("latency p50 (ms)", fmt.Sprintf("%.2f", pct(0.50)))
	tbl.Add("latency p95 (ms)", fmt.Sprintf("%.2f", pct(0.95)))
	tbl.Add("latency p99 (ms)", fmt.Sprintf("%.2f", pct(0.99)))
	tbl.Add("cache hits / misses / evictions", fmt.Sprintf("%d / %d / %d", hits, misses, evictions))
	tbl.Add("cache resident bytes", cacheBytes)
	if err := writeCSV(o, "serve_load", &tbl); err != nil {
		return "", err
	}
	return tbl.String() + "\nThe hot overview tile is served from cache after its first decode; the\ncold level-0 sweep keeps the content-addressed LRU churning. A plate\ncomposed under 1/4 of its in-memory accumulator footprint serves\ninteractive-grade latencies without ever materializing level 0.\n", nil
}

// writeCSV saves a table as a CSV artifact when an output directory is
// configured; failures are returned so experiments surface them.
func writeCSV(o Options, name string, tbl *Table) error {
	if o.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(o.OutDir, name+".csv"), []byte(tbl.CSV()), 0o644)
}

// --- helpers ---

func timeFFT(n int) (time.Duration, string, error) {
	p, err := fft.NewPlan(n, fft.Forward, fft.PlanOpts{})
	if err != nil {
		return 0, "", err
	}
	buf := make([]complex128, n)
	for i := range buf {
		buf[i] = complex(float64(i%11), 0)
	}
	d := bestOf(5, func() error { return p.Execute(buf) })
	return d, p.Strategy(), nil
}

func bestOf(reps int, fn func() error) time.Duration {
	best := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if fn() != nil {
			return 0
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func fmtDur(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(100 * time.Millisecond).String()
}

func intsToStrs(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
