// Package report runs the paper's experiments — every table and figure
// of the evaluation section plus the ablations DESIGN.md calls out — and
// renders their results as text tables, ASCII plots, and PNG images. It
// is the engine behind cmd/experiments and the root benchmark suite.
//
// Each experiment produces two kinds of evidence where applicable:
// model-scale numbers from the calibrated discrete-event machine model
// (the paper's exact workload and host), and real measurements from the
// functional implementations at a reduced scale that runs in seconds.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if n := len([]rune(c)); n > width[i] {
				width[i] = n
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&sb, "%-*s", width[i]+2, cell)
		}
		sb.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total) + "\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Series is a labeled (x, y) sequence for ASCII plotting.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// PlotASCII renders series as a crude line chart, height rows tall.
func PlotASCII(title, xlabel, ylabel string, height int, series ...Series) string {
	if height < 4 {
		height = 12
	}
	const width = 72
	minX, maxX := series[0].X[0], series[0].X[0]
	minY, maxY := series[0].Y[0], series[0].Y[0]
	for _, s := range series {
		for i := range s.X {
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%s (max %.2f)\n", ylabel, maxY)
	for _, row := range grid {
		sb.WriteString("  |" + string(row) + "\n")
	}
	fmt.Fprintf(&sb, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "   %s: %.0f .. %.0f", xlabel, minX, maxX)
	if len(series) > 1 {
		sb.WriteString("   legend:")
		for si, s := range series {
			fmt.Fprintf(&sb, " %c=%s", marks[si%len(marks)], s.Label)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}
