package report

import (
	"hybridstitch/internal/stitch"
)

// Degradation renders a stitch result's casualty report: one row per
// tile lost to a persistent fault and one per pair whose displacement
// could not be computed, each with its full error chain. An empty table
// (headers only) means the run was clean. Rows arrive pre-sorted from
// the stitcher — tiles by grid index, pairs by coordinate then
// direction — so the table is deterministic across runs.
func Degradation(res *stitch.Result) *Table {
	t := &Table{
		Title:   "Degraded tiles and pairs",
		Headers: []string{"kind", "where", "error"},
	}
	for _, dt := range res.DegradedTiles {
		t.Add("tile", dt.Coord, dt.Err)
	}
	for _, dp := range res.DegradedPairs {
		t.Add("pair", dp.Pair, dp.Err)
	}
	return t
}
