package report

import (
	"errors"
	"strings"
	"testing"

	"hybridstitch/internal/stitch"
	"hybridstitch/internal/tile"
)

func TestDegradationTable(t *testing.T) {
	res := &stitch.Result{}
	res.DegradedTiles = append(res.DegradedTiles, stitch.DegradedTile{
		Coord: tile.Coord{Row: 1, Col: 2},
		Err:   errors.New("read tile (1,2): injected fault"),
	})
	res.DegradedPairs = append(res.DegradedPairs,
		stitch.DegradedPair{
			Pair: tile.Pair{Coord: tile.Coord{Row: 1, Col: 2}, Dir: tile.West},
			Err:  errors.New("tile (1,2) degraded"),
		},
		stitch.DegradedPair{
			Pair: tile.Pair{Coord: tile.Coord{Row: 1, Col: 2}, Dir: tile.North},
			Err:  errors.New("tile (1,2) degraded"),
		})
	out := Degradation(res).String()
	for _, want := range []string{"tile", "pair", "injected fault", "degraded"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}

	// A clean run renders headers only.
	clean := Degradation(&stitch.Result{}).String()
	if strings.Contains(clean, "tile (") {
		t.Errorf("clean table has rows:\n%s", clean)
	}
}
