package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.Add("x", 12)
	tbl.Add("longer", 3.5)
	out := tbl.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "longer") || !strings.Contains(out, "3.50") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines", len(lines))
	}
}

func TestPlotASCII(t *testing.T) {
	out := PlotASCII("p", "x", "y", 8,
		Series{Label: "s", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}})
	if !strings.Contains(out, "p\n") || !strings.Contains(out, "*") {
		t.Errorf("plot output:\n%s", out)
	}
	// Flat data must not divide by zero.
	flat := PlotASCII("f", "x", "y", 8, Series{Label: "s", X: []float64{1, 1}, Y: []float64{2, 2}})
	if flat == "" {
		t.Error("flat plot empty")
	}
}

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, err := ByID(e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Title != e.Title {
			t.Errorf("ByID(%q) mismatch", e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should fail")
	}
}

// TestEveryExperimentRunsQuick executes each experiment in quick mode —
// the full regeneration path of every table and figure.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds each")
	}
	dir := t.TempDir()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(Options{Quick: true, OutDir: dir, Seed: 2})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out) < 40 {
				t.Errorf("%s produced suspiciously little output:\n%s", e.ID, out)
			}
		})
	}
	// Figures 13/14 must have produced PNGs.
	for _, f := range []string{"fig13_composite.png", "fig14_highlight.png"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s", f)
		}
	}
}

func TestTable2ContainsAllRows(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the functional implementations")
	}
	out, err := runTable2(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"ImageJ/Fiji", "Simple-CPU", "MT-CPU", "Pipelined-CPU", "Simple-GPU", "Pipelined-GPU"} {
		if !strings.Contains(out, label) {
			t.Errorf("Table II output missing %q", label)
		}
	}
}

func TestFig7ShowsMoreGapsThanFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the GPU implementations")
	}
	// The core diagnosis of the paper: the synchronous implementation's
	// kernel row has gaps; the pipelined one's is dense. Compare
	// utilization statements qualitatively via the generated text.
	out7, err := runFig7(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out9, err := runFig9(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	u7 := extractUtil(t, out7)
	u9 := extractUtil(t, out9)
	if u9 <= u7 {
		t.Errorf("pipelined kernel utilization %.1f%% not above synchronous %.1f%%", u9, u7)
	}
}

func extractUtil(t *testing.T, out string) float64 {
	t.Helper()
	idx := strings.Index(out, "kernel-row utilization: ")
	if idx < 0 {
		t.Fatalf("no utilization line in:\n%s", out)
	}
	var v float64
	if _, err := fmt.Sscanf(out[idx:], "kernel-row utilization: %f%%", &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Headers: []string{"a", "b"}}
	tbl.Add("plain", `with "quotes", and comma`)
	tbl.Add(1, 2.5)
	csv := tbl.CSV()
	want := "a,b\nplain,\"with \"\"quotes\"\", and comma\"\n1,2.50\n"
	if csv != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", csv, want)
	}
}

func TestWriteCSVArtifact(t *testing.T) {
	dir := t.TempDir()
	tbl := Table{Headers: []string{"x"}, Rows: [][]string{{"1"}}}
	if err := writeCSV(Options{OutDir: dir}, "test", &tbl); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "x\n1\n" {
		t.Errorf("artifact = %q", blob)
	}
	// No OutDir: silent no-op.
	if err := writeCSV(Options{}, "test", &tbl); err != nil {
		t.Fatal(err)
	}
}
