package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// LoadConfig controls package loading.
type LoadConfig struct {
	// Dir is the working directory for the go tool (module root or any
	// directory inside the module). Empty means the current directory.
	Dir string
	// Tests includes each package's _test.go files: the in-package test
	// variant replaces the plain package, and external _test packages are
	// loaded as their own packages.
	Tests bool
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool, then parses and type-checks every
// matched (root) package from source. Dependencies are imported from the
// compiler export data `go list -export` places in the build cache, so no
// third-party loader is required and the result matches what the compiler
// itself sees.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,ForTest,ImportMap,Incomplete,Error",
		"-deps"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthetic test-main package
		}
		q := p
		roots = append(roots, &q)
	}

	// With -test, a package that has in-package test files appears twice:
	// plain and as the "p [p.test]" variant whose GoFiles are a superset.
	// Analyze only the variant.
	hasTestVariant := map[string]bool{}
	for _, p := range roots {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" ") {
			hasTestVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range roots {
		if p.ForTest == "" && hasTestVariant[p.ImportPath] {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: package %s uses cgo, which this loader does not support", p.ImportPath)
		}
		pkg, err := typecheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses p's files and type-checks them against dependency
// export data.
func typecheck(fset *token.FileSet, p *listPackage, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	// The import path of a test variant is "p [p.test]"; type-check under
	// the real path.
	path := p.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		PkgPath:   path,
		Dir:       p.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
