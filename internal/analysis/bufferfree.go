package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BufferFree checks that every device-pool and governor allocation —
// (*gpu.Device).Alloc, (*gpu.Device).AllocBlocking,
// (*gpu.Device).AllocSpectrum (the r2c half-spectrum buffers), and
// (*memgov.Governor).Alloc — reaches a Free() or a documented ownership
// transfer. The ownership rules it encodes:
//
//   - Calling v.Free() (including in a defer) discharges the obligation.
//   - Passing v to any function or method (e.g. pool.release(v)),
//     returning it, storing it into a field, map, slice, channel, or
//     composite literal, or assigning it to another variable transfers
//     ownership: the receiver is now responsible.
//   - A `return` between the allocation and its first Free/transfer leaks
//     the buffer on that path, unless the return sits under an `if`
//     guarded by the allocation's own error result (a failed allocation
//     returns no buffer, so the error path owes nothing).
//
// The check is lexical within one function, which is exactly the scope
// the pool discipline lives at: buffers that cross function boundaries
// do so through one of the transfer forms above.
var BufferFree = &Analyzer{
	Name: "bufferfree",
	Doc:  "device-pool and governor allocations must be freed or ownership-transferred on all paths",
	Run:  runBufferFree,
}

// allocCall reports whether the call allocates a tracked resource and
// names it for diagnostics.
func allocCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	c, ok := resolveCallee(info, call)
	if !ok {
		return "", false
	}
	switch {
	case c.is(gpuPkg, "Device", "Alloc"), c.is(gpuPkg, "Device", "AllocBlocking"),
		c.is(gpuPkg, "Device", "AllocSpectrum"):
		return "gpu.Device." + c.name, true
	case c.is(memgovPkg, "Governor", "Alloc"):
		return "memgov.Governor.Alloc", true
	}
	return "", false
}

// allocSite is one tracked allocation inside a function.
type allocSite struct {
	what   string       // e.g. "gpu.Device.Alloc"
	pos    token.Pos    // position of the call
	obj    types.Object // variable holding the buffer
	errObj types.Object // paired error variable, if any
}

func runBufferFree(pass *Pass) error {
	for _, fd := range funcBodies(pass.Files) {
		bufferFreeFunc(pass, fd.Body)
	}
	return nil
}

func bufferFreeFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var sites []*allocSite

	// Pass 1: find allocation sites and immediately-diagnosable misuse
	// (result discarded).
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if what, ok := allocCall(info, call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded: the buffer can never be freed", what)
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, ok := allocCall(info, call)
			if !ok {
				return true
			}
			site := &allocSite{what: what, pos: call.Pos()}
			if len(st.Lhs) > 0 {
				site.obj = identObj(info, st.Lhs[0])
				if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s is assigned to _: the buffer can never be freed", what)
					return true
				}
			}
			if len(st.Lhs) > 1 {
				site.errObj = identObj(info, st.Lhs[1])
			}
			if site.obj == nil {
				// Stored straight into a field/index: ownership transfer
				// by construction.
				return true
			}
			sites = append(sites, site)
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	// Pass 2: for each site, collect discharge events (Free calls and
	// ownership transfers) and return statements, in lexical order.
	for _, site := range sites {
		discharges, returns := collectBufferEvents(pass, body, site)
		if len(discharges) == 0 {
			pass.Reportf(site.pos, "result of %s is never freed or ownership-transferred", site.what)
			continue
		}
		sort.Slice(discharges, func(i, j int) bool { return discharges[i] < discharges[j] })
		firstSafe := discharges[0]
		for _, ret := range returns {
			// A return that itself discharges (return b.Free(), return b)
			// is safe regardless of order.
			selfSafe := false
			for _, d := range discharges {
				if d >= ret.pos && d < ret.end {
					selfSafe = true
					break
				}
			}
			if selfSafe {
				continue
			}
			if ret.pos > site.pos && ret.pos < firstSafe && !ret.errGuarded {
				pass.Reportf(ret.pos, "return leaks the %s result allocated at line %d (no Free or ownership transfer on this path)",
					site.what, pass.Fset.Position(site.pos).Line)
			}
		}
	}
}

// retEvent is a return statement relevant to one allocation site.
type retEvent struct {
	pos        token.Pos
	end        token.Pos
	errGuarded bool // sits under an if whose condition mentions the paired err
}

// collectBufferEvents walks the body recording, for site's variable, the
// positions of Free calls and ownership transfers, plus every return
// statement.
func collectBufferEvents(pass *Pass, body *ast.BlockStmt, site *allocSite) (discharges []token.Pos, returns []retEvent) {
	info := pass.TypesInfo
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			ev := retEvent{pos: v.Pos(), end: v.End()}
			for _, anc := range stack {
				ifs, ok := anc.(*ast.IfStmt)
				if ok && condMentions(info, ifs.Cond, site.errObj) {
					ev.errGuarded = true
					break
				}
			}
			// Returning the buffer itself is a transfer.
			for _, res := range v.Results {
				if usesObj(info, res, site.obj) {
					discharges = append(discharges, v.Pos())
				}
			}
			returns = append(returns, ev)
		case *ast.CallExpr:
			c, resolved := resolveCallee(info, v)
			// v.Free() discharges; gpu.Buffer/memgov.Allocation share the
			// method name and that's all we require.
			if resolved && c.name == "Free" {
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && identObj(info, sel.X) == site.obj {
					discharges = append(discharges, v.Pos())
					return true
				}
			}
			// Passing the buffer to any call transfers ownership.
			for _, arg := range v.Args {
				if usesObj(info, arg, site.obj) {
					discharges = append(discharges, v.Pos())
				}
			}
		case *ast.AssignStmt:
			// Appearing on the RHS of any assignment (x = v, t.buf = v,
			// m[i] = v, u := v) transfers ownership — except to the blank
			// identifier, which keeps the obligation here.
			for i, rhs := range v.Rhs {
				if _, isCall := rhs.(*ast.CallExpr); isCall {
					continue // calls are handled above (args scanned)
				}
				if !usesObj(info, rhs, site.obj) {
					continue
				}
				if len(v.Lhs) == len(v.Rhs) {
					if id, ok := ast.Unparen(v.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				discharges = append(discharges, v.Pos())
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if usesObj(info, el, site.obj) {
					discharges = append(discharges, v.Pos())
				}
			}
		case *ast.SendStmt:
			if usesObj(info, v.Value, site.obj) {
				discharges = append(discharges, v.Pos())
			}
		case *ast.UnaryExpr:
			// Taking the buffer's address aliases it; treat as transfer.
			if v.Op == token.AND && usesObj(info, v.X, site.obj) {
				discharges = append(discharges, v.Pos())
			}
		}
		return true
	})
	return discharges, returns
}

// usesObj reports whether the expression mentions obj as a bare
// identifier (not through a selector base, which would be a read of the
// buffer's fields rather than of the buffer value).
func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[v] == obj
	case *ast.KeyValueExpr:
		return usesObj(info, v.Value, obj)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if usesObj(info, el, obj) {
				return true
			}
		}
	}
	return false
}
