package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// A Baseline is the committed inventory of accepted findings
// (lint-baseline.json at the repo root). The lint gate fails only on
// findings NOT in the baseline, so a new analyzer can land with its
// existing debt recorded and paid down over time, while regressions
// fail immediately. Every entry carries a mandatory reason — a baseline
// without rationale is just a mute button.
//
// Matching is deliberately position-insensitive: entries key on
// (analyzer, file, normalized message) with a count, not on line
// numbers, so unrelated edits that shift a file do not churn the
// baseline. Messages are normalized by rewriting "line <n>" references
// to "line N" for the same reason.
type Baseline struct {
	Comment string          `json:"comment,omitempty"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry accepts Count findings with this analyzer, file, and
// normalized message.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // repo-relative, slash-separated
	Message  string `json:"message"`
	Count    int    `json:"count"`
	Reason   string `json:"reason,omitempty"`
}

var lineRefRE = regexp.MustCompile(`\bline \d+\b`)

// normalizeMessage rewrites intra-message line references so baseline
// entries survive unrelated edits above the finding.
func normalizeMessage(msg string) string {
	return lineRefRE.ReplaceAllString(msg, "line N")
}

// baselineKey is the identity a diagnostic is matched under.
type baselineKey struct {
	analyzer, file, message string
}

// relFile renders a diagnostic's filename repo-relative for baseline
// keys and JSON output.
func relFile(root, filename string) string {
	if root != "" {
		if r, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(r) {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(filename)
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, not an error, so the flag can point at a path that does not
// exist yet. Entries with a zero count or an empty reason are rejected:
// the reason is the whole point of baselining over suppressing.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.Count <= 0 {
			return nil, fmt.Errorf("baseline %s: entry %d (%s in %s) has count %d, want >= 1", path, i, e.Analyzer, e.File, e.Count)
		}
		if e.Reason == "" {
			return nil, fmt.Errorf("baseline %s: entry %d (%s in %s) has no reason; baselined findings must say why they are accepted", path, i, e.Analyzer, e.File)
		}
	}
	return &b, nil
}

// Filter splits diags into fresh findings (not covered by the baseline;
// these fail the gate) and reports stale entries (baseline debt that no
// longer exists and should be deleted). Each entry's count is consumed
// by matching diagnostics in position order.
func (b *Baseline) Filter(diags []Diagnostic, root string) (fresh []Diagnostic, stale []BaselineEntry) {
	remaining := map[baselineKey]int{}
	for _, e := range b.Entries {
		remaining[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, relFile(root, d.Pos.Filename), normalizeMessage(d.Message)}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if remaining[k] > 0 {
			left := e.Count
			if remaining[k] < left {
				left = remaining[k]
			}
			remaining[k] -= left
			st := e
			st.Count = left
			stale = append(stale, st)
		}
	}
	return fresh, stale
}

// NewBaseline builds a baseline accepting exactly the given diagnostics,
// collapsing duplicates into counts. The caller supplies the reason
// applied to the generated entries (stitchlint -update-baseline uses a
// placeholder the author is expected to rewrite per entry).
func NewBaseline(diags []Diagnostic, root, reason string) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{d.Analyzer, relFile(root, d.Pos.Filename), normalizeMessage(d.Message)}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
	b := &Baseline{Comment: "Accepted stitchlint findings. Every entry needs a reason; delete entries as the debt is paid."}
	for _, k := range keys {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message,
			Count: counts[k], Reason: reason,
		})
	}
	return b
}

// WriteBaseline writes b as deterministic, diff-friendly JSON.
func WriteBaseline(path string, b *Baseline) error {
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// JSONReport is the machine-readable (SARIF-lite) output of a lint run:
// one result per surviving diagnostic, with repo-relative paths.
type JSONReport struct {
	Version  string       `json:"version"`
	Tool     string       `json:"tool"`
	Findings []JSONResult `json:"findings"`
}

// JSONResult is one finding in a JSONReport.
type JSONResult struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// NewJSONReport renders diagnostics for -json output.
func NewJSONReport(diags []Diagnostic, root string) *JSONReport {
	rep := &JSONReport{Version: "1", Tool: "stitchlint", Findings: []JSONResult{}}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, JSONResult{
			Analyzer: d.Analyzer,
			File:     relFile(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return rep
}
