package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// callee describes the resolved target of a call expression.
type callee struct {
	pkgPath string // defining package ("" for builtins)
	recv    string // receiver named type ("" for plain functions)
	name    string // function or method name
}

// resolveCallee identifies what a CallExpr invokes, looking through
// pointer receivers. ok is false for builtins, conversions, and calls of
// function-typed values.
func resolveCallee(info *types.Info, call *ast.CallExpr) (callee, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	default:
		return callee{}, false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return callee{}, false
	}
	c := callee{name: fn.Name()}
	if fn.Pkg() != nil {
		c.pkgPath = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return callee{}, false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			c.recv = named.Obj().Name()
		}
	}
	return c, true
}

// is reports whether the callee matches pkgPath, receiver type, and name.
// An empty recv matches plain functions only.
func (c callee) is(pkgPath, recv, name string) bool {
	return c.pkgPath == pkgPath && c.recv == recv && c.name == name
}

// walkStack traverses n, calling f with each node and the stack of its
// ancestors (outermost first, not including the node itself). If f
// returns false the node's children are skipped.
func walkStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			// ast.Inspect only delivers the balancing nil pop when we
			// return true, so don't push a frame for skipped subtrees.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// exprString renders an expression compactly (for diagnostics and for
// matching mutex expressions lexically).
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// baseIdentObj returns the variable at the root of an expression like
// x, x[i], x[i:j], or x.f — the storage a read of the expression touches.
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj, ok := info.Uses[v].(*types.Var); ok {
				return obj
			}
			if obj, ok := info.Defs[v].(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// identObj resolves an identifier expression to its variable object, or
// nil if e is not a plain identifier.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := info.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}

// condMentions reports whether the expression mentions the object (used
// to recognize `if err != nil` guards for an allocation's paired error).
func condMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	if e == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// usesObj reports whether the expression subtree mentions obj.
func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	return condMentions(info, e, obj)
}

// funcBodies yields every function body in the files: declarations and
// top-level function literals each count once. Nested literals are
// visited as part of their enclosing body (lexical containment is what
// the analyzers reason about), except where an analyzer opts out.
func funcBodies(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

const (
	gpuPkg    = "hybridstitch/internal/gpu"
	memgovPkg = "hybridstitch/internal/memgov"
	faultPkg  = "hybridstitch/internal/fault"
	obsPkg    = "hybridstitch/internal/obs"
	pciamPkg  = "hybridstitch/internal/pciam"
	syncPkg   = "sync"
	timePkg   = "time"
)
