package analysis_test

import (
	"strings"
	"testing"

	"hybridstitch/internal/analysis"
	"hybridstitch/internal/analysis/analysistest"
)

// Each fixture package exercises at least one true positive and one
// clean case per analyzer; the want comments in the fixtures are the
// assertions.

func TestPairGuardFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/pairguard", analysis.PairGuard)
}

func TestLockOrderFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/lockorder", analysis.LockOrder)
}

func TestObsNamesFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/obsnames", analysis.ObsNames)
}

func TestStreamSyncFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/streamsync", analysis.StreamSync)
}

func TestFaultSiteFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/faultsite", analysis.FaultSite)
}

func TestBlockingLockFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/blockinglock", analysis.BlockingLock)
}

func TestHotPathFixture(t *testing.T) {
	analysistest.Run(t, "./testdata/src/hotpath", analysis.HotPath)
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 7 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 7, nil", len(all), err)
	}
	two, err := analysis.ByName("pairguard, streamsync")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := analysis.ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("ByName(nope) err = %v, want unknown-analyzer error", err)
	}
}

// TestSuppressionRequiresReason: a //lint:allow without a reason must
// not suppress, and must itself be reported.
func TestSuppressionRequiresReason(t *testing.T) {
	pkgs, err := analysis.Load(analysis.LoadConfig{}, "./testdata/src/badallow")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{analysis.PairGuard})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var sawLeak, sawMalformed bool
	for _, d := range diags {
		switch d.Analyzer {
		case "pairguard":
			sawLeak = true
		case "suppression":
			sawMalformed = true
		}
	}
	if !sawLeak {
		t.Errorf("reason-less //lint:allow suppressed the diagnostic; diagnostics: %v", diags)
	}
	if !sawMalformed {
		t.Errorf("missing malformed-suppression diagnostic; diagnostics: %v", diags)
	}
}
