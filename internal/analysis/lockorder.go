package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the whole-program lock-ordering analysis. It harvests
// every sync.Mutex/RWMutex Lock/RLock site across the loaded packages,
// keys each mutex by the named type that owns it (e.g.
// "memgov.Governor.mu", "pipeline.Queue.mu" — the identity that
// survives across instances and packages), and builds the program's
// lock-ordering graph: an edge A→B means some path acquires B while
// holding A, either directly or through a statically-resolved call
// chain. It reports:
//
//   - cycles in the graph (A→B somewhere, B→A somewhere else: two
//     goroutines taking the two orders can deadlock);
//   - lock-held calls into functions that (transitively) lock the same
//     mutex type — self-deadlock for Go's non-reentrant mutexes, and for
//     RLock a deadlock the moment a writer is queued between the two
//     read acquisitions.
//
// Held-ness is computed flow-sensitively on the CFG (may-held: a lock
// held on any path into a node counts, the conservative direction for
// deadlock detection). A deferred Unlock keeps the mutex held to the end
// of the function, exactly like the runtime. Function literals are
// analyzed as their own scopes — a callback does not necessarily run
// under the lock — but the locks they take still contribute to the
// enclosing function's transitive summary, because the common case
// (the literal runs synchronously or on a goroutine the holder waits
// on) is the dangerous one.
//
// Mutexes held behind locally-declared variables are ignored: their
// ordering cannot be observed outside one function and keying them
// would only produce noise.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "the cross-package lock-ordering graph must be acyclic, and no lock-held call may re-lock the same mutex type",
	RunProgram: runLockOrder,
}

// lockKey names a mutex by its owning named type (or package-level
// variable) plus field path: "memgov.Governor.mu", "obs.Recorder.storeMu".
func lockKeyOf(info *types.Info, recv ast.Expr) (string, bool) {
	switch v := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		// pkg.Var style: package-level mutex accessed through an import.
		if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Name() + "." + v.Sel.Name, true
			}
		}
		t := info.TypeOf(v.X)
		if t == nil {
			return "", false
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		obj := named.Origin().Obj() // collapse generic instantiations
		if obj.Pkg() == nil {
			return "", false
		}
		return obj.Pkg().Name() + "." + obj.Name() + "." + v.Sel.Name, true
	case *ast.Ident:
		// A bare identifier: package-level mutex var, embedded mutex on a
		// method receiver, or a local (ignored).
		obj := info.Uses[v]
		if obj == nil {
			return "", false
		}
		if vr, ok := obj.(*types.Var); ok && vr.Parent() == vr.Pkg().Scope() {
			return vr.Pkg().Name() + "." + vr.Name(), true
		}
		return "", false
	}
	return "", false
}

// lockOp classifies call as a (R)Lock/(R)Unlock on a keyed mutex.
func lockOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	c, okc := resolveCallee(info, call)
	if !okc || c.pkgPath != syncPkg || (c.recv != "Mutex" && c.recv != "RWMutex") {
		return "", "", false
	}
	switch c.name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !oks {
		return "", "", false
	}
	k, okk := lockKeyOf(info, sel.X)
	if !okk {
		return "", "", false
	}
	return k, c.name, true
}

// lockEdge is one observed ordering: to was acquired (or may be acquired
// through callee) while from was held.
type lockEdge struct {
	from, to string
	pos      token.Position
	via      string // non-empty for call-mediated edges: the callee name
}

// lockScope is one analyzed function body (declaration or literal).
type lockScope struct {
	pkg  *Package
	fn   *types.Func // nil for function literals
	name string      // diagnostic name
	body *ast.BlockStmt
}

func runLockOrder(prog *Program) error {
	// Collect every function body in the program, declarations and
	// literals, with their packages.
	var scopes []lockScope
	declOf := map[*types.Func]*lockScope{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				scopes = append(scopes, lockScope{pkg: pkg, fn: fn, name: scopeName(pkg, fn, fd), body: fd.Body})
				if fn != nil {
					declOf[fn] = &scopes[len(scopes)-1]
				}
			}
		}
	}

	// Direct lock sets per function (including nested literals: they may
	// run on the caller's goroutine), for the transitive summaries.
	direct := map[*types.Func]map[string]bool{}
	calls := map[*types.Func]map[*types.Func]bool{}
	for _, sc := range scopes {
		if sc.fn == nil {
			continue
		}
		dl, cl := map[string]bool{}, map[*types.Func]bool{}
		ast.Inspect(sc.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op, ok := lockOp(sc.pkg.TypesInfo, call); ok && (op == "Lock" || op == "RLock") {
				dl[key] = true
				return true
			}
			if callee := staticCallee(sc.pkg.TypesInfo, call); callee != nil {
				if _, known := declOf[callee]; known {
					cl[callee] = true
				}
			}
			return true
		})
		direct[sc.fn], calls[sc.fn] = dl, cl
	}

	// Transitive may-lock summaries: fixpoint over the static call graph.
	summary := map[*types.Func]map[string]bool{}
	for fn, dl := range direct {
		s := map[string]bool{}
		for k := range dl {
			s[k] = true
		}
		summary[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, cl := range calls {
			s := summary[fn]
			for callee := range cl {
				for k := range summary[callee] {
					if !s[k] {
						s[k] = true
						changed = true
					}
				}
			}
		}
	}

	// Flow-sensitive held-set walk per scope, harvesting ordering edges
	// and self-deadlocks. Keys are interned into bit indices.
	keyIDs := map[string]int{}
	keyNames := []string{}
	intern := func(k string) int {
		if id, ok := keyIDs[k]; ok {
			return id
		}
		keyIDs[k] = len(keyNames)
		keyNames = append(keyNames, k)
		return len(keyNames) - 1
	}
	for _, sc := range scopes {
		ast.Inspect(sc.body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op, ok := lockOp(sc.pkg.TypesInfo, call); ok && (op == "Lock" || op == "RLock") {
					intern(key)
				}
			}
			return true
		})
	}
	if len(keyNames) == 0 {
		return nil
	}

	seenEdge := map[[2]string]bool{}
	var edges []lockEdge
	for _, sc := range scopes {
		ls := &lockWalker{
			prog: prog, sc: sc, keyIDs: keyIDs, keyNames: keyNames,
			declOf: declOf, summary: summary,
			seenEdge: seenEdge,
		}
		ls.walk(&edges)
		// Function literals get their own scope walk so a callback's locks
		// are not attributed to the enclosing critical section.
		ast.Inspect(sc.body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				lw := &lockWalker{
					prog: prog, sc: lockScope{pkg: sc.pkg, name: sc.name + " (func literal)", body: fl.Body},
					keyIDs: keyIDs, keyNames: keyNames, declOf: declOf, summary: summary,
					seenEdge: seenEdge,
				}
				lw.walk(&edges)
				return false
			}
			return true
		})
	}

	reportLockFindings(prog, edges)
	return nil
}

// scopeName renders a diagnostic-friendly function name.
func scopeName(pkg *Package, fn *types.Func, fd *ast.FuncDecl) string {
	if fn == nil {
		return pkg.Types.Name() + "." + fd.Name.Name
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return pkg.Types.Name() + "." + name
}

// staticCallee resolves a call to a concrete function or method with a
// body we might know; interface dispatch returns nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	c, ok := resolveCalleeObj(info, call)
	if !ok {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Interface method call: the static target is unknowable here.
		if s, ok := info.Selections[sel]; ok {
			if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
		}
	}
	return c
}

// resolveCalleeObj returns the *types.Func a call invokes.
func resolveCalleeObj(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	default:
		return nil, false
	}
	fn, ok := obj.(*types.Func)
	return fn, ok
}

// lockWalker runs the may-held dataflow over one scope and harvests
// edges.
type lockWalker struct {
	prog     *Program
	sc       lockScope
	keyIDs   map[string]int
	keyNames []string
	declOf   map[*types.Func]*lockScope
	summary  map[*types.Func]map[string]bool
	seenEdge map[[2]string]bool
}

func (lw *lockWalker) walk(edges *[]lockEdge) {
	cfg := buildCFG(lw.sc.body)
	df := &dataflow{
		cfg:      cfg,
		nbits:    len(lw.keyNames),
		transfer: lw.transfer,
	}
	in := df.run()
	for _, blk := range cfg.blocks {
		fact := in[blk.index].clone()
		for _, n := range blk.nodes {
			lw.observe(n, fact, edges)
			lw.transfer(n, fact)
		}
	}
}

// transfer updates the held set across one node. Deferred unlocks do not
// release (the mutex stays held to function exit); function literal
// bodies are opaque at this level.
func (lw *lockWalker) transfer(n ast.Node, fact bitset) {
	deferred := false
	if ds, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		n = ds.Call
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, ok := lockOp(lw.sc.pkg.TypesInfo, call)
		if !ok {
			return true
		}
		id := lw.keyIDs[key]
		switch op {
		case "Lock", "RLock":
			if !deferred {
				fact.set(id)
			}
		case "Unlock", "RUnlock":
			if !deferred {
				fact.clear(id)
			}
		}
		return true
	})
}

// observe harvests ordering edges and self-deadlocks at n given the
// locks held on entry to n.
func (lw *lockWalker) observe(n ast.Node, fact bitset, edges *[]lockEdge) {
	if fact.empty() {
		return
	}
	info := lw.sc.pkg.TypesInfo
	if ds, ok := n.(*ast.DeferStmt); ok {
		n = ds.Call // a deferred call still runs; its locks still order
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op, ok := lockOp(info, call); ok && (op == "Lock" || op == "RLock") {
			id := lw.keyIDs[key]
			for h := 0; h < len(lw.keyNames); h++ {
				if !fact.has(h) {
					continue
				}
				if h == id {
					lw.prog.Reportf(call.Pos(),
						"lockorder", "%s on %s while %s is already held in %s: recursive locking deadlocks (RLock included, once a writer queues)",
						op, key, key, lw.sc.name)
					continue
				}
				lw.addEdge(edges, lockEdge{from: lw.keyNames[h], to: key,
					pos: lw.prog.Fset.Position(call.Pos())})
			}
			return true
		}
		callee := staticCallee(info, call)
		if callee == nil {
			return true
		}
		sum := lw.summary[callee]
		if len(sum) == 0 {
			return true
		}
		calleeName := callee.Name()
		if dl, ok := lw.declOf[callee]; ok {
			calleeName = dl.name
		}
		for h := 0; h < len(lw.keyNames); h++ {
			if !fact.has(h) {
				continue
			}
			held := lw.keyNames[h]
			for k := range sum {
				if k == held {
					lw.prog.Reportf(call.Pos(),
						"lockorder", "call to %s while holding %s: the callee (transitively) locks %s — self-deadlock",
						calleeName, held, held)
					continue
				}
				lw.addEdge(edges, lockEdge{from: held, to: k,
					pos: lw.prog.Fset.Position(call.Pos()), via: calleeName})
			}
		}
		return true
	})
}

func (lw *lockWalker) addEdge(edges *[]lockEdge, e lockEdge) {
	k := [2]string{e.from, e.to}
	if lw.seenEdge[k] {
		return
	}
	lw.seenEdge[k] = true
	*edges = append(*edges, e)
}

// reportLockFindings finds cycles in the ordering graph and reports each
// once, with every participating edge's witness position.
func reportLockFindings(prog *Program, edges []lockEdge) {
	adj := map[string][]lockEdge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	// Tarjan SCC over the keyed nodes.
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	for _, e := range edges {
		for _, n := range []string{e.from, e.to} {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.to
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	for _, scc := range sccs {
		sort.Strings(scc)
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		var witnesses []string
		var pos token.Position
		for _, e := range edges {
			if in[e.from] && in[e.to] {
				w := fmt.Sprintf("%s→%s at %s", e.from, e.to, trimPos(e.pos))
				if e.via != "" {
					w += " (via " + e.via + ")"
				}
				witnesses = append(witnesses, w)
				if pos.Line == 0 || e.pos.Filename < pos.Filename ||
					(e.pos.Filename == pos.Filename && e.pos.Line < pos.Line) {
					pos = e.pos
				}
			}
		}
		sort.Strings(witnesses)
		prog.ReportfAt(pos, "lockorder",
			"lock-order cycle among {%s}: %s — two goroutines taking these orders deadlock",
			strings.Join(scc, ", "), strings.Join(witnesses, "; "))
	}
}

// trimPos renders a position with a basename-only file for compact cycle
// witness lists.
func trimPos(p token.Position) string {
	f := p.Filename
	if i := strings.LastIndexByte(f, '/'); i >= 0 {
		f = f[i+1:]
	}
	return fmt.Sprintf("%s:%d", f, p.Line)
}
