package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PairGuard is the flow-sensitive acquire/release pairing analysis. It
// subsumes the old syntactic bufferfree check: where bufferfree compared
// lexical positions (a release anywhere before a return made the return
// safe, even when the two sit on mutually exclusive branches), PairGuard
// walks the control-flow graph and reports every *path* — early return,
// explicit panic, error branch, fall-through — on which a release is not
// guaranteed.
//
// The acquire/release pairs are declared in one table (pairTable):
//
//   - gpu.Device.Alloc / AllocBlocking / AllocSpectrum → Buffer.Free
//   - memgov.Governor.Alloc                            → Allocation.Free
//   - obs.Recorder.StartSpan, obs.Span.Child/ChildOn   → Span.End
//   - pciam.GetAligner / GetPaddedAligner /
//     GetRealAligner                                   → Close (or Put*Aligner)
//
// Releases are defer-aware: a `defer v.Free()` (or a defer whose closure
// releases v) discharges every path that passes the defer statement,
// including panic unwinds. Ownership transfers discharge exactly as they
// did under bufferfree: passing the value to any call (which is how the
// Put*Aligner pool returns work), returning it, storing it into a
// field/map/slice/channel/composite literal, assigning it to another
// variable, or taking its address.
//
// Error branches are path-sensitive: on the `err != nil` arm of the
// acquisition's own error result nothing was acquired and nothing is
// owed — but only while that err binding is live. Once a later statement
// reassigns err, an `if err != nil { return }` guard no longer excuses
// earlier acquisitions, which is precisely the leak-on-error-path shape
// the syntactic check could not see.
var PairGuard = &Analyzer{
	Name: "pairguard",
	Doc:  "acquired resources (device buffers, governor allocations, spans, pooled aligners) must be released on every path",
	Run:  runPairGuard,
}

// pairAcquire reports whether the call acquires a tracked resource,
// naming it and its release method(s) for diagnostics.
func pairAcquire(info *types.Info, call *ast.CallExpr) (what, release string, ok bool) {
	c, okc := resolveCallee(info, call)
	if !okc {
		return "", "", false
	}
	switch {
	case c.is(gpuPkg, "Device", "Alloc"), c.is(gpuPkg, "Device", "AllocBlocking"),
		c.is(gpuPkg, "Device", "AllocSpectrum"):
		return "gpu.Device." + c.name, "Free", true
	case c.is(memgovPkg, "Governor", "Alloc"):
		return "memgov.Governor.Alloc", "Free", true
	case c.is(obsPkg, "Recorder", "StartSpan"), c.is(obsPkg, "Span", "Child"),
		c.is(obsPkg, "Span", "ChildOn"):
		return "obs." + c.recv + "." + c.name, "End", true
	case c.is(pciamPkg, "", "GetAligner"), c.is(pciamPkg, "", "GetPaddedAligner"),
		c.is(pciamPkg, "", "GetRealAligner"):
		return "pciam." + c.name, "Close", true
	}
	return "", "", false
}

// pairSite is one tracked acquisition inside a function.
type pairSite struct {
	what    string       // e.g. "gpu.Device.Alloc"
	release string       // release method name, e.g. "Free"
	pos     token.Pos
	stmt    ast.Node     // the acquiring assignment
	obj     types.Object // variable holding the resource
	errObj  types.Object // paired error result, if any
}

func runPairGuard(pass *Pass) error {
	for _, fd := range funcBodies(pass.Files) {
		pairGuardFunc(pass, fd.Body)
	}
	return nil
}

// pairGuardFunc analyzes one function body.
func pairGuardFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var sites []*pairSite

	// Find acquisition sites and immediately-diagnosable misuse (result
	// discarded or assigned to _): same contract as the old bufferfree.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if what, release, ok := pairAcquire(info, call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded: %s can never be called", what, release)
				}
			}
		case *ast.DeferStmt:
			// `defer parent.Child(...)` acquires at function exit and drops
			// the handle; report like a discard.
			if what, release, ok := pairAcquire(info, st.Call); ok {
				pass.Reportf(st.Call.Pos(), "result of deferred %s is discarded: %s can never be called", what, release)
			}
			return false
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, release, ok := pairAcquire(info, call)
			if !ok {
				return true
			}
			site := &pairSite{what: what, release: release, pos: call.Pos(), stmt: st}
			if len(st.Lhs) > 0 {
				site.obj = identObj(info, st.Lhs[0])
				if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s is assigned to _: %s can never be called", what, release)
					return true
				}
			}
			if len(st.Lhs) > 1 {
				site.errObj = identObj(info, st.Lhs[1])
			}
			if site.obj == nil {
				// Stored straight into a field/index: ownership transfer by
				// construction.
				return true
			}
			sites = append(sites, site)
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	// Sites with no discharge anywhere get the classic single report at
	// the acquisition; path analysis covers the rest.
	var flowSites []*pairSite
	for _, site := range sites {
		if !anyDischarge(info, body, site) {
			pass.Reportf(site.pos, "result of %s is never freed or ownership-transferred", site.what)
			continue
		}
		flowSites = append(flowSites, site)
	}
	if len(flowSites) == 0 {
		return
	}

	cfg := buildCFG(body)
	st := &pairFlow{info: info, sites: flowSites}
	df := &dataflow{
		cfg:      cfg,
		nbits:    2 * len(flowSites),
		transfer: st.transfer,
		refine:   st.refine,
	}
	in := df.run()

	// Re-walk each terminating block with its stabilized in-fact,
	// reporting obligations still live when the function exits.
	for _, blk := range cfg.blocks {
		fact := in[blk.index].clone()
		for _, n := range blk.nodes {
			st.observeNode(pass, n, fact)
			st.transfer(n, fact)
		}
		if blk.term == termNone || blk.term == termGoto {
			continue
		}
		for i, site := range flowSites {
			if !fact.has(2 * i) {
				continue
			}
			line := pass.Fset.Position(site.pos).Line
			switch blk.term {
			case termReturn:
				pass.Reportf(blk.termNode.Pos(),
					"return leaks the %s result acquired at line %d: %s (or an ownership transfer) is not reached on this path",
					site.what, line, site.release)
			case termPanic:
				pass.Reportf(blk.termNode.Pos(),
					"panic unwinds past the %s result acquired at line %d: only a defer can release it on this path",
					site.what, line)
			case termEnd:
				pass.Reportf(site.pos,
					"result of %s is not released on the path falling off the end of the function (%s never called)",
					site.what, site.release)
			}
		}
	}
}

// pairFlow carries the per-function dataflow state: bit 2i means
// obligation i is live (acquired, not yet discharged on this path), bit
// 2i+1 means obligation i's error binding is still the one produced by
// the acquisition (so err-branch refinement may void it).
type pairFlow struct {
	info  *types.Info
	sites []*pairSite
}

// transfer interprets one CFG node: discharges first, then loss of the
// binding, then the gen of this node's own acquisition.
func (pf *pairFlow) transfer(n ast.Node, fact bitset) {
	for i, site := range pf.sites {
		if fact.has(2*i) && dischargesSite(pf.info, n, site) {
			fact.clear(2 * i)
		}
		if fact.has(2*i+1) && n != site.stmt && assignsObj(pf.info, n, site.errObj) {
			fact.clear(2*i + 1)
		}
		if n != site.stmt && fact.has(2*i) && assignsObj(pf.info, n, site.obj) {
			// Rebinding the variable forgets the old value; the observer
			// reported it, the fact stops tracking it.
			fact.clear(2 * i)
		}
		if n == site.stmt {
			fact.set(2 * i)
			if site.errObj != nil {
				fact.set(2*i + 1)
			} else {
				fact.clear(2*i + 1)
			}
		}
	}
}

// observeNode reports mid-path losses: rebinding a variable that still
// owes a release.
func (pf *pairFlow) observeNode(pass *Pass, n ast.Node, fact bitset) {
	for i, site := range pf.sites {
		if n == site.stmt || !fact.has(2*i) {
			continue
		}
		if dischargesSite(pf.info, n, site) {
			continue
		}
		if assignsObj(pf.info, n, site.obj) {
			pass.Reportf(n.Pos(), "reassignment loses the %s result acquired at line %d before %s is called",
				site.what, pass.Fset.Position(site.pos).Line, site.release)
		}
	}
}

// refine adjusts a fact crossing a conditional edge: on the arm where
// the acquisition's own (still-live) error result is non-nil, or where
// the value itself is nil, nothing was acquired and nothing is owed.
func (pf *pairFlow) refine(e cfgEdge, fact bitset) bitset {
	pf.refineCond(e.cond, e.branch, fact)
	return fact
}

// refineCond applies what is known once cond has evaluated to branch,
// descending through short-circuit operators: on the true edge of
// `a && b` both conjuncts held; on the false edge of `a || b` both
// disjuncts failed. (The false edge of && and the true edge of || pin
// down neither operand, so they refine nothing.)
func (pf *pairFlow) refineCond(cond ast.Expr, branch bool, fact bitset) {
	switch v := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			pf.refineCond(v.X, !branch, fact)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			if branch {
				pf.refineCond(v.X, true, fact)
				pf.refineCond(v.Y, true, fact)
			}
		case token.LOR:
			if !branch {
				pf.refineCond(v.X, false, fact)
				pf.refineCond(v.Y, false, fact)
			}
		case token.EQL, token.NEQ:
			var x ast.Expr
			switch {
			case isNilIdent(v.Y):
				x = v.X
			case isNilIdent(v.X):
				x = v.Y
			default:
				return
			}
			obj := identObj(pf.info, x)
			if obj == nil {
				return
			}
			// isNil: on this edge, x is known to be nil.
			isNil := (v.Op == token.EQL) == branch
			for i, site := range pf.sites {
				if site.errObj == obj && fact.has(2*i+1) && !isNil {
					// err != nil: the acquisition failed; nothing is owed.
					fact.clear(2 * i)
				}
				if site.obj == obj && isNil {
					// The handle itself is nil on this arm (nil-safe obs spans).
					fact.clear(2 * i)
				}
			}
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && id.Obj == nil
}

// assignsObj reports whether node n rebinds obj: obj appears as a plain
// LHS identifier of an assignment or is redeclared by a := with obj on
// the left. Range statements that reuse the variable count too.
func assignsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch v := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if identObj(info, lhs) == obj {
					found = true
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{v.Key, v.Value} {
				if lhs != nil && identObj(info, lhs) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// dischargesSite reports whether node n releases or transfers site's
// value: the release method called on it, the value passed to any call,
// returned, stored into a field/map/slice/channel/composite, assigned to
// another variable, or its address taken.
func dischargesSite(info *types.Info, n ast.Node, site *pairSite) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch v := m.(type) {
		case *ast.CallExpr:
			if c, ok := resolveCallee(info, v); ok && c.name == site.release {
				if sel, oks := ast.Unparen(v.Fun).(*ast.SelectorExpr); oks && identObj(info, sel.X) == site.obj {
					found = true
					return false
				}
			}
			for _, arg := range v.Args {
				if usesObj(info, arg, site.obj) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if transfersObj(info, res, site.obj) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				if _, isCall := rhs.(*ast.CallExpr); isCall {
					continue // args scanned by the CallExpr case
				}
				if !transfersObj(info, rhs, site.obj) {
					continue
				}
				if len(v.Lhs) == len(v.Rhs) {
					if id, ok := ast.Unparen(v.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue // x, _ = v keeps the obligation here
					}
				}
				found = true
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if transfersObj(info, el, site.obj) {
					found = true
				}
			}
		case *ast.SendStmt:
			if transfersObj(info, v.Value, site.obj) {
				found = true
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND && transfersObj(info, v.X, site.obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// transfersObj reports whether e mentions obj in a position that hands
// the value to someone else. Appearing only as the receiver of a method
// call does not count: `return b.Words()` returns a word count, not the
// buffer, so the obligation stays with the caller.
func transfersObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	if e == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr); oks && identObj(info, sel.X) == obj {
				// Method call on obj itself: only its arguments can
				// transfer the value.
				for _, arg := range call.Args {
					if transfersObj(info, arg, obj) {
						found = true
					}
				}
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// anyDischarge reports whether any node in the body could discharge the
// site — the cheap lexical pre-check that picks the classic
// "never freed" diagnostic over per-path reports.
func anyDischarge(info *types.Info, body *ast.BlockStmt, site *pairSite) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == site.stmt {
			// The acquisition's own call arguments don't transfer its
			// not-yet-existing result, but its RHS is scanned below via
			// the shared walker; skip the whole statement.
			return false
		}
		if _, ok := n.(ast.Stmt); ok || isExprNode(n) {
			if dischargesSite(info, n, site) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isExprNode reports whether n is an expression node (used to bound the
// anyDischarge pre-check to meaningful roots).
func isExprNode(n ast.Node) bool {
	_, ok := n.(ast.Expr)
	return ok
}
