// Package streamsync is the stitchlint fixture for the streamsync
// analyzer: host code must not touch a MemcpyD2H destination before the
// copy's event resolves.
package streamsync

import (
	"fmt"

	"hybridstitch/internal/gpu"
)

// raceReadBeforeWait reads the staging slice while the DMA may still be
// in flight: the event is bound but waited on too late.
func raceReadBeforeWait(s *gpu.Stream, buf *gpu.Buffer) complex128 {
	dst := make([]complex128, 64)
	ev := s.MemcpyD2H(dst, buf)
	first := dst[0] // want "host access of dst before Wait"
	_ = ev.Wait()
	return first
}

// raceDiscardedEvent throws the completion event away and then reads.
func raceDiscardedEvent(s *gpu.Stream, buf *gpu.Buffer) {
	dst := make([]complex128, 64)
	_ = s.MemcpyD2H(dst, buf)
	fmt.Println(dst[0]) // want "event was discarded"
}

// raceWriteBeforeWait mutates the destination mid-flight — the same
// race from the other side.
func raceWriteBeforeWait(s *gpu.Stream, buf *gpu.Buffer) {
	dst := make([]complex128, 64)
	ev := s.MemcpyD2H(dst, buf)
	dst[3] = 1 // want "host access of dst before Wait"
	_ = ev.Wait()
}

// okChainedWait is the synchronous idiom: wait inline on the returned
// event.
func okChainedWait(s *gpu.Stream, buf *gpu.Buffer) (complex128, error) {
	dst := make([]complex128, 64)
	if err := s.MemcpyD2H(dst, buf).Wait(); err != nil {
		return 0, err
	}
	return dst[0], nil
}

// okWaitThenRead waits on the bound event before touching the slice.
func okWaitThenRead(s *gpu.Stream, buf *gpu.Buffer) (complex128, error) {
	dst := make([]complex128, 64)
	ev := s.MemcpyD2H(dst, buf)
	if err := ev.Wait(); err != nil {
		return 0, err
	}
	return dst[0], nil
}

// okStreamSynchronize uses a stream-wide barrier instead of the event.
func okStreamSynchronize(s *gpu.Stream, buf *gpu.Buffer) complex128 {
	dst := make([]complex128, 64)
	_ = s.MemcpyD2H(dst, buf)
	s.Synchronize()
	return dst[0]
}

// okDeviceSynchronize uses a device-wide barrier.
func okDeviceSynchronize(d *gpu.Device, s *gpu.Stream, buf *gpu.Buffer) complex128 {
	dst := make([]complex128, 64)
	_ = s.MemcpyD2H(dst, buf)
	d.Synchronize()
	return dst[0]
}

// okDoneSelect drains the completion channel before reading.
func okDoneSelect(s *gpu.Stream, buf *gpu.Buffer) complex128 {
	dst := make([]complex128, 64)
	ev := s.MemcpyD2H(dst, buf)
	<-ev.Done()
	return dst[0]
}

// okRebound re-binds the variable to fresh storage: the in-flight
// transfer no longer targets what the host reads.
func okRebound(s *gpu.Stream, buf *gpu.Buffer) complex128 {
	dst := make([]complex128, 64)
	_ = s.MemcpyD2H(dst, buf)
	dst = make([]complex128, 64)
	return dst[0]
}
