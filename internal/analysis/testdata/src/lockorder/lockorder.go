// Package lockorder is the stitchlint fixture for the whole-program
// lock-ordering analysis: the cross-type lock graph must be acyclic, and
// no lock-held path may re-lock the same mutex type, directly or through
// a call.
package lockorder

import "sync"

// A demonstrates the self-deadlock reports.
type A struct {
	mu sync.Mutex
	n  int
}

// relock is the direct recursive-lock deadlock: Go mutexes are not
// reentrant.
func (a *A) relock() {
	a.mu.Lock()
	a.mu.Lock() // want "Lock on lockorder.A.mu while lockorder.A.mu is already held"
	a.n++
	a.mu.Unlock()
	a.mu.Unlock()
}

// helper locks the same mutex type its callers may hold.
func (a *A) helper() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
}

// outer re-locks through a call: the deferred Unlock keeps a.mu held
// when helper runs.
func (a *A) outer() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.helper() // want "call to lockorder.A.helper while holding lockorder.A.mu"
}

// okSequentialHelper releases before calling: no lock is held at the
// call, so nothing is reported.
func (a *A) okSequentialHelper() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	a.helper()
}

// okClosureIsOwnScope: a literal that locks a.mu defined under the lock
// is not a lock-held acquisition — it runs whenever the caller invokes
// it, in its own scope.
func (a *A) okClosureIsOwnScope() func() {
	a.mu.Lock()
	defer a.mu.Unlock()
	return func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		a.n++
	}
}

// R demonstrates the read-lock variant: two RLocks on one goroutine
// deadlock the moment a writer queues between them.
type R struct {
	mu sync.RWMutex
	n  int
}

func (r *R) doubleRead() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.mu.RLock() // want "RLock on lockorder.R.mu while lockorder.R.mu is already held"
	n := r.n
	r.mu.RUnlock()
	return n
}

// C and D form the ordering cycle: lockCD acquires C then D, lockDC
// acquires D then C. Two goroutines taking the two orders deadlock.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func lockCD(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock() // want "lock-order cycle among .lockorder.C.mu, lockorder.D.mu."
	d.mu.Unlock()
	c.mu.Unlock()
}

func lockDC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

// E and F are ordered consistently everywhere — edges without a cycle
// are the normal state of a layered system and stay silent.
type E struct{ mu sync.Mutex }
type F struct {
	mu sync.Mutex
	n  int
}

func lockEF(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
}

// touchF locks F on its own; callers holding E.mu create the same E→F
// edge as lockEF — consistent, still silent.
func touchF(f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
}

func lockEThenCallF(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	touchF(f)
}
