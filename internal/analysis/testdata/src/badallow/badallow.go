// Package badallow fixes nothing: it exists to prove that a
// //lint:allow comment without a reason neither suppresses nor passes
// silently.
package badallow

import "hybridstitch/internal/gpu"

func leakWithBadSuppression(d *gpu.Device) {
	//lint:allow pairguard
	b, err := d.Alloc(64)
	if err != nil {
		return
	}
	_ = b.Words()
}
