// Package faultsite is the stitchlint fixture for the faultsite
// analyzer: Injector.Hit site names must come from the internal/fault
// registry.
package faultsite

import (
	"fmt"

	"hybridstitch/internal/fault"
)

// badTypo is the failure class under guard: a misspelled site that
// would silently never fire.
func badTypo(in *fault.Injector) error {
	return in.Hit("tiffio.raed", "tile_r000_c000") // want "not a registered site"
}

// badUnregistered names a site nobody instruments.
func badUnregistered(in *fault.Injector) error {
	return in.Hit("compose.blend", "row 3") // want "not a registered site"
}

// badDynamic builds the site at runtime: unverifiable, so rejected.
func badDynamic(in *fault.Injector, op string) error {
	return in.Hit(fmt.Sprintf("gpu.%s", op), "x") // want "not a constant"
}

// badVariable flows an unregistered literal through a local.
func badVariable(in *fault.Injector, deep bool) error {
	site := fault.SiteGPUAlloc
	if deep {
		site = "gpu.aloc"
	}
	return in.Hit(site, "x") // want "assignment that is not a registered site"
}

// okConstant uses the registry directly.
func okConstant(in *fault.Injector) error {
	return in.Hit(fault.SiteTiffRead, "tile_r000_c000")
}

// okLiteralMatchingRegistry is allowed: the invariant is registry
// membership, and the literal is verifiably a member.
func okLiteralMatchingRegistry(in *fault.Injector) error {
	return in.Hit("gpu.alloc", "GPU0")
}

// okKernelSite covers dynamically named kernels through the blessed
// constructor.
func okKernelSite(in *fault.Injector, kernel string) error {
	return in.Hit(fault.KernelSite(kernel), "stream0/"+kernel)
}

// okSwitchVariable is the gpu.Stream dispatch shape: a local assigned
// only from registered constants and KernelSite.
func okSwitchVariable(in *fault.Injector, kind int, name string) error {
	var site string
	switch kind {
	case 0:
		site = fault.SiteGPUCopyH2D
	case 1:
		site = fault.SiteGPUCopyD2H
	default:
		site = fault.KernelSite(name)
	}
	return in.Hit(site, name)
}
