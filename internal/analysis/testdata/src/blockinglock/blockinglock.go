// Package blockinglock is the stitchlint fixture for the blockinglock
// analyzer: no blocking operations while a sync.Mutex is held.
package blockinglock

import (
	"sync"
	"time"

	"hybridstitch/internal/gpu"
)

type state struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	wg   sync.WaitGroup
	ch   chan int
}

// badSleepUnderDefer holds the lock for the whole function via defer,
// so the sleep stalls every other goroutine on s.mu.
func badSleepUnderDefer(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
}

// badRecvUnderLock blocks on a channel inside the critical section.
func badRecvUnderLock(s *state) int {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while holding s.mu"
	s.mu.Unlock()
	return v
}

// badSendUnderLock blocks on a full channel inside the section.
func badSendUnderLock(s *state, v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while holding s.mu"
	s.mu.Unlock()
}

// badEventWaitUnderLock waits on device work while serializing the host.
func badEventWaitUnderLock(s *state, ev *gpu.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ev.Wait() // want "gpu.Event.Wait while holding s.mu"
}

// badSynchronizeUnderLock drains a whole device inside the section.
func badSynchronizeUnderLock(s *state, d *gpu.Device) {
	s.mu.Lock()
	d.Synchronize() // want "gpu.Device.Synchronize while holding s.mu"
	s.mu.Unlock()
}

// badAllocBlockingUnderLock can deadlock: the free that would unblock it
// may need the same mutex.
func badAllocBlockingUnderLock(s *state, d *gpu.Device) (*gpu.Buffer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.AllocBlocking(64) // want "gpu.Device.AllocBlocking while holding s.mu"
}

// badWaitGroupUnderLock joins workers that may themselves need the lock.
func badWaitGroupUnderLock(s *state) {
	s.mu.Lock()
	s.wg.Wait() // want "sync.WaitGroup.Wait while holding s.mu"
	s.mu.Unlock()
}

// badSelectUnderRLock blocks in select while readers are locked out of
// upgrades.
func badSelectUnderRLock(s *state, done chan struct{}) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select { // want "select without default while holding s.rw"
	case <-s.ch:
	case <-done:
	}
}

// okSleepAfterUnlock does the blocking work outside the section — the
// memgov/devicepool idiom.
func okSleepAfterUnlock(s *state) {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// okCondWait is exempt: Cond.Wait releases the mutex while parked.
func okCondWait(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ch) == 0 {
		s.cond.Wait()
	}
}

// okNonBlockingSelect has a default case, so it cannot park.
func okNonBlockingSelect(s *state) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.ch:
		return true
	default:
		return false
	}
}

// okGoroutineUnderLock: the literal's body runs on its own goroutine,
// not under the caller's lock.
func okGoroutineUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}
