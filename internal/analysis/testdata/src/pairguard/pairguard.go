// Package pairguard is the stitchlint fixture for the pairguard
// analyzer: acquired resources (device buffers, governor allocations,
// spans, pooled aligners) must reach their release or an ownership
// transfer on every path. delta.go holds the cases the old syntactic
// bufferfree check could not see.
package pairguard

import (
	"hybridstitch/internal/gpu"
	"hybridstitch/internal/memgov"
)

// leakNeverFreed allocates and forgets: the classic pool leak.
func leakNeverFreed(d *gpu.Device) error {
	b, err := d.Alloc(64) // want "never freed or ownership-transferred"
	if err != nil {
		return err
	}
	_ = b.Words()
	return nil
}

// leakEarlyReturn frees on the happy path but leaks when validation
// fails after the allocation succeeded.
func leakEarlyReturn(d *gpu.Device, n int64) error {
	b, err := d.AllocBlocking(n)
	if err != nil {
		return err
	}
	if n > 1024 {
		return nil // want "return leaks the gpu.Device.AllocBlocking result"
	}
	return b.Free()
}

// leakSpectrumNeverFreed: half-spectrum (r2c) buffers obey the same pool
// discipline as full transforms.
func leakSpectrumNeverFreed(d *gpu.Device) error {
	b, err := d.AllocSpectrum(96, 128) // want "never freed or ownership-transferred"
	if err != nil {
		return err
	}
	_ = b.Words()
	return nil
}

// okSpectrumFreed is the clean half-spectrum case.
func okSpectrumFreed(d *gpu.Device) error {
	b, err := d.AllocSpectrum(96, 128)
	if err != nil {
		return err
	}
	return b.Free()
}

// leakDiscarded drops the buffer on the floor at the call site.
func leakDiscarded(d *gpu.Device) {
	d.Alloc(64) // want "discarded"
}

// leakBlank can never free through the blank identifier.
func leakBlank(d *gpu.Device) {
	_, _ = d.Alloc(64) // want "assigned to _"
}

// leakGovernor applies the same rule to host-memory reservations.
func leakGovernor(g *memgov.Governor) {
	a, err := g.Alloc(1 << 20) // want "never freed or ownership-transferred"
	if err != nil {
		return
	}
	_ = a
}

// okFreed is the minimal clean case.
func okFreed(d *gpu.Device) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	return b.Free()
}

// okDeferFreed discharges through a deferred closure.
func okDeferFreed(d *gpu.Device) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	defer func() { _ = b.Free() }()
	b.Data[0] = 1
	return nil
}

// okTransferredToCall hands the buffer to a pool-style release helper.
func okTransferredToCall(d *gpu.Device, release func(*gpu.Buffer)) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	release(b)
	return nil
}

// okReturned transfers ownership to the caller.
func okReturned(d *gpu.Device) (*gpu.Buffer, error) {
	return d.Alloc(64)
}

// okReturnedVar transfers ownership through a named result.
func okReturnedVar(d *gpu.Device) (*gpu.Buffer, error) {
	b, err := d.Alloc(64)
	if err != nil {
		return nil, err
	}
	return b, nil
}

type holder struct{ buf *gpu.Buffer }

// okStoredInField transfers ownership into a longer-lived structure.
func okStoredInField(d *gpu.Device, h *holder) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	h.buf = b
	return nil
}

// okAppended transfers ownership into a slice (the device pool pattern).
func okAppended(d *gpu.Device, bufs []*gpu.Buffer) ([]*gpu.Buffer, error) {
	b, err := d.Alloc(64)
	if err != nil {
		return bufs, err
	}
	return append(bufs, b), nil
}

// okSentOnChannel transfers ownership to whoever receives.
func okSentOnChannel(d *gpu.Device, ch chan *gpu.Buffer) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	ch <- b
	return nil
}

// okSuppressed documents an intentional leak with the mandatory reason.
func okSuppressed(d *gpu.Device) {
	//lint:allow pairguard fixture exercises the suppression path
	b, err := d.Alloc(64)
	if err != nil {
		return
	}
	_ = b.Words()
}
