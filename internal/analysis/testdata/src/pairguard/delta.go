// delta.go seeds the leaks that separate pairguard from the retired
// syntactic bufferfree analyzer, as the committed proof of the delta.
// bufferfree judged a `return` safe whenever ANY Free/transfer appeared
// lexically before it, and trusted ANY `if err != nil` guard that
// mentioned the acquisition's error object. Both rules are refuted here:
// the leaking paths below were invisible to it, and the ok* twins show
// the same shapes written correctly.
package pairguard

import (
	"hybridstitch/internal/gpu"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/pciam"
)

// leakReleaseOnWrongBranch frees on the fast path only. The Free sits
// lexically BEFORE the final return, which satisfied bufferfree's
// position test — but the two live on mutually exclusive branches, so
// the slow path leaks.
func leakReleaseOnWrongBranch(d *gpu.Device, fast bool) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	if fast {
		return b.Free()
	}
	return nil // want "return leaks the gpu.Device.Alloc result"
}

// okReleaseOnEveryBranch is the same shape with both branches closed.
func okReleaseOnEveryBranch(d *gpu.Device, fast bool) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	if fast {
		return b.Free()
	}
	b.Data[0] = 1
	return b.Free()
}

// leakErrReuse reuses err for a later operation. The second
// `if err != nil` guard says nothing about the allocation anymore, yet
// bufferfree accepted it because the guard mentioned the same err
// object; the buffer leaks on step's error path.
func leakErrReuse(d *gpu.Device, step func() error) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	err = step()
	if err != nil {
		return err // want "return leaks the gpu.Device.Alloc result"
	}
	return b.Free()
}

// okErrReuseFreed is the corrected twin: release before the early exit.
func okErrReuseFreed(d *gpu.Device, step func() error) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	err = step()
	if err != nil {
		_ = b.Free()
		return err
	}
	return b.Free()
}

// leakPanicPath frees on the normal path but panics past the buffer on
// the absurd-size path: only a defer survives an unwind.
func leakPanicPath(d *gpu.Device, n int64) {
	b, err := d.Alloc(n)
	if err != nil {
		return
	}
	if n > 1<<30 {
		panic("absurd tile size") // want "panic unwinds past the gpu.Device.Alloc result"
	}
	_ = b.Free()
}

// okDeferCoversPanic is the same shape released by defer, which
// discharges the unwind path too.
func okDeferCoversPanic(d *gpu.Device, n int64) {
	b, err := d.Alloc(n)
	if err != nil {
		return
	}
	defer b.Free()
	if n > 1<<30 {
		panic("absurd tile size")
	}
}

// leakReassigned overwrites the only handle to a live buffer: the first
// allocation can never be freed after the second binds.
func leakReassigned(d *gpu.Device) error {
	b, err := d.Alloc(64)
	if err != nil {
		return err
	}
	b, err = d.Alloc(128) // want "reassignment loses the gpu.Device.Alloc result"
	if err != nil {
		return err
	}
	return b.Free()
}

// leakReceiverUse: calling a method on the buffer is not a transfer —
// the word count comes back, the buffer stays owed.
func leakReceiverUse(d *gpu.Device) int64 {
	b, err := d.Alloc(16) // want "never freed or ownership-transferred"
	if err != nil {
		return 0
	}
	return b.Words()
}

// leakSpanEarlyReturn abandons a span on the error path: the golden
// span-tree stays open and the track never closes.
func leakSpanEarlyReturn(rec *obs.Recorder, work func() error) error {
	sp := rec.StartSpan(obs.TrackRun, obs.SpanStitch)
	if err := work(); err != nil {
		return err // want "return leaks the obs.Recorder.StartSpan result"
	}
	sp.End()
	return nil
}

// okSpanDeferred is the canonical span shape.
func okSpanDeferred(rec *obs.Recorder, work func() error) error {
	sp := rec.StartSpan(obs.TrackRun, obs.SpanStitch)
	defer sp.End()
	return work()
}

// okSpanNilGuarded: on the sp == nil arm nothing was recorded and
// nothing is owed (obs spans are nil-safe by design).
func okSpanNilGuarded(rec *obs.Recorder, work func() error) error {
	sp := rec.StartSpan(obs.TrackRun, obs.SpanStitch)
	if sp == nil {
		return work()
	}
	err := work()
	sp.End()
	return err
}

// leakChildSpan: child spans owe an End exactly like roots.
func leakChildSpan(parent *obs.Span, work func() error) error {
	sp := parent.Child(obs.SpanPair)
	if err := work(); err != nil {
		return err // want "return leaks the obs.Span.Child result"
	}
	sp.End()
	return nil
}

// leakAlignerNeverPut checks the pooled-aligner pairing: a checked-out
// aligner that is neither Closed nor Put back starves the arena pool.
func leakAlignerNeverPut(w, h int, opts pciam.Options) error {
	al, err := pciam.GetAligner(w, h, opts) // want "never freed or ownership-transferred"
	if err != nil {
		return err
	}
	_ = al
	return nil
}

// okAlignerPutBack returns the aligner to the pool (an ownership
// transfer: the value is passed to a call).
func okAlignerPutBack(w, h int, opts pciam.Options) error {
	al, err := pciam.GetAligner(w, h, opts)
	if err != nil {
		return err
	}
	defer pciam.PutAligner(al)
	return nil
}

// okAlignerClosed releases by the paired Close method.
func okAlignerClosed(w, h int, opts pciam.Options) error {
	al, err := pciam.GetRealAligner(w, h, opts)
	if err != nil {
		return err
	}
	al.Close()
	return nil
}
