// Package hotpath is the stitchlint fixture for the hotpath analyzer:
// functions carrying the //stitchlint:hotpath directive must not call
// make.
package hotpath

type arena struct {
	work []complex128
}

// newArena is a constructor: unmarked, so its makes are fine.
func newArena(n int) *arena {
	return &arena{work: make([]complex128, n)}
}

// badDisplace allocates scratch per pair on the hot path.
//
//stitchlint:hotpath
func badDisplace(ar *arena, n int) []complex128 {
	buf := make([]complex128, n) // want "make in hot-path function badDisplace"
	copy(buf, ar.work)
	return buf
}

// badClosure hides the allocation inside a closure — still the hot path.
//
//stitchlint:hotpath
func badClosure(n int) func() []byte {
	return func() []byte {
		return make([]byte, n) // want "make in hot-path function badClosure"
	}
}

// goodDisplace reuses arena scratch: nothing to report.
//
//stitchlint:hotpath
func goodDisplace(ar *arena) complex128 {
	var sum complex128
	for _, v := range ar.work {
		sum += v
	}
	return sum
}

// allowedGrowth documents amortized warm-up growth with the standard
// suppression.
//
//stitchlint:hotpath
func allowedGrowth(ar *arena, n int) {
	if cap(ar.work) < n {
		ar.work = make([]complex128, n) //lint:allow hotpath amortized warm-up growth
	}
	ar.work = ar.work[:n]
}

// unmarked functions may allocate freely.
func unmarked(n int) []int {
	return make([]int, n)
}

// userMake is a local function named make-alike; calling it is fine even
// on the hot path (only the builtin is flagged).
func mk(n int) []int { return nil }

//stitchlint:hotpath
func usesLocalFunc(n int) []int {
	return mk(n)
}
