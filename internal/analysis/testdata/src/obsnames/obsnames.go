// Package obsnames is the stitchlint fixture for the obs-name registry
// analysis: every span/track/metric name handed to internal/obs must be
// a constant from internal/obs/names.go (or a same-value alias, or a
// registry prefix for concatenated names).
package obsnames

import "hybridstitch/internal/obs"

// aliasRead re-exports a registry value, as internal/stitch does for its
// public counter names — same value, still registry-backed.
const aliasRead = obs.SpanRead

// rogueName compiles fine but belongs to no dashboard or golden trace.
const rogueName = "obsnames.rogue.gauge"

func bad(rec *obs.Recorder) {
	sp := rec.StartSpan("run", "obsnames-bogus") // want "obs name literal \"run\"" "obs name literal \"obsnames-bogus\""
	defer sp.End()
	rec.Counter("obsnames.bogus.count").Add(1) // want "obs name literal \"obsnames.bogus.count\""
	rec.Gauge(rogueName).Set(1)                // want "obs name constant rogueName"
}

func good(rec *obs.Recorder) {
	sp := rec.StartSpan(obs.TrackRun, obs.SpanStitch)
	defer sp.End()
	child := sp.Child(obs.SpanPair)
	child.End()
	rec.Counter(obs.CounterTilesRead).Add(1)
	rec.Histogram(obs.HistReadSeconds).Observe(0.1)
	rec.Gauge(aliasRead).Set(1)
}

// goodPrefix: concatenated names are judged by their leftmost leaf, so a
// registry prefix legitimizes a dynamic remainder.
func goodPrefix(rec *obs.Recorder, op string) {
	rec.Histogram(obs.HistGPUOpPrefix + op).Observe(0.2)
	rec.Counter(obs.QueuePrefix + op + obs.QueuePushesSuffix).Add(1)
}

// badPrefix: a literal prefix is exactly the drift the registry exists
// to prevent.
func badPrefix(rec *obs.Recorder, op string) {
	rec.Histogram("gpu.op." + op).Observe(0.2) // want "obs name literal \"gpu.op.\""
}

// record forwards its parameter to the recorder: the obligation shifts
// to record's call sites.
func record(rec *obs.Recorder, name string) {
	rec.Counter(name).Add(1)
}

func callers(rec *obs.Recorder) {
	record(rec, obs.CounterPairsAligned)
	record(rec, "obsnames.forwarded") // want "obs name literal \"obsnames.forwarded\""
}

// recordDeep forwards through two levels; the fixpoint follows.
func recordDeep(rec *obs.Recorder, name string) {
	record(rec, name)
}

func deepCallers(rec *obs.Recorder) {
	recordDeep(rec, obs.CounterRetries)
	recordDeep(rec, "obsnames.deep") // want "obs name literal \"obsnames.deep\""
}

// dynamic names built locally are beyond static judgment: the registry
// rule is enforced where strings are born, not where they flow.
func goodDynamic(rec *obs.Recorder, names []string) {
	for _, n := range names {
		rec.Counter(n).Add(1)
	}
}
