package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"
)

// FaultSite checks that every site name passed to
// (*fault.Injector).Hit belongs to the registry declared in
// internal/fault (the exported Site* string constants, or a name built
// with fault.KernelSite). A typo'd site compiles fine today and simply
// never fires — a dead fault rule discovered only after the unattended
// run it was supposed to protect. This analyzer turns it into a lint
// error.
//
// Accepted argument forms:
//
//   - a constant expression (fault.SiteGPUAlloc, or a literal equal to a
//     registered name) whose value is in the registry,
//   - a call to fault.KernelSite(...),
//   - a local variable whose every assignment in the function is one of
//     the above (the switch-shaped dispatch in gpu.Stream).
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "fault-injection site names must come from the internal/fault registry",
	Run:  runFaultSite,
}

func runFaultSite(pass *Pass) error {
	// The fault package itself is exempt: its unit tests drive the
	// injector with synthetic site names to test the machinery, and no
	// production error points live there.
	if pass.Pkg.Path() == faultPkg {
		return nil
	}
	registry := faultRegistry(pass.Pkg)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c, ok := resolveCallee(pass.TypesInfo, call)
			if !ok || !c.is(faultPkg, "Injector", "Hit") || len(call.Args) < 1 {
				return true
			}
			checkSiteArg(pass, registry, f, call.Args[0])
			return true
		})
	}
	return nil
}

// checkSiteArg validates one Hit site argument.
func checkSiteArg(pass *Pass, registry map[string]bool, file *ast.File, arg ast.Expr) {
	info := pass.TypesInfo
	ok, reason := siteExprOK(info, registry, arg)
	if ok {
		return
	}
	// A local variable is fine if every assignment to it in this file's
	// enclosing function is itself a valid site expression.
	if obj := identObj(info, arg); obj != nil {
		valid, assigns := varAssignmentsOK(info, registry, file, obj)
		if valid && assigns > 0 {
			return
		}
		if assigns > 0 {
			pass.Reportf(arg.Pos(), "fault site variable %s has an assignment that is not a registered site (see internal/fault/sites.go)", exprString(pass.Fset, arg))
			return
		}
	}
	pass.Reportf(arg.Pos(), "fault site %s: %s (use a fault.Site* constant or fault.KernelSite; registry: internal/fault/sites.go)",
		exprString(pass.Fset, arg), reason)
}

// siteExprOK reports whether e is an acceptable site expression.
func siteExprOK(info *types.Info, registry map[string]bool, e ast.Expr) (bool, string) {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		v := constant.StringVal(tv.Value)
		if registry[v] {
			return true, ""
		}
		return false, "constant " + strconv.Quote(v) + " is not a registered site"
	}
	if call, ok := e.(*ast.CallExpr); ok {
		c, ok := resolveCallee(info, call)
		if ok && c.pkgPath == faultPkg && c.recv == "" && c.name == "KernelSite" {
			return true, ""
		}
	}
	return false, "not a constant"
}

// varAssignmentsOK scans the file for assignments to obj and validates
// each RHS. It returns whether all were valid and how many were found.
func varAssignmentsOK(info *types.Info, registry map[string]bool, file *ast.File, obj types.Object) (bool, int) {
	valid, count := true, 0
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
				continue
			}
			count++
			if i >= len(as.Rhs) {
				valid = false // multi-value assignment; can't validate
				continue
			}
			if ok, _ := siteExprOK(info, registry, as.Rhs[i]); !ok {
				valid = false
			}
		}
		return true
	})
	return valid, count
}

// faultRegistry collects the registered site values: the exported Site*
// string constants of internal/fault, found in pkg itself or its import
// graph.
func faultRegistry(pkg *types.Package) map[string]bool {
	fp := findPackage(pkg, faultPkg, map[*types.Package]bool{})
	out := map[string]bool{}
	if fp == nil {
		return out
	}
	scope := fp.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Site") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		out[constant.StringVal(c.Val())] = true
	}
	return out
}

// findPackage locates path in pkg's transitive import graph.
func findPackage(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if pkg == nil || seen[pkg] {
		return nil
	}
	seen[pkg] = true
	if pkg.Path() == path {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if found := findPackage(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}
