// Package analysis is a self-contained static-analysis framework plus
// the repo-specific analyzers the stitchlint tool runs. It mirrors the
// golang.org/x/tools/go/analysis shape — Analyzer, Pass, Diagnostic —
// but is built on the standard library only (go/ast, go/types, and
// `go list -export` for dependency export data), because this module
// vendors nothing. On top of the per-package passes it layers a
// lightweight control-flow graph and bitset dataflow engine (cfg.go)
// that the flow-sensitive analyzers share, and a whole-program hook
// (Analyzer.RunProgram) for analyses whose facts cross package
// boundaries.
//
// The analyzers encode the invariants the paper's pipelined-GPU design
// relies on but the compiler cannot check:
//
//   - pairguard:    every acquire (gpu/governor Alloc, obs StartSpan,
//     pciam Get*Aligner) reaches its paired release on every path —
//     early returns, error branches, and panics included — unless
//     ownership is transferred. Path-sensitive on the CFG; understands
//     defer and `if err != nil` refinement.
//   - streamsync:   host code never reads a MemcpyD2H destination before
//     the returned event resolves.
//   - faultsite:    fault-injection site names come from the registry in
//     internal/fault, so typos are build-time errors.
//   - blockinglock: no blocking calls while holding a sync.Mutex.
//   - lockorder:    the cross-package lock-ordering graph (keyed by
//     owning named type) is acyclic, and no lock-held call re-locks the
//     same mutex type (whole-program).
//   - obsnames:     every span/counter name passed to the obs layer is a
//     constant from the internal/obs names registry, so dashboards and
//     golden traces cannot drift from the code.
//   - hotpath:      functions marked //stitchlint:hotpath (the phase-1
//     steady-state pair loop) never call make; scratch comes from
//     constructor-sized arenas and plan-held buffers.
//
// Violations can be suppressed, one line at a time, with a trailing or
// preceding comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// where the reason is mandatory: a suppression without a rationale is
// ignored (and stitchlint reports it as malformed). A suppression
// naming an analyzer that no longer exists is reported too — dead
// suppressions otherwise hide the fact that nothing is being checked.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check. Exactly one of Run and RunProgram is set:
// Run sees one package at a time; RunProgram sees every loaded package
// at once with a shared FileSet, for analyses whose facts span package
// boundaries (lock-ordering graphs, cross-package call summaries).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
	// RunProgram inspects the whole loaded program at once.
	RunProgram func(prog *Program) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Program is a whole-program analyzer's view: every loaded package over
// one shared FileSet. Reporting is safe for concurrent use.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	mu    sync.Mutex
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos under the named analyzer.
func (p *Program) Reportf(pos token.Pos, analyzer, format string, args ...any) {
	p.ReportfAt(p.Fset.Position(pos), analyzer, format, args...)
}

// ReportfAt records a diagnostic at an already-resolved position.
func (p *Program) ReportfAt(pos token.Position, analyzer, format string, args ...any) {
	p.mu.Lock()
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: analyzer,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
	p.mu.Unlock()
}

// Analyzers returns the full stitchlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{PairGuard, StreamSync, FaultSite, BlockingLock, LockOrder, ObsNames, HotPath}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies each analyzer to each package, filters suppressed
// diagnostics, and returns the survivors sorted by position. Per-package
// analyzers run in parallel across packages (bounded by GOMAXPROCS);
// whole-program analyzers run after, over all packages at once.
// Malformed suppression comments (no reason, or an analyzer name the
// suite no longer carries) are themselves diagnostics, attributed to the
// pseudo-analyzer "suppression".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var perPkg, program []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			program = append(program, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	// Per-package passes fan out across a bounded worker pool; each
	// package accumulates into its own slice so no lock sits on the hot
	// reporting path.
	pkgDiags := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			for _, a := range perPkg {
				pass := &Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
					diags:     &pkgDiags[i],
				}
				if err := a.Run(pass); err != nil {
					errs[i] = fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
					return
				}
			}
			pkgDiags[i] = append(pkgDiags[i], malformedSuppressions(pkg)...)
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		diags = append(diags, pkgDiags[i]...)
	}

	if len(program) > 0 && len(pkgs) > 0 {
		prog := &Program{Fset: pkgs[0].Fset, Pkgs: pkgs, diags: &diags}
		for _, a := range program {
			if err := a.RunProgram(prog); err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
			}
		}
	}

	byFile := map[string][]suppression{}
	for _, pkg := range pkgs {
		for _, s := range parseSuppressions(pkg) {
			byFile[s.file] = append(byFile[s.file], s)
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		if !suppressed(byFile[d.Pos.Filename], d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// suppression is one parsed //lint:allow comment.
type suppression struct {
	file     string
	line     int // line the comment sits on; it covers this line and the next
	analyzer string
	reason   string
}

const allowPrefix = "//lint:allow"

// parseSuppressions extracts every //lint:allow comment in the package.
func parseSuppressions(pkg *Package) []suppression {
	var out []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				s := suppression{file: pos.Filename, line: pos.Line}
				if len(fields) > 0 {
					s.analyzer = fields[0]
				}
				if len(fields) > 1 {
					s.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a well-formed //lint:allow
// on the same line or the line immediately above.
func suppressed(sups []suppression, d Diagnostic) bool {
	for _, s := range sups {
		if s.reason == "" || s.analyzer != d.Analyzer {
			continue
		}
		if s.line == d.Pos.Line || s.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// malformedSuppressions flags //lint:allow comments missing the
// mandatory reason, so a suppression never silently fails to suppress —
// and comments naming an analyzer the suite no longer carries, so a
// retired analyzer's suppressions don't linger as false reassurance.
func malformedSuppressions(pkg *Package) []Diagnostic {
	live := map[string]bool{}
	for _, a := range Analyzers() {
		live[a.Name] = true
	}
	var out []Diagnostic
	for _, s := range parseSuppressions(pkg) {
		switch {
		case s.reason == "":
			out = append(out, Diagnostic{
				Analyzer: "suppression",
				Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  fmt.Sprintf("malformed %s comment: need %q", allowPrefix, allowPrefix+" <analyzer> <reason>"),
			})
		case !live[s.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "suppression",
				Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  fmt.Sprintf("%s references unknown analyzer %q — the suite has no such check, so this comment suppresses nothing", allowPrefix, s.analyzer),
			})
		}
	}
	return out
}
