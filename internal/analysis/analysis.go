// Package analysis is a self-contained static-analysis framework plus
// the four repo-specific analyzers the stitchlint tool runs. It mirrors
// the golang.org/x/tools/go/analysis shape — Analyzer, Pass, Diagnostic
// — but is built on the standard library only (go/ast, go/types, and
// `go list -export` for dependency export data), because this module
// vendors nothing.
//
// The analyzers encode the invariants the paper's pipelined-GPU design
// relies on but the compiler cannot check:
//
//   - bufferfree:   every device/governor allocation reaches a Free or a
//     documented ownership transfer on all paths.
//   - streamsync:   host code never reads a MemcpyD2H destination before
//     the returned event resolves.
//   - faultsite:    fault-injection site names come from the registry in
//     internal/fault, so typos are build-time errors.
//   - blockinglock: no blocking calls while holding a sync.Mutex.
//   - hotpath:      functions marked //stitchlint:hotpath (the phase-1
//     steady-state pair loop) never call make; scratch comes from
//     constructor-sized arenas and plan-held buffers.
//
// Violations can be suppressed, one line at a time, with a trailing or
// preceding comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// where the reason is mandatory: a suppression without a rationale is
// ignored (and stitchlint reports it as malformed).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full stitchlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{BufferFree, StreamSync, FaultSite, BlockingLock, HotPath}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies each analyzer to each package, filters suppressed
// diagnostics, and returns the survivors sorted by position. Malformed
// suppression comments (no reason) are themselves diagnostics, attributed
// to the pseudo-analyzer "suppression".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		diags = append(diags, malformedSuppressions(pkg)...)
	}
	byFile := map[string][]suppression{}
	for _, pkg := range pkgs {
		for _, s := range parseSuppressions(pkg) {
			byFile[s.file] = append(byFile[s.file], s)
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		if !suppressed(byFile[d.Pos.Filename], d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// suppression is one parsed //lint:allow comment.
type suppression struct {
	file     string
	line     int // line the comment sits on; it covers this line and the next
	analyzer string
	reason   string
}

const allowPrefix = "//lint:allow"

// parseSuppressions extracts every //lint:allow comment in the package.
func parseSuppressions(pkg *Package) []suppression {
	var out []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				s := suppression{file: pos.Filename, line: pos.Line}
				if len(fields) > 0 {
					s.analyzer = fields[0]
				}
				if len(fields) > 1 {
					s.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a well-formed //lint:allow
// on the same line or the line immediately above.
func suppressed(sups []suppression, d Diagnostic) bool {
	for _, s := range sups {
		if s.reason == "" || s.analyzer != d.Analyzer {
			continue
		}
		if s.line == d.Pos.Line || s.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// malformedSuppressions flags //lint:allow comments missing the
// mandatory reason, so a suppression never silently fails to suppress.
func malformedSuppressions(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, s := range parseSuppressions(pkg) {
		if s.reason != "" {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "suppression",
			Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
			Message:  fmt.Sprintf("malformed %s comment: need %q", allowPrefix, allowPrefix+" <analyzer> <reason>"),
		})
	}
	return out
}
