// Package leaktest asserts that tests do not leak goroutines. The GPU
// device and pipeline layers both run dispatcher goroutines behind their
// public APIs; a test that forgets Close leaves one parked on a condition
// variable forever, and under -race a few hundred of those turn the suite
// flaky. VerifyTestMain fails the package's test binary if any
// non-runtime goroutine survives the run.
//
// The checker snapshots runtime.Stack for all goroutines, filters the
// runtime and testing machinery, and retries with backoff so goroutines
// that are mid-exit (a dispatcher between wg.Done and goexit) are not
// false positives.
package leaktest

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxWait bounds the retry loop: how long a goroutine may take to finish
// exiting after the code that owned it returned.
const maxWait = 2 * time.Second

// benign reports whether a goroutine stack block belongs to the runtime
// or testing machinery rather than code under test.
func benign(block string) bool {
	lines := strings.Split(block, "\n")
	if len(lines) < 2 {
		return true
	}
	// First frame: the function the goroutine is currently in.
	top := strings.TrimSpace(lines[1])
	for _, p := range []string{
		"testing.Main(",
		"testing.RunTests(",
		"testing.(*M).",
		"testing.(*T).",
		"testing.tRunner(",
		"testing.runFuzzing(",
		"testing.runFuzzTests(",
		"runtime.goexit",
		"runtime.gc",
		"runtime.forcegchelper",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.MHeap_Scavenger",
		"runtime.ReadTrace",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime/pprof.",
	} {
		if strings.HasPrefix(top, p) {
			return true
		}
	}
	// The main goroutine of the test binary.
	if strings.Contains(block, "testing.(*M).Run(") || strings.Contains(block, "main.main()") {
		return true
	}
	return false
}

// leaked returns the stack blocks of goroutines that look like leaks at
// this instant, excluding the calling goroutine.
func leaked() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	blocks := strings.Split(string(buf), "\n\n")
	var out []string
	for i, b := range blocks {
		if i == 0 {
			continue // the goroutine running this checker
		}
		if !benign(b) {
			out = append(out, b)
		}
	}
	return out
}

// retry polls leaked() with backoff until it is empty or maxWait passes.
func retry() []string {
	var last []string
	delay := 1 * time.Millisecond
	deadline := time.Now().Add(maxWait)
	for {
		last = leaked()
		if len(last) == 0 || time.Now().After(deadline) {
			return last
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// VerifyNone fails tb if any goroutine outside the runtime/testing
// machinery is still alive. Call it at the end of a test (directly or via
// defer) whose code must not leave background work behind.
func VerifyNone(tb testing.TB) {
	tb.Helper()
	if leaks := retry(); len(leaks) > 0 {
		tb.Errorf("found %d leaked goroutine(s):\n\n%s", len(leaks), strings.Join(leaks, "\n\n"))
	}
}

// VerifyTestMain runs the package's tests and exits non-zero if they
// leaked goroutines. Use from TestMain:
//
//	func TestMain(m *testing.M) { leaktest.VerifyTestMain(m) }
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaks := retry(); len(leaks) > 0 {
			fmt.Fprintf(os.Stderr, "leaktest: found %d leaked goroutine(s) after test run:\n\n%s\n",
				len(leaks), strings.Join(leaks, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
