package leaktest

import (
	"strings"
	"testing"
)

// TestDetectsParkedGoroutine: a goroutine blocked on a channel must show
// up as a leak while parked, and disappear once released.
func TestDetectsParkedGoroutine(t *testing.T) {
	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked

	leaks := retry()
	if len(leaks) == 0 {
		t.Fatal("parked goroutine not detected")
	}
	if !strings.Contains(strings.Join(leaks, "\n"), "leaktest.TestDetectsParkedGoroutine") {
		t.Errorf("leak report does not name the leaking function:\n%s", strings.Join(leaks, "\n\n"))
	}

	close(release)
	VerifyNone(t) // must settle to zero once released
}

func TestCleanRunHasNoLeaks(t *testing.T) {
	VerifyNone(t)
}
