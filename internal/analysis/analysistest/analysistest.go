// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against expectations written in the fixture
// source — the same contract as golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the repo's own loader.
//
// Expectations are comments of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// Each quoted string is a regular expression that must match the message
// of one diagnostic reported on that line; conversely, every diagnostic
// must be claimed by an expectation. Fixtures live under
// internal/analysis/testdata/src/<name> and must type-check (the go tool
// ignores testdata directories, so they never reach a normal build).
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hybridstitch/internal/analysis"
)

// expectation is one `want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture package at dir (a path relative to the calling
// test's working directory, e.g. "./testdata/src/bufferfree"), applies
// the analyzer, and reports mismatches between produced diagnostics and
// the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{}, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	expects, err := parseExpectations(pkg)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.pattern)
		}
	}
	return diags
}

// claim marks the first unmatched expectation that covers d.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseExpectations extracts want comments from the fixture.
func parseExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRE.FindAllString(text, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: want comment with no %q patterns", pos, "...")
				}
				for _, q := range quoted {
					lit, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %s: %v", pos, q, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}

// Position is re-exported for driver tests that assert exact locations.
type Position = token.Position
