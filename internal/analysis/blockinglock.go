package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BlockingLock checks that no blocking operation runs while a
// sync.Mutex or sync.RWMutex is held. The simulator's hot paths — the
// device memory accountant, the stream dispatchers, the inter-stage
// monitor queues — all take short mutex-protected sections; a blocking
// call inside one serializes every stream on the device (or deadlocks
// outright, as with a pool acquire under the allocator lock).
//
// A critical section runs from X.Lock()/X.RLock() to the matching
// X.Unlock()/X.RUnlock() on the same lexical receiver expression, or to
// the end of the function when the unlock is deferred. Within it, the
// following are flagged:
//
//   - time.Sleep
//   - (*gpu.Event).Wait, (*gpu.Stream).Synchronize,
//     (*gpu.Device).Synchronize, (*gpu.Device).AllocBlocking
//   - (*sync.WaitGroup).Wait
//   - channel sends, channel receives, and select statements without a
//     default case
//
// sync.Cond.Wait is exempt: it releases the mutex while parked, which is
// precisely the pattern the device allocator and queues use. Function
// literals inside a section are analyzed as their own scope — code in a
// callback or spawned goroutine does not (necessarily) run under the
// lock.
var BlockingLock = &Analyzer{
	Name: "blockinglock",
	Doc:  "no blocking calls (Synchronize, AllocBlocking, time.Sleep, channel ops) while holding a sync.Mutex",
	Run:  runBlockingLock,
}

func runBlockingLock(pass *Pass) error {
	for _, fd := range funcBodies(pass.Files) {
		blockingLockScope(pass, fd.Body)
	}
	return nil
}

// section is one lexical critical region.
type section struct {
	mutex string // receiver expression, e.g. "d.memMu"
	start token.Pos
	end   token.Pos // NoPos while unmatched; deferred unlock → end of body
}

// mutexOp classifies a call as a Lock/Unlock on a sync (RW)mutex and
// returns the receiver's lexical key.
func mutexOp(pass *Pass, call *ast.CallExpr) (key, op string, ok bool) {
	c, okc := resolveCallee(pass.TypesInfo, call)
	if !okc || c.pkgPath != syncPkg {
		return "", "", false
	}
	if c.recv != "Mutex" && c.recv != "RWMutex" {
		return "", "", false
	}
	switch c.name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !oks {
		return "", "", false
	}
	return exprString(pass.Fset, sel.X), c.name, true
}

// blockingLockScope analyzes one function body; nested function literals
// recurse into their own scope and are skipped in the outer walk.
func blockingLockScope(pass *Pass, body *ast.BlockStmt) {
	var sections []section

	// Pass 1: build critical sections from lock/unlock pairs at this
	// nesting level.
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			blockingLockScope(pass, fl.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, ok := mutexOp(pass, call)
		if !ok {
			return true
		}
		deferred := false
		for _, anc := range stack {
			if _, ok := anc.(*ast.DeferStmt); ok {
				deferred = true
				break
			}
		}
		switch op {
		case "Lock", "RLock":
			sections = append(sections, section{mutex: key, start: call.Pos()})
		case "Unlock", "RUnlock":
			for i := len(sections) - 1; i >= 0; i-- {
				s := &sections[i]
				if s.mutex != key || s.end != token.NoPos {
					continue
				}
				if deferred {
					s.end = body.End()
				} else {
					s.end = call.Pos()
				}
				break
			}
		}
		return true
	})
	for i := range sections {
		if sections[i].end == token.NoPos {
			// Lock with no visible unlock in this scope: assume held to
			// the end (the conservative reading).
			sections[i].end = body.End()
		}
	}
	if len(sections) == 0 {
		return
	}

	holding := func(pos token.Pos) (section, bool) {
		for _, s := range sections {
			if pos > s.start && pos < s.end {
				return s, true
			}
		}
		return section{}, false
	}

	// Pass 2: flag blocking operations inside a section.
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // own scope, handled above
		}
		what, pos, ok := blockingOp(pass, n)
		if !ok {
			return true
		}
		// A channel op that is a select communication clause is judged as
		// part of the select statement, not on its own.
		switch n.(type) {
		case *ast.SendStmt, *ast.UnaryExpr:
			for _, anc := range stack {
				if _, isComm := anc.(*ast.CommClause); isComm {
					return true
				}
			}
		}
		if s, held := holding(pos); held {
			pass.Reportf(pos, "%s while holding %s (critical section starts at line %d)",
				what, s.mutex, pass.Fset.Position(s.start).Line)
		}
		return true
	})
}

// blockingOp classifies a node as a blocking operation.
func blockingOp(pass *Pass, n ast.Node) (what string, pos token.Pos, ok bool) {
	info := pass.TypesInfo
	switch v := n.(type) {
	case *ast.CallExpr:
		c, okc := resolveCallee(info, v)
		if !okc {
			return "", token.NoPos, false
		}
		switch {
		case c.pkgPath == timePkg && c.recv == "" && c.name == "Sleep":
			return "time.Sleep", v.Pos(), true
		case c.is(syncPkg, "WaitGroup", "Wait"):
			return "sync.WaitGroup.Wait", v.Pos(), true
		case c.is(gpuPkg, "Event", "Wait"):
			return "gpu.Event.Wait", v.Pos(), true
		case c.is(gpuPkg, "Stream", "Synchronize"):
			return "gpu.Stream.Synchronize", v.Pos(), true
		case c.is(gpuPkg, "Device", "Synchronize"):
			return "gpu.Device.Synchronize", v.Pos(), true
		case c.is(gpuPkg, "Device", "AllocBlocking"):
			return "gpu.Device.AllocBlocking", v.Pos(), true
		}
	case *ast.SendStmt:
		return "channel send", v.Pos(), true
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			return "channel receive", v.Pos(), true
		}
	case *ast.RangeStmt:
		if tv, okt := info.Types[v.X]; okt {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range over channel", v.X.Pos(), true
			}
		}
	case *ast.SelectStmt:
		for _, cl := range v.Body.List {
			if cc, okc := cl.(*ast.CommClause); okc && cc.Comm == nil {
				return "", token.NoPos, false // has default: non-blocking
			}
		}
		return "select without default", v.Pos(), true
	}
	return "", token.NoPos, false
}
