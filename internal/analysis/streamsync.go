package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StreamSync checks that host code never reads the destination slice of
// an asynchronous device-to-host copy ((*gpu.Stream).MemcpyD2H) before
// the copy's completion event has resolved. A read is considered
// synchronized when, between the copy and the read, the function:
//
//   - calls Wait() on the event returned by the copy (including the
//     chained form s.MemcpyD2H(dst, buf).Wait()),
//   - receives from the event's Done() channel, or
//   - calls Synchronize() on any gpu.Stream or gpu.Device.
//
// Discarding the returned event with `_ =` (or ignoring it entirely)
// and then reading the destination is the classic async-D2H race the
// paper's pipelined implementation must avoid; this analyzer makes it a
// lint error. The check is lexical within one function: destinations
// that escape to other goroutines or functions are out of scope (and
// should be handed off together with their event).
var StreamSync = &Analyzer{
	Name: "streamsync",
	Doc:  "host reads of MemcpyD2H destinations must wait on the copy's event",
	Run:  runStreamSync,
}

// d2hCopy is one MemcpyD2H call found in a function.
type d2hCopy struct {
	pos     token.Pos
	dstObj  types.Object // base variable of the destination slice
	dstName string
	evObj   types.Object // event variable, nil if chained or discarded
	chained bool         // .Wait() called directly on the result
}

func runStreamSync(pass *Pass) error {
	for _, fd := range funcBodies(pass.Files) {
		streamSyncFunc(pass, fd.Body)
	}
	return nil
}

// isD2H reports whether call is (*gpu.Stream).MemcpyD2H.
func isD2H(info *types.Info, call *ast.CallExpr) bool {
	c, ok := resolveCallee(info, call)
	return ok && c.is(gpuPkg, "Stream", "MemcpyD2H")
}

func streamSyncFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var copies []*d2hCopy

	// Pass 1: locate the copies and how their events are bound.
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isD2H(info, call) || len(call.Args) < 1 {
			return true
		}
		cp := &d2hCopy{pos: call.Pos()}
		cp.dstObj = baseIdentObj(info, call.Args[0])
		cp.dstName = exprString(pass.Fset, call.Args[0])
		if cp.dstObj == nil {
			return true // destination not a local variable; out of scope
		}
		// How is the result used? Walk up one level.
		if len(stack) > 0 {
			switch parent := stack[len(stack)-1].(type) {
			case *ast.SelectorExpr:
				// s.MemcpyD2H(...).Wait() or .Done(): synchronized inline.
				if parent.Sel.Name == "Wait" || parent.Sel.Name == "Done" {
					cp.chained = true
				}
			case *ast.AssignStmt:
				for i, rhs := range parent.Rhs {
					if ast.Unparen(rhs) == ast.Expr(call) && i < len(parent.Lhs) {
						cp.evObj = identObj(info, parent.Lhs[i])
					}
				}
			}
		}
		copies = append(copies, cp)
		return true
	})
	if len(copies) == 0 {
		return
	}

	for _, cp := range copies {
		if cp.chained {
			continue
		}
		checkD2HReads(pass, body, cp)
	}
}

// checkD2HReads reports host accesses of cp's destination that are not
// preceded by a synchronization point. Writes into the destination count
// too: mutating a slice the DMA engine is still filling is the same race.
func checkD2HReads(pass *Pass, body *ast.BlockStmt, cp *d2hCopy) {
	info := pass.TypesInfo
	var syncs []token.Pos    // positions of synchronization events
	var accesses []token.Pos // positions of destination uses
	var rebinds []token.Pos  // full reassignments of the destination variable

	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			c, ok := resolveCallee(info, v)
			if !ok {
				return true
			}
			switch {
			case c.is(gpuPkg, "Event", "Wait"), c.is(gpuPkg, "Event", "Done"):
				// Only waits on THIS copy's event count (a wait on some
				// other event proves nothing about this transfer).
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
					if cp.evObj != nil && identObj(info, sel.X) == cp.evObj {
						syncs = append(syncs, v.Pos())
					}
				}
			case c.is(gpuPkg, "Stream", "Synchronize"), c.is(gpuPkg, "Device", "Synchronize"):
				syncs = append(syncs, v.Pos())
			}
		case *ast.Ident:
			if info.Uses[v] != cp.dstObj {
				return true
			}
			// Mentions inside a device copy op are the copy itself, not a
			// host access; a bare `dst = ...` rebinding detaches the
			// variable from the in-flight transfer.
			for i := len(stack) - 1; i >= 0; i-- {
				if call, ok := stack[i].(*ast.CallExpr); ok && isD2H(info, call) {
					return true
				}
				if as, ok := stack[i].(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if ast.Unparen(lhs) == ast.Expr(v) {
							rebinds = append(rebinds, v.Pos())
							return true
						}
					}
				}
			}
			accesses = append(accesses, v.Pos())
		}
		return true
	})

	between := func(events []token.Pos, pos token.Pos) bool {
		for _, s := range events {
			if s > cp.pos && s < pos {
				return true
			}
		}
		return false
	}
	for _, r := range accesses {
		if r <= cp.pos || between(syncs, r) || between(rebinds, r) {
			continue
		}
		if cp.evObj == nil {
			pass.Reportf(r, "host access of %s after MemcpyD2H at line %d whose event was discarded: call Wait on the event or Synchronize first",
				cp.dstName, pass.Fset.Position(cp.pos).Line)
		} else {
			pass.Reportf(r, "host access of %s before Wait on the MemcpyD2H event from line %d",
				cp.dstName, pass.Fset.Position(cp.pos).Line)
		}
	}
}
