package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPath checks that functions marked with the //stitchlint:hotpath
// directive do not call make. The marked functions are the steady-state
// per-pair loop of phase 1 — Displace and the FFT passes under it —
// whose contract (pinned by the AllocsPerRun tests) is zero heap
// allocations per pair after warm-up. Scratch must come from the
// per-aligner arenas or plan-held buffers, both sized in constructors,
// which are simply not marked.
//
// The check is lexical: closures inside a marked function are covered
// (they run on the hot path), and a marked function's callees are
// checked only if they carry the directive themselves. Amortized growth
// sites (arena scratch that grows once and then stabilizes) use the
// standard suppression:
//
//	//lint:allow hotpath <reason>
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //stitchlint:hotpath must not call make; use arena or plan-held scratch",
	Run:  runHotPath,
}

const hotPathDirective = "//stitchlint:hotpath"

// hasHotPathDirective reports whether the function's doc comment carries
// the directive.
func hasHotPathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotPathDirective) {
			return true
		}
	}
	return false
}

func runHotPath(pass *Pass) error {
	for _, fd := range funcBodies(pass.Files) {
		if !hasHotPathDirective(fd) {
			continue
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "make" {
				return true
			}
			pass.Reportf(call.Pos(),
				"make in hot-path function %s: the steady-state pair loop must not allocate (size scratch in a constructor)", name)
			return true
		})
	}
	return nil
}
