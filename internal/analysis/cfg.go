package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the flow-sensitive core of the analysis package: a
// lightweight intra-function control-flow graph over the typed AST plus
// a worklist fixpoint driver for bitset-valued dataflow facts. The
// path-sensitive analyzers (pairguard, lockorder) are built on it; the
// older lexical analyzers (streamsync, faultsite, hotpath) do not need
// it and keep their single-pass walks.
//
// The CFG is deliberately statement-grained: each basic block holds the
// statements (and branch-condition expressions) that execute on entry to
// it, in order, and analyzers interpret each node themselves. Branch
// edges carry the controlling condition and its polarity so analyzers
// can refine facts along `if err != nil` / `if v == nil` splits — the
// error-path sensitivity that separates these checks from their
// syntactic predecessors.

// termKind classifies how a block leaves the function, when it does.
type termKind int

const (
	termNone  termKind = iota // falls through to successors
	termReturn                // explicit return statement
	termPanic                 // explicit call of the panic builtin
	termEnd                   // implicit fall off the end of the body
	termGoto                  // unresolved goto: analyzed conservatively
)

// cfgEdge is one control transfer. When cond is non-nil the edge is the
// `branch` outcome of evaluating cond (true edge or false edge of an if
// or a loop condition); analyzers may use it to refine facts.
type cfgEdge struct {
	to     *cfgBlock
	cond   ast.Expr
	branch bool
}

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	nodes []ast.Node // statements and condition expressions, in order
	edges []cfgEdge
	term  termKind
	// termNode is the return statement or panic call for termReturn and
	// termPanic blocks; nil otherwise.
	termNode ast.Node
}

// addEdge links b to dst.
func (b *cfgBlock) addEdge(dst *cfgBlock, cond ast.Expr, branch bool) {
	b.edges = append(b.edges, cfgEdge{to: dst, cond: cond, branch: branch})
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	// end is the position reported for termEnd leaks: the body's closing
	// brace.
	end token.Pos
}

// loopCtx tracks the jump targets a loop (or switch/select, for break)
// establishes.
type loopCtx struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select contexts
}

// cfgBuilder incrementally constructs a funcCFG.
type cfgBuilder struct {
	g     *funcCFG
	loops []loopCtx
}

// buildCFG constructs the CFG of body. It handles the full statement
// grammar the repo uses — if/else chains, for and range loops,
// (type) switches with fallthrough, select, labeled break/continue,
// defer, go — and degrades conservatively on goto (the jump is treated
// as leaving the function without triggering exit checks, so goto-heavy
// code produces no false positives at the cost of coverage).
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{end: body.End()}}
	entry := b.newBlock()
	b.g.entry = entry
	last := b.stmts(entry, body.List)
	if last != nil {
		last.term = termEnd
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// stmts threads the statement list through cur, returning the block
// where control continues (nil when every path has left the function or
// jumped away).
func (b *cfgBuilder) stmts(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator; skip (go vet flags it).
			return nil
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// findLoop resolves a break/continue target. label is "" for the
// innermost context; continue skips non-loop (switch/select) contexts.
func (b *cfgBuilder) findLoop(label string, isContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if isContinue && lc.continueTo == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

// isPanicCall reports whether s is a statement-level call of the panic
// builtin.
func isPanicCall(s ast.Stmt) (ast.Node, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
		return call, true
	}
	return nil, false
}

// stmt appends one statement to cur, splitting blocks at control flow.
// label is the pending label when s was wrapped in a LabeledStmt.
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt, label string) *cfgBlock {
	switch st := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(cur, st.Stmt, st.Label.Name)

	case *ast.BlockStmt:
		return b.stmts(cur, st.List)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, st)
		cur.term = termReturn
		cur.termNode = st
		return nil

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if lc := b.findLoop(labelName(st.Label), false); lc != nil {
				cur.addEdge(lc.breakTo, nil, false)
			}
			return nil
		case token.CONTINUE:
			if lc := b.findLoop(labelName(st.Label), true); lc != nil {
				cur.addEdge(lc.continueTo, nil, false)
			}
			return nil
		case token.GOTO:
			cur.term = termGoto
			return nil
		case token.FALLTHROUGH:
			// Handled structurally by the switch builder; a stray
			// fallthrough would not compile.
			return cur
		}
		return cur

	case *ast.IfStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		cur.nodes = append(cur.nodes, st.Cond)
		join := b.newBlock()
		then := b.newBlock()
		cur.addEdge(then, st.Cond, true)
		if last := b.stmts(then, st.Body.List); last != nil {
			last.addEdge(join, nil, false)
		}
		if st.Else != nil {
			els := b.newBlock()
			cur.addEdge(els, st.Cond, false)
			if last := b.stmt(els, st.Else, ""); last != nil {
				last.addEdge(join, nil, false)
			}
		} else {
			cur.addEdge(join, st.Cond, false)
		}
		return join

	case *ast.ForStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		join := b.newBlock()
		cur.addEdge(head, nil, false)
		if st.Cond != nil {
			head.nodes = append(head.nodes, st.Cond)
			head.addEdge(body, st.Cond, true)
			head.addEdge(join, st.Cond, false)
		} else {
			head.addEdge(body, nil, false)
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join, continueTo: post})
		if last := b.stmts(body, st.Body.List); last != nil {
			last.addEdge(post, nil, false)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if st.Post != nil {
			post.nodes = append(post.nodes, st.Post)
		}
		post.addEdge(head, nil, false)
		return join

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		cur.addEdge(head, nil, false)
		// The range statement itself carries the iteration variables and
		// the ranged expression; analyzers see it once per analysis, which
		// is enough for gen/kill purposes.
		head.nodes = append(head.nodes, st)
		head.addEdge(body, nil, false)
		head.addEdge(join, nil, false)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join, continueTo: head})
		if last := b.stmts(body, st.Body.List); last != nil {
			last.addEdge(head, nil, false)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return join

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, clauses = sw.Init, sw.Body.List
			if sw.Tag != nil {
				tag = sw.Tag
			}
		case *ast.TypeSwitchStmt:
			init, clauses = sw.Init, sw.Body.List
			tag = sw.Assign
		}
		if init != nil {
			cur.nodes = append(cur.nodes, init)
		}
		if tag != nil {
			cur.nodes = append(cur.nodes, tag)
		}
		join := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join})
		hasDefault := false
		// Build case bodies first so fallthrough can link clause i to
		// clause i+1's body.
		bodies := make([]*cfgBlock, len(clauses))
		for i, cl := range clauses {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				continue
			}
			bodies[i] = b.newBlock()
			if len(cc.List) == 0 {
				hasDefault = true
			}
			for _, e := range cc.List {
				bodies[i].nodes = append(bodies[i].nodes, e)
			}
			cur.addEdge(bodies[i], nil, false)
		}
		for i, cl := range clauses {
			cc, ok := cl.(*ast.CaseClause)
			if !ok || bodies[i] == nil {
				continue
			}
			stmts := cc.Body
			fallsTo := -1
			if n := len(stmts); n > 0 {
				if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					stmts = stmts[:n-1]
					fallsTo = i + 1
				}
			}
			last := b.stmts(bodies[i], stmts)
			if last == nil {
				continue
			}
			if fallsTo >= 0 && fallsTo < len(bodies) && bodies[fallsTo] != nil {
				last.addEdge(bodies[fallsTo], nil, false)
			} else {
				last.addEdge(join, nil, false)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		if !hasDefault {
			cur.addEdge(join, nil, false)
		}
		return join

	case *ast.SelectStmt:
		join := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join})
		any := false
		for _, cl := range st.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			any = true
			blk := b.newBlock()
			if cc.Comm != nil {
				blk.nodes = append(blk.nodes, cc.Comm)
			}
			cur.addEdge(blk, nil, false)
			if last := b.stmts(blk, cc.Body); last != nil {
				last.addEdge(join, nil, false)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		if !any {
			// select{} blocks forever.
			cur.term = termEnd
			return nil
		}
		return join

	default:
		if node, ok := isPanicCall(s); ok {
			cur.nodes = append(cur.nodes, s)
			cur.term = termPanic
			cur.termNode = node
			return nil
		}
		// Straight-line statement: assignment, expression, declaration,
		// defer, go, send, inc/dec, empty.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// ---- bitset facts ----

// bitset is a fixed-width bit vector dataflow fact.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s bitset) clear(i int)    { s[i/64] &^= 1 << (i % 64) }
func (s bitset) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

func (s bitset) clone() bitset {
	c := make(bitset, len(s))
	copy(c, s)
	return c
}

func (s bitset) equal(o bitset) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// unionWith ors o into s, reporting whether s changed.
func (s bitset) unionWith(o bitset) bool {
	changed := false
	for i := range s {
		if n := s[i] | o[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// ---- fixpoint driver ----

// dataflow runs a forward may-analysis (union meet) to fixpoint over the
// CFG: in[entry] = init, in[B] = ⋃ out(pred edges), out = edge-refined
// block transfer. transfer interprets one node; refine (optional)
// adjusts a fact crossing a conditional edge. The result holds the
// stabilized in-facts per block, which observers re-walk.
type dataflow struct {
	cfg      *funcCFG
	nbits    int
	transfer func(n ast.Node, fact bitset)       // mutates fact in place
	refine   func(e cfgEdge, fact bitset) bitset // may return fact unchanged
	init     bitset
}

// run iterates to fixpoint and returns in-facts indexed by block index.
func (d *dataflow) run() []bitset {
	in := make([]bitset, len(d.cfg.blocks))
	for i := range in {
		in[i] = newBitset(d.nbits)
	}
	if d.init != nil {
		copy(in[d.cfg.entry.index], d.init)
	}
	work := []*cfgBlock{d.cfg.entry}
	queued := make([]bool, len(d.cfg.blocks))
	queued[d.cfg.entry.index] = true
	reached := make([]bool, len(d.cfg.blocks))
	reached[d.cfg.entry.index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.index] = false
		out := in[blk.index].clone()
		for _, n := range blk.nodes {
			d.transfer(n, out)
		}
		for _, e := range blk.edges {
			eo := out
			if d.refine != nil && e.cond != nil {
				eo = d.refine(e, out.clone())
			}
			changed := in[e.to.index].unionWith(eo)
			if first := !reached[e.to.index]; changed || first {
				reached[e.to.index] = true
				if !queued[e.to.index] {
					queued[e.to.index] = true
					work = append(work, e.to)
				}
			}
		}
	}
	return in
}
