package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ObsNames enforces that every span, track, counter, gauge, and
// histogram name handed to the obs layer is a constant from the
// internal/obs names registry (names.go). Dashboards, golden span-tree
// tests, and the chrome-trace consumers all key on these strings; a
// literal typed at a call site can drift from all three without any
// compiler or test noticing. The rules:
//
//   - A name argument must resolve to a string constant whose value is
//     declared in the obs package scope — either the obs constant itself
//     or a same-value alias (stitch re-exports several counter names).
//   - Concatenated names ("gpu.op." + name, QueuePrefix + q.Name + ...)
//     are judged by their leftmost leaf: registry prefix constants make
//     the dynamic remainder legitimate.
//   - Names forwarded through a parameter (faultPlan.op passes its name,
//     histogram, and counter parameters through to the recorder) shift
//     the obligation to the forwarding function's call sites, computed
//     as an intra-package fixpoint.
//
// _test.go files are exempt: tests exercise the recorder with throwaway
// names by design.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "span/track/metric names passed to internal/obs must be registry constants from internal/obs/names.go",
	Run:  runObsNames,
}

// obsNameArgs maps obs API methods to the argument indexes that carry
// registry names.
func obsNameArgs(c callee) []int {
	if c.pkgPath != obsPkg {
		return nil
	}
	switch {
	case c.recv == "Recorder" && c.name == "StartSpan",
		c.recv == "Span" && c.name == "ChildOn":
		return []int{0, 1} // track, name
	case c.recv == "Recorder" && (c.name == "Counter" || c.name == "Gauge" ||
		c.name == "Histogram" || c.name == "CounterValue"),
		c.recv == "Span" && c.name == "Child":
		return []int{0}
	}
	return nil
}

// nameParam identifies one parameter position of one function that must
// receive a registry name.
type nameParam struct {
	fn  *types.Func
	idx int
}

func runObsNames(pass *Pass) error {
	// The registry: every string constant in the obs package scope. The
	// scope comes from the callee's own *types.Func, so packages that
	// reach a Recorder through another package's field still resolve it.
	var registry map[string]bool
	loadRegistry := func(obs *types.Package) {
		if registry != nil {
			return
		}
		registry = map[string]bool{}
		scope := obs.Scope()
		for _, nm := range scope.Names() {
			if c, ok := scope.Lookup(nm).(*types.Const); ok {
				if c.Val().Kind() == constant.String {
					registry[constant.StringVal(c.Val())] = true
				}
			}
		}
	}

	// Parameter-object → (function, index) for every function declared in
	// this package, so forwarded names can be traced to their sources.
	paramOf := map[types.Object]nameParam{}
	declIdx := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			declIdx[fn] = true
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				paramOf[sig.Params().At(i)] = nameParam{fn: fn, idx: i}
			}
		}
	}

	type pending struct {
		pos  ast.Expr
		kind string // "literal" or "constant"
		text string
	}
	// judge inspects one name argument. It reports a violation, defers to
	// the fixpoint (returning the parameter it forwards), or accepts.
	var judge func(e ast.Expr) (*nameParam, *pending)
	judge = func(e ast.Expr) (*nameParam, *pending) {
		e = ast.Unparen(e)
		switch v := e.(type) {
		case *ast.BinaryExpr:
			// Leftmost-leaf rule: a registry prefix sanctions the rest.
			return judge(v.X)
		case *ast.BasicLit:
			return nil, &pending{pos: e, kind: "literal", text: v.Value}
		case *ast.Ident, *ast.SelectorExpr:
			var obj types.Object
			if id, ok := v.(*ast.Ident); ok {
				obj = pass.TypesInfo.Uses[id]
			} else {
				obj = pass.TypesInfo.Uses[v.(*ast.SelectorExpr).Sel]
			}
			switch o := obj.(type) {
			case *types.Const:
				if o.Val().Kind() != constant.String {
					return nil, nil
				}
				if registry[constant.StringVal(o.Val())] {
					return nil, nil
				}
				return nil, &pending{pos: e, kind: "constant",
					text: o.Name() + " = " + o.Val().ExactString()}
			case *types.Var:
				if np, ok := paramOf[o]; ok {
					return &np, nil
				}
			}
		}
		// Dynamic names (locals, call results) are beyond static judgment;
		// the registry rule is enforced where the string is born.
		return nil, nil
	}

	// Name positions that must be satisfied: the obs API itself, plus the
	// package's own forwarding functions, discovered iteratively. Each
	// fixpoint round may revisit call sites, so violations collect into a
	// position-keyed map and report once after convergence.
	tracked := map[nameParam]bool{}
	violations := map[ast.Expr]*pending{}
	testFile := func(e ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(e.Pos()).Filename, "_test.go")
	}

	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || testFile(call) {
					return true
				}
				var idxs []int
				if c, okc := resolveCallee(pass.TypesInfo, call); okc {
					idxs = obsNameArgs(c)
					if len(idxs) > 0 {
						fn, _ := pass.TypesInfo.Uses[calleeIdent(call)].(*types.Func)
						if fn != nil && fn.Pkg() != nil {
							loadRegistry(fn.Pkg())
						}
					}
				}
				if len(idxs) == 0 {
					// A call to one of this package's own forwarding funcs?
					if fn, okf := resolveCalleeObj(pass.TypesInfo, call); okf && declIdx[fn] {
						for np := range tracked {
							if np.fn == fn {
								idxs = append(idxs, np.idx)
							}
						}
					}
				}
				for _, i := range idxs {
					if i >= len(call.Args) {
						continue
					}
					np, p := judge(call.Args[i])
					if p != nil && registry != nil {
						violations[p.pos] = p
					}
					if np != nil && !tracked[*np] {
						tracked[*np] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	for _, p := range violations {
		pass.Reportf(p.pos.Pos(),
			"obs name %s %s is not in the internal/obs names registry — add it to internal/obs/names.go or use the existing constant",
			p.kind, p.text)
	}
	return nil
}

// calleeIdent returns the identifier naming the called function or
// method, for package-of-callee resolution.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel
	case *ast.Ident:
		return fun
	}
	return nil
}
