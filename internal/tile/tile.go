// Package tile defines the in-memory representation of microscope image
// tiles, the grid geometry that relates them, and the fused statistics
// kernels (mean, norm, dot product) that the cross-correlation stage
// needs. The original system hand-coded these with SSE intrinsics; here
// they are tight scalar loops the Go compiler can keep in registers.
package tile

import (
	"fmt"
	"math"
)

// Gray16 is a dense row-major 16-bit grayscale image — the native pixel
// format of the microscope cameras in the paper (1392×1040 16-bit tiles).
type Gray16 struct {
	W, H int
	Pix  []uint16 // len W*H, row-major
}

// NewGray16 allocates a zeroed W×H image.
func NewGray16(w, h int) *Gray16 {
	return &Gray16{W: w, H: h, Pix: make([]uint16, w*h)}
}

// At returns the pixel at (x, y) with no bounds checking beyond the
// slice's own.
func (g *Gray16) At(x, y int) uint16 { return g.Pix[y*g.W+x] }

// Set writes the pixel at (x, y).
func (g *Gray16) Set(x, y int, v uint16) { g.Pix[y*g.W+x] = v }

// Bytes reports the image payload size in bytes (2 per pixel).
func (g *Gray16) Bytes() int { return 2 * len(g.Pix) }

// Clone returns a deep copy.
func (g *Gray16) Clone() *Gray16 {
	c := NewGray16(g.W, g.H)
	copy(c.Pix, g.Pix)
	return c
}

// SubRect copies the rectangle with top-left (x0, y0) and dimensions
// (w, h) into a fresh image. It panics if the rectangle exceeds the
// bounds; callers derive rectangles from validated overlap geometry.
func (g *Gray16) SubRect(x0, y0, w, h int) *Gray16 {
	if x0 < 0 || y0 < 0 || x0+w > g.W || y0+h > g.H || w < 0 || h < 0 {
		panic(fmt.Sprintf("tile: SubRect(%d,%d,%d,%d) outside %dx%d", x0, y0, w, h, g.W, g.H))
	}
	out := NewGray16(w, h)
	for r := 0; r < h; r++ {
		copy(out.Pix[r*w:(r+1)*w], g.Pix[(y0+r)*g.W+x0:(y0+r)*g.W+x0+w])
	}
	return out
}

// ToComplex converts pixel values to a complex field for FFT input. dst
// must have length W*H.
func (g *Gray16) ToComplex(dst []complex128) error {
	if len(dst) != len(g.Pix) {
		return fmt.Errorf("tile: destination has %d elements, image has %d", len(dst), len(g.Pix))
	}
	for i, v := range g.Pix {
		dst[i] = complex(float64(v), 0)
	}
	return nil
}

// ToFloat converts pixel values to float64. dst must have length W*H.
func (g *Gray16) ToFloat(dst []float64) error {
	if len(dst) != len(g.Pix) {
		return fmt.Errorf("tile: destination has %d elements, image has %d", len(dst), len(g.Pix))
	}
	for i, v := range g.Pix {
		dst[i] = float64(v)
	}
	return nil
}

// Mean returns the average pixel value.
func (g *Gray16) Mean() float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range g.Pix {
		s += float64(v)
	}
	return s / float64(len(g.Pix))
}

// Stats computes, in one pass, the statistics the CCF kernel needs for a
// rectangular region: the sum and the sum of squares.
func (g *Gray16) Stats(x0, y0, w, h int) (sum, sumSq float64) {
	for r := 0; r < h; r++ {
		row := g.Pix[(y0+r)*g.W+x0 : (y0+r)*g.W+x0+w]
		for _, v := range row {
			f := float64(v)
			sum += f
			sumSq += f * f
		}
	}
	return sum, sumSq
}

// NCCRegion computes the normalized cross-correlation factor between the
// w×h region of a at (ax, ay) and the w×h region of b at (bx, by):
//
//	ccf = Σ(a-ā)(b-b̄) / (‖a-ā‖·‖b-b̄‖)
//
// using the single-pass expansion Σab - n·ā·b̄ over raw moments. This is
// the ccf() routine of the paper's Fig 3, fused into one traversal of both
// regions (the original used SSE intrinsics for the same reason).
// Degenerate regions (zero variance) yield -1 so they never win the
// four-way max in PCIAM.
func NCCRegion(a *Gray16, ax, ay int, b *Gray16, bx, by, w, h int) float64 {
	if w <= 0 || h <= 0 {
		return -1
	}
	n := float64(w * h)
	var sa, sb, saa, sbb, sab float64
	for r := 0; r < h; r++ {
		ra := a.Pix[(ay+r)*a.W+ax : (ay+r)*a.W+ax+w]
		rb := b.Pix[(by+r)*b.W+bx : (by+r)*b.W+bx+w]
		for i := 0; i < w; i++ {
			fa := float64(ra[i])
			fb := float64(rb[i])
			sa += fa
			sb += fb
			saa += fa * fa
			sbb += fb * fb
			sab += fa * fb
		}
	}
	num := sab - sa*sb/n
	da := saa - sa*sa/n
	db := sbb - sb*sb/n
	if da <= 0 || db <= 0 {
		return -1
	}
	return num / math.Sqrt(da*db)
}
