package tile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGray16Basics(t *testing.T) {
	g := NewGray16(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Fatalf("bad dims: %dx%d len %d", g.W, g.H, len(g.Pix))
	}
	g.Set(2, 1, 777)
	if g.At(2, 1) != 777 {
		t.Errorf("At(2,1) = %d", g.At(2, 1))
	}
	if g.Bytes() != 24 {
		t.Errorf("Bytes() = %d, want 24", g.Bytes())
	}
	c := g.Clone()
	c.Set(0, 0, 1)
	if g.At(0, 0) == 1 {
		t.Error("Clone shares storage")
	}
}

func TestSubRect(t *testing.T) {
	g := NewGray16(5, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 5; x++ {
			g.Set(x, y, uint16(10*y+x))
		}
	}
	s := g.SubRect(1, 2, 3, 2)
	if s.W != 3 || s.H != 2 {
		t.Fatalf("SubRect dims %dx%d", s.W, s.H)
	}
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			if s.At(x, y) != g.At(x+1, y+2) {
				t.Errorf("SubRect(%d,%d) = %d, want %d", x, y, s.At(x, y), g.At(x+1, y+2))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds SubRect should panic")
		}
	}()
	g.SubRect(3, 3, 4, 4)
}

func TestConversions(t *testing.T) {
	g := NewGray16(3, 2)
	for i := range g.Pix {
		g.Pix[i] = uint16(i * 100)
	}
	cx := make([]complex128, 6)
	if err := g.ToComplex(cx); err != nil {
		t.Fatal(err)
	}
	for i, v := range cx {
		if real(v) != float64(i*100) || imag(v) != 0 {
			t.Errorf("complex[%d] = %v", i, v)
		}
	}
	fs := make([]float64, 6)
	if err := g.ToFloat(fs); err != nil {
		t.Fatal(err)
	}
	for i, v := range fs {
		if v != float64(i*100) {
			t.Errorf("float[%d] = %v", i, v)
		}
	}
	if err := g.ToComplex(make([]complex128, 5)); err == nil {
		t.Error("size mismatch should fail")
	}
	if err := g.ToFloat(make([]float64, 7)); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestMeanAndStats(t *testing.T) {
	g := NewGray16(2, 2)
	g.Pix = []uint16{1, 2, 3, 4}
	if m := g.Mean(); m != 2.5 {
		t.Errorf("Mean = %g", m)
	}
	sum, sumSq := g.Stats(0, 0, 2, 2)
	if sum != 10 || sumSq != 30 {
		t.Errorf("Stats = %g, %g", sum, sumSq)
	}
	sum, sumSq = g.Stats(1, 0, 1, 2)
	if sum != 6 || sumSq != 20 {
		t.Errorf("column Stats = %g, %g", sum, sumSq)
	}
	empty := NewGray16(0, 0)
	if empty.Mean() != 0 {
		t.Error("empty image mean should be 0")
	}
}

// naiveNCC is the two-pass textbook version of Fig 3's ccf().
func naiveNCC(a *Gray16, ax, ay int, b *Gray16, bx, by, w, h int) float64 {
	n := float64(w * h)
	var ma, mb float64
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			ma += float64(a.At(ax+c, ay+r))
			mb += float64(b.At(bx+c, by+r))
		}
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			fa := float64(a.At(ax+c, ay+r)) - ma
			fb := float64(b.At(bx+c, by+r)) - mb
			num += fa * fb
			da += fa * fa
			db += fb * fb
		}
	}
	if da <= 0 || db <= 0 {
		return -1
	}
	return num / math.Sqrt(da*db)
}

func TestNCCRegionMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewGray16(16, 12)
	b := NewGray16(16, 12)
	for i := range a.Pix {
		a.Pix[i] = uint16(rng.Intn(65536))
		b.Pix[i] = uint16(rng.Intn(65536))
	}
	cases := []struct{ ax, ay, bx, by, w, h int }{
		{0, 0, 0, 0, 16, 12},
		{4, 3, 1, 2, 8, 6},
		{15, 11, 0, 0, 1, 1},
		{0, 6, 8, 0, 8, 6},
	}
	for _, tc := range cases {
		got := NCCRegion(a, tc.ax, tc.ay, b, tc.bx, tc.by, tc.w, tc.h)
		want := naiveNCC(a, tc.ax, tc.ay, b, tc.bx, tc.by, tc.w, tc.h)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%+v: got %g want %g", tc, got, want)
		}
	}
}

func TestNCCRegionProperties(t *testing.T) {
	// Perfect self-correlation = 1; constant region = -1 (degenerate);
	// anti-correlated = -1.
	g := NewGray16(8, 8)
	rng := rand.New(rand.NewSource(2))
	for i := range g.Pix {
		g.Pix[i] = uint16(rng.Intn(1000))
	}
	if c := NCCRegion(g, 0, 0, g, 0, 0, 8, 8); math.Abs(c-1) > 1e-12 {
		t.Errorf("self NCC = %g, want 1", c)
	}
	flat := NewGray16(8, 8)
	for i := range flat.Pix {
		flat.Pix[i] = 500
	}
	if c := NCCRegion(flat, 0, 0, g, 0, 0, 8, 8); c != -1 {
		t.Errorf("degenerate NCC = %g, want -1", c)
	}
	// Affine anti-correlation: b = 1000 - a.
	inv := NewGray16(8, 8)
	for i := range inv.Pix {
		inv.Pix[i] = 1000 - g.Pix[i]
	}
	if c := NCCRegion(g, 0, 0, inv, 0, 0, 8, 8); math.Abs(c+1) > 1e-9 {
		t.Errorf("anti NCC = %g, want -1", c)
	}
	if c := NCCRegion(g, 0, 0, g, 0, 0, 0, 5); c != -1 {
		t.Errorf("empty region NCC = %g, want -1", c)
	}
}

func TestNCCBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewGray16(6, 6)
		b := NewGray16(6, 6)
		for i := range a.Pix {
			a.Pix[i] = uint16(rng.Intn(65536))
			b.Pix[i] = uint16(rng.Intn(65536))
		}
		c := NCCRegion(a, 0, 0, b, 0, 0, 6, 6)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGridGeometry(t *testing.T) {
	g := Grid{Rows: 3, Cols: 4, TileW: 10, TileH: 8, OverlapX: 0.2, OverlapY: 0.25}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTiles() != 12 {
		t.Errorf("NumTiles = %d", g.NumTiles())
	}
	// 2nm - n - m with n=3, m=4: 24-7 = 17.
	if g.NumPairs() != 17 {
		t.Errorf("NumPairs = %d, want 17", g.NumPairs())
	}
	if got := len(g.Pairs()); got != 17 {
		t.Errorf("len(Pairs()) = %d, want 17", got)
	}
	for i := 0; i < g.NumTiles(); i++ {
		if g.Index(g.CoordOf(i)) != i {
			t.Errorf("Index/CoordOf roundtrip failed at %d", i)
		}
	}
	if g.In(Coord{3, 0}) || g.In(Coord{0, 4}) || g.In(Coord{-1, 0}) {
		t.Error("In accepts out-of-range coords")
	}
	if !g.In(Coord{2, 3}) {
		t.Error("In rejects valid coord")
	}
}

func TestGridValidateErrors(t *testing.T) {
	bad := []Grid{
		{Rows: 0, Cols: 4, TileW: 8, TileH: 8},
		{Rows: 2, Cols: 2, TileW: 0, TileH: 8},
		{Rows: 2, Cols: 2, TileW: 8, TileH: 8, OverlapX: 1.0},
		{Rows: 2, Cols: 2, TileW: 8, TileH: 8, OverlapY: -0.1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestPairNeighbor(t *testing.T) {
	p := Pair{Coord: Coord{2, 3}, Dir: West}
	if n := p.Neighbor(); n != (Coord{2, 2}) {
		t.Errorf("west neighbor = %v", n)
	}
	p = Pair{Coord: Coord{2, 3}, Dir: North}
	if n := p.Neighbor(); n != (Coord{1, 3}) {
		t.Errorf("north neighbor = %v", n)
	}
}

func TestPairsOf(t *testing.T) {
	g := Grid{Rows: 3, Cols: 3, TileW: 4, TileH: 4}
	// Corner (0,0): only east tile's west pair and south tile's north pair.
	ps := g.PairsOf(Coord{0, 0})
	if len(ps) != 2 {
		t.Fatalf("corner has %d pairs, want 2", len(ps))
	}
	// Center (1,1): all four.
	ps = g.PairsOf(Coord{1, 1})
	if len(ps) != 4 {
		t.Fatalf("center has %d pairs, want 4", len(ps))
	}
	// Each pair listed must involve the tile.
	for _, p := range ps {
		if p.Coord != (Coord{1, 1}) && p.Neighbor() != (Coord{1, 1}) {
			t.Errorf("pair %+v does not involve (1,1)", p)
		}
	}
	// Sum over all tiles of PairsOf counts each pair exactly twice.
	total := 0
	for i := 0; i < g.NumTiles(); i++ {
		total += len(g.PairsOf(g.CoordOf(i)))
	}
	if total != 2*g.NumPairs() {
		t.Errorf("sum of PairsOf = %d, want %d", total, 2*g.NumPairs())
	}
}

func TestNominalDisplacement(t *testing.T) {
	g := Grid{Rows: 2, Cols: 2, TileW: 100, TileH: 80, OverlapX: 0.1, OverlapY: 0.25}
	w := g.NominalDisplacement(West)
	if w.X != 90 || w.Y != 0 {
		t.Errorf("west nominal = %+v", w)
	}
	n := g.NominalDisplacement(North)
	if n.X != 0 || n.Y != 60 {
		t.Errorf("north nominal = %+v", n)
	}
}
