package tile

import "fmt"

// Coord addresses a tile within a grid: Row ∈ [0, Rows), Col ∈ [0, Cols).
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Dir identifies a neighbor relationship between adjacent tiles.
type Dir int

const (
	// West relates a tile to its left neighbor (east-west pair).
	West Dir = iota
	// North relates a tile to its upper neighbor (north-south pair).
	North
)

func (d Dir) String() string {
	if d == West {
		return "west"
	}
	return "north"
}

// Pair is an adjacent tile pair: the displacement is computed between
// Coord and its neighbor in direction Dir (the paper computes
// translations-west[I] = pciam(I, I#west) and
// translations-north[I] = pciam(I#north, I)).
type Pair struct {
	Coord Coord
	Dir   Dir
}

// Neighbor returns the coordinate of the pair's other tile.
func (p Pair) Neighbor() Coord {
	if p.Dir == West {
		return Coord{Row: p.Coord.Row, Col: p.Coord.Col - 1}
	}
	return Coord{Row: p.Coord.Row - 1, Col: p.Coord.Col}
}

// Grid describes the tile layout of one plate scan.
type Grid struct {
	Rows, Cols   int
	TileW, TileH int
	// OverlapX and OverlapY are the nominal overlap fractions
	// (microscope presets); the actual per-pair displacement deviates
	// from these by stage jitter, which is what stitching recovers.
	OverlapX, OverlapY float64
}

// Validate checks the grid parameters.
func (g Grid) Validate() error {
	if g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("tile: grid %dx%d must be positive", g.Rows, g.Cols)
	}
	if g.TileW <= 0 || g.TileH <= 0 {
		return fmt.Errorf("tile: tile size %dx%d must be positive", g.TileW, g.TileH)
	}
	if g.OverlapX < 0 || g.OverlapX >= 1 || g.OverlapY < 0 || g.OverlapY >= 1 {
		return fmt.Errorf("tile: overlap fractions (%g, %g) must be in [0,1)", g.OverlapX, g.OverlapY)
	}
	return nil
}

// NumTiles returns Rows*Cols.
func (g Grid) NumTiles() int { return g.Rows * g.Cols }

// NumPairs returns the number of adjacent pairs, 2nm - n - m: every tile
// except column 0 has a west pair; every tile except row 0 has a north
// pair.
func (g Grid) NumPairs() int { return 2*g.Rows*g.Cols - g.Rows - g.Cols }

// Index linearizes a coordinate (row-major).
func (g Grid) Index(c Coord) int { return c.Row*g.Cols + c.Col }

// CoordOf inverts Index.
func (g Grid) CoordOf(i int) Coord { return Coord{Row: i / g.Cols, Col: i % g.Cols} }

// In reports whether the coordinate lies inside the grid.
func (g Grid) In(c Coord) bool {
	return c.Row >= 0 && c.Row < g.Rows && c.Col >= 0 && c.Col < g.Cols
}

// Pairs returns all adjacent pairs in row-major tile order.
func (g Grid) Pairs() []Pair {
	ps := make([]Pair, 0, g.NumPairs())
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if c > 0 {
				ps = append(ps, Pair{Coord: Coord{r, c}, Dir: West})
			}
			if r > 0 {
				ps = append(ps, Pair{Coord: Coord{r, c}, Dir: North})
			}
		}
	}
	return ps
}

// PairsOf returns the pairs that involve tile c (up to 4: its own west and
// north pairs, plus the west pair of its east neighbor and the north pair
// of its south neighbor). Used for reference counting: a tile's transform
// can be freed when all PairsOf are done.
func (g Grid) PairsOf(c Coord) []Pair {
	var ps []Pair
	if c.Col > 0 {
		ps = append(ps, Pair{Coord: c, Dir: West})
	}
	if c.Row > 0 {
		ps = append(ps, Pair{Coord: c, Dir: North})
	}
	if c.Col+1 < g.Cols {
		ps = append(ps, Pair{Coord: Coord{c.Row, c.Col + 1}, Dir: West})
	}
	if c.Row+1 < g.Rows {
		ps = append(ps, Pair{Coord: Coord{c.Row + 1, c.Col}, Dir: North})
	}
	return ps
}

// Displacement is the result of one pair-wise PCIAM computation: the
// translation (X, Y) of the pair's tile relative to its neighbor, and the
// winning normalized cross-correlation factor in [-1, 1].
type Displacement struct {
	X, Y int
	Corr float64
}

// NominalDisplacement returns the expected translation for a pair given
// only the preset overlap fractions — the starting point the microscope
// aims for and stitching corrects.
func (g Grid) NominalDisplacement(d Dir) Displacement {
	if d == West {
		return Displacement{X: int(float64(g.TileW) * (1 - g.OverlapX)), Y: 0}
	}
	return Displacement{X: 0, Y: int(float64(g.TileH) * (1 - g.OverlapY))}
}
