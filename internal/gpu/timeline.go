package gpu

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one profiled command execution.
type Span struct {
	Stream string
	Kind   string // memcpyH2D, memcpyD2H, kernel
	Name   string // fft2d, ncc, maxabs, H2D, ...
	Start  time.Duration
	End    time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Timeline records command executions, the stand-in for the NVIDIA Visual
// Profiler traces in the paper's Figs 7 and 9.
type Timeline struct {
	epoch time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTimeline creates a recorder with the given epoch.
func NewTimeline(epoch time.Time) *Timeline { return &Timeline{epoch: epoch} }

// Record appends a span.
func (t *Timeline) Record(s Span) {
	if s.Name == "sync" {
		return // synchronization markers are not profiler-visible work
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of all recorded spans ordered by start time.
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Utilization reports, for each command kind, the fraction of the window
// [from, to) during which at least one command of that kind was
// executing. The paper's core diagnosis reads directly off this number:
// Simple-GPU shows sparse kernel rows with gaps; Pipelined-GPU shows a
// dense kernel row.
func (t *Timeline) Utilization(kind string, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	type edge struct {
		at    time.Duration
		delta int
	}
	var edges []edge
	for _, s := range t.Spans() {
		if s.Kind != kind || s.End <= from || s.Start >= to {
			continue
		}
		st, en := s.Start, s.End
		if st < from {
			st = from
		}
		if en > to {
			en = to
		}
		edges = append(edges, edge{st, +1}, edge{en, -1})
	}
	if len(edges) == 0 {
		return 0
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta
	})
	var busy time.Duration
	depth := 0
	var last time.Duration
	for _, e := range edges {
		if depth > 0 {
			busy += e.at - last
		}
		depth += e.delta
		last = e.at
	}
	return float64(busy) / float64(to-from)
}

// GapCount reports how many inter-span gaps longer than threshold occur
// in the given kind's row — the "gaps between kernel invocations" the
// paper's Fig 7 profile exposes.
func (t *Timeline) GapCount(kind string, threshold time.Duration) int {
	var spans []Span
	for _, s := range t.Spans() {
		if s.Kind == kind {
			spans = append(spans, s)
		}
	}
	gaps := 0
	for i := 1; i < len(spans); i++ {
		if spans[i].Start-spans[i-1].End > threshold {
			gaps++
		}
	}
	return gaps
}

// Render draws an ASCII timeline: one row per (stream, kind), time
// bucketed into width columns. It is the textual analogue of the
// profiler screenshots.
func (t *Timeline) Render(width int) string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	if width <= 0 {
		width = 100
	}
	start := spans[0].Start
	end := spans[0].End
	for _, s := range spans {
		if s.End > end {
			end = s.End
		}
	}
	total := end - start
	if total <= 0 {
		total = 1
	}
	type rowKey struct{ stream, kind string }
	rows := map[rowKey][]bool{}
	var order []rowKey
	for _, s := range spans {
		k := rowKey{s.Stream, s.Kind}
		if _, ok := rows[k]; !ok {
			rows[k] = make([]bool, width)
			order = append(order, k)
		}
		b0 := int(int64(s.Start-start) * int64(width) / int64(total))
		b1 := int(int64(s.End-start) * int64(width) / int64(total))
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			rows[k][b] = true
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].stream != order[j].stream {
			return order[i].stream < order[j].stream
		}
		return order[i].kind < order[j].kind
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %v – %v (%v total, %d spans)\n", start, end, total, len(spans))
	for _, k := range order {
		cells := rows[k]
		fmt.Fprintf(&sb, "%-28s |", k.stream+"/"+k.kind)
		for _, on := range cells {
			if on {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}
