package gpu

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"hybridstitch/internal/obs"
)

// Span is one profiled command execution.
type Span struct {
	Stream string
	Kind   string // memcpyH2D, memcpyD2H, kernel
	Name   string // fft2d, ncc, maxabs, H2D, ...
	Start  time.Duration
	End    time.Duration
	// Seq is the record-order sequence assigned by the obs recorder under
	// its ring lock. Dispatchers record in queue order, so per-stream Seq
	// is strictly increasing — the tie-breaker that keeps concurrent
	// streams' events correctly ordered when coarse-clock timestamps
	// collide (timestamps alone were the old out-of-order bug).
	Seq uint64
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Timeline records command executions, the stand-in for the NVIDIA Visual
// Profiler traces in the paper's Figs 7 and 9. It is a device-scoped view
// over an obs.Recorder: each span lands on the track
// "<device>/<stream>/<kind>" (or "<stream>/<kind>" for a private
// recorder), so a recorder shared with the stitch layer carries GPU and
// CPU spans on one clock.
type Timeline struct {
	rec    *obs.Recorder
	own    bool // recorder created by (and closed with) this timeline
	epoch  time.Time
	device string
}

// NewTimeline creates a recorder with the given epoch. The timeline owns
// its obs recorder; call Close to release its flusher goroutine.
func NewTimeline(epoch time.Time) *Timeline {
	return &Timeline{rec: obs.New(), own: true, epoch: epoch}
}

// newTimeline wraps a shared recorder in a device-scoped view. The caller
// keeps ownership of the recorder.
func newTimeline(rec *obs.Recorder, device string) *Timeline {
	return &Timeline{rec: rec, epoch: rec.Epoch(), device: device}
}

// Close releases the timeline's recorder if it owns one. Idempotent; a
// timeline over a shared recorder leaves it untouched.
func (t *Timeline) Close() {
	if t == nil || !t.own {
		return
	}
	t.rec.Close()
}

// trackOf maps a (stream, kind) pair to its recorder track.
func (t *Timeline) trackOf(stream, kind string) string {
	if t.device == "" {
		return stream + "/" + kind
	}
	return t.device + "/" + stream + "/" + kind
}

// Record appends a span.
func (t *Timeline) Record(s Span) {
	if s.Name == "sync" {
		return // synchronization markers are not profiler-visible work
	}
	t.rec.RecordComplete(t.trackOf(s.Stream, s.Kind), s.Name, s.Start, s.End)
}

// observeOp feeds the per-operation latency histogram ("gpu.op.fft2d",
// "gpu.op.H2D", ...) shared with the rest of the run's metrics.
func (t *Timeline) observeOp(name string, d time.Duration) {
	if t == nil || name == "sync" {
		return
	}
	t.rec.Histogram(obs.HistGPUOpPrefix + name).ObserveDuration(d)
}

// Spans returns a copy of this device's recorded spans ordered by start
// time, with record sequence breaking ties so each stream's events appear
// in dispatch order.
func (t *Timeline) Spans() []Span {
	prefix := ""
	if t.device != "" {
		prefix = t.device + "/"
	}
	var out []Span
	for _, cs := range t.rec.Spans() {
		if !strings.HasPrefix(cs.Track, prefix) {
			continue
		}
		rest := cs.Track[len(prefix):]
		i := strings.LastIndex(rest, "/")
		if i < 0 {
			continue // not a stream/kind track (e.g. a stitch-layer span)
		}
		out = append(out, Span{
			Stream: rest[:i], Kind: rest[i+1:], Name: cs.Name,
			Start: cs.Start, End: cs.End, Seq: cs.Seq,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Utilization reports, for each command kind, the fraction of the window
// [from, to) during which at least one command of that kind was
// executing. The paper's core diagnosis reads directly off this number:
// Simple-GPU shows sparse kernel rows with gaps; Pipelined-GPU shows a
// dense kernel row.
func (t *Timeline) Utilization(kind string, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	type edge struct {
		at    time.Duration
		delta int
	}
	var edges []edge
	for _, s := range t.Spans() {
		if s.Kind != kind || s.End <= from || s.Start >= to {
			continue
		}
		st, en := s.Start, s.End
		if st < from {
			st = from
		}
		if en > to {
			en = to
		}
		edges = append(edges, edge{st, +1}, edge{en, -1})
	}
	if len(edges) == 0 {
		return 0
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta
	})
	var busy time.Duration
	depth := 0
	var last time.Duration
	for _, e := range edges {
		if depth > 0 {
			busy += e.at - last
		}
		depth += e.delta
		last = e.at
	}
	return float64(busy) / float64(to-from)
}

// GapCount reports how many inter-span gaps longer than threshold occur
// in the given kind's row — the "gaps between kernel invocations" the
// paper's Fig 7 profile exposes.
func (t *Timeline) GapCount(kind string, threshold time.Duration) int {
	var spans []Span
	for _, s := range t.Spans() {
		if s.Kind == kind {
			spans = append(spans, s)
		}
	}
	gaps := 0
	for i := 1; i < len(spans); i++ {
		if spans[i].Start-spans[i-1].End > threshold {
			gaps++
		}
	}
	return gaps
}

// Render draws an ASCII timeline: one row per (stream, kind), time
// bucketed into width columns. It is the textual analogue of the
// profiler screenshots.
func (t *Timeline) Render(width int) string {
	return obs.RenderTracks(t.completedSpans(), width)
}

// WriteTrace serializes the timeline as Chrome Trace Event JSON. Each
// (stream, kind) pair becomes a named thread row under one process per
// device.
func (t *Timeline) WriteTrace(w io.Writer, deviceName string) error {
	return obs.EncodeChromeTrace(w, t.completedSpans(), map[string]string{"device": deviceName})
}

// completedSpans converts this device's spans to obs form with
// "stream/kind" tracks (device prefix dropped: the exporter names the
// device in metadata instead).
func (t *Timeline) completedSpans() []obs.CompletedSpan {
	spans := t.Spans()
	out := make([]obs.CompletedSpan, len(spans))
	for i, s := range spans {
		out[i] = obs.CompletedSpan{
			ID: uint64(i + 1), Seq: s.Seq,
			Track: fmt.Sprintf("%s/%s", s.Stream, s.Kind),
			Name:  s.Name, Start: s.Start, End: s.End,
		}
	}
	return out
}
