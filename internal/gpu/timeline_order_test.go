package gpu

import (
	"fmt"
	"testing"
	"time"

	"hybridstitch/internal/obs"
)

// newTestRecorder builds an obs recorder closed at test end (the gpu
// package's TestMain is leaktest-wired).
func newTestRecorder(t *testing.T) *obs.Recorder {
	t.Helper()
	rec := obs.New()
	t.Cleanup(rec.Close)
	return rec
}

// TestTimelineOrderUnderClockCollision is the regression test for the
// out-of-order timeline bug: event timestamps used to be the only
// ordering, taken outside any queue lock, so two streams hammering a
// coarse clock could record identically-timestamped events whose sort
// order no longer matched dispatch order. The fix records each command
// from its stream's dispatcher goroutine into the obs ring, which assigns
// a sequence number under its lock; Spans() breaks timestamp ties by that
// sequence. Freezing the device clock makes every timestamp collide and
// so exercises nothing but the tie-break.
func TestTimelineOrderUnderClockCollision(t *testing.T) {
	d := New(Config{Profile: true, KernelSlots: 4, CopyEngines: 4})
	defer d.Close()
	frozen := d.epoch.Add(time.Millisecond)
	d.now = func() time.Time { return frozen }

	const streams, perStream = 3, 40
	for si := 0; si < streams; si++ {
		s, err := d.NewStream(fmt.Sprintf("s%d", si))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perStream; i++ {
			s.Launch(fmt.Sprintf("k%03d", i), func() error { return nil })
		}
	}
	d.Synchronize()

	spans := d.Timeline().Spans()
	if len(spans) != streams*perStream {
		t.Fatalf("got %d spans, want %d", len(spans), streams*perStream)
	}
	// Every timestamp collided; per-stream order must still be submission
	// order, and per-stream Seq strictly increasing (monotone timestamps
	// would be vacuous here, so Seq is the observable).
	next := map[string]int{}
	lastSeq := map[string]uint64{}
	for _, sp := range spans {
		want := fmt.Sprintf("k%03d", next[sp.Stream])
		if sp.Name != want {
			t.Fatalf("stream %s: span %q out of order, want %q", sp.Stream, sp.Name, want)
		}
		next[sp.Stream]++
		if sp.Seq <= lastSeq[sp.Stream] {
			t.Fatalf("stream %s: Seq %d after %d", sp.Stream, sp.Seq, lastSeq[sp.Stream])
		}
		lastSeq[sp.Stream] = sp.Seq
	}
}

// TestTimelinePerStreamMonotonicTimestamps replays a live multi-stream
// run and asserts each stream's recorded intervals are monotone: command
// n+1 on a stream never starts before command n started, and Spans()
// returns them in dispatch order.
func TestTimelinePerStreamMonotonicTimestamps(t *testing.T) {
	d := New(Config{Profile: true, KernelSlots: 2, CopyEngines: 2})
	defer d.Close()
	var streams []*Stream
	for si := 0; si < 4; si++ {
		s, err := d.NewStream(fmt.Sprintf("s%d", si))
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, s)
	}
	for i := 0; i < 25; i++ {
		for _, s := range streams {
			s.Launch(fmt.Sprintf("k%03d", i), func() error { return nil })
		}
	}
	d.Synchronize()

	last := map[string]Span{}
	seen := map[string]int{}
	for _, sp := range d.Timeline().Spans() {
		if prev, ok := last[sp.Stream]; ok {
			if sp.Start < prev.Start {
				t.Fatalf("stream %s: %q starts at %v before %q at %v",
					sp.Stream, sp.Name, sp.Start, prev.Name, prev.Start)
			}
		}
		want := fmt.Sprintf("k%03d", seen[sp.Stream])
		if sp.Name != want {
			t.Fatalf("stream %s: got %q, want %q", sp.Stream, sp.Name, want)
		}
		seen[sp.Stream]++
		last[sp.Stream] = sp
	}
	for s, n := range seen {
		if n != 25 {
			t.Fatalf("stream %s recorded %d spans", s, n)
		}
	}
}

// TestSharedRecorderScopesDevices proves two devices sharing one obs
// recorder keep their timelines separate (device-prefixed tracks) while
// living on one clock.
func TestSharedRecorderScopesDevices(t *testing.T) {
	rec := newTestRecorder(t)
	d0 := New(Config{Name: "GPU0", Obs: rec})
	defer d0.Close()
	d1 := New(Config{Name: "GPU1", Obs: rec})
	defer d1.Close()
	if !d0.epoch.Equal(rec.Epoch()) || !d1.epoch.Equal(rec.Epoch()) {
		t.Fatal("device epochs not aligned to shared recorder")
	}
	s0, _ := d0.NewStream("q")
	s1, _ := d1.NewStream("q")
	s0.Launch("only0", func() error { return nil })
	s1.Launch("only1", func() error { return nil })
	d0.Synchronize()
	d1.Synchronize()

	sp0 := d0.Timeline().Spans()
	sp1 := d1.Timeline().Spans()
	if len(sp0) != 1 || sp0[0].Name != "only0" {
		t.Fatalf("GPU0 timeline = %+v", sp0)
	}
	if len(sp1) != 1 || sp1[0].Name != "only1" {
		t.Fatalf("GPU1 timeline = %+v", sp1)
	}
	// The shared recorder sees both, device-prefixed.
	tracks := map[string]bool{}
	for _, cs := range rec.Spans() {
		tracks[cs.Track] = true
	}
	if !tracks["GPU0/q/kernel"] || !tracks["GPU1/q/kernel"] {
		t.Fatalf("tracks = %v", tracks)
	}
	// Kernel latency histogram fed on the shared recorder.
	if c, _, _, _ := rec.Histogram("gpu.op.only0").Stats(); c != 1 {
		t.Fatalf("gpu.op.only0 count = %d", c)
	}
}
