package gpu

import (
	"fmt"
	"math"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/pciam"
)

// This file provides the stitching kernels as typed stream operations —
// the analogues of the paper's cuFFT calls and its two custom CUDA
// kernels (the shared-memory NCC kernel and the Harris-style max
// reduction). Each executes the reference math on a device buffer, so the
// GPU path is bit-identical to the CPU path.

// FFT2D executes a 2-D transform in place on a device buffer. plan must
// match the buffer geometry; the caller owns plan lifetime and must not
// share one plan across concurrently executing kernels (cuFFT imposes the
// same rule per plan handle — the paper's FFT stage uses one thread for
// exactly this reason).
func (s *Stream) FFT2D(plan *fft.Plan2D, buf *Buffer, after ...*Event) *Event {
	name := "fft2d"
	if plan.Dir() == fft.Inverse {
		name = "ifft2d"
	}
	return s.Launch(name, func() error {
		n := plan.W() * plan.H()
		if int64(n) > buf.Words() {
			return fmt.Errorf("gpu: fft2d plan %dx%d exceeds buffer of %d words", plan.H(), plan.W(), buf.Words())
		}
		return plan.Execute(buf.Data[:n])
	}, after...)
}

// NCC computes the element-wise normalized conjugate multiplication
// dst = fa·conj(fb)/|fa·conj(fb)| on device buffers (the custom CUDA
// kernel of the Simple-GPU implementation). dst may alias fa or fb.
func (s *Stream) NCC(dst, fa, fb *Buffer, n int, after ...*Event) *Event {
	return s.Launch("ncc", func() error {
		if int64(n) > dst.Words() || int64(n) > fa.Words() || int64(n) > fb.Words() {
			return fmt.Errorf("gpu: ncc over %d words exceeds a buffer", n)
		}
		pciam.NCCSpectrum(dst.Data[:n], fa.Data[:n], fb.Data[:n])
		return nil
	}, after...)
}

// Reduction receives the result of a MaxAbs kernel. Read it only after
// the kernel's event has resolved.
type Reduction struct {
	Idx int
	Mag float64
}

// MaxAbs reduces a device buffer to the index and magnitude of its
// largest absolute value, writing the scalar result into out — the only
// datum the pipeline copies back to the host per pair, which is how the
// paper minimizes D2H traffic.
func (s *Stream) MaxAbs(src *Buffer, n int, out *Reduction, after ...*Event) *Event {
	return s.Launch("maxabs", func() error {
		if int64(n) > src.Words() {
			return fmt.Errorf("gpu: maxabs over %d words exceeds buffer of %d", n, src.Words())
		}
		idx, mag := pciam.MaxAbs(src.Data[:n])
		out.Idx = idx
		out.Mag = mag
		return nil
	}, after...)
}

// Scale multiplies a device buffer by a real constant (used by tests and
// by normalized-inverse paths).
func (s *Stream) Scale(buf *Buffer, n int, k float64, after ...*Event) *Event {
	return s.Launch("scale", func() error {
		if int64(n) > buf.Words() {
			return fmt.Errorf("gpu: scale over %d words exceeds buffer of %d", n, buf.Words())
		}
		c := complex(k, 0)
		for i := 0; i < n; i++ {
			buf.Data[i] *= c
		}
		return nil
	}, after...)
}

// CheckFinite validates that a buffer holds finite values; used by
// failure-injection tests.
func (s *Stream) CheckFinite(buf *Buffer, n int, after ...*Event) *Event {
	return s.Launch("checkfinite", func() error {
		for i := 0; i < n; i++ {
			v := buf.Data[i]
			if math.IsNaN(real(v)) || math.IsNaN(imag(v)) ||
				math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
				return fmt.Errorf("gpu: non-finite value at word %d", i)
			}
		}
		return nil
	}, after...)
}
