package gpu

import (
	"fmt"
	"math"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/obs"
	"hybridstitch/internal/pciam"
)

// This file provides the stitching kernels as typed stream operations —
// the analogues of the paper's cuFFT calls and its two custom CUDA
// kernels (the shared-memory NCC kernel and the Harris-style max
// reduction). Each executes the reference math on a device buffer, so the
// GPU path is bit-identical to the CPU path.

// FFT2D executes a 2-D transform in place on a device buffer. plan must
// match the buffer geometry; the caller owns plan lifetime and must not
// share one plan across concurrently executing kernels (cuFFT imposes the
// same rule per plan handle — the paper's FFT stage uses one thread for
// exactly this reason).
func (s *Stream) FFT2D(plan *fft.Plan2D, buf *Buffer, after ...*Event) *Event {
	name := "fft2d"
	if plan.Dir() == fft.Inverse {
		name = "ifft2d"
	}
	return s.Launch(name, func() error {
		n := plan.W() * plan.H()
		if int64(n) > buf.Words() {
			return fmt.Errorf("gpu: fft2d plan %dx%d exceeds buffer of %d words", plan.H(), plan.W(), buf.Words())
		}
		return plan.Execute(buf.Data[:n])
	}, after...)
}

// packedWords is the device footprint of n float64 values packed two per
// complex128 word. For a w×h tile it never exceeds the h×(w/2+1)
// half-spectrum footprint, so one spectrum-sized buffer serves both the
// packed pixel upload and the in-place transform result.
func packedWords(n int) int { return (n + 1) / 2 }

// packReals stores src two values per word: word j = (src[2j], src[2j+1]).
func packReals(dst []complex128, src []float64) {
	n := len(src)
	for j := 0; j < n/2; j++ {
		dst[j] = complex(src[2*j], src[2*j+1])
	}
	if n%2 == 1 {
		dst[n/2] = complex(src[n-1], 0)
	}
}

// unpackReals is the inverse of packReals for n = len(dst) values.
func unpackReals(dst []float64, src []complex128) {
	n := len(dst)
	for j := 0; j < n/2; j++ {
		v := src[j]
		dst[2*j] = real(v)
		dst[2*j+1] = imag(v)
	}
	if n%2 == 1 {
		dst[n-1] = real(src[n/2])
	}
}

// RealFFT2D executes the forward r2c transform in place on a device
// buffer holding packed real pixels (MemcpyH2DPackedReal layout): on
// completion the buffer's first h×(w/2+1) words hold the half spectrum.
// The same per-plan concurrency rule as FFT2D applies: one stream per
// plan.
func (s *Stream) RealFFT2D(plan *fft.RealPlan2D, buf *Buffer, after ...*Event) *Event {
	return s.Launch("rfft2d", func() error {
		sh, sw := plan.SpectrumDims()
		n := plan.H() * plan.W()
		if int64(sh*sw) > buf.Words() || int64(packedWords(n)) > buf.Words() {
			return fmt.Errorf("gpu: rfft2d plan %dx%d exceeds buffer of %d words", plan.H(), plan.W(), buf.Words())
		}
		img := s.realsScratch(n)
		unpackReals(img, buf.Data)
		return plan.Forward(buf.Data[:sh*sw], img)
	}, after...)
}

// RealIFFT2D executes the inverse c2r transform in place: the buffer's
// first h×(w/2+1) words hold a half spectrum going in and the packed
// real surface (⌈wh/2⌉ words, unnormalized ×wh like the complex path)
// coming out.
func (s *Stream) RealIFFT2D(plan *fft.RealPlan2D, buf *Buffer, after ...*Event) *Event {
	return s.Launch("irfft2d", func() error {
		sh, sw := plan.SpectrumDims()
		n := plan.H() * plan.W()
		if int64(sh*sw) > buf.Words() || int64(packedWords(n)) > buf.Words() {
			return fmt.Errorf("gpu: irfft2d plan %dx%d exceeds buffer of %d words", plan.H(), plan.W(), buf.Words())
		}
		img := s.realsScratch(n)
		if err := plan.Inverse(img, buf.Data[:sh*sw]); err != nil {
			return err
		}
		packReals(buf.Data, img)
		return nil
	}, after...)
}

// NCC computes the element-wise normalized conjugate multiplication
// dst = fa·conj(fb)/|fa·conj(fb)| on device buffers (the custom CUDA
// kernel of the Simple-GPU implementation). dst may alias fa or fb.
func (s *Stream) NCC(dst, fa, fb *Buffer, n int, after ...*Event) *Event {
	return s.Launch("ncc", func() error {
		if int64(n) > dst.Words() || int64(n) > fa.Words() || int64(n) > fb.Words() {
			return fmt.Errorf("gpu: ncc over %d words exceeds a buffer", n)
		}
		pciam.NCCSpectrum(dst.Data[:n], fa.Data[:n], fb.Data[:n])
		return nil
	}, after...)
}

// Reduction receives the result of a MaxAbs kernel. Read it only after
// the kernel's event has resolved.
type Reduction struct {
	Idx int
	Mag float64
}

// MaxAbs reduces a device buffer to the index and magnitude of its
// largest absolute value, writing the scalar result into out — the only
// datum the pipeline copies back to the host per pair, which is how the
// paper minimizes D2H traffic.
func (s *Stream) MaxAbs(src *Buffer, n int, out *Reduction, after ...*Event) *Event {
	return s.Launch("maxabs", func() error {
		if int64(n) > src.Words() {
			return fmt.Errorf("gpu: maxabs over %d words exceeds buffer of %d", n, src.Words())
		}
		idx, mag := pciam.MaxAbs(src.Data[:n])
		out.Idx = idx
		out.Mag = mag
		return nil
	}, after...)
}

// MaxAbsReal is the MaxAbs reduction over a packed real surface (the
// RealIFFT2D output layout): n real values occupying packedWords(n)
// device words. Idx is the index into the real surface. Tie-breaking
// matches the complex kernel: first strictly-greater value wins.
func (s *Stream) MaxAbsReal(src *Buffer, n int, out *Reduction, after ...*Event) *Event {
	return s.Launch("maxabs", func() error {
		if int64(packedWords(n)) > src.Words() {
			return fmt.Errorf("gpu: maxabs over %d packed reals exceeds buffer of %d words", n, src.Words())
		}
		vals := s.realsScratch(n)
		unpackReals(vals, src.Data)
		idx, mag := pciam.MaxAbsReal(vals)
		out.Idx = idx
		out.Mag = mag
		return nil
	}, after...)
}

// FusedNCCInverseMax runs the whole displacement tail — normalized
// conjugate multiply, inverse 2-D FFT, max-abs reduction — as ONE kernel
// launch instead of three, writing the correlation surface into dst and
// the peak into out. The NCC rows feed the inverse's row pass directly
// (fft.ExecuteFill), so the NCC spectrum never materializes as a separate
// full-size pass; the result is bit-identical to the NCC → IFFT2D →
// MaxAbs sequence. Fault injection maps the fused launch to the
// gpu.kernel.ncc site.
func (s *Stream) FusedNCCInverseMax(plan *fft.Plan2D, dst, fa, fb *Buffer, out *Reduction, after ...*Event) *Event {
	return s.Launch("ncc+ifft2d+maxabs", func() error {
		n := plan.W() * plan.H()
		if int64(n) > dst.Words() || int64(n) > fa.Words() || int64(n) > fb.Words() {
			return fmt.Errorf("gpu: fused ncc over %d words exceeds a buffer", n)
		}
		w := plan.W()
		err := plan.ExecuteFill(dst.Data[:n], func(row []complex128, r int) {
			o := r * w
			pciam.NCCSpectrum(row, fa.Data[o:o+w], fb.Data[o:o+w])
		})
		if err != nil {
			return err
		}
		idx, mag := pciam.MaxAbs(dst.Data[:n])
		out.Idx = idx
		out.Mag = mag
		s.countFused()
		return nil
	}, after...)
}

// FusedNCCInverseMaxReal is the r2c counterpart of FusedNCCInverseMax:
// half-spectrum NCC, inverse c2r transform, and real max reduction in one
// launch. The correlation surface lives only in stream scratch — it is
// never packed back into a device buffer, skipping the pack/unpack round
// trip of the three-launch sequence (lossless, so displacements stay
// bit-identical).
func (s *Stream) FusedNCCInverseMaxReal(plan *fft.RealPlan2D, fa, fb *Buffer, out *Reduction, after ...*Event) *Event {
	return s.Launch("ncc+irfft2d+maxabs", func() error {
		sh, sw := plan.SpectrumDims()
		if int64(sh*sw) > fa.Words() || int64(sh*sw) > fb.Words() {
			return fmt.Errorf("gpu: fused ncc over %d half-spectrum words exceeds a buffer", sh*sw)
		}
		img := s.realsScratch(plan.H() * plan.W())
		err := plan.InverseFill(img, func(row []complex128, r int) {
			o := r * sw
			pciam.NCCSpectrum(row, fa.Data[o:o+sw], fb.Data[o:o+sw])
		})
		if err != nil {
			return err
		}
		idx, mag := pciam.MaxAbsReal(img)
		out.Idx = idx
		out.Mag = mag
		s.countFused()
		return nil
	}, after...)
}

// countFused advances the gpu.launch.fused obs counter when a recorder is
// attached.
func (s *Stream) countFused() {
	if rec := s.dev.cfg.Obs; rec != nil {
		rec.Counter(obs.CounterGPULaunchFused).Add(1)
	}
}

// Scale multiplies a device buffer by a real constant (used by tests and
// by normalized-inverse paths).
func (s *Stream) Scale(buf *Buffer, n int, k float64, after ...*Event) *Event {
	return s.Launch("scale", func() error {
		if int64(n) > buf.Words() {
			return fmt.Errorf("gpu: scale over %d words exceeds buffer of %d", n, buf.Words())
		}
		c := complex(k, 0)
		for i := 0; i < n; i++ {
			buf.Data[i] *= c
		}
		return nil
	}, after...)
}

// CheckFinite validates that a buffer holds finite values; used by
// failure-injection tests.
func (s *Stream) CheckFinite(buf *Buffer, n int, after ...*Event) *Event {
	return s.Launch("checkfinite", func() error {
		for i := 0; i < n; i++ {
			v := buf.Data[i]
			if math.IsNaN(real(v)) || math.IsNaN(imag(v)) ||
				math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
				return fmt.Errorf("gpu: non-finite value at word %d", i)
			}
		}
		return nil
	}, after...)
}
