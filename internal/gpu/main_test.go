package gpu

import (
	"testing"

	"hybridstitch/internal/analysis/leaktest"
)

// TestMain fails the package if any test leaks a goroutine — every
// stream dispatcher started by a test must be shut down by Close.
func TestMain(m *testing.M) { leaktest.VerifyTestMain(m) }
