package gpu

import (
	"fmt"
	"sync"
	"time"

	"hybridstitch/internal/fault"
)

// opKind classifies commands for the profiler and engine arbitration.
type opKind int

const (
	opH2D opKind = iota
	opD2H
	opKernel
)

func (k opKind) String() string {
	switch k {
	case opH2D:
		return "memcpyH2D"
	case opD2H:
		return "memcpyD2H"
	default:
		return "kernel"
	}
}

// Event resolves when its command has executed. Like a CUDA event, it can
// be waited on from host code or used to chain dependencies between
// streams.
type Event struct {
	done chan struct{}
	err  error
}

func newEvent() *Event { return &Event{done: make(chan struct{})} }

// Wait blocks until the command completes and returns its error.
func (e *Event) Wait() error {
	<-e.done
	return e.err
}

// Done exposes the completion channel for select loops.
func (e *Event) Done() <-chan struct{} { return e.done }

// command is one queued stream operation.
type command struct {
	kind  opKind
	name  string
	after []*Event // cross-stream dependencies
	fn    func() error
	ev    *Event
}

// Stream is an in-order command queue, the CUDA stream analogue. Commands
// on one stream execute strictly in submission order; commands on
// different streams overlap subject to the device's copy-engine and
// kernel-slot limits — exactly the mechanism whose absence serialized the
// Simple-GPU implementation (Fig 7) and whose use densified the
// Pipelined-GPU profile (Fig 9).
type Stream struct {
	dev  *Device
	name string

	mu     sync.Mutex
	queue  []*command
	kick   *sync.Cond
	closed bool
	idle   bool
	wg     sync.WaitGroup

	// realScratch stages unpacked real surfaces for the r2c kernels.
	// Commands run one at a time on the dispatcher goroutine, so lazy
	// growth here is race-free; after the first launch of a given size the
	// kernels stop allocating per pair.
	realScratch []float64
}

// realsScratch returns the stream's real staging buffer grown to at least
// n values. Call only from inside a kernel fn (dispatcher goroutine).
func (s *Stream) realsScratch(n int) []float64 {
	if cap(s.realScratch) < n {
		s.realScratch = make([]float64, n)
	}
	return s.realScratch[:n]
}

// NewStream creates a stream and starts its dispatcher.
func (d *Device) NewStream(name string) (*Stream, error) {
	d.streamMu.Lock()
	defer d.streamMu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	s := &Stream{dev: d, name: name, idle: true}
	s.kick = sync.NewCond(&s.mu)
	d.streams = append(d.streams, s)
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Name returns the stream label.
func (s *Stream) Name() string { return s.name }

// enqueue appends a command and returns its event.
func (s *Stream) enqueue(kind opKind, name string, after []*Event, fn func() error) *Event {
	ev := newEvent()
	cmd := &command{kind: kind, name: name, after: after, fn: fn, ev: ev}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ev.err = ErrClosed
		close(ev.done)
		return ev
	}
	s.queue = append(s.queue, cmd)
	s.kick.Signal()
	s.mu.Unlock()
	return ev
}

// dispatch is the stream's dispatcher goroutine: strictly in-order
// execution with engine arbitration against sibling streams.
func (s *Stream) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.idle = true
			s.kick.Broadcast() // wake Synchronize waiters
			s.kick.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.idle = true
			s.kick.Broadcast()
			s.mu.Unlock()
			return
		}
		s.idle = false
		cmd := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		s.execute(cmd)
	}
}

func (s *Stream) execute(cmd *command) {
	// Cross-stream dependencies first (StreamWaitEvent semantics).
	for _, dep := range cmd.after {
		if err := dep.Wait(); err != nil {
			cmd.ev.err = fmt.Errorf("gpu: dependency of %s failed: %w", cmd.name, err)
			close(cmd.ev.done)
			return
		}
	}
	// Engine arbitration.
	var sem chan struct{}
	switch cmd.kind {
	case opH2D, opD2H:
		sem = s.dev.copySem
	default:
		sem = s.dev.kernelSem
	}
	sem <- struct{}{}
	start := s.dev.now()
	err := s.injectFault(cmd)
	if err == nil {
		err = cmd.fn()
	}
	end := s.dev.now()
	<-sem
	if tl := s.dev.timeline; tl != nil {
		// Recording from the dispatcher goroutine hands the obs recorder
		// this stream's commands in execution order, so the Seq it assigns
		// under its ring lock preserves per-stream ordering even when the
		// coarse clock gives concurrent streams identical timestamps.
		tl.Record(Span{
			Stream: s.name,
			Kind:   cmd.kind.String(),
			Name:   cmd.name,
			Start:  start.Sub(s.dev.epoch),
			End:    end.Sub(s.dev.epoch),
		})
		tl.observeOp(cmd.name, end.Sub(start))
	}
	cmd.ev.err = err
	close(cmd.ev.done)
}

// injectFault consults the device's fault injector for this command. The
// injected error takes the place of the command's own result, so it
// propagates through events and cross-stream dependencies exactly like a
// real device failure. Sites (all from the internal/fault registry):
// gpu.copy.h2d, gpu.copy.d2h, and gpu.kernel.{fft,ncc,reduce,<name>};
// the detail is "stream/op".
func (s *Stream) injectFault(cmd *command) error {
	in := s.dev.cfg.Faults
	if in == nil {
		return nil
	}
	var site string
	switch cmd.kind {
	case opH2D:
		site = fault.SiteGPUCopyH2D
	case opD2H:
		site = fault.SiteGPUCopyD2H
	default:
		switch cmd.name {
		case "fft2d", "ifft2d", "rfft2d", "irfft2d":
			site = fault.SiteGPUKernelFFT
		case "ncc", "ncc+ifft2d+maxabs", "ncc+irfft2d+maxabs":
			// The fused disp kernels inject at the NCC site so existing
			// fault plans (and the degraded-pair tests) keep firing when
			// fusion replaces the three-launch sequence.
			site = fault.SiteGPUKernelNCC
		case "maxabs":
			site = fault.SiteGPUKernelReduce
		default:
			site = fault.KernelSite(cmd.name)
		}
	}
	return in.Hit(site, s.name+"/"+cmd.name)
}

// Synchronize blocks until the stream's queue is empty and its dispatcher
// idle.
func (s *Stream) Synchronize() {
	// Enqueue a no-op marker and wait for it: everything submitted
	// before has then executed (in-order guarantee).
	ev := s.enqueue(opKernel, "sync", nil, func() error { return nil })
	_ = ev.Wait()
}

// Close drains the stream and terminates its dispatcher. Subsequent
// enqueues fail with ErrClosed. Callers that create streams per run on a
// long-lived device should Close them to release the dispatcher
// goroutine.
func (s *Stream) Close() { s.close() }

// close shuts the stream down after draining.
func (s *Stream) close() {
	s.mu.Lock()
	s.closed = true
	s.kick.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// MemcpyH2D asynchronously copies host data into a device buffer.
func (s *Stream) MemcpyH2D(dst *Buffer, src []complex128, after ...*Event) *Event {
	return s.enqueue(opH2D, "H2D", after, func() error {
		if len(src) > len(dst.Data) {
			return fmt.Errorf("gpu: H2D copy of %d words into %d-word buffer", len(src), len(dst.Data))
		}
		s.bandwidthDelay(len(src)*16, s.dev.cfg.H2DBytesPerSec)
		copy(dst.Data, src)
		return nil
	})
}

// MemcpyH2DReal widens float64 host pixels into the device buffer as
// complex values — the upload format of tile images.
func (s *Stream) MemcpyH2DReal(dst *Buffer, src []float64, after ...*Event) *Event {
	return s.enqueue(opH2D, "H2D", after, func() error {
		if len(src) > len(dst.Data) {
			return fmt.Errorf("gpu: H2D copy of %d words into %d-word buffer", len(src), len(dst.Data))
		}
		s.bandwidthDelay(len(src)*8, s.dev.cfg.H2DBytesPerSec)
		for i, v := range src {
			dst.Data[i] = complex(v, 0)
		}
		return nil
	})
}

// MemcpyH2DPackedReal copies float64 host pixels into the device buffer
// packed two per complex128 word — the upload format of the r2c path. A
// w×h tile occupies ⌈wh/2⌉ words instead of wh, so the same bytes cross
// the bus but the tile holds half the device words, and the in-place
// r2c transform needs only the h×(w/2+1) half spectrum that fits in the
// same halved buffer.
func (s *Stream) MemcpyH2DPackedReal(dst *Buffer, src []float64, after ...*Event) *Event {
	return s.enqueue(opH2D, "H2D", after, func() error {
		if packedWords(len(src)) > len(dst.Data) {
			return fmt.Errorf("gpu: packed H2D copy of %d reals into %d-word buffer", len(src), len(dst.Data))
		}
		s.bandwidthDelay(len(src)*8, s.dev.cfg.H2DBytesPerSec)
		packReals(dst.Data, src)
		return nil
	})
}

// MemcpyD2H asynchronously copies a device buffer back to host memory.
func (s *Stream) MemcpyD2H(dst []complex128, src *Buffer, after ...*Event) *Event {
	return s.enqueue(opD2H, "D2H", after, func() error {
		if len(dst) > len(src.Data) {
			return fmt.Errorf("gpu: D2H copy of %d words from %d-word buffer", len(dst), len(src.Data))
		}
		s.bandwidthDelay(len(dst)*16, s.dev.cfg.D2HBytesPerSec)
		copy(dst, src.Data[:len(dst)])
		return nil
	})
}

// Launch runs fn as a kernel on this stream. The name labels the profiler
// span.
func (s *Stream) Launch(name string, fn func() error, after ...*Event) *Event {
	return s.enqueue(opKernel, name, after, fn)
}

// bandwidthDelay sleeps size/bw seconds if a bandwidth model is set.
func (s *Stream) bandwidthDelay(sizeBytes int, bw float64) {
	if bw <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(sizeBytes) / bw * float64(time.Second)))
}
