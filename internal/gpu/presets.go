package gpu

import "fmt"

// FermiConfig models a Tesla C2070-generation card as the paper used it:
// 6 GB of device memory, two DMA engines, and — decisive for the
// pipeline's structure — a single effective kernel slot, because cuFFT
// 5.5's register pressure prevented concurrent kernel execution on
// Fermi (paper §IV.B).
func FermiConfig(name string) Config {
	return Config{
		Name:        name,
		MemWords:    384 << 20, // 6 GiB of complex128 words
		CopyEngines: 2,
		KernelSlots: 1,
	}
}

// KeplerConfig models a GK110-generation card (paper §VI.A future work):
// Hyper-Q lets multiple CPU threads issue kernels that execute
// concurrently, so the kernel slot count rises.
func KeplerConfig(name string) Config {
	return Config{
		Name:        name,
		MemWords:    384 << 20,
		CopyEngines: 2,
		KernelSlots: 16,
	}
}

// MemcpyP2P copies between two device buffers, potentially on different
// devices — the peer-to-peer transfer the paper's future work flags as
// required to scale past two cards. The transfer occupies this stream's
// device's copy engine and pays the H2D bandwidth model (PCIe peer
// traffic crosses the same links).
func (s *Stream) MemcpyP2P(dst, src *Buffer, words int, after ...*Event) *Event {
	return s.enqueue(opH2D, "P2P", after, func() error {
		if int64(words) > dst.Words() || int64(words) > src.Words() {
			return fmt.Errorf("gpu: P2P copy of %d words exceeds a buffer (%d src, %d dst)",
				words, src.Words(), dst.Words())
		}
		s.bandwidthDelay(words*16, s.dev.cfg.H2DBytesPerSec)
		copy(dst.Data[:words], src.Data[:words])
		return nil
	})
}
