package gpu

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hybridstitch/internal/fft"
	"hybridstitch/internal/pciam"
)

func TestAllocFreeAccounting(t *testing.T) {
	d := New(Config{MemWords: 100})
	a, err := d.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow pairguard allocation must fail with ErrOutOfMemory; nothing is allocated
	if _, err := d.Alloc(50); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("overcommit allowed: %v", err)
	}
	b, err := d.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	used, peak, allocs, oom := d.MemStats()
	if used != 100 || peak != 100 || allocs != 2 || !oom {
		t.Errorf("stats = %d %d %d %v", used, peak, allocs, oom)
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(); err == nil {
		t.Error("double free should fail")
	}
	if err := b.Free(); err != nil {
		t.Fatal(err)
	}
	used, _, _, _ = d.MemStats()
	if used != 0 {
		t.Errorf("used = %d after frees", used)
	}
	//lint:allow pairguard zero-word allocation must fail; nothing is allocated
	if _, err := d.Alloc(0); err == nil {
		t.Error("zero alloc should fail")
	}
}

func TestAllocBlockingWaitsForFree(t *testing.T) {
	d := New(Config{MemWords: 100})
	a, _ := d.Alloc(80)
	got := make(chan *Buffer)
	go func() {
		b, err := d.AllocBlocking(50)
		if err != nil {
			t.Errorf("AllocBlocking: %v", err)
		}
		got <- b
	}()
	select {
	case <-got:
		t.Fatal("AllocBlocking should have waited")
	case <-time.After(20 * time.Millisecond):
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		_ = b.Free()
	case <-time.After(time.Second):
		t.Fatal("AllocBlocking never resumed")
	}
	//lint:allow pairguard over-capacity request must fail fast; nothing is allocated
	if _, err := d.AllocBlocking(101); !errors.Is(err, ErrOutOfMemory) {
		t.Error("impossible request must fail fast")
	}
}

func TestMemoryNeverOvercommittedProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		d := New(Config{MemWords: 64})
		var live []*Buffer
		for _, s := range sizes {
			w := int64(s)%32 + 1
			b, err := d.Alloc(w)
			if err != nil {
				continue
			}
			live = append(live, b)
			if len(live) > 3 {
				if live[0].Free() != nil {
					return false
				}
				live = live[1:]
			}
			used, peak, _, _ := d.MemStats()
			if used > 64 || peak > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStreamInOrderExecution(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	s, err := d.NewStream("s0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		s.Launch("op", func() error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		})
	}
	s.Synchronize()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: stream violated FIFO", i, v)
		}
	}
}

func TestStreamsOverlapButKernelSlotLimits(t *testing.T) {
	d := New(Config{KernelSlots: 1, CopyEngines: 2})
	defer d.Close()
	s1, _ := d.NewStream("a")
	s2, _ := d.NewStream("b")
	var mu sync.Mutex
	active, peak := 0, 0
	kernel := func() error {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return nil
	}
	for i := 0; i < 5; i++ {
		s1.Launch("k", kernel)
		s2.Launch("k", kernel)
	}
	d.Synchronize()
	if peak != 1 {
		t.Errorf("kernel concurrency peak %d with 1 slot", peak)
	}

	// With 2 slots the streams must overlap.
	d2 := New(Config{KernelSlots: 2})
	defer d2.Close()
	t1, _ := d2.NewStream("a")
	t2, _ := d2.NewStream("b")
	mu.Lock()
	active, peak = 0, 0
	mu.Unlock()
	for i := 0; i < 5; i++ {
		t1.Launch("k", kernel)
		t2.Launch("k", kernel)
	}
	d2.Synchronize()
	if peak < 2 {
		t.Errorf("kernel concurrency peak %d with 2 slots and 2 streams", peak)
	}
}

func TestCrossStreamEventDependency(t *testing.T) {
	d := New(Config{KernelSlots: 4})
	defer d.Close()
	s1, _ := d.NewStream("producer")
	s2, _ := d.NewStream("consumer")
	var mu sync.Mutex
	var order []string
	ev := s1.Launch("produce", func() error {
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		order = append(order, "produce")
		mu.Unlock()
		return nil
	})
	done := s2.Launch("consume", func() error {
		mu.Lock()
		order = append(order, "consume")
		mu.Unlock()
		return nil
	}, ev)
	if err := done.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "produce" || order[1] != "consume" {
		t.Fatalf("order = %v", order)
	}
}

func TestMemcpyRoundTrip(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	s, _ := d.NewStream("s")
	buf, err := d.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]complex128, 64)
	for i := range src {
		src[i] = complex(float64(i), -float64(i))
	}
	s.MemcpyH2D(buf, src)
	dst := make([]complex128, 64)
	if err := s.MemcpyD2H(dst, buf).Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d: %v != %v", i, dst[i], src[i])
		}
	}
	// size violations
	if err := s.MemcpyH2D(buf, make([]complex128, 65)).Wait(); err == nil {
		t.Error("oversized H2D should fail")
	}
	if err := s.MemcpyD2H(make([]complex128, 65), buf).Wait(); err == nil {
		t.Error("oversized D2H should fail")
	}
}

func TestKernelFFTMatchesHost(t *testing.T) {
	const h, w = 12, 16
	d := New(Config{})
	defer d.Close()
	s, _ := d.NewStream("s")
	plan, err := fft.NewPlan2D(h, w, fft.Forward, fft.Plan2DOpts{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	host := make([]complex128, h*w)
	for i := range host {
		host[i] = complex(rng.Float64(), 0)
	}
	want := append([]complex128(nil), host...)
	hostPlan, _ := fft.NewPlan2D(h, w, fft.Forward, fft.Plan2DOpts{})
	if err := hostPlan.Execute(want); err != nil {
		t.Fatal(err)
	}

	buf, _ := d.Alloc(int64(h * w))
	s.MemcpyH2D(buf, host)
	s.FFT2D(plan, buf)
	got := make([]complex128, h*w)
	if err := s.MemcpyD2H(got, buf).Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("device FFT differs from host at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestKernelNCCAndMaxAbs(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	s, _ := d.NewStream("s")
	const n = 32
	rng := rand.New(rand.NewSource(2))
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i := range fa {
		fa[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		fb[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	want := make([]complex128, n)
	pciam.NCCSpectrum(want, fa, fb)
	wantIdx, wantMag := pciam.MaxAbs(want)

	ba, _ := d.Alloc(n)
	bb, _ := d.Alloc(n)
	s.MemcpyH2D(ba, fa)
	s.MemcpyH2D(bb, fb)
	s.NCC(ba, ba, bb, n)
	var red Reduction
	if err := s.MaxAbs(ba, n, &red).Wait(); err != nil {
		t.Fatal(err)
	}
	if red.Idx != wantIdx || red.Mag != wantMag {
		t.Errorf("reduction = (%d, %g), want (%d, %g)", red.Idx, red.Mag, wantIdx, wantMag)
	}
}

func TestTimelineRecordsAndUtilization(t *testing.T) {
	d := New(Config{Profile: true, KernelSlots: 2})
	defer d.Close()
	s, _ := d.NewStream("s0")
	for i := 0; i < 3; i++ {
		s.Launch("work", func() error {
			time.Sleep(2 * time.Millisecond)
			return nil
		})
	}
	s.Synchronize()
	tl := d.Timeline()
	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	for _, sp := range spans {
		if sp.Duration() <= 0 {
			t.Errorf("span %v has non-positive duration", sp)
		}
	}
	from, to := spans[0].Start, spans[len(spans)-1].End
	u := tl.Utilization("kernel", from, to)
	if u <= 0.5 || u > 1.0001 {
		t.Errorf("utilization = %g", u)
	}
	out := tl.Render(60)
	if out == "" || out == "(empty timeline)\n" {
		t.Error("render produced nothing")
	}
}

func TestTimelineGapCount(t *testing.T) {
	tl := NewTimeline(time.Now())
	defer tl.Close()
	tl.Record(Span{Stream: "s", Kind: "kernel", Name: "a", Start: 0, End: time.Millisecond})
	tl.Record(Span{Stream: "s", Kind: "kernel", Name: "b", Start: 10 * time.Millisecond, End: 11 * time.Millisecond})
	tl.Record(Span{Stream: "s", Kind: "kernel", Name: "c", Start: 11 * time.Millisecond, End: 12 * time.Millisecond})
	if g := tl.GapCount("kernel", 2*time.Millisecond); g != 1 {
		t.Errorf("GapCount = %d, want 1", g)
	}
}

func TestDeviceCloseRejectsWork(t *testing.T) {
	d := New(Config{})
	s, _ := d.NewStream("s")
	d.Close()
	if err := s.Launch("late", func() error { return nil }).Wait(); !errors.Is(err, ErrClosed) {
		t.Errorf("launch after close: %v", err)
	}
	if _, err := d.NewStream("s2"); !errors.Is(err, ErrClosed) {
		t.Errorf("new stream after close: %v", err)
	}
	d.Close() // idempotent
}

func TestBandwidthModelDelays(t *testing.T) {
	// 16 KiB at 1 MiB/s ≈ 15.6 ms; assert a noticeable lower bound.
	d := New(Config{H2DBytesPerSec: 1 << 20})
	defer d.Close()
	s, _ := d.NewStream("s")
	buf, _ := d.Alloc(1024)
	src := make([]complex128, 1024)
	start := time.Now()
	if err := s.MemcpyH2D(buf, src).Wait(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Errorf("bandwidth-limited copy finished in %v", el)
	}
}

func TestFailedDependencyPropagates(t *testing.T) {
	d := New(Config{KernelSlots: 2})
	defer d.Close()
	s1, _ := d.NewStream("a")
	s2, _ := d.NewStream("b")
	bad := s1.Launch("explode", func() error { return errors.New("explode") })
	dep := s2.Launch("after", func() error { return nil }, bad)
	if err := dep.Wait(); err == nil {
		t.Error("dependent op should fail when its dependency fails")
	}
}

func TestPresets(t *testing.T) {
	f := FermiConfig("fermi")
	if f.KernelSlots != 1 {
		t.Error("Fermi must serialize kernels")
	}
	k := KeplerConfig("kepler")
	if k.KernelSlots <= f.KernelSlots {
		t.Error("Kepler must allow concurrent kernels")
	}
	// 6 GB holds ≈258 paper-sized transforms (6e9 B / 23.2 MB) — far
	// fewer than the 2478-tile grid needs, which is why the pool and
	// refcounting exist.
	if n := f.MemWords / (1392 * 1040); n < 230 || n > 290 {
		t.Errorf("Fermi capacity holds %d paper transforms, want ≈258", n)
	}
}

func TestMemcpyP2P(t *testing.T) {
	d1 := New(Config{})
	d2 := New(Config{})
	defer d1.Close()
	defer d2.Close()
	s1, _ := d1.NewStream("s")
	a, _ := d1.Alloc(32)
	b, _ := d2.Alloc(32)
	src := make([]complex128, 32)
	for i := range src {
		src[i] = complex(float64(i), 0)
	}
	s1.MemcpyH2D(a, src)
	if err := s1.MemcpyP2P(b, a, 32).Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if b.Data[i] != src[i] {
			t.Fatalf("P2P word %d: %v", i, b.Data[i])
		}
	}
	if err := s1.MemcpyP2P(b, a, 64).Wait(); err == nil {
		t.Error("oversized P2P should fail")
	}
}

func TestHyperQConcurrentFFTKernels(t *testing.T) {
	// On a Kepler-class device two streams' kernels overlap; measure via
	// the timeline that at least two kernel spans intersect.
	d := New(Config{KernelSlots: 4, Profile: true})
	defer d.Close()
	s1, _ := d.NewStream("q1")
	s2, _ := d.NewStream("q2")
	work := func() error { time.Sleep(3 * time.Millisecond); return nil }
	for i := 0; i < 3; i++ {
		s1.Launch("fft", work)
		s2.Launch("fft", work)
	}
	d.Synchronize()
	spans := d.Timeline().Spans()
	overlapped := false
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].Kind == "kernel" && spans[j].Kind == "kernel" &&
				spans[j].Start < spans[i].End && spans[i].Start < spans[j].End {
				overlapped = true
			}
		}
	}
	if !overlapped {
		t.Error("no kernel overlap on a multi-slot device")
	}
}

func TestWriteTrace(t *testing.T) {
	d := New(Config{Profile: true, KernelSlots: 2})
	defer d.Close()
	s, _ := d.NewStream("s0")
	for i := 0; i < 3; i++ {
		s.Launch("fft2d", func() error { time.Sleep(time.Millisecond); return nil })
	}
	s.Synchronize()
	var buf bytes.Buffer
	if err := d.Timeline().WriteTrace(&buf, "GPU0"); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Dur   int64  `json:"dur"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if parsed.Metadata["device"] != "GPU0" {
		t.Errorf("metadata = %v", parsed.Metadata)
	}
	var xEvents, mEvents int
	for _, e := range parsed.TraceEvents {
		switch e.Phase {
		case "X":
			xEvents++
			if e.Dur < 1 || e.TID < 1 {
				t.Errorf("bad X event %+v", e)
			}
		case "M":
			mEvents++
		}
	}
	if xEvents != 3 || mEvents < 1 {
		t.Errorf("events: %d X, %d M", xEvents, mEvents)
	}
}
