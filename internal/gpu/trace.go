package gpu

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome Trace Event Format record ("X" = complete
// event, "M" = metadata). Writing the timeline in this format lets any
// trace viewer (chrome://tracing, Perfetto, Speedscope) display the
// reproduction's profiles the way the paper's authors viewed theirs in
// the NVIDIA Visual Profiler.
type TraceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"` // microseconds
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// traceFile is the envelope Perfetto accepts.
type traceFile struct {
	TraceEvents []TraceEvent      `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// WriteTrace serializes the timeline as Chrome Trace Event JSON. Each
// (stream, kind) pair becomes a named thread row under one process per
// device.
func (t *Timeline) WriteTrace(w io.Writer, deviceName string) error {
	spans := t.Spans()
	type rowKey struct{ stream, kind string }
	rows := map[rowKey]int{}
	var order []rowKey
	for _, s := range spans {
		k := rowKey{s.Stream, s.Kind}
		if _, seen := rows[k]; !seen {
			rows[k] = 0
			order = append(order, k)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].stream != order[j].stream {
			return order[i].stream < order[j].stream
		}
		return order[i].kind < order[j].kind
	})
	for i, k := range order {
		rows[k] = i + 1
	}

	out := traceFile{Metadata: map[string]string{"device": deviceName}}
	for _, k := range order {
		out.TraceEvents = append(out.TraceEvents, TraceEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: rows[k],
			Args: map[string]string{"name": fmt.Sprintf("%s/%s", k.stream, k.kind)},
		})
	}
	for _, s := range spans {
		dur := s.Duration().Microseconds()
		if dur < 1 {
			dur = 1 // zero-duration events vanish in trace viewers
		}
		out.TraceEvents = append(out.TraceEvents, TraceEvent{
			Name:  s.Name,
			Cat:   s.Kind,
			Phase: "X",
			TS:    s.Start.Microseconds(),
			Dur:   dur,
			PID:   1,
			TID:   rows[rowKey{s.Stream, s.Kind}],
		})
	}
	return json.NewEncoder(w).Encode(out)
}
