package gpu_test

import (
	"fmt"

	"hybridstitch/internal/gpu"
)

// Example shows the stream/event model: two streams overlap, an event
// makes the consumer wait for the producer.
func Example() {
	dev := gpu.New(gpu.Config{Name: "GPU0", KernelSlots: 2})
	defer dev.Close()

	producer, _ := dev.NewStream("producer")
	consumer, _ := dev.NewStream("consumer")

	buf, err := dev.Alloc(16)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = buf.Free() }()

	filled := producer.Launch("fill", func() error {
		for i := range buf.Data {
			buf.Data[i] = complex(float64(i), 0)
		}
		return nil
	})
	var sum float64
	done := consumer.Launch("sum", func() error {
		for _, v := range buf.Data {
			sum += real(v)
		}
		return nil
	}, filled) // cross-stream dependency

	if err := done.Wait(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sum)
	// Output: 120
}

// ExampleDevice_Alloc demonstrates the hard capacity that forces the
// stitching pipeline's buffer-pool discipline.
func ExampleDevice_Alloc() {
	dev := gpu.New(gpu.Config{MemWords: 100})
	a, _ := dev.Alloc(80)
	if b, err := dev.Alloc(40); err != nil {
		fmt.Println("second allocation refused")
	} else {
		_ = b.Free()
	}
	_ = a.Free()
	if b, err := dev.Alloc(40); err == nil {
		fmt.Println("fits after free")
		_ = b.Free()
	}
	// Output:
	// second allocation refused
	// fits after free
}
