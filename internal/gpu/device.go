// Package gpu implements a software GPU device: the CUDA-shaped substrate
// the hybrid pipeline schedules against. It reproduces the *semantics*
// that shaped the paper's results — per-stream in-order command queues,
// asynchronous host↔device copies with a limited number of copy engines,
// bounded kernel concurrency (cuFFT on Fermi could not run kernels
// concurrently), a hard device-memory capacity that forces buffer pooling
// and reference counting, and a profiler timeline (the NVIDIA Visual
// Profiler views of Figs 7 and 9). Kernels execute real math on host
// goroutines standing in for the SM array.
//
// What it deliberately does not reproduce is CUDA's absolute speed; the
// calibrated discrete-event model in internal/machine carries the
// paper-scale timing, while this device carries the concurrency behavior
// and produces bit-identical results to the CPU path.
package gpu

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hybridstitch/internal/fault"
	"hybridstitch/internal/obs"
)

// ErrOutOfMemory is returned by Alloc when the device pool is exhausted —
// the condition whose avoidance drives the paper's buffer-pool and
// reference-counting design.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// ErrClosed is returned when enqueueing on a closed device.
var ErrClosed = errors.New("gpu: device closed")

// Config describes one simulated card.
type Config struct {
	// Name labels the device in profiles ("GPU0").
	Name string
	// MemWords is the device memory capacity in complex128 words. The
	// Tesla C2070's 6 GB hold ≈258 full-tile transforms of the paper's
	// 1392×1040 tiles — an order of magnitude fewer than the 2478-tile
	// grid needs, hence the buffer pool and reference counting.
	MemWords int64
	// CopyEngines bounds concurrent DMA transfers (the C2070 has 2:
	// one per direction).
	CopyEngines int
	// KernelSlots bounds concurrently executing kernels. 1 models the
	// Fermi-era cuFFT register-pressure serialization the paper works
	// around; Kepler/Hyper-Q behavior raises it.
	KernelSlots int
	// H2DBytesPerSec, if positive, injects a transfer delay of
	// size/bandwidth per host-to-device copy, modeling PCIe. Zero means
	// no artificial delay.
	H2DBytesPerSec float64
	// D2HBytesPerSec is the device-to-host analogue.
	D2HBytesPerSec float64
	// Profile enables the timeline recorder.
	Profile bool
	// Obs, if set, records this device's timeline into a shared
	// observability recorder (implies Profile): spans land on tracks
	// "<Name>/<stream>/<kind>" and the device's epoch is aligned to the
	// recorder's, so GPU and CPU spans share one clock. The caller owns
	// the recorder's lifecycle.
	Obs *obs.Recorder
	// Faults, if set, makes allocations, copies, and kernel launches
	// error points (sites "gpu.alloc", "gpu.copy.h2d", "gpu.copy.d2h",
	// "gpu.kernel.<name>"). Nil costs nothing.
	Faults *fault.Injector
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "GPU"
	}
	if c.MemWords <= 0 {
		c.MemWords = 64 << 20 // 1 GiB of complex128
	}
	if c.CopyEngines <= 0 {
		c.CopyEngines = 2
	}
	if c.KernelSlots <= 0 {
		c.KernelSlots = 1
	}
	return c
}

// Device is one simulated GPU card.
type Device struct {
	cfg   Config
	epoch time.Time

	memMu    sync.Mutex
	memUsed  int64
	memPeak  int64
	allocs   int64
	oomSeen  bool
	memAvail *sync.Cond

	copySem   chan struct{}
	kernelSem chan struct{}

	streamMu sync.Mutex
	streams  []*Stream
	closed   bool

	timeline *Timeline

	// now is the dispatcher clock, a seam so tests can freeze time and
	// prove span ordering survives timestamp collisions.
	now func() time.Time
}

// New creates a device.
func New(cfg Config) *Device {
	cfg = cfg.withDefaults()
	d := &Device{
		cfg:       cfg,
		epoch:     time.Now(),
		copySem:   make(chan struct{}, cfg.CopyEngines),
		kernelSem: make(chan struct{}, cfg.KernelSlots),
		now:       time.Now,
	}
	d.memAvail = sync.NewCond(&d.memMu)
	switch {
	case cfg.Obs != nil:
		d.epoch = cfg.Obs.Epoch() // one clock with the rest of the run
		d.timeline = newTimeline(cfg.Obs, cfg.Name)
	case cfg.Profile:
		d.timeline = NewTimeline(d.epoch)
	}
	return d
}

// Name returns the device label.
func (d *Device) Name() string { return d.cfg.Name }

// MemWords returns the configured capacity.
func (d *Device) MemWords() int64 { return d.cfg.MemWords }

// Buffer is a device-memory allocation. Its Data lives in host RAM (the
// simulator has no real VRAM) but is accounted against the device pool,
// and the pipeline treats it as device-resident: host code only touches
// it through Memcpy operations and kernels.
type Buffer struct {
	dev      *Device
	Data     []complex128
	words    int64
	freed    bool
	spectrum bool // allocated via AllocSpectrum (r2c half-spectrum buffer)
	mu       sync.Mutex
}

// Words returns the allocation size.
func (b *Buffer) Words() int64 { return b.words }

// Alloc reserves words of device memory, failing with ErrOutOfMemory if
// the pool cannot hold the request.
func (d *Device) Alloc(words int64) (*Buffer, error) {
	if words <= 0 {
		return nil, fmt.Errorf("gpu: invalid allocation of %d words", words)
	}
	if err := d.cfg.Faults.Hit(fault.SiteGPUAlloc, d.cfg.Name); err != nil {
		return nil, err
	}
	d.memMu.Lock()
	defer d.memMu.Unlock()
	if d.memUsed+words > d.cfg.MemWords {
		d.oomSeen = true
		return nil, fmt.Errorf("%w: %d used + %d requested > %d capacity",
			ErrOutOfMemory, d.memUsed, words, d.cfg.MemWords)
	}
	d.memUsed += words
	d.allocs++
	if d.memUsed > d.memPeak {
		d.memPeak = d.memUsed
	}
	return &Buffer{dev: d, Data: make([]complex128, words), words: words}, nil
}

// AllocSpectrum reserves a half-spectrum transform buffer for h×w real
// tiles: h·(w/2+1) complex128 words, roughly half a full complex
// transform — the device-memory saving of the r2c path. It is a distinct
// fault site (gpu.alloc.spectrum) layered on top of the generic
// gpu.alloc one, so injection specs can target r2c buffers specifically;
// the buffer's Free passes through gpu.free.spectrum the same way.
func (d *Device) AllocSpectrum(h, w int) (*Buffer, error) {
	if h <= 0 || w < 2 {
		return nil, fmt.Errorf("gpu: invalid spectrum allocation for %dx%d tiles", h, w)
	}
	if err := d.cfg.Faults.Hit(fault.SiteGPUAllocSpectrum, d.cfg.Name); err != nil {
		return nil, err
	}
	b, err := d.Alloc(int64(h) * int64(w/2+1))
	if err != nil {
		return nil, err
	}
	b.spectrum = true
	return b, nil
}

// AllocBlocking reserves words of device memory, waiting for frees if the
// pool is currently full. It fails immediately if the request can never
// fit.
func (d *Device) AllocBlocking(words int64) (*Buffer, error) {
	if words <= 0 {
		return nil, fmt.Errorf("gpu: invalid allocation of %d words", words)
	}
	if words > d.cfg.MemWords {
		return nil, fmt.Errorf("%w: request %d exceeds total capacity %d", ErrOutOfMemory, words, d.cfg.MemWords)
	}
	if err := d.cfg.Faults.Hit(fault.SiteGPUAlloc, d.cfg.Name); err != nil {
		return nil, err
	}
	d.memMu.Lock()
	defer d.memMu.Unlock()
	for d.memUsed+words > d.cfg.MemWords {
		d.memAvail.Wait()
	}
	d.memUsed += words
	d.allocs++
	if d.memUsed > d.memPeak {
		d.memPeak = d.memUsed
	}
	return &Buffer{dev: d, Data: make([]complex128, words), words: words}, nil
}

// Free returns a buffer to the pool. Double frees are rejected. For
// half-spectrum buffers the free itself is an error point
// (gpu.free.spectrum): an injected fault leaves the buffer allocated.
func (b *Buffer) Free() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.freed {
		return fmt.Errorf("gpu: double free of %d-word buffer", b.words)
	}
	if b.spectrum {
		if err := b.dev.cfg.Faults.Hit(fault.SiteGPUFreeSpectrum, b.dev.cfg.Name); err != nil {
			return err
		}
	}
	b.freed = true
	d := b.dev
	d.memMu.Lock()
	d.memUsed -= b.words
	d.memAvail.Broadcast()
	d.memMu.Unlock()
	b.Data = nil
	return nil
}

// MemStats reports current usage, peak usage, allocation count, and
// whether any allocation has ever failed.
func (d *Device) MemStats() (used, peak, allocs int64, oomSeen bool) {
	d.memMu.Lock()
	defer d.memMu.Unlock()
	return d.memUsed, d.memPeak, d.allocs, d.oomSeen
}

// Timeline returns the profiler timeline (nil unless Config.Profile or
// Config.Obs).
func (d *Device) Timeline() *Timeline { return d.timeline }

// Synchronize blocks until every stream has drained its queue.
func (d *Device) Synchronize() {
	d.streamMu.Lock()
	streams := append([]*Stream(nil), d.streams...)
	d.streamMu.Unlock()
	for _, s := range streams {
		s.Synchronize()
	}
}

// Close drains and shuts down all streams. The device rejects new work
// afterwards.
func (d *Device) Close() {
	d.streamMu.Lock()
	if d.closed {
		d.streamMu.Unlock()
		return
	}
	d.closed = true
	streams := append([]*Stream(nil), d.streams...)
	d.streamMu.Unlock()
	for _, s := range streams {
		s.close()
	}
	// An owned timeline recorder (Config.Profile without Config.Obs) has a
	// flusher goroutine to release; a shared recorder stays with its owner.
	d.timeline.Close()
}
