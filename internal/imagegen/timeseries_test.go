package imagegen

import (
	"testing"
)

func seriesParams() SeriesParams {
	p := DefaultParams(3, 3, 64, 48)
	p.NoiseAmp = 0
	p.Vignetting = false
	return SeriesParams{Params: p, Scans: 3}
}

func TestTimeSeriesBasics(t *testing.T) {
	sp := seriesParams()
	scans, err := GenerateTimeSeries(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(scans) != 3 {
		t.Fatalf("got %d scans", len(scans))
	}
	for s, ds := range scans {
		if len(ds.Tiles) != 9 {
			t.Fatalf("scan %d has %d tiles", s, len(ds.Tiles))
		}
	}
}

func TestTimeSeriesSharedBackground(t *testing.T) {
	// Without camera noise, two scans differ ONLY where colonies grew:
	// the majority of pixels (background) must be identical between
	// scans even though tiles re-jittered — compare via ground-truth
	// aligned positions.
	scans, err := GenerateTimeSeries(seriesParams())
	if err != nil {
		t.Fatal(err)
	}
	a, b := scans[0], scans[1]
	same, total := 0, 0
	g := a.Params.Grid
	for i := 0; i < g.NumTiles(); i++ {
		ta, tb := a.Tiles[i], b.Tiles[i]
		// Align through plate coordinates: pixel (x,y) of tile i in
		// scan A sits at plate (TruthX+x, TruthY+y); find the same
		// plate pixel in scan B's tile.
		dx := a.TruthX[i] - b.TruthX[i]
		dy := a.TruthY[i] - b.TruthY[i]
		for y := 4; y < ta.H-4; y += 3 {
			for x := 4; x < ta.W-4; x += 3 {
				bx, by := x+dx, y+dy
				if bx < 0 || by < 0 || bx >= tb.W || by >= tb.H {
					continue
				}
				total++
				if ta.At(x, y) == tb.At(bx, by) {
					same++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no comparable pixels")
	}
	if frac := float64(same) / float64(total); frac < 0.80 {
		t.Errorf("only %.0f%% of aligned pixels identical between scans; background should dominate", 100*frac)
	}
}

func TestTimeSeriesColoniesGrow(t *testing.T) {
	sp := seriesParams()
	sp.Params.ColonyDensity = 20
	scans, err := GenerateTimeSeries(sp)
	if err != nil {
		t.Fatal(err)
	}
	occupancy := func(ds *Dataset) float64 {
		bright, total := 0, 0
		for _, tl := range ds.Tiles {
			for _, px := range tl.Pix {
				total++
				if px > 12000 {
					bright++
				}
			}
		}
		return float64(bright) / float64(total)
	}
	prev := -1.0
	for s, ds := range scans {
		occ := occupancy(ds)
		if occ < prev {
			t.Errorf("scan %d occupancy %.4f below scan %d's %.4f", s, occ, s-1, prev)
		}
		prev = occ
	}
	if first, last := occupancy(scans[0]), occupancy(scans[len(scans)-1]); last < 1.5*first {
		t.Errorf("colonies barely grew: %.4f -> %.4f", first, last)
	}
}

func TestTimeSeriesJitterVariesPerScan(t *testing.T) {
	scans, err := GenerateTimeSeries(seriesParams())
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range scans[0].TruthX {
		if scans[0].TruthX[i] != scans[1].TruthX[i] || scans[0].TruthY[i] != scans[1].TruthY[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("stage jitter identical across scans")
	}
}

func TestTimeSeriesReproducible(t *testing.T) {
	a, err := GenerateTimeSeries(seriesParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTimeSeries(seriesParams())
	if err != nil {
		t.Fatal(err)
	}
	for s := range a {
		for i := range a[s].Tiles[0].Pix {
			if a[s].Tiles[0].Pix[i] != b[s].Tiles[0].Pix[i] {
				t.Fatalf("scan %d not reproducible", s)
			}
		}
	}
}

func TestTimeSeriesErrors(t *testing.T) {
	sp := seriesParams()
	sp.Scans = 0
	if _, err := GenerateTimeSeries(sp); err == nil {
		t.Error("zero scans should fail")
	}
	sp = seriesParams()
	sp.Params.MaxJitter = 50
	if _, err := GenerateTimeSeries(sp); err == nil {
		t.Error("excessive jitter should fail")
	}
	sp = seriesParams()
	sp.Params.Grid.Rows = 0
	if _, err := GenerateTimeSeries(sp); err == nil {
		t.Error("invalid grid should fail")
	}
}
