package imagegen

import "fmt"

// Scenario is one named plate configuration with exact per-pair ground
// truth — the accuracy harness' unit of work, the way a benchmark
// function is the bench harness'. Adversarial scenarios are built so raw
// phase correlation gets some pairs wrong; the pipeline passes them only
// when the confidence-weighted machinery (refine fallback, IRLS solve)
// survives what the per-pair aligner could not.
type Scenario struct {
	Name string
	// Description states the failure mode the scenario stresses.
	Description string
	// Adversarial marks configurations designed to defeat raw phase
	// correlation; the nominal scenarios instead gate that robustness
	// machinery stays bit-identical where nothing needs rescuing.
	Adversarial bool
	// Params is the generator configuration, grid included. Callers set
	// Params.Seed before generating.
	Params Params
}

// Generate renders the scenario's dataset at the given seed.
func (sc Scenario) Generate(seed int64) (*Dataset, error) {
	p := sc.Params
	p.Seed = seed
	ds, err := Generate(p)
	if err != nil {
		return nil, fmt.Errorf("imagegen: scenario %q: %w", sc.Name, err)
	}
	return ds, nil
}

// Scenarios returns the named accuracy scenarios at the given grid
// shape. Every configuration is validated at construction, so a bad
// parameter combination fails here — at definition time — rather than
// deep inside a harness run. Tiles should be at least ≈96×64 px for the
// adversarial settings to leave a usable overlap.
func Scenarios(rows, cols, tw, th int) []Scenario {
	scs := []Scenario{
		{
			Name:        "nominal",
			Description: "feature-rich plate; every pair resolvable by phase correlation alone",
			Params:      DefaultParams(rows, cols, tw, th),
		},
		{
			Name:        "near-blank",
			Description: "early-experiment plate: sparse colonies, shared texture faded to 40%, sensor noise rivaling it in the overlaps",
			Adversarial: true,
			Params: func() Params {
				p := DefaultParams(rows, cols, tw, th)
				p.ColonyDensity = 0.8
				p.TextureDim = 0.6
				p.NoiseAmp = 80
				return p
			}(),
		},
		{
			Name:        "illum-gradient",
			Description: "camera-fixed ±35% illumination ramp: shared overlap pixels differ between the pair's tiles",
			Adversarial: true,
			Params: func() Params {
				p := DefaultParams(rows, cols, tw, th)
				p.IllumGradient = 0.35
				return p
			}(),
		},
		{
			Name:        "periodic",
			Description: "repeating 16 px texture over a sparse plate: correlation peaks alias modulo the period",
			Adversarial: true,
			Params: func() Params {
				p := DefaultParams(rows, cols, tw, th)
				p.ColonyDensity = 0.6
				p.TextureDim = 0.9
				p.PeriodicAmp = 9000
				p.PeriodPx = 16
				p.NoiseAmp = 60
				return p
			}(),
		},
		{
			Name:        "drift-low-overlap",
			Description: "aggressive thermal drift at reduced overlap: row-dependent strides on thin, sparse overlap regions",
			Adversarial: true,
			Params: func() Params {
				p := DefaultParams(rows, cols, tw, th)
				p.Grid.OverlapX = 0.15
				p.Grid.OverlapY = 0.15
				p.MaxJitter = 2
				p.ThermalDrift = 0.5
				p.ColonyDensity = 4
				p.TextureDim = 0.5
				p.NoiseAmp = 60
				return p
			}(),
		},
	}
	for _, sc := range scs {
		if err := sc.Params.Validate(); err != nil {
			// A scenario that cannot generate is a programming error in
			// this table, not a runtime condition.
			panic(fmt.Sprintf("imagegen: scenario %q invalid: %v", sc.Name, err))
		}
	}
	return scs
}

// ScenarioByName finds a scenario in Scenarios(rows, cols, tw, th).
func ScenarioByName(name string, rows, cols, tw, th int) (Scenario, error) {
	var names []string
	for _, sc := range Scenarios(rows, cols, tw, th) {
		if sc.Name == name {
			return sc, nil
		}
		names = append(names, sc.Name)
	}
	return Scenario{}, fmt.Errorf("imagegen: unknown scenario %q (have %v)", name, names)
}
