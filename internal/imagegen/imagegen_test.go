package imagegen

import (
	"strings"
	"testing"
	"testing/quick"

	"hybridstitch/internal/tile"
)

func TestGenerateBasics(t *testing.T) {
	p := DefaultParams(3, 4, 64, 48)
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Tiles) != 12 {
		t.Fatalf("tile count %d", len(ds.Tiles))
	}
	for i, tl := range ds.Tiles {
		if tl.W != 64 || tl.H != 48 {
			t.Fatalf("tile %d dims %dx%d", i, tl.W, tl.H)
		}
	}
	if ds.Plate != nil {
		t.Error("Generate should not keep the plate")
	}
}

func TestGenerateReproducible(t *testing.T) {
	p := DefaultParams(2, 2, 32, 32)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tiles {
		for j := range a.Tiles[i].Pix {
			if a.Tiles[i].Pix[j] != b.Tiles[i].Pix[j] {
				t.Fatalf("tile %d pixel %d differs between identical seeds", i, j)
			}
		}
	}
	p.Seed = 99
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a.Tiles[0].Pix {
		if a.Tiles[0].Pix[j] != c.Tiles[0].Pix[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tiles")
	}
}

func TestGroundTruthGeometry(t *testing.T) {
	p := DefaultParams(4, 5, 40, 40)
	p.MaxJitter = 2
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Grid
	nominalW := g.NominalDisplacement(tile.West)
	nominalN := g.NominalDisplacement(tile.North)
	for _, pr := range g.Pairs() {
		d := ds.TrueDisplacement(pr)
		var nom tile.Displacement
		if pr.Dir == tile.West {
			nom = nominalW
		} else {
			nom = nominalN
		}
		if abs(d.X-nom.X) > 2*p.MaxJitter || abs(d.Y-nom.Y) > 2*p.MaxJitter {
			t.Errorf("pair %v: truth %+v strays more than 2·jitter from nominal %+v", pr, d, nom)
		}
	}
}

func TestTilesOverlapConsistency(t *testing.T) {
	// Without per-tile post-processing, the shared region of adjacent
	// tiles must match the plate exactly at the ground-truth offset.
	p := DefaultParams(2, 3, 48, 40)
	p.NoiseAmp = 0
	p.Vignetting = false
	ds, err := GenerateWithPlate(p)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Plate == nil {
		t.Fatal("plate not kept")
	}
	g := p.Grid
	for _, pr := range g.Pairs() {
		ti := ds.Tile(pr.Coord)
		i := g.Index(pr.Coord)
		// every pixel of the tile matches the plate at its truth offset
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				if ti.At(x, y) != ds.Plate.At(ds.TruthX[i]+x, ds.TruthY[i]+y) {
					t.Fatalf("tile %v does not match plate at truth position", pr.Coord)
				}
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	p := DefaultParams(2, 2, 32, 32)
	p.MaxJitter = 10 // overlap is 0.2*32 ≈ 6 px; jitter too big
	if _, err := Generate(p); err == nil {
		t.Error("excessive jitter should fail")
	}
	p = DefaultParams(0, 2, 32, 32)
	if _, err := Generate(p); err == nil {
		t.Error("invalid grid should fail")
	}
	p = DefaultParams(2, 2, 32, 32)
	p.MaxJitter = -1
	if _, err := Generate(p); err == nil {
		t.Error("negative jitter should fail")
	}
}

// TestValidateRejections drives every Validate guard with the parameter
// combination it exists to catch, checking that the error both fires and
// names the offending field.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Params)
		wantSub string
	}{
		{"zero rows", func(p *Params) { p.Grid.Rows = 0 }, ""},
		{"overlap collapses stride", func(p *Params) { p.Grid.OverlapX = 0.999 }, "stride"},
		{"negative jitter", func(p *Params) { p.MaxJitter = -1 }, "jitter"},
		{"negative colony density", func(p *Params) { p.ColonyDensity = -0.5 }, "density"},
		{"negative noise amplitude", func(p *Params) { p.NoiseAmp = -1 }, "noise"},
		{"texture dim below range", func(p *Params) { p.TextureDim = -0.1 }, "texture dim"},
		{"texture dim above range", func(p *Params) { p.TextureDim = 1.5 }, "texture dim"},
		{"negative illumination gradient", func(p *Params) { p.IllumGradient = -0.2 }, "illumination gradient"},
		{"illumination gradient inverts gain", func(p *Params) { p.IllumGradient = 0.95 }, "illumination gradient"},
		{"negative periodic amplitude", func(p *Params) { p.PeriodicAmp = -100 }, "periodic amplitude"},
		{"period shorter than 4 px", func(p *Params) { p.PeriodicAmp = 5000; p.PeriodPx = 2 }, "period"},
		{"contraction collapses stride", func(p *Params) { p.ThermalDrift = -30 }, "collapses"},
		{"drift eats the overlap", func(p *Params) { p.ThermalDrift = 5.5 }, "no usable overlap"},
		{"jitter eats the overlap", func(p *Params) { p.MaxJitter = 13 }, "no usable overlap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams(5, 4, 128, 96)
			tc.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", p)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name the offending field (want %q)", err, tc.wantSub)
			}
			if _, err := Generate(p); err == nil {
				t.Fatal("Generate accepted parameters Validate rejects")
			}
		})
	}

	// The guards must not reject the configurations the suite depends on.
	if err := DefaultParams(5, 4, 128, 96).Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
	edge := DefaultParams(5, 4, 128, 96)
	edge.ThermalDrift = -2 // contraction within bounds
	edge.TextureDim = 1
	edge.IllumGradient = 0.9
	if err := edge.Validate(); err != nil {
		t.Errorf("boundary values rejected: %v", err)
	}
}

func TestJitterBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := DefaultParams(3, 3, 40, 40)
		p.Seed = seed
		p.MaxJitter = 3
		ds, err := Generate(p)
		if err != nil {
			return false
		}
		g := p.Grid
		strideX := int(float64(g.TileW) * (1 - g.OverlapX))
		strideY := int(float64(g.TileH) * (1 - g.OverlapY))
		margin := p.MaxJitter + 1
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				i := g.Index(tile.Coord{Row: r, Col: c})
				if abs(ds.TruthX[i]-(margin+c*strideX)) > p.MaxJitter {
					return false
				}
				if abs(ds.TruthY[i]-(margin+r*strideY)) > p.MaxJitter {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestColonyDensityAffectsContent(t *testing.T) {
	sparse := DefaultParams(1, 1, 128, 128)
	sparse.ColonyDensity = 0
	sparse.NoiseAmp = 0
	sparse.Vignetting = false
	dense := sparse
	dense.ColonyDensity = 200
	a, err := Generate(sparse)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(dense)
	if err != nil {
		t.Fatal(err)
	}
	// Dense plates must be brighter on average (colonies add light).
	if b.Tiles[0].Mean() <= a.Tiles[0].Mean() {
		t.Errorf("dense mean %g not above sparse mean %g", b.Tiles[0].Mean(), a.Tiles[0].Mean())
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestThermalDrift(t *testing.T) {
	p := DefaultParams(5, 4, 128, 96)
	p.ThermalDrift = 1.5
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// West displacements must grow with row: row 4's stride exceeds
	// row 0's by round(1.5·4) = 6 px (± jitter).
	rowDX := func(r int) int {
		d := ds.TrueDisplacement(tile.Pair{Coord: tile.Coord{Row: r, Col: 1}, Dir: tile.West})
		return d.X
	}
	if diff := rowDX(4) - rowDX(0); diff < 6-2*p.MaxJitter || diff > 6+2*p.MaxJitter {
		t.Errorf("drift across rows = %d px, want ≈6", diff)
	}
	// Excessive drift must be rejected.
	p.ThermalDrift = 10
	if _, err := Generate(p); err == nil {
		t.Error("drift that destroys overlap should fail")
	}
}
