package imagegen

import (
	"strings"
	"testing"
)

func TestScenariosTable(t *testing.T) {
	scs := Scenarios(3, 3, 96, 64)
	wantNames := []string{"nominal", "near-blank", "illum-gradient", "periodic", "drift-low-overlap"}
	if len(scs) != len(wantNames) {
		t.Fatalf("got %d scenarios, want %d", len(scs), len(wantNames))
	}
	for i, sc := range scs {
		if sc.Name != wantNames[i] {
			t.Errorf("scenario %d named %q, want %q", i, sc.Name, wantNames[i])
		}
		if sc.Description == "" {
			t.Errorf("scenario %q has no description", sc.Name)
		}
		if adversarial := sc.Name != "nominal"; sc.Adversarial != adversarial {
			t.Errorf("scenario %q adversarial = %v, want %v", sc.Name, sc.Adversarial, adversarial)
		}
		if err := sc.Params.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", sc.Name, err)
		}
	}
}

func TestScenariosGenerate(t *testing.T) {
	for _, sc := range Scenarios(3, 3, 96, 64) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			ds, err := sc.Generate(7)
			if err != nil {
				t.Fatal(err)
			}
			if len(ds.Tiles) != 9 || len(ds.TruthX) != 9 || len(ds.TruthY) != 9 {
				t.Fatalf("lengths tiles=%d truthX=%d truthY=%d, want 9", len(ds.Tiles), len(ds.TruthX), len(ds.TruthY))
			}
			if ds.Params.Seed != 7 {
				t.Errorf("seed %d not threaded through, want 7", ds.Params.Seed)
			}
			// Same scenario, same seed: generation must be deterministic.
			again, err := sc.Generate(7)
			if err != nil {
				t.Fatal(err)
			}
			for j := range ds.Tiles[0].Pix {
				if ds.Tiles[0].Pix[j] != again.Tiles[0].Pix[j] {
					t.Fatal("same seed produced different tiles")
				}
			}
		})
	}
}

func TestScenarioByName(t *testing.T) {
	sc, err := ScenarioByName("periodic", 3, 3, 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "periodic" || !sc.Adversarial || sc.Params.PeriodicAmp <= 0 {
		t.Errorf("lookup returned %+v", sc)
	}
	if _, err := ScenarioByName("no-such", 3, 3, 96, 64); err == nil || !strings.Contains(err.Error(), "no-such") {
		t.Errorf("unknown name error = %v, want it to name the miss", err)
	}
}

// TestZeroKnobsInert pins back-compat: the adversarial knobs at their
// zero values must not change generation at all — same rng consumption,
// bit-identical tiles — so every pre-existing seed stays reproducible.
func TestZeroKnobsInert(t *testing.T) {
	base := DefaultParams(2, 2, 48, 40)
	withKnobs := base
	withKnobs.TextureDim = 0
	withKnobs.IllumGradient = 0
	withKnobs.PeriodicAmp = 0
	withKnobs.PeriodPx = 16 // irrelevant while PeriodicAmp is 0
	a, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(withKnobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tiles {
		for j := range a.Tiles[i].Pix {
			if a.Tiles[i].Pix[j] != b.Tiles[i].Pix[j] {
				t.Fatalf("tile %d pixel %d changed with zero-valued knobs", i, j)
			}
		}
	}
}
