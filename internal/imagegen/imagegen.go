// Package imagegen synthesizes microscopy-plate datasets with known
// ground truth. It stands in for the NIST A10 cell-colony acquisitions the
// paper evaluates on (42×59 grid, 1392×1040 16-bit tiles): a large virtual
// plate image is rendered once — value-noise background texture, cell
// colonies seeded at controllable density, optical vignetting, and sensor
// noise — and overlapping tiles are then cut from it with per-tile stage
// jitter, mimicking the microscope's mechanical positioning error. The
// cut positions are retained as ground truth so stitching accuracy can be
// validated, something the paper's real dataset could not offer.
package imagegen

import (
	"fmt"
	"math"
	"math/rand"

	"hybridstitch/internal/tile"
)

// Params configures a synthetic dataset.
type Params struct {
	Grid tile.Grid // layout, tile size, nominal overlaps

	// MaxJitter is the maximum absolute stage positioning error, in
	// pixels, applied independently per axis per tile. It must be
	// smaller than the nominal overlap or adjacent tiles may not share
	// pixels at all.
	MaxJitter int

	// ColonyDensity controls how many cell colonies are seeded per
	// megapixel of plate. Low densities (≈1–3) reproduce the paper's
	// hard case: early-experiment plates with few distinguishable
	// features in overlap regions. Higher values (≥10) give feature-rich
	// plates.
	ColonyDensity float64

	// NoiseAmp is the amplitude of per-pixel sensor noise in 16-bit
	// counts (σ of a triangular distribution).
	NoiseAmp float64

	// Vignetting enables a per-tile radial illumination falloff, a
	// fixed-pattern deviation between tiles that phase correlation must
	// tolerate.
	Vignetting bool

	// ThermalDrift models stage expansion over the scan: the effective
	// horizontal stride grows by ThermalDrift pixels per row (rows are
	// scanned in time order), so west-pair displacements become
	// row-dependent — the systematic error a constant (median) stage
	// model cannot capture and a linear fit can. Negative values model
	// contraction; the magnitude is bounded by the overlap either way.
	ThermalDrift float64

	// TextureDim fades the shared plate texture (value-noise background
	// and fine micro-texture): 0 keeps the full texture, 1 renders a
	// flat background. Values near 1 reproduce the adversarial
	// near-blank plate whose overlap regions carry almost no signal for
	// phase correlation to lock onto.
	TextureDim float64

	// IllumGradient applies a camera-fixed horizontal gain ramp per
	// tile: pixel gain runs linearly from 1−IllumGradient at the left
	// edge to 1+IllumGradient at the right edge. Because the ramp is
	// fixed to the camera rather than the plate, the two tiles of a pair
	// see their shared overlap pixels under different illumination — a
	// fixed-pattern deviation the normalized aligner must tolerate.
	// Valid range [0, 0.9].
	IllumGradient float64

	// PeriodicAmp adds a plate-level periodic texture (two orthogonal
	// sinusoids) of this amplitude in 16-bit counts. Over sparse plates
	// the pattern aliases the correlation surface: displacements
	// congruent modulo PeriodPx produce near-identical peaks, the
	// classic repeating-texture failure of phase correlation.
	PeriodicAmp float64
	// PeriodPx is the period of that texture in pixels; required ≥ 4
	// when PeriodicAmp > 0 (shorter periods vanish into sensor noise).
	PeriodPx float64

	// Seed makes generation reproducible.
	Seed int64
}

// DefaultParams returns a small feature-rich dataset configuration.
func DefaultParams(rows, cols, tileW, tileH int) Params {
	return Params{
		Grid: tile.Grid{
			Rows: rows, Cols: cols,
			TileW: tileW, TileH: tileH,
			OverlapX: 0.2, OverlapY: 0.2,
		},
		MaxJitter:     3,
		ColonyDensity: 12,
		NoiseAmp:      80,
		Vignetting:    true,
		Seed:          1,
	}
}

// Dataset is a generated tile grid plus its ground truth.
type Dataset struct {
	Params Params
	Tiles  []*tile.Gray16 // row-major, len Grid.NumTiles()
	// TruthX/TruthY give each tile's true top-left position on the
	// virtual plate, in pixels.
	TruthX, TruthY []int
	// Plate is the full rendered plate (nil unless KeepPlate was used).
	Plate *tile.Gray16
}

// Tile returns the tile at the given coordinate.
func (d *Dataset) Tile(c tile.Coord) *tile.Gray16 {
	return d.Tiles[d.Params.Grid.Index(c)]
}

// TrueDisplacement returns the ground-truth displacement for a pair,
// matching the convention of the stitching phase: for a west pair the
// translation of the tile relative to its west neighbor; for a north pair
// the translation of the tile relative to its north neighbor.
func (d *Dataset) TrueDisplacement(p tile.Pair) tile.Displacement {
	g := d.Params.Grid
	i := g.Index(p.Coord)
	j := g.Index(p.Neighbor())
	return tile.Displacement{
		X:    d.TruthX[i] - d.TruthX[j],
		Y:    d.TruthY[i] - d.TruthY[j],
		Corr: 1,
	}
}

// Generate renders the plate and cuts the tile grid.
func Generate(p Params) (*Dataset, error) {
	return generate(p, false)
}

// GenerateWithPlate additionally retains the full plate image for
// composition comparisons.
func GenerateWithPlate(p Params) (*Dataset, error) {
	return generate(p, true)
}

// strides returns the nominal column and row strides in pixels.
func (p Params) strides() (strideX, strideY int) {
	return int(float64(p.Grid.TileW) * (1 - p.Grid.OverlapX)),
		int(float64(p.Grid.TileH) * (1 - p.Grid.OverlapY))
}

// maxDrift returns the worst-case accumulated per-row drift in pixels.
func (p Params) maxDrift() int {
	return int(math.Ceil(math.Abs(p.ThermalDrift) * float64(p.Grid.Rows-1)))
}

// Validate rejects parameter combinations that would silently generate a
// degenerate plate — tiles that drift or jitter out of overlap, negative
// noise or density, illumination that inverts the image — with an error
// naming the offending field. Generate calls it; scenario authors should
// call it up front so a bad configuration fails at definition time, not
// after a plate has been rendered.
func (p Params) Validate() error {
	if err := p.Grid.Validate(); err != nil {
		return err
	}
	g := p.Grid
	strideX, strideY := p.strides()
	if strideX <= 0 || strideY <= 0 {
		return fmt.Errorf("imagegen: overlap (%g, %g) leaves non-positive stride (%d, %d)", g.OverlapX, g.OverlapY, strideX, strideY)
	}
	if p.MaxJitter < 0 {
		return fmt.Errorf("imagegen: negative jitter %d", p.MaxJitter)
	}
	if p.ColonyDensity < 0 {
		return fmt.Errorf("imagegen: negative colony density %g", p.ColonyDensity)
	}
	if p.NoiseAmp < 0 {
		return fmt.Errorf("imagegen: negative noise amplitude %g", p.NoiseAmp)
	}
	if p.TextureDim < 0 || p.TextureDim > 1 {
		return fmt.Errorf("imagegen: texture dim %g outside [0, 1]", p.TextureDim)
	}
	if p.IllumGradient < 0 || p.IllumGradient > 0.9 {
		return fmt.Errorf("imagegen: illumination gradient %g outside [0, 0.9] (beyond 0.9 the gain crosses zero)", p.IllumGradient)
	}
	if p.PeriodicAmp < 0 {
		return fmt.Errorf("imagegen: negative periodic amplitude %g", p.PeriodicAmp)
	}
	if p.PeriodicAmp > 0 && p.PeriodPx < 4 {
		return fmt.Errorf("imagegen: period %g px too short for amplitude %g (need ≥ 4 px)", p.PeriodPx, p.PeriodicAmp)
	}
	maxDrift := p.maxDrift()
	if p.ThermalDrift < 0 && strideX-maxDrift <= 0 {
		return fmt.Errorf("imagegen: thermal drift %g collapses the column stride by row %d (stride %d, accumulated drift %d)",
			p.ThermalDrift, g.Rows-1, strideX, maxDrift)
	}
	if ox, oy := g.TileW-strideX, g.TileH-strideY; p.MaxJitter*2+maxDrift >= ox || p.MaxJitter*2 >= oy {
		return fmt.Errorf("imagegen: jitter %d + accumulated drift %d leave no usable overlap (have %d×%d px)", p.MaxJitter, maxDrift, ox, oy)
	}
	return nil
}

func generate(p Params, keepPlate bool) (*Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.Grid
	strideX, strideY := p.strides()
	maxDrift := p.maxDrift()

	// Plate dimensions with a jitter margin on every side, plus room
	// for thermal drift at the last row (the +maxDrift slack also covers
	// negative drift, which only shrinks positions).
	margin := p.MaxJitter + 1
	plateW := (strideX+maxDrift)*(g.Cols-1) + g.TileW + 2*margin
	plateH := strideY*(g.Rows-1) + g.TileH + 2*margin

	rng := rand.New(rand.NewSource(p.Seed))
	plate := renderPlate(plateW, plateH, p, rng)

	ds := &Dataset{
		Params: p,
		Tiles:  make([]*tile.Gray16, g.NumTiles()),
		TruthX: make([]int, g.NumTiles()),
		TruthY: make([]int, g.NumTiles()),
	}
	for r := 0; r < g.Rows; r++ {
		driftStride := strideX + int(math.Round(p.ThermalDrift*float64(r)))
		for c := 0; c < g.Cols; c++ {
			jx, jy := 0, 0
			if p.MaxJitter > 0 {
				jx = rng.Intn(2*p.MaxJitter+1) - p.MaxJitter
				jy = rng.Intn(2*p.MaxJitter+1) - p.MaxJitter
			}
			x := margin + c*driftStride + jx
			y := margin + r*strideY + jy
			i := g.Index(tile.Coord{Row: r, Col: c})
			ds.TruthX[i] = x
			ds.TruthY[i] = y
			t := plate.SubRect(x, y, g.TileW, g.TileH)
			postProcess(t, p, rng)
			ds.Tiles[i] = t
		}
	}
	if keepPlate {
		ds.Plate = plate
	}
	return ds, nil
}

// renderPlate draws the virtual plate: smooth value-noise background plus
// cell colonies.
func renderPlate(w, h int, p Params, rng *rand.Rand) *tile.Gray16 {
	plate := tile.NewGray16(w, h)

	// Background: two octaves of bilinear value noise around a dim base
	// level (out-of-focus culture-medium texture), plus a fine per-pixel
	// texture octave. The fine octave is part of the PLATE, not the
	// camera, so adjacent tiles share it in their overlap regions — the
	// debris-and-medium micro-texture that phase correlation locks onto
	// on real plates even when cell features are sparse.
	n1 := newValueNoise(rng, 64)
	n2 := newValueNoise(rng, 17)
	base := 6000.0
	// TextureDim fades every shared texture octave toward the flat base
	// level; the rng is still consumed identically so TextureDim=0 stays
	// bit-identical to the pre-knob generator.
	tex := 1 - p.TextureDim
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fine := (rng.Float64() + rng.Float64() - 1) * 500
			v := base + tex*(1800*n1.at(float64(x), float64(y))+600*n2.at(float64(x), float64(y))+fine)
			if p.PeriodicAmp > 0 {
				v += p.PeriodicAmp * 0.5 * (math.Sin(2*math.Pi*float64(x)/p.PeriodPx) + math.Sin(2*math.Pi*float64(y)/p.PeriodPx))
			}
			plate.Set(x, y, clamp16(v))
		}
	}

	// Colonies: clusters of soft-edged elliptical cells.
	megapixels := float64(w*h) / 1e6
	nColonies := int(p.ColonyDensity*megapixels + 0.5)
	for i := 0; i < nColonies; i++ {
		cx := rng.Float64() * float64(w)
		cy := rng.Float64() * float64(h)
		colonyR := 15 + rng.Float64()*40
		nCells := 4 + rng.Intn(24)
		for j := 0; j < nCells; j++ {
			ang := rng.Float64() * 2 * math.Pi
			dist := rng.Float64() * colonyR
			drawCell(plate,
				cx+math.Cos(ang)*dist,
				cy+math.Sin(ang)*dist,
				2.5+rng.Float64()*5, // radius
				0.6+rng.Float64()*0.8,
				6000+rng.Float64()*22000, // brightness over background
				rng)
		}
	}
	return plate
}

// drawCell adds a soft elliptical blob at (cx, cy).
func drawCell(img *tile.Gray16, cx, cy, r, aspect, amp float64, rng *rand.Rand) {
	theta := rng.Float64() * math.Pi
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	rx, ry := r, r*aspect
	ext := int(math.Max(rx, ry)) + 2
	x0, x1 := int(cx)-ext, int(cx)+ext
	y0, y1 := int(cy)-ext, int(cy)+ext
	for y := y0; y <= y1; y++ {
		if y < 0 || y >= img.H {
			continue
		}
		for x := x0; x <= x1; x++ {
			if x < 0 || x >= img.W {
				continue
			}
			dx, dy := float64(x)-cx, float64(y)-cy
			u := (dx*cosT + dy*sinT) / rx
			v := (-dx*sinT + dy*cosT) / ry
			d2 := u*u + v*v
			if d2 >= 1 {
				continue
			}
			// Smooth falloff with a brighter rim (cells image as rings
			// under phase contrast).
			fall := 1 - d2
			rim := math.Exp(-8 * (d2 - 0.55) * (d2 - 0.55))
			add := amp * (0.35*fall + 0.65*rim)
			img.Set(x, y, clamp16(float64(img.At(x, y))+add))
		}
	}
}

// postProcess applies per-tile camera effects: vignetting and sensor
// noise. These differ between tiles even in shared overlap regions, which
// is exactly why the stitcher normalizes correlation.
func postProcess(t *tile.Gray16, p Params, rng *rand.Rand) {
	if p.IllumGradient > 0 {
		for y := 0; y < t.H; y++ {
			for x := 0; x < t.W; x++ {
				gain := 1 + p.IllumGradient*(2*float64(x)/float64(t.W-1)-1)
				t.Set(x, y, clamp16(float64(t.At(x, y))*gain))
			}
		}
	}
	if p.Vignetting {
		cx, cy := float64(t.W)/2, float64(t.H)/2
		maxR2 := cx*cx + cy*cy
		for y := 0; y < t.H; y++ {
			for x := 0; x < t.W; x++ {
				dx, dy := float64(x)-cx, float64(y)-cy
				fall := 1 - 0.18*(dx*dx+dy*dy)/maxR2
				t.Set(x, y, clamp16(float64(t.At(x, y))*fall))
			}
		}
	}
	if p.NoiseAmp > 0 {
		for i := range t.Pix {
			// Triangular noise ≈ Gaussian but cheaper.
			n := (rng.Float64() + rng.Float64() - 1) * p.NoiseAmp
			t.Pix[i] = clamp16(float64(t.Pix[i]) + n)
		}
	}
}

func clamp16(v float64) uint16 {
	if v <= 0 {
		return 0
	}
	if v >= 65535 {
		return 65535
	}
	return uint16(v)
}

// valueNoise is bilinear interpolated lattice noise.
type valueNoise struct {
	cell float64
	w, h int
	grid []float64
}

func newValueNoise(rng *rand.Rand, cell float64) *valueNoise {
	const lattice = 96
	g := make([]float64, lattice*lattice)
	for i := range g {
		g[i] = rng.Float64()*2 - 1
	}
	return &valueNoise{cell: cell, w: lattice, h: lattice, grid: g}
}

func (v *valueNoise) at(x, y float64) float64 {
	gx := x / v.cell
	gy := y / v.cell
	x0 := int(math.Floor(gx))
	y0 := int(math.Floor(gy))
	fx := gx - float64(x0)
	fy := gy - float64(y0)
	// smoothstep
	fx = fx * fx * (3 - 2*fx)
	fy = fy * fy * (3 - 2*fy)
	sample := func(ix, iy int) float64 {
		ix = ((ix % v.w) + v.w) % v.w
		iy = ((iy % v.h) + v.h) % v.h
		return v.grid[iy*v.w+ix]
	}
	a := sample(x0, y0)*(1-fx) + sample(x0+1, y0)*fx
	b := sample(x0, y0+1)*(1-fx) + sample(x0+1, y0+1)*fx
	return a*(1-fy) + b*fy
}
