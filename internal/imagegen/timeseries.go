package imagegen

import (
	"fmt"
	"math"
	"math/rand"

	"hybridstitch/internal/tile"
)

// This file generates the paper's motivating workload: a long-running
// live-cell experiment that re-images the same plate every scan interval
// (§I: "the plate is 2×2 cm² and is scanned every 45 min ... scanned a
// plate 161 times"). The plate background (medium texture, debris) is
// FIXED across scans; the cell colonies grow between scans; the stage
// re-jitters on every pass. That is exactly what a stitching system sees
// over a five-day experiment.

// SeriesParams configures a time series of scans.
type SeriesParams struct {
	// Params is the base configuration; ColonyDensity sets the FINAL
	// scan's density.
	Params Params
	// Scans is the number of plate passes.
	Scans int
	// GrowthRate scales colony radius per scan: radius at scan s is
	// r·(Start + (1-Start)·(s+1)/Scans) with Start the initial size
	// fraction.
	StartFraction float64
}

// colonySeed is a colony's fixed identity across the series.
type colonySeed struct {
	cx, cy  float64
	radius  float64
	nCells  int
	cellRng int64
}

// GenerateTimeSeries renders the experiment: one dataset per scan, all
// sharing the same plate background, with colonies growing and fresh
// stage jitter per scan.
func GenerateTimeSeries(sp SeriesParams) ([]*Dataset, error) {
	if sp.Scans < 1 {
		return nil, fmt.Errorf("imagegen: need at least 1 scan, got %d", sp.Scans)
	}
	if sp.StartFraction <= 0 || sp.StartFraction > 1 {
		sp.StartFraction = 0.35
	}
	p := sp.Params
	if err := p.Grid.Validate(); err != nil {
		return nil, err
	}
	g := p.Grid
	strideX := int(float64(g.TileW) * (1 - g.OverlapX))
	strideY := int(float64(g.TileH) * (1 - g.OverlapY))
	if strideX <= 0 || strideY <= 0 {
		return nil, fmt.Errorf("imagegen: overlap leaves non-positive stride")
	}
	if ox, oy := g.TileW-strideX, g.TileH-strideY; p.MaxJitter < 0 || p.MaxJitter*2 >= ox || p.MaxJitter*2 >= oy {
		return nil, fmt.Errorf("imagegen: jitter %d incompatible with overlap (%d, %d)", p.MaxJitter, ox, oy)
	}

	margin := p.MaxJitter + 1
	plateW := strideX*(g.Cols-1) + g.TileW + 2*margin
	plateH := strideY*(g.Rows-1) + g.TileH + 2*margin

	// Fixed background and fixed colony identities from the base seed.
	rng := rand.New(rand.NewSource(p.Seed))
	background := renderBackground(plateW, plateH, rng)
	megapixels := float64(plateW*plateH) / 1e6
	nColonies := int(p.ColonyDensity*megapixels + 0.5)
	seeds := make([]colonySeed, nColonies)
	for i := range seeds {
		seeds[i] = colonySeed{
			cx:      rng.Float64() * float64(plateW),
			cy:      rng.Float64() * float64(plateH),
			radius:  15 + rng.Float64()*40,
			nCells:  4 + rng.Intn(24),
			cellRng: rng.Int63(),
		}
	}

	out := make([]*Dataset, sp.Scans)
	for s := 0; s < sp.Scans; s++ {
		grow := sp.StartFraction + (1-sp.StartFraction)*float64(s+1)/float64(sp.Scans)
		plate := background.Clone()
		for _, cs := range seeds {
			drawColony(plate, cs, grow)
		}
		// Fresh stage jitter per scan, deterministic per (seed, scan).
		scanRng := rand.New(rand.NewSource(p.Seed*1_000_003 + int64(s)))
		ds := &Dataset{
			Params: p,
			Tiles:  make([]*tile.Gray16, g.NumTiles()),
			TruthX: make([]int, g.NumTiles()),
			TruthY: make([]int, g.NumTiles()),
		}
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				jx, jy := 0, 0
				if p.MaxJitter > 0 {
					jx = scanRng.Intn(2*p.MaxJitter+1) - p.MaxJitter
					jy = scanRng.Intn(2*p.MaxJitter+1) - p.MaxJitter
				}
				x := margin + c*strideX + jx
				y := margin + r*strideY + jy
				i := g.Index(tile.Coord{Row: r, Col: c})
				ds.TruthX[i], ds.TruthY[i] = x, y
				t := plate.SubRect(x, y, g.TileW, g.TileH)
				postProcess(t, p, scanRng)
				ds.Tiles[i] = t
			}
		}
		out[s] = ds
	}
	return out, nil
}

// renderBackground draws the fixed plate texture: smooth value-noise
// octaves plus the per-pixel debris texture that phase correlation locks
// onto.
func renderBackground(w, h int, rng *rand.Rand) *tile.Gray16 {
	plate := tile.NewGray16(w, h)
	n1 := newValueNoise(rng, 64)
	n2 := newValueNoise(rng, 17)
	base := 6000.0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fine := (rng.Float64() + rng.Float64() - 1) * 500
			v := base + 1800*n1.at(float64(x), float64(y)) + 600*n2.at(float64(x), float64(y)) + fine
			plate.Set(x, y, clamp16(v))
		}
	}
	return plate
}

// drawColony renders one colony at the given growth fraction: cells
// spread to grow·radius and the visible cell count scales with area.
func drawColony(plate *tile.Gray16, cs colonySeed, grow float64) {
	rng := rand.New(rand.NewSource(cs.cellRng))
	r := cs.radius * grow
	n := int(math.Ceil(float64(cs.nCells) * grow * grow))
	if n < 1 {
		n = 1
	}
	for j := 0; j < n; j++ {
		ang := rng.Float64() * 2 * math.Pi
		dist := rng.Float64() * r
		drawCell(plate,
			cs.cx+math.Cos(ang)*dist,
			cs.cy+math.Sin(ang)*dist,
			2.5+rng.Float64()*5,
			0.6+rng.Float64()*0.8,
			6000+rng.Float64()*22000,
			rng)
	}
}
