package tiffio

import (
	"bytes"
	"errors"
	"testing"

	"hybridstitch/internal/tile"
)

// FuzzDecode asserts the decoder never panics and never returns a
// malformed image on arbitrary input — acquisition software crashes are
// a fact of life for five-day experiments, and a truncated tile file
// must surface as an error, not take the stitcher down.
func FuzzDecode(f *testing.F) {
	// Seed with a valid file and a few truncations of it.
	img := tile.NewGray16(9, 7)
	for i := range img.Pix {
		img.Pix[i] = uint16(i * 911)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, img, EncodeOpts{}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("II*\x00"))
	f.Add([]byte("MM\x00*"))
	var bigEndian bytes.Buffer
	if err := Encode(&bigEndian, img, EncodeOpts{BigEndian: true, RowsPerStrip: 2}); err != nil {
		f.Fatal(err)
	}
	f.Add(bigEndian.Bytes())

	// Corrupt-but-plausible inputs: valid header with the body mangled in
	// ways acquisition crashes actually produce (mid-strip truncation,
	// zeroed IFD, bit flips in the offsets).
	for _, cut := range []int{9, 16, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	flipped := append([]byte(nil), valid...)
	flipped[5] ^= 0xff
	f.Add(flipped)
	zeroIFD := append([]byte(nil), valid...)
	for i := 4; i < 8 && i < len(zeroIFD); i++ {
		zeroIFD[i] = 0
	}
	f.Add(zeroIFD)
	f.Add([]byte("II*\x00trunc"))
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(bytes.NewReader(data))
		if err != nil {
			// Rejecting is fine; panicking is not — and every rejection
			// must carry the ErrCorrupt classification so the stitcher can
			// mark the tile permanently degraded instead of retrying.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error not classified as ErrCorrupt: %v", err)
			}
			return
		}
		if img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H {
			t.Fatalf("accepted malformed image: %dx%d with %d pixels", img.W, img.H, len(img.Pix))
		}
	})
}

// FuzzPyramidRoundTrip drives OpenPyramid + tile reads over arbitrary
// bytes, seeded with real pyramid files. The reader backs the long-lived
// tile server, so a corrupt or adversarial pyramid must reject with an
// ErrCorrupt-classified error — never panic, never hand back a
// malformed tile.
func FuzzPyramidRoundTrip(f *testing.F) {
	img := tile.NewGray16(75, 50)
	for i := range img.Pix {
		img.Pix[i] = uint16(i * 257)
	}
	for _, opts := range []PyramidOpts{
		{TileW: 32, TileH: 32, MinSide: 40},
		{TileW: 32, TileH: 32, MinSide: 40, NoDeflate: true},
		{TileW: 16, TileH: 16, MinSide: 40, BigEndian: true},
	} {
		var sb seekBuffer
		pw, err := NewPyramidWriter(&sb, img.W, img.H, opts)
		if err != nil {
			f.Fatal(err)
		}
		cur := img
		for l := 0; l < pw.NumLevels(); l++ {
			if err := pw.WriteRows(l, cur.Pix, cur.H); err != nil {
				f.Fatal(err)
			}
			if l+1 < pw.NumLevels() {
				cur = halveImage(cur)
			}
		}
		if err := pw.Close(); err != nil {
			f.Fatal(err)
		}
		valid := sb.buf
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		f.Add(valid[:16])
		flipped := append([]byte(nil), valid...)
		flipped[11] ^= 0xff // first-IFD offset bit flip
		f.Add(flipped)
	}
	f.Add([]byte("II+\x00\x08\x00\x00\x00"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := OpenPyramid(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open error not classified as ErrCorrupt: %v", err)
			}
			return
		}
		for l := 0; l < p.NumLevels(); l++ {
			lv := p.Level(l)
			for _, tc := range [][2]int{{0, 0}, {lv.Across - 1, lv.Down - 1}} {
				tl, err := p.ReadTileAt(l, tc[0], tc[1])
				if err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("tile error not classified as ErrCorrupt: %v", err)
					}
					continue
				}
				if tl.W <= 0 || tl.H <= 0 || len(tl.Pix) != tl.W*tl.H {
					t.Fatalf("accepted malformed tile: %dx%d with %d pixels", tl.W, tl.H, len(tl.Pix))
				}
			}
		}
	})
}
