package tiffio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"hybridstitch/internal/tile"
)

func randImage(w, h int, seed int64) *tile.Gray16 {
	rng := rand.New(rand.NewSource(seed))
	img := tile.NewGray16(w, h)
	for i := range img.Pix {
		img.Pix[i] = uint16(rng.Intn(65536))
	}
	return img
}

func roundTrip(t *testing.T, img *tile.Gray16, opts EncodeOpts) *tile.Gray16 {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, img, opts); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func assertEqual(t *testing.T, got, want *tile.Gray16) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("dims %dx%d, want %dx%d", got.W, got.H, want.W, want.H)
	}
	for i := range want.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("pixel %d: got %d want %d", i, got.Pix[i], want.Pix[i])
		}
	}
}

func TestRoundTripLittleEndian(t *testing.T) {
	img := randImage(37, 23, 1)
	assertEqual(t, roundTrip(t, img, EncodeOpts{}), img)
}

func TestRoundTripBigEndian(t *testing.T) {
	img := randImage(16, 16, 2)
	assertEqual(t, roundTrip(t, img, EncodeOpts{BigEndian: true}), img)
}

func TestRoundTripMultiStrip(t *testing.T) {
	// RowsPerStrip 3 with 10 rows → 4 strips, last one short.
	img := randImage(12, 10, 3)
	assertEqual(t, roundTrip(t, img, EncodeOpts{RowsPerStrip: 3}), img)
}

func TestRoundTripSingleRowStrips(t *testing.T) {
	img := randImage(9, 7, 4)
	assertEqual(t, roundTrip(t, img, EncodeOpts{RowsPerStrip: 1}), img)
}

func TestRoundTripWideImageDefaultStrips(t *testing.T) {
	// Width 8192 makes one row > 8KiB, forcing rps clamp to 1.
	img := randImage(8192, 3, 5)
	assertEqual(t, roundTrip(t, img, EncodeOpts{}), img)
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, ws, hs, rs uint8) bool {
		w := int(ws)%40 + 1
		h := int(hs)%40 + 1
		img := randImage(w, h, seed)
		var buf bytes.Buffer
		if err := Encode(&buf, img, EncodeOpts{RowsPerStrip: int(rs) % (h + 2), BigEndian: seed%2 == 0}); err != nil {
			return false
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if got.W != w || got.H != h {
			return false
		}
		for i := range img.Pix {
			if got.Pix[i] != img.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecode8Bit(t *testing.T) {
	// Hand-assemble a tiny 8-bit 2x2 little-endian TIFF.
	// header(8) + pixels(4) + IFD
	pix := []byte{0, 128, 255, 17}
	var buf bytes.Buffer
	buf.Write([]byte{'I', 'I', 42, 0, 12, 0, 0, 0}) // IFD at 12
	buf.Write(pix)
	// 8 entries
	type e struct {
		tag, typ uint16
		cnt, val uint32
	}
	entries := []e{
		{tagImageWidth, typeShort, 1, 2},
		{tagImageLength, typeShort, 1, 2},
		{tagBitsPerSample, typeShort, 1, 8},
		{tagCompression, typeShort, 1, 1},
		{tagPhotometric, typeShort, 1, 1},
		{tagStripOffsets, typeLong, 1, 8},
		{tagRowsPerStrip, typeShort, 1, 2},
		{tagStripByteCounts, typeLong, 1, 4},
	}
	var cnt [2]byte
	cnt[0] = byte(len(entries))
	buf.Write(cnt[:])
	for _, en := range entries {
		var b [12]byte
		b[0] = byte(en.tag)
		b[1] = byte(en.tag >> 8)
		b[2] = byte(en.typ)
		b[3] = byte(en.typ >> 8)
		b[4] = byte(en.cnt)
		if en.typ == typeShort {
			b[8] = byte(en.val)
			b[9] = byte(en.val >> 8)
		} else {
			b[8] = byte(en.val)
			b[9] = byte(en.val >> 8)
			b[10] = byte(en.val >> 16)
			b[11] = byte(en.val >> 24)
		}
		buf.Write(b[:])
	}
	buf.Write([]byte{0, 0, 0, 0}) // next IFD
	img, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{0, 128 * 257, 255 * 257, 17 * 257}
	for i, v := range want {
		if img.Pix[i] != v {
			t.Errorf("pixel %d = %d, want %d", i, img.Pix[i], v)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"bad mark":   {'X', 'X', 42, 0, 8, 0, 0, 0},
		"bad magic":  {'I', 'I', 43, 0, 8, 0, 0, 0},
		"bad offset": {'I', 'I', 42, 0, 2, 0, 0, 0},
		"no ifd":     {'I', 'I', 42, 0, 8, 0, 0, 0},
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, tile.NewGray16(0, 5), EncodeOpts{}); err == nil {
		t.Error("empty image should fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tile.tif")
	img := randImage(20, 15, 9)
	if err := WriteFile(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, got, img)
	if _, err := ReadFile(filepath.Join(dir, "missing.tif")); err == nil {
		t.Error("missing file should fail")
	}
	if !os.IsNotExist(func() error { _, err := ReadFile(filepath.Join(dir, "missing.tif")); return err }()) {
		t.Error("missing file should return an IsNotExist error")
	}
}

func TestDecodeDimensionsViaLongTags(t *testing.T) {
	// Our encoder writes LONG dims; verify decode handles it (covered by
	// round trip) and that a 1x1 image works.
	img := tile.NewGray16(1, 1)
	img.Pix[0] = 4242
	assertEqual(t, roundTrip(t, img, EncodeOpts{}), img)
}

func TestTiledRoundTrip(t *testing.T) {
	// Image smaller than, equal to, and straddling tile boundaries.
	for _, dims := range [][2]int{{10, 10}, {64, 64}, {100, 70}, {65, 33}} {
		img := randImage(dims[0], dims[1], int64(dims[0]))
		got := roundTrip(t, img, EncodeOpts{TileW: 64, TileH: 32})
		assertEqual(t, got, img)
	}
}

func TestTiledBigEndianRoundTrip(t *testing.T) {
	img := randImage(90, 50, 77)
	got := roundTrip(t, img, EncodeOpts{TileW: 32, TileH: 16, BigEndian: true})
	assertEqual(t, got, img)
}

func TestTiledRejectsBadTileSize(t *testing.T) {
	var buf bytes.Buffer
	img := randImage(32, 32, 1)
	if err := Encode(&buf, img, EncodeOpts{TileW: 10, TileH: 16}); err == nil {
		t.Error("non-multiple-of-16 tile size should fail")
	}
}

func TestTiledProperty(t *testing.T) {
	f := func(seed int64, ws, hs uint8) bool {
		w := int(ws)%80 + 1
		h := int(hs)%80 + 1
		img := randImage(w, h, seed)
		var buf bytes.Buffer
		if err := Encode(&buf, img, EncodeOpts{TileW: 16, TileH: 16}); err != nil {
			return false
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for i := range img.Pix {
			if got.Pix[i] != img.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
