package tiffio

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"hybridstitch/internal/tile"
)

// seekBuffer is an in-memory io.WriteSeeker for pyramid tests.
type seekBuffer struct {
	buf []byte
	pos int64
}

func (s *seekBuffer) Write(p []byte) (int, error) {
	if need := s.pos + int64(len(p)); need > int64(len(s.buf)) {
		grown := make([]byte, need)
		copy(grown, s.buf)
		s.buf = grown
	}
	copy(s.buf[s.pos:], p)
	s.pos += int64(len(p))
	return len(p), nil
}

func (s *seekBuffer) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case 0:
		s.pos = off
	case 1:
		s.pos += off
	case 2:
		s.pos = int64(len(s.buf)) + off
	}
	if s.pos < 0 {
		return 0, fmt.Errorf("seek before start")
	}
	return s.pos, nil
}

// --- chunkLayout: the offset math behind both classic writers ---

func TestChunkLayoutAssignsSequentialOffsets(t *testing.T) {
	offs, cnts, end, err := chunkLayout(8, []int{100, 50, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	wantOffs := []uint32{8, 108, 158, 158}
	wantCnts := []uint32{100, 50, 0, 7}
	for i := range wantOffs {
		if offs[i] != wantOffs[i] || cnts[i] != wantCnts[i] {
			t.Fatalf("chunk %d: got (%d,%d), want (%d,%d)", i, offs[i], cnts[i], wantOffs[i], wantCnts[i])
		}
	}
	if end != 165 {
		t.Fatalf("end = %d, want 165", end)
	}
}

func TestChunkLayoutOverflow(t *testing.T) {
	// A chunk that starts past 4 GiB must be rejected, not wrapped. No
	// fixture needed: the math is exercised directly with 1 GiB sizes.
	gib := 1 << 30
	cases := []struct {
		name  string
		sizes []int
	}{
		{"chunk starts past 4GiB", []int{gib, gib, gib, gib, 1}},
		{"data ends past 4GiB", []int{gib, gib, gib, gib}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := chunkLayout(8, tc.sizes)
			if !errors.Is(err, ErrOffsetOverflow) {
				t.Fatalf("err = %v, want ErrOffsetOverflow", err)
			}
		})
	}
}

func TestChunkLayoutBoundary(t *testing.T) {
	// Ending exactly at MaxUint32 is representable; one byte more is not.
	fit := int(math.MaxUint32 - 8)
	if _, _, end, err := chunkLayout(8, []int{fit}); err != nil || end != math.MaxUint32 {
		t.Fatalf("exact fit: end=%d err=%v", end, err)
	}
	if _, _, _, err := chunkLayout(8, []int{fit + 1}); !errors.Is(err, ErrOffsetOverflow) {
		t.Fatalf("one past: err = %v, want ErrOffsetOverflow", err)
	}
	if _, _, _, err := chunkLayout(8, []int{-1}); err == nil || errors.Is(err, ErrOffsetOverflow) {
		t.Fatalf("negative size: err = %v, want plain error", err)
	}
}

func TestEncodeOverflowSurfacesError(t *testing.T) {
	// The public writers must surface ErrOffsetOverflow from the layout
	// step. Exercised via chunkLayout above; here we only pin that the
	// error text steers to the pyramid writer.
	if want := "ComposeSharded"; !bytes.Contains([]byte(ErrOffsetOverflow.Error()), []byte(want)) {
		t.Fatalf("ErrOffsetOverflow %q does not mention %s", ErrOffsetOverflow, want)
	}
}

// --- deflate-compressed tiled round-trips ---

func TestTiledDeflateRoundTrip(t *testing.T) {
	// Dimensions chosen to be non-multiples of the tile size so edge
	// tiles are zero-padded and then clipped on decode.
	cases := []struct{ w, h, tw, th int }{
		{100, 70, 64, 64},   // partial right and bottom tiles
		{64, 64, 64, 64},    // exactly one tile
		{65, 1, 64, 16},     // single pixel row, two tiles across
		{16, 130, 16, 64},   // tall, partial bottom
		{200, 200, 48, 112}, // non-square tiles
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dx%d_tile%dx%d", tc.w, tc.h, tc.tw, tc.th), func(t *testing.T) {
			img := randImage(tc.w, tc.h, int64(tc.w*1000+tc.h))
			got := roundTrip(t, img, EncodeOpts{TileW: tc.tw, TileH: tc.th, Deflate: true})
			assertEqual(t, got, img)
		})
	}
}

func TestTiledDeflateBigEndianRoundTrip(t *testing.T) {
	img := randImage(90, 45, 7)
	got := roundTrip(t, img, EncodeOpts{TileW: 32, TileH: 32, Deflate: true, BigEndian: true})
	assertEqual(t, got, img)
}

func TestTiledDeflateSmallerFileOnFlatImage(t *testing.T) {
	img := tile.NewGray16(256, 256) // all zeros: maximally compressible
	var plain, comp bytes.Buffer
	if err := Encode(&plain, img, EncodeOpts{TileW: 64, TileH: 64}); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&comp, img, EncodeOpts{TileW: 64, TileH: 64, Deflate: true}); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= plain.Len() {
		t.Fatalf("deflate did not shrink a flat image: %d >= %d", comp.Len(), plain.Len())
	}
}

func TestDeflateRequiresTiledLayout(t *testing.T) {
	var buf bytes.Buffer
	err := Encode(&buf, randImage(8, 8, 1), EncodeOpts{Deflate: true})
	if err == nil {
		t.Fatal("strip-layout Deflate encode succeeded; want error")
	}
}

// --- pyramid writer / reader ---

func TestPyramidLevelDims(t *testing.T) {
	dims := PyramidLevelDims(1000, 600, 256)
	want := [][2]int{{1000, 600}, {500, 300}, {250, 150}}
	if len(dims) != len(want) {
		t.Fatalf("dims = %v, want %v", dims, want)
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("dims = %v, want %v", dims, want)
		}
	}
	if d := PyramidLevelDims(100, 100, 256); len(d) != 1 {
		t.Fatalf("small image grew levels: %v", d)
	}
	if d := PyramidLevelDims(1, 1, 0); len(d) != 1 {
		t.Fatalf("1x1 minSide 0: %v", d)
	}
}

// writePyramidFromImage feeds img into a PyramidWriter level by level,
// computing reduced levels with the same recursive in-memory halving the
// reader tests compare against. Rows are delivered in uneven chunks to
// exercise the staging logic.
func writePyramidFromImage(t *testing.T, img *tile.Gray16, opts PyramidOpts) []byte {
	t.Helper()
	var sb seekBuffer
	pw, err := NewPyramidWriter(&sb, img.W, img.H, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur := img
	for l := 0; l < pw.NumLevels(); l++ {
		w, h := pw.LevelDims(l)
		if cur.W != w || cur.H != h {
			t.Fatalf("level %d dims %dx%d, want %dx%d", l, w, h, cur.W, cur.H)
		}
		for y := 0; y < h; {
			n := 1 + (y+l)%5 // uneven chunking
			if y+n > h {
				n = h - y
			}
			if err := pw.WriteRows(l, cur.Pix[y*w:(y+n)*w], n); err != nil {
				t.Fatalf("WriteRows level %d row %d: %v", l, y, err)
			}
			y += n
		}
		if l+1 < pw.NumLevels() {
			cur = halveImage(cur)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	return sb.buf
}

// halveImage is the reference 2x box-filter reduction (round to
// nearest), duplicated here so pyramid files are checked against an
// independent implementation.
func halveImage(img *tile.Gray16) *tile.Gray16 {
	nw, nh := (img.W+1)/2, (img.H+1)/2
	out := tile.NewGray16(nw, nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			var sum, cnt uint32
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < img.W && sy < img.H {
						sum += uint32(img.At(sx, sy))
						cnt++
					}
				}
			}
			out.Pix[y*nw+x] = uint16((sum + cnt/2) / cnt)
		}
	}
	return out
}

func TestPyramidRoundTrip(t *testing.T) {
	for _, opts := range []PyramidOpts{
		{TileW: 64, TileH: 64, MinSide: 100},
		{TileW: 64, TileH: 64, MinSide: 100, NoDeflate: true},
		{TileW: 64, TileH: 64, MinSide: 100, BigEndian: true},
		{TileW: 48, TileH: 32, MinSide: 60},
	} {
		t.Run(fmt.Sprintf("%+v", opts), func(t *testing.T) {
			img := randImage(330, 190, 42) // non-divisible by tile size
			data := writePyramidFromImage(t, img, opts)

			p, err := OpenPyramid(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			wantDims := PyramidLevelDims(img.W, img.H, opts.withDefaults().MinSide)
			if p.NumLevels() != len(wantDims) {
				t.Fatalf("NumLevels = %d, want %d", p.NumLevels(), len(wantDims))
			}
			cur := img
			for l := 0; l < p.NumLevels(); l++ {
				lv := p.Level(l)
				if lv.W != wantDims[l][0] || lv.H != wantDims[l][1] {
					t.Fatalf("level %d is %dx%d, want %dx%d", l, lv.W, lv.H, wantDims[l][0], wantDims[l][1])
				}
				got, err := p.Image(l)
				if err != nil {
					t.Fatalf("Image(%d): %v", l, err)
				}
				assertEqual(t, got, cur)
				if l+1 < p.NumLevels() {
					cur = halveImage(cur)
				}
			}
		})
	}
}

func TestPyramidEdgeTileClipping(t *testing.T) {
	img := randImage(100, 70, 9)
	data := writePyramidFromImage(t, img, PyramidOpts{TileW: 64, TileH: 64, MinSide: 256})
	p, err := OpenPyramid(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	lv := p.Level(0)
	if lv.Across != 2 || lv.Down != 2 {
		t.Fatalf("grid %dx%d, want 2x2", lv.Down, lv.Across)
	}
	// Bottom-right edge tile must come back clipped to 36x6.
	tl, err := p.ReadTileAt(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tl.W != 36 || tl.H != 6 {
		t.Fatalf("edge tile is %dx%d, want 36x6", tl.W, tl.H)
	}
	for y := 0; y < tl.H; y++ {
		for x := 0; x < tl.W; x++ {
			if got, want := tl.At(x, y), img.At(64+x, 64+y); got != want {
				t.Fatalf("edge tile (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestPyramidWriterErrors(t *testing.T) {
	var sb seekBuffer
	if _, err := NewPyramidWriter(&sb, 0, 10, PyramidOpts{}); err == nil {
		t.Fatal("empty pyramid accepted")
	}
	if _, err := NewPyramidWriter(&sb, 10, 10, PyramidOpts{TileW: 30, TileH: 64}); err == nil {
		t.Fatal("tile width not multiple of 16 accepted")
	}

	pw, err := NewPyramidWriter(&sb, 100, 100, PyramidOpts{TileW: 64, TileH: 64})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]uint16, 100)
	if err := pw.WriteRows(3, rows, 1); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := pw.WriteRows(0, rows[:50], 1); err == nil {
		t.Fatal("short row accepted")
	}
	if err := pw.Close(); err == nil {
		t.Fatal("Close with missing rows succeeded")
	}
	if err := pw.WriteRows(0, rows, 1); err == nil {
		t.Fatal("WriteRows after Close succeeded")
	}
}

func TestPyramidWriterRowOverflow(t *testing.T) {
	var sb seekBuffer
	pw, err := NewPyramidWriter(&sb, 32, 4, PyramidOpts{TileW: 32, TileH: 32, MinSide: 64})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]uint16, 32*4)
	if err := pw.WriteRows(0, rows, 4); err != nil {
		t.Fatal(err)
	}
	if err := pw.WriteRows(0, rows[:32], 1); err == nil {
		t.Fatal("row overflow accepted")
	}
}

func TestOpenPyramidRejectsClassic(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, randImage(20, 20, 3), EncodeOpts{TileW: 16, TileH: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPyramid(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("classic TIFF: err = %v, want ErrCorrupt-classified", err)
	}
}

func TestOpenPyramidRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("not a tiff"),
		{'I', 'I', 43, 0},
		{'I', 'I', 43, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // zero first-IFD offset
	} {
		if _, err := OpenPyramid(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("garbage %q: err = %v, want ErrCorrupt-classified", data, err)
		}
	}
}

func TestPyramidFileRoundTrip(t *testing.T) {
	img := randImage(150, 90, 11)
	data := writePyramidFromImage(t, img, PyramidOpts{TileW: 64, TileH: 64, MinSide: 64})
	path := t.TempDir() + "/plate.ptif"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := OpenPyramidFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	got, err := pf.Image(0)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, got, img)
}
