package tiffio

import (
	"encoding/binary"
	"fmt"
	"io"

	"hybridstitch/internal/tile"
)

// encodeTiled writes the tile-organized layout (TIFF 6.0 §15): the image
// is cut into fixed-size tiles, edge tiles zero-padded to full size, and
// the IFD carries TileWidth/TileLength/TileOffsets/TileByteCounts in
// place of the strip tags.
func encodeTiled(w io.Writer, img *tile.Gray16, bo binary.ByteOrder, mark [2]byte, opts EncodeOpts) error {
	tw, th := opts.TileW, opts.TileH
	if tw <= 0 {
		tw = 64
	}
	if th <= 0 {
		th = 64
	}
	if tw%16 != 0 || th%16 != 0 {
		return fmt.Errorf("tiffio: tile size %dx%d must be multiples of 16", tw, th)
	}
	across := (img.W + tw - 1) / tw
	down := (img.H + th - 1) / th
	nTiles := across * down
	tileBytes := tw * th * 2

	// Layout: header(8) | tiles | IFD | out-of-line arrays.
	offsets := make([]uint32, nTiles)
	counts := make([]uint32, nTiles)
	off := uint32(8)
	for i := range offsets {
		offsets[i] = off
		counts[i] = uint32(tileBytes)
		off += uint32(tileBytes)
	}
	ifdOff := off

	hdr := make([]byte, 8)
	hdr[0], hdr[1] = mark[0], mark[1]
	bo.PutUint16(hdr[2:4], 42)
	bo.PutUint32(hdr[4:8], ifdOff)
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	// Tile payloads, zero-padded at the right/bottom edges.
	buf := make([]byte, tileBytes)
	for ty := 0; ty < down; ty++ {
		for tx := 0; tx < across; tx++ {
			for i := range buf {
				buf[i] = 0
			}
			for y := 0; y < th; y++ {
				iy := ty*th + y
				if iy >= img.H {
					break
				}
				for x := 0; x < tw; x++ {
					ix := tx*tw + x
					if ix >= img.W {
						break
					}
					bo.PutUint16(buf[2*(y*tw+x):], img.At(ix, iy))
				}
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}

	type entry struct {
		tag, ftype uint16
		count      uint32
		value      uint32
	}
	nEntries := 10
	ifdSize := 2 + nEntries*12 + 4
	extraOff := ifdOff + uint32(ifdSize)
	var extra []byte
	appendLongs := func(vals []uint32) uint32 {
		o := extraOff + uint32(len(extra))
		for _, v := range vals {
			var b [4]byte
			bo.PutUint32(b[:], v)
			extra = append(extra, b[:]...)
		}
		return o
	}
	offVal, cntVal := offsets[0], counts[0]
	if nTiles > 1 {
		offVal = appendLongs(offsets)
		cntVal = appendLongs(counts)
	}
	entries := []entry{
		{tagImageWidth, typeLong, 1, uint32(img.W)},
		{tagImageLength, typeLong, 1, uint32(img.H)},
		{tagBitsPerSample, typeShort, 1, 16},
		{tagCompression, typeShort, 1, compressionNone},
		{tagPhotometric, typeShort, 1, photometricMinIsBlack},
		{tagSamplesPerPixel, typeShort, 1, 1},
		{tagTileWidth, typeLong, 1, uint32(tw)},
		{tagTileLength, typeLong, 1, uint32(th)},
		{tagTileOffsets, typeLong, uint32(nTiles), offVal},
		{tagTileByteCounts, typeLong, uint32(nTiles), cntVal},
	}
	ifd := make([]byte, ifdSize)
	bo.PutUint16(ifd[0:2], uint16(nEntries))
	for i, e := range entries {
		b := ifd[2+i*12 : 2+(i+1)*12]
		bo.PutUint16(b[0:2], e.tag)
		bo.PutUint16(b[2:4], e.ftype)
		bo.PutUint32(b[4:8], e.count)
		if e.ftype == typeShort && e.count == 1 {
			bo.PutUint16(b[8:10], uint16(e.value))
		} else {
			bo.PutUint32(b[8:12], e.value)
		}
	}
	if _, err := w.Write(ifd); err != nil {
		return err
	}
	if len(extra) > 0 {
		if _, err := w.Write(extra); err != nil {
			return err
		}
	}
	return nil
}
