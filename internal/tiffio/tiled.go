package tiffio

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hybridstitch/internal/tile"
)

// compressionDeflate is the zlib-wrapped Deflate codec (TIFF Technical
// Note 2, the "Adobe" Deflate tag value every modern reader supports).
const compressionDeflate = 8

// ErrOffsetOverflow reports that an encode would place data past the
// 4 GiB boundary classic TIFF's 32-bit offsets can address. Before this
// check the offsets silently wrapped and the file was corrupt. Plates
// that large belong in the BigTIFF pyramid layout: compose them with
// compose.ComposeSharded into a tiffio.PyramidWriter, whose offsets are
// 64-bit.
var ErrOffsetOverflow = errors.New("tiffio: image exceeds the 4 GiB classic-TIFF offset space (write it with the sharded pyramid writer: compose.ComposeSharded / tiffio.NewPyramidWriter)")

// chunkLayout assigns sequential file offsets starting at base to chunks
// of the given sizes, returning the 32-bit offset and byte-count arrays
// a classic TIFF directory stores and the file position after the last
// chunk. The arithmetic runs in int64 so an offset that would wrap the
// 32-bit field is detected instead of silently truncated.
func chunkLayout(base int64, sizes []int) (offs, cnts []uint32, end int64, err error) {
	offs = make([]uint32, len(sizes))
	cnts = make([]uint32, len(sizes))
	off := base
	for i, n := range sizes {
		if n < 0 {
			return nil, nil, 0, fmt.Errorf("tiffio: negative chunk size %d", n)
		}
		if off > math.MaxUint32 {
			return nil, nil, 0, ErrOffsetOverflow
		}
		offs[i] = uint32(off)
		cnts[i] = uint32(n)
		off += int64(n)
	}
	if off > math.MaxUint32 {
		return nil, nil, 0, ErrOffsetOverflow
	}
	return offs, cnts, off, nil
}

// inflateTile decompresses one zlib-wrapped tile payload into dst,
// which must be exactly the decompressed tile size.
func inflateTile(dst, src []byte) error {
	zr, err := zlib.NewReader(bytes.NewReader(src))
	if err != nil {
		return err
	}
	defer zr.Close()
	if _, err := io.ReadFull(zr, dst); err != nil {
		return fmt.Errorf("short tile payload: %w", err)
	}
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return errors.New("tile payload longer than tile")
	}
	return nil
}

// packTile copies the (tx, ty) tile of img into buf (tw×th 16-bit
// samples in bo order), zero-padding past the right/bottom image edges.
func packTile(buf []byte, img *tile.Gray16, bo binary.ByteOrder, tx, ty, tw, th int) {
	for i := range buf {
		buf[i] = 0
	}
	for y := 0; y < th; y++ {
		iy := ty*th + y
		if iy >= img.H {
			break
		}
		for x := 0; x < tw; x++ {
			ix := tx*tw + x
			if ix >= img.W {
				break
			}
			bo.PutUint16(buf[2*(y*tw+x):], img.At(ix, iy))
		}
	}
}

// encodeTiled writes the tile-organized layout (TIFF 6.0 §15): the image
// is cut into fixed-size tiles, edge tiles zero-padded to full size, and
// the IFD carries TileWidth/TileLength/TileOffsets/TileByteCounts in
// place of the strip tags. With opts.Deflate each tile payload is
// zlib-compressed independently, so readers can still random-access
// single tiles.
func encodeTiled(w io.Writer, img *tile.Gray16, bo binary.ByteOrder, mark [2]byte, opts EncodeOpts) error {
	tw, th := opts.TileW, opts.TileH
	if tw <= 0 {
		tw = 64
	}
	if th <= 0 {
		th = 64
	}
	if tw%16 != 0 || th%16 != 0 {
		return fmt.Errorf("tiffio: tile size %dx%d must be multiples of 16", tw, th)
	}
	across := (img.W + tw - 1) / tw
	down := (img.H + th - 1) / th
	nTiles := across * down
	tileBytes := tw * th * 2

	// Build every tile payload up front: compressed sizes are only known
	// after compressing, and the offsets must be final before the header
	// is written (the IFD follows the payloads).
	var payloads bytes.Buffer
	sizes := make([]int, nTiles)
	buf := make([]byte, tileBytes)
	var zw *zlib.Writer
	for ty := 0; ty < down; ty++ {
		for tx := 0; tx < across; tx++ {
			idx := ty*across + tx
			packTile(buf, img, bo, tx, ty, tw, th)
			if opts.Deflate {
				start := payloads.Len()
				if zw == nil {
					zw = zlib.NewWriter(&payloads)
				} else {
					zw.Reset(&payloads)
				}
				if _, err := zw.Write(buf); err != nil {
					return err
				}
				if err := zw.Close(); err != nil {
					return err
				}
				sizes[idx] = payloads.Len() - start
			} else {
				payloads.Write(buf)
				sizes[idx] = tileBytes
			}
		}
	}

	// Layout: header(8) | tiles | IFD | out-of-line arrays.
	offsets, counts, ifdOff, err := chunkLayout(8, sizes)
	if err != nil {
		return err
	}

	compression := uint32(compressionNone)
	if opts.Deflate {
		compression = compressionDeflate
	}

	type entry struct {
		tag, ftype uint16
		count      uint32
		value      uint32
	}
	nEntries := 10
	ifdSize := 2 + nEntries*12 + 4
	extraBase := ifdOff + int64(ifdSize)
	var extra []byte
	appendLongs := func(vals []uint32) uint32 {
		o := extraBase + int64(len(extra))
		for _, v := range vals {
			var b [4]byte
			bo.PutUint32(b[:], v)
			extra = append(extra, b[:]...)
		}
		return uint32(o)
	}
	offVal, cntVal := offsets[0], counts[0]
	if nTiles > 1 {
		offVal = appendLongs(offsets)
		cntVal = appendLongs(counts)
	}
	if extraBase+int64(len(extra)) > math.MaxUint32 {
		return ErrOffsetOverflow
	}
	entries := []entry{
		{tagImageWidth, typeLong, 1, uint32(img.W)},
		{tagImageLength, typeLong, 1, uint32(img.H)},
		{tagBitsPerSample, typeShort, 1, 16},
		{tagCompression, typeShort, 1, compression},
		{tagPhotometric, typeShort, 1, photometricMinIsBlack},
		{tagSamplesPerPixel, typeShort, 1, 1},
		{tagTileWidth, typeLong, 1, uint32(tw)},
		{tagTileLength, typeLong, 1, uint32(th)},
		{tagTileOffsets, typeLong, uint32(nTiles), offVal},
		{tagTileByteCounts, typeLong, uint32(nTiles), cntVal},
	}

	hdr := make([]byte, 8)
	hdr[0], hdr[1] = mark[0], mark[1]
	bo.PutUint16(hdr[2:4], 42)
	bo.PutUint32(hdr[4:8], uint32(ifdOff))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payloads.Bytes()); err != nil {
		return err
	}
	ifd := make([]byte, ifdSize)
	bo.PutUint16(ifd[0:2], uint16(nEntries))
	for i, e := range entries {
		b := ifd[2+i*12 : 2+(i+1)*12]
		bo.PutUint16(b[0:2], e.tag)
		bo.PutUint16(b[2:4], e.ftype)
		bo.PutUint32(b[4:8], e.count)
		if e.ftype == typeShort && e.count == 1 {
			bo.PutUint16(b[8:10], uint16(e.value))
		} else {
			bo.PutUint32(b[8:12], e.value)
		}
	}
	if _, err := w.Write(ifd); err != nil {
		return err
	}
	if len(extra) > 0 {
		if _, err := w.Write(extra); err != nil {
			return err
		}
	}
	return nil
}
