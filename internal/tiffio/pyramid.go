package tiffio

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"hybridstitch/internal/tile"
)

// This file implements the multi-resolution pyramid file format the
// sharded compositor streams into and the tile server reads back: a
// BigTIFF (version 43, 64-bit offsets) with one IFD per pyramid level,
// each level tiled and (by default) per-tile Deflate-compressed. BigTIFF
// is the layout because the whole point of sharded composition is plates
// past the 4 GiB classic-TIFF offset space — the overflow ErrOffsetOverflow
// guards against.
//
// The writer is streaming: levels receive rows top to bottom, only one
// tile-row of staging is resident per level, and tile payloads go to
// disk the moment a tile row completes. Offsets are bookkept in memory
// (16 bytes per tile) and the IFD chain is written at Close.

// BigTIFF constants (the TIFF 6.0 supplement "BigTIFF").
const (
	bigtiffVersion    = 43
	typeLong8         = 16 // 64-bit unsigned
	tagNewSubfileType = 254
	subfileReduced    = 1 // bit 0: reduced-resolution version of another image
)

// PyramidOpts configures NewPyramidWriter.
type PyramidOpts struct {
	// TileW/TileH set the pyramid tile size (default 256×256; the spec
	// requires multiples of 16).
	TileW, TileH int
	// MinSide stops the level chain once both dimensions fit (default
	// 256). Matches compose.Pyramid's termination rule.
	MinSide int
	// NoDeflate stores tiles uncompressed. The default compresses each
	// tile independently with zlib (Compression=8) so readers can still
	// random-access single tiles.
	NoDeflate bool
	// BigEndian writes an "MM" file; default is "II".
	BigEndian bool
}

func (o PyramidOpts) withDefaults() PyramidOpts {
	if o.TileW == 0 {
		o.TileW = 256
	}
	if o.TileH == 0 {
		o.TileH = 256
	}
	if o.MinSide == 0 {
		o.MinSide = 256
	}
	return o
}

// PyramidLevelDims returns the (width, height) of every pyramid level
// for a full-resolution w×h image: level 0 is the input, each further
// level halves both dimensions (rounding up) until both fit minSide.
// This is the same chain compose.Pyramid builds in memory.
func PyramidLevelDims(w, h, minSide int) [][2]int {
	if minSide < 1 {
		minSide = 1
	}
	dims := [][2]int{{w, h}}
	cw, ch := w, h
	for cw > minSide || ch > minSide {
		nw, nh := (cw+1)/2, (ch+1)/2
		if nw == cw && nh == ch {
			break
		}
		dims = append(dims, [2]int{nw, nh})
		cw, ch = nw, nh
	}
	return dims
}

// levelWriter is the streaming state of one pyramid level.
type levelWriter struct {
	w, h         int
	rows         int      // rows received so far
	staged       int      // rows currently in buf
	buf          []uint16 // tileH × w staging
	across, down int
	offs, cnts   []uint64
	nextTileRow  int
}

// PyramidWriter streams a multi-level tiled pyramid to a file. Feed each
// level its rows top to bottom with WriteRows (the compose reducer does
// this as bands retire) and call Close to write the IFD chain.
type PyramidWriter struct {
	ws     io.WriteSeeker
	bo     binary.ByteOrder
	mark   [2]byte
	opts   PyramidOpts
	levels []*levelWriter
	off    int64 // current file position
	closed bool

	packBuf []byte // tile staging, tileW*tileH*2
	zbuf    bytes.Buffer
	zw      *zlib.Writer
}

// NewPyramidWriter starts a pyramid for a w×h full-resolution image on
// ws (typically an *os.File). The header is written immediately with a
// placeholder IFD offset that Close patches, so ws must support seeking.
func NewPyramidWriter(ws io.WriteSeeker, w, h int, opts PyramidOpts) (*PyramidWriter, error) {
	opts = opts.withDefaults()
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("tiffio: cannot write empty pyramid %dx%d", w, h)
	}
	if opts.TileW%16 != 0 || opts.TileH%16 != 0 || opts.TileW <= 0 || opts.TileH <= 0 {
		return nil, fmt.Errorf("tiffio: pyramid tile size %dx%d must be positive multiples of 16", opts.TileW, opts.TileH)
	}
	pw := &PyramidWriter{ws: ws, bo: binary.LittleEndian, mark: [2]byte{'I', 'I'}, opts: opts}
	if opts.BigEndian {
		pw.bo = binary.BigEndian
		pw.mark = [2]byte{'M', 'M'}
	}
	for _, d := range PyramidLevelDims(w, h, opts.MinSide) {
		lw := &levelWriter{
			w: d[0], h: d[1],
			buf:    make([]uint16, opts.TileH*d[0]),
			across: (d[0] + opts.TileW - 1) / opts.TileW,
			down:   (d[1] + opts.TileH - 1) / opts.TileH,
		}
		lw.offs = make([]uint64, 0, lw.across*lw.down)
		lw.cnts = make([]uint64, 0, lw.across*lw.down)
		pw.levels = append(pw.levels, lw)
	}
	pw.packBuf = make([]byte, opts.TileW*opts.TileH*2)

	// BigTIFF header: mark | 43 | offset size 8 | reserved 0 | IFD offset.
	hdr := make([]byte, 16)
	hdr[0], hdr[1] = pw.mark[0], pw.mark[1]
	pw.bo.PutUint16(hdr[2:4], bigtiffVersion)
	pw.bo.PutUint16(hdr[4:6], 8)
	pw.bo.PutUint16(hdr[6:8], 0)
	pw.bo.PutUint64(hdr[8:16], 0) // patched by Close
	if err := pw.write(hdr); err != nil {
		return nil, err
	}
	return pw, nil
}

// NumLevels reports the number of pyramid levels.
func (pw *PyramidWriter) NumLevels() int { return len(pw.levels) }

// LevelDims returns the dimensions of level l.
func (pw *PyramidWriter) LevelDims(l int) (w, h int) {
	return pw.levels[l].w, pw.levels[l].h
}

func (pw *PyramidWriter) write(b []byte) error {
	n, err := pw.ws.Write(b)
	pw.off += int64(n)
	return err
}

// WriteRows appends n rows of pixels to level l. pix holds n*levelWidth
// samples in row-major order. Rows arrive top to bottom; a level must
// receive exactly its height in rows before Close.
func (pw *PyramidWriter) WriteRows(l int, pix []uint16, n int) error {
	if pw.closed {
		return fmt.Errorf("tiffio: pyramid writer is closed")
	}
	if l < 0 || l >= len(pw.levels) {
		return fmt.Errorf("tiffio: pyramid level %d of %d", l, len(pw.levels))
	}
	lv := pw.levels[l]
	if len(pix) != n*lv.w {
		return fmt.Errorf("tiffio: level %d row data is %d samples, want %d rows × %d", l, len(pix), n, lv.w)
	}
	if lv.rows+n > lv.h {
		return fmt.Errorf("tiffio: level %d overflows: %d+%d rows of %d", l, lv.rows, n, lv.h)
	}
	for r := 0; r < n; r++ {
		copy(lv.buf[lv.staged*lv.w:(lv.staged+1)*lv.w], pix[r*lv.w:(r+1)*lv.w])
		lv.staged++
		lv.rows++
		if lv.staged == pw.opts.TileH || lv.rows == lv.h {
			if err := pw.flushTileRow(lv); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushTileRow encodes the staged rows of lv as one row of tiles,
// zero-padding to full tile size at the right and bottom edges.
func (pw *PyramidWriter) flushTileRow(lv *levelWriter) error {
	tw, th := pw.opts.TileW, pw.opts.TileH
	for tx := 0; tx < lv.across; tx++ {
		for i := range pw.packBuf {
			pw.packBuf[i] = 0
		}
		for y := 0; y < lv.staged; y++ {
			for x := 0; x < tw; x++ {
				ix := tx*tw + x
				if ix >= lv.w {
					break
				}
				pw.bo.PutUint16(pw.packBuf[2*(y*tw+x):], lv.buf[y*lv.w+ix])
			}
		}
		payload := pw.packBuf
		if !pw.opts.NoDeflate {
			pw.zbuf.Reset()
			if pw.zw == nil {
				pw.zw = zlib.NewWriter(&pw.zbuf)
			} else {
				pw.zw.Reset(&pw.zbuf)
			}
			if _, err := pw.zw.Write(pw.packBuf); err != nil {
				return err
			}
			if err := pw.zw.Close(); err != nil {
				return err
			}
			payload = pw.zbuf.Bytes()
		}
		lv.offs = append(lv.offs, uint64(pw.off))
		lv.cnts = append(lv.cnts, uint64(len(payload)))
		if err := pw.write(payload); err != nil {
			return err
		}
	}
	_ = th
	lv.staged = 0
	lv.nextTileRow++
	return nil
}

// bigEntry is one BigTIFF IFD entry.
type bigEntry struct {
	tag, ftype uint16
	count      uint64
	value      uint64 // inline value or out-of-line offset
	array      []uint64
}

// Close flushes every level, writes the chained IFDs (one per level, in
// level order), and patches the header to point at level 0's IFD. It
// does not close the underlying file.
func (pw *PyramidWriter) Close() error {
	if pw.closed {
		return fmt.Errorf("tiffio: pyramid writer already closed")
	}
	pw.closed = true
	for l, lv := range pw.levels {
		if lv.rows != lv.h {
			return fmt.Errorf("tiffio: pyramid level %d received %d of %d rows", l, lv.rows, lv.h)
		}
		if len(lv.offs) != lv.across*lv.down {
			return fmt.Errorf("tiffio: pyramid level %d wrote %d tiles, want %d", l, len(lv.offs), lv.across*lv.down)
		}
	}

	compression := uint64(compressionDeflate)
	if pw.opts.NoDeflate {
		compression = compressionNone
	}
	// Precompute each IFD's position so the next-IFD chain can be
	// written in a single forward pass. Every entry array larger than 8
	// bytes goes out of line, directly after its IFD.
	const entryCount = 11
	ifdOff := make([]int64, len(pw.levels)+1)
	pos := pw.off
	for l, lv := range pw.levels {
		ifdOff[l] = pos
		pos += 8 + entryCount*20 + 8
		n := lv.across * lv.down
		if n > 1 {
			pos += 2 * 8 * int64(n) // offsets + counts arrays
		}
	}
	ifdOff[len(pw.levels)] = 0 // end of chain

	for l, lv := range pw.levels {
		subfile := uint64(0)
		if l > 0 {
			subfile = subfileReduced
		}
		n := uint64(lv.across * lv.down)
		entries := []bigEntry{
			{tag: tagNewSubfileType, ftype: typeLong, count: 1, value: subfile},
			{tag: tagImageWidth, ftype: typeLong, count: 1, value: uint64(lv.w)},
			{tag: tagImageLength, ftype: typeLong, count: 1, value: uint64(lv.h)},
			{tag: tagBitsPerSample, ftype: typeShort, count: 1, value: 16},
			{tag: tagCompression, ftype: typeShort, count: 1, value: compression},
			{tag: tagPhotometric, ftype: typeShort, count: 1, value: photometricMinIsBlack},
			{tag: tagSamplesPerPixel, ftype: typeShort, count: 1, value: 1},
			{tag: tagTileWidth, ftype: typeLong, count: 1, value: uint64(pw.opts.TileW)},
			{tag: tagTileLength, ftype: typeLong, count: 1, value: uint64(pw.opts.TileH)},
			{tag: tagTileOffsets, ftype: typeLong8, count: n, array: lv.offs},
			{tag: tagTileByteCounts, ftype: typeLong8, count: n, array: lv.cnts},
		}
		var arrays []byte
		arrayOff := ifdOff[l] + 8 + entryCount*20 + 8
		buf := make([]byte, 8+entryCount*20+8)
		pw.bo.PutUint64(buf[0:8], entryCount)
		for i := range entries {
			e := &entries[i]
			b := buf[8+i*20 : 8+(i+1)*20]
			pw.bo.PutUint16(b[0:2], e.tag)
			pw.bo.PutUint16(b[2:4], e.ftype)
			pw.bo.PutUint64(b[4:12], e.count)
			switch {
			case e.array != nil && len(e.array) == 1:
				pw.bo.PutUint64(b[12:20], e.array[0])
			case e.array != nil:
				pw.bo.PutUint64(b[12:20], uint64(arrayOff)+uint64(len(arrays)))
				for _, v := range e.array {
					var vb [8]byte
					pw.bo.PutUint64(vb[:], v)
					arrays = append(arrays, vb[:]...)
				}
			case e.ftype == typeShort:
				// Inline values are left-justified in the 8-byte field
				// regardless of byte order (BigTIFF follows TIFF 6.0 here).
				pw.bo.PutUint16(b[12:14], uint16(e.value))
			case e.ftype == typeLong:
				pw.bo.PutUint32(b[12:16], uint32(e.value))
			default:
				pw.bo.PutUint64(b[12:20], e.value)
			}
		}
		pw.bo.PutUint64(buf[8+entryCount*20:], uint64(ifdOff[l+1]))
		if err := pw.write(buf); err != nil {
			return err
		}
		if len(arrays) > 0 {
			if err := pw.write(arrays); err != nil {
				return err
			}
		}
	}

	// Patch the header's first-IFD offset.
	if _, err := pw.ws.Seek(8, io.SeekStart); err != nil {
		return err
	}
	var ob [8]byte
	pw.bo.PutUint64(ob[:], uint64(ifdOff[0]))
	if _, err := pw.ws.Write(ob[:]); err != nil {
		return err
	}
	_, err := pw.ws.Seek(pw.off, io.SeekStart)
	return err
}

// PyramidLevel describes one level of an opened pyramid.
type PyramidLevel struct {
	W, H         int
	TileW, TileH int
	Across, Down int

	compression uint64
	offs, cnts  []uint64
}

// Pyramid is a random-access reader over a pyramid file written by
// PyramidWriter (BigTIFF, tiled levels). It is safe for concurrent use:
// all state is immutable after OpenPyramid and reads go through ReadAt.
type Pyramid struct {
	r      io.ReaderAt
	bo     binary.ByteOrder
	levels []PyramidLevel
}

// maxPyramidLevels bounds the IFD chain walk: a 2^40-pixel-per-side
// image needs 33 levels, so a longer chain is a corrupt (or adversarial)
// file, not a plate.
const maxPyramidLevels = 64

// OpenPyramid parses the level directory of a pyramid file. Tile data is
// read lazily by ReadTileAt.
func OpenPyramid(r io.ReaderAt) (*Pyramid, error) {
	p, err := openPyramid(r)
	if err != nil {
		return nil, &corruptError{err: err}
	}
	return p, nil
}

func openPyramid(r io.ReaderAt) (*Pyramid, error) {
	var hdr [16]byte
	if _, err := r.ReadAt(hdr[:8], 0); err != nil {
		return nil, fmt.Errorf("tiffio: short pyramid header: %w", err)
	}
	var bo binary.ByteOrder
	switch {
	case hdr[0] == 'I' && hdr[1] == 'I':
		bo = binary.LittleEndian
	case hdr[0] == 'M' && hdr[1] == 'M':
		bo = binary.BigEndian
	default:
		return nil, fmt.Errorf("tiffio: bad byte-order mark %q", hdr[:2])
	}
	if v := bo.Uint16(hdr[2:4]); v != bigtiffVersion {
		return nil, fmt.Errorf("tiffio: not a BigTIFF pyramid (version %d, want %d)", v, bigtiffVersion)
	}
	if _, err := r.ReadAt(hdr[4:16], 4); err != nil {
		return nil, fmt.Errorf("tiffio: short BigTIFF header: %w", err)
	}
	if sz := bo.Uint16(hdr[4:6]); sz != 8 {
		return nil, fmt.Errorf("tiffio: BigTIFF offset size %d, want 8", sz)
	}
	next := bo.Uint64(hdr[8:16])
	if next == 0 {
		return nil, fmt.Errorf("tiffio: pyramid has no IFDs")
	}

	p := &Pyramid{r: r, bo: bo}
	for next != 0 {
		if len(p.levels) >= maxPyramidLevels {
			return nil, fmt.Errorf("tiffio: IFD chain longer than %d levels", maxPyramidLevels)
		}
		if next > math.MaxInt64 {
			return nil, fmt.Errorf("tiffio: IFD offset %d out of range", next)
		}
		lv, n, err := readPyramidIFD(r, bo, int64(next))
		if err != nil {
			return nil, err
		}
		p.levels = append(p.levels, lv)
		if n == next {
			return nil, fmt.Errorf("tiffio: IFD chain loops at %d", n)
		}
		next = n
	}
	// Levels must shrink monotonically: that is what makes the chain a
	// pyramid rather than an arbitrary multi-image file.
	for i := 1; i < len(p.levels); i++ {
		if p.levels[i].W > p.levels[i-1].W || p.levels[i].H > p.levels[i-1].H {
			return nil, fmt.Errorf("tiffio: level %d (%dx%d) larger than level %d (%dx%d)",
				i, p.levels[i].W, p.levels[i].H, i-1, p.levels[i-1].W, p.levels[i-1].H)
		}
	}
	return p, nil
}

// readPyramidIFD parses one BigTIFF IFD into a level description.
func readPyramidIFD(r io.ReaderAt, bo binary.ByteOrder, off int64) (PyramidLevel, uint64, error) {
	var lv PyramidLevel
	var nb [8]byte
	if _, err := r.ReadAt(nb[:], off); err != nil {
		return lv, 0, fmt.Errorf("tiffio: IFD count: %w", err)
	}
	n := bo.Uint64(nb[:])
	if n == 0 || n > 64 {
		return lv, 0, fmt.Errorf("tiffio: implausible IFD entry count %d", n)
	}
	buf := make([]byte, n*20+8)
	if _, err := r.ReadAt(buf, off+8); err != nil {
		return lv, 0, fmt.Errorf("tiffio: IFD entries: %w", err)
	}
	next := bo.Uint64(buf[n*20:])

	var (
		bits, comp, spp uint64 = 1, compressionNone, 1
		offs, cnts      []uint64
	)
	readArray := func(ftype uint16, count uint64, inline []byte) ([]uint64, error) {
		sz := uint64(0)
		switch ftype {
		case typeShort:
			sz = 2
		case typeLong:
			sz = 4
		case typeLong8:
			sz = 8
		default:
			return nil, fmt.Errorf("tiffio: unsupported tile-array type %d", ftype)
		}
		total := sz * count
		if count == 0 || total > 256<<20 {
			return nil, fmt.Errorf("tiffio: tile array claims %d bytes", total)
		}
		data := inline[:min(8, len(inline))]
		if total > 8 {
			data = make([]byte, total)
			o := bo.Uint64(inline)
			if o > math.MaxInt64 {
				return nil, fmt.Errorf("tiffio: array offset %d out of range", o)
			}
			if _, err := r.ReadAt(data, int64(o)); err != nil {
				return nil, fmt.Errorf("tiffio: tile array: %w", err)
			}
		}
		vals := make([]uint64, count)
		for i := range vals {
			switch ftype {
			case typeShort:
				vals[i] = uint64(bo.Uint16(data[2*i:]))
			case typeLong:
				vals[i] = uint64(bo.Uint32(data[4*i:]))
			case typeLong8:
				vals[i] = bo.Uint64(data[8*i:])
			}
		}
		return vals, nil
	}
	scalar := func(ftype uint16, inline []byte) uint64 {
		switch ftype {
		case typeShort:
			return uint64(bo.Uint16(inline))
		case typeLong:
			return uint64(bo.Uint32(inline))
		default:
			return bo.Uint64(inline)
		}
	}
	for i := uint64(0); i < n; i++ {
		b := buf[i*20 : (i+1)*20]
		tag := bo.Uint16(b[0:2])
		ftype := bo.Uint16(b[2:4])
		count := bo.Uint64(b[4:12])
		inline := b[12:20]
		var err error
		switch tag {
		case tagImageWidth:
			lv.W = int(scalar(ftype, inline))
		case tagImageLength:
			lv.H = int(scalar(ftype, inline))
		case tagBitsPerSample:
			bits = scalar(ftype, inline)
		case tagCompression:
			comp = scalar(ftype, inline)
		case tagSamplesPerPixel:
			spp = scalar(ftype, inline)
		case tagTileWidth:
			lv.TileW = int(scalar(ftype, inline))
		case tagTileLength:
			lv.TileH = int(scalar(ftype, inline))
		case tagTileOffsets:
			offs, err = readArray(ftype, count, inline)
		case tagTileByteCounts:
			cnts, err = readArray(ftype, count, inline)
		}
		if err != nil {
			return lv, 0, err
		}
	}
	if bits != 16 || spp != 1 {
		return lv, 0, fmt.Errorf("tiffio: pyramid level is %d-bit ×%d samples, want 16-bit grayscale", bits, spp)
	}
	if comp != compressionNone && comp != compressionDeflate {
		return lv, 0, fmt.Errorf("tiffio: unsupported pyramid compression %d", comp)
	}
	if lv.W <= 0 || lv.H <= 0 || lv.W > 1<<30 || lv.H > 1<<30 {
		return lv, 0, fmt.Errorf("tiffio: implausible level dimensions %dx%d", lv.W, lv.H)
	}
	if lv.TileW <= 0 || lv.TileH <= 0 || lv.TileW > 1<<16 || lv.TileH > 1<<16 {
		return lv, 0, fmt.Errorf("tiffio: invalid tile size %dx%d", lv.TileW, lv.TileH)
	}
	lv.Across = (lv.W + lv.TileW - 1) / lv.TileW
	lv.Down = (lv.H + lv.TileH - 1) / lv.TileH
	want := lv.Across * lv.Down
	if len(offs) != want || len(cnts) != want {
		return lv, 0, fmt.Errorf("tiffio: %d tile offsets / %d counts for a %dx%d tile grid", len(offs), len(cnts), lv.Down, lv.Across)
	}
	lv.compression = comp
	lv.offs, lv.cnts = offs, cnts
	return lv, next, nil
}

// NumLevels reports the number of pyramid levels.
func (p *Pyramid) NumLevels() int { return len(p.levels) }

// Level returns the description of level l.
func (p *Pyramid) Level(l int) PyramidLevel { return p.levels[l] }

// checkTile validates a (level, tx, ty) address.
func (p *Pyramid) checkTile(l, tx, ty int) (*PyramidLevel, int, error) {
	if l < 0 || l >= len(p.levels) {
		return nil, 0, fmt.Errorf("tiffio: pyramid level %d of %d", l, len(p.levels))
	}
	lv := &p.levels[l]
	if tx < 0 || ty < 0 || tx >= lv.Across || ty >= lv.Down {
		return nil, 0, fmt.Errorf("tiffio: tile (%d,%d) outside level %d's %dx%d grid", tx, ty, l, lv.Down, lv.Across)
	}
	return lv, ty*lv.Across + tx, nil
}

// TilePayload returns the stored (possibly compressed) bytes of one
// tile — the unit the tile server content-addresses: identical payloads
// (blank regions deflate identically) hash to one cache entry.
func (p *Pyramid) TilePayload(l, tx, ty int) ([]byte, error) {
	lv, idx, err := p.checkTile(l, tx, ty)
	if err != nil {
		return nil, err
	}
	n := lv.cnts[idx]
	tileBytes := uint64(lv.TileW) * uint64(lv.TileH) * 2
	limit := tileBytes
	if lv.compression == compressionDeflate {
		limit = 2*tileBytes + 1024
	}
	if n == 0 || n > limit {
		return nil, &corruptError{err: fmt.Errorf("tiffio: tile (%d,%d,%d) claims %d bytes for a %d-byte tile", l, tx, ty, n, tileBytes)}
	}
	off := lv.offs[idx]
	if off > math.MaxInt64 {
		return nil, &corruptError{err: fmt.Errorf("tiffio: tile offset %d out of range", off)}
	}
	buf := make([]byte, n)
	if _, err := p.r.ReadAt(buf, int64(off)); err != nil {
		return nil, &corruptError{err: fmt.Errorf("tiffio: tile (%d,%d,%d): %w", l, tx, ty, err)}
	}
	return buf, nil
}

// DecodePayload decodes a payload returned by TilePayload for level l
// into pixels, clipped to the level bounds (edge tiles come back smaller
// than TileW×TileH, which is what a deep-zoom client expects).
func (p *Pyramid) DecodePayload(l, tx, ty int, payload []byte) (*tile.Gray16, error) {
	lv, _, err := p.checkTile(l, tx, ty)
	if err != nil {
		return nil, err
	}
	tileBytes := lv.TileW * lv.TileH * 2
	raw := payload
	if lv.compression == compressionDeflate {
		full := make([]byte, tileBytes)
		if err := inflateTile(full, payload); err != nil {
			return nil, &corruptError{err: fmt.Errorf("tiffio: tile (%d,%d,%d): %w", l, tx, ty, err)}
		}
		raw = full
	} else if len(raw) != tileBytes {
		return nil, &corruptError{err: fmt.Errorf("tiffio: tile payload is %d bytes, want %d", len(raw), tileBytes)}
	}
	w := min(lv.TileW, lv.W-tx*lv.TileW)
	h := min(lv.TileH, lv.H-ty*lv.TileH)
	img := tile.NewGray16(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Pix[y*w+x] = p.bo.Uint16(raw[2*(y*lv.TileW+x):])
		}
	}
	return img, nil
}

// ReadTileAt reads and decodes one tile, clipped to the level bounds.
func (p *Pyramid) ReadTileAt(l, tx, ty int) (*tile.Gray16, error) {
	payload, err := p.TilePayload(l, tx, ty)
	if err != nil {
		return nil, err
	}
	return p.DecodePayload(l, tx, ty, payload)
}

// Image assembles the whole of level l — for tests and overviews, not
// for terapixel level 0.
func (p *Pyramid) Image(l int) (*tile.Gray16, error) {
	if l < 0 || l >= len(p.levels) {
		return nil, fmt.Errorf("tiffio: pyramid level %d of %d", l, len(p.levels))
	}
	lv := &p.levels[l]
	if int64(lv.W)*int64(lv.H) > 1<<28 {
		return nil, fmt.Errorf("tiffio: level %d (%dx%d) too large to assemble in memory", l, lv.W, lv.H)
	}
	img := tile.NewGray16(lv.W, lv.H)
	for ty := 0; ty < lv.Down; ty++ {
		for tx := 0; tx < lv.Across; tx++ {
			t, err := p.ReadTileAt(l, tx, ty)
			if err != nil {
				return nil, err
			}
			x0, y0 := tx*lv.TileW, ty*lv.TileH
			for y := 0; y < t.H; y++ {
				copy(img.Pix[(y0+y)*lv.W+x0:(y0+y)*lv.W+x0+t.W], t.Pix[y*t.W:(y+1)*t.W])
			}
		}
	}
	return img, nil
}

// PyramidFile is a Pyramid bound to an open file.
type PyramidFile struct {
	*Pyramid
	f *os.File
}

// OpenPyramidFile opens the pyramid at path. Close releases the file.
func OpenPyramidFile(path string) (*PyramidFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	p, err := OpenPyramid(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &PyramidFile{Pyramid: p, f: f}, nil
}

// Close releases the underlying file.
func (pf *PyramidFile) Close() error { return pf.f.Close() }
