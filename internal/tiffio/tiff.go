// Package tiffio reads and writes the subset of baseline TIFF 6.0 that
// optical-microscopy acquisition software emits: single-image files,
// grayscale, 8 or 16 bits per sample, uncompressed, strip-organized, in
// either byte order. It is the stand-in for libTIFF in the stitching
// pipeline, implemented on the standard library only.
package tiffio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"

	"hybridstitch/internal/fault"
	"hybridstitch/internal/tile"
)

// ErrCorrupt classifies every Decode failure: the bytes on disk do not
// form a decodable baseline TIFF (truncation, bad structure, implausible
// headers). Callers use errors.Is(err, ErrCorrupt) to decide that a tile
// is permanently unreadable — retrying the read cannot fix the data — and
// degrade it instead of aborting the plate.
var ErrCorrupt = errors.New("tiffio: corrupt file")

// corruptError carries the specific decode failure while matching
// ErrCorrupt in errors.Is chains.
type corruptError struct{ err error }

func (e *corruptError) Error() string { return e.err.Error() }
func (e *corruptError) Unwrap() error { return e.err }
func (e *corruptError) Is(target error) bool {
	return target == ErrCorrupt
}

// injector is the package's fault-injection hook (site "tiffio.read",
// detail = file path). The atomic pointer keeps the uninstalled path to
// a single load-and-nil-check per ReadFile.
var injector atomic.Pointer[fault.Injector]

// SetInjector installs (or, with nil, removes) the fault injector
// consulted by ReadFile. Tests install a seeded injector and remove it
// when done; production runs install the -fault-spec registry.
func SetInjector(in *fault.Injector) {
	injector.Store(in)
}

// TIFF tag IDs used by the baseline grayscale subset.
const (
	tagImageWidth      = 256
	tagImageLength     = 257
	tagBitsPerSample   = 258
	tagCompression     = 259
	tagPhotometric     = 262
	tagStripOffsets    = 273
	tagSamplesPerPixel = 277
	tagRowsPerStrip    = 278
	tagStripByteCounts = 279
	tagXResolution     = 282
	tagYResolution     = 283
	tagResolutionUnit  = 296
	tagTileWidth       = 322
	tagTileLength      = 323
	tagTileOffsets     = 324
	tagTileByteCounts  = 325
	tagSampleFormat    = 339
)

// TIFF field types.
const (
	typeByte     = 1
	typeASCII    = 2
	typeShort    = 3
	typeLong     = 4
	typeRational = 5
)

const (
	compressionNone       = 1
	photometricMinIsBlack = 1
)

// typeSize maps a TIFF field type to its byte width.
func typeSize(t uint16) int {
	switch t {
	case typeByte, typeASCII:
		return 1
	case typeShort:
		return 2
	case typeLong:
		return 4
	case typeRational:
		return 8
	default:
		return 0
	}
}

// ifdEntry is one parsed directory entry.
type ifdEntry struct {
	tag   uint16
	ftype uint16
	count uint32
	// values as unsigned integers (we only need integral tags)
	vals []uint32
}

// Decode parses a baseline grayscale TIFF from r. Any failure wraps
// ErrCorrupt: the input is a complete byte stream, so an undecodable one
// is bad data, not a transient condition.
func Decode(r io.ReaderAt) (*tile.Gray16, error) {
	img, err := decode(r)
	if err != nil {
		return nil, &corruptError{err: err}
	}
	return img, nil
}

// decode is the unwrapped parser.
func decode(r io.ReaderAt) (*tile.Gray16, error) {
	var hdr [8]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("tiffio: short header: %w", err)
	}
	var bo binary.ByteOrder
	switch {
	case hdr[0] == 'I' && hdr[1] == 'I':
		bo = binary.LittleEndian
	case hdr[0] == 'M' && hdr[1] == 'M':
		bo = binary.BigEndian
	default:
		return nil, fmt.Errorf("tiffio: bad byte-order mark %q", hdr[:2])
	}
	if magic := bo.Uint16(hdr[2:4]); magic != 42 {
		return nil, fmt.Errorf("tiffio: bad magic %d", magic)
	}
	ifdOff := int64(bo.Uint32(hdr[4:8]))
	if ifdOff < 8 {
		return nil, fmt.Errorf("tiffio: IFD offset %d inside header", ifdOff)
	}

	entries, err := readIFD(r, bo, ifdOff)
	if err != nil {
		return nil, err
	}
	get := func(tag uint16) (ifdEntry, bool) {
		for _, e := range entries {
			if e.tag == tag {
				return e, true
			}
		}
		return ifdEntry{}, false
	}
	first := func(tag uint16, def uint32) uint32 {
		if e, ok := get(tag); ok && len(e.vals) > 0 {
			return e.vals[0]
		}
		return def
	}

	width := int(first(tagImageWidth, 0))
	height := int(first(tagImageLength, 0))
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("tiffio: missing or invalid dimensions %dx%d", width, height)
	}
	// Sanity bounds: reject absurd headers before allocating. 2^20 per
	// side and 2^28 pixels (512 MB of 16-bit data) comfortably cover
	// every plate the paper discusses (10k–200k px per side are full
	// COMPOSITES; tiles are thousands per side).
	if width > 1<<20 || height > 1<<20 || int64(width)*int64(height) > 1<<28 {
		return nil, fmt.Errorf("tiffio: implausible dimensions %dx%d", width, height)
	}
	bits := int(first(tagBitsPerSample, 1))
	if bits != 8 && bits != 16 {
		return nil, fmt.Errorf("tiffio: unsupported bits per sample %d", bits)
	}
	if spp := first(tagSamplesPerPixel, 1); spp != 1 {
		return nil, fmt.Errorf("tiffio: unsupported samples per pixel %d", spp)
	}

	// Tiled layout (TIFF 6.0 §15): fixed-size tiles, edge tiles padded.
	// Tiles may be Deflate-compressed; strips are uncompressed only.
	if tw := int(first(tagTileWidth, 0)); tw > 0 {
		return decodeTiled(r, bo, get, width, height, bits)
	}
	if c := first(tagCompression, compressionNone); c != compressionNone {
		return nil, fmt.Errorf("tiffio: unsupported compression %d", c)
	}

	offsets, ok := get(tagStripOffsets)
	if !ok {
		return nil, fmt.Errorf("tiffio: missing StripOffsets")
	}
	counts, ok := get(tagStripByteCounts)
	if !ok {
		return nil, fmt.Errorf("tiffio: missing StripByteCounts")
	}
	if len(offsets.vals) != len(counts.vals) {
		return nil, fmt.Errorf("tiffio: %d strip offsets vs %d byte counts", len(offsets.vals), len(counts.vals))
	}

	bytesPerPixel := bits / 8
	want := width * height * bytesPerPixel
	raw := make([]byte, 0, want)
	for i := range offsets.vals {
		n := int(counts.vals[i])
		if len(raw)+n > want {
			n = want - len(raw) // tolerate trailing padding in final strip
		}
		buf := make([]byte, n)
		if _, err := r.ReadAt(buf, int64(offsets.vals[i])); err != nil {
			return nil, fmt.Errorf("tiffio: strip %d: %w", i, err)
		}
		raw = append(raw, buf...)
	}
	if len(raw) != want {
		return nil, fmt.Errorf("tiffio: pixel data is %d bytes, want %d", len(raw), want)
	}

	img := tile.NewGray16(width, height)
	if bits == 8 {
		for i, b := range raw {
			// Scale 8-bit to the 16-bit range the pipeline works in.
			img.Pix[i] = uint16(b) * 257
		}
	} else {
		for i := range img.Pix {
			img.Pix[i] = bo.Uint16(raw[2*i : 2*i+2])
		}
	}
	return img, nil
}

// decodeTiled reads the tile-organized pixel layout.
func decodeTiled(r io.ReaderAt, bo binary.ByteOrder, get func(uint16) (ifdEntry, bool), width, height, bits int) (*tile.Gray16, error) {
	first := func(tag uint16, def uint32) uint32 {
		if e, ok := get(tag); ok && len(e.vals) > 0 {
			return e.vals[0]
		}
		return def
	}
	tw := int(first(tagTileWidth, 0))
	th := int(first(tagTileLength, 0))
	if tw <= 0 || th <= 0 || tw > 1<<16 || th > 1<<16 {
		return nil, fmt.Errorf("tiffio: invalid tile size %dx%d", tw, th)
	}
	comp := first(tagCompression, compressionNone)
	if comp != compressionNone && comp != compressionDeflate {
		return nil, fmt.Errorf("tiffio: unsupported tile compression %d", comp)
	}
	offsets, ok := get(tagTileOffsets)
	if !ok {
		return nil, fmt.Errorf("tiffio: missing TileOffsets")
	}
	counts, ok := get(tagTileByteCounts)
	if !ok {
		return nil, fmt.Errorf("tiffio: missing TileByteCounts")
	}
	across := (width + tw - 1) / tw
	down := (height + th - 1) / th
	if len(offsets.vals) != across*down || len(counts.vals) != across*down {
		return nil, fmt.Errorf("tiffio: %d tile offsets for a %dx%d tile grid", len(offsets.vals), down, across)
	}
	bytesPerPixel := bits / 8
	tileBytes := tw * th * bytesPerPixel
	img := tile.NewGray16(width, height)
	buf := make([]byte, tileBytes)
	var raw []byte // compressed staging, reused across tiles
	for ty := 0; ty < down; ty++ {
		for tx := 0; tx < across; tx++ {
			idx := ty*across + tx
			n := int(counts.vals[idx])
			if comp == compressionDeflate {
				// zlib never expands a tile past a small constant-factor
				// overhead; a larger claim is a corrupt directory, caught
				// before allocating.
				if n <= 0 || n > 2*tileBytes+1024 {
					return nil, fmt.Errorf("tiffio: compressed tile %d claims %d bytes for a %d-byte tile", idx, n, tileBytes)
				}
				if cap(raw) < n {
					raw = make([]byte, n)
				}
				raw = raw[:n]
				if _, err := r.ReadAt(raw, int64(offsets.vals[idx])); err != nil {
					return nil, fmt.Errorf("tiffio: tile %d: %w", idx, err)
				}
				if err := inflateTile(buf, raw); err != nil {
					return nil, fmt.Errorf("tiffio: tile %d: %w", idx, err)
				}
			} else {
				if n != tileBytes {
					return nil, fmt.Errorf("tiffio: tile %d is %d bytes, want %d", idx, n, tileBytes)
				}
				if _, err := r.ReadAt(buf, int64(offsets.vals[idx])); err != nil {
					return nil, fmt.Errorf("tiffio: tile %d: %w", idx, err)
				}
			}
			for y := 0; y < th; y++ {
				iy := ty*th + y
				if iy >= height {
					break
				}
				for x := 0; x < tw; x++ {
					ix := tx*tw + x
					if ix >= width {
						break
					}
					var v uint16
					if bits == 8 {
						v = uint16(buf[y*tw+x]) * 257
					} else {
						v = bo.Uint16(buf[2*(y*tw+x):])
					}
					img.Set(ix, iy, v)
				}
			}
		}
	}
	return img, nil
}

// readIFD parses the directory at off.
func readIFD(r io.ReaderAt, bo binary.ByteOrder, off int64) ([]ifdEntry, error) {
	var nb [2]byte
	if _, err := r.ReadAt(nb[:], off); err != nil {
		return nil, fmt.Errorf("tiffio: IFD count: %w", err)
	}
	n := int(bo.Uint16(nb[:]))
	if n == 0 {
		return nil, fmt.Errorf("tiffio: empty IFD")
	}
	buf := make([]byte, n*12)
	if _, err := r.ReadAt(buf, off+2); err != nil {
		return nil, fmt.Errorf("tiffio: IFD entries: %w", err)
	}
	entries := make([]ifdEntry, 0, n)
	for i := 0; i < n; i++ {
		b := buf[i*12 : (i+1)*12]
		e := ifdEntry{
			tag:   bo.Uint16(b[0:2]),
			ftype: bo.Uint16(b[2:4]),
			count: bo.Uint32(b[4:8]),
		}
		sz := typeSize(e.ftype)
		if sz == 0 || e.count == 0 {
			entries = append(entries, e)
			continue
		}
		total := sz * int(e.count)
		// Bound out-of-line tag data: no baseline grayscale tag needs
		// more than one offset per strip, and strips are bounded by the
		// pixel data; 64 MB of tag data means a corrupt file.
		if total < 0 || total > 64<<20 {
			return nil, fmt.Errorf("tiffio: tag %d claims %d bytes of data", e.tag, total)
		}
		var data []byte
		if total <= 4 {
			data = b[8 : 8+total]
		} else {
			data = make([]byte, total)
			if _, err := r.ReadAt(data, int64(bo.Uint32(b[8:12]))); err != nil {
				return nil, fmt.Errorf("tiffio: tag %d data: %w", e.tag, err)
			}
		}
		e.vals = make([]uint32, 0, e.count)
		for j := 0; j < int(e.count); j++ {
			switch e.ftype {
			case typeByte, typeASCII:
				e.vals = append(e.vals, uint32(data[j]))
			case typeShort:
				e.vals = append(e.vals, uint32(bo.Uint16(data[2*j:2*j+2])))
			case typeLong:
				e.vals = append(e.vals, bo.Uint32(data[4*j:4*j+4]))
			case typeRational:
				// store numerator only; resolution tags are ignored
				e.vals = append(e.vals, bo.Uint32(data[8*j:8*j+4]))
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// EncodeOpts adjusts Encode output.
type EncodeOpts struct {
	// BigEndian writes an "MM" file; default is "II".
	BigEndian bool
	// RowsPerStrip bounds strip height; 0 chooses strips of about 8 KiB,
	// the TIFF 6.0 recommendation.
	RowsPerStrip int
	// TileW/TileH switch to the tiled layout (TIFF 6.0 §15). The spec
	// requires multiples of 16. Zero keeps strips.
	TileW, TileH int
	// Deflate zlib-compresses each tile payload independently
	// (Compression=8, TIFF Technical Note 2). Only the tiled layout
	// supports it.
	Deflate bool
}

// Encode writes img as an uncompressed 16-bit grayscale baseline TIFF.
func Encode(w io.Writer, img *tile.Gray16, opts EncodeOpts) error {
	if img.W <= 0 || img.H <= 0 {
		return fmt.Errorf("tiffio: cannot encode empty image %dx%d", img.W, img.H)
	}
	var bo binary.ByteOrder = binary.LittleEndian
	mark := [2]byte{'I', 'I'}
	if opts.BigEndian {
		bo = binary.BigEndian
		mark = [2]byte{'M', 'M'}
	}
	if opts.TileW > 0 || opts.TileH > 0 {
		return encodeTiled(w, img, bo, mark, opts)
	}
	if opts.Deflate {
		return fmt.Errorf("tiffio: Deflate requires the tiled layout (set TileW/TileH)")
	}
	rps := opts.RowsPerStrip
	if rps <= 0 {
		rowBytes := img.W * 2
		rps = (8 << 10) / rowBytes
		if rps < 1 {
			rps = 1
		}
	}
	if rps > img.H {
		rps = img.H
	}
	nStrips := (img.H + rps - 1) / rps

	// Layout: header(8) | pixel strips | IFD | out-of-line tag data. The
	// offsets are computed in int64 and checked against the 32-bit field
	// width: before the check a >4 GiB image wrapped them silently.
	sizes := make([]int, nStrips)
	for s := 0; s < nStrips; s++ {
		rows := rps
		if s == nStrips-1 {
			rows = img.H - s*rps
		}
		sizes[s] = rows * img.W * 2
	}
	stripOff, stripCnt, ifdOff, err := chunkLayout(8, sizes)
	if err != nil {
		return err
	}

	// Header.
	hdr := make([]byte, 8)
	hdr[0], hdr[1] = mark[0], mark[1]
	bo.PutUint16(hdr[2:4], 42)
	bo.PutUint32(hdr[4:8], uint32(ifdOff))
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	// Pixel data.
	rowBuf := make([]byte, img.W*2)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			bo.PutUint16(rowBuf[2*x:2*x+2], img.At(x, y))
		}
		if _, err := w.Write(rowBuf); err != nil {
			return err
		}
	}

	// IFD with 10 entries, then the out-of-line arrays.
	type entry struct {
		tag, ftype uint16
		count      uint32
		value      uint32
	}
	nEntries := 10
	ifdSize := 2 + nEntries*12 + 4
	extraBase := ifdOff + int64(ifdSize)

	var extra []byte
	appendLongs := func(vals []uint32) uint32 {
		o := extraBase + int64(len(extra))
		for _, v := range vals {
			var b [4]byte
			bo.PutUint32(b[:], v)
			extra = append(extra, b[:]...)
		}
		return uint32(o)
	}

	offVal, cntVal := stripOff[0], stripCnt[0]
	if nStrips > 1 {
		offVal = appendLongs(stripOff)
		cntVal = appendLongs(stripCnt)
	}
	if extraBase+int64(len(extra)) > math.MaxUint32 {
		return ErrOffsetOverflow
	}
	entries := []entry{
		{tagImageWidth, typeLong, 1, uint32(img.W)},
		{tagImageLength, typeLong, 1, uint32(img.H)},
		{tagBitsPerSample, typeShort, 1, 16},
		{tagCompression, typeShort, 1, compressionNone},
		{tagPhotometric, typeShort, 1, photometricMinIsBlack},
		{tagStripOffsets, typeLong, uint32(nStrips), offVal},
		{tagSamplesPerPixel, typeShort, 1, 1},
		{tagRowsPerStrip, typeLong, 1, uint32(rps)},
		{tagStripByteCounts, typeLong, uint32(nStrips), cntVal},
		{tagSampleFormat, typeShort, 1, 1}, // unsigned integer
	}

	ifd := make([]byte, ifdSize)
	bo.PutUint16(ifd[0:2], uint16(nEntries))
	for i, e := range entries {
		b := ifd[2+i*12 : 2+(i+1)*12]
		bo.PutUint16(b[0:2], e.tag)
		bo.PutUint16(b[2:4], e.ftype)
		bo.PutUint32(b[4:8], e.count)
		if e.ftype == typeShort && e.count == 1 {
			bo.PutUint16(b[8:10], uint16(e.value))
		} else {
			bo.PutUint32(b[8:12], e.value)
		}
	}
	// next-IFD pointer = 0 (already zeroed)
	if _, err := w.Write(ifd); err != nil {
		return err
	}
	if len(extra) > 0 {
		if _, err := w.Write(extra); err != nil {
			return err
		}
	}
	return nil
}

// ReadFile decodes the TIFF at path. When a fault injector is installed
// via SetInjector, the read is an error point: site "tiffio.read",
// detail = path.
func ReadFile(path string) (*tile.Gray16, error) {
	if err := injector.Load().Hit(fault.SiteTiffRead, path); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// WriteFile encodes img to path as little-endian 16-bit TIFF.
func WriteFile(path string, img *tile.Gray16) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, img, EncodeOpts{}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
