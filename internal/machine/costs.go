package machine

import (
	"math"

	"hybridstitch/internal/tile"
)

// HostConfig describes the simulated machine.
type HostConfig struct {
	// PhysicalCores and LogicalCores model hyper-threading: threads
	// beyond PhysicalCores add only HTEfficiency of a core each (the
	// knee in the paper's Fig 11 at 8 physical / 16 logical).
	PhysicalCores int
	LogicalCores  int
	HTEfficiency  float64
	// MemContention degrades per-thread compute when several threads
	// stream transform-sized data concurrently (FFT is bandwidth-bound;
	// the paper's MT-CPU reaches 6.6x on 8 physical cores, not 8x).
	MemContention float64
	// RAMBytes is physical memory; exceeding it triggers the paging
	// model (Fig 5). UsableRAMBytes subtracts OS/buffer overhead.
	RAMBytes       int64
	UsableRAMBytes int64
	// PagePenalty multiplies compute-task durations at full overcommit.
	PagePenalty float64
	// GPUs is the card count.
	GPUs int
	// CPUSpeed and GPUSpeed scale per-op costs relative to the paper's
	// Xeon E-5620 / Tesla C2070 (1.0 each); the §VI laptop has a
	// slightly faster core and a far weaker (GF116) card.
	CPUSpeed float64
	GPUSpeed float64
}

// PaperHost returns the evaluation machine of §IV: two Xeon E-5620
// quad-cores with HT, 48 GB RAM, two Tesla C2070s.
func PaperHost() HostConfig {
	return HostConfig{
		PhysicalCores: 8, LogicalCores: 16, HTEfficiency: 0.10,
		MemContention:  0.86,
		RAMBytes:       48 << 30,
		UsableRAMBytes: 44 << 30,
		PagePenalty:    40,
		GPUs:           2,
		CPUSpeed:       1, GPUSpeed: 1,
	}
}

// Fig5Host is the reduced-memory variant used for the virtual-memory
// cliff experiment ("the same evaluation machine but with 24 GB of RAM
// only"). The paper's cliff falls between 832 and 864 tiles, i.e.
// ≈ 19.3 GB of 23.2 MB transforms resident, the rest being OS, page
// cache, and tile buffers.
func Fig5Host() HostConfig {
	h := PaperHost()
	h.RAMBytes = 24 << 30
	h.UsableRAMBytes = 19_500_000_000 // ≈842 resident transforms
	return h
}

// LaptopHost is the paper's §VI validation laptop: i7-950 quad-core,
// 12 GB RAM, one GTX 560M.
func LaptopHost() HostConfig {
	return HostConfig{
		PhysicalCores: 4, LogicalCores: 8, HTEfficiency: 0.10,
		MemContention:  0.86,
		RAMBytes:       12 << 30,
		UsableRAMBytes: 10 << 30,
		PagePenalty:    40,
		GPUs:           1,
		CPUSpeed:       1.11, GPUSpeed: 0.36,
	}
}

// CostModel gives per-operation service times in seconds for the paper's
// 1392×1040 16-bit tiles; OpCosts scales them to other tile sizes.
//
// Calibration: the paper reports Simple-CPU at 10.6 min with "80% of
// this time spent on Fourier transforms" over 3nm-n-m = 7333 transforms,
// fixing FFTCPU ≈ 69 ms; the residual fixes the read/NCC/reduce/CCF
// costs. GPU kernel costs are calibrated against the Pipelined-GPU
// end-to-end times (49.7 s / 26.6 s), which bound the serialized cuFFT
// kernel at ≈ 5.5 ms — note this is far below the paper's "cuFFT ≈ 1.5×
// faster than FFTW" aside, which cannot hold per-kernel: 7333 kernels at
// 46 ms would alone take 337 s on one card. The reproduction treats the
// 1.5× remark as describing the synchronous Simple-GPU access pattern
// (kernel + launch + synchronization + transfer), which the SyncOverhead
// term models; EXPERIMENTS.md discusses the discrepancy.
type CostModel struct {
	Read         float64 // disk read + TIFF decode, per tile
	FFTCPU       float64 // one 2-D transform (fwd or inv), one core
	NCCCPU       float64
	MaxCPU       float64
	CCF          float64 // all four factors, one core
	H2D          float64 // tile upload over PCIe
	FFTGPU       float64
	NCCGPU       float64
	MaxGPU       float64
	D2H          float64 // scalar result readback
	SyncOverhead float64 // per synchronous GPU call in Simple-GPU
	// FijiFactor inflates per-operator costs for the ImageJ/Fiji
	// plugin. The paper insists the plugin runs the same mathematical
	// operators yet measures >3.6 h against 10.6 min sequential C++ —
	// an architecture/runtime gap of ~80× per op after accounting for
	// its ~2× transform count; it is calibrated, not derived.
	FijiFactor  float64
	FijiThreads int // "5–6" in Table II
}

// PaperCosts returns the calibrated model.
func PaperCosts() CostModel {
	return CostModel{
		Read:   0.010,
		FFTCPU: 0.0694,
		NCCCPU: 0.008,
		MaxCPU: 0.005,
		CCF:    0.008,

		H2D:    0.0022,
		FFTGPU: 0.0050,
		NCCGPU: 0.0012,
		MaxGPU: 0.0009,
		D2H:    0.00002,

		SyncOverhead: 0.0178,
		FijiFactor:   58,
		FijiThreads:  5,
	}
}

// paperTilePixels is the calibration tile size.
const paperTilePixels = 1392 * 1040

// OpCosts is the cost model scaled to a concrete grid.
type OpCosts struct {
	CostModel
	Grid tile.Grid
}

// ForHost additionally applies the host's CPU/GPU speed factors.
func (c CostModel) ForHost(g tile.Grid, h HostConfig) OpCosts {
	out := c.For(g)
	cs, gs := h.CPUSpeed, h.GPUSpeed
	if cs <= 0 {
		cs = 1
	}
	if gs <= 0 {
		gs = 1
	}
	out.FFTCPU /= cs
	out.NCCCPU /= cs
	out.MaxCPU /= cs
	out.CCF /= cs
	out.FFTGPU /= gs
	out.NCCGPU /= gs
	out.MaxGPU /= gs
	return out
}

// For scales the calibrated model to grid g: linear ops scale with
// pixel count, transforms with N·log N.
func (c CostModel) For(g tile.Grid) OpCosts {
	px := float64(g.TileW * g.TileH)
	lin := px / paperTilePixels
	ref := paperTilePixels * math.Log(paperTilePixels)
	fftScale := px * math.Log(px) / ref
	out := c
	out.Read *= lin
	out.FFTCPU *= fftScale
	out.NCCCPU *= lin
	out.MaxCPU *= lin
	out.CCF *= lin
	out.H2D *= lin
	out.FFTGPU *= fftScale
	out.NCCGPU *= lin
	out.MaxGPU *= lin
	return OpCosts{CostModel: out, Grid: g}
}

// cpuSlowdown returns the per-task duration multiplier when `threads`
// compute workers share the host: 1.0 while threads fit physical cores,
// then the hyper-threading tax, with memory contention on top for >1
// thread. The DES gives each of the T workers a slot; the multiplier
// makes T workers deliver the throughput of p(T) ideal cores:
//
//	p(T) = T                      for T ≤ physical
//	p(T) = phys + ht·(T-phys)     for T > physical
func cpuSlowdown(h HostConfig, threads int) float64 {
	if threads <= 1 {
		return 1
	}
	p := float64(threads)
	if threads > h.PhysicalCores {
		p = float64(h.PhysicalCores) + h.HTEfficiency*float64(threads-h.PhysicalCores)
	}
	eff := h.MemContention
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	return float64(threads) / (p * eff)
}

// transformBytes is one tile transform's footprint.
func transformBytes(g tile.Grid) int64 {
	return int64(g.TileW) * int64(g.TileH) * 16
}
