package machine_test

import (
	"fmt"

	"hybridstitch/internal/machine"
	"hybridstitch/internal/tile"
)

// Example predicts the paper's headline result: the 42×59 grid on the
// evaluation machine, one vs two GPUs. The discrete-event model is
// deterministic, so the numbers are stable.
func Example() {
	grid := tile.Grid{Rows: 42, Cols: 59, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
	one, err := machine.Predict(machine.RunSpec{Impl: "pipelined-gpu", Grid: grid, Threads: 16, GPUs: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	two, err := machine.Predict(machine.RunSpec{Impl: "pipelined-gpu", Grid: grid, Threads: 16, GPUs: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("1 GPU: %.0f s (paper: 49.7 s)\n", one)
	fmt.Printf("2 GPUs: %.0f s (paper: 26.6 s)\n", two)
	// Output:
	// 1 GPU: 47 s (paper: 49.7 s)
	// 2 GPUs: 26 s (paper: 26.6 s)
}

// ExamplePredictWithStats shows the bottleneck analysis: with two cards
// the shared disk saturates.
func ExamplePredictWithStats() {
	grid := tile.Grid{Rows: 42, Cols: 59, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
	mk, stats, err := machine.PredictWithStats(machine.RunSpec{Impl: "pipelined-gpu", Grid: grid, Threads: 16, GPUs: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range stats {
		if s.Name == "disk" {
			fmt.Printf("disk busy %.0f%% of the %.0f s run\n", 100*s.BusySeconds/mk, mk)
		}
	}
	// Output: disk busy 98% of the 26 s run
}
