package machine

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"hybridstitch/internal/tile"
)

// paperGrid is the evaluation workload: 42×59 grid of 1392×1040 tiles.
func paperGrid() tile.Grid {
	return tile.Grid{Rows: 42, Cols: 59, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
}

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	if math.Abs(got-want) > frac*want {
		t.Errorf("%s: model %.1f s, paper %.1f s (tolerance ±%.0f%%)", name, got, want, frac*100)
	}
}

func predict(t *testing.T, spec RunSpec) float64 {
	t.Helper()
	s, err := Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimEngineBasics(t *testing.T) {
	s := NewSim()
	var order []int
	s.After(2, func() { order = append(order, 2) })
	s.After(1, func() { order = append(order, 1) })
	s.At(1, func() { order = append(order, 10) }) // same time: FIFO by insertion
	end := s.Run()
	if end != 2 {
		t.Errorf("clock = %g", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 10 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestModelSerialStation(t *testing.T) {
	m := NewModel()
	r := NewResource(m.Sim, "r", 1)
	for i := 0; i < 5; i++ {
		m.AddTask(&Task{Name: "t", Dur: 2, Res: r})
	}
	mk, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 10 {
		t.Errorf("makespan = %g, want 10", mk)
	}
	if r.Utilization() != 10 {
		t.Errorf("busy time = %g", r.Utilization())
	}
}

func TestModelParallelStation(t *testing.T) {
	m := NewModel()
	r := NewResource(m.Sim, "r", 4)
	for i := 0; i < 8; i++ {
		m.AddTask(&Task{Name: "t", Dur: 3, Res: r})
	}
	mk, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 6 {
		t.Errorf("makespan = %g, want 6", mk)
	}
}

func TestModelDependencies(t *testing.T) {
	m := NewModel()
	r := NewResource(m.Sim, "r", 4)
	a := m.AddTask(&Task{Name: "a", Dur: 5, Res: r})
	b := m.AddTask(&Task{Name: "b", Dur: 1, Res: r}, a)
	c := m.AddTask(&Task{Name: "c", Dur: 1, Res: r}, a, b)
	mk, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 7 {
		t.Errorf("makespan = %g, want 7", mk)
	}
	if b.Finish() != 6 || c.Finish() != 7 {
		t.Errorf("finishes %g, %g", b.Finish(), c.Finish())
	}
}

func TestModelMakespanBoundsProperty(t *testing.T) {
	// Independent tasks on a k-server: makespan is bounded below by
	// total/k and by the longest task, and above by total/k + longest.
	f := func(durs []uint8, capSel uint8) bool {
		if len(durs) == 0 {
			return true
		}
		k := int(capSel)%6 + 1
		m := NewModel()
		r := NewResource(m.Sim, "r", k)
		var total, longest float64
		for _, d := range durs {
			dur := float64(d%50) + 1
			total += dur
			if dur > longest {
				longest = dur
			}
			m.AddTask(&Task{Name: "t", Dur: dur, Res: r})
		}
		mk, err := m.Run()
		if err != nil {
			return false
		}
		lower := total / float64(k)
		if longest > lower {
			lower = longest
		}
		return mk >= lower-1e-9 && mk <= total/float64(k)+longest+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestTableII checks every row of the paper's Table II against the model
// (±15%: the model is calibrated on a subset of these numbers and must
// reproduce the rest).
func TestTableII(t *testing.T) {
	g := paperGrid()
	within(t, "Fiji", predict(t, RunSpec{Impl: "fiji", Grid: g}), 3.6*3600, 0.15)
	within(t, "Simple-CPU", predict(t, RunSpec{Impl: "simple-cpu", Grid: g}), 10.6*60, 0.15)
	within(t, "MT-CPU", predict(t, RunSpec{Impl: "mt-cpu", Grid: g, Threads: 16}), 96, 0.15)
	within(t, "Pipelined-CPU", predict(t, RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 16}), 84, 0.15)
	within(t, "Simple-GPU", predict(t, RunSpec{Impl: "simple-gpu", Grid: g, GPUs: 1}), 558, 0.15)
	within(t, "Pipelined-GPU(1)", predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 1}), 49.7, 0.15)
	within(t, "Pipelined-GPU(2)", predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 2}), 26.6, 0.15)
}

// TestTableIIOrdering: who wins must match the paper exactly.
func TestTableIIOrdering(t *testing.T) {
	g := paperGrid()
	times := []float64{
		predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 2}),
		predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 1}),
		predict(t, RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 16}),
		predict(t, RunSpec{Impl: "mt-cpu", Grid: g, Threads: 16}),
		predict(t, RunSpec{Impl: "simple-gpu", Grid: g, GPUs: 1}),
		predict(t, RunSpec{Impl: "simple-cpu", Grid: g}),
		predict(t, RunSpec{Impl: "fiji", Grid: g}),
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Errorf("ordering violated at position %d: %.1f then %.1f", i, times[i-1], times[i])
		}
	}
	// Headline ratios: ~11.2x pipelined-over-simple GPU; >2 orders of
	// magnitude vs Fiji.
	if r := times[4] / times[1]; r < 9 || r > 13 {
		t.Errorf("Pipelined/Simple GPU speedup = %.1fx, paper says 11.2x", r)
	}
	if r := times[6] / times[0]; r < 300 {
		t.Errorf("Fiji/Pipelined-GPU(2) = %.0fx, paper says 487x", r)
	}
}

// TestFig11Knee: near-linear scaling to 8 threads, a distinctly flatter
// slope from 9 to 16.
func TestFig11Knee(t *testing.T) {
	g := paperGrid()
	sp := func(threads int) float64 {
		t1 := predict(t, RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 1})
		tn := predict(t, RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: threads})
		return t1 / tn
	}
	s2, s4, s8, s16 := sp(2), sp(4), sp(8), sp(16)
	if s2 < 1.6 || s4 < 3.2 || s8 < 6.0 {
		t.Errorf("sub-linear below the knee: %.2f %.2f %.2f", s2, s4, s8)
	}
	slopeLow := (s8 - s2) / 6
	slopeHigh := (s16 - s8) / 8
	if slopeHigh > slopeLow/2 {
		t.Errorf("no knee: slope %.3f below vs %.3f above 8 threads", slopeLow, slopeHigh)
	}
	if s16 <= s8 {
		t.Errorf("hyper-threading should still help: s8=%.2f s16=%.2f", s8, s16)
	}
}

// TestFig10CCFThreads: with 2 GPUs, adding CCF threads beyond 2 has
// minimal impact (GPU-bound).
func TestFig10CCFThreads(t *testing.T) {
	g := paperGrid()
	run := func(ccf int) float64 {
		return predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, CCFThreads: ccf, GPUs: 2})
	}
	t1, t2, t4, t16 := run(1), run(2), run(4), run(16)
	if t2 >= t1 {
		t.Errorf("2 CCF threads (%.1f) should beat 1 (%.1f)", t2, t1)
	}
	if math.Abs(t4-t2) > 0.1*t2 || math.Abs(t16-t2) > 0.1*t2 {
		t.Errorf("beyond 2 CCF threads should be flat: %.1f %.1f %.1f", t2, t4, t16)
	}
	// Paper's Fig 10 spans roughly 42 s (1 thread) down to ~28 s.
	within(t, "Fig10 ccf=1", t1, 42, 0.2)
	within(t, "Fig10 ccf=16", t16, 28, 0.2)
}

// TestFig5Cliff: speedup collapses between 832 and 864 tiles on the
// 24 GB host, across thread counts.
func TestFig5Cliff(t *testing.T) {
	grid := func(tiles int) tile.Grid {
		return tile.Grid{Rows: tiles / 32, Cols: 32, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
	}
	host := Fig5Host()
	costs := PaperCosts()
	for _, threads := range []int{4, 8, 16} {
		before, err := FFTWorkloadSpeedup(grid(832), host, costs, threads)
		if err != nil {
			t.Fatal(err)
		}
		after, err := FFTWorkloadSpeedup(grid(864), host, costs, threads)
		if err != nil {
			t.Fatal(err)
		}
		if before < 0.8*float64(minInt(threads, 8)) {
			t.Errorf("T=%d: pre-cliff speedup %.2f too low", threads, before)
		}
		if after > before/2 {
			t.Errorf("T=%d: no cliff: %.2f → %.2f", threads, before, after)
		}
	}
	// Below the limit nothing happens between consecutive sizes.
	s768, _ := FFTWorkloadSpeedup(grid(768), host, costs, 16)
	s832, _ := FFTWorkloadSpeedup(grid(832), host, costs, 16)
	if math.Abs(s768-s832) > 0.2 {
		t.Errorf("speedup drifts below the cliff: %.2f vs %.2f", s768, s832)
	}
}

// TestLaptopValidation reproduces §VI's 3-year-old-laptop check.
func TestLaptopValidation(t *testing.T) {
	g := paperGrid()
	lap := LaptopHost()
	gpu := predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 8, CCFThreads: 8, GPUs: 1, Host: lap})
	cpu := predict(t, RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 8, Host: lap})
	within(t, "laptop Pipelined-GPU", gpu, 130, 0.15)
	within(t, "laptop Pipelined-CPU", cpu, 146, 0.15)
	if gpu >= cpu {
		t.Error("laptop GPU should still edge out CPU")
	}
}

// TestFig12SurfaceShape: speedup grows with threads at every grid size
// and is consistent across sizes (the paper's flat-by-tiles surface).
func TestFig12SurfaceShape(t *testing.T) {
	costs := PaperCosts()
	host := PaperHost()
	for _, tiles := range []int{128, 512, 1024} {
		g := tile.Grid{Rows: tiles / 16, Cols: 16, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
		var prev float64
		for _, threads := range []int{1, 4, 8, 16} {
			tm, err := Predict(RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: threads, Host: host, Costs: costs})
			if err != nil {
				t.Fatal(err)
			}
			if prev > 0 && tm >= prev {
				t.Errorf("tiles=%d: no gain from %d threads", tiles, threads)
			}
			prev = tm
		}
	}
	// Consistency across sizes: 8-thread speedup within 10% between
	// 128 and 1024 tiles.
	sp := func(tiles int) float64 {
		g := tile.Grid{Rows: tiles / 16, Cols: 16, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
		t1, _ := Predict(RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 1})
		t8, _ := Predict(RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 8})
		return t1 / t8
	}
	if a, b := sp(128), sp(1024); math.Abs(a-b) > 0.1*b {
		t.Errorf("speedup not consistent across sizes: %.2f vs %.2f", a, b)
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := Predict(RunSpec{Impl: "bogus", Grid: paperGrid()}); err == nil {
		t.Error("unknown impl should fail")
	}
	if _, err := Predict(RunSpec{Impl: "simple-cpu"}); err == nil {
		t.Error("invalid grid should fail")
	}
}

func TestCostScaling(t *testing.T) {
	c := PaperCosts()
	small := tile.Grid{Rows: 2, Cols: 2, TileW: 696, TileH: 520, OverlapX: 0.1, OverlapY: 0.1}
	sc := c.For(small)
	// Quarter the pixels: linear ops scale 4x down, FFT slightly more
	// than 4x (N log N).
	if r := c.Read / sc.Read; math.Abs(r-4) > 1e-9 {
		t.Errorf("read scale %g", r)
	}
	if r := c.FFTCPU / sc.FFTCPU; r < 4 || r > 5 {
		t.Errorf("fft scale %g", r)
	}
	// Paper size maps to itself.
	id := c.For(paperGrid())
	if id.FFTCPU != c.FFTCPU || id.Read != c.Read {
		t.Error("identity scaling broken")
	}
}

func TestCPUSlowdown(t *testing.T) {
	h := PaperHost()
	if s := cpuSlowdown(h, 1); s != 1 {
		t.Errorf("slowdown(1) = %g", s)
	}
	// Monotone non-decreasing in threads.
	prev := 0.0
	for _, threads := range []int{2, 4, 8, 12, 16} {
		s := cpuSlowdown(h, threads)
		if s < prev {
			t.Errorf("slowdown not monotone at %d threads", threads)
		}
		prev = s
	}
	// Throughput (T/slowdown) still increases past the knee.
	if 16/cpuSlowdown(h, 16) <= 8/cpuSlowdown(h, 8) {
		t.Error("HT should add some throughput")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPredictWithStatsBottleneck(t *testing.T) {
	g := paperGrid()
	// With 2 GPUs the disk's busy time approaches the makespan — the
	// reason the second card yields 1.87x rather than 2x.
	mk, stats, err := PredictWithStats(RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var disk float64
	for _, s := range stats {
		if s.Name == "disk" {
			disk = s.BusySeconds
		}
	}
	if disk == 0 {
		t.Fatal("no disk stat reported")
	}
	if disk < 0.85*mk {
		t.Errorf("disk busy %.1f s of %.1f s makespan: expected near-saturation at 2 GPUs", disk, mk)
	}
}

func TestHyperQKernelSlots(t *testing.T) {
	// More kernel slots can only help, and with enough of them the GPU
	// stops being the bottleneck (paper §VI.A: Kepler's Hyper-Q).
	g := paperGrid()
	t1 := predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 1, KernelSlots: 1})
	t4 := predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: 1, KernelSlots: 4})
	if t4 > t1+1e-9 {
		t.Errorf("more kernel slots slowed the run: %.1f -> %.1f", t1, t4)
	}
	if t4 > 0.85*t1 {
		t.Errorf("Hyper-Q gave only %.1f -> %.1f; expected a substantial win on a kernel-bound run", t1, t4)
	}
}

func TestMultiGPUScalingSaturates(t *testing.T) {
	// On a hypothetical 4-GPU host the disk saturates: the 4th card
	// buys almost nothing (the paper's >2-GPU future-work concern).
	g := paperGrid()
	host := PaperHost()
	host.GPUs = 4
	times := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		times[n] = predict(t, RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 16, GPUs: n, Host: host})
	}
	if times[2] >= times[1] {
		t.Errorf("second GPU should help: %v", times)
	}
	// Past disk saturation the extra cards buy nothing — and can even
	// regress slightly, because each extra partition re-reads one
	// boundary row through the saturated disk.
	if times[4] < 0.95*times[2] {
		t.Errorf("4 GPUs gained %.1f%% over 2; expected saturation", 100*(times[2]/times[4]-1))
	}
	if times[4] > 1.1*times[2] {
		t.Errorf("4 GPUs regressed too much: %v", times)
	}
}

func TestSocketsModelHelpsDespiteRedundancy(t *testing.T) {
	g := paperGrid()
	one := predict(t, RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 16})
	two := predict(t, RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 16, Sockets: 2})
	if two >= one {
		t.Errorf("per-socket pipelines should net out positive: %.1f vs %.1f", two, one)
	}
	// The gain is the contention relief minus one boundary row of work —
	// modest, not a 2x.
	if two < 0.7*one {
		t.Errorf("per-socket gain implausibly large: %.1f vs %.1f", two, one)
	}
}

func TestPredictWithTrace(t *testing.T) {
	g := tile.Grid{Rows: 4, Cols: 4, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
	mk, spans, err := PredictWithTrace(RunSpec{Impl: "pipelined-gpu", Grid: g, Threads: 8, GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Every span inside [0, makespan]; per-resource spans must not
	// overlap beyond the resource capacity (spot check capacity-1
	// resources: disk, kernel).
	perRes := map[string][]TraceSpan{}
	for _, s := range spans {
		if s.Start < 0 || s.End > mk+1e-9 || s.End < s.Start {
			t.Fatalf("span out of range: %+v (makespan %g)", s, mk)
		}
		perRes[s.Resource] = append(perRes[s.Resource], s)
	}
	for _, res := range []string{"disk", "gpu0-kernel"} {
		ss := perRes[res]
		if len(ss) == 0 {
			t.Fatalf("no spans on %s", res)
		}
		sortSpans(ss)
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End-1e-9 {
				t.Fatalf("%s overlaps: %+v then %+v", res, ss[i-1], ss[i])
			}
		}
	}
}

func sortSpans(ss []TraceSpan) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].Start < ss[j-1].Start; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func TestWriteModelTrace(t *testing.T) {
	g := tile.Grid{Rows: 3, Cols: 3, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
	_, spans, err := PredictWithTrace(RunSpec{Impl: "pipelined-cpu", Grid: g, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spans, "test"); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if _, ok := parsed["traceEvents"]; !ok {
		t.Error("missing traceEvents")
	}
}

func TestPredictWithStatsAllImplementations(t *testing.T) {
	g := tile.Grid{Rows: 4, Cols: 4, TileW: 1392, TileH: 1040, OverlapX: 0.1, OverlapY: 0.1}
	for _, impl := range []string{"fiji", "simple-cpu", "mt-cpu", "pipelined-cpu", "simple-gpu", "pipelined-gpu"} {
		mk, stats, err := PredictWithStats(RunSpec{Impl: impl, Grid: g, Threads: 4, GPUs: 1})
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if mk <= 0 {
			t.Errorf("%s: makespan %g", impl, mk)
		}
		if len(stats) == 0 {
			t.Errorf("%s: no resource stats", impl)
		}
		for _, s := range stats {
			if s.BusySeconds < 0 || s.BusySeconds > mk*64 {
				t.Errorf("%s/%s: busy %g vs makespan %g", impl, s.Name, s.BusySeconds, mk)
			}
		}
	}
}

func TestHostSpeedScaling(t *testing.T) {
	g := paperGrid()
	fast := PaperHost()
	fast.CPUSpeed = 2
	base := predict(t, RunSpec{Impl: "simple-cpu", Grid: g})
	quick2 := predict(t, RunSpec{Impl: "simple-cpu", Grid: g, Host: fast})
	// A 2x CPU roughly halves the compute-dominated sequential run.
	if quick2 > 0.6*base || quick2 < 0.4*base {
		t.Errorf("2x CPU gave %.1f vs %.1f", quick2, base)
	}
}
