package machine

import (
	"fmt"

	"hybridstitch/internal/tile"
)

// RunSpec describes one modeled stitching run.
type RunSpec struct {
	Impl       string // stitch implementation registry name
	Grid       tile.Grid
	Host       HostConfig
	Costs      CostModel
	Threads    int
	CCFThreads int
	GPUs       int
	// CCFOnGPU moves the cross-correlation-factor step onto the GPU
	// kernel engine (the design alternative the paper rejects): the GPU
	// executes it ~2× faster per op, but it competes with the FFT/NCC
	// kernels for the card, while idle CPU cores go unused.
	CCFOnGPU bool
	// KernelSlots is the per-GPU concurrent-kernel limit: 1 models the
	// Fermi-era cuFFT serialization the paper works around; larger
	// values model Kepler's Hyper-Q (paper §VI.A future work).
	KernelSlots int
	// Sockets models one CPU pipeline per socket (paper §IV.B future
	// work): memory contention halves (each pipeline streams
	// socket-local DRAM) at the cost of one redundant boundary row of
	// reads and transforms per extra socket.
	Sockets int
}

func (s RunSpec) withDefaults() RunSpec {
	if s.Host.PhysicalCores == 0 {
		s.Host = PaperHost()
	}
	if s.Costs.FFTCPU == 0 {
		s.Costs = PaperCosts()
	}
	if s.Threads < 1 {
		s.Threads = 1
	}
	if s.CCFThreads < 1 {
		s.CCFThreads = s.Threads
	}
	if s.GPUs < 1 {
		s.GPUs = 1
	}
	if s.GPUs > s.Host.GPUs {
		s.GPUs = s.Host.GPUs
	}
	if s.KernelSlots < 1 {
		s.KernelSlots = 1
	}
	return s
}

// Predict returns the modeled end-to-end time in seconds for a run.
func Predict(spec RunSpec) (float64, error) {
	t, _, err := PredictWithStats(spec)
	return t, err
}

// ResourceStat summarizes one station's load during a modeled run.
type ResourceStat struct {
	Name        string
	BusySeconds float64
	MaxQueue    int
}

// PredictWithStats additionally reports per-resource busy time and
// backlog — the bottleneck analysis behind e.g. why a second GPU yields
// 1.87× rather than 2× (the shared disk saturates).
func PredictWithStats(spec RunSpec) (float64, []ResourceStat, error) {
	spec = spec.withDefaults()
	if err := spec.Grid.Validate(); err != nil {
		return 0, nil, err
	}
	c := spec.Costs.ForHost(spec.Grid, spec.Host)
	var m *Model
	var resources []*Resource
	var err error
	switch spec.Impl {
	case "simple-cpu":
		m, resources, err = buildSimpleCPU(spec, c)
	case "mt-cpu":
		m, resources, err = buildPipelineCPU(spec, c, mtImbalance)
	case "pipelined-cpu":
		m, resources, err = buildPipelineCPU(spec, c, 1.0)
	case "simple-gpu":
		m, resources, err = buildSimpleGPU(spec, c)
	case "pipelined-gpu":
		m, resources, err = buildPipelinedGPU(spec, c)
	case "fiji":
		m, resources, err = buildFiji(spec, c)
	default:
		return 0, nil, fmt.Errorf("machine: unknown implementation %q", spec.Impl)
	}
	if err != nil {
		return 0, nil, err
	}
	makespan, err := m.Run()
	if err != nil {
		return 0, nil, err
	}
	stats := make([]ResourceStat, 0, len(resources))
	for _, r := range resources {
		stats = append(stats, ResourceStat{Name: r.Name(), BusySeconds: r.Utilization(), MaxQueue: r.MaxQueue()})
	}
	return makespan, stats, nil
}

// mtImbalance is the static-partition penalty the dynamic pipeline
// removes.
const mtImbalance = 1.12

// buildSimpleCPU chains every operation on a single core.
func buildSimpleCPU(spec RunSpec, c OpCosts) (*Model, []*Resource, error) {
	g := spec.Grid
	m := NewModel()
	cpu := NewResource(m.Sim, "cpu", 1)
	for i := 0; i < g.NumTiles(); i++ {
		m.AddTask(&Task{Name: "read+fft", Dur: c.Read + c.FFTCPU, Res: cpu})
	}
	for i := 0; i < g.NumPairs(); i++ {
		m.AddTask(&Task{Name: "pair", Dur: c.NCCCPU + c.FFTCPU + c.MaxCPU + c.CCF, Res: cpu})
	}
	return m, []*Resource{cpu}, nil
}

// buildPipelineCPU is the common CPU task graph: reads on a serial disk,
// transforms and pair computations on T workers, pair tasks gated on
// their tiles' transforms. imbalance models MT-CPU's static partitioning.
// Sockets > 1 halves the cross-socket share of memory contention and
// adds the redundant boundary-row work of the per-socket split.
func buildPipelineCPU(spec RunSpec, c OpCosts, imbalance float64) (*Model, []*Resource, error) {
	g := spec.Grid
	host := spec.Host
	extraTiles := 0
	if spec.Sockets > 1 {
		host.MemContention = host.MemContention + (1-host.MemContention)*0.5
		extraTiles = (spec.Sockets - 1) * g.Cols
	}
	slow := cpuSlowdown(host, spec.Threads) * imbalance
	m := NewModel()
	disk := NewResource(m.Sim, "disk", 1)
	cpu := NewResource(m.Sim, "cpu", spec.Threads)

	ffts := make([]*Task, g.NumTiles())
	for i := 0; i < g.NumTiles(); i++ {
		read := m.AddTask(&Task{Name: "read", Dur: c.Read, Res: disk})
		ffts[i] = m.AddTask(&Task{Name: "fft", Dur: c.FFTCPU * slow, Res: cpu}, read)
	}
	for i := 0; i < extraTiles; i++ {
		read := m.AddTask(&Task{Name: "read", Dur: c.Read, Res: disk})
		m.AddTask(&Task{Name: "fft", Dur: c.FFTCPU * slow, Res: cpu}, read)
	}
	pairDur := (c.NCCCPU + c.FFTCPU + c.MaxCPU + c.CCF) * slow
	for _, p := range g.Pairs() {
		bi := g.Index(p.Coord)
		ai := g.Index(p.Neighbor())
		m.AddTask(&Task{Name: "pair", Dur: pairDur, Res: cpu}, ffts[ai], ffts[bi])
	}
	return m, []*Resource{disk, cpu}, nil
}

// buildSimpleGPU chains every operation on one CPU thread with
// synchronous GPU dispatch: each device call pays the launch+synchronize
// overhead that the profiler gaps of Fig 7 expose.
func buildSimpleGPU(spec RunSpec, c OpCosts) (*Model, []*Resource, error) {
	g := spec.Grid
	m := NewModel()
	host := NewResource(m.Sim, "host-thread", 1)
	ov := c.SyncOverhead
	perTile := c.Read + (c.H2D + ov) + (c.FFTGPU + ov)
	perPair := (c.NCCGPU + ov) + (c.FFTGPU + ov) + (c.MaxGPU + ov) + (c.D2H + ov) + c.CCF
	for i := 0; i < g.NumTiles(); i++ {
		m.AddTask(&Task{Name: "tile", Dur: perTile, Res: host})
	}
	for i := 0; i < g.NumPairs(); i++ {
		m.AddTask(&Task{Name: "pair", Dur: perPair, Res: host})
	}
	return m, []*Resource{host}, nil
}

// buildPipelinedGPU builds the Fig 8 task graph: per GPU a copy engine
// and a kernel engine fed by a shared disk, pair kernels gated on both
// transforms, CCF on a shared CPU worker pool.
func buildPipelinedGPU(spec RunSpec, c OpCosts) (*Model, []*Resource, error) {
	g := spec.Grid
	m := NewModel()
	disk := NewResource(m.Sim, "disk", 1)
	ccfSlow := cpuSlowdown(spec.Host, spec.CCFThreads)
	ccf := NewResource(m.Sim, "ccf", spec.CCFThreads)

	type gpuRes struct{ copy, kernel *Resource }
	gpus := make([]gpuRes, spec.GPUs)
	resources := []*Resource{disk, ccf}
	for d := range gpus {
		gpus[d] = gpuRes{
			copy:   NewResource(m.Sim, fmt.Sprintf("gpu%d-copy", d), 1),
			kernel: NewResource(m.Sim, fmt.Sprintf("gpu%d-kernel", d), spec.KernelSlots),
		}
		resources = append(resources, gpus[d].copy, gpus[d].kernel)
	}

	// Row-band partitions, like the real implementation: each partition
	// reads and transforms its band plus the boundary row above. The
	// partitions' reads interleave on the shared disk (round-robin),
	// matching the concurrent per-pipeline reader threads — creating
	// them device-by-device would serialize the pipelines' lead-ins and
	// wrongly flatten the multi-GPU speedup.
	rows := g.Rows
	nDev := spec.GPUs
	if nDev > rows {
		nDev = rows
	}
	type band struct {
		lo, hi int
		coords []tile.Coord
	}
	bands := make([]band, nDev)
	maxNeed := 0
	for d := 0; d < nDev; d++ {
		lo := rows * d / nDev
		hi := rows * (d + 1) / nDev
		needLo := lo - 1
		if needLo < 0 {
			needLo = 0
		}
		b := band{lo: lo, hi: hi}
		for r := needLo; r < hi; r++ {
			for col := 0; col < g.Cols; col++ {
				b.coords = append(b.coords, tile.Coord{Row: r, Col: col})
			}
		}
		bands[d] = b
		if len(b.coords) > maxNeed {
			maxNeed = len(b.coords)
		}
	}

	ffts := make([]map[int]*Task, nDev) // device → tile index → fft task
	for d := range ffts {
		ffts[d] = make(map[int]*Task)
	}
	for k := 0; k < maxNeed; k++ {
		for d := 0; d < nDev; d++ {
			if k >= len(bands[d].coords) {
				continue
			}
			coord := bands[d].coords[k]
			i := g.Index(coord)
			read := m.AddTask(&Task{Name: "read", Dur: c.Read, Res: disk})
			h2d := m.AddTask(&Task{Name: "h2d", Dur: c.H2D, Res: gpus[d].copy}, read)
			ffts[d][i] = m.AddTask(&Task{Name: "fft", Dur: c.FFTGPU, Res: gpus[d].kernel}, h2d)
		}
	}
	for d := 0; d < nDev; d++ {
		for r := bands[d].lo; r < bands[d].hi; r++ {
			for col := 0; col < g.Cols; col++ {
				addPair := func(ai, bi int) {
					k := m.AddTask(&Task{Name: "pair-kernels", Dur: c.NCCGPU + c.FFTGPU + c.MaxGPU, Res: gpus[d].kernel},
						ffts[d][ai], ffts[d][bi])
					if spec.CCFOnGPU {
						kc := m.AddTask(&Task{Name: "ccf-kernel", Dur: c.CCF * 0.5, Res: gpus[d].kernel}, k)
						m.AddTask(&Task{Name: "d2h", Dur: c.D2H, Res: gpus[d].copy}, kc)
						return
					}
					d2h := m.AddTask(&Task{Name: "d2h", Dur: c.D2H, Res: gpus[d].copy}, k)
					m.AddTask(&Task{Name: "ccf", Dur: c.CCF * ccfSlow, Res: ccf}, d2h)
				}
				i := g.Index(tile.Coord{Row: r, Col: col})
				if col > 0 {
					addPair(g.Index(tile.Coord{Row: r, Col: col - 1}), i)
				}
				if r > 0 {
					addPair(g.Index(tile.Coord{Row: r - 1, Col: col}), i)
				}
			}
		}
	}
	return m, resources, nil
}

// buildFiji models the plugin: a small thread pool of per-pair jobs,
// each re-reading and re-transforming both tiles, with the calibrated
// runtime factor on compute.
func buildFiji(spec RunSpec, c OpCosts) (*Model, []*Resource, error) {
	g := spec.Grid
	m := NewModel()
	disk := NewResource(m.Sim, "disk", 1)
	threads := c.FijiThreads
	if threads < 1 {
		threads = 5
	}
	pool := NewResource(m.Sim, "java-pool", threads)
	compute := (2*c.FFTCPU + c.NCCCPU + c.FFTCPU + c.MaxCPU + c.CCF) * c.FijiFactor
	for i := 0; i < g.NumPairs(); i++ {
		r1 := m.AddTask(&Task{Name: "read", Dur: c.Read, Res: disk})
		r2 := m.AddTask(&Task{Name: "read", Dur: c.Read, Res: disk})
		m.AddTask(&Task{Name: "pair", Dur: compute, Res: pool}, r1, r2)
	}
	return m, []*Resource{disk, pool}, nil
}

// PredictFFTWorkload models the Fig 5 experiment: read every tile and
// compute its transform WITHOUT releasing memory, on `threads` workers
// and a host with limited RAM. Once the resident transform set exceeds
// usable RAM, compute tasks pay a paging penalty that grows with the
// overcommit fraction and with the number of threads thrashing the
// paging subsystem concurrently.
func PredictFFTWorkload(g tile.Grid, host HostConfig, costs CostModel, threads int) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if threads < 1 {
		threads = 1
	}
	c := costs.For(g)
	slow := cpuSlowdown(host, threads)
	m := NewModel()
	disk := NewResource(m.Sim, "disk", 1)
	cpu := NewResource(m.Sim, "cpu", threads)

	var resident int64
	tb := transformBytes(g)
	for i := 0; i < g.NumTiles(); i++ {
		read := m.AddTask(&Task{Name: "read", Dur: c.Read, Res: disk})
		m.AddTask(&Task{
			Name: "fft",
			Res:  cpu,
			DurFn: func() float64 {
				d := c.FFTCPU * slow
				if resident > host.UsableRAMBytes {
					// Thrashing: once the working set spills, every
					// transform streams through the paging subsystem,
					// and concurrent threads amplify the eviction storm
					// — the binary cliff of Fig 5.
					d *= 1 + host.PagePenalty*float64(threads)
				}
				return d
			},
			OnDone: func() { resident += tb },
		}, read)
	}
	return m.Run()
}

// FFTWorkloadSpeedup returns the Fig 5 z-value: the 1-thread time over
// the T-thread time for the same tile count (both subject to paging).
func FFTWorkloadSpeedup(g tile.Grid, host HostConfig, costs CostModel, threads int) (float64, error) {
	t1, err := PredictFFTWorkload(g, host, costs, 1)
	if err != nil {
		return 0, err
	}
	tn, err := PredictFFTWorkload(g, host, costs, threads)
	if err != nil {
		return 0, err
	}
	return t1 / tn, nil
}
