package machine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteTrace serializes a recorded model schedule as Chrome Trace Event
// JSON (one thread row per resource) — the virtual-time counterpart of
// the GPU simulator's profiler export. Opening the paper-scale
// Pipelined-GPU schedule in Perfetto shows the modeled Fig 9 directly.
func WriteTrace(w io.Writer, spans []TraceSpan, label string) error {
	type event struct {
		Name  string            `json:"name"`
		Cat   string            `json:"cat,omitempty"`
		Phase string            `json:"ph"`
		TS    int64             `json:"ts"`
		Dur   int64             `json:"dur,omitempty"`
		PID   int               `json:"pid"`
		TID   int               `json:"tid"`
		Args  map[string]string `json:"args,omitempty"`
	}
	rows := map[string]int{}
	var order []string
	for _, s := range spans {
		if _, ok := rows[s.Resource]; !ok {
			rows[s.Resource] = 0
			order = append(order, s.Resource)
		}
	}
	sort.Strings(order)
	for i, r := range order {
		rows[r] = i + 1
	}
	var out struct {
		TraceEvents []event           `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata,omitempty"`
	}
	out.Metadata = map[string]string{"model": label, "time": "virtual seconds → µs"}
	for _, r := range order {
		out.TraceEvents = append(out.TraceEvents, event{
			Name: "thread_name", Phase: "M", PID: 1, TID: rows[r],
			Args: map[string]string{"name": r},
		})
	}
	for _, s := range spans {
		dur := int64((s.End - s.Start) * 1e6)
		if dur < 1 {
			dur = 1
		}
		out.TraceEvents = append(out.TraceEvents, event{
			Name: s.Name, Cat: s.Resource, Phase: "X",
			TS: int64(s.Start * 1e6), Dur: dur,
			PID: 1, TID: rows[s.Resource],
		})
	}
	return json.NewEncoder(w).Encode(out)
}

// PredictWithTrace runs the model with schedule recording and returns
// the makespan together with the executed task spans.
func PredictWithTrace(spec RunSpec) (float64, []TraceSpan, error) {
	spec = spec.withDefaults()
	if err := spec.Grid.Validate(); err != nil {
		return 0, nil, err
	}
	c := spec.Costs.ForHost(spec.Grid, spec.Host)
	var m *Model
	var err error
	switch spec.Impl {
	case "simple-cpu":
		m, _, err = buildSimpleCPU(spec, c)
	case "mt-cpu":
		m, _, err = buildPipelineCPU(spec, c, mtImbalance)
	case "pipelined-cpu":
		m, _, err = buildPipelineCPU(spec, c, 1.0)
	case "simple-gpu":
		m, _, err = buildSimpleGPU(spec, c)
	case "pipelined-gpu":
		m, _, err = buildPipelinedGPU(spec, c)
	case "fiji":
		m, _, err = buildFiji(spec, c)
	default:
		return 0, nil, fmt.Errorf("machine: unknown implementation %q", spec.Impl)
	}
	if err != nil {
		return 0, nil, err
	}
	m.EnableTrace()
	makespan, err := m.Run()
	if err != nil {
		return 0, nil, err
	}
	return makespan, m.Trace(), nil
}
